/**
 * @file
 * Design-space explorer: compare every register storage organization
 * the paper evaluates, over a chosen workload set, in one run. This
 * is the "which register file should my core use?" scenario the
 * paper's introduction motivates.
 *
 * Usage: design_explorer [workload[,workload...]] [max_insts]
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;

int
main(int argc, char **argv)
{
    std::vector<std::string> workloads;
    if (argc > 1) {
        std::stringstream ss(argv[1]);
        std::string name;
        while (std::getline(ss, name, ','))
            workloads.push_back(name);
    } else {
        workloads = {"gzip", "crafty", "mcf", "parser"};
    }
    const uint64_t max_insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 100000;

    struct Candidate
    {
        const char *name;
        sim::SimConfig cfg;
    };
    std::vector<Candidate> candidates;
    for (Cycle lat = 1; lat <= 4; ++lat) {
        static char names[4][16];
        std::snprintf(names[lat - 1], sizeof(names[0]),
                      "monolithic-%ldc", long(lat));
        candidates.push_back(
            {names[lat - 1], sim::SimConfig::monolithic(lat)});
    }
    candidates.push_back({"lru cache", sim::SimConfig::lruCache()});
    candidates.push_back(
        {"non-bypass cache", sim::SimConfig::nonBypassCache()});
    candidates.push_back(
        {"use-based cache", sim::SimConfig::useBasedCache()});
    candidates.push_back(
        {"two-level file", sim::SimConfig::twoLevelFile(64)});

    TextTable table({"design", "geomean IPC", "vs mono-3",
                     "miss/op", "notes"});
    double mono3 = 0;
    std::vector<std::pair<std::string, double>> ranking;
    for (const auto &c : candidates) {
        const sim::SuiteResult r =
            sim::runSuite(c.cfg, workloads, {}, max_insts);
        const double ipc = r.geomeanIpc();
        if (std::string(c.name) == "monolithic-3c")
            mono3 = ipc;
        ranking.emplace_back(c.name, ipc);
        double miss = 0;
        for (const auto &run : r.runs)
            miss += run.result.missPerOperand;
        miss /= r.runs.size();
        char rel[32] = "-";
        if (mono3 > 0)
            std::snprintf(rel, sizeof(rel), "%+.1f%%",
                          100 * (ipc / mono3 - 1));
        table.addRow({c.name, TextTable::num(ipc), rel,
                      TextTable::num(miss, 4), c.cfg.describe()});
    }
    std::printf("%s\n", table.render().c_str());

    auto best = ranking[0];
    for (const auto &r : ranking)
        if (r.second > best.second)
            best = r;
    std::printf("best design on this suite: %s (%.3f geomean IPC)\n",
                best.first.c_str(), best.second);
    return 0;
}
