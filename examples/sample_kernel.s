; Sample kernel for `ubrcsim --asm examples/sample_kernel.s`
;
; Sums the 64-bit words of a small table, then repeatedly hashes the
; sum. Demonstrates the assembly dialect: sections, labels, pseudo
; instructions, and the `result` convention (the tools and tests look
; this symbol up to read the kernel's answer).

        .data 0x100000
result: .word64 0
table:  .word64 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3

        .code
start:  la   s0, table
        li   s1, 16           ; elements
        li   s2, 0            ; sum
sum:    ld   t0, 0(s0)
        add  s2, s2, t0
        addi s0, s0, 8
        addi s1, s1, -1
        bnez s1, sum

        li   s3, 200000       ; hash rounds
        li   s4, 0x9e3779b97f4a7c15
mix:    mul  s2, s2, s4       ; multiply-xorshift round
        srli t1, s2, 29
        xor  s2, s2, t1
        addi s3, s3, -1
        bnez s3, mix

        la   t2, result
        sd   s2, 0(t2)
        halt
