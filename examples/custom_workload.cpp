/**
 * @file
 * Bring-your-own-kernel scenario: write a program in the mini-ISA
 * assembly, validate it on the architectural interpreter, then
 * measure how the paper's register cache behaves on it. This is the
 * path a user takes to evaluate register caching on *their* code.
 *
 * The example program is a string-search kernel (find all
 * occurrences of a pattern in a text, Horspool-flavoured skip loop).
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/sparse_memory.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "isa/functional_core.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;

namespace
{

const char *searchKernel = R"(
        ; count occurrences of a 4-byte pattern in a text buffer
        .data 0x100000
result: .word64 0
        .code
start:  li   s0, 0x200000     ; text base
        li   s1, 65536        ; text length
        li   s2, 0            ; position
        li   s3, 0            ; match count
        li   s4, 0x74786574   ; pattern "text" little-endian? bytes:
                              ; 0x74,0x65,0x78,0x74 = "text"
outer:  add  t0, s0, s2
        lwu  t1, 0(t0)        ; 4 text bytes
        bne  t1, s4, nomatch
        addi s3, s3, 1
nomatch: addi s2, s2, 1
        addi t2, s1, -4
        blt  s2, t2, outer
        la   t3, result
        sd   s3, 0(t3)
        halt
)";

} // namespace

int
main()
{
    // 1. Assemble.
    workload::Workload w;
    w.name = "string-search";
    w.description = "4-byte pattern scan over 64 KB of text";
    w.program = isa::assemble(searchKernel);
    std::printf("assembled %zu instructions; listing head:\n",
                w.program.code.size());
    for (size_t i = 0; i < 6; ++i)
        std::printf("  %s\n",
                    isa::disassemble(w.program.code[i]).c_str());

    // 2. Generate a data set: text with the pattern sprinkled in.
    w.initMemory = [prog = w.program](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        Rng rng(99);
        for (Addr a = 0; a < 65536; ++a)
            mem.writeByte(0x200000 + a,
                          static_cast<uint8_t>('a' + rng.below(16)));
        for (int i = 0; i < 50; ++i) {
            const Addr at = 0x200000 + rng.below(65500);
            mem.writeBlock(at,
                           reinterpret_cast<const uint8_t *>("text"),
                           4);
        }
    };

    // 3. Validate functionally first (always do this for new code).
    SparseMemory mem;
    w.initMemory(mem);
    isa::FunctionalCore golden(w.program, mem);
    golden.run(10'000'000);
    const uint64_t matches = mem.read(w.program.symbol("result"), 8);
    std::printf("\nfunctional run: halted=%d, matches found=%llu\n",
                golden.halted(),
                static_cast<unsigned long long>(matches));

    // 4. Time it on the paper's design (the golden checker re-runs
    //    the interpreter in lockstep inside the processor).
    const core::SimResult r =
        sim::runOne(sim::SimConfig::useBasedCache(), w, 0);
    std::printf("\ntimed run on the use-based register cache:\n");
    std::printf("  %llu instructions in %llu cycles -> IPC %.3f\n",
                static_cast<unsigned long long>(r.instsRetired),
                static_cast<unsigned long long>(r.cycles), r.ipc);
    std::printf("  bypass %.1f%% / cache %.1f%% / file %.1f%% of "
                "operands; miss rate %.2f%%/operand\n",
                100.0 * r.opBypass / r.operandReads(),
                100.0 * r.opCache / r.operandReads(),
                100.0 * r.opFile / r.operandReads(),
                100.0 * r.missPerOperand);
    return 0;
}
