/**
 * @file
 * Component-level scenario: drive the register cache and the
 * decoupled-index allocators directly with a synthetic register
 * reference stream — no processor at all. This is how to prototype a
 * new insertion/replacement/indexing policy against the paper's
 * ones before wiring it into the full timing model.
 *
 * The synthetic stream mimics the paper's workload character: a
 * degree-of-use distribution that is mostly 1 with a heavy tail, a
 * bypass network that satisfies ~57% of uses, and register lifetimes
 * of a few tens of "cycles".
 */

#include <cstdio>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "regcache/index_allocator.hh"
#include "regcache/register_cache.hh"

using namespace ubrc;
using namespace ubrc::regcache;

namespace
{

struct StreamStats
{
    uint64_t uses = 0;
    uint64_t bypassed = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return uses ? double(misses) / uses : 0;
    }
};

/** One synthetic value flowing through the machine. */
struct Value
{
    PhysReg preg;
    unsigned set;
    unsigned usesLeft;
    unsigned predicted;
    bool pinned;
    Cycle dies;
};

StreamStats
drive(InsertionPolicy ins, ReplacementPolicy repl, IndexPolicy idx,
      uint64_t steps)
{
    stats::StatGroup sg("rc");
    RegCacheParams params;
    params.insertion = ins;
    params.replacement = repl;
    params.indexing = idx;
    RegisterCache rc(params, sg);
    IndexAllocator ia(idx, params.numSets(), params.assoc);

    Rng rng(7);
    StreamStats out;
    std::deque<Value> live;
    // Physical registers come off a scrambled free list, as in a
    // real machine after warmup -- this is precisely why deriving
    // the cache index from the register number works poorly.
    std::vector<PhysReg> free_list;
    for (int p = 511; p >= 0; --p)
        free_list.push_back(static_cast<PhysReg>(p));
    for (size_t i = free_list.size() - 1; i > 0; --i)
        std::swap(free_list[i], free_list[rng.below(i + 1)]);

    for (Cycle now = 0; now < static_cast<Cycle>(steps); ++now) {
        // Produce ~1 value per cycle with a skewed degree of use.
        const uint64_t r = rng.below(100);
        unsigned uses = r < 55 ? 1 : r < 75 ? 2 : r < 85 ? 0
                        : r < 95 ? 3 + rng.below(3)
                                 : 8 + rng.below(8);
        if (free_list.empty())
            continue;
        const PhysReg preg = free_list.back();
        free_list.pop_back();

        Value v;
        v.preg = preg;
        v.usesLeft = uses;
        v.predicted = uses; // a perfect predictor, for clarity
        v.pinned = uses >= params.maxUse;
        v.set = ia.assign(preg, v.predicted);
        v.dies = now + 20 + rng.below(60);

        // ~57% of first uses ride the bypass network.
        unsigned stage1 = 0;
        if (v.usesLeft > 0 && rng.chance(0.57)) {
            ++stage1;
            --v.usesLeft;
            ++out.uses;
            ++out.bypassed;
        }
        if (shouldInsert(ins, v.pinned, v.predicted, stage1))
            rc.insert(preg, v.set, v.pinned ? params.maxUse
                                            : v.usesLeft,
                      v.pinned, now);
        live.push_back(v);

        // Consume outstanding uses of random live values.
        for (int k = 0; k < 2 && !live.empty(); ++k) {
            Value &u = live[rng.below(live.size())];
            if (u.usesLeft == 0)
                continue;
            --u.usesLeft;
            ++out.uses;
            if (auto e = rc.lookup(u.preg, u.set)) {
                e.read();
                ++out.hits;
            } else {
                rc.noteReadMiss();
                ++out.misses;
                rc.fill(u.preg, u.set, now);
            }
        }

        // Retire dead values: invalidate, release the set, and
        // return the register to the (now scrambled) free list.
        while (!live.empty() && live.front().dies <= now) {
            if (auto e = rc.lookup(live.front().preg, live.front().set))
                e.invalidate(now);
            ia.release(live.front().set, live.front().predicted);
            free_list.push_back(live.front().preg);
            live.pop_front();
        }
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("Synthetic-stream policy playground (no processor; "
                "drives RegisterCache directly)\n\n");
    struct Combo
    {
        const char *name;
        InsertionPolicy ins;
        ReplacementPolicy repl;
        IndexPolicy idx;
    };
    const Combo combos[] = {
        {"lru + preg idx", InsertionPolicy::Always,
         ReplacementPolicy::LRU, IndexPolicy::PhysReg},
        {"lru + round-robin", InsertionPolicy::Always,
         ReplacementPolicy::LRU, IndexPolicy::RoundRobin},
        {"non-bypass + rr", InsertionPolicy::NonBypass,
         ReplacementPolicy::LRU, IndexPolicy::RoundRobin},
        {"use-based + preg", InsertionPolicy::UseBased,
         ReplacementPolicy::UseBased, IndexPolicy::PhysReg},
        {"use-based + filtered-rr", InsertionPolicy::UseBased,
         ReplacementPolicy::UseBased,
         IndexPolicy::FilteredRoundRobin},
        {"use-based + minimum", InsertionPolicy::UseBased,
         ReplacementPolicy::UseBased, IndexPolicy::Minimum},
    };

    TextTable t({"policy combo", "uses", "bypassed", "hits", "misses",
                 "miss rate"});
    for (const auto &c : combos) {
        const StreamStats s = drive(c.ins, c.repl, c.idx, 200000);
        t.addRow({c.name, TextTable::num(s.uses),
                  TextTable::num(s.bypassed), TextTable::num(s.hits),
                  TextTable::num(s.misses),
                  TextTable::num(s.missRate(), 4)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Even on a synthetic stream with a perfect use "
                "predictor, use-based management plus decoupled\n"
                "indexing shows the paper's ordering. Swap in your "
                "own policy by editing this file.\n");
    return 0;
}
