/**
 * @file
 * Quickstart: simulate one SPECint-like kernel on the paper's
 * proposed design (64-entry, 2-way, use-based register cache with
 * filtered round-robin decoupled indexing) and print the headline
 * numbers next to a 3-cycle monolithic register file baseline.
 *
 * Usage: quickstart [workload] [max_insts]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gzip";
    const uint64_t max_insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 200000;

    std::printf("building workload '%s'...\n", name.c_str());
    const workload::Workload w = workload::buildWorkload(name);
    std::printf("  %s\n\n", w.description.c_str());

    // The paper's design point.
    const sim::SimConfig cached = sim::SimConfig::useBasedCache();
    std::printf("simulating: %s\n", cached.describe().c_str());
    const core::SimResult rc = sim::runOne(cached, w, max_insts);

    // The baseline it replaces.
    const sim::SimConfig mono = sim::SimConfig::monolithic(3);
    std::printf("simulating: %s\n\n", mono.describe().c_str());
    const core::SimResult rm = sim::runOne(mono, w, max_insts);

    std::printf("use-based register cache:\n");
    std::printf("  IPC                  %.3f\n", rc.ipc);
    std::printf("  operand sources      bypass %.1f%%  cache %.1f%%  "
                "file %.1f%%\n",
                100.0 * rc.opBypass / rc.operandReads(),
                100.0 * rc.opCache / rc.operandReads(),
                100.0 * rc.opFile / rc.operandReads());
    std::printf("  miss rate/operand    %.2f%%\n",
                100.0 * rc.missPerOperand);
    std::printf("  use predictor acc.   %.1f%%\n",
                100.0 * rc.douAccuracy);
    std::printf("  avg occupancy        %.1f of 64 entries\n",
                rc.avgOccupancy);
    std::printf("\n3-cycle monolithic register file:\n");
    std::printf("  IPC                  %.3f\n", rm.ipc);
    std::printf("\nspeedup of the cached design: %+.1f%%\n",
                100.0 * (rc.ipc / rm.ipc - 1.0));
    return 0;
}
