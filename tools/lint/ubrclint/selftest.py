"""Fixture-driven self-test.

tests/lint/bad/ is a miniature repository where every marked line
carries a `LINT-EXPECT: rule[, rule...]` comment naming the rule(s)
that must flag it — the expected and actual finding sets must match
exactly. tests/lint/good/ is a clean miniature repository that must
produce zero findings; its files declare `LINT-NEGATIVE: rule[, ...]`
markers naming the rules they negatively exercise, and every rule
must have at least one positive (bad) and one negative (good)
fixture.

The misparse probe replays the v1 line-regex patterns over the good
fixtures' raw text: each probed rule's naive pattern must match
somewhere (inside a raw string, a spliced comment, or a block
comment), proving the old checker would have false-positived where
the tokenizer does not.
"""

import os
import re
import sys

from . import RULE_NAMES
from .engine import discover, lint_tree

EXPECT_RE = re.compile(r"LINT-EXPECT:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")
NEG_RE = re.compile(r"LINT-NEGATIVE:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")

# The v1 rule patterns, verbatim in spirit: applied to raw physical
# lines with no lexical awareness. Each listed rule must false-
# positive somewhere in the good fixtures.
NAIVE_PATTERNS = {
    "nondeterminism": re.compile(
        r"(?<![\w.])s?rand\s*\(|\brandom_device\b|\bsystem_clock\b"),
    "stat-names": re.compile(
        r"[.\->]\s*(?:scalar|mean|distribution)\s*\(\s*\"([A-Z][^\"]*)\""),
    "header-hygiene": re.compile(r"\busing\s+namespace\b"),
    "naked-new": re.compile(r"(?<![\w.])new\s+[\w:(<]"),
    "raw-thread": re.compile(r"\bstd\s*::\s*j?thread\s*(?:\w+\s*)?[({]"),
    "deprecated-api": re.compile(r"\bscalarValue\b"),
}


def _scan_markers(root, marker_re):
    found = set()
    for relpath in discover(root, exclude_fixture_dir=False):
        full = os.path.join(root, relpath)
        with open(full, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                m = marker_re.search(line)
                if m:
                    for rule in re.split(r"\s*,\s*", m.group(1)):
                        found.add((relpath, lineno, rule))
    return found


def self_test(repo_root, err=sys.stderr):
    fixture_root = os.path.join(repo_root, "tests", "lint")
    bad_root = os.path.join(fixture_root, "bad")
    good_root = os.path.join(fixture_root, "good")
    for d in (bad_root, good_root):
        if not os.path.isdir(d):
            print("ubrc-lint: missing fixture dir %s" % d, file=err)
            return 2
    status = 0

    # -- bad fixtures: expected == actual, exactly -----------------
    expected = _scan_markers(bad_root, EXPECT_RE)
    bad_rules = {rule for (_, _, rule) in expected}
    unknown = bad_rules - RULE_NAMES - {"pragma"}
    for rule in sorted(unknown):
        print("self-test: LINT-EXPECT names unknown rule '%s'"
              % rule, file=err)
        status = 1

    actual = {f.key() for f in lint_tree(bad_root,
                                         exclude_fixture_dir=False)}
    for key in sorted(expected - actual):
        print("self-test: MISSING expected finding %s:%d [%s]" % key,
              file=err)
        status = 1
    for key in sorted(actual - expected):
        print("self-test: UNEXPECTED finding %s:%d [%s]" % key,
              file=err)
        status = 1

    for rule in sorted(RULE_NAMES - bad_rules):
        print("self-test: rule '%s' has no bad (positive) fixture"
              % rule, file=err)
        status = 1

    # -- good fixtures: clean, and negative coverage ---------------
    good = lint_tree(good_root, exclude_fixture_dir=False)
    for f in good:
        print("self-test: clean fixture flagged: %s" % f, file=err)
        status = 1

    negative = {rule for (_, _, rule)
                in _scan_markers(good_root, NEG_RE)}
    for rule in sorted(negative - RULE_NAMES):
        print("self-test: LINT-NEGATIVE names unknown rule '%s'"
              % rule, file=err)
        status = 1
    for rule in sorted(RULE_NAMES - negative):
        print("self-test: rule '%s' has no good (negative) fixture"
              % rule, file=err)
        status = 1

    # -- misparse probe --------------------------------------------
    # The naive v1 patterns must trip over the good fixtures' raw
    # text; the tokenizer rules above already proved they do not.
    naive_hits = {rule: 0 for rule in NAIVE_PATTERNS}
    for relpath in discover(good_root, exclude_fixture_dir=False):
        if not relpath.endswith((".cc", ".hh", ".cpp", ".hpp")):
            continue
        with open(os.path.join(good_root, relpath),
                  encoding="utf-8") as f:
            for line in f:
                for rule, pat in NAIVE_PATTERNS.items():
                    if pat.search(line):
                        naive_hits[rule] += 1
    for rule, hits in sorted(naive_hits.items()):
        if not hits:
            print("self-test: misparse probe: naive '%s' pattern "
                  "never matched a good fixture — the trap fixture "
                  "for the v1 regex false positive is gone" % rule,
                  file=err)
            status = 1

    if status == 0:
        probe_total = sum(naive_hits.values())
        print("self-test: ok (%d rules, %d expected findings, "
              "clean fixtures clean, %d naive-regex false "
              "positives caught by the tokenizer)"
              % (len(RULE_NAMES), len(expected), probe_total))
    return status
