"""Parsed-file model: tokens, comments, waiver pragmas, hot regions.

A waiver is always an in-source pragma, written in a comment on the
offending line or the line directly above it:

    // ubrc-lint: allow(rule-name)

Variants:

    // ubrc-lint: allow-file(rule)   whole file
    // ubrc-lint: allow-fn(rule)     rest of the enclosing function
                                     (or brace block), for setup code
                                     inside designated hot files

Hot-path regions for the hot-path-alloc rule are delimited the same
way:

    // ubrc-lint: hot                start a hot region
    // ubrc-lint: hot-end            end it

In non-C++ files (DESIGN.md, the Python validator) pragmas are
recognised on raw lines, since those files are not tokenized.
"""

import re

from . import lexer

CXX_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp")

PRAGMA_RE = re.compile(
    r"ubrc-lint:\s*(allow|allow-file|allow-fn)\(([^)]*)\)")
HOT_RE = re.compile(r"ubrc-lint:\s*hot(-end)?\b")


class Finding:
    __slots__ = ("rule", "relpath", "line", "message")

    def __init__(self, rule, relpath, line, message):
        self.rule = rule
        self.relpath = relpath
        self.line = line
        self.message = message

    def key(self):
        return (self.relpath, self.line, self.rule)

    def sort_key(self):
        return (self.relpath, self.line, self.rule, self.message)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.relpath, self.line, self.rule,
                                   self.message)


class SourceFile:
    """A parsed file: raw text, token stream (C++ only), comments,
    allow pragmas, and hot-region markers."""

    def __init__(self, path, relpath, rule_names):
        self.path = path
        self.relpath = relpath
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self.is_cxx = relpath.endswith(CXX_EXTENSIONS)
        if self.is_cxx:
            self.tokens, self.comments = lexer.lex(self.text)
        else:
            self.tokens = []
            self.comments = []
        # lineno -> set of rules allowed on that line (covers the
        # pragma's own line and the one below it).
        self.line_allows = {}
        self.file_allows = set()
        # allow-fn pragmas: list of (lineno, rules); resolved into
        # ranges lazily because they need brace structure.
        self._fn_allows = []
        self._fn_ranges = None
        self.pragma_errors = []
        self.hot_marks = []  # (lineno, is_end)
        self._scan_pragmas(rule_names)

    # -- pragma scanning -------------------------------------------------

    def _pragma_rows(self):
        if self.is_cxx:
            for c in self.comments:
                for lineno, text in c.rows:
                    yield lineno, text
        else:
            for lineno, text in enumerate(self.lines, 1):
                yield lineno, text

    def _scan_pragmas(self, rule_names):
        for lineno, text in self._pragma_rows():
            for m in HOT_RE.finditer(text):
                self.hot_marks.append((lineno, bool(m.group(1))))
            for m in PRAGMA_RE.finditer(text):
                names = {s.strip() for s in m.group(2).split(",")
                         if s.strip()}
                bad = names - rule_names
                if bad or not names:
                    self.pragma_errors.append(Finding(
                        "pragma", self.relpath, lineno,
                        "unknown rule(s) %s in ubrc-lint pragma "
                        "(valid: %s)"
                        % (sorted(bad) if bad else "<none>",
                           ", ".join(sorted(rule_names)))))
                    continue
                kind = m.group(1)
                if kind == "allow-file":
                    self.file_allows |= names
                elif kind == "allow-fn":
                    self._fn_allows.append((lineno, names))
                else:
                    self.line_allows.setdefault(
                        lineno, set()).update(names)
                    self.line_allows.setdefault(
                        lineno + 1, set()).update(names)

    def _resolve_fn_ranges(self):
        """allow-fn(rule) waives from the pragma to the close of the
        innermost brace block containing the pragma line."""
        if self._fn_ranges is not None:
            return self._fn_ranges
        self._fn_ranges = []
        if not self._fn_allows:
            return self._fn_ranges
        # Brace events in token order: (line, +1/-1).
        events = [(t.line, 1 if t.value == "{" else -1)
                  for t in self.tokens
                  if t.kind == "punct" and t.value in "{}"]
        for start, rules in self._fn_allows:
            # The first close brace after `start` that drops below the
            # depth at `start` closes the enclosing block.
            end = len(self.lines) or start
            depth = 0
            base = None
            for line, delta in events:
                if base is None and line > start:
                    base = depth
                depth += delta
                if base is not None and depth < base:
                    end = line
                    break
            self._fn_ranges.append((start, end, rules))
        return self._fn_ranges

    # -- queries ---------------------------------------------------------

    def allowed(self, rule, lineno):
        if rule in self.file_allows:
            return True
        if rule in self.line_allows.get(lineno, set()):
            return True
        for start, end, rules in self._resolve_fn_ranges():
            if rule in rules and start <= lineno <= end:
                return True
        return False

    def hot_ranges(self):
        """Sorted (start_line, end_line) hot regions from markers. An
        unclosed `hot` extends to end of file."""
        out = []
        start = None
        for lineno, is_end in sorted(self.hot_marks):
            if is_end:
                if start is not None:
                    out.append((start, lineno))
                    start = None
            elif start is None:
                start = lineno
        if start is not None:
            out.append((start, len(self.lines) or start))
        return out
