"""Per-file rules, all operating on the token stream.

Because rules see tokens — never raw or half-stripped lines — an
identifier inside a string literal, a raw string, or a spliced
comment can no longer trip a rule. That was the latent misparse
class of the v1 line-regex checker (see tests/lint/good/src/
trap_*.{cc,hh} and the self-test's misparse probe).
"""

import re

from .source import CXX_EXTENSIONS, Finding


class Rule:
    """A per-file rule. Subclasses set name/description and implement
    check_file(sf) -> [Finding]."""

    name = ""
    description = ""

    def applies(self, relpath):
        return relpath.endswith(CXX_EXTENSIONS)

    def check_file(self, sf):
        return []


def _idents(sf):
    for t in sf.tokens:
        if t.kind == "ident":
            yield t


class NondeterminismRule(Rule):
    name = "nondeterminism"
    description = ("forbid nondeterminism sources in src/: rand(), "
                   "random_device, wall-clock reads")

    CALLS = {
        "rand": "rand() breaks seeded reproducibility; use "
                "common/rng.hh",
        "srand": "srand() breaks seeded reproducibility; use "
                 "common/rng.hh",
        "rand_r": "rand_r() breaks seeded reproducibility; use "
                  "common/rng.hh",
        "drand48": "drand48() breaks seeded reproducibility; use "
                   "common/rng.hh",
        "lrand48": "lrand48() breaks seeded reproducibility; use "
                   "common/rng.hh",
        "time": "time() reads the wall clock; simulated time must "
                "come from the cycle counter",
        "gettimeofday": "gettimeofday() reads the wall clock",
        "clock_gettime": "clock_gettime() reads the wall clock",
        "localtime": "calendar-time conversion implies a wall-clock "
                     "read",
        "gmtime": "calendar-time conversion implies a wall-clock "
                  "read",
    }
    MENTIONS = {
        "random_device": "std::random_device is a nondeterministic "
                         "seed source; use common/rng.hh with an "
                         "explicit seed",
        "system_clock": "std::chrono::system_clock is the wall "
                        "clock; use steady_clock for durations, "
                        "never for simulated state",
    }

    def applies(self, relpath):
        return (relpath.startswith("src/")
                and relpath.endswith(CXX_EXTENSIONS))

    def check_file(self, sf):
        out = []
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            if t.value in self.MENTIONS:
                out.append(Finding(self.name, sf.relpath, t.line,
                                   self.MENTIONS[t.value]))
                continue
            if t.value not in self.CALLS:
                continue
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            prev = toks[i - 1] if i > 0 else None
            if nxt is None or nxt.value != "(":
                continue
            # Member calls (x.time(), obj->rand()) are different
            # functions; `std::time(` is still the banned one.
            if prev is not None and prev.value in (".", "->"):
                continue
            out.append(Finding(self.name, sf.relpath, t.line,
                               self.CALLS[t.value]))
        return out


class UnorderedIterRule(Rule):
    name = "unordered-iter"
    description = ("iteration over unordered containers declared in "
                   "the same file has host-dependent order; sort or "
                   "use an ordered container before feeding stats or "
                   "output")

    UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
                 "unordered_multiset"}

    def applies(self, relpath):
        return (relpath.startswith("src/")
                and relpath.endswith(CXX_EXTENSIONS))

    def _declared_names(self, toks):
        """Names declared as `unordered_xxx<...> name`."""
        names = set()
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.value not in self.UNORDERED:
                continue
            j = i + 1
            if j >= n or toks[j].value != "<":
                continue
            depth = 0
            while j < n:
                if toks[j].value == "<":
                    depth += 1
                elif toks[j].value == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].value == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                j += 1
            j += 1
            if j < n and toks[j].kind == "ident":
                # Declaration, not a template argument elsewhere:
                # next token ends the declarator.
                k = j + 1
                if k < n and toks[k].value in (";", "=", "{", ","):
                    names.add(toks[j].value)
        return names

    def check_file(self, sf):
        toks = sf.tokens
        names = self._declared_names(toks)
        if not names:
            return []
        out = []
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.value not in names:
                continue
            nxt = toks[i + 1] if i + 1 < n else None
            prev = toks[i - 1] if i > 0 else None
            hit = False
            # name.begin() / name.cbegin()
            if nxt is not None and nxt.value in (".",) and \
                    i + 3 < n and toks[i + 2].value in ("begin",
                                                        "cbegin") \
                    and toks[i + 3].value == "(":
                hit = True
            # range-for: `for (... : [expr.]name)`
            if nxt is not None and nxt.value == ")" and \
                    prev is not None:
                j = i - 1
                while j > 0 and toks[j].value in (".", "->") or \
                        (j > 0 and toks[j].kind == "ident"
                         and toks[j + 1].value in (".", "->")):
                    j -= 1
                if toks[j].value == ":":
                    hit = True
            if hit:
                out.append(Finding(
                    self.name, sf.relpath, t.line,
                    "iterating unordered container '%s' has "
                    "host-dependent order; sort first or use an "
                    "ordered container before feeding stats or "
                    "output" % t.value))
        return out


class StatNamesRule(Rule):
    name = "stat-names"
    description = ("stat names registered on a StatGroup must be "
                   "lower_snake_case, matching the JSON schema "
                   "convention")

    NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
    REGISTRARS = {"scalar", "mean", "distribution"}

    def applies(self, relpath):
        return (relpath.startswith("src/")
                and relpath.endswith(CXX_EXTENSIONS))

    def check_file(self, sf):
        out = []
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.value not in self.REGISTRARS:
                continue
            if i == 0 or toks[i - 1].value not in (".", "->"):
                continue
            if i + 2 >= n or toks[i + 1].value != "(" or \
                    toks[i + 2].kind != "str":
                continue
            name = string_value(toks[i + 2])
            if name is None:
                continue
            if not self.NAME_RE.match(name) or len(name) > 48:
                out.append(Finding(
                    self.name, sf.relpath, toks[i + 2].line,
                    "stat name '%s' is not lower_snake_case "
                    "([a-z][a-z0-9_]*, <= 48 chars)" % name))
        return out


class HeaderHygieneRule(Rule):
    name = "header-hygiene"
    description = ("headers carry the canonical UBRC_<PATH>_HH "
                   "include guard (or #pragma once) and contain no "
                   "`using namespace`")

    def applies(self, relpath):
        return relpath.endswith((".hh", ".hpp"))

    @staticmethod
    def expected_guard(relpath):
        trimmed = relpath
        if trimmed.startswith("src/"):
            trimmed = trimmed[len("src/"):]
        return "UBRC_" + re.sub(r"[^A-Za-z0-9]", "_", trimmed).upper()

    def check_file(self, sf):
        out = []
        expected = self.expected_guard(sf.relpath)
        guard = None
        guard_line = 1
        has_pragma_once = False
        pps = [t for t in sf.tokens if t.kind == "pp"]
        for t in pps:
            if re.match(r"#\s*pragma\s+once\b", t.value):
                has_pragma_once = True
                break
            m = re.match(r"#\s*ifndef\s+(\w+)", t.value)
            if m:
                guard = m.group(1)
                guard_line = t.line
                break
        if not has_pragma_once:
            if guard is None:
                out.append(Finding(
                    self.name, sf.relpath, 1,
                    "missing include guard (expected #ifndef %s or "
                    "#pragma once)" % expected))
            elif guard != expected:
                out.append(Finding(
                    self.name, sf.relpath, guard_line,
                    "include guard '%s' does not match the canonical "
                    "'%s'" % (guard, expected)))
            elif not any(
                    re.match(r"#\s*define\s+%s\b" % re.escape(guard),
                             t.value) for t in pps):
                out.append(Finding(
                    self.name, sf.relpath, guard_line,
                    "include guard '%s' is never #defined" % guard))
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind == "ident" and t.value == "using" and \
                    i + 1 < len(toks) and \
                    toks[i + 1].value == "namespace":
                out.append(Finding(
                    self.name, sf.relpath, t.line,
                    "`using namespace` in a header leaks into every "
                    "includer; qualify names instead"))
        return out


class NakedNewRule(Rule):
    name = "naked-new"
    description = ("no naked new/delete expressions; own memory with "
                   "containers or std::make_unique")

    def applies(self, relpath):
        return (relpath.split("/", 1)[0] in ("src", "bench", "tools")
                and relpath.endswith(CXX_EXTENSIONS))

    def check_file(self, sf):
        out = []
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            nxt = toks[i + 1] if i + 1 < n else None
            prev = toks[i - 1] if i > 0 else None
            if t.value == "new":
                if nxt is None:
                    continue
                if nxt.kind == "ident" or nxt.value in ("(", "<",
                                                        "::"):
                    out.append(Finding(
                        self.name, sf.relpath, t.line,
                        "naked `new`; use std::make_unique, a "
                        "container, or annotate the site"))
            elif t.value == "delete":
                # `= delete` (deleted members) is not a delete
                # expression.
                if prev is not None and prev.value == "=":
                    continue
                if nxt is not None and (nxt.kind == "ident"
                                        or nxt.value in ("[", "(",
                                                         "*", "::")):
                    out.append(Finding(
                        self.name, sf.relpath, t.line,
                        "naked `delete`; owning types should release "
                        "storage via RAII"))
        return out


class DeprecatedApiRule(Rule):
    name = "deprecated-api"
    description = ("forbid reintroduction of removed APIs: "
                   "StatGroup::scalarValue() free-form string queries "
                   "(read typed SimResult/SupplierStats fields or use "
                   "StatVisitor visitation)")

    BANNED = {
        "scalarValue": "StatGroup::scalarValue() was removed; read "
                       "typed SimResult/SupplierStats fields or "
                       "visit() the group with a StatVisitor",
    }

    def check_file(self, sf):
        return [Finding(self.name, sf.relpath, t.line,
                        self.BANNED[t.value])
                for t in _idents(sf) if t.value in self.BANNED]


class RawThreadRule(Rule):
    name = "raw-thread"
    description = ("no raw std::thread/std::jthread construction "
                   "outside src/sched/; submit tasks to the global "
                   "work-stealing scheduler (sched/scheduler.hh) "
                   "instead of growing private pools")

    def applies(self, relpath):
        return (not relpath.startswith("src/sched/")
                and relpath.endswith(CXX_EXTENSIONS))

    def check_file(self, sf):
        out = []
        toks = sf.tokens
        n = len(toks)
        thread_vecs = set()
        # vector<std::thread> name  ->  emplace_back on `name` is a
        # construction site.
        for i, t in enumerate(toks):
            if t.kind == "ident" and t.value == "vector" and \
                    i + 5 < n and toks[i + 1].value == "<" and \
                    toks[i + 2].value == "std" and \
                    toks[i + 3].value == "::" and \
                    toks[i + 4].value in ("thread", "jthread") and \
                    toks[i + 5].value == ">" and \
                    i + 6 < n and toks[i + 6].kind == "ident":
                thread_vecs.add(toks[i + 6].value)
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            hit = False
            line = t.line
            if t.value in ("thread", "jthread") and i >= 2 and \
                    toks[i - 1].value == "::" and \
                    toks[i - 2].value == "std":
                j = i + 1
                if j < n and toks[j].kind == "ident":
                    j += 1  # named object: std::thread t(...)
                if j < n and toks[j].value in ("(", "{"):
                    hit = True
            elif t.value == "emplace_back" and i >= 2 and \
                    toks[i - 1].value == "." and \
                    toks[i - 2].kind == "ident" and \
                    toks[i - 2].value in thread_vecs and \
                    i + 1 < n and toks[i + 1].value == "(":
                hit = True
            if hit:
                out.append(Finding(
                    self.name, sf.relpath, line,
                    "raw thread construction outside src/sched/; "
                    "submit a task group to the global scheduler "
                    "(sched/scheduler.hh) or annotate the site"))
        return out


class HotPathAllocRule(Rule):
    name = "hot-path-alloc"
    description = ("no heap allocation inside `// ubrc-lint: hot` "
                   "regions or the designated hot files: new, "
                   "make_unique/make_shared, container growth "
                   "(push_back, resize, ...), std::string "
                   "construction — the packed-SoA throughput win "
                   "depends on allocation-free inner loops")

    # Whole files whose every line is hot (the PR-8 SoA core). The
    # Processor issue/retire paths carry `hot` region markers instead
    # because the file also holds cold setup code.
    HOT_FILES = frozenset({
        "src/regcache/packed_cache.hh",
    })

    GROWTH = {"push_back", "emplace_back", "emplace", "emplace_front",
              "push_front", "push", "insert", "resize", "reserve",
              "assign", "append", "emplace_hint"}
    MAKERS = {"make_unique", "make_shared"}

    def applies(self, relpath):
        return relpath.endswith(CXX_EXTENSIONS)

    def check_file(self, sf):
        ranges = sf.hot_ranges()
        whole_file = sf.relpath in self.HOT_FILES
        if not ranges and not whole_file:
            return []

        def in_hot(line):
            if whole_file:
                return True
            return any(a <= line <= b for a, b in ranges)

        out = []
        toks = sf.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "ident" or not in_hot(t.line):
                continue
            nxt = toks[i + 1] if i + 1 < n else None
            prev = toks[i - 1] if i > 0 else None
            msg = None
            if t.value == "new" and nxt is not None and \
                    (nxt.kind == "ident" or nxt.value in ("(", "<",
                                                          "::")):
                msg = "`new` in a hot region"
            elif t.value in self.MAKERS and nxt is not None and \
                    nxt.value in ("<", "("):
                msg = "std::%s in a hot region" % t.value
            elif t.value in self.GROWTH and prev is not None and \
                    prev.value in (".", "->") and nxt is not None \
                    and nxt.value == "(":
                msg = ("container growth call .%s() in a hot region"
                       % t.value)
            elif t.value == "string" and i >= 2 and \
                    toks[i - 1].value == "::" and \
                    toks[i - 2].value == "std" and nxt is not None:
                # Construction only: `std::string s`, `std::string(`,
                # `std::string{`. References, pointers, and template
                # arguments don't allocate.
                if nxt.kind == "ident" or nxt.value in ("(", "{"):
                    msg = "std::string construction in a hot region"
            elif t.value == "to_string" and nxt is not None and \
                    nxt.value == "(":
                msg = "std::to_string allocates in a hot region"
            if msg:
                out.append(Finding(
                    self.name, sf.relpath, t.line,
                    msg + "; hot paths must be allocation-free "
                    "(hoist the storage or annotate a considered "
                    "amortised site)"))
        return out


def string_value(tok):
    """The contents of a string token (quotes and prefix stripped),
    or None for raw strings / weird prefixes."""
    v = tok.value
    if tok.raw:
        return None
    for p in ("u8", "u", "U", "L"):
        if v.startswith(p + '"'):
            v = v[len(p):]
            break
    if len(v) >= 2 and v[0] == '"' and v[-1] == '"':
        return v[1:-1]
    return None


FILE_RULES = [NondeterminismRule(), UnorderedIterRule(),
              StatNamesRule(), HeaderHygieneRule(), NakedNewRule(),
              DeprecatedApiRule(), RawThreadRule(),
              HotPathAllocRule()]
