"""Discovery, caching, and (optionally parallel) analysis.

The content-hash cache keys each file's per-file findings on
(sha256 of file contents, tool fingerprint). The fingerprint hashes
every source file of this package, so editing any rule invalidates
the whole cache — a lint cache that survives rule changes reports
stale verdicts. Tree rules always run: their input is the whole
project model, not one file.
"""

import concurrent.futures
import hashlib
import json
import os

from . import RULE_NAMES, RULES, TREE_RULES
from .rules_tree import TreeRule
from .source import CXX_EXTENSIONS, Finding, SourceFile

EXCLUDED_DIRS = {".git", "results", "__pycache__"}

# Non-C++ files the project model includes: the human-facing
# registries in DESIGN.md and the Python results validator that
# schema-drift cross-checks.
EXTRA_FILES = ("DESIGN.md", "tools/check_results_json.py")


def discover(root, exclude_fixture_dir=True):
    """All lintable relpaths under root, sorted."""
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        rel = os.path.relpath(dirpath, root)
        dirnames[:] = [
            d for d in sorted(dirnames)
            if d not in EXCLUDED_DIRS and not d.startswith("build")
            and not (exclude_fixture_dir
                     and os.path.join(rel, d).replace("\\", "/")
                     .lstrip("./") == "tests/lint")]
        for fn in sorted(filenames):
            p = os.path.normpath(os.path.join(rel, fn))
            p = p.replace(os.sep, "/")
            if p.startswith("./"):
                p = p[2:]
            if fn.endswith(CXX_EXTENSIONS) or p in EXTRA_FILES:
                out.append(p)
    return out


# -- content-hash cache ------------------------------------------------

def tool_fingerprint():
    """sha256 over this package's source files."""
    h = hashlib.sha256()
    pkg = os.path.dirname(os.path.abspath(__file__))
    for fn in sorted(os.listdir(pkg)):
        if not fn.endswith(".py"):
            continue
        with open(os.path.join(pkg, fn), "rb") as f:
            h.update(fn.encode())
            h.update(f.read())
    driver = os.path.join(os.path.dirname(pkg), "ubrc-lint")
    if os.path.isfile(driver):
        with open(driver, "rb") as f:
            h.update(f.read())
    return h.hexdigest()


class ResultCache:
    """Per-file finding cache, persisted as one JSON file."""

    def __init__(self, path):
        self.path = path
        self.fingerprint = tool_fingerprint()
        self.entries = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path and os.path.isfile(path):
            try:
                with open(path, encoding="utf-8") as f:
                    data = json.load(f)
                if data.get("fingerprint") == self.fingerprint:
                    self.entries = data.get("entries", {})
            except (OSError, ValueError):
                pass

    def get(self, content_hash):
        got = self.entries.get(content_hash)
        if got is None:
            self.misses += 1
            return None
        self.hits += 1
        return [Finding(*item) for item in got]

    def put(self, content_hash, findings):
        self.entries[content_hash] = [
            [f.rule, f.relpath, f.line, f.message] for f in findings]
        self._dirty = True
        self.misses += 0

    def save(self):
        if not self.path or not self._dirty:
            return
        tmp = self.path + ".tmp"
        os.makedirs(os.path.dirname(os.path.abspath(self.path)),
                    exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump({"fingerprint": self.fingerprint,
                       "entries": self.entries}, f)
        os.replace(tmp, self.path)


def content_hash(path):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        h.update(f.read())
    return h.hexdigest()


# -- analysis ----------------------------------------------------------

def check_file(sf):
    """Per-file rules + pragma errors for one parsed file, with
    waivers applied."""
    findings = list(sf.pragma_errors)
    for rule in RULES:
        if isinstance(rule, TreeRule) or not rule.applies(sf.relpath):
            continue
        for f in rule.check_file(sf):
            if not sf.allowed(f.rule, f.line):
                findings.append(f)
    return findings


def _parse_and_check(args):
    """Worker: parse one file and run the per-file rules. Lives at
    module scope so ProcessPoolExecutor can import it."""
    path, relpath = args
    sf = SourceFile(path, relpath, RULE_NAMES)
    return relpath, sf, check_file(sf)


def lint_tree(root, jobs=1, cache=None, exclude_fixture_dir=True):
    """Lint the whole tree under root. Returns sorted findings.

    Per-file findings come from the cache when the content hash
    matches; files still get parsed because the tree rules need
    every token stream.
    """
    relpaths = discover(root, exclude_fixture_dir)
    work = [(os.path.join(root, rp), rp) for rp in relpaths]

    files = {}
    findings = []

    if jobs > 1 and len(work) > 4:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs) as pool:
            parsed = list(pool.map(_parse_and_check, work,
                                   chunksize=8))
    else:
        parsed = [_parse_and_check(w) for w in work]

    for relpath, sf, file_findings in parsed:
        files[relpath] = sf
        if cache is not None:
            chash = content_hash(os.path.join(root, relpath))
            cached = cache.get(chash)
            if cached is not None:
                findings.extend(cached)
                continue
            cache.put(chash, file_findings)
        findings.extend(file_findings)

    for rule in TREE_RULES:
        for f in rule.check_tree(root, files):
            sf = files.get(f.relpath)
            if sf is None or not sf.allowed(f.rule, f.line):
                findings.append(f)

    if cache is not None:
        cache.save()
    return sorted(findings, key=Finding.sort_key)


def lint_files(root, paths, cache=None):
    """Per-file rules over explicit paths (tree rules skipped)."""
    findings = []
    for path in paths:
        relpath = os.path.relpath(os.path.abspath(path),
                                  root).replace(os.sep, "/")
        if cache is not None:
            chash = content_hash(path)
            cached = cache.get(chash)
            if cached is not None:
                findings.extend(cached)
                continue
        sf = SourceFile(path, relpath, RULE_NAMES)
        file_findings = check_file(sf)
        if cache is not None:
            cache.put(chash, file_findings)
        findings.extend(file_findings)
    if cache is not None:
        cache.save()
    return sorted(findings, key=Finding.sort_key)
