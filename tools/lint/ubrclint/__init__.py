"""ubrclint: the token-aware implementation behind tools/lint/ubrc-lint.

Layout:

    lexer.py        real C++ lexer (tokens + comments)
    source.py       SourceFile: pragmas, hot regions, Finding
    cppmodel.py     includes / function spans / enum members
    rules_file.py   per-file rules on the token stream
    rules_tree.py   cross-file rules: exit-codes, trace-version,
                    include-layering
    schema_drift.py schema-drift: C++ serializers vs the Python
                    results validator
    engine.py       discovery, content-hash cache, parallel analysis
    output.py       text / json / sarif renderers
    selftest.py     LINT-EXPECT fixture suite + misparse probe
"""

from .rules_file import FILE_RULES
from .rules_tree import (ExitCodesRule, IncludeLayeringRule,
                         TraceVersionRule, TreeRule)
from .schema_drift import SchemaDriftRule

TREE_RULES = [ExitCodesRule(), TraceVersionRule(),
              IncludeLayeringRule(), SchemaDriftRule()]

RULES = FILE_RULES + TREE_RULES
RULE_NAMES = frozenset(r.name for r in RULES)

TOOL_NAME = "ubrc-lint"
TOOL_VERSION = "2.0"
