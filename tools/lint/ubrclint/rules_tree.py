"""Cross-file (tree) rules: exit-codes, trace-version, and the
include-layering graph.

Tree rules run once per lint with the full project model (every
parsed SourceFile keyed by relpath) and may anchor findings in any
file, including DESIGN.md — the human-facing registries there are
cross-checked against the code the same way the code is checked
against itself.
"""

import re

from . import cppmodel
from .rules_file import Rule
from .source import Finding


class TreeRule(Rule):
    """A cross-file rule; runs once per tree with the full file map."""

    def applies(self, relpath):
        return False  # tree-only

    def check_tree(self, root, files):
        return []


class ExitCodesRule(TreeRule):
    name = "exit-codes"
    description = ("SimError exit codes are unique, avoid reserved "
                   "0/1, cover every ErrorKind, and match the "
                   "DESIGN.md registry table")

    ENUM_FILE = "src/sim/sim_error.hh"
    MAP_FILE = "src/sim/sim_error.cc"
    DOC_FILE = "DESIGN.md"

    ROW_RE = re.compile(
        r"^\|\s*`ErrorKind::(\w+)`\s*\|\s*(\d+)\s*\|")

    def check_tree(self, root, files):
        enum_sf = files.get(self.ENUM_FILE)
        map_sf = files.get(self.MAP_FILE)
        if enum_sf is None or map_sf is None:
            return []
        out = []

        kinds = {name: line for name, _, line in
                 cppmodel.enum_members(enum_sf, "ErrorKind")}

        # The kind -> code mapping, from exitCodeFor()'s switch:
        # `case ErrorKind::X: return N;` as a token pattern.
        mapping = {}
        toks = map_sf.tokens
        n = len(toks)
        for i in range(n - 7):
            if not (toks[i].value == "case"
                    and toks[i + 1].value == "ErrorKind"
                    and toks[i + 2].value == "::"
                    and toks[i + 3].kind == "ident"
                    and toks[i + 4].value == ":"
                    and toks[i + 5].value == "return"
                    and toks[i + 6].kind == "num"
                    and toks[i + 7].value == ";"):
                continue
            kind = toks[i + 3].value
            code = int(toks[i + 6].value, 0)
            lineno = toks[i].line
            if code in (0, 1):
                out.append(Finding(
                    self.name, map_sf.relpath, lineno,
                    "exit code %d is reserved (0 = success, "
                    "1 = fatal())" % code))
            dup = [k for k, (c, _) in mapping.items() if c == code]
            if dup:
                out.append(Finding(
                    self.name, map_sf.relpath, lineno,
                    "duplicate exit code %d (already used by "
                    "ErrorKind::%s)" % (code, dup[0])))
            if kind not in mapping:
                mapping[kind] = (code, lineno)

        for kind, lineno in sorted(kinds.items()):
            if kind not in mapping:
                out.append(Finding(
                    self.name, enum_sf.relpath, lineno,
                    "ErrorKind::%s has no exit code in exitCodeFor()"
                    % kind))

        # Cross-check the human-facing registry in DESIGN.md.
        doc_sf = files.get(self.DOC_FILE)
        if doc_sf is not None:
            rows = {}
            for lineno, line in enumerate(doc_sf.lines, 1):
                m = self.ROW_RE.match(line.strip())
                if m:
                    rows[m.group(1)] = (int(m.group(2)), lineno)
            if not rows:
                out.append(Finding(
                    self.name, doc_sf.relpath, 1,
                    "no exit-code registry table found (rows of the "
                    "form `| \\`ErrorKind::X\\` | N | ... |`)"))
            else:
                for kind, (code, _) in sorted(mapping.items()):
                    if kind not in rows:
                        out.append(Finding(
                            self.name, doc_sf.relpath, 1,
                            "registry table is missing "
                            "ErrorKind::%s (exit %d)" % (kind, code)))
                    elif rows[kind][0] != code:
                        out.append(Finding(
                            self.name, doc_sf.relpath, rows[kind][1],
                            "registry records exit code %d for "
                            "ErrorKind::%s, but exitCodeFor() "
                            "returns %d"
                            % (rows[kind][0], kind, code)))
                for kind, (code, lineno) in sorted(rows.items()):
                    if kind not in mapping and kind in kinds:
                        continue  # flagged as missing case above
                    if kind not in kinds:
                        out.append(Finding(
                            self.name, doc_sf.relpath, lineno,
                            "registry row names unknown "
                            "ErrorKind::%s" % kind))
        return out


class TraceVersionRule(TreeRule):
    name = "trace-version"
    description = ("trace EventKind wire codes are dense and "
                   "append-only, numEventKinds/traceVersion agree, "
                   "and the DESIGN.md event-vocabulary table matches "
                   "the header")

    HDR_FILE = "src/trace/trace_format.hh"
    DOC_FILE = "DESIGN.md"

    TABLE_RE = re.compile(r"^\|\s*Event kind\s*\|\s*Code\s*\|")
    ROW_RE = re.compile(r"^\|\s*`(\w+)`\s*\|\s*(\d+)\s*\|")
    DOC_VERSION_RE = re.compile(r"`trace_version`\s+is\s+(\d+)")

    def check_tree(self, root, files):
        hdr = files.get(self.HDR_FILE)
        if hdr is None:
            return []
        out = []

        kinds = {}   # name -> (code, lineno), declaration order
        prev_code = -1
        for name, value, lineno in cppmodel.enum_members(hdr,
                                                         "EventKind"):
            code = value if value is not None else prev_code + 1
            dup = [k for k, (c, _) in kinds.items() if c == code]
            if dup:
                out.append(Finding(
                    self.name, hdr.relpath, lineno,
                    "duplicate wire code %d (already used by %s)"
                    % (code, dup[0])))
            elif code != prev_code + 1:
                out.append(Finding(
                    self.name, hdr.relpath, lineno,
                    "wire code %d after %d; codes are dense and "
                    "append-only (expected %d)"
                    % (code, prev_code, prev_code + 1)))
            prev_code = max(prev_code, code)
            if name not in kinds:
                kinds[name] = (code, lineno)
        if not kinds:
            return out

        version, _ = cppmodel.find_constant(hdr, "traceVersion")
        count, count_line = cppmodel.find_constant(hdr,
                                                   "numEventKinds")
        if count is not None and count != prev_code + 1:
            out.append(Finding(
                self.name, hdr.relpath, count_line,
                "numEventKinds is %d but the highest wire code "
                "is %d (expected %d)"
                % (count, prev_code, prev_code + 1)))
        if version is None:
            out.append(Finding(
                self.name, hdr.relpath, 1,
                "no `traceVersion = N` constant found"))

        doc = files.get(self.DOC_FILE)
        if doc is None:
            return out

        rows = {}
        header_line = None
        for lineno, line in enumerate(doc.lines, 1):
            s = line.strip()
            if header_line is None:
                if self.TABLE_RE.match(s):
                    header_line = lineno
                continue
            if not s.startswith("|"):
                break
            m = self.ROW_RE.match(s)
            if m:
                rows[m.group(1)] = (int(m.group(2)), lineno)
        if header_line is None:
            out.append(Finding(
                self.name, doc.relpath, 1,
                "no event-vocabulary table found (header `| Event "
                "kind | Code | ... |`)"))
        else:
            for name, (code, _) in kinds.items():
                if name not in rows:
                    out.append(Finding(
                        self.name, doc.relpath, header_line,
                        "event table is missing %s (code %d)"
                        % (name, code)))
                elif rows[name][0] != code:
                    out.append(Finding(
                        self.name, doc.relpath, rows[name][1],
                        "event table records code %d for %s, but the "
                        "header says %d"
                        % (rows[name][0], name, code)))
            for name, (code, lineno) in rows.items():
                if name not in kinds:
                    out.append(Finding(
                        self.name, doc.relpath, lineno,
                        "event table row names unknown kind %s"
                        % name))

        doc_versions = []
        for lineno, line in enumerate(doc.lines, 1):
            m = self.DOC_VERSION_RE.search(line)
            if m:
                doc_versions.append((int(m.group(1)), lineno))
        if version is not None:
            if not doc_versions:
                out.append(Finding(
                    self.name, doc.relpath, 1,
                    "no `trace_version` is N sentence found"))
            for v, lineno in doc_versions:
                if v != version:
                    out.append(Finding(
                        self.name, doc.relpath, lineno,
                        "doc says `trace_version` is %d, but the "
                        "header says %d" % (v, version)))
        return out


class IncludeLayeringRule(TreeRule):
    name = "include-layering"
    description = ("every quoted #include must follow the declared "
                   "module-dependency table (DESIGN.md §10); "
                   "cycles outside the sanctioned core/sim/storage/"
                   "trace cluster, undeclared edges, and stale table "
                   "rows are all findings")

    # The authoritative allowed-dependency table. DESIGN.md §10 must
    # list exactly these edges and the actual include graph must use
    # exactly these edges — three-way agreement, like the exit-code
    # registry. "*" means the module may include anything (tests).
    ALLOWED_DEPS = {
        "common": frozenset(),
        "isa": frozenset({"common"}),
        "mem": frozenset({"common"}),
        "inject": frozenset({"common"}),
        "regfile": frozenset({"common"}),
        "sched": frozenset({"common"}),
        "frontend": frozenset({"common", "isa"}),
        "workload": frozenset({"common", "isa"}),
        "regcache": frozenset({"common", "isa"}),
        "storage": frozenset({"common", "regcache", "regfile",
                              "sim"}),
        "core": frozenset({"common", "frontend", "inject", "isa",
                           "mem", "sim", "storage", "workload"}),
        "sim": frozenset({"common", "core", "frontend", "inject",
                          "isa", "mem", "regcache", "regfile",
                          "sched", "trace", "workload"}),
        "trace": frozenset({"common", "core", "regcache", "sim",
                            "storage"}),
        "server": frozenset({"common", "sched", "sim", "trace",
                             "workload"}),
        "bench": frozenset({"common", "core", "frontend", "regcache",
                            "sched", "sim", "trace", "workload"}),
        "tools": frozenset({"common", "isa", "sched", "server",
                            "sim", "trace", "workload"}),
        "tests": frozenset({"*"}),
    }

    # Module-level cycles that are sanctioned (and documented in
    # DESIGN.md §10): the simulation kernel is one mutually-dependent
    # cluster. Any other module-level cycle is a finding.
    SANCTIONED_CLUSTERS = (frozenset({"core", "sim", "storage",
                                      "trace"}),)

    DOC_FILE = "DESIGN.md"
    TABLE_RE = re.compile(r"^\|\s*Module\s*\|\s*May include\s*\|")
    ROW_RE = re.compile(r"^\|\s*`(\w+)`\s*\|\s*([^|]*)\|")

    @staticmethod
    def module_of(relpath):
        """The layering module a file belongs to: its src/ subdir, or
        the top-level dir for bench/tools/tests."""
        parts = relpath.split("/")
        if parts[0] == "src" and len(parts) > 2:
            return parts[1]
        if parts[0] in ("bench", "tools", "tests"):
            return parts[0]
        return None

    def check_tree(self, root, files):
        out = []

        # -- collect the actual include graph ---------------------------
        # module edge -> first (relpath, line, target) witness; plus a
        # file-granularity graph for file-cycle detection.
        mod_edges = {}
        file_graph = {}
        for relpath, sf in sorted(files.items()):
            if not sf.is_cxx:
                continue
            mod = self.module_of(relpath)
            if mod is None:
                continue
            for inc in cppmodel.includes(sf):
                if not inc.quoted:
                    continue  # system headers are out of scope
                tmod = inc.target.split("/")[0]
                # Quoted includes name headers module-first
                # (e.g. "common/stats.hh"), rooted at src/.
                target_rel = "src/" + inc.target
                if target_rel not in files and inc.target in files:
                    target_rel = inc.target
                file_graph.setdefault(relpath, []).append(
                    (target_rel, inc.line))
                if tmod == mod:
                    continue
                if tmod not in self.ALLOWED_DEPS:
                    out.append(Finding(
                        self.name, relpath, inc.line,
                        "include of unknown module '%s' (from %s)"
                        % (tmod, inc.target)))
                    continue
                allowed = self.ALLOWED_DEPS.get(mod)
                if allowed is None:
                    continue  # file outside the modelled modules
                key = (mod, tmod)
                if key not in mod_edges:
                    mod_edges[key] = (relpath, inc.line, inc.target)
                if "*" in allowed or tmod in allowed:
                    continue
                out.append(Finding(
                    self.name, relpath, inc.line,
                    "forbidden edge %s -> %s: `#include \"%s\"` is "
                    "not in the allowed-dependency table "
                    "(DESIGN.md §10)" % (mod, tmod, inc.target)))

        # -- unused declared edges --------------------------------------
        # A declared edge nothing uses is a stale table row; the table
        # must mirror reality exactly or it rots like any other doc.
        # Only provable on a full tree: when some modules have no
        # files at all (fixture mini-trees, subset runs), absence of
        # an edge means nothing.
        present = {self.module_of(rp)
                   for rp, sf in files.items() if sf.is_cxx}
        if not (set(self.ALLOWED_DEPS) - present):
            for mod, allowed in sorted(self.ALLOWED_DEPS.items()):
                if "*" in allowed:
                    continue
                for tmod in sorted(allowed):
                    if (mod, tmod) not in mod_edges:
                        out.append(Finding(
                            self.name, self.DOC_FILE, 1,
                            "declared edge %s -> %s is never used by "
                            "any #include; drop it from the table "
                            "and ALLOWED_DEPS" % (mod, tmod)))

        # -- module-level cycles ----------------------------------------
        for scc in self._sccs(mod_edges):
            if len(scc) < 2:
                continue
            if any(scc <= cluster
                   for cluster in self.SANCTIONED_CLUSTERS):
                continue
            members = sorted(scc)
            witness = None
            for (a, b), w in sorted(mod_edges.items()):
                if a in scc and b in scc:
                    witness = w
                    break
            rel, line, tgt = witness
            out.append(Finding(
                self.name, rel, line,
                "module dependency cycle {%s} (via `#include "
                "\"%s\"`); only the sanctioned core/sim/storage/"
                "trace cluster may be mutually dependent"
                % (", ".join(members), tgt)))

        # -- file-level include cycles ----------------------------------
        # Even inside the sanctioned cluster, header-to-header cycles
        # are always bugs (they only compile by guard accident).
        out.extend(self._file_cycles(file_graph))

        # -- DESIGN.md table agreement ----------------------------------
        doc = files.get(self.DOC_FILE)
        if doc is not None:
            out.extend(self._check_doc(doc))
        return out

    def _sccs(self, mod_edges):
        """Strongly connected components of the module graph
        (iterative Tarjan)."""
        graph = {}
        for (a, b) in mod_edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        index = {}
        low = {}
        on_stack = set()
        stack = []
        sccs = []
        counter = [0]
        for start in sorted(graph):
            if start in index:
                continue
            work = [(start, iter(sorted(graph[start])))]
            index[start] = low[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(graph[nxt]))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.add(w)
                        if w == node:
                            break
                    sccs.append(scc)
        return sccs

    def _file_cycles(self, file_graph):
        out = []
        color = {}  # 0 unvisited implicit, 1 in progress, 2 done
        reported = set()

        for start in sorted(file_graph):
            if color.get(start):
                continue
            path = []
            stack = [(start, iter(file_graph.get(start, [])))]
            color[start] = 1
            path.append(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for tgt, line in it:
                    if tgt not in file_graph and color.get(tgt) != 1:
                        continue
                    c = color.get(tgt, 0)
                    if c == 0:
                        color[tgt] = 1
                        path.append(tgt)
                        stack.append(
                            (tgt, iter(file_graph.get(tgt, []))))
                        advanced = True
                        break
                    if c == 1:
                        cyc = tuple(path[path.index(tgt):])
                        key = frozenset(cyc)
                        if key not in reported:
                            reported.add(key)
                            out.append(Finding(
                                self.name, node, line,
                                "file-level include cycle: %s"
                                % " -> ".join(cyc + (tgt,))))
                if advanced:
                    continue
                stack.pop()
                color[node] = 2
                path.pop()
        return out

    def _check_doc(self, doc):
        """DESIGN.md §10 table rows must equal ALLOWED_DEPS exactly."""
        out = []
        rows = {}
        header_line = None
        for lineno, line in enumerate(doc.lines, 1):
            s = line.strip()
            if header_line is None:
                if self.TABLE_RE.match(s):
                    header_line = lineno
                continue
            if not s.startswith("|"):
                break
            m = self.ROW_RE.match(s)
            if m:
                deps = m.group(2).strip()
                if deps in ("(any)", "*"):
                    parsed = frozenset({"*"})
                elif deps in ("—", "-", "(none)", ""):
                    parsed = frozenset()
                else:
                    parsed = frozenset(
                        d.strip().strip("`")
                        for d in deps.split(",") if d.strip())
                rows[m.group(1)] = (parsed, lineno)
        if header_line is None:
            out.append(Finding(
                self.name, doc.relpath, 1,
                "no module-layering table found (header `| Module | "
                "May include |`)"))
            return out
        for mod, allowed in sorted(self.ALLOWED_DEPS.items()):
            if mod not in rows:
                out.append(Finding(
                    self.name, doc.relpath, header_line,
                    "layering table is missing module `%s`" % mod))
            elif rows[mod][0] != allowed:
                missing = sorted(allowed - rows[mod][0])
                extra = sorted(rows[mod][0] - allowed)
                detail = []
                if missing:
                    detail.append("missing: %s" % ", ".join(missing))
                if extra:
                    detail.append("extra: %s" % ", ".join(extra))
                out.append(Finding(
                    self.name, doc.relpath, rows[mod][1],
                    "layering table row for `%s` disagrees with the "
                    "lint's ALLOWED_DEPS (%s)"
                    % (mod, "; ".join(detail))))
        for mod, (_, lineno) in sorted(rows.items()):
            if mod not in self.ALLOWED_DEPS:
                out.append(Finding(
                    self.name, doc.relpath, lineno,
                    "layering table row names unknown module `%s`"
                    % mod))
        return out
