"""Finding renderers: text (default), json, and SARIF 2.1.0.

SARIF is the exchange format CI understands (GitHub code scanning,
IDE ingestion); json is the stable machine format for scripts that
do not want SARIF's envelope."""

import json

from . import RULES, TOOL_NAME, TOOL_VERSION


def render_text(findings):
    return "\n".join(str(f) for f in findings)


def render_json(findings):
    return json.dumps({
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "count": len(findings),
        "findings": [
            {"rule": f.rule, "file": f.relpath, "line": f.line,
             "message": f.message}
            for f in findings],
    }, indent=2) + "\n"


def render_sarif(findings):
    rules_meta = [
        {"id": r.name,
         "shortDescription": {"text": r.description}}
        for r in RULES]
    results = [
        {"ruleId": f.rule,
         "level": "error",
         "message": {"text": f.message},
         "locations": [
             {"physicalLocation": {
                 "artifactLocation": {"uri": f.relpath},
                 "region": {"startLine": max(f.line, 1)}}}]}
        for f in findings]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {"tool": {"driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri":
                    "https://example.invalid/ubrc-lint",
                "rules": rules_meta}},
             "results": results}],
    }
    return json.dumps(doc, indent=2) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
