"""A real C++ lexer for ubrc-lint.

Produces a token stream plus a separate comment list from a
translation unit, handling the constructs that defeat line-regex
checkers:

  - raw strings (``R"delim(...)delim"`` with encoding prefixes),
  - ordinary string/char literals with escapes,
  - line comments continued by a backslash splice (phase-2 line
    splicing happens before comments end, so the next physical line
    is still comment),
  - block comments spanning lines,
  - preprocessor directives (lexed as one token, splice-aware, so
    ``#include`` arguments are never mistaken for expressions),
  - C++14 digit separators (``1'000'000`` is one number, not a char
    literal).

Tokens carry the physical line of their first character, so findings
anchor exactly. The lexer never throws on malformed input: an
unterminated literal is closed at end of file, which is the right
behaviour for a linter that must keep going.
"""


class Token:
    """One lexical token. kind is one of:

    ident  identifier or keyword
    num    numeric literal (including digit separators, suffixes)
    str    string literal (value includes quotes; raw strings whole)
    char   character literal
    punct  operator/punctuator ('::' and '->' are single tokens)
    pp     a whole preprocessor directive (splices folded in)
    """

    __slots__ = ("kind", "value", "line", "raw")

    def __init__(self, kind, value, line, raw=False):
        self.kind = kind
        self.value = value
        self.line = line
        self.raw = raw  # True for raw string literals

    def __repr__(self):
        return "Token(%r, %r, line=%d)" % (self.kind, self.value,
                                           self.line)


class Comment:
    """A comment with the line of each physical text row it covers:
    rows holds (lineno, text) pairs so pragmas inside multi-line
    comments anchor to their own line."""

    __slots__ = ("line", "text", "rows")

    def __init__(self, line, text, rows):
        self.line = line
        self.text = text
        self.rows = rows


STRING_PREFIXES = ("", "u8", "u", "U", "L")
RAW_PREFIXES = tuple(p + "R" for p in STRING_PREFIXES)

# Multi-character punctuators we keep whole; everything else is lexed
# one character at a time. Only the ones rules inspect matter.
MULTI_PUNCT = ("::", "->", "+=", "-=", "==", "!=", "<=", ">=", "&&",
               "||", "<<", ">>", "++", "--")


def lex(text):
    """Lex C++ source `text` -> (tokens, comments)."""
    tokens = []
    comments = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since last newline

    def splice_len(j):
        """Length of a line splice at text[j], or 0. Accepts the
        common backslash-newline and backslash-CR-LF forms."""
        if j < n and text[j] == "\\":
            if j + 1 < n and text[j + 1] == "\n":
                return 2
            if j + 2 < n and text[j + 1] == "\r" and \
                    text[j + 2] == "\n":
                return 3
        return 0

    while i < n:
        ch = text[i]

        if ch == "\n":
            line += 1
            at_line_start = True
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        sl = splice_len(i)
        if sl:
            line += 1
            i += sl
            continue

        # Preprocessor directive: '#' first on its line. Consume to
        # the end of line, folding splices and block comments.
        if ch == "#" and at_line_start:
            start_line = line
            buf = []
            i += 1
            while i < n:
                sl = splice_len(i)
                if sl:
                    buf.append(" ")
                    line += 1
                    i += sl
                    continue
                c = text[i]
                if c == "\n":
                    break
                if c == "/" and i + 1 < n and text[i + 1] == "*":
                    i += 2
                    while i < n and not text.startswith("*/", i):
                        if text[i] == "\n":
                            line += 1
                        i += 1
                    i = min(i + 2, n)
                    buf.append(" ")
                    continue
                if c == "/" and i + 1 < n and text[i + 1] == "/":
                    # Comment to end of line ends the directive too.
                    while i < n and text[i] != "\n":
                        i += 1
                    break
                buf.append(c)
                i += 1
            tokens.append(Token("pp", "#" + "".join(buf), start_line))
            at_line_start = False
            continue

        at_line_start = False

        # Comments.
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            start_line = line
            rows = []
            row_start = i + 2
            i += 2
            while i < n:
                sl = splice_len(i)
                if sl:
                    # Spliced: the next physical line is still comment.
                    rows.append((line, text[row_start:i]))
                    line += 1
                    i += sl
                    row_start = i
                    continue
                if text[i] == "\n":
                    break
                i += 1
            rows.append((line, text[row_start:i]))
            comments.append(Comment(start_line,
                                    " ".join(t for _, t in rows),
                                    rows))
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            start_line = line
            rows = []
            row_start = i + 2
            i += 2
            while i < n and not text.startswith("*/", i):
                if text[i] == "\n":
                    rows.append((line, text[row_start:i]))
                    line += 1
                    i += 1
                    row_start = i
                else:
                    i += 1
            rows.append((line, text[row_start:i]))
            i = min(i + 2, n)
            comments.append(Comment(start_line,
                                    " ".join(t for _, t in rows),
                                    rows))
            continue

        # Identifiers (and string-literal prefixes).
        if ch.isalpha() or ch == "_":
            start = i
            start_line = line
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            nxt = text[i] if i < n else ""
            if nxt == '"' and word in RAW_PREFIXES:
                i, line, value = _lex_raw_string(text, i, line)
                tokens.append(Token("str", word + value, start_line,
                                    raw=True))
                continue
            if nxt == '"' and word in STRING_PREFIXES:
                i, line, value = _lex_quoted(text, i, line, '"')
                tokens.append(Token("str", word + value, start_line))
                continue
            if nxt == "'" and word in STRING_PREFIXES:
                i, line, value = _lex_quoted(text, i, line, "'")
                tokens.append(Token("char", word + value, start_line))
                continue
            tokens.append(Token("ident", word, start_line))
            continue

        # Numbers (digit separators keep ' inside the literal).
        if ch.isdigit() or (ch == "." and i + 1 < n
                            and text[i + 1].isdigit()):
            start = i
            start_line = line
            i += 1
            while i < n:
                c = text[i]
                if c.isalnum() or c == "_" or c == ".":
                    i += 1
                elif c == "'" and i + 1 < n and text[i + 1].isalnum():
                    i += 2
                elif c in "+-" and text[i - 1] in "eEpP":
                    i += 1
                else:
                    break
            tokens.append(Token("num", text[start:i], start_line))
            continue

        if ch == '"':
            start_line = line
            i, line, value = _lex_quoted(text, i, line, '"')
            tokens.append(Token("str", value, start_line))
            continue
        if ch == "'":
            start_line = line
            i, line, value = _lex_quoted(text, i, line, "'")
            tokens.append(Token("char", value, start_line))
            continue

        # Punctuation.
        two = text[i:i + 2]
        if two in MULTI_PUNCT:
            tokens.append(Token("punct", two, line))
            i += 2
        else:
            tokens.append(Token("punct", ch, line))
            i += 1

    return tokens, comments


def _lex_quoted(text, i, line, quote):
    """Lex a quoted literal starting at text[i] == quote. Returns
    (next_index, line, value-including-quotes)."""
    n = len(text)
    start = i
    i += 1
    while i < n:
        c = text[i]
        if c == "\\":
            i += 2
            continue
        if c == quote:
            i += 1
            break
        if c == "\n":
            # Unterminated literal: stop at the line break rather
            # than swallowing the rest of the file.
            break
        i += 1
    return i, line, text[start:i]


def _lex_raw_string(text, i, line, max_delim=16):
    """Lex a raw string starting at text[i] == '"' (prefix already
    consumed). Returns (next_index, line, value-including-quotes)."""
    n = len(text)
    start = i
    j = i + 1
    delim = []
    while j < n and len(delim) <= max_delim and \
            text[j] not in '()\\\n\t ':
        delim.append(text[j])
        j += 1
    if j >= n or text[j] != "(":
        # Malformed raw string; treat as an ordinary literal.
        return _lex_quoted(text, i, line, '"')
    terminator = ")" + "".join(delim) + '"'
    k = text.find(terminator, j + 1)
    if k < 0:
        k = n - len(terminator)
    end = k + len(terminator)
    value = text[start:end]
    return end, line + value.count("\n"), value
