"""schema-drift: cross-check the JSON keys the C++ serializers emit
against the keys tools/check_results_json.py validates.

Both sides are modelled statically:

C++ side — every `field("k", ...)` / `key("k")` / `nullField("k")` /
`section("k")` call and every `scalar("k")`/`mean("k")`/
`distribution("k")` stat registration is a key emission. A
`field("kind", "X")` literal anchors a document kind: the innermost
brace block containing the anchor is that kind's emission region, and
the emitted-key set is the region's keys plus the keys of every
function the region calls, transitively (bare-name call resolution,
same file preferred). A registration of the form `scalar("stem" + x)`
is recorded as a dynamic *prefix* emission.

Python side — tools/check_results_json.py is parsed with `ast`. The
module-level KINDS dict maps each kind to its root checker; the
validated-key set for a kind is the closure over module-function
calls of: string literals in tuples passed directly as call
arguments (expect_keys key lists and check_meta key tuples), tuple
literals iterated by for-loops, literal subscripts (`doc["stats"]`),
`.get("k")` calls, literal `"k" in obj` membership tests, and
referenced module constants whose shape is a key table (a tuple of
strings, or a dict mapping section names to field tuples).

A key emitted but never validated, or validated but never emitted,
is a finding for that kind. The universal envelope keys
(schema_version, kind) are exempt, "sweep-request" is a request
document (no results validator), and check_throughput_bench is
excluded (it re-checks values of keys the generic checker already
covers, using table-cell literals that are not keys).
"""

import ast

from . import cppmodel
from .rules_tree import TreeRule
from .source import Finding

KEY_FUNCS = ("field", "key", "nullField", "section")
REG_FUNCS = ("scalar", "mean", "distribution")


def _string_value(tok):
    v = tok.value
    if tok.raw:
        return None
    for p in ("u8", "u", "U", "L"):
        if v.startswith(p + '"'):
            v = v[len(p):]
            break
    if len(v) >= 2 and v[0] == '"' and v[-1] == '"':
        return v[1:-1]
    return None


class _FnModel:
    """Per-function emission summary."""

    __slots__ = ("sf", "fn", "keys", "prefixes", "anchors", "calls")

    def __init__(self, sf, fn):
        self.sf = sf
        self.fn = fn
        self.keys = {}      # key -> line of first emission
        self.prefixes = {}  # prefix -> line
        self.anchors = []   # (kind, token_index, line)
        self.calls = set()  # bare callee names
        self._scan()

    def _scan(self):
        toks = self.sf.tokens
        i = self.fn.body_start
        end = self.fn.body_end
        while i <= end:
            t = toks[i]
            if t.kind != "ident" or i + 1 > end or \
                    toks[i + 1].value != "(":
                i += 1
                continue
            name = t.value
            arg = toks[i + 2] if i + 2 <= end else None
            if name in KEY_FUNCS and arg is not None and \
                    arg.kind == "str":
                key = _string_value(arg)
                if key is not None:
                    self.keys.setdefault(key, arg.line)
                    if name == "field" and key == "kind" and \
                            i + 4 <= end and \
                            toks[i + 3].value == "," and \
                            toks[i + 4].kind == "str":
                        kind = _string_value(toks[i + 4])
                        if kind is not None:
                            self.anchors.append((kind, i, t.line))
                i += 3
                continue
            if name in REG_FUNCS and arg is not None and \
                    arg.kind == "str":
                key = _string_value(arg)
                if key is not None:
                    nxt = toks[i + 3] if i + 3 <= end else None
                    if nxt is not None and nxt.value == "+":
                        self.prefixes.setdefault(key, arg.line)
                    else:
                        self.keys.setdefault(key, arg.line)
                i += 3
                continue
            if name not in KEY_FUNCS and name not in REG_FUNCS:
                self.calls.add(name)
            i += 1

    def region_for(self, anchor_idx):
        """Token span of the document emission: from the kind anchor
        to the endObject()/endArray() that closes the document the
        anchor opened. Tracking writer nesting rather than brace
        blocks keeps unrelated code in the same function (reference
        re-simulation, file writing) out of the kind's closure."""
        toks = self.sf.tokens
        depth = 1  # the anchor sits inside the document object
        i = anchor_idx + 1
        while i <= self.fn.body_end:
            t = toks[i]
            if t.kind == "ident":
                if t.value in ("beginObject", "beginArray"):
                    depth += 1
                elif t.value in ("endObject", "endArray"):
                    depth -= 1
                    if depth == 0:
                        return anchor_idx, i
            i += 1
        return anchor_idx, self.fn.body_end


class _RegionScan:
    """Keys/prefixes/calls restricted to one token span."""

    def __init__(self, sf, lo, hi):
        self.keys = {}
        self.prefixes = {}
        self.calls = set()
        toks = sf.tokens
        i = lo
        while i <= hi:
            t = toks[i]
            if t.kind != "ident" or i + 1 > hi or \
                    toks[i + 1].value != "(":
                i += 1
                continue
            name = t.value
            arg = toks[i + 2] if i + 2 <= hi else None
            lit = _string_value(arg) if arg is not None and \
                arg.kind == "str" else None
            if name in KEY_FUNCS and lit is not None:
                self.keys.setdefault(lit, arg.line)
                i += 3
                continue
            if name in REG_FUNCS and lit is not None:
                nxt = toks[i + 3] if i + 3 <= hi else None
                if nxt is not None and nxt.value == "+":
                    self.prefixes.setdefault(lit, arg.line)
                else:
                    self.keys.setdefault(lit, arg.line)
                i += 3
                continue
            if name not in KEY_FUNCS and name not in REG_FUNCS:
                self.calls.add(name)
            i += 1


class _ValidatorModel:
    """ast model of tools/check_results_json.py."""

    def __init__(self, sf, excluded_funcs):
        self.ok = True
        self.kind_roots = {}    # kind -> root function name
        self.fn_keys = {}       # func -> {key: line}
        self.fn_calls = {}      # func -> set of callee names
        self.excluded = excluded_funcs
        try:
            tree = ast.parse(sf.text)
        except SyntaxError:
            self.ok = False
            return
        consts = {}  # module constant name -> {key: line}
        func_nodes = {}
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                func_nodes[node.name] = node
            elif isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if name == "KINDS" and isinstance(node.value,
                                                  ast.Dict):
                    for k, v in zip(node.value.keys,
                                    node.value.values):
                        if isinstance(k, ast.Constant) and \
                                isinstance(k.value, str) and \
                                isinstance(v, ast.Name):
                            self.kind_roots[k.value] = v.id
                else:
                    keys = self._const_keys(node.value)
                    if keys:
                        consts[name] = keys
        for name, node in func_nodes.items():
            keys, calls = self._scan_func(node, consts, func_nodes)
            self.fn_keys[name] = keys
            self.fn_calls[name] = calls

    @staticmethod
    def _const_keys(value):
        """Key table constants: a tuple of strings contributes its
        elements; a dict of str -> tuple contributes keys and
        elements. Anything else (int maps, sets) is not a key table."""
        keys = {}
        if isinstance(value, ast.Tuple):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and \
                        isinstance(elt.value, str):
                    keys.setdefault(elt.value, elt.lineno)
                else:
                    return {}
        elif isinstance(value, ast.Dict):
            for k, v in zip(value.keys, value.values):
                if not (isinstance(k, ast.Constant)
                        and isinstance(k.value, str)
                        and isinstance(v, ast.Tuple)):
                    return {}
                keys.setdefault(k.value, k.lineno)
                for elt in v.elts:
                    if isinstance(elt, ast.Constant) and \
                            isinstance(elt.value, str):
                        keys.setdefault(elt.value, elt.lineno)
        return keys

    def _scan_func(self, node, consts, func_nodes):
        keys = {}
        calls = set()

        def add(key, lineno):
            keys.setdefault(key, lineno)

        def add_tuple(t):
            for elt in t.elts:
                if isinstance(elt, ast.Constant) and \
                        isinstance(elt.value, str):
                    add(elt.value, elt.lineno)

        for sub in ast.walk(node):
            if isinstance(sub, ast.Subscript):
                sl = sub.slice
                if isinstance(sl, ast.Constant) and \
                        isinstance(sl.value, str):
                    add(sl.value, sl.lineno)
            elif isinstance(sub, ast.Call):
                if isinstance(sub.func, ast.Attribute) and \
                        sub.func.attr == "get" and sub.args and \
                        isinstance(sub.args[0], ast.Constant) and \
                        isinstance(sub.args[0].value, str):
                    add(sub.args[0].value, sub.args[0].lineno)
                if isinstance(sub.func, ast.Name):
                    if sub.func.id in func_nodes:
                        calls.add(sub.func.id)
                for a in sub.args:
                    if isinstance(a, ast.Tuple):
                        add_tuple(a)
            elif isinstance(sub, ast.Compare):
                if any(isinstance(op, (ast.In, ast.NotIn))
                       for op in sub.ops) and \
                        isinstance(sub.left, ast.Constant) and \
                        isinstance(sub.left.value, str):
                    add(sub.left.value, sub.left.lineno)
            elif isinstance(sub, ast.For):
                if isinstance(sub.iter, ast.Tuple):
                    add_tuple(sub.iter)
            elif isinstance(sub, ast.Name) and \
                    isinstance(sub.ctx, ast.Load) and \
                    sub.id in consts:
                for key, lineno in consts[sub.id].items():
                    add(key, lineno)
        return keys, calls

    def kind_keys(self, kind):
        """Validated keys for a kind: closure over function calls
        from its root checker."""
        root = self.kind_roots.get(kind)
        if root is None:
            return None
        keys = {}
        seen = set()
        work = [root]
        while work:
            fn = work.pop()
            if fn in seen or fn in self.excluded:
                continue
            seen.add(fn)
            for key, lineno in self.fn_keys.get(fn, {}).items():
                keys.setdefault(key, lineno)
            work.extend(self.fn_calls.get(fn, ()))
        return keys


class SchemaDriftRule(TreeRule):
    name = "schema-drift"
    description = ("JSON keys emitted by the C++ serializers must be "
                   "validated by tools/check_results_json.py and "
                   "vice versa, per document kind")

    VALIDATOR = "tools/check_results_json.py"
    UNIVERSAL_KEYS = frozenset({"schema_version", "kind"})
    # Request documents flow client -> server; there is no results
    # validator for them by design.
    IGNORED_KINDS = frozenset({"sweep-request"})
    # Value-level re-checks of keys the generic checker already
    # covers; its table-cell literals are not keys.
    EXCLUDED_VALIDATOR_FUNCS = frozenset({"check_throughput_bench"})

    def check_tree(self, root, files):
        val_sf = files.get(self.VALIDATOR)
        if val_sf is None:
            return []
        model = _ValidatorModel(val_sf, self.EXCLUDED_VALIDATOR_FUNCS)
        if not model.ok:
            return [Finding(self.name, self.VALIDATOR, 1,
                            "validator does not parse as Python; "
                            "cannot cross-check schemas")]

        # Index every C++ function by bare name.
        fn_models = []
        index = {}
        for relpath, sf in sorted(files.items()):
            if not sf.is_cxx:
                continue
            for fn in cppmodel.functions(sf):
                fm = _FnModel(sf, fn)
                fn_models.append(fm)
                index.setdefault(fn.name, []).append(fm)

        # A function that anchors kind K must not leak its keys into
        # another kind's closure.
        anchored_kind = {}
        for fm in fn_models:
            kinds = {k for k, _, _ in fm.anchors}
            if len(kinds) == 1:
                anchored_kind[id(fm)] = next(iter(kinds))

        def resolve(name, from_sf):
            cands = index.get(name, ())
            same = [fm for fm in cands if fm.sf is from_sf]
            return same if same else list(cands)

        def close_over(calls, from_sf, kind, keys, prefixes, seen):
            work = [(c, from_sf) for c in sorted(calls)]
            while work:
                name, src = work.pop()
                for fm in resolve(name, src):
                    if id(fm) in seen:
                        continue
                    ak = anchored_kind.get(id(fm))
                    if ak is not None and ak != kind:
                        continue
                    seen.add(id(fm))
                    for k, line in fm.keys.items():
                        keys.setdefault(k, (fm.sf.relpath, line))
                    for k, line in fm.prefixes.items():
                        prefixes.setdefault(k,
                                            (fm.sf.relpath, line))
                    work.extend((c, fm.sf) for c in sorted(fm.calls))

        # Emitted keys per kind, from every anchored region.
        emitted = {}   # kind -> {key: (relpath, line)}
        prefixes = {}  # kind -> {prefix: (relpath, line)}
        anchor_site = {}
        for fm in fn_models:
            for kind, anchor_idx, line in fm.anchors:
                if kind in self.IGNORED_KINDS:
                    continue
                anchor_site.setdefault(kind,
                                       (fm.sf.relpath, line))
                keys = emitted.setdefault(kind, {})
                pfx = prefixes.setdefault(kind, {})
                lo, hi = fm.region_for(anchor_idx)
                region = _RegionScan(fm.sf, lo, hi)
                for k, ln in region.keys.items():
                    keys.setdefault(k, (fm.sf.relpath, ln))
                for k, ln in region.prefixes.items():
                    pfx.setdefault(k, (fm.sf.relpath, ln))
                seen = {id(fm)}
                close_over(region.calls, fm.sf, kind, keys, pfx,
                           seen)

        out = []

        # Kind coverage both ways.
        for kind in sorted(model.kind_roots):
            if kind not in emitted:
                out.append(Finding(
                    self.name, self.VALIDATOR, 1,
                    "validator handles kind '%s' but no C++ "
                    "serializer emits `field(\"kind\", \"%s\")`"
                    % (kind, kind)))
        for kind in sorted(emitted):
            if kind not in model.kind_roots:
                rel, line = anchor_site[kind]
                out.append(Finding(
                    self.name, rel, line,
                    "document kind '%s' is emitted here but %s has "
                    "no checker for it" % (kind, self.VALIDATOR)))

        # Key agreement per kind.
        for kind in sorted(emitted):
            validated = model.kind_keys(kind)
            if validated is None:
                continue
            vkeys = set(validated)
            ekeys = emitted[kind]
            epfx = prefixes[kind]
            for key in sorted(ekeys):
                if key in self.UNIVERSAL_KEYS or key in vkeys:
                    continue
                rel, line = ekeys[key]
                out.append(Finding(
                    self.name, rel, line,
                    "key '%s' of kind '%s' is emitted here but "
                    "never validated by %s"
                    % (key, kind, self.VALIDATOR)))
            for key in sorted(epfx):
                if key in self.UNIVERSAL_KEYS or key in vkeys:
                    continue
                rel, line = epfx[key]
                out.append(Finding(
                    self.name, rel, line,
                    "dynamic key prefix '%s' of kind '%s' is "
                    "emitted here but no validated key covers it"
                    % (key, kind)))
            for key in sorted(vkeys):
                if key in self.UNIVERSAL_KEYS or key in ekeys:
                    continue
                if any(key == p or key.startswith(p)
                       for p in epfx):
                    continue
                out.append(Finding(
                    self.name, self.VALIDATOR, validated[key],
                    "key '%s' of kind '%s' is validated here but "
                    "never emitted by any C++ serializer"
                    % (key, kind)))
        return out
