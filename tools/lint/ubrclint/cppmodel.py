"""Cross-file project model for the tree rules.

Built from token streams, never from line regexes:

  - includes(sf): every #include directive with its line and target,
  - functions(sf): every function definition with its body token
    span, so the schema-drift rule can close over the serializer
    call graph and allow-fn pragmas know their block extent,
  - enum_members(sf, name): the members of one `enum class`, with
    explicit values and lines, for the exit-codes / trace-version
    registries.
"""

import re

INCLUDE_RE = re.compile(
    r'#\s*include\s*(?:"([^"]+)"|<([^>]+)>)')


class Include:
    __slots__ = ("line", "target", "quoted")

    def __init__(self, line, target, quoted):
        self.line = line
        self.target = target
        self.quoted = quoted


def includes(sf):
    """All #include directives in a parsed SourceFile."""
    out = []
    for t in sf.tokens:
        if t.kind != "pp":
            continue
        m = INCLUDE_RE.match(t.value)
        if m:
            quoted = m.group(1) is not None
            out.append(Include(t.line, m.group(1) or m.group(2),
                               quoted))
    return out


class Function:
    """A function definition: bare name, qualified name, the token
    index span of its body (open brace .. close brace inclusive), and
    line extent."""

    __slots__ = ("name", "qualname", "body_start", "body_end",
                 "line", "end_line")

    def __init__(self, name, qualname, body_start, body_end, line,
                 end_line):
        self.name = name
        self.qualname = qualname
        self.body_start = body_start
        self.body_end = body_end
        self.line = line
        self.end_line = end_line


def functions(sf):
    """Extract function definitions from a token stream.

    Heuristic that matches this codebase's (clang-format enforced)
    style: an identifier followed by a parenthesised parameter list,
    then optional qualifiers, then '{' opens a function body. The
    name may be qualified (`Type::name`); control-flow keywords and
    initialiser lists are rejected.
    """
    toks = sf.tokens
    n = len(toks)
    out = []
    not_names = {"if", "for", "while", "switch", "catch", "return",
                 "sizeof", "alignof", "decltype", "new", "delete",
                 "static_assert", "noexcept", "throw", "do", "else",
                 "case", "operator", "alignas", "requires"}
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "ident" or t.value in not_names or \
                i + 1 >= n or toks[i + 1].value != "(":
            i += 1
            continue
        # Find the matching close paren.
        depth = 0
        j = i + 1
        while j < n:
            v = toks[j].value
            if toks[j].kind == "punct":
                if v == "(":
                    depth += 1
                elif v == ")":
                    depth -= 1
                    if depth == 0:
                        break
            j += 1
        if j >= n:
            break
        # Skip trailing qualifiers up to '{', ';', or something that
        # proves this was an expression.
        k = j + 1
        quals = {"const", "noexcept", "override", "final", "mutable",
                 "volatile", "&", "&&", "->", "::"}
        while k < n and (toks[k].value in quals
                         or toks[k].kind == "ident"
                         or (toks[k].kind == "punct"
                             and toks[k].value in ("<", ">", "*"))):
            if toks[k].value == "noexcept" and k + 1 < n and \
                    toks[k + 1].value == "(":
                d2 = 0
                while k < n:
                    if toks[k].value == "(":
                        d2 += 1
                    elif toks[k].value == ")":
                        d2 -= 1
                        if d2 == 0:
                            break
                    k += 1
            k += 1
        if k >= n or toks[k].value != "{":
            i += 1
            continue
        # Qualified name: walk back over `A::B::` prefixes.
        qual = [t.value]
        b = i - 1
        while b - 1 >= 0 and toks[b].value == "::" and \
                toks[b - 1].kind == "ident":
            qual.insert(0, toks[b - 1].value)
            b -= 2
        # Reject obvious non-definitions: `name(...)` directly after
        # '=', 'return', '.', '->', ',', '(' is a call/initialiser.
        if b >= 0 and (toks[b].value in
                       ("=", "return", ".", "->", ",", "(", "!",
                        "&&", "||", "?", ":")):
            i += 1
            continue
        # Find the matching close brace of the body.
        depth = 0
        m = k
        while m < n:
            if toks[m].kind == "punct":
                if toks[m].value == "{":
                    depth += 1
                elif toks[m].value == "}":
                    depth -= 1
                    if depth == 0:
                        break
            m += 1
        end = min(m, n - 1)
        out.append(Function(t.value, "::".join(qual), k, end, t.line,
                            toks[end].line))
        i = k + 1  # bodies may contain lambdas; keep scanning inside
    return out


def enum_members(sf, enum_name):
    """Members of `enum class <enum_name>` -> list of
    (name, explicit_value_or_None, line)."""
    toks = sf.tokens
    n = len(toks)
    for i in range(n - 2):
        if toks[i].value == "enum" and toks[i + 1].value == "class" \
                and toks[i + 2].kind == "ident" \
                and toks[i + 2].value == enum_name:
            j = i + 3
            while j < n and toks[j].value != "{":
                j += 1
            members = []
            j += 1
            while j < n and toks[j].value != "}":
                if toks[j].kind == "ident":
                    name = toks[j].value
                    line = toks[j].line
                    value = None
                    if j + 2 < n and toks[j + 1].value == "=" and \
                            toks[j + 2].kind == "num":
                        value = int(toks[j + 2].value, 0)
                        j += 2
                    members.append((name, value, line))
                # Skip to the next comma at depth 0 (enum values may
                # hold expressions; ours are plain).
                while j < n and toks[j].value not in (",", "}"):
                    j += 1
                if j < n and toks[j].value == ",":
                    j += 1
            return members
    return []


def find_constant(sf, name):
    """Value and line of `<name> = <integer>` at namespace scope, or
    (None, None)."""
    toks = sf.tokens
    for i in range(len(toks) - 2):
        if toks[i].kind == "ident" and toks[i].value == name and \
                toks[i + 1].value == "=" and toks[i + 2].kind == "num":
            return int(toks[i + 2].value, 0), toks[i].line
    return None, None
