/**
 * @file
 * ubrcsim — command-line driver for the UBRC simulator.
 *
 * Runs any workload kernel (or an assembly file) under any register
 * storage organization with every policy knob exposed, and prints
 * either a summary or the full statistics dump.
 *
 *   ubrcsim --workload mcf --scheme cached --entries 64 --assoc 2
 *   ubrcsim --workload gzip --scheme monolithic --rf-latency 3
 *   ubrcsim --asm my_kernel.s --insts 1000000 --stats
 *   ubrcsim --list
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "isa/assembler.hh"
#include "sched/scheduler.hh"
#include "isa/disasm.hh"
#include "isa/functional_core.hh"
#include "sim/diagnostics.hh"
#include "sim/results_json.hh"
#include "sim/runner.hh"
#include "sim/sim_error.hh"
#include "trace/trace_format.hh"
#include "trace/trace_recorder.hh"
#include "trace/trace_replay.hh"
#include "workload/workload.hh"

using namespace ubrc;

namespace
{

/**
 * Raised by SIGINT/SIGTERM during a suite run. The suite observes it
 * through sim::RunControl, aborts in-flight runs at their next poll,
 * marks unstarted workloads canceled, and still flushes a complete
 * report (and JSON document) covering what did finish.
 */
std::atomic<bool> g_interrupted{false};

void
onSuiteSignal(int)
{
    g_interrupted.store(true);
}

void
installSuiteSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSuiteSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART; // runs poll the flag; I/O may restart
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
usage()
{
    std::puts(
        "ubrcsim — use-based register caching simulator\n"
        "\n"
        "workload selection:\n"
        "  --workload NAME     kernel from the built-in suite; a\n"
        "                      comma list or 'all' runs a suite and\n"
        "                      prints one summary row per kernel\n"
        "  --asm FILE          assemble FILE and run it instead\n"
        "  --list              list built-in kernels and exit\n"
        "  --disasm            print the program listing and exit\n"
        "  --seed N            data-set generator seed (default 1)\n"
        "  --scale N           workload scale factor (default 1)\n"
        "\n"
        "register storage (default: the paper's design point):\n"
        "  --scheme S          cached | monolithic | two-level\n"
        "  --entries N         cache entries / two-level L1 - 32\n"
        "  --assoc N           cache associativity (0 = full)\n"
        "  --insertion P       always | non-bypass | use-based\n"
        "  --replacement P     lru | use-based\n"
        "  --indexing P        preg | round-robin | minimum |\n"
        "                      filtered-rr\n"
        "  --rf-latency N      monolithic file latency (default 3)\n"
        "  --backing-latency N backing file latency (default 2)\n"
        "  --max-use N         use counter saturation (default 7)\n"
        "  --unknown-default N (default 1)   --fill-default N (default 0)\n"
        "\n"
        "run control:\n"
        "  --insts N           stop after N retired instructions\n"
        "  --jobs N            suite mode: run kernels on N worker\n"
        "                      threads (default: UBRC_JOBS, else 1;\n"
        "                      0 or garbage is an error). Sets the\n"
        "                      one global scheduler worker count;\n"
        "                      results are bit-identical to a serial\n"
        "                      run.\n"
        "  --no-checker        disable the golden architectural checker\n"
        "  --stats             dump every statistic after the run\n"
        "  --stats-format F    text (default) prints the usual report;\n"
        "                      json additionally writes a versioned\n"
        "                      JSON document (schema: results_json.hh)\n"
        "  --out FILE          report destination. text: write the\n"
        "                      report to FILE instead of stdout.\n"
        "                      json: write the JSON document to FILE\n"
        "                      (default results/UBRCSIM_<name>.json;\n"
        "                      directory overridable via\n"
        "                      UBRC_RESULTS_DIR)\n"
        "  --watchdog N        abort if no instruction retires for N\n"
        "                      cycles (default 500000; 0 disables)\n"
        "  --validate-only     check the configuration and exit\n"
        "\n"
        "operand tracing (record once, replay many):\n"
        "  --record-trace DIR  run execution-driven and also record\n"
        "                      the operand stream to\n"
        "                      DIR/<workload>.ubrct\n"
        "  --replay-trace DIR  skip the core: re-evaluate the storage\n"
        "                      configuration against the recorded\n"
        "                      trace in DIR (exact stats on the\n"
        "                      recorded storage config, adaptive\n"
        "                      approximation otherwise)\n"
        "\n"
        "fault injection:\n"
        "  --inject-rate R     per-cycle bit-flip probability (0..1)\n"
        "  --inject-seed S     fault-site PRNG seed (default 1)\n"
        "\n"
        "error handling:\n"
        "  --dump-on-error FILE  also write the crash dump to FILE\n"
        "\n"
        "exit codes:\n"
        "  0  run completed        2  configuration error\n"
        "  3  checker divergence   4  deadlock (watchdog)\n"
        "  5  internal invariant violation\n"
        "  10 trace format (bad or missing trace file)\n");
}

const char *
nextArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("missing value after %s", argv[i]);
    return argv[++i];
}

/** Strict numeric parses: 0 silently disables these features, so a
 * typo must not be mistaken for an explicit 0. */
uint64_t
parseU64(const char *flag, const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0' || std::strchr(s, '-'))
        fatal("%s: cannot parse '%s' as a number", flag, s);
    return v;
}

double
parseF64(const char *flag, const char *s)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0')
        fatal("%s: cannot parse '%s' as a number", flag, s);
    return v;
}

regcache::InsertionPolicy
parseInsertion(const std::string &s)
{
    if (s == "always")
        return regcache::InsertionPolicy::Always;
    if (s == "non-bypass")
        return regcache::InsertionPolicy::NonBypass;
    if (s == "use-based")
        return regcache::InsertionPolicy::UseBased;
    fatal("unknown insertion policy '%s'", s.c_str());
}

regcache::ReplacementPolicy
parseReplacement(const std::string &s)
{
    if (s == "lru")
        return regcache::ReplacementPolicy::LRU;
    if (s == "use-based")
        return regcache::ReplacementPolicy::UseBased;
    fatal("unknown replacement policy '%s'", s.c_str());
}

regcache::IndexPolicy
parseIndexing(const std::string &s)
{
    if (s == "preg")
        return regcache::IndexPolicy::PhysReg;
    if (s == "round-robin")
        return regcache::IndexPolicy::RoundRobin;
    if (s == "minimum")
        return regcache::IndexPolicy::Minimum;
    if (s == "filtered-rr")
        return regcache::IndexPolicy::FilteredRoundRobin;
    fatal("unknown indexing policy '%s'", s.c_str());
}

enum class StatsFormat { Text, Json };

StatsFormat
parseStatsFormat(const std::string &s)
{
    if (s == "text")
        return StatsFormat::Text;
    if (s == "json")
        return StatsFormat::Json;
    fatal("--stats-format: unknown format '%s' (text or json)",
          s.c_str());
}

/**
 * Destination for the JSON document: --out when given, else
 * results/UBRCSIM_<name>.json with the name sanitized to a safe
 * filename and the directory overridable via UBRC_RESULTS_DIR.
 */
std::string
jsonOutPath(const std::string &out_path, const std::string &name)
{
    if (!out_path.empty())
        return out_path;
    const char *env = std::getenv("UBRC_RESULTS_DIR");
    const std::string dir = env && *env ? env : "results";
    std::string base = name.empty() ? "run" : name;
    for (char &c : base) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '_' || c == '.';
        if (!safe)
            c = '-';
    }
    return dir + "/UBRCSIM_" + base + ".json";
}

void
writeMeta(json::Writer &w, const sim::SimConfig &cfg,
          const std::vector<std::string> &workload_names,
          uint64_t max_insts, unsigned jobs)
{
    w.key("meta").beginObject();
    w.field("tool", "ubrcsim");
    w.field("config", cfg.describe());
    w.field("scheme", sim::toString(cfg.scheme));
    w.key("workloads").beginArray();
    for (const auto &n : workload_names)
        w.value(n);
    w.endArray();
    w.field("max_insts", max_insts);
    w.field("jobs", uint64_t(jobs));
    // Trace provenance only appears for trace-mode invocations so
    // plain execution documents keep their historical shape.
    if (cfg.traceMode != sim::TraceMode::Off) {
        w.key("trace").beginObject();
        w.field("mode", sim::toString(cfg.traceMode));
        w.field("dir", cfg.traceDir);
        w.field("trace_version", uint64_t(trace::traceVersion));
        w.endObject();
    }
    w.field("git", sim::metaGitDescribe());
    w.field("generated_unix", sim::metaReportEpoch());
    w.endObject();
}

/** Write `doc` to `path`, creating parent directories as needed. */
bool
writeJsonDoc(const std::string &path, const std::string &doc)
{
    std::error_code ec;
    const auto dir = std::filesystem::path(path).parent_path();
    if (!dir.empty())
        std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "ubrcsim: cannot create directory '%s': %s\n",
                     dir.string().c_str(), ec.message().c_str());
        return false;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "ubrcsim: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    out << doc << '\n';
    out.close();
    if (!out) {
        std::fprintf(stderr, "ubrcsim: short write to '%s'\n",
                     path.c_str());
        return false;
    }
    std::fprintf(stderr, "ubrcsim: wrote %s\n", path.c_str());
    return true;
}

/** Human-readable single-run summary, shared by execution-driven and
 *  trace-replay runs. */
void
printRunSummary(FILE *rpt, const sim::SimConfig &cfg,
                const core::SimResult &r)
{
    std::fprintf(rpt,
                 "\n%12llu instructions, %llu cycles  ->  "
                 "IPC %.3f\n",
                 static_cast<unsigned long long>(r.instsRetired),
                 static_cast<unsigned long long>(r.cycles), r.ipc);
    if (r.operandReads()) {
        std::fprintf(rpt,
                     "operands : bypass %.1f%%, cache %.1f%%, "
                     "file %.1f%%  (miss rate %.2f%%/operand)\n",
                     100.0 * r.opBypass / r.operandReads(),
                     100.0 * r.opCache / r.operandReads(),
                     100.0 * r.opFile / r.operandReads(),
                     100.0 * r.missPerOperand);
    }
    std::fprintf(rpt,
                 "branches : %.2f%% mispredicted;  use predictor "
                 "%.1f%% accurate\n",
                 100.0 * r.branchMispredictRate,
                 100.0 * r.douAccuracy);
    if (cfg.scheme == sim::RegScheme::Cached) {
        std::fprintf(rpt,
                     "cache    : occupancy %.1f/%u, %.2f "
                     "reads/cached value, cached %.2fx per "
                     "value\n",
                     r.avgOccupancy, cfg.rc.entries,
                     r.readsPerCachedValue, r.cacheCountPerValue);
    }
}

workload::Workload
loadAsmWorkload(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    workload::Workload w;
    w.name = path;
    w.description = "user assembly file";
    try {
        w.program = isa::assemble(ss.str());
    } catch (const isa::AssemblerError &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
    w.initMemory = [prog = w.program](SparseMemory &m) {
        isa::loadProgramData(prog, m);
    };
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name = "gzip";
    std::string asm_path;
    std::string dump_path;
    std::string out_path;
    StatsFormat format = StatsFormat::Text;
    bool do_list = false, do_disasm = false, dump_stats = false;
    bool validate_only = false;
    workload::WorkloadParams wparams;
    uint64_t max_insts = 500000;
    unsigned jobs = sim::benchJobs(1);

    sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    unsigned entries = cfg.rc.entries;
    unsigned assoc = cfg.rc.assoc;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            do_list = true;
        } else if (arg == "--disasm") {
            do_disasm = true;
        } else if (arg == "--workload") {
            workload_name = nextArg(argc, argv, i);
        } else if (arg == "--asm") {
            asm_path = nextArg(argc, argv, i);
        } else if (arg == "--seed") {
            wparams.seed = std::strtoull(nextArg(argc, argv, i),
                                         nullptr, 0);
        } else if (arg == "--scale") {
            wparams.scale = std::strtoull(nextArg(argc, argv, i),
                                          nullptr, 0);
        } else if (arg == "--scheme") {
            const std::string s = nextArg(argc, argv, i);
            if (s == "cached")
                cfg.scheme = sim::RegScheme::Cached;
            else if (s == "monolithic")
                cfg.scheme = sim::RegScheme::Monolithic;
            else if (s == "two-level")
                cfg.scheme = sim::RegScheme::TwoLevel;
            else
                fatal("unknown scheme '%s'", s.c_str());
        } else if (arg == "--entries") {
            entries = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i), nullptr, 0));
        } else if (arg == "--assoc") {
            assoc = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i), nullptr, 0));
        } else if (arg == "--insertion") {
            cfg.rc.insertion = parseInsertion(nextArg(argc, argv, i));
        } else if (arg == "--replacement") {
            cfg.rc.replacement =
                parseReplacement(nextArg(argc, argv, i));
        } else if (arg == "--indexing") {
            cfg.rc.indexing = parseIndexing(nextArg(argc, argv, i));
        } else if (arg == "--rf-latency") {
            cfg.rfLatency = std::strtol(nextArg(argc, argv, i),
                                        nullptr, 0);
        } else if (arg == "--backing-latency") {
            cfg.backingLatency = std::strtol(nextArg(argc, argv, i),
                                             nullptr, 0);
        } else if (arg == "--max-use") {
            cfg.rc.maxUse = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i), nullptr, 0));
        } else if (arg == "--unknown-default") {
            cfg.rc.unknownDefault = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i), nullptr, 0));
        } else if (arg == "--fill-default") {
            cfg.rc.fillDefault = static_cast<unsigned>(
                std::strtoul(nextArg(argc, argv, i), nullptr, 0));
        } else if (arg == "--insts") {
            max_insts = std::strtoull(nextArg(argc, argv, i),
                                      nullptr, 0);
        } else if (arg == "--jobs") {
            const char *v = nextArg(argc, argv, i);
            const uint64_t n = parseU64("--jobs", v);
            if (n == 0 || n > 1024)
                fatal("--jobs: worker count must be in 1..1024, "
                      "got '%s'", v);
            jobs = static_cast<unsigned>(n);
        } else if (arg == "--no-checker") {
            cfg.checker = false;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-format") {
            format = parseStatsFormat(nextArg(argc, argv, i));
        } else if (arg.rfind("--stats-format=", 0) == 0) {
            format = parseStatsFormat(
                arg.substr(std::strlen("--stats-format=")));
        } else if (arg == "--out") {
            out_path = nextArg(argc, argv, i);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(std::strlen("--out="));
        } else if (arg == "--watchdog") {
            cfg.watchdogCycles =
                parseU64("--watchdog", nextArg(argc, argv, i));
        } else if (arg == "--validate-only") {
            validate_only = true;
        } else if (arg == "--record-trace") {
            cfg.traceMode = sim::TraceMode::Record;
            cfg.traceDir = nextArg(argc, argv, i);
        } else if (arg.rfind("--record-trace=", 0) == 0) {
            cfg.traceMode = sim::TraceMode::Record;
            cfg.traceDir =
                arg.substr(std::strlen("--record-trace="));
        } else if (arg == "--replay-trace") {
            cfg.traceMode = sim::TraceMode::Replay;
            cfg.traceDir = nextArg(argc, argv, i);
        } else if (arg.rfind("--replay-trace=", 0) == 0) {
            cfg.traceMode = sim::TraceMode::Replay;
            cfg.traceDir =
                arg.substr(std::strlen("--replay-trace="));
        } else if (arg == "--inject-rate") {
            cfg.inject.rate =
                parseF64("--inject-rate", nextArg(argc, argv, i));
        } else if (arg == "--inject-seed") {
            cfg.inject.seed =
                parseU64("--inject-seed", nextArg(argc, argv, i));
        } else if (arg == "--dump-on-error") {
            dump_path = nextArg(argc, argv, i);
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    if (do_list) {
        for (const auto &name : workload::workloadNames()) {
            const auto w = workload::buildWorkload(name, wparams);
            std::printf("%-9s %s\n", name.c_str(),
                        w.description.c_str());
        }
        return 0;
    }

    // Resolve geometry knobs.
    if (assoc == 0)
        assoc = entries;
    cfg.rc.entries = entries;
    cfg.rc.assoc = assoc;
    cfg.twoLevel.l1Entries = entries + 32;

    // Traces are keyed by built-in workload name; an assembly file's
    // path makes a poor (and unportable) trace identity.
    if (!asm_path.empty() && cfg.traceMode != sim::TraceMode::Off)
        fatal("--asm cannot be combined with "
              "--record-trace/--replay-trace");
    if (dump_stats && cfg.traceMode == sim::TraceMode::Replay)
        fatal("--stats is not available with --replay-trace "
              "(replay produces derived results, not a full "
              "statistics dump)");

    try {
        cfg.validate();
    } catch (const sim::ConfigError &e) {
        std::fprintf(stderr, "ubrcsim: configuration error: %s\n",
                     e.what());
        return e.exitCode();
    }
    if (validate_only) {
        std::printf("configuration ok: %s\n", cfg.describe().c_str());
        return 0;
    }

    // In text mode --out redirects the report; without it the report
    // goes to stdout, byte-identical to the historical output. In
    // json mode the report stays on stdout and --out names the JSON
    // document instead.
    FILE *rpt = stdout;
    if (format == StatsFormat::Text && !out_path.empty()) {
        rpt = std::fopen(out_path.c_str(), "w");
        if (!rpt)
            fatal("--out: cannot open '%s' for writing",
                  out_path.c_str());
    }

    // A comma list (or "all") runs a whole suite, optionally on
    // several worker threads.
    std::vector<std::string> suite;
    if (asm_path.empty()) {
        if (workload_name == "all") {
            suite = workload::workloadNames();
        } else if (workload_name.find(',') != std::string::npos) {
            const auto &known = workload::workloadNames();
            std::stringstream ss(workload_name);
            std::string n;
            while (std::getline(ss, n, ',')) {
                if (n.empty())
                    continue;
                if (std::find(known.begin(), known.end(), n) ==
                    known.end())
                    fatal("unknown workload '%s'", n.c_str());
                suite.push_back(n);
            }
        }
    }
    if (!suite.empty()) {
        if (do_disasm || dump_stats)
            fatal("--disasm and --stats need a single workload");
        std::fprintf(rpt, "design   : %s\n", cfg.describe().c_str());
        std::fprintf(rpt, "suite    : %zu kernels, %u job(s)\n\n",
                     suite.size(), jobs);
        // --jobs is a command-line spelling of the one global
        // scheduler worker count.
        sched::setGlobalWorkers(jobs);
        installSuiteSignalHandlers();
        sim::RunControl ctl;
        ctl.cancel = &g_interrupted;
        const auto t0 = std::chrono::steady_clock::now();
        const sim::SuiteResult sr =
            sim::runSuite(cfg, suite, wparams, max_insts, jobs, ctl);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        for (const auto &run : sr.runs) {
            if (run.failed)
                std::fprintf(rpt, "%-9s FAILED [%s] %s\n",
                             run.workload.c_str(),
                             sim::toString(run.errorKind),
                             run.error.c_str());
            else
                std::fprintf(rpt,
                             "%-9s %9llu insts  %9llu cycles  "
                             "IPC %.3f\n",
                             run.workload.c_str(),
                             static_cast<unsigned long long>(
                                 run.result.instsRetired),
                             static_cast<unsigned long long>(
                                 run.result.cycles),
                             run.result.ipc);
        }
        const bool interrupted = g_interrupted.load();
        std::fprintf(rpt, "\ngeomean IPC %.3f over %zu run(s)%s\n",
                     sr.geomeanIpc(), sr.runs.size() - sr.numFailed(),
                     sr.numFailed() ? " (failures above)" : "");
        if (interrupted)
            std::fprintf(rpt, "interrupted: partial results "
                              "flushed\n");
        if (rpt != stdout)
            std::fclose(rpt);
        if (format == StatsFormat::Json) {
            json::Writer jw;
            jw.beginObject();
            jw.field("schema_version", sim::resultsSchemaVersion);
            jw.field("kind", "ubrcsim-suite");
            writeMeta(jw, cfg, suite, max_insts, jobs);
            jw.field("wall_seconds", wall);
            jw.field("interrupted", interrupted);
            // Parallel suites ride the global scheduler; its stats
            // (tasks run, steals, per-worker balance) describe how
            // this run actually executed.
            if (jobs > 1)
                jw.key("sched").raw(sched::Scheduler::global(jobs)
                                        .stats()
                                        .toStatGroup()
                                        .toJson());
            jw.key("suite");
            sim::writeSuiteResult(jw, sr);
            jw.endObject();
            if (!writeJsonDoc(jsonOutPath(out_path, workload_name),
                              jw.str()))
                return 1;
        }
        // 130 (128 + SIGINT) tells callers the sweep was cut short
        // even though the partial document was written.
        if (interrupted)
            return 130;
        return sr.numFailed() ? 1 : 0;
    }

    const workload::Workload w =
        asm_path.empty() ? workload::buildWorkload(workload_name,
                                                   wparams)
                         : loadAsmWorkload(asm_path);

    if (do_disasm) {
        std::fputs(isa::disassemble(w.program).c_str(), stdout);
        return 0;
    }

    std::fprintf(rpt, "workload : %s (%s)\n", w.name.c_str(),
                 w.description.c_str());
    std::fprintf(rpt, "design   : %s\n", cfg.describe().c_str());
    cfg.maxInsts = max_insts;

    // Replay never builds a Processor: the recorded operand stream
    // stands in for the core.
    if (cfg.traceMode == sim::TraceMode::Replay) {
        sim::RunOutcome outcome;
        int exit_code = 0;
        const auto rt0 = std::chrono::steady_clock::now();
        try {
            outcome.result = trace::replayRun(cfg, w.name);
        } catch (const sim::SimError &e) {
            std::fprintf(stderr, "ubrcsim: %s: %s\n",
                         sim::toString(e.kind()), e.what());
            outcome.ok = false;
            outcome.kind = e.kind();
            outcome.message = e.what();
            exit_code = e.exitCode();
        }
        const double rwall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - rt0)
                .count();
        if (exit_code == 0) {
            const core::SimResult &r = outcome.result;
            std::fprintf(rpt, "replay   : trace v%u (%s), source %s\n",
                         r.trace.traceVersion,
                         r.trace.exact ? "exact" : "adaptive",
                         r.trace.sourceHash.c_str());
            printRunSummary(rpt, cfg, r);
        }
        if (rpt != stdout)
            std::fclose(rpt);
        if (format == StatsFormat::Json) {
            json::Writer jw;
            jw.beginObject();
            jw.field("schema_version", sim::resultsSchemaVersion);
            jw.field("kind", "ubrcsim-run");
            writeMeta(jw, cfg, {w.name}, max_insts, 1);
            jw.field("wall_seconds", rwall);
            jw.key("outcome");
            sim::writeRunOutcome(jw, outcome);
            jw.endObject();
            if (!writeJsonDoc(jsonOutPath(out_path, w.name),
                              jw.str()) &&
                exit_code == 0)
                exit_code = 1;
        }
        return exit_code;
    }

    trace::TraceRecorder trace_rec;
    const bool recording = cfg.traceMode == sim::TraceMode::Record;
    core::Processor proc(cfg, w,
                         recording
                             ? trace::recordingWrap(trace_rec)
                             : core::Processor::SupplierWrap{});
    sim::RunOutcome outcome;
    int exit_code = 0;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        proc.run();
        // Only completed runs leave a trace behind; a write failure
        // surfaces as a contained trace-format error (exit 10).
        if (recording) {
            const std::string path = trace::writeRecordedTrace(
                cfg, w.name, proc, trace_rec, cfg.traceDir);
            std::fprintf(stderr, "ubrcsim: recorded trace %s\n",
                         path.c_str());
        }
    } catch (const sim::SimError &e) {
        std::fprintf(stderr, "ubrcsim: %s: %s\n",
                     sim::toString(e.kind()), e.what());
        if (e.hasSnapshot()) {
            sim::dumpSnapshot(e.snapshot(), stderr);
            if (!dump_path.empty())
                sim::writeSnapshotFile(e.snapshot(), dump_path);
            outcome.snapshotText = e.snapshot().format();
        }
        outcome.ok = false;
        outcome.kind = e.kind();
        outcome.message = e.what();
        exit_code = e.exitCode();
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    outcome.result = proc.result(); // on failure: up to that point
    outcome.faults = proc.faultLog();

    if (exit_code == 0) {
        printRunSummary(rpt, cfg, outcome.result);
        if (dump_stats)
            std::fprintf(rpt, "\n%s", proc.statsDump().c_str());
    }
    if (rpt != stdout)
        std::fclose(rpt);

    if (format == StatsFormat::Json) {
        json::Writer jw;
        jw.beginObject();
        jw.field("schema_version", sim::resultsSchemaVersion);
        jw.field("kind", "ubrcsim-run");
        writeMeta(jw, cfg, {w.name}, max_insts, 1);
        jw.field("wall_seconds", wall);
        jw.key("outcome");
        sim::writeRunOutcome(jw, outcome);
        if (dump_stats)
            jw.key("stats").raw(proc.statsGroup().toJson());
        jw.endObject();
        if (!writeJsonDoc(jsonOutPath(out_path, w.name), jw.str()) &&
            exit_code == 0)
            exit_code = 1;
    }
    return exit_code;
}
