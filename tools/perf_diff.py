#!/usr/bin/env python3
"""Compare two BENCH throughput JSON captures and print speedups.

Takes a baseline and a candidate BENCH_throughput.json (both emitted
by bench_throughput via the Reporter) and prints, per scheme, the
simulated-instructions-per-second ratio candidate/baseline, plus the
aggregate ratio over total retired instructions and total wall clock.
Stdlib only. Usage:

    python3 tools/perf_diff.py results/BENCH_throughput_baseline.json \\
        results/BENCH_throughput.json

    # CI floor: fail (exit 1) unless every scheme and the aggregate
    # reach at least the given ratio.
    python3 tools/perf_diff.py --min-ratio 0.95 baseline.json new.json

A ratio above 1.0 means the candidate simulates faster. --min-ratio
is the regression floor: use 0.95 in CI to allow noise, or 2.0 to
enforce a claimed speedup.
"""

import json
import sys


def die(msg):
    print(f"perf_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def load_throughput(path):
    """Load a bench doc and return {scheme: (insts, wall, ips)}."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: {e}")
    if doc.get("kind") != "bench":
        die(f"{path}: not a bench document "
            f"(kind={doc.get('kind')!r})")
    tables = {t.get("id"): t for t in doc.get("tables", [])}
    if "throughput" not in tables:
        die(f"{path}: no 'throughput' table (is this "
            f"BENCH_throughput.json?)")
    schemes = {}
    for row in tables["throughput"]["rows"]:
        scheme, insts, wall, ips = row
        if not isinstance(ips, (int, float)) or ips <= 0:
            die(f"{path}: scheme {scheme!r} has no positive "
                f"throughput figure")
        schemes[scheme] = (insts, wall, ips)
    if not schemes:
        die(f"{path}: throughput table is empty")
    return schemes


def aggregate(schemes):
    """Total-insts / total-wall throughput across all schemes."""
    insts = sum(i for i, _, _ in schemes.values())
    wall = sum(w for _, w, _ in schemes.values())
    return insts / wall if wall > 0 else 0.0


def main(argv):
    min_ratio = None
    args = []
    it = iter(argv[1:])
    for a in it:
        if a == "--min-ratio":
            try:
                min_ratio = float(next(it))
            except (StopIteration, ValueError):
                die("--min-ratio requires a number")
            continue
        args.append(a)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    base_path, new_path = args
    base = load_throughput(base_path)
    new = load_throughput(new_path)

    missing = sorted(set(base) - set(new))
    if missing:
        die(f"{new_path}: schemes {missing} present in the baseline "
            f"but absent from the candidate")

    print(f"baseline : {base_path}")
    print(f"candidate: {new_path}")
    print(f"{'scheme':<12}{'base insts/s':>14}{'new insts/s':>14}"
          f"{'speedup':>9}")
    print("-" * 49)
    worst = None
    for scheme in sorted(base):
        _, _, base_ips = base[scheme]
        _, _, new_ips = new[scheme]
        ratio = new_ips / base_ips
        worst = ratio if worst is None else min(worst, ratio)
        print(f"{scheme:<12}{base_ips:>14.0f}{new_ips:>14.0f}"
              f"{ratio:>8.2f}x")
    extra = sorted(set(new) - set(base))
    for scheme in extra:
        _, _, new_ips = new[scheme]
        print(f"{scheme:<12}{'--':>14}{new_ips:>14.0f}"
              f"{'new':>9}")

    base_agg = aggregate(base)
    new_agg = aggregate(new)
    agg_ratio = new_agg / base_agg if base_agg > 0 else 0.0
    worst = agg_ratio if worst is None else min(worst, agg_ratio)
    print("-" * 49)
    print(f"{'aggregate':<12}{base_agg:>14.0f}{new_agg:>14.0f}"
          f"{agg_ratio:>8.2f}x")

    if min_ratio is not None and worst < min_ratio:
        print(f"FAIL: minimum speedup {worst:.2f}x is below the "
              f"--min-ratio floor {min_ratio:g}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
