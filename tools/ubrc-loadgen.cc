/**
 * @file
 * ubrc-loadgen: seeded chaos client for ubrcsim-server.
 *
 * Spawns a server child over stdio pipes and hammers it with a
 * randomized request mix — sweeps across scheme, geometry, policy,
 * and workload dimensions, a configurable fraction deliberately
 * malformed, a configurable fraction with fault injection enabled —
 * and then holds the service to its contract:
 *
 *  - every frame sent is answered exactly once (id-less rejections
 *    for unparseable/oversized frames are counted against the number
 *    of such frames sent),
 *  - malformed requests are rejected, never executed,
 *  - well-formed requests are never rejected (shed responses are
 *    retried with exponential backoff and seeded jitter until they
 *    land, per the queue-full contract),
 *  - executed results are bit-identical to a serial reference run of
 *    the same request in this process (--verify, on by default;
 *    deadline/cancel outcomes are exempt, they race wall time).
 *
 * Exit status 0 only when every check passes and the server drains
 * cleanly. The run is reproducible from --seed.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/framing.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "server/request.hh"
#include "sim/results_json.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;

namespace
{

struct Options
{
    std::string serverPath; ///< derived from argv[0] when empty
    uint64_t requests = 200;
    uint64_t seed = 1;
    double malformed = 0.1; ///< fraction of deliberately bad frames
    double faulty = 0.05;   ///< fraction with fault injection on
    unsigned workers = 2;
    size_t queue = 8;
    size_t maxFrame = 8192; ///< server frame limit (kept small so
                            ///< the oversized-frame mode can hit it)
    uint64_t deadlineMs = 30000; ///< server default deadline
    size_t window = 0;           ///< max outstanding; 0 = auto
    uint64_t instsLo = 1000, instsHi = 8000;
    bool verify = true;
    std::string outPath; ///< NDJSON log of every received frame
};

/** Lifecycle of one generated request frame. */
struct Pending
{
    std::string text;         ///< exact frame (resent verbatim)
    bool expectReject = false; ///< malformed with a recoverable id
    bool anonymous = false;    ///< unparseable/oversized: id is lost
    bool faulty = false;
    unsigned attempts = 0;
    bool done = false;
    std::string finalKind; ///< "sweep-response" or "sweep-reject"
    json::Value response;
};

using Clock = std::chrono::steady_clock;

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now().time_since_epoch())
        .count();
}

// ---------------------------------------------------------------
// Request generation
// ---------------------------------------------------------------

const char *const kSchemes[] = {"cached", "cached", "cached",
                                "cached", "monolithic", "two-level"};
const unsigned kEntries[] = {16, 32, 64, 128};
const unsigned kAssocs[] = {0, 1, 2, 4};
const char *const kInsertions[] = {"always", "non-bypass",
                                   "use-based"};
const char *const kReplacements[] = {"lru", "use-based"};
const char *const kIndexings[] = {"preg", "round-robin", "minimum",
                                  "filtered-rr"};

template <typename T, size_t N>
const T &
pick(Rng &rng, const T (&arr)[N])
{
    return arr[rng.below(N)];
}

/** A well-formed request; pre-validated so any rejection is a bug. */
std::string
makeValidRequest(const std::string &id, Rng &rng, const Options &opt,
                 bool &faulty)
{
    const auto &names = workload::workloadNames();
    for (int tries = 0; tries < 100; ++tries) {
        json::Writer w(false);
        w.beginObject();
        w.field("schema_version", 1u);
        w.field("kind", "sweep-request");
        w.field("id", id);
        w.field("workload", names[rng.below(names.size())]);
        w.field("seed", rng.next() % 100000);
        w.field("max_insts",
                static_cast<uint64_t>(rng.range(
                    static_cast<int64_t>(opt.instsLo),
                    static_cast<int64_t>(opt.instsHi))));
        w.key("config").beginObject();
        w.field("scheme", pick(rng, kSchemes));
        w.field("entries", pick(rng, kEntries));
        w.field("assoc", pick(rng, kAssocs));
        w.field("insertion", pick(rng, kInsertions));
        w.field("replacement", pick(rng, kReplacements));
        w.field("indexing", pick(rng, kIndexings));
        faulty = rng.chance(opt.faulty);
        if (faulty) {
            w.field("inject_rate",
                    1e-5 * static_cast<double>(1 + rng.below(20)));
            w.field("inject_seed", rng.next() % 100000);
        }
        w.endObject();
        w.endObject();

        // Pre-validate with the same code the server runs, so a
        // random-but-inconsistent combination is regenerated here
        // rather than counted as an unexpected rejection.
        try {
            server::SweepRequest req = server::parseSweepRequest(
                json::parse(w.str()), server::AdmissionLimits{});
            req.config.validate();
            return w.str();
        } catch (const sim::SimError &) {
            continue;
        }
    }
    fatal("could not generate a valid request in 100 tries");
}

/** One of several malformation modes; anon when the id is lost. */
std::string
makeMalformedRequest(const std::string &id, Rng &rng,
                     const Options &opt, bool &anon)
{
    anon = false;
    const std::string head = "{\"schema_version\":1,"
                             "\"kind\":\"sweep-request\",\"id\":\"" +
                             id + "\",";
    switch (rng.below(7)) {
      case 0: // truncated JSON: the id cannot be recovered
        anon = true;
        return head + "\"workload\":\"gzi";
      case 1: // unknown top-level key
        return head + "\"workloadd\":\"gzip\"}";
      case 2: // wrong type
        return head + "\"workload\":\"gzip\",\"seed\":\"one\"}";
      case 3: // unknown workload
        return head + "\"workload\":\"quake3\"}";
      case 4: // unknown policy name
        return head + "\"workload\":\"gzip\",\"config\":"
                      "{\"insertion\":\"mru\"}}";
      case 5: // budget over the admission cap
        return head + "\"workload\":\"gzip\","
                      "\"max_insts\":999999999999}";
      default: { // frame over the server's size limit
        anon = true;
        std::string pad(opt.maxFrame + 1024, 'x');
        return head + "\"workload\":\"" + pad + "\"}";
      }
    }
}

// ---------------------------------------------------------------
// Child process plumbing
// ---------------------------------------------------------------

struct Child
{
    pid_t pid = -1;
    int toChild = -1;   ///< write end of the child's stdin
    int fromChild = -1; ///< read end of the child's stdout
};

Child
spawnServer(const Options &opt)
{
    int inPipe[2], outPipe[2];
    if (pipe(inPipe) != 0 || pipe(outPipe) != 0)
        fatal("pipe: %s", std::strerror(errno));

    const std::string workers = std::to_string(opt.workers);
    const std::string queue = std::to_string(opt.queue);
    const std::string maxFrame = std::to_string(opt.maxFrame);
    const std::string deadline = std::to_string(opt.deadlineMs);

    const pid_t pid = fork();
    if (pid < 0)
        fatal("fork: %s", std::strerror(errno));
    if (pid == 0) {
        dup2(inPipe[0], STDIN_FILENO);
        dup2(outPipe[1], STDOUT_FILENO);
        close(inPipe[0]);
        close(inPipe[1]);
        close(outPipe[0]);
        close(outPipe[1]);
        const char *args[] = {opt.serverPath.c_str(),
                              "--workers", workers.c_str(),
                              "--queue", queue.c_str(),
                              "--max-frame", maxFrame.c_str(),
                              "--deadline-ms", deadline.c_str(),
                              nullptr};
        execv(opt.serverPath.c_str(),
              const_cast<char *const *>(args));
        std::fprintf(stderr, "exec %s: %s\n", opt.serverPath.c_str(),
                     std::strerror(errno));
        _exit(127);
    }

    Child c;
    c.pid = pid;
    c.toChild = inPipe[1];
    c.fromChild = outPipe[0];
    close(inPipe[0]);
    close(outPipe[1]);
    return c;
}

// ---------------------------------------------------------------
// The load driver
// ---------------------------------------------------------------

class LoadDriver
{
  public:
    LoadDriver(const Options &opt, Child child)
        : opt(opt), child(child), writer(child.toChild),
          reader(child.fromChild)
    {}

    /** Run the whole exchange; returns true when the drive is clean
     * (verification is a separate pass). */
    bool drive();

    std::vector<Pending> pending;
    uint64_t sheds = 0, retries = 0, anonRejects = 0;
    uint64_t expectedAnon = 0;
    uint64_t protocolErrors = 0; ///< frames from the server that
                                 ///< violate the protocol
    uint64_t unanswered = 0;
    bool sawDrain = false;
    bool sawHello = false;

  private:
    void readerMain();
    void handleServerDoc(const std::string &line);
    bool sendFrame(size_t idx);

    Options opt;
    Child child;
    framing::LineWriter writer;
    framing::LineReader reader;

    std::mutex mu;
    std::condition_variable cv;
    size_t outstanding = 0;
    uint64_t finalized = 0;
    bool readerDone = false;
    int64_t lastProgressMs = 0;
    /** (due time ms, pending index), soonest first. */
    std::priority_queue<std::pair<int64_t, size_t>,
                        std::vector<std::pair<int64_t, size_t>>,
                        std::greater<>>
        retryAt;

    FILE *logFile = nullptr;
    std::mutex logMu;
};

bool
LoadDriver::sendFrame(size_t idx)
{
    ++pending[idx].attempts;
    return writer.writeLine(pending[idx].text);
}

void
LoadDriver::handleServerDoc(const std::string &line)
{
    if (logFile) {
        std::lock_guard<std::mutex> lock(logMu);
        std::fprintf(logFile, "%s\n", line.c_str());
    }

    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const json::ParseError &) {
        std::lock_guard<std::mutex> lock(mu);
        ++protocolErrors;
        return;
    }

    const json::Value *kindV = doc.find("kind");
    const std::string kind = kindV && kindV->isString()
                                 ? kindV->string
                                 : std::string();

    std::lock_guard<std::mutex> lock(mu);
    lastProgressMs = nowMs();

    if (kind == "server-hello") {
        sawHello = true;
        return;
    }
    if (kind == "server-drain") {
        sawDrain = true;
        cv.notify_all();
        return;
    }
    if (kind != "sweep-response" && kind != "sweep-reject") {
        ++protocolErrors;
        return;
    }

    const std::string id = server::requestIdOf(doc);
    if (id.empty()) {
        // Rejection of an unparseable/oversized frame: matchable
        // only by count.
        if (kind == "sweep-reject") {
            ++anonRejects;
            --outstanding;
            ++finalized;
        } else {
            ++protocolErrors;
        }
        cv.notify_all();
        return;
    }

    size_t idx = pending.size();
    if (id.rfind("r-", 0) == 0)
        idx = std::strtoull(id.c_str() + 2, nullptr, 10);
    if (idx >= pending.size() || pending[idx].done) {
        ++protocolErrors; // unknown id or a duplicate answer
        cv.notify_all();
        return;
    }

    bool retryable = false;
    if (kind == "sweep-reject") {
        const json::Value *err = doc.find("error");
        const json::Value *r = err ? err->find("retryable") : nullptr;
        retryable = r && r->type == json::Value::Type::Bool &&
                    r->boolean;
    }

    if (retryable) {
        // Queue-full shed (or drain-time cancel): back off and
        // resubmit the identical frame. Exponential with seeded
        // jitter; the Rng lives in this thread only.
        ++sheds;
        --outstanding;
        static thread_local Rng jitterRng(0xb0ffu);
        const unsigned a = std::min(pending[idx].attempts, 6u);
        const int64_t base = std::min<int64_t>(200, 5ll << a);
        const int64_t due =
            nowMs() + base / 2 +
            static_cast<int64_t>(
                jitterRng.below(static_cast<uint64_t>(base)));
        retryAt.emplace(due, idx);
        cv.notify_all();
        return;
    }

    pending[idx].done = true;
    pending[idx].finalKind = kind;
    pending[idx].response = std::move(doc);
    --outstanding;
    ++finalized;
    cv.notify_all();
}

void
LoadDriver::readerMain()
{
    std::string line;
    while (true) {
        const framing::ReadStatus st = reader.readLine(line);
        if (st == framing::ReadStatus::Ok) {
            handleServerDoc(line);
            continue;
        }
        if (st == framing::ReadStatus::Interrupted)
            continue;
        break; // Eof, IoError, FrameTooLong (server misbehaving)
    }
    std::lock_guard<std::mutex> lock(mu);
    readerDone = true;
    cv.notify_all();
}

bool
LoadDriver::drive()
{
    if (!opt.outPath.empty()) {
        logFile = std::fopen(opt.outPath.c_str(), "w");
        if (!logFile)
            fatal("cannot open '%s' for writing",
                  opt.outPath.c_str());
    }

    // Generate the whole request schedule up front (reproducible
    // from the seed alone, independent of response timing).
    Rng rng(opt.seed);
    pending.resize(opt.requests);
    for (size_t i = 0; i < pending.size(); ++i) {
        Pending &p = pending[i];
        const std::string id = "r-" + std::to_string(i);
        if (rng.chance(opt.malformed)) {
            p.expectReject = true;
            p.text = makeMalformedRequest(id, rng, opt, p.anonymous);
            if (p.anonymous)
                ++expectedAnon;
        } else {
            p.text = makeValidRequest(id, rng, opt, p.faulty);
        }
    }

    const size_t window = opt.window
                              ? opt.window
                              : opt.workers + opt.queue + 6;
    // An I/O pump draining server responses, not simulation work —
    // the server side executes on the scheduler.
    // ubrc-lint: allow(raw-thread)
    std::thread readerThread(&LoadDriver::readerMain, this);

    size_t nextToSend = 0;
    bool writeFailed = false;
    {
        std::unique_lock<std::mutex> lock(mu);
        lastProgressMs = nowMs();
        while (finalized < pending.size()) {
            if (readerDone)
                break; // server went away with work unanswered
            if (nowMs() - lastProgressMs > 120000)
                break; // stuck: fail rather than hang forever

            // Send whatever is due: retries first, then fresh load.
            size_t toSend = pending.size(); // sentinel
            if (!retryAt.empty() &&
                retryAt.top().first <= nowMs() &&
                outstanding < window) {
                toSend = retryAt.top().second;
                retryAt.pop();
                ++retries;
            } else if (nextToSend < pending.size() &&
                       outstanding < window) {
                toSend = nextToSend++;
            }

            if (toSend < pending.size()) {
                ++outstanding;
                lock.unlock();
                const bool sent = sendFrame(toSend);
                lock.lock();
                if (!sent) {
                    writeFailed = true;
                    break;
                }
                continue;
            }
            cv.wait_for(lock, std::chrono::milliseconds(5));
        }
        unanswered = pending.size() - finalized;
    }

    // Ask for a graceful shutdown and close our side; the server
    // answers with the drain summary and exits.
    if (!writeFailed)
        writer.writeLine("{\"kind\":\"shutdown\"}");
    close(child.toChild);
    readerThread.join();
    close(child.fromChild);

    int status = 0;
    waitpid(child.pid, &status, 0);
    const bool serverClean =
        WIFEXITED(status) && WEXITSTATUS(status) == 0;

    if (logFile) {
        std::fclose(logFile);
        logFile = nullptr;
    }

    return !writeFailed && serverClean && unanswered == 0 &&
           sawDrain && protocolErrors == 0;
}

// ---------------------------------------------------------------
// Serial reference verification
// ---------------------------------------------------------------

struct VerifyStats
{
    uint64_t verified = 0;
    uint64_t mismatches = 0;
    uint64_t skipped = 0;    ///< deadline/cancel outcomes
    uint64_t badAccepts = 0; ///< malformed request got executed
    uint64_t badRejects = 0; ///< well-formed request got rejected
};

VerifyStats
verifyResponses(const std::vector<Pending> &pending, bool verify)
{
    VerifyStats v;
    for (const auto &p : pending) {
        if (!p.done)
            continue;
        if (p.expectReject) {
            if (p.finalKind != "sweep-reject")
                ++v.badAccepts;
            continue;
        }
        if (p.finalKind != "sweep-response") {
            ++v.badRejects;
            continue;
        }
        if (!verify)
            continue;

        // Deadline and cancel outcomes race wall time; everything
        // else — including contained checker divergences from fault
        // injection — must be bit-identical to a serial rerun.
        const json::Value *err = p.response.find("error");
        if (err && err->isObject()) {
            const json::Value *k = err->find("kind");
            const std::string kind =
                k && k->isString() ? k->string : std::string();
            if (kind == "deadline exceeded" || kind == "canceled") {
                ++v.skipped;
                continue;
            }
        }

        const server::SweepRequest req = server::parseSweepRequest(
            json::parse(p.text), server::AdmissionLimits{});
        const workload::Workload w =
            workload::buildWorkload(req.workloadName, req.params);
        const sim::RunOutcome ref =
            sim::runOneChecked(req.config, w, req.maxInsts);

        json::Writer refw(false);
        sim::writeRunOutcome(refw, ref);
        const json::Value refDoc = json::parse(refw.str());
        const json::Value *got = p.response.find("outcome");
        if (got && json::equal(refDoc, *got))
            ++v.verified;
        else
            ++v.mismatches;
    }
    return v;
}

// ---------------------------------------------------------------

void
usage()
{
    std::fputs(
        "usage: ubrc-loadgen [options]\n"
        "\n"
        "options:\n"
        "  --server PATH    ubrcsim-server binary (default: next to "
        "this binary)\n"
        "  --requests N     frames to send (default 200)\n"
        "  --seed S         generator seed (default 1)\n"
        "  --malformed F    fraction of bad frames (default 0.1)\n"
        "  --faulty F       fraction with fault injection "
        "(default 0.05)\n"
        "  --workers N      server worker threads (default 2)\n"
        "  --queue N        server queue capacity (default 8)\n"
        "  --window N       max outstanding frames "
        "(default workers+queue+6)\n"
        "  --deadline-ms N  server default deadline "
        "(default 30000)\n"
        "  --insts LO HI    per-request budget range "
        "(default 1000 8000)\n"
        "  --no-verify      skip the serial bit-identity pass\n"
        "  --out FILE       NDJSON log of every server frame\n"
        "  --help           this message\n",
        stderr);
}

const char *
nextArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("option '%s' needs a value", argv[i]);
    return argv[++i];
}

uint64_t
parseU64(const char *flag, const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0')
        fatal("%s: cannot parse '%s' as an integer", flag, s);
    return v;
}

double
parseF64(const char *flag, const char *s)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0')
        fatal("%s: cannot parse '%s' as a number", flag, s);
    return v;
}

std::string
defaultServerPath(const char *argv0)
{
    const std::string self(argv0);
    const size_t slash = self.rfind('/');
    if (slash == std::string::npos)
        return "./ubrcsim-server";
    return self.substr(0, slash + 1) + "ubrcsim-server";
}

} // namespace

int
main(int argc, char **argv)
{
    // A dying server must surface as a failed write, not a SIGPIPE.
    signal(SIGPIPE, SIG_IGN);

    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--server") {
            opt.serverPath = nextArg(argc, argv, i);
        } else if (arg == "--requests") {
            opt.requests =
                parseU64("--requests", nextArg(argc, argv, i));
        } else if (arg == "--seed") {
            opt.seed = parseU64("--seed", nextArg(argc, argv, i));
        } else if (arg == "--malformed") {
            opt.malformed =
                parseF64("--malformed", nextArg(argc, argv, i));
        } else if (arg == "--faulty") {
            opt.faulty = parseF64("--faulty", nextArg(argc, argv, i));
        } else if (arg == "--workers") {
            opt.workers = static_cast<unsigned>(
                parseU64("--workers", nextArg(argc, argv, i)));
        } else if (arg == "--queue") {
            opt.queue = static_cast<size_t>(
                parseU64("--queue", nextArg(argc, argv, i)));
        } else if (arg == "--window") {
            opt.window = static_cast<size_t>(
                parseU64("--window", nextArg(argc, argv, i)));
        } else if (arg == "--deadline-ms") {
            opt.deadlineMs =
                parseU64("--deadline-ms", nextArg(argc, argv, i));
        } else if (arg == "--insts") {
            opt.instsLo = parseU64("--insts", nextArg(argc, argv, i));
            opt.instsHi = parseU64("--insts", nextArg(argc, argv, i));
            if (opt.instsLo == 0 || opt.instsHi < opt.instsLo)
                fatal("--insts: need 0 < LO <= HI");
        } else if (arg == "--no-verify") {
            opt.verify = false;
        } else if (arg == "--out") {
            opt.outPath = nextArg(argc, argv, i);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (opt.serverPath.empty())
        opt.serverPath = defaultServerPath(argv[0]);

    LoadDriver driver(opt, spawnServer(opt));
    const bool driveClean = driver.drive();
    const VerifyStats v =
        verifyResponses(driver.pending, opt.verify);

    const bool anonMatched =
        driver.anonRejects == driver.expectedAnon;
    const bool pass = driveClean && anonMatched &&
                      driver.unanswered == 0 && v.mismatches == 0 &&
                      v.badAccepts == 0 && v.badRejects == 0;

    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "loadgen-summary");
    w.field("requests", opt.requests);
    w.field("seed", opt.seed);
    w.field("sheds", driver.sheds);
    w.field("retries", driver.retries);
    w.field("anon_rejects", driver.anonRejects);
    w.field("expected_anon", driver.expectedAnon);
    w.field("unanswered", driver.unanswered);
    w.field("protocol_errors", driver.protocolErrors);
    w.field("verified", v.verified);
    w.field("verify_skipped", v.skipped);
    w.field("mismatches", v.mismatches);
    w.field("bad_accepts", v.badAccepts);
    w.field("bad_rejects", v.badRejects);
    w.field("drive_clean", driveClean);
    w.field("pass", pass);
    w.endObject();
    std::printf("%s\n", w.str().c_str());

    std::fprintf(stderr,
                 "loadgen: %llu requests, %llu sheds, %llu retries, "
                 "%llu verified, %llu mismatches -> %s\n",
                 static_cast<unsigned long long>(opt.requests),
                 static_cast<unsigned long long>(driver.sheds),
                 static_cast<unsigned long long>(driver.retries),
                 static_cast<unsigned long long>(v.verified),
                 static_cast<unsigned long long>(v.mismatches),
                 pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
