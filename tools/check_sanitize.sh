#!/bin/sh
# Build the whole tree with ASan+UBSan (-DUBRC_SANITIZE=ON) and run
# the test suite under it. A separate build directory keeps sanitized
# objects out of the normal build.
#
# Usage: tools/check_sanitize.sh [build-dir]
set -e

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-sanitize"}

cmake -B "$build" -S "$repo" -DUBRC_SANITIZE=ON
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
