#!/bin/sh
# Build the tree with a sanitizer preset (-DUBRC_SANITIZE=...) and run
# the test suite under it. A separate build directory per sanitizer
# keeps sanitized objects out of the normal build.
#
# Usage: tools/check_sanitize.sh [sanitizer] [build-dir] [ctest-regex]
#
#   sanitizer    address | undefined | thread | address,undefined
#                (default: address,undefined)
#   build-dir    defaults to <repo>/build-sanitize-<sanitizer>
#   ctest-regex  optional -R filter, e.g. 'Determinism|Suite' to run
#                only the parallel-runner determinism tests under TSan
set -e

usage() {
    echo "usage: $0 [address|undefined|thread|address,undefined]" \
         "[build-dir] [ctest-regex]" >&2
    exit 2
}

san=${1:-"address,undefined"}
case "$san" in
    address|undefined|thread|address,undefined|undefined,address) ;;
    -h|--help) usage ;;
    *)
        echo "check_sanitize.sh: unknown sanitizer '$san'" >&2
        usage
        ;;
esac

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${2:-"$repo/build-sanitize-$(echo "$san" | tr ',' '-')"}
regex=${3:-}

cmake -B "$build" -S "$repo" -DUBRC_SANITIZE="$san"
cmake --build "$build" -j "$(nproc)"
if [ -n "$regex" ]; then
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
        -R "$regex"
else
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
fi
