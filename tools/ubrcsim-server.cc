/**
 * @file
 * ubrcsim-server: persistent sweep service over stdin/stdout.
 *
 * Reads line-delimited JSON sweep-request frames from stdin, runs
 * them on a worker pool, and writes one response frame per request to
 * stdout (see src/server/server.hh for the robustness model and
 * DESIGN.md for the wire protocol). To serve a TCP port, bridge the
 * stdio with an inetd-style supervisor (e.g. socat).
 *
 *   ubrcsim-server --workers 4 --queue 32 --deadline-ms 10000 \
 *       < requests.ndjson > responses.ndjson
 *
 * SIGINT/SIGTERM begin a graceful drain: in-flight runs finish,
 * queued requests are answered with retryable cancellations, and the
 * server exits 0 after the server-drain summary. A second signal
 * aborts in-flight runs at their next deadline poll.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/log.hh"
#include "sched/scheduler.hh"
#include "server/server.hh"

using namespace ubrc;

namespace
{

server::SweepServer *g_server = nullptr;

void
onSignal(int)
{
    // Only touches atomics; LineReader surfaces the EINTR as
    // Interrupted because the handler installs without SA_RESTART.
    if (g_server)
        g_server->requestStop();
}

void
installSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: blocking reads must wake
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
usage()
{
    std::fputs(
        "usage: ubrcsim-server [options]\n"
        "\n"
        "options:\n"
        "  --workers N        worker threads (default: UBRC_JOBS,\n"
        "                     else 2). Sets the one global scheduler\n"
        "                     worker count (sched/scheduler.hh)\n"
        "  --queue N          admission queue capacity (default 16)\n"
        "  --trace-cache N    decoded traces kept for trace_replay\n"
        "                     requests (default 8; 0 disables)\n"
        "  --max-frame N      per-frame byte limit (default 1 MiB)\n"
        "  --deadline-ms N    default per-request deadline "
        "(default 0 = none)\n"
        "  --max-insts-cap N  largest admissible instruction budget\n"
        "  --max-scale N      largest admissible workload scale\n"
        "  --no-hello         suppress the server-hello document\n"
        "  --help             this message\n",
        stderr);
}

const char *
nextArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("option '%s' needs a value", argv[i]);
    return argv[++i];
}

uint64_t
parseU64(const char *flag, const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0')
        fatal("%s: cannot parse '%s' as an integer", flag, s);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServerOptions opts;
    // The service rides the process-global scheduler; --workers is a
    // command-line spelling of the one global worker value.
    opts.workers = 0;
    unsigned workers = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers") {
            const uint64_t n =
                parseU64("--workers", nextArg(argc, argv, i));
            if (n == 0 || n > 256)
                fatal("--workers: must be in 1..256");
            workers = static_cast<unsigned>(n);
        } else if (arg == "--trace-cache") {
            opts.traceCacheCapacity = static_cast<size_t>(
                parseU64("--trace-cache", nextArg(argc, argv, i)));
        } else if (arg == "--queue") {
            const uint64_t n =
                parseU64("--queue", nextArg(argc, argv, i));
            if (n == 0)
                fatal("--queue: capacity must be positive");
            opts.queueCapacity = static_cast<size_t>(n);
        } else if (arg == "--max-frame") {
            const uint64_t n =
                parseU64("--max-frame", nextArg(argc, argv, i));
            if (n < 64)
                fatal("--max-frame: limit must be at least 64");
            opts.maxFrameBytes = static_cast<size_t>(n);
        } else if (arg == "--deadline-ms") {
            opts.defaultDeadlineMs =
                parseU64("--deadline-ms", nextArg(argc, argv, i));
        } else if (arg == "--max-insts-cap") {
            opts.limits.maxInsts =
                parseU64("--max-insts-cap", nextArg(argc, argv, i));
        } else if (arg == "--max-scale") {
            opts.limits.maxScale =
                parseU64("--max-scale", nextArg(argc, argv, i));
        } else if (arg == "--no-hello") {
            opts.emitHello = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    // One global value governs the pool everywhere: explicit
    // --workers wins, else UBRC_JOBS, else the service's historical
    // default of 2.
    sched::setGlobalWorkers(workers ? workers : sched::envJobs(2));

    server::SweepServer srv(STDIN_FILENO, STDOUT_FILENO, opts);
    g_server = &srv;
    installSignalHandlers();

    const int rc = srv.serve();
    g_server = nullptr;
    return rc;
}
