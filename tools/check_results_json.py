#!/usr/bin/env python3
"""Validate UBRC results JSON documents.

Checks documents emitted by the bench Reporter (BENCH_*.json), by
ubrcsim --stats-format=json (UBRCSIM_*.json), and by the sweep
service (ubrcsim-server responses, ubrc-loadgen summaries) against
schema version 1 as specified in src/sim/results_json.hh and
DESIGN.md. Stdlib only; used by the CI bench-smoke and server-smoke
jobs and usable locally:

    python3 tools/check_results_json.py results/*.json
    python3 tools/check_results_json.py responses.ndjson

Files ending in .ndjson (or passed via --ndjson) are treated as
line-delimited JSON: every non-empty line must hold one valid
document. Exit status is 0 when every document validates, 1
otherwise.

With --cross-check, the given documents are additionally paired up:
every successful EXACT trace-replay run (result.trace.exact == true)
must have an execution-driven run of the same scheme and workload
somewhere in the document set whose entire result block is identical
(the replay fidelity contract of src/trace). --min-speedup X further
requires mean execution wall clock per suite/run to be at least X
times the mean replay wall clock:

    python3 tools/check_results_json.py --cross-check \\
        --min-speedup 10 results/BENCH_replay_surface.json
"""

import json
import sys

SCHEMA_VERSION = 1

NUMBER = (int, float)

SIM_RESULT_SECTIONS = {
    "operands": ("bypass", "cache", "file", "bypass_fraction"),
    "cache": ("misses", "miss_no_write", "miss_conflict",
              "miss_capacity", "miss_per_operand", "inserts", "fills",
              "values_produced", "writes_filtered",
              "values_never_cached", "cached_never_read",
              "cached_total", "avg_occupancy", "avg_entry_lifetime",
              "reads_per_cached_value", "cache_count_per_value",
              "zero_use_victim_fraction"),
    "bandwidth": ("cache_read", "cache_write", "file_read",
                  "file_write"),
    "predictors": ("dou_accuracy", "branch_mispredict_rate"),
    "lifetimes": ("median_empty", "median_live", "median_dead",
                  "allocated_p50", "allocated_p90", "live_p50",
                  "live_p90"),
    "replay": ("mini_replays", "issue_group_squashes",
               "branch_mispredicts", "mem_order_violations"),
    "frontend": ("fetch_blocks", "rename_stalls_regs",
                 "rename_stalls_rob", "rename_stalls_iq"),
}

# Every key writeSupplierStats (src/sim/results_json.cc) emits, in
# serializer order so drift is obvious in a diff.
SUPPLIER_KEYS = (
    "has_cache", "misses", "miss_no_write", "miss_conflict",
    "miss_capacity", "inserts", "fills", "writes_filtered",
    "values_never_cached", "entries_never_read", "file_reads",
    "file_writes", "avg_occupancy", "avg_entry_lifetime",
    "reads_per_cached_value", "zero_use_victim_fraction",
    "dou_accuracy")


class ValidationError(Exception):
    pass


def expect(cond, msg):
    if not cond:
        raise ValidationError(msg)


def expect_keys(obj, keys, where):
    expect(isinstance(obj, dict), f"{where}: expected an object")
    missing = [k for k in keys if k not in obj]
    expect(not missing, f"{where}: missing keys {missing}")


def check_sim_result(r, where):
    expect_keys(r, ("cycles", "insts_retired", "ipc", "supplier"),
                where)
    for key in ("cycles", "insts_retired"):
        expect(isinstance(r[key], int) and r[key] >= 0,
               f"{where}.{key}: expected a non-negative integer")
    expect(isinstance(r["ipc"], NUMBER), f"{where}.ipc: not a number")
    for section, fields in SIM_RESULT_SECTIONS.items():
        expect_keys(r.get(section), fields, f"{where}.{section}")
        for f in fields:
            # Non-finite doubles serialize as null by design.
            v = r[section][f]
            expect(v is None or isinstance(v, NUMBER),
                   f"{where}.{section}.{f}: not a number or null")
    expect_keys(r["supplier"], SUPPLIER_KEYS, f"{where}.supplier")
    expect(isinstance(r["supplier"]["has_cache"], bool),
           f"{where}.supplier.has_cache: not a bool")
    for f in SUPPLIER_KEYS[1:]:
        v = r["supplier"][f]
        expect(v is None or isinstance(v, NUMBER),
               f"{where}.supplier.{f}: not a number or null")
    # Replay provenance: present only on trace-replayed results.
    if "trace" in r:
        t = r["trace"]
        expect_keys(t, ("replayed", "exact", "trace_version",
                        "source_hash"), f"{where}.trace")
        expect(t["replayed"] is True,
               f"{where}.trace.replayed: must be true when present")
        expect(isinstance(t["exact"], bool),
               f"{where}.trace.exact: not a bool")
        expect(isinstance(t["trace_version"], int) and
               t["trace_version"] >= 1,
               f"{where}.trace.trace_version: expected a positive "
               f"integer, got {t['trace_version']!r}")
        h = t["source_hash"]
        expect(isinstance(h, str) and len(h) == 16 and
               all(c in "0123456789abcdef" for c in h),
               f"{where}.trace.source_hash: expected 16 lowercase hex "
               f"digits, got {h!r}")


def check_suite(s, where):
    expect_keys(s, ("num_runs", "num_failed", "geomean_ipc",
                    "mean_ipc", "mean_miss_per_operand",
                    "insts_retired_total",
                    "sim_instructions_per_second", "failures",
                    "runs"), where)
    expect(isinstance(s["insts_retired_total"], int) and
           s["insts_retired_total"] >= 0,
           f"{where}.insts_retired_total: expected a non-negative "
           f"integer")
    expect(s["sim_instructions_per_second"] is None or
           isinstance(s["sim_instructions_per_second"], NUMBER),
           f"{where}.sim_instructions_per_second: not a number or "
           f"null")
    num_runs, num_failed = s["num_runs"], s["num_failed"]
    expect(isinstance(num_runs, int) and isinstance(num_failed, int),
           f"{where}: num_runs/num_failed must be integers")
    expect(len(s["runs"]) == num_runs,
           f"{where}: runs[] length {len(s['runs'])} != num_runs "
           f"{num_runs}")
    expect(len(s["failures"]) == num_failed,
           f"{where}: failures[] length != num_failed")
    all_failed = num_runs == num_failed
    for agg in ("geomean_ipc", "mean_ipc", "mean_miss_per_operand"):
        v = s[agg]
        if all_failed:
            expect(v is None,
                   f"{where}.{agg}: must be null when every run "
                   f"failed, got {v!r}")
        else:
            expect(isinstance(v, NUMBER),
                   f"{where}.{agg}: expected a number, got {v!r}")
    for i, f in enumerate(s["failures"]):
        expect_keys(f, ("workload", "kind", "message"),
                    f"{where}.failures[{i}]")
    for i, run in enumerate(s["runs"]):
        rw = f"{where}.runs[{i}]"
        expect_keys(run, ("workload", "failed", "error", "ipc",
                          "result", "wall_seconds",
                          "sim_insts_per_second"), rw)
        expect(isinstance(run["wall_seconds"], NUMBER),
               f"{rw}.wall_seconds: not a number")
        expect(run["sim_insts_per_second"] is None or
               isinstance(run["sim_insts_per_second"], NUMBER),
               f"{rw}.sim_insts_per_second: not a number or null")
        expect(isinstance(run["failed"], bool),
               f"{rw}.failed: not a bool")
        if run["failed"]:
            expect_keys(run["error"], ("kind", "message"),
                        f"{rw}.error")
            expect(run["ipc"] is None,
                   f"{rw}.ipc: must be null for a failed run")
        else:
            expect(run["error"] is None,
                   f"{rw}.error: must be null for a successful run")
            expect(isinstance(run["ipc"], NUMBER),
                   f"{rw}.ipc: not a number")
        check_sim_result(run["result"], f"{rw}.result")


def check_outcome(o, where):
    expect_keys(o, ("ok", "error", "faults", "result"), where)
    expect(isinstance(o["ok"], bool), f"{where}.ok: not a bool")
    if o["ok"]:
        expect(o["error"] is None,
               f"{where}.error: must be null when ok")
    else:
        expect_keys(o["error"], ("kind", "message", "has_snapshot"),
                    f"{where}.error")
    expect(isinstance(o["faults"], list),
           f"{where}.faults: not an array")
    for i, f in enumerate(o["faults"]):
        expect_keys(f, ("cycle", "target", "site", "detail", "bit",
                        "text"), f"{where}.faults[{i}]")
    check_sim_result(o["result"], f"{where}.result")


def check_meta(meta, keys, where):
    expect_keys(meta, keys, where)
    expect(isinstance(meta["workloads"], list) and
           all(isinstance(x, str) for x in meta["workloads"]),
           f"{where}.workloads: not an array of strings")
    for key in ("max_insts", "jobs", "generated_unix"):
        expect(isinstance(meta[key], int),
               f"{where}.{key}: not an integer")
    expect(isinstance(meta["git"], str) and meta["git"],
           f"{where}.git: not a non-empty string")


def check_trace_meta(meta, where):
    """meta.trace: provenance block ubrcsim writes for trace-mode
    invocations (absent for plain execution)."""
    if "trace" not in meta:
        return
    t = meta["trace"]
    expect_keys(t, ("mode", "dir", "trace_version"), f"{where}.trace")
    expect(isinstance(t["mode"], str) and t["mode"],
           f"{where}.trace.mode: not a non-empty string")
    expect(isinstance(t["dir"], str),
           f"{where}.trace.dir: not a string")
    expect(isinstance(t["trace_version"], int) and
           t["trace_version"] >= 1,
           f"{where}.trace.trace_version: expected a positive "
           f"integer")


def check_stat_sections(stats, where):
    """Shape of a serialized StatGroup (src/common/stats.cc,
    JsonVisitor): scalar/mean/distribution sections are optional but
    each entry has a fixed shape."""
    for section in ("scalars", "means", "distributions"):
        if section in stats:
            expect(isinstance(stats[section], dict),
                   f"{where}.{section}: not an object")
    for name, m in stats.get("means", {}).items():
        mw = f"{where}.means.{name}"
        expect_keys(m, ("value", "sum", "count"), mw)
        expect(isinstance(m["count"], int) and m["count"] >= 0,
               f"{mw}.count: expected a non-negative integer")
    for name, d in stats.get("distributions", {}).items():
        dw = f"{where}.distributions.{name}"
        expect_keys(d, ("count", "mean", "p50", "p90", "buckets"), dw)
        expect(isinstance(d["count"], int) and d["count"] >= 0,
               f"{dw}.count: expected a non-negative integer")
        expect(isinstance(d["buckets"], list),
               f"{dw}.buckets: not an array")


def check_throughput_bench(doc):
    """Extra requirements for the throughput trajectory document.

    BENCH_throughput.json is diffed across commits by perf_diff.py,
    so beyond the generic bench shape it must carry a positive wall
    clock and a throughput figure for the aggregate, for every suite,
    and for every row of the "throughput" table.
    """
    meta = doc["meta"]
    expect(isinstance(meta["wall_seconds_total"], NUMBER) and
           meta["wall_seconds_total"] > 0,
           "meta.wall_seconds_total: must be a positive number")
    expect(isinstance(meta["sim_instructions_per_second"], NUMBER) and
           meta["sim_instructions_per_second"] > 0,
           "meta.sim_instructions_per_second: must be a positive "
           "number")
    expect(meta["insts_retired_total"] > 0,
           "meta.insts_retired_total: must be positive")
    tables = {t["id"]: t for t in doc["tables"]}
    expect("throughput" in tables,
           "tables: throughput document is missing its 'throughput' "
           "table")
    rows = tables["throughput"]["rows"]
    expect(rows, "tables[throughput].rows: empty")
    for i, row in enumerate(rows):
        scheme, insts, wall, ips = row
        where = f"tables[throughput].rows[{i}]"
        expect(isinstance(scheme, str) and scheme,
               f"{where}: scheme must be a non-empty string")
        expect(isinstance(insts, int) and insts > 0,
               f"{where}: insts must be a positive integer")
        expect(isinstance(wall, NUMBER) and wall > 0,
               f"{where}: wall clock must be positive")
        expect(isinstance(ips, NUMBER) and ips > 0,
               f"{where}: sim insts/s must be positive")
    expect(doc["suites"], "suites: throughput document has no suites")
    for s in doc["suites"]:
        sw = f"suites[{s.get('label', '?')!r}]"
        expect(isinstance(s["wall_seconds"], NUMBER) and
               s["wall_seconds"] > 0,
               f"{sw}.wall_seconds: must be positive")
        expect(isinstance(s["sim_instructions_per_second"], NUMBER) and
               s["sim_instructions_per_second"] > 0,
               f"{sw}.sim_instructions_per_second: must be positive")


def check_bench(doc):
    check_meta(doc["meta"],
               ("harness", "title", "paper_ref", "config",
                "workloads", "max_insts", "jobs", "git",
                "generated_unix", "wall_seconds_total",
                "insts_retired_total",
                "sim_instructions_per_second"), "meta")
    meta = doc["meta"]
    expect(isinstance(meta["insts_retired_total"], int) and
           meta["insts_retired_total"] >= 0,
           "meta.insts_retired_total: expected a non-negative integer")
    expect(meta["sim_instructions_per_second"] is None or
           isinstance(meta["sim_instructions_per_second"], NUMBER),
           "meta.sim_instructions_per_second: not a number or null")
    expect(isinstance(doc.get("tables"), list), "tables: not an array")
    for t in doc["tables"]:
        tw = f"tables[{t.get('id', '?')!r}]"
        expect_keys(t, ("id", "headers", "rows"), tw)
        width = len(t["headers"])
        for i, row in enumerate(t["rows"]):
            expect(isinstance(row, list) and len(row) == width,
                   f"{tw}.rows[{i}]: expected {width} cells, got "
                   f"{len(row) if isinstance(row, list) else row!r}")
            for j, cell in enumerate(row):
                expect(cell is None or isinstance(cell, (str,) + NUMBER),
                       f"{tw}.rows[{i}][{j}]: bad cell type")
    expect(isinstance(doc.get("suites"), list), "suites: not an array")
    for s in doc["suites"]:
        sw = f"suites[{s.get('label', '?')!r}]"
        expect_keys(s, ("label", "config", "scheme", "wall_seconds",
                        "sim_instructions_per_second", "suite"), sw)
        expect(s["sim_instructions_per_second"] is None or
               isinstance(s["sim_instructions_per_second"], NUMBER),
               f"{sw}.sim_instructions_per_second: not a number or "
               f"null")
        check_suite(s["suite"], f"{sw}.suite")
    if doc["meta"].get("harness") == "throughput":
        check_throughput_bench(doc)


def check_ubrcsim_run(doc):
    check_meta(doc["meta"],
               ("tool", "config", "scheme", "workloads", "max_insts",
                "jobs", "git", "generated_unix"), "meta")
    check_trace_meta(doc["meta"], "meta")
    expect(isinstance(doc.get("wall_seconds"), NUMBER),
           "wall_seconds: not a number")
    check_outcome(doc["outcome"], "outcome")
    if "stats" in doc:
        # Sections are present only when the group has stats of that
        # type; a full Processor group has all three.
        expect_keys(doc["stats"], ("group",), "stats")
        check_stat_sections(doc["stats"], "stats")


# Aggregate counters the execution engine always reports
# (src/sched/scheduler.cc, SchedStats::toStatGroup).
SCHED_SCALARS = ("workers", "submitted", "tasks_run", "steals",
                 "steal_failures", "stale_drops")


def check_sched_stats(s, where):
    """Validate an execution-engine stats block (group "sched")."""
    expect_keys(s, ("group", "scalars"), where)
    expect(s["group"] == "sched",
           f"{where}.group: expected 'sched', got {s['group']!r}")
    check_stat_sections(s, where)
    scalars = s["scalars"]
    expect_keys(scalars, SCHED_SCALARS, f"{where}.scalars")
    for k, v in scalars.items():
        expect(isinstance(v, int) and v >= 0,
               f"{where}.scalars.{k}: expected a non-negative "
               f"integer, got {v!r}")
    workers = scalars["workers"]
    expect(workers >= 1, f"{where}.scalars.workers: must be >= 1")
    # One tasks_run_wN / steals_wN / busy_us_wN triple per worker,
    # and the aggregate counters are the per-worker sums.
    for stem in ("tasks_run", "steals", "busy_us"):
        per = []
        for i in range(workers):
            key = f"{stem}_w{i}"
            expect(key in scalars,
                   f"{where}.scalars: missing per-worker counter "
                   f"{key} (workers={workers})")
            per.append(scalars[key])
        if stem in scalars:
            expect(scalars[stem] == sum(per),
                   f"{where}.scalars.{stem}: aggregate "
                   f"{scalars[stem]} != per-worker sum {sum(per)}")


def check_ubrcsim_suite(doc):
    check_meta(doc["meta"],
               ("tool", "config", "scheme", "workloads", "max_insts",
                "jobs", "git", "generated_unix"), "meta")
    expect(isinstance(doc.get("wall_seconds"), NUMBER),
           "wall_seconds: not a number")
    check_trace_meta(doc["meta"], "meta")
    if "interrupted" in doc:
        expect(isinstance(doc["interrupted"], bool),
               "interrupted: not a bool")
    # Emitted when the suite ran on the shared scheduler (--jobs > 1).
    if "sched" in doc:
        check_sched_stats(doc["sched"], "sched")
    check_suite(doc["suite"], "suite")


# Error kinds and their registered exit codes (DESIGN.md); the
# server-side kinds (6..9) were added for the sweep service, 10 for
# the trace subsystem.
ERROR_KINDS = {
    "config error": 2,
    "checker divergence": 3,
    "deadlock": 4,
    "invariant violation": 5,
    "bad request": 6,
    "deadline exceeded": 7,
    "queue full": 8,
    "canceled": 9,
    "trace format": 10,
}

RETRYABLE_KINDS = {"queue full", "canceled"}


def check_server_error(e, where):
    expect_keys(e, ("kind", "exit_code", "retryable", "message"),
                where)
    kind = e["kind"]
    expect(kind in ERROR_KINDS,
           f"{where}.kind: unknown error kind {kind!r}")
    expect(e["exit_code"] == ERROR_KINDS[kind],
           f"{where}.exit_code: {e['exit_code']!r} does not match "
           f"the registered code {ERROR_KINDS[kind]} for {kind!r}")
    expect(isinstance(e["retryable"], bool),
           f"{where}.retryable: not a bool")
    expect(e["retryable"] == (kind in RETRYABLE_KINDS),
           f"{where}.retryable: inconsistent with kind {kind!r}")
    expect(isinstance(e["message"], str),
           f"{where}.message: not a string")


def check_server_hello(doc):
    expect_keys(doc, ("protocol", "workers", "queue_capacity",
                      "max_frame_bytes", "default_deadline_ms",
                      "max_insts_cap", "workloads"), "server-hello")
    expect(doc["protocol"] == 1,
           f"protocol: expected 1, got {doc['protocol']!r}")
    expect(isinstance(doc["workloads"], list) and doc["workloads"],
           "workloads: not a non-empty array")


def check_sweep_response(doc):
    expect_keys(doc, ("id", "ok", "error", "wall_ms", "outcome"),
                "sweep-response")
    expect(isinstance(doc["ok"], bool), "ok: not a bool")
    if doc["ok"]:
        expect(doc["error"] is None, "error: must be null when ok")
    else:
        check_server_error(doc["error"], "error")
    expect(isinstance(doc["wall_ms"], NUMBER),
           "wall_ms: not a number")
    check_outcome(doc["outcome"], "outcome")


def check_sweep_reject(doc):
    expect_keys(doc, ("id", "error"), "sweep-reject")
    expect(isinstance(doc["id"], str), "id: not a string")
    check_server_error(doc["error"], "error")


def check_server_drain(doc):
    expect_keys(doc, ("reason", "counters", "sched"), "server-drain")
    expect(doc["reason"] in ("eof", "signal", "shutdown-request",
                             "io-error"),
           f"reason: unknown drain reason {doc['reason']!r}")
    counters = doc["counters"]
    expect_keys(counters, ("received", "admitted", "ok", "failed",
                           "rejected", "shed", "canceled",
                           "trace_cache_hits", "trace_cache_misses"),
                "counters")
    for key, v in counters.items():
        expect(isinstance(v, int) and v >= 0,
               f"counters.{key}: expected a non-negative integer")
    check_sched_stats(doc["sched"], "sched")


def check_loadgen_summary(doc):
    expect_keys(doc, ("requests", "seed", "sheds", "retries",
                      "anon_rejects", "expected_anon", "unanswered",
                      "protocol_errors", "verified", "verify_skipped",
                      "mismatches", "bad_accepts", "bad_rejects",
                      "drive_clean", "pass"), "loadgen-summary")
    for key in ("requests", "seed", "sheds", "retries",
                "anon_rejects", "expected_anon", "unanswered",
                "protocol_errors", "verified", "verify_skipped",
                "mismatches", "bad_accepts", "bad_rejects"):
        expect(isinstance(doc[key], int) and doc[key] >= 0,
               f"{key}: expected a non-negative integer")
    for key in ("drive_clean", "pass"):
        expect(isinstance(doc[key], bool), f"{key}: not a bool")


KINDS = {
    "bench": check_bench,
    "ubrcsim-run": check_ubrcsim_run,
    "ubrcsim-suite": check_ubrcsim_suite,
    "server-hello": check_server_hello,
    "sweep-response": check_sweep_response,
    "sweep-reject": check_sweep_reject,
    "server-drain": check_server_drain,
    "loadgen-summary": check_loadgen_summary,
}


def check_document(doc):
    expect(isinstance(doc, dict), "document root is not an object")
    expect(doc.get("schema_version") == SCHEMA_VERSION,
           f"schema_version: expected {SCHEMA_VERSION}, got "
           f"{doc.get('schema_version')!r}")
    kind = doc.get("kind")
    expect(kind in KINDS,
           f"kind: expected one of {sorted(KINDS)}, got {kind!r}")
    KINDS[kind](doc)
    return kind


def check_ndjson_file(path):
    """Validate every non-empty line of an NDJSON stream."""
    kinds = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                kinds.append(check_document(json.loads(line)))
            except (json.JSONDecodeError, ValidationError) as e:
                raise ValidationError(f"line {lineno}: {e}") from e
    return f"{len(kinds)} documents" if kinds else "empty"


def diff_paths(a, b, path, out, limit=8):
    """Collect dotted paths where two JSON values differ."""
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for k in sorted(set(a) | set(b)):
            diff_paths(a.get(k), b.get(k), f"{path}.{k}", out, limit)
    elif isinstance(a, list) and isinstance(b, list) and \
            len(a) == len(b):
        for i, (x, y) in enumerate(zip(a, b)):
            diff_paths(x, y, f"{path}[{i}]", out, limit)
    elif a != b:
        out.append(f"{path}: execution {a!r} != replay {b!r}")


def extract_runs(doc, source):
    """Flatten a document into per-run cross-check records.

    Yields dicts with: source, entity (suite label or doc path),
    scheme, workload, result, wall (per-suite/doc wall clock),
    replay/exact flags.
    """
    def record(entity, scheme, workload, result, wall):
        t = result.get("trace") or {}
        return {"source": source, "entity": entity, "scheme": scheme,
                "workload": workload, "result": result, "wall": wall,
                "replay": bool(t.get("replayed")),
                "exact": bool(t.get("exact"))}

    kind = doc.get("kind")
    if kind == "bench":
        for s in doc.get("suites", []):
            for run in s["suite"]["runs"]:
                if run["failed"]:
                    continue
                yield record(s["label"], s["scheme"],
                             run["workload"], run["result"],
                             s["wall_seconds"])
    elif kind == "ubrcsim-run":
        o = doc["outcome"]
        if o["ok"]:
            wl = doc["meta"]["workloads"]
            yield record(source, doc["meta"]["scheme"],
                         wl[0] if wl else "?", o["result"],
                         doc["wall_seconds"])
    elif kind == "ubrcsim-suite":
        for run in doc["suite"]["runs"]:
            if run["failed"]:
                continue
            yield record(source, doc["meta"]["scheme"],
                         run["workload"], run["result"],
                         doc["wall_seconds"])


def comparable(result):
    """The result block minus replay provenance, for equality checks."""
    return {k: v for k, v in result.items() if k != "trace"}


def cross_check(runs, min_speedup):
    """Verify exact-replay fidelity and (optionally) replay speedup.

    Every exact replay run must equal some execution-driven run of the
    same (scheme, workload) bit for bit (minus the trace provenance
    block). Adaptive (non-exact) replays are approximations by design
    and are only counted.
    """
    execs = [r for r in runs if not r["replay"]]
    exact = [r for r in runs if r["replay"] and r["exact"]]
    adaptive = [r for r in runs if r["replay"] and not r["exact"]]
    expect(exact,
           "cross-check: no successful exact replay runs found")
    expect(execs,
           "cross-check: no execution-driven runs to compare against")

    failures = []
    for rep in exact:
        peers = [e for e in execs
                 if e["scheme"] == rep["scheme"] and
                 e["workload"] == rep["workload"]]
        if not peers:
            failures.append(
                f"{rep['source']} {rep['entity']}/{rep['workload']}: "
                f"no execution run for scheme {rep['scheme']!r}")
            continue
        want = comparable(rep["result"])
        if any(comparable(p["result"]) == want for p in peers):
            continue
        diffs = []
        diff_paths(comparable(peers[0]["result"]), want, "result",
                   diffs)
        failures.append(
            f"{rep['source']} {rep['entity']}/{rep['workload']}: "
            f"exact replay diverges from execution:\n    " +
            "\n    ".join(diffs))
    expect(not failures,
           "cross-check failures:\n  " + "\n  ".join(failures))

    # Speedup: mean execution wall per suite/doc vs mean replay wall.
    speedup = None
    exec_walls = {(r["source"], r["entity"]): r["wall"] for r in execs}
    replay_walls = {(r["source"], r["entity"]): r["wall"]
                    for r in exact + adaptive}
    if exec_walls and replay_walls:
        exec_mean = sum(exec_walls.values()) / len(exec_walls)
        replay_mean = sum(replay_walls.values()) / len(replay_walls)
        if replay_mean > 0:
            speedup = exec_mean / replay_mean
    if min_speedup is not None:
        expect(speedup is not None,
               "cross-check: --min-speedup given but wall clocks "
               "are missing or zero")
        expect(speedup >= min_speedup,
               f"cross-check: replay speedup {speedup:.1f}x is below "
               f"the required {min_speedup:g}x")
    summary = (f"cross-check: {len(exact)} exact replay run(s) "
               f"verified against execution, {len(adaptive)} "
               f"adaptive run(s) present")
    if speedup is not None:
        summary += f", replay speedup {speedup:.1f}x"
    return summary


def main(argv):
    force_ndjson = "--ndjson" in argv[1:]
    do_cross = "--cross-check" in argv[1:]
    min_speedup = None
    args = []
    it = iter(argv[1:])
    for a in it:
        if a in ("--ndjson", "--cross-check"):
            continue
        if a == "--min-speedup":
            try:
                min_speedup = float(next(it))
            except (StopIteration, ValueError):
                print("--min-speedup requires a number",
                      file=sys.stderr)
                return 2
            continue
        args.append(a)
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    cross_runs = []
    for path in args:
        try:
            if force_ndjson or path.endswith(".ndjson"):
                kind = check_ndjson_file(path)
            else:
                with open(path, encoding="utf-8") as f:
                    doc = json.load(f)
                kind = check_document(doc)
                if do_cross:
                    cross_runs.extend(extract_runs(doc, path))
            print(f"{path}: ok ({kind})")
        except (OSError, json.JSONDecodeError, ValidationError) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            status = 1
    if do_cross and status == 0:
        try:
            print(cross_check(cross_runs, min_speedup))
        except ValidationError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
