# Byte-identity check for the full statsDump of one supplier scheme.
#
# Runs `ubrcsim --workload gzip --scheme <scheme> --insts 20000
# --stats --stats-format text` and compares stdout byte-for-byte
# against the committed golden capture
# (tests/golden/ubrcsim_stats_<scheme>.txt, recorded before the
# packed-SoA register cache rewrite). Any drift in a counter, a
# sample, or even report formatting fails the build. Invoked by ctest
# as:
#
#   cmake -DUBRCSIM=<binary> -DSCHEME=<scheme> -DGOLDEN=<golden file>
#         -P this_script

if(NOT UBRCSIM OR NOT SCHEME OR NOT GOLDEN)
    message(FATAL_ERROR
        "need -DUBRCSIM=<binary> -DSCHEME=<scheme> -DGOLDEN=<file>")
endif()

execute_process(
    COMMAND ${UBRCSIM} --workload gzip --scheme ${SCHEME}
        --insts 20000 --stats --stats-format text
    OUTPUT_VARIABLE actual
    ERROR_VARIABLE errout
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ubrcsim exited with ${rc}: ${errout}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
    file(WRITE ${GOLDEN}.actual "${actual}")
    message(FATAL_ERROR
        "ubrcsim --scheme ${SCHEME} statsDump is no longer "
        "byte-identical to ${GOLDEN}; actual output written to "
        "${GOLDEN}.actual")
endif()
