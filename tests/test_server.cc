/**
 * @file
 * End-to-end tests for the sweep service (server/server.hh), run
 * in-process over pipes: request isolation, malformed-frame
 * rejection, deadlines, backpressure shed, drain semantics, and
 * bit-identity of server results against serial reference runs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/framing.hh"
#include "common/json.hh"
#include "server/server.hh"
#include "sim/results_json.hh"
#include "sim/runner.hh"
#include "trace/trace_recorder.hh"
#include "workload/workload.hh"

using namespace ubrc;

namespace
{

/** An in-process server over pipes plus a response collector. */
class ServerHarness
{
  public:
    explicit ServerHarness(const server::ServerOptions &opts)
    {
        EXPECT_EQ(pipe(in), 0);
        EXPECT_EQ(pipe(out), 0);
        srv = std::make_unique<server::SweepServer>(in[0], out[1],
                                                    opts);
        // Harness plumbing (serve loop + response collector), not
        // simulation work. ubrc-lint: allow(raw-thread)
        serveThread = std::thread([this] { rc = srv->serve(); });
        // ubrc-lint: allow(raw-thread)
        collector = std::thread([this] {
            framing::LineReader r(out[0], 4u << 20);
            std::string line;
            while (r.readLine(line) == framing::ReadStatus::Ok) {
                std::lock_guard<std::mutex> lock(mu);
                lines.push_back(line);
            }
        });
        writer = std::make_unique<framing::LineWriter>(in[1]);
    }

    ~ServerHarness()
    {
        if (serveThread.joinable())
            finish();
    }

    void send(const std::string &frame)
    {
        ASSERT_TRUE(writer->writeLine(frame));
    }

    void
    closeInput()
    {
        if (in[1] >= 0) {
            close(in[1]);
            in[1] = -1;
        }
    }

    server::SweepServer &serverRef() { return *srv; }

    /** Close input, wait for drain, collect every response line. */
    int
    finish()
    {
        closeInput();
        serveThread.join();
        close(out[1]);
        out[1] = -1;
        collector.join();
        close(in[0]);
        close(out[0]);
        return rc;
    }

    /** All received documents, parsed. Call after finish(). */
    std::vector<json::Value>
    docs() const
    {
        std::vector<json::Value> parsed;
        for (const auto &line : lines)
            parsed.push_back(json::parse(line));
        return parsed;
    }

  private:
    int in[2] = {-1, -1};
    int out[2] = {-1, -1};
    std::unique_ptr<server::SweepServer> srv;
    std::unique_ptr<framing::LineWriter> writer;
    std::thread serveThread;
    std::thread collector;
    std::mutex mu;
    std::vector<std::string> lines;
    int rc = -1;
};

const json::Value *
findDoc(const std::vector<json::Value> &docs, const std::string &kind,
        const std::string &id = "")
{
    for (const auto &d : docs) {
        const json::Value *k = d.find("kind");
        if (!k || !k->isString() || k->string != kind)
            continue;
        if (!id.empty()) {
            const json::Value *i = d.find("id");
            if (!i || !i->isString() || i->string != id)
                continue;
        }
        return &d;
    }
    return nullptr;
}

size_t
countKind(const std::vector<json::Value> &docs,
          const std::string &kind)
{
    size_t n = 0;
    for (const auto &d : docs) {
        const json::Value *k = d.find("kind");
        if (k && k->isString() && k->string == kind)
            ++n;
    }
    return n;
}

std::string
errorKindOf(const json::Value &doc)
{
    const json::Value *err = doc.find("error");
    if (!err || !err->isObject())
        return "";
    const json::Value *k = err->find("kind");
    return k && k->isString() ? k->string : "";
}

bool
errorRetryable(const json::Value &doc)
{
    const json::Value *err = doc.find("error");
    const json::Value *r = err ? err->find("retryable") : nullptr;
    return r && r->type == json::Value::Type::Bool && r->boolean;
}

std::string
sweepRequest(const std::string &id, const std::string &workload,
             uint64_t max_insts, const std::string &extras = "")
{
    return "{\"kind\":\"sweep-request\",\"id\":\"" + id +
           "\",\"workload\":\"" + workload +
           "\",\"max_insts\":" + std::to_string(max_insts) + extras +
           "}";
}

/** Serial reference rendering of a request's outcome. */
std::string
referenceOutcome(const std::string &requestText)
{
    const server::SweepRequest req = server::parseSweepRequest(
        json::parse(requestText), server::AdmissionLimits{});
    const workload::Workload w =
        workload::buildWorkload(req.workloadName, req.params);
    const sim::RunOutcome ref =
        sim::runOneChecked(req.config, w, req.maxInsts);
    json::Writer jw(false);
    sim::writeRunOutcome(jw, ref);
    return jw.str();
}

} // namespace

TEST(SweepServer, AnswersGoodRequestBitIdenticalToSerialRun)
{
    const std::string request = sweepRequest("r-0", "gzip", 20000);

    server::ServerOptions opts;
    opts.workers = 1;
    ServerHarness h(opts);
    h.send(request);
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    EXPECT_NE(findDoc(docs, "server-hello"), nullptr);
    const json::Value *resp = findDoc(docs, "sweep-response", "r-0");
    ASSERT_NE(resp, nullptr);
    EXPECT_TRUE(resp->at("ok").boolean);

    // The whole point of decoupling execution into a service: the
    // outcome subtree must be bit-identical to a serial run.
    const json::Value ref =
        json::parse(referenceOutcome(request));
    EXPECT_TRUE(json::equal(ref, resp->at("outcome")));

    const json::Value *drain = findDoc(docs, "server-drain");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->at("reason").string, "eof");
    EXPECT_EQ(drain->at("counters").at("ok").number, 1.0);
}

TEST(SweepServer, MalformedFramesAreRejectedAndServerSurvives)
{
    server::ServerOptions opts;
    opts.workers = 1;
    ServerHarness h(opts);
    h.send("this is not json");
    h.send("{\"kind\":\"sweep-request\",\"id\":\"bad-key\","
           "\"workload\":\"gzip\",\"workloadd\":1}");
    h.send("{\"kind\":\"sweep-request\",\"id\":\"bad-type\","
           "\"workload\":\"gzip\",\"seed\":\"one\"}");
    h.send("{\"kind\":\"sweep-request\",\"id\":\"bad-wl\","
           "\"workload\":\"quake3\"}");
    h.send("{\"kind\":\"sweep-request\",\"id\":\"bad-policy\","
           "\"workload\":\"gzip\",\"config\":{\"insertion\":"
           "\"mru\"}}");
    // After all that abuse, a good request must still run.
    h.send(sweepRequest("good", "gzip", 5000));
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    EXPECT_EQ(countKind(docs, "sweep-reject"), 5u);
    for (const auto *id :
         {"bad-key", "bad-type", "bad-wl", "bad-policy"}) {
        const json::Value *r = findDoc(docs, "sweep-reject", id);
        ASSERT_NE(r, nullptr) << id;
        EXPECT_EQ(errorKindOf(*r), "bad request");
        EXPECT_FALSE(errorRetryable(*r));
    }
    const json::Value *resp = findDoc(docs, "sweep-response", "good");
    ASSERT_NE(resp, nullptr);
    EXPECT_TRUE(resp->at("ok").boolean);
    const json::Value *drain = findDoc(docs, "server-drain");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->at("counters").at("rejected").number, 5.0);
}

TEST(SweepServer, OversizedFrameIsSheddedNotFatal)
{
    server::ServerOptions opts;
    opts.workers = 1;
    opts.maxFrameBytes = 256;
    ServerHarness h(opts);
    h.send("{\"kind\":\"sweep-request\",\"id\":\"huge\","
           "\"workload\":\"" +
           std::string(600, 'x') + "\"}");
    h.send(sweepRequest("after", "gzip", 5000));
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    // The id is inside the discarded frame, so the rejection is
    // anonymous.
    const json::Value *rej = findDoc(docs, "sweep-reject", "");
    ASSERT_NE(rej, nullptr);
    EXPECT_EQ(rej->at("id").string, "");
    EXPECT_NE(
        rej->at("error").at("message").string.find("frame exceeds"),
        std::string::npos);
    const json::Value *resp =
        findDoc(docs, "sweep-response", "after");
    ASSERT_NE(resp, nullptr);
    EXPECT_TRUE(resp->at("ok").boolean);
}

TEST(SweepServer, DeadlineExpiryMidRunIsContained)
{
    server::ServerOptions opts;
    opts.workers = 1;
    ServerHarness h(opts);
    // A huge budget with a 1 ms deadline: must abort mid-run.
    h.send(sweepRequest("slow", "gzip", 50000000,
                        ",\"deadline_ms\":1"));
    h.send(sweepRequest("next", "gzip", 5000));
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    const json::Value *resp = findDoc(docs, "sweep-response", "slow");
    ASSERT_NE(resp, nullptr);
    EXPECT_FALSE(resp->at("ok").boolean);
    EXPECT_EQ(errorKindOf(*resp), "deadline exceeded");
    EXPECT_FALSE(errorRetryable(*resp));
    // The partial outcome still carries stats and a snapshot flag.
    EXPECT_TRUE(
        resp->at("outcome").at("error").at("has_snapshot").boolean);

    // The worker survived to run the next request.
    const json::Value *next = findDoc(docs, "sweep-response", "next");
    ASSERT_NE(next, nullptr);
    EXPECT_TRUE(next->at("ok").boolean);
}

TEST(SweepServer, QueueFullIsShedAsRetryable)
{
    server::ServerOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 1;
    opts.defaultDeadlineMs = 60000;
    ServerHarness h(opts);

    // Occupy the single worker, give it time to dequeue, then
    // overfill the queue.
    h.send(sweepRequest("busy", "gzip", 800000));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    for (int i = 0; i < 6; ++i)
        h.send(sweepRequest("q-" + std::to_string(i), "gzip", 2000));
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    size_t shed = 0, answered = 0;
    for (int i = 0; i < 6; ++i) {
        const std::string id = "q-" + std::to_string(i);
        const json::Value *rej = findDoc(docs, "sweep-reject", id);
        const json::Value *resp =
            findDoc(docs, "sweep-response", id);
        ASSERT_TRUE(rej || resp) << id << " went unanswered";
        if (rej) {
            EXPECT_EQ(errorKindOf(*rej), "queue full");
            EXPECT_TRUE(errorRetryable(*rej));
            ++shed;
        } else {
            ++answered;
        }
    }
    // One slot in the queue, one in the worker: at least four of the
    // six burst requests must have been shed.
    EXPECT_GE(shed, 4u);
    EXPECT_EQ(shed + answered, 6u);
    const json::Value *drain = findDoc(docs, "server-drain");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->at("counters").at("shed").number,
              static_cast<double>(shed));
}

TEST(SweepServer, StopDrainCancelsQueuedButFinishesInFlight)
{
    server::ServerOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 8;
    ServerHarness h(opts);

    h.send(sweepRequest("inflight", "gzip", 400000));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    for (int i = 0; i < 3; ++i)
        h.send(sweepRequest("queued-" + std::to_string(i), "gzip",
                            2000));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    h.serverRef().requestStop();
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    // The in-flight run finished normally...
    const json::Value *resp =
        findDoc(docs, "sweep-response", "inflight");
    ASSERT_NE(resp, nullptr);
    EXPECT_TRUE(resp->at("ok").boolean);
    // ...and every queued request was answered with a retryable
    // cancellation.
    for (int i = 0; i < 3; ++i) {
        const json::Value *rej = findDoc(
            docs, "sweep-reject", "queued-" + std::to_string(i));
        ASSERT_NE(rej, nullptr);
        EXPECT_EQ(errorKindOf(*rej), "canceled");
        EXPECT_TRUE(errorRetryable(*rej));
    }
    const json::Value *drain = findDoc(docs, "server-drain");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->at("reason").string, "signal");
    EXPECT_EQ(drain->at("counters").at("canceled").number, 3.0);
}

TEST(SweepServer, SecondStopAbortsInFlightRuns)
{
    server::ServerOptions opts;
    opts.workers = 1;
    ServerHarness h(opts);

    h.send(sweepRequest("doomed", "gzip", 50000000));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    h.serverRef().requestStop(); // drain
    h.serverRef().requestStop(); // abort in-flight
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    const json::Value *resp =
        findDoc(docs, "sweep-response", "doomed");
    ASSERT_NE(resp, nullptr);
    EXPECT_FALSE(resp->at("ok").boolean);
    EXPECT_EQ(errorKindOf(*resp), "canceled");
}

TEST(SweepServer, ShutdownFrameDrainsAndExits)
{
    server::ServerOptions opts;
    opts.workers = 1;
    ServerHarness h(opts);
    h.send(sweepRequest("last", "gzip", 5000));
    h.send("{\"kind\":\"shutdown\"}");
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    const json::Value *resp = findDoc(docs, "sweep-response", "last");
    ASSERT_NE(resp, nullptr);
    EXPECT_TRUE(resp->at("ok").boolean);
    const json::Value *drain = findDoc(docs, "server-drain");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->at("reason").string, "shutdown-request");
}

TEST(SweepServer, InjectedFaultsUnderConcurrencyStayDeterministic)
{
    server::ServerOptions opts;
    opts.workers = 4;
    opts.queueCapacity = 16;
    ServerHarness h(opts);

    // Aggressive fault injection on every request: some will fail
    // with contained checker divergences, and every outcome —
    // success or failure — must match a serial rerun bit for bit.
    std::vector<std::string> requests;
    for (int i = 0; i < 8; ++i) {
        requests.push_back(sweepRequest(
            "f-" + std::to_string(i), "gzip", 20000,
            ",\"config\":{\"inject_rate\":0.0005,\"inject_seed\":" +
                std::to_string(100 + i) + "}"));
        h.send(requests.back());
    }
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    size_t failed = 0;
    for (int i = 0; i < 8; ++i) {
        const std::string id = "f-" + std::to_string(i);
        const json::Value *resp = findDoc(docs, "sweep-response", id);
        ASSERT_NE(resp, nullptr) << id;
        if (!resp->at("ok").boolean)
            ++failed;
        const json::Value ref =
            json::parse(referenceOutcome(requests[i]));
        EXPECT_TRUE(json::equal(ref, resp->at("outcome"))) << id;
    }
    const json::Value *drain = findDoc(docs, "server-drain");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->at("counters").at("ok").number +
                  drain->at("counters").at("failed").number,
              8.0);
    EXPECT_EQ(drain->at("counters").at("failed").number,
              static_cast<double>(failed));
}

TEST(SweepServer, RequestParserRejectsPrecisely)
{
    using server::parseSweepRequest;
    const auto parse = [](const std::string &text) {
        return parseSweepRequest(json::parse(text),
                                 server::AdmissionLimits{});
    };

    // Budget cap and scale cap are admission-time errors.
    EXPECT_THROW(parse("{\"kind\":\"sweep-request\",\"workload\":"
                       "\"gzip\",\"max_insts\":999999999999}"),
                 sim::BadRequestError);
    EXPECT_THROW(parse("{\"kind\":\"sweep-request\",\"workload\":"
                       "\"gzip\",\"scale\":100000}"),
                 sim::BadRequestError);
    // An explicit unbounded budget is not admissible.
    EXPECT_THROW(parse("{\"kind\":\"sweep-request\",\"workload\":"
                       "\"gzip\",\"max_insts\":0}"),
                 sim::BadRequestError);
    // Non-integral numbers where integers are required.
    EXPECT_THROW(parse("{\"kind\":\"sweep-request\",\"workload\":"
                       "\"gzip\",\"seed\":1.5}"),
                 sim::BadRequestError);

    // The good path maps the CLI geometry conventions.
    const server::SweepRequest req =
        parse("{\"kind\":\"sweep-request\",\"workload\":\"gzip\","
              "\"config\":{\"entries\":32,\"assoc\":0}}");
    EXPECT_EQ(req.config.rc.entries, 32u);
    EXPECT_EQ(req.config.rc.assoc, 32u); // 0 = fully associative
    EXPECT_EQ(req.config.twoLevel.l1Entries, 64u);
}

TEST(SweepServer, TraceReplayRequestsAreContainedOverTheWire)
{
    // Record a trace for the server to replay, and a corrupt copy.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("ubrc_srv_trace_" + std::to_string(::getpid()));
    const auto bad_dir = dir / "corrupt";
    std::filesystem::create_directories(bad_dir);
    sim::SimConfig rec = sim::SimConfig::useBasedCache();
    rec.traceMode = sim::TraceMode::Record;
    rec.traceDir = dir.string();
    const sim::RunOutcome exec = sim::runOneChecked(
        rec, workload::buildWorkload("gzip"), 20000);
    ASSERT_TRUE(exec.ok);
    const std::string good =
        trace::traceFilePath(dir.string(), "gzip");
    {
        std::ifstream in(good, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        std::string bytes = ss.str();
        ASSERT_GT(bytes.size(), 64u);
        bytes[bytes.size() / 2] =
            char(bytes[bytes.size() / 2] ^ 0x40);
        std::ofstream out(
            trace::traceFilePath(bad_dir.string(), "gzip"),
            std::ios::binary);
        out << bytes;
    }

    const std::string extras =
        ",\"trace_replay\":\"" + dir.string() + "\"";
    server::ServerOptions opts;
    opts.workers = 1;
    ServerHarness h(opts);
    // No trace recorded for mcf: contained trace-format error.
    h.send(sweepRequest("rep-missing", "mcf", 20000, extras));
    // A CRC flip mid-file: contained, not a crash.
    h.send(sweepRequest("rep-corrupt", "gzip", 20000,
                        ",\"trace_replay\":\"" + bad_dir.string() +
                            "\""));
    // After the abuse, a clean replay must still answer — and be
    // bit-identical to the serial replay of the same request.
    const std::string good_req =
        sweepRequest("rep-ok", "gzip", 20000, extras);
    h.send(good_req);
    EXPECT_EQ(h.finish(), 0);

    const auto docs = h.docs();
    // The admission probe reads and CRC-checks the trace up front,
    // so both failure modes surface as precise rejects, not crashes.
    for (const auto *id : {"rep-missing", "rep-corrupt"}) {
        const json::Value *r = findDoc(docs, "sweep-reject", id);
        ASSERT_NE(r, nullptr) << id;
        EXPECT_EQ(errorKindOf(*r), "trace format") << id;
        EXPECT_FALSE(errorRetryable(*r)) << id;
    }
    const json::Value *ok = findDoc(docs, "sweep-response", "rep-ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->at("ok").boolean);
    const json::Value ref = json::parse(referenceOutcome(good_req));
    EXPECT_TRUE(json::equal(ref, ok->at("outcome")));

    std::filesystem::remove_all(dir);
}
