/**
 * @file
 * Tests for the suite runner and benchmark environment controls.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/runner.hh"

using namespace ubrc;
using namespace ubrc::sim;

TEST(Runner, RunSuiteCoversAllWorkloads)
{
    const SuiteResult r = runSuite(SimConfig::useBasedCache(),
                                   {"gzip", "crafty"}, {}, 20000);
    ASSERT_EQ(r.runs.size(), 2u);
    EXPECT_EQ(r.runs[0].workload, "gzip");
    EXPECT_EQ(r.runs[1].workload, "crafty");
    for (const auto &run : r.runs)
        EXPECT_EQ(run.result.instsRetired, 20000u);
}

TEST(Runner, GeomeanBetweenExtremes)
{
    const SuiteResult r = runSuite(SimConfig::useBasedCache(),
                                   {"gzip", "crafty"}, {}, 20000);
    const double g = r.geomeanIpc();
    const double a = r.runs[0].result.ipc;
    const double b = r.runs[1].result.ipc;
    EXPECT_GE(g, std::min(a, b));
    EXPECT_LE(g, std::max(a, b));
}

TEST(Runner, MeanAndTotalHelpers)
{
    const SuiteResult r = runSuite(SimConfig::useBasedCache(),
                                   {"gzip", "crafty"}, {}, 20000);
    const double mean_ipc =
        r.mean([](const core::SimResult &s) { return s.ipc; });
    EXPECT_GT(mean_ipc, 0.0);
    const uint64_t total =
        r.total([](const core::SimResult &s) { return s.instsRetired; });
    EXPECT_EQ(total, 40000u);
}

TEST(Runner, BenchWorkloadsDefaults)
{
    unsetenv("UBRC_WORKLOADS");
    const std::vector<std::string> defaults = {"a", "b"};
    EXPECT_EQ(benchWorkloads(defaults), defaults);
    setenv("UBRC_WORKLOADS", "all", 1);
    EXPECT_EQ(benchWorkloads(defaults), defaults);
    setenv("UBRC_WORKLOADS", "gzip,mcf", 1);
    const auto v = benchWorkloads(defaults);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "gzip");
    EXPECT_EQ(v[1], "mcf");
    unsetenv("UBRC_WORKLOADS");
}

TEST(Runner, BenchMaxInstsEnv)
{
    unsetenv("UBRC_MAX_INSTS");
    EXPECT_EQ(benchMaxInsts(123), 123u);
    setenv("UBRC_MAX_INSTS", "5000", 1);
    EXPECT_EQ(benchMaxInsts(123), 5000u);
    unsetenv("UBRC_MAX_INSTS");
}

TEST(Runner, BenchJobsEnv)
{
    unsetenv("UBRC_JOBS");
    EXPECT_EQ(benchJobs(1), 1u);
    EXPECT_EQ(benchJobs(4), 4u);
    setenv("UBRC_JOBS", "8", 1);
    EXPECT_EQ(benchJobs(1), 8u);
    unsetenv("UBRC_JOBS");
}

TEST(RunnerDeathTest, BenchJobsRejectsGarbage)
{
    setenv("UBRC_JOBS", "2fast", 1);
    EXPECT_EXIT(benchJobs(1), testing::ExitedWithCode(1),
                "UBRC_JOBS.*2fast");
    setenv("UBRC_JOBS", "-3", 1);
    EXPECT_EXIT(benchJobs(1), testing::ExitedWithCode(1), "UBRC_JOBS");
    setenv("UBRC_JOBS", "0", 1);
    EXPECT_EXIT(benchJobs(1), testing::ExitedWithCode(1),
                "UBRC_JOBS.*at least 1");
    setenv("UBRC_JOBS", "99999", 1);
    EXPECT_EXIT(benchJobs(1), testing::ExitedWithCode(1),
                "UBRC_JOBS.*out of range");
    unsetenv("UBRC_JOBS");
}

TEST(Runner, RunOneHonoursMaxInsts)
{
    const auto w = workload::buildWorkload("gzip");
    const core::SimResult r =
        runOne(SimConfig::useBasedCache(), w, 15000);
    EXPECT_EQ(r.instsRetired, 15000u);
}

TEST(RunnerDeathTest, BenchMaxInstsRejectsGarbage)
{
    setenv("UBRC_MAX_INSTS", "12abc", 1);
    EXPECT_EXIT(benchMaxInsts(123), testing::ExitedWithCode(1),
                "UBRC_MAX_INSTS.*12abc");
    setenv("UBRC_MAX_INSTS", "not-a-number", 1);
    EXPECT_EXIT(benchMaxInsts(123), testing::ExitedWithCode(1),
                "UBRC_MAX_INSTS");
    setenv("UBRC_MAX_INSTS", "-5", 1);
    EXPECT_EXIT(benchMaxInsts(123), testing::ExitedWithCode(1),
                "UBRC_MAX_INSTS");
    unsetenv("UBRC_MAX_INSTS");
}

TEST(RunnerDeathTest, BenchWorkloadsRejectsUnknownNames)
{
    setenv("UBRC_WORKLOADS", "gzip,nosuchkernel", 1);
    EXPECT_EXIT(benchWorkloads({"gzip"}), testing::ExitedWithCode(1),
                "unknown workload 'nosuchkernel'.*valid:");
    unsetenv("UBRC_WORKLOADS");
}
