/**
 * @file
 * Work-stealing scheduler tests: task-word packing, the Chase–Lev
 * deque, deterministic victim selection, group execution semantics,
 * and — the contract the whole engine rests on — bit-identity of
 * stolen-path suite runs against serial references, with steals
 * actually observed. The SchedStress tests run under TSan in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "sched/deque.hh"
#include "sched/scheduler.hh"
#include "sched/task.hh"
#include "sim/runner.hh"

using namespace ubrc;
using namespace ubrc::sched;

namespace
{

/** Field-by-field suite comparison (mirrors test_determinism.cc). */
void
expectSuitesEqual(const sim::SuiteResult &a, const sim::SuiteResult &b)
{
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        SCOPED_TRACE(a.runs[i].workload);
        EXPECT_EQ(a.runs[i].workload, b.runs[i].workload);
        EXPECT_EQ(a.runs[i].failed, b.runs[i].failed);
        EXPECT_EQ(static_cast<int>(a.runs[i].errorKind),
                  static_cast<int>(b.runs[i].errorKind));
        EXPECT_EQ(a.runs[i].error, b.runs[i].error);

        const core::SimResult &ra = a.runs[i].result;
        const core::SimResult &rb = b.runs[i].result;
        EXPECT_EQ(ra.cycles, rb.cycles);
        EXPECT_EQ(ra.instsRetired, rb.instsRetired);
        EXPECT_EQ(ra.ipc, rb.ipc); // bit-exact, not approximate
        EXPECT_EQ(ra.opBypass, rb.opBypass);
        EXPECT_EQ(ra.opCache, rb.opCache);
        EXPECT_EQ(ra.opFile, rb.opFile);
        EXPECT_EQ(ra.rcMisses, rb.rcMisses);
        EXPECT_EQ(ra.branchMispredicts, rb.branchMispredicts);
    }
    EXPECT_EQ(a.geomeanIpc(), b.geomeanIpc());
    EXPECT_EQ(a.failureSummary(), b.failureSummary());
}

} // namespace

TEST(SchedTask, PackRoundTrip)
{
    const TaskWord w = packTask(0xBEEF, 0x1234, 0xDEADC0DE);
    EXPECT_EQ(taskGeneration(w), 0xBEEF);
    EXPECT_EQ(taskGroup(w), 0x1234);
    EXPECT_EQ(taskPayload(w), 0xDEADC0DEu);
}

TEST(SchedTask, PointRoundTrip)
{
    const uint32_t p = packPoint(0xFFFF, 0x0001);
    EXPECT_EQ(pointConfig(p), 0xFFFF);
    EXPECT_EQ(pointWorkload(p), 0x0001);
    EXPECT_EQ(pointConfig(packPoint(0, 0)), 0);
    EXPECT_EQ(pointWorkload(packPoint(0, 0xFFFF)), 0xFFFF);
}

TEST(SchedDeque, OwnerPopsLifo)
{
    WorkDeque d;
    d.pushBottom(1);
    d.pushBottom(2);
    d.pushBottom(3);
    TaskWord w = 0;
    ASSERT_TRUE(d.popBottom(w));
    EXPECT_EQ(w, 3u);
    ASSERT_TRUE(d.popBottom(w));
    EXPECT_EQ(w, 2u);
    ASSERT_TRUE(d.popBottom(w));
    EXPECT_EQ(w, 1u);
    EXPECT_FALSE(d.popBottom(w));
}

TEST(SchedDeque, ThiefStealsFifo)
{
    WorkDeque d;
    d.pushBottom(1);
    d.pushBottom(2);
    TaskWord w = 0;
    ASSERT_TRUE(d.steal(w));
    EXPECT_EQ(w, 1u); // oldest first
    ASSERT_TRUE(d.steal(w));
    EXPECT_EQ(w, 2u);
    EXPECT_FALSE(d.steal(w));
}

TEST(SchedDeque, GrowPreservesContentsAndOrder)
{
    WorkDeque d(4); // forces several grows
    for (TaskWord i = 0; i < 1000; ++i)
        d.pushBottom(i);
    EXPECT_EQ(d.sizeApprox(), 1000u);
    TaskWord w = 0;
    for (TaskWord i = 0; i < 500; ++i) {
        ASSERT_TRUE(d.steal(w));
        EXPECT_EQ(w, i); // FIFO from the top
    }
    for (TaskWord i = 1000; i-- > 500;) {
        ASSERT_TRUE(d.popBottom(w));
        EXPECT_EQ(w, i); // LIFO from the bottom
    }
    EXPECT_FALSE(d.popBottom(w));
}

TEST(SchedStealPolicy, SameSeedSameSequenceNeverSelf)
{
    StealPolicy a(42, 2, 8);
    StealPolicy b(42, 2, 8);
    for (int i = 0; i < 1000; ++i) {
        const unsigned va = a.next();
        EXPECT_EQ(va, b.next()); // deterministic in (seed, self)
        EXPECT_NE(va, 2u);       // never the thief itself
        EXPECT_LT(va, 8u);
    }
}

TEST(SchedStealPolicy, DistinctWorkersWalkDistinctOrders)
{
    StealPolicy a(42, 0, 8);
    StealPolicy b(42, 5, 8);
    bool differed = false;
    for (int i = 0; i < 64 && !differed; ++i)
        differed = a.next() != b.next();
    EXPECT_TRUE(differed);
}

TEST(Sched, RunsEveryTaskExactlyOnce)
{
    SchedConfig cfg;
    cfg.workers = 4;
    Scheduler sch(cfg);
    std::vector<std::atomic<uint32_t>> hits(256);
    auto g = sch.createGroup([&](uint32_t payload) {
        hits[payload].fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<uint32_t> payloads;
    for (uint32_t i = 0; i < 256; ++i)
        payloads.push_back(i);
    sch.submitAll(g, payloads);
    sch.wait(g);
    for (uint32_t i = 0; i < 256; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "payload " << i;
    const SchedStats s = sch.stats();
    EXPECT_EQ(s.submitted, 256u);
    EXPECT_EQ(s.tasksRun, 256u);
    EXPECT_EQ(s.workers, 4u);
}

TEST(Sched, SequentialGroupsReuseSlots)
{
    SchedConfig cfg;
    cfg.workers = 2;
    Scheduler sch(cfg);
    std::atomic<uint64_t> sum{0};
    for (int round = 0; round < 50; ++round) {
        auto g = sch.createGroup([&](uint32_t payload) {
            sum.fetch_add(payload, std::memory_order_relaxed);
        });
        sch.submitAll(g, {1, 2, 3, 4});
        sch.wait(g);
    }
    EXPECT_EQ(sum.load(), 50u * 10u);
    EXPECT_EQ(sch.stats().staleDrops, 0u);
}

TEST(Sched, ThrowingTaskPoisonsGroupAndRethrows)
{
    SchedConfig cfg;
    cfg.workers = 2;
    Scheduler sch(cfg);
    std::atomic<uint32_t> ran{0};
    auto g = sch.createGroup([&](uint32_t payload) {
        if (payload == 7)
            throw std::runtime_error("task 7 exploded");
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<uint32_t> payloads;
    for (uint32_t i = 0; i < 64; ++i)
        payloads.push_back(i);
    sch.submitAll(g, payloads);
    try {
        sch.wait(g);
        FAIL() << "wait() should rethrow the task exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 7 exploded");
    }
    // Poisoning skips *remaining* tasks; everything that ran did so
    // at most once, and the exploding task never counts.
    EXPECT_LE(ran.load(), 63u);
    // The scheduler itself stays usable after a poisoned group.
    std::atomic<uint32_t> after{0};
    auto g2 = sch.createGroup(
        [&](uint32_t) { after.fetch_add(1); });
    sch.submitAll(g2, {0, 1, 2});
    sch.wait(g2);
    EXPECT_EQ(after.load(), 3u);
}

TEST(SchedStress, StealHeavyManyGroups)
{
    // Steal-heavy by construction: one worker gets each chunk, the
    // others must steal to help. Runs under TSan in CI to exercise
    // the deque's memory-order discipline.
    SchedConfig cfg;
    cfg.workers = 4;
    Scheduler sch(cfg);
    for (int round = 0; round < 20; ++round) {
        std::vector<std::atomic<uint32_t>> hits(512);
        auto g = sch.createGroup([&](uint32_t payload) {
            hits[payload].fetch_add(1, std::memory_order_relaxed);
            if (payload % 64 == 0) // uneven task weights
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
        });
        std::vector<uint32_t> payloads;
        for (uint32_t i = 0; i < 512; ++i)
            payloads.push_back(i);
        sch.submitAll(g, payloads);
        sch.wait(g);
        for (uint32_t i = 0; i < 512; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "round " << round << " payload " << i;
    }
    EXPECT_EQ(sch.stats().tasksRun, 20u * 512u);
}

TEST(SchedSuite, StolenHeavyTailBitIdenticalToSerial)
{
    // A heavy-tailed multi-suite mix: the heavy config is submitted
    // first, so the chunked injector refill hands it (plus part of
    // the light tail) to one worker — the other workers finish their
    // chunks and MUST steal the remainder while the heavy run is in
    // flight. Values must still match the serial reference exactly.
    std::vector<sim::SimConfig> cfgs;
    sim::SimConfig heavy = sim::SimConfig::useBasedCache();
    heavy.maxInsts = 100000;
    cfgs.push_back(heavy);
    for (int i = 0; i < 7; ++i) {
        sim::SimConfig light = sim::SimConfig::monolithic(1 + i % 4);
        light.maxInsts = 2000;
        cfgs.push_back(light);
    }
    const std::vector<std::string> names = {"gzip", "bzip2"};

    const std::vector<sim::SuiteResult> serial =
        sim::runSuites(cfgs, names, {}, 0, 1);
    const SchedStats before = Scheduler::global(3).stats();
    const std::vector<sim::SuiteResult> stolen =
        sim::runSuites(cfgs, names, {}, 0, 3);
    const SchedStats after = Scheduler::global(3).stats();

    ASSERT_EQ(serial.size(), stolen.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        EXPECT_EQ(serial[i].numFailed(), 0u);
        expectSuitesEqual(serial[i], stolen[i]);
    }
    EXPECT_GT(after.tasksRun - before.tasksRun, 0u);
    EXPECT_GT(after.steals - before.steals, 0u)
        << "heavy-tailed mix on " << after.workers
        << " workers ran without a single steal";
}

TEST(SchedSuite, ContainedFailuresIdenticalUnderStealing)
{
    // A watchdog shorter than a DRAM round trip fails runs
    // deterministically; containment must merge identically whether
    // the task ran on the submitting chunk's worker or a thief.
    sim::SimConfig failing = sim::SimConfig::useBasedCache();
    failing.watchdogCycles = 100;
    failing.maxInsts = 50000;
    sim::SimConfig fine = sim::SimConfig::monolithic(1);
    fine.maxInsts = 5000;
    const std::vector<sim::SimConfig> cfgs = {failing, fine, failing,
                                              fine};
    const std::vector<std::string> names = {"gzip", "mcf", "twolf"};

    const std::vector<sim::SuiteResult> serial =
        sim::runSuites(cfgs, names, {}, 0, 1);
    const std::vector<sim::SuiteResult> par =
        sim::runSuites(cfgs, names, {}, 0, 3);
    size_t failures = 0;
    ASSERT_EQ(serial.size(), par.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        failures += serial[i].numFailed();
        expectSuitesEqual(serial[i], par[i]);
    }
    EXPECT_GT(failures, 0u);
}

TEST(SchedSuite, PreRaisedCancelYieldsAllCanceledRows)
{
    // Drain semantics through the scheduler: a cancel raised before
    // submission must answer every row as Canceled, identically to
    // the serial path.
    std::atomic<bool> cancel{true};
    sim::RunControl ctl;
    ctl.cancel = &cancel;
    const std::vector<sim::SimConfig> cfgs = {
        sim::SimConfig::useBasedCache(), sim::SimConfig::monolithic(3)};
    const std::vector<std::string> names = {"gzip", "vpr", "mcf"};

    const std::vector<sim::SuiteResult> serial =
        sim::runSuites(cfgs, names, {}, 10000, 1, ctl);
    const std::vector<sim::SuiteResult> par =
        sim::runSuites(cfgs, names, {}, 10000, 3, ctl);
    ASSERT_EQ(serial.size(), par.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        EXPECT_EQ(serial[i].numFailed(), names.size());
        for (const auto &run : serial[i].runs)
            EXPECT_EQ(static_cast<int>(run.errorKind),
                      static_cast<int>(sim::ErrorKind::Canceled));
        expectSuitesEqual(serial[i], par[i]);
    }
}

TEST(SchedStats, StatGroupExportsEngineCounters)
{
    SchedConfig cfg;
    cfg.workers = 2;
    Scheduler sch(cfg);
    auto g = sch.createGroup([](uint32_t) {});
    sch.submitAll(g, {0, 1, 2, 3});
    sch.wait(g);
    const stats::StatGroup sg = sch.stats().toStatGroup();
    EXPECT_EQ(sg.groupName(), "sched");
    const std::string json = sg.toJson(false);
    EXPECT_NE(json.find("\"group\":\"sched\""), std::string::npos);
    EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
    EXPECT_NE(json.find("\"tasks_run\":4"), std::string::npos);
    EXPECT_NE(json.find("tasks_run_w0"), std::string::npos);
    EXPECT_NE(json.find("busy_us_w1"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos); // single line
}
