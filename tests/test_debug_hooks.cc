/**
 * @file
 * The failure-injection/debug hooks must not disturb results: the
 * replay trace (UBRC_DEBUG_REPLAY) only logs, and runs with it set
 * produce identical timing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/log.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::sim;

TEST(DebugHooks, ReplayTraceDoesNotChangeTiming)
{
    const auto w = workload::buildWorkload("gzip");
    unsetenv("UBRC_DEBUG_REPLAY");
    const auto quiet = runOne(SimConfig::useBasedCache(), w, 15000);
    // The trace flag is latched on first use inside the process, so
    // this test only checks that setting it late is harmless; the
    // stronger determinism property is covered by
    // SchemeProperties.DeterministicRuns.
    setenv("UBRC_DEBUG_REPLAY", "1", 1);
    const auto traced = runOne(SimConfig::useBasedCache(), w, 15000);
    unsetenv("UBRC_DEBUG_REPLAY");
    EXPECT_EQ(quiet.cycles, traced.cycles);
    EXPECT_EQ(quiet.rcMisses, traced.rcMisses);
}

TEST(DebugHooks, VerbosityZeroSilencesInform)
{
    const int saved = logVerbosity;
    logVerbosity = 0;
    inform("must not appear");
    logVerbosity = saved;
    SUCCEED();
}
