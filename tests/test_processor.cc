/**
 * @file
 * Integration tests of the full out-of-order processor on small,
 * purpose-built programs. Every run executes with the golden
 * architectural checker enabled, so these tests verify that the
 * timing machinery (speculation, replay, forwarding, recovery)
 * preserves architectural semantics cycle by cycle.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::core;

namespace
{

workload::Workload
makeWorkload(const std::string &src)
{
    workload::Workload w;
    w.name = "test";
    w.program = isa::assemble(src);
    w.initMemory = [prog = w.program](SparseMemory &m) {
        isa::loadProgramData(prog, m);
    };
    return w;
}

/** Run src under cfg; returns the result (checker enabled). */
SimResult
runSrc(const std::string &src,
       sim::SimConfig cfg = sim::SimConfig::useBasedCache())
{
    auto w = makeWorkload(src);
    Processor p(cfg, w);
    p.run();
    EXPECT_TRUE(p.finished());
    return p.result();
}

} // namespace

TEST(Processor, StraightLineArithmetic)
{
    const SimResult r = runSrc(R"(
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2
        addi r3, r3, 1
        halt
    )");
    EXPECT_EQ(r.instsRetired, 5u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Processor, DependentChainRunsAtOneIpcAfterWarmup)
{
    // A serial add chain cannot exceed 1 IPC; looped so the
    // instruction cache warms, it should approach it.
    std::string src = "li r1, 0\nli r2, 60\nouter:\n";
    for (int i = 0; i < 40; ++i)
        src += "addi r1, r1, 1\n";
    src += "addi r2, r2, -1\nbnez r2, outer\nhalt\n";
    const SimResult r = runSrc(src);
    EXPECT_GT(r.ipc, 0.75);
    EXPECT_LE(r.ipc, 1.10);
}

TEST(Processor, IndependentOpsExploitWidth)
{
    // Six independent chains: ILP ~6 on 6 integer ALUs.
    std::string src = "li r7, 80\nouter:\n";
    for (int i = 0; i < 20; ++i)
        for (int reg = 1; reg <= 6; ++reg)
            src += "addi r" + std::to_string(reg) + ", r" +
                   std::to_string(reg) + ", 1\n";
    src += "addi r7, r7, -1\nbnez r7, outer\nhalt\n";
    const SimResult r = runSrc(src);
    EXPECT_GT(r.ipc, 3.0);
}

TEST(Processor, LoopWithPredictableBranch)
{
    const SimResult r = runSrc(R"(
        li   r1, 0
        li   r2, 2000
loop:   addi r1, r1, 1
        blt  r1, r2, loop
        halt
    )");
    EXPECT_EQ(r.instsRetired, 2 + 4000 + 1u);
    // YAGS learns the loop quickly; mispredicts only at the exit and
    // during warmup.
    EXPECT_LT(r.branchMispredicts, 30u);
}

TEST(Processor, MispredictRecoveryPreservesState)
{
    // Data-dependent branch pattern driven by an LCG: many
    // mispredicts, all recovered; the checker validates every retire.
    const SimResult r = runSrc(R"(
        li   r1, 12345     ; lcg state
        li   r2, 1103515245
        li   r3, 12821
        li   r4, 500       ; iterations
        li   r5, 0         ; taken counter
loop:   mul  r1, r1, r2
        add  r1, r1, r3
        srli r6, r1, 33
        andi r6, r6, 1
        beqz r6, skip
        addi r5, r5, 1
skip:   addi r4, r4, -1
        bnez r4, loop
        halt
    )");
    EXPECT_GT(r.branchMispredicts, 50u); // genuinely unpredictable
    EXPECT_GT(r.instsRetired, 3000u);
}

TEST(Processor, StoreToLoadForwarding)
{
    // A load immediately after a store to the same address must see
    // the stored value (validated by the checker) without deadlock.
    const SimResult r = runSrc(R"(
        li   r1, 0x10000
        li   r2, 500
        li   r5, 0
loop:   sd   r2, 0(r1)
        ld   r3, 0(r1)
        add  r5, r5, r3
        addi r2, r2, -1
        bnez r2, loop
        halt
    )");
    EXPECT_GT(r.instsRetired, 2000u);
}

TEST(Processor, PartialOverlapStoreStallsLoad)
{
    // Byte store into the middle of a word, then a word load: the
    // load cannot forward and must wait for the store to commit.
    const SimResult r = runSrc(R"(
        li   r1, 0x10000
        li   r2, 50
loop:   sd   r2, 0(r1)
        sb   r2, 3(r1)
        ld   r3, 0(r1)
        addi r2, r2, -1
        bnez r2, loop
        halt
    )");
    EXPECT_GT(r.instsRetired, 200u);
}

TEST(Processor, MemoryOrderViolationRecovers)
{
    // The load's address matches a store whose address is computed
    // late (long dependence chain), so the load issues first and must
    // be squashed when the store executes.
    const SimResult r = runSrc(R"(
        li   r1, 0x10000
        li   r7, 100
loop:   mul  r2, r7, r7    ; slow address computation
        mul  r2, r2, r2
        andi r2, r2, 0xff8
        add  r3, r1, r2
        sd   r7, 0(r3)     ; store with late address
        ld   r4, 0(r3)     ; same address, issues optimistically? no-
        ld   r5, 8(r1)     ; independent younger load, may violate
        addi r7, r7, -1
        bnez r7, loop
        halt
    )");
    EXPECT_GT(r.instsRetired, 500u);
}

TEST(Processor, CallsAndReturnsUseRas)
{
    const SimResult r = runSrc(R"(
        li   sp, 0x40000000
        li   r5, 300
loop:   call leaf
        addi r5, r5, -1
        bnez r5, loop
        halt
leaf:   addi r6, r6, 1
        ret
    )");
    // Returns are RAS-predicted: very few mispredicts.
    EXPECT_LT(r.branchMispredictRate, 0.05);
}

TEST(Processor, MaxInstsLimitStopsEarly)
{
    auto cfg = sim::SimConfig::useBasedCache();
    cfg.maxInsts = 100;
    const SimResult r = runSrc("loop: addi r1, r1, 1\nj loop\n", cfg);
    EXPECT_EQ(r.instsRetired, 100u);
}

TEST(Processor, MaxCyclesLimitStopsEarly)
{
    auto cfg = sim::SimConfig::useBasedCache();
    cfg.maxCycles = 500;
    auto w = makeWorkload("loop: addi r1, r1, 1\nj loop\n");
    Processor p(cfg, w);
    p.run();
    EXPECT_FALSE(p.finished());
    EXPECT_LE(p.cycle(), 501);
}

TEST(Processor, TickAdvancesOneCycle)
{
    auto cfg = sim::SimConfig::useBasedCache();
    auto w = makeWorkload("halt\n");
    Processor p(cfg, w);
    const Cycle before = p.cycle();
    p.tick();
    EXPECT_EQ(p.cycle(), before + 1);
}

TEST(Processor, ColdInstructionCachePaysLatency)
{
    const SimResult r = runSrc("halt\n");
    // First fetch misses all the way to memory.
    EXPECT_GT(r.cycles, 180u);
}

TEST(Processor, OperandSourceAccounting)
{
    const SimResult r = runSrc(R"(
        li   r1, 1
        li   r2, 2
        add  r3, r1, r2
        add  r4, r3, r1
        add  r5, r4, r2
        halt
    )");
    // Every counted operand came from somewhere.
    EXPECT_GT(r.operandReads(), 0u);
    EXPECT_GE(r.bypassFraction, 0.0);
    EXPECT_LE(r.bypassFraction, 1.0);
}

TEST(Processor, LifetimeTrackingProducesDistributions)
{
    auto cfg = sim::SimConfig::monolithic(1);
    cfg.trackLifetimes = true;
    std::string src = "li r2, 40\nouter: li r1, 0\n";
    for (int i = 0; i < 20; ++i)
        src += "addi r1, r1, 1\n";
    src += "addi r2, r2, -1\nbnez r2, outer\nhalt\n";
    auto w = makeWorkload(src);
    Processor p(cfg, w);
    p.run();
    const SimResult r = p.result();
    EXPECT_GT(r.allocatedP90, 0u);
    EXPECT_GE(r.allocatedP90, r.allocatedP50);
    EXPECT_GE(r.liveP90, r.liveP50);
    // Live values are a small subset of allocated registers (the
    // paper's Figure 2 observation).
    EXPECT_LT(r.liveP90, r.allocatedP90);
}

TEST(Processor, WrongPathExecutionIsHarmless)
{
    // A mispredicted branch guards a store; wrong-path stores must
    // never commit (the checker would fail).
    const SimResult r = runSrc(R"(
        li   r1, 0x10000
        li   r2, 12345
        li   r4, 400
loop:   mul  r2, r2, r2
        addi r2, r2, 17
        srli r3, r2, 35
        andi r3, r3, 1
        beqz r3, nostore
        sd   r4, 0(r1)
        ld   r6, 0(r1)
nostore: addi r4, r4, -1
        bnez r4, loop
        halt
    )");
    EXPECT_GT(r.branchMispredicts, 10u);
}
