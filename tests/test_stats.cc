/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace ubrc::stats;

TEST(Scalar, CountsAndResets)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 7u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Mean, ComputesWeightedMean)
{
    Mean m;
    EXPECT_EQ(m.value(), 0.0);
    m.sample(2.0);
    m.sample(4.0);
    EXPECT_DOUBLE_EQ(m.value(), 3.0);
    m.sample(10.0, 2); // weight 2
    EXPECT_DOUBLE_EQ(m.value(), 26.0 / 4.0);
    EXPECT_EQ(m.count(), 4u);
}

TEST(Distribution, MeanAndMedian)
{
    Distribution d(100);
    for (uint64_t v = 1; v <= 9; ++v)
        d.sample(v);
    EXPECT_EQ(d.median(), 5u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_EQ(d.count(), 9u);
}

TEST(Distribution, PercentileEdges)
{
    Distribution d(100);
    for (int i = 0; i < 10; ++i)
        d.sample(10);
    EXPECT_EQ(d.percentile(0.0), 10u);
    EXPECT_EQ(d.percentile(1.0), 10u);
    EXPECT_EQ(d.percentile(0.5), 10u);
}

TEST(Distribution, PercentileSkewed)
{
    Distribution d(100);
    for (int i = 0; i < 90; ++i)
        d.sample(1);
    for (int i = 0; i < 10; ++i)
        d.sample(50);
    EXPECT_EQ(d.percentile(0.5), 1u);
    EXPECT_EQ(d.percentile(0.9), 1u);
    EXPECT_EQ(d.percentile(0.95), 50u);
}

TEST(Distribution, ClampsOverflowIntoLastBucket)
{
    Distribution d(10);
    d.sample(5000);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.median(), 10u);
}

TEST(Distribution, CdfMonotone)
{
    Distribution d(20);
    for (uint64_t v = 0; v <= 20; ++v)
        d.sample(v);
    double prev = -1;
    for (uint64_t v = 0; v <= 20; ++v) {
        const double c = d.cdfAt(v);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(d.cdfAt(20), 1.0);
    EXPECT_NEAR(d.cdfAt(9), 10.0 / 21.0, 1e-12);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d(10);
    EXPECT_EQ(d.median(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.cdfAt(5), 0.0);
}

TEST(StatGroup, NamesAreStable)
{
    StatGroup g("grp");
    Scalar &a = g.scalar("a");
    ++a;
    Scalar &a2 = g.scalar("a");
    EXPECT_EQ(&a, &a2);
    EXPECT_EQ(a2.value(), 1u);
}

TEST(StatGroup, DumpContainsEntries)
{
    StatGroup g("core");
    g.scalar("hits") += 3;
    g.mean("occ").sample(1.5);
    g.distribution("lat", 64).sample(7);
    const std::string out = g.dump();
    EXPECT_NE(out.find("core.hits 3"), std::string::npos);
    EXPECT_NE(out.find("core.occ"), std::string::npos);
    EXPECT_NE(out.find("core.lat"), std::string::npos);
}

TEST(StatGroup, ResetAllClears)
{
    StatGroup g("g");
    g.scalar("x") += 9;
    g.mean("m").sample(4);
    g.distribution("d").sample(2);
    g.resetAll();
    EXPECT_EQ(g.scalar("x").value(), 0u);
    EXPECT_EQ(g.mean("m").count(), 0u);
    EXPECT_EQ(g.distribution("d").count(), 0u);
}
