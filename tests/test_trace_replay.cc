/**
 * @file
 * Tests for trace replay: exact-mode bit-identity against
 * execution-driven results for every registered scheme, the
 * pre-decoded fast path, skip-mask safety, and adaptive-mode sanity.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sim_error.hh"
#include "trace/trace_format.hh"
#include "trace/trace_replay.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::trace;

namespace
{

/**
 * Every derived statistic of SimResult must match bit for bit. This
 * is the replay fidelity contract: an exact replay is
 * indistinguishable from the execution-driven run it was recorded
 * from (minus the trace provenance block).
 */
void
expectSameResult(const core::SimResult &a, const core::SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instsRetired, b.instsRetired);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.opBypass, b.opBypass);
    EXPECT_EQ(a.opCache, b.opCache);
    EXPECT_EQ(a.opFile, b.opFile);
    EXPECT_EQ(a.bypassFraction, b.bypassFraction);
    EXPECT_EQ(a.rcMisses, b.rcMisses);
    EXPECT_EQ(a.rcMissNoWrite, b.rcMissNoWrite);
    EXPECT_EQ(a.rcMissConflict, b.rcMissConflict);
    EXPECT_EQ(a.rcMissCapacity, b.rcMissCapacity);
    EXPECT_EQ(a.missPerOperand, b.missPerOperand);
    EXPECT_EQ(a.rcInserts, b.rcInserts);
    EXPECT_EQ(a.rcFills, b.rcFills);
    EXPECT_EQ(a.valuesProduced, b.valuesProduced);
    EXPECT_EQ(a.writesFiltered, b.writesFiltered);
    EXPECT_EQ(a.valuesNeverCached, b.valuesNeverCached);
    EXPECT_EQ(a.cachedNeverRead, b.cachedNeverRead);
    EXPECT_EQ(a.cachedTotal, b.cachedTotal);
    EXPECT_EQ(a.avgOccupancy, b.avgOccupancy);
    EXPECT_EQ(a.avgEntryLifetime, b.avgEntryLifetime);
    EXPECT_EQ(a.readsPerCachedValue, b.readsPerCachedValue);
    EXPECT_EQ(a.cacheCountPerValue, b.cacheCountPerValue);
    EXPECT_EQ(a.zeroUseVictimFraction, b.zeroUseVictimFraction);
    EXPECT_EQ(a.cacheReadBw, b.cacheReadBw);
    EXPECT_EQ(a.cacheWriteBw, b.cacheWriteBw);
    EXPECT_EQ(a.fileReadBw, b.fileReadBw);
    EXPECT_EQ(a.fileWriteBw, b.fileWriteBw);
    EXPECT_EQ(a.douAccuracy, b.douAccuracy);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
    EXPECT_EQ(a.medianEmptyTime, b.medianEmptyTime);
    EXPECT_EQ(a.medianLiveTime, b.medianLiveTime);
    EXPECT_EQ(a.medianDeadTime, b.medianDeadTime);
    EXPECT_EQ(a.allocatedP50, b.allocatedP50);
    EXPECT_EQ(a.allocatedP90, b.allocatedP90);
    EXPECT_EQ(a.liveP50, b.liveP50);
    EXPECT_EQ(a.liveP90, b.liveP90);
    EXPECT_EQ(a.miniReplays, b.miniReplays);
    EXPECT_EQ(a.issueGroupSquashes, b.issueGroupSquashes);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.memOrderViolations, b.memOrderViolations);
    EXPECT_EQ(a.fetchBlocks, b.fetchBlocks);
    EXPECT_EQ(a.renameStallsRegs, b.renameStallsRegs);
    EXPECT_EQ(a.renameStallsRob, b.renameStallsRob);
    EXPECT_EQ(a.renameStallsIq, b.renameStallsIq);
    EXPECT_EQ(a.supplier.hasCache, b.supplier.hasCache);
    EXPECT_EQ(a.supplier.misses, b.supplier.misses);
    EXPECT_EQ(a.supplier.fileReads, b.supplier.fileReads);
    EXPECT_EQ(a.supplier.fileWrites, b.supplier.fileWrites);
    EXPECT_EQ(a.supplier.inserts, b.supplier.inserts);
    EXPECT_EQ(a.supplier.fills, b.supplier.fills);
    EXPECT_EQ(a.supplier.douAccuracy, b.supplier.douAccuracy);
}

class TraceReplayTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("ubrc_trace_rep_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir);
    }

    /** Record `cfg` over gzip and return the execution result. */
    core::SimResult
    record(sim::SimConfig cfg, const char *workload = "gzip")
    {
        cfg.traceMode = sim::TraceMode::Record;
        cfg.traceDir = dir.string();
        return sim::runOne(cfg, workload::buildWorkload(workload),
                           30000);
    }

    RecordedTrace
    load(const char *workload = "gzip")
    {
        return loadTrace(traceFilePath(dir.string(), workload));
    }

    std::filesystem::path dir;
};

} // namespace

TEST_F(TraceReplayTest, ExactBitIdentityUseBasedCache)
{
    const sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    const core::SimResult exec = record(cfg);
    const core::SimResult rep = replayTrace(cfg, load());
    EXPECT_TRUE(rep.trace.replayed);
    EXPECT_TRUE(rep.trace.exact);
    EXPECT_EQ(rep.trace.traceVersion, traceVersion);
    expectSameResult(exec, rep);
}

TEST_F(TraceReplayTest, ExactBitIdentityMonolithic)
{
    const sim::SimConfig cfg = sim::SimConfig::monolithic(3);
    const core::SimResult exec = record(cfg);
    const core::SimResult rep = replayTrace(cfg, load());
    EXPECT_TRUE(rep.trace.exact);
    expectSameResult(exec, rep);
}

TEST_F(TraceReplayTest, ExactBitIdentityTwoLevel)
{
    // Two-level overrides onConsumerDone/onArchReassigned, so this
    // also proves the OptionalNotifications interest declarations are
    // truthful: were a needed kind skipped, stats would diverge.
    const sim::SimConfig cfg = sim::SimConfig::twoLevelFile(64);
    const core::SimResult exec = record(cfg);
    const core::SimResult rep = replayTrace(cfg, load());
    EXPECT_TRUE(rep.trace.exact);
    expectSameResult(exec, rep);
}

TEST_F(TraceReplayTest, DecodedPathMatchesStreamingPath)
{
    const sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    record(cfg);
    const RecordedTrace trace = load();
    const core::SimResult streamed = replayTrace(cfg, trace);
    const DecodedTrace decoded =
        decodeTrace(trace, replaySkipMask(cfg));
    const core::SimResult fast = replayDecoded(cfg, decoded);
    EXPECT_TRUE(fast.trace.exact);
    expectSameResult(streamed, fast);
    // An unfiltered decode must agree too.
    expectSameResult(streamed,
                     replayDecoded(cfg, decodeTrace(trace)));
}

TEST_F(TraceReplayTest, DecodedSkipMaskMismatchRejected)
{
    const sim::SimConfig cached = sim::SimConfig::useBasedCache();
    record(cached);
    const RecordedTrace trace = load();
    // Dropping a kind no supplier may ignore is always rejected.
    const DecodedTrace broken = decodeTrace(
        trace, 1u << unsigned(EventKind::ReadOperand));
    EXPECT_THROW(replayDecoded(cached, broken),
                 sim::TraceFormatError);
    // A cached-scheme filter drops kinds the two-level scheme needs.
    const DecodedTrace for_cached =
        decodeTrace(trace, replaySkipMask(cached));
    EXPECT_THROW(
        replayDecoded(sim::SimConfig::twoLevelFile(64), for_cached),
        sim::TraceFormatError);
}

TEST_F(TraceReplayTest, AdaptiveReplayDerivesMisses)
{
    sim::SimConfig recorded = sim::SimConfig::useBasedCache();
    const core::SimResult exec = record(recorded);
    const RecordedTrace trace = load();

    sim::SimConfig smaller = recorded;
    smaller.rc.entries = recorded.rc.entries / 4;
    const core::SimResult rep = replayTrace(smaller, trace);
    EXPECT_TRUE(rep.trace.replayed);
    EXPECT_FALSE(rep.trace.exact);
    // Core-side counters come from the trace metadata verbatim.
    EXPECT_EQ(rep.cycles, exec.cycles);
    EXPECT_EQ(rep.instsRetired, exec.instsRetired);
    // A quarter-size cache cannot miss less.
    EXPECT_GE(rep.rcMisses, exec.rcMisses);
    // Bypass reads are recorded verbatim; every replay sees the same.
    EXPECT_EQ(rep.opBypass, exec.opBypass);
    // Each recorded ReadOperand resolves as exactly one cache or file
    // read (derived misses land in opFile), so the non-bypass operand
    // total is a trace property, identical across adaptive replays.
    sim::SimConfig half = recorded;
    half.rc.entries = recorded.rc.entries / 2;
    const core::SimResult rep2 = replayTrace(half, trace);
    EXPECT_FALSE(rep2.trace.exact);
    EXPECT_EQ(rep.opCache + rep.opFile, rep2.opCache + rep2.opFile);
}

TEST_F(TraceReplayTest, ReplayRunChecksWorkloadName)
{
    sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    record(cfg, "gzip");
    // Rename the trace so the recorded name and file name disagree.
    std::filesystem::rename(traceFilePath(dir.string(), "gzip"),
                            traceFilePath(dir.string(), "mcf"));
    cfg.traceMode = sim::TraceMode::Replay;
    cfg.traceDir = dir.string();
    EXPECT_THROW(replayRun(cfg, "mcf"), sim::TraceFormatError);
}

TEST_F(TraceReplayTest, ReplayRejectsEventsBeyondCycleCount)
{
    const sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    record(cfg);
    RecordedTrace trace = load();
    // Append a valid, non-skippable event past the recorded cycle
    // count (ConsumerDone would be filtered out for this scheme).
    TraceEvent extra;
    extra.tick = static_cast<Cycle>(trace.meta.cycles) + 10;
    extra.kind = EventKind::ReadOperand;
    extra.arg = extra.tick;
    extra.a = 1;
    Cycle prev = 0; // delta chain restarts; still strictly later
    std::string tail;
    appendEvent(tail, extra, prev);
    trace.events += tail;
    EXPECT_THROW(replayTrace(cfg, trace), sim::TraceFormatError);
}
