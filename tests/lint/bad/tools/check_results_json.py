# Fixture validator drifted from the serializer. LINT-EXPECT: schema-drift
# (The line-1 marker is the `phantom` kind below: validated but no
# C++ serializer ever emits it, reported against this file's head.)


def expect_keys(obj, keys, where):
    missing = [k for k in keys if k not in obj]
    assert not missing, f"{where}: missing {missing}"


def check_mini(doc):
    expect_keys(doc, ("alpha",), "mini")
    expect_keys(doc, ("ghost",), "mini")  # LINT-EXPECT: schema-drift


def check_phantom(doc):
    expect_keys(doc, ("beta",), "phantom")


KINDS = {
    "mini": check_mini,
    "phantom": check_phantom,
}
