// Fixture mirror of trace_format.hh: a wire-code gap, a stale
// numEventKinds, and DESIGN.md drift for the trace-version rule.
#ifndef UBRC_TRACE_TRACE_FORMAT_HH
#define UBRC_TRACE_TRACE_FORMAT_HH

#include <cstdint>

namespace ubrc::trace
{

inline constexpr uint32_t traceVersion = 1;

enum class EventKind : uint8_t
{
    InitialValue = 0,
    ConsumerRenamed = 1,
    AllocDest = 3,                      // LINT-EXPECT: trace-version
    ReadOperand = 4,
};

inline constexpr unsigned numEventKinds = 3; // LINT-EXPECT: trace-version

} // namespace ubrc::trace

#endif // UBRC_TRACE_TRACE_FORMAT_HH
