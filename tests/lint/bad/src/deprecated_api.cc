// Fixture: resurrecting removed string-query stat reads must be
// flagged wherever it appears.
#include <cstdint>

namespace fixture
{

uint64_t
readRetired(const StatGroup &sg)
{
    return sg.scalarValue("retired"); // LINT-EXPECT: deprecated-api
}

} // namespace fixture
