// Fixture: heap allocation inside a declared hot region. The same
// calls before the region opens are legal — only the marked span is
// constrained.
#include <memory>
#include <string>
#include <vector>

struct Issuer
{
    std::vector<int> group;

    void
    setup()
    {
        group.reserve(64); // fine: not hot yet
    }

    // ubrc-lint: hot
    void
    tick(int seq)
    {
        group.push_back(seq);                    // LINT-EXPECT: hot-path-alloc
        auto tag = std::make_unique<int>(seq);   // LINT-EXPECT: hot-path-alloc
        std::string label = std::to_string(seq); // LINT-EXPECT: hot-path-alloc
        int *raw = new int(seq);                 // LINT-EXPECT: hot-path-alloc, naked-new
        delete raw;                              // LINT-EXPECT: naked-new
        (void)tag;
        (void)label;
    }
    // ubrc-lint: hot-end
};
