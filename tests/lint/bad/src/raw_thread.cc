// Fixture: raw thread construction sites the rule must flag —
// temporaries, named objects, brace-init, and emplacement into a
// declared thread container — outside src/sched/.
#include <thread>
#include <vector>

void
pool()
{
    std::thread worker([] {});          // LINT-EXPECT: raw-thread
    std::thread{[] {}}.detach();        // LINT-EXPECT: raw-thread
    auto t = std::thread([] {});        // LINT-EXPECT: raw-thread
    std::vector<std::thread> threads;
    threads.emplace_back([] {});        // LINT-EXPECT: raw-thread
    t.join();
    worker.join();
    for (auto &th : threads)
        th.join();
}
