// Fixture: this path is a designated hot FILE (HOT_FILES) — the
// rule applies everywhere in it without any region markers.
#ifndef UBRC_REGCACHE_PACKED_CACHE_HH
#define UBRC_REGCACHE_PACKED_CACHE_HH

#include <cstdint>
#include <vector>

namespace ubrc::regcache
{

struct PackedCache
{
    std::vector<uint64_t> words;

    void
    place(int slot)
    {
        words.push_back(uint64_t(slot)); // LINT-EXPECT: hot-path-alloc
    }
};

} // namespace ubrc::regcache

#endif // UBRC_REGCACHE_PACKED_CACHE_HH
