// Fixture mirror of the real sim_error.hh: one ErrorKind never gets
// an exit code, which the exit-codes tree rule must catch.
#ifndef UBRC_SIM_SIM_ERROR_HH
#define UBRC_SIM_SIM_ERROR_HH

namespace ubrc::sim
{

enum class ErrorKind
{
    Config,
    CheckerDivergence,
    Deadlock,
    Invariant,
    Orphan,                             // LINT-EXPECT: exit-codes
};

int exitCodeFor(ErrorKind kind);

} // namespace ubrc::sim

#endif // UBRC_SIM_SIM_ERROR_HH
