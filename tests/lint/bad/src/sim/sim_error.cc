// Fixture mirror of the real sim_error.cc: a duplicated exit code
// and a claim on the reserved code 1.
#include "sim/sim_error.hh"

namespace ubrc::sim
{

int
exitCodeFor(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return 2;
      case ErrorKind::CheckerDivergence: return 3;
      case ErrorKind::Deadlock: return 3; // LINT-EXPECT: exit-codes
      case ErrorKind::Invariant: return 1; // LINT-EXPECT: exit-codes
    }
    return 1;
}

} // namespace ubrc::sim
