// Fixture: the serializer emits a key the fixture validator never
// checks (gamma) and a whole document kind it has no checker for
// (rogue). The validator side of this pair lives in
// tools/check_results_json.py.
#include <cstdint>

namespace json
{

struct Writer
{
    Writer &beginObject();
    Writer &endObject();
    Writer &field(const char *, const char *);
    Writer &field(const char *, uint64_t);
};

} // namespace json

void
writeMini(json::Writer &w)
{
    w.beginObject();
    w.field("schema_version", uint64_t(1));
    w.field("kind", "mini");
    w.field("alpha", uint64_t(7));
    w.field("gamma", uint64_t(9)); // LINT-EXPECT: schema-drift
    w.endObject();
}

void
writeRogue(json::Writer &w)
{
    w.beginObject();
    w.field("schema_version", uint64_t(1));
    w.field("kind", "rogue"); // LINT-EXPECT: schema-drift
    w.endObject();
}
