// Fixture: naked new/delete expressions the rule must flag, plus the
// deleted-function syntax it must NOT confuse with delete-expressions.
struct Widget
{
    Widget() = default;
    Widget(const Widget &) = delete;
    Widget &operator=(const Widget &) = delete;
};

int *
make()
{
    int *p = new int[8];                // LINT-EXPECT: naked-new
    delete[] p;                         // LINT-EXPECT: naked-new
    auto *w = new Widget;               // LINT-EXPECT: naked-new
    delete w;                           // LINT-EXPECT: naked-new
    return new int(7);                  // LINT-EXPECT: naked-new
}
