// A header with no include guard at all. LINT-EXPECT: header-hygiene
struct Unguarded
{
    int y = 0;
};
