// Fixture: isa may only include common; pulling in mem/ is a
// forbidden edge, and with mem/port.hh including us back it is also
// an unsanctioned module cycle and a file-level include cycle.
#ifndef UBRC_ISA_DECODE_HH
#define UBRC_ISA_DECODE_HH

#include "mem/port.hh" // LINT-EXPECT: include-layering

namespace ubrc::isa
{

struct Decoded
{
    int opcode = 0;
};

} // namespace ubrc::isa

#endif // UBRC_ISA_DECODE_HH
