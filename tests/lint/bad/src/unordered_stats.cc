// Fixture: iterating an unordered container leaks host hash order
// into anything it feeds (stats, reports, merges).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct OpStats
{
    std::unordered_map<int, uint64_t> counts;
    std::unordered_set<int> seen;

    uint64_t
    total() const
    {
        uint64_t sum = 0;
        for (const auto &kv : counts)   // LINT-EXPECT: unordered-iter
            sum += kv.second;
        return sum;
    }

    int
    first() const
    {
        return *seen.begin();           // LINT-EXPECT: unordered-iter
    }

    uint64_t
    lookup(int key) const
    {
        // Point queries are order-free and must pass.
        auto it = counts.find(key);
        return it == counts.end() ? 0 : it->second;
    }
};
