// Fixture: every classic nondeterminism source the rule must catch.
// Never compiled; consumed by `ubrc-lint --self-test`.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned
entropy()
{
    unsigned a = rand();                // LINT-EXPECT: nondeterminism
    srand(42);                          // LINT-EXPECT: nondeterminism
    std::random_device rd;              // LINT-EXPECT: nondeterminism
    return a + rd();
}

long
wallclock()
{
    long t = time(nullptr);             // LINT-EXPECT: nondeterminism
    t += std::time(nullptr);            // LINT-EXPECT: nondeterminism
    auto now =
        std::chrono::system_clock::now(); // LINT-EXPECT: nondeterminism
    (void)now;
    struct timeval tv;
    gettimeofday(&tv, nullptr);         // LINT-EXPECT: nondeterminism
    struct timespec ts;
    clock_gettime(0, &ts);              // LINT-EXPECT: nondeterminism
    return t;
}

void
fine()
{
    // Deterministic time sources and prose mentions must NOT trip:
    // "the time() of day" in a comment, entry_lifetime( as a suffix.
    auto ok = std::chrono::steady_clock::now();
    (void)ok;
    const char *text = "call time() and rand() all you like in here";
    (void)text;
}
