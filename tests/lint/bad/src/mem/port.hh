// Fixture: mem may only include common; the back edge into isa/
// closes the isa <-> mem cycle seeded by isa/decode.hh.
#ifndef UBRC_MEM_PORT_HH
#define UBRC_MEM_PORT_HH

#include "isa/decode.hh" // LINT-EXPECT: include-layering

namespace ubrc::mem
{

struct Port
{
    int width = 0;
};

} // namespace ubrc::mem

#endif // UBRC_MEM_PORT_HH
