// Fixture: stat names that break the lower_snake_case JSON schema
// convention. The StatGroup here is a stand-in; never compiled.
struct StatGroup
{
    int &scalar(const char *);
    int &mean(const char *);
    int &distribution(const char *);
};

void
registerStats(StatGroup &g)
{
    g.scalar("CamelCase");              // LINT-EXPECT: stat-names
    g.mean("rc occupancy");             // LINT-EXPECT: stat-names
    g.distribution("9_lives");          // LINT-EXPECT: stat-names
    g.scalar("trailing-dash");          // LINT-EXPECT: stat-names
    g.scalar("rc_occupancy");
    g.mean("entry_lifetime");
}
