#ifndef WRONG_GUARD_HH                  // LINT-EXPECT: header-hygiene
#define WRONG_GUARD_HH

using namespace std;                    // LINT-EXPECT: header-hygiene

struct Widget
{
    int x = 0;
};

#endif // WRONG_GUARD_HH
