// Fixture: a pragma naming an unknown rule is itself a finding — a
// typo in a waiver must never silently waive nothing.
void f(); // ubrc-lint: allow(not-a-rule)  LINT-EXPECT: pragma
