# Fixture validator exactly in sync with the fixture serializer
# (src/sim/mini_json.cc). LINT-NEGATIVE: schema-drift


def expect_keys(obj, keys, where):
    missing = [k for k in keys if k not in obj]
    assert not missing, f"{where}: missing {missing}"


def check_mini(doc):
    expect_keys(doc, ("alpha", "beta"), "mini")


KINDS = {
    "mini": check_mini,
}
