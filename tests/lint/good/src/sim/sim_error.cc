// Fixture mirror of the real sim_error.cc, fully conforming. The
// common/ include exercises an allowed layering edge (sim -> common).
// LINT-NEGATIVE: exit-codes, include-layering
#include "sim/sim_error.hh"

#include "common/util.hh"

namespace ubrc::sim
{

int
exitCodeFor(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return 2;
      case ErrorKind::CheckerDivergence: return 3;
      case ErrorKind::Deadlock: return 4;
      case ErrorKind::Invariant: return 5;
    }
    return 1;
}

} // namespace ubrc::sim
