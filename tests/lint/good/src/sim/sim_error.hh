// Fixture mirror of the real sim_error.hh, fully conforming.
#ifndef UBRC_SIM_SIM_ERROR_HH
#define UBRC_SIM_SIM_ERROR_HH

namespace ubrc::sim
{

enum class ErrorKind
{
    /** Invalid configuration. */
    Config,
    /** Golden-model divergence. */
    CheckerDivergence,
    /** Forward-progress watchdog fired. */
    Deadlock,
    /** Containable invariant violation. */
    Invariant,
};

int exitCodeFor(ErrorKind kind);

} // namespace ubrc::sim

#endif // UBRC_SIM_SIM_ERROR_HH
