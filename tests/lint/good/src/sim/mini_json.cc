// Fixture: serializer and validator agree key for key — the
// schema-drift rule must stay silent. The validator side lives in
// tools/check_results_json.py.
// LINT-NEGATIVE: schema-drift
#include <cstdint>

namespace json
{

struct Writer
{
    Writer &beginObject();
    Writer &endObject();
    Writer &field(const char *, const char *);
    Writer &field(const char *, uint64_t);
};

} // namespace json

void
writeMini(json::Writer &w)
{
    w.beginObject();
    w.field("schema_version", uint64_t(1));
    w.field("kind", "mini");
    w.field("alpha", uint64_t(7));
    w.field("beta", uint64_t(9));
    w.endObject();
}
