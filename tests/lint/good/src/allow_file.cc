// Fixture: a whole-file waiver for one rule.
// ubrc-lint: allow-file(nondeterminism)
#include <ctime>

uint64_t epochA() { return time(nullptr); }
uint64_t epochB() { return std::time(nullptr); }
