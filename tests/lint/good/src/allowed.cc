// Fixture: real violations waived by allow pragmas — same line,
// preceding line, and the renamed-identifier edge around them.
#include <ctime>
#include <thread>

uint64_t
reportStamp()
{
    return static_cast<uint64_t>(
        std::time(nullptr)); // ubrc-lint: allow(nondeterminism)
}

// ubrc-lint: allow(nondeterminism)
uint64_t stampToo() { return time(nullptr); }

int *
arena()
{
    // ubrc-lint: allow(naked-new)
    return new int[64];
}

void
ioPump()
{
    // An I/O pump thread, not simulation work — a considered waiver.
    std::thread reader([] {}); // ubrc-lint: allow(raw-thread)
    reader.join();
}
