// Fixture: real violations waived by allow pragmas — same line,
// preceding line, and the renamed-identifier edge around them.
#include <ctime>

uint64_t
reportStamp()
{
    return static_cast<uint64_t>(
        std::time(nullptr)); // ubrc-lint: allow(nondeterminism)
}

// ubrc-lint: allow(nondeterminism)
uint64_t stampToo() { return time(nullptr); }

int *
arena()
{
    // ubrc-lint: allow(naked-new)
    return new int[64];
}
