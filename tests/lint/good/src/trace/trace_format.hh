// Fixture mirror of trace_format.hh in sync with the fixture
// DESIGN.md event-vocabulary table.
// LINT-NEGATIVE: trace-version
#ifndef UBRC_TRACE_TRACE_FORMAT_HH
#define UBRC_TRACE_TRACE_FORMAT_HH

#include <cstdint>

namespace ubrc::trace
{

inline constexpr uint32_t traceVersion = 1;

enum class EventKind : uint8_t
{
    InitialValue = 0,
    ConsumerRenamed = 1,
    AllocDest = 2,
    ReadOperand = 3,
};

inline constexpr unsigned numEventKinds = 4;

} // namespace ubrc::trace

#endif // UBRC_TRACE_TRACE_FORMAT_HH
