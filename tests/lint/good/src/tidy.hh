// Fixture: a conforming header — canonical guard, no namespace leaks.
// LINT-NEGATIVE: header-hygiene
#ifndef UBRC_TIDY_HH
#define UBRC_TIDY_HH

namespace ubrc
{

struct Tidy
{
    int x = 0;
};

} // namespace ubrc

#endif // UBRC_TIDY_HH
