// Fixture: a common/ header other modules may include (the layering
// table's one universally allowed target).
#ifndef UBRC_COMMON_UTIL_HH
#define UBRC_COMMON_UTIL_HH

namespace ubrc::common
{

constexpr int kAnswer = 42;

} // namespace ubrc::common

#endif // UBRC_COMMON_UTIL_HH
