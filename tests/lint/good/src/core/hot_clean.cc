// Fixture: a hot region that touches only preallocated storage must
// pass, and ordinary allocation outside any hot region is always
// fine in a file that is not a designated hot file.
// LINT-NEGATIVE: hot-path-alloc
#include <vector>

struct IssueRing
{
    std::vector<int> slots;

    void
    prepare(unsigned n)
    {
        slots.resize(n); // fine: cold setup path
    }

    // ubrc-lint: hot
    void
    tick(unsigned i, int seq)
    {
        slots[i % slots.size()] = seq;
    }
    // ubrc-lint: hot-end
};
