// Fixture: text that v1's line regexes misread — a spliced line
// comment, a block comment, and a raw string. The tokenizer must see
// none of it as code; the self-test's misparse probe replays the old
// patterns over these raw lines to prove they would have fired.
// LINT-NEGATIVE: nondeterminism, deprecated-api, stat-names
#include <cstdint>

// A backslash splices the next physical line into this comment \
   srand(42); std::random_device entropy; system_clock::now();

/* The removed scalarValue() accessor used to pair with CamelCase
   registrations like g.scalar("Misses") and g.mean("EntryLife"). */

const char *kListing = R"(
    call srand(0)            ; reseed host prng
    mov  system_clock, r1    ; not actually C++
    stat st.distribution("Occupancy") ; listing prose, not a call
)";

uint64_t
answer()
{
    return 42;
}
