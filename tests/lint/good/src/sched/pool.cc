// Fixture: src/sched/ is the one place allowed to construct threads
// (it IS the execution engine), and declarations/type mentions are
// legal everywhere — only construction starts a thread.
// LINT-NEGATIVE: raw-thread
#include <thread>
#include <vector>

struct Engine
{
    std::thread worker;                 // declaration, runs nothing
    std::vector<std::thread> threads;   // type mention only

    void
    start()
    {
        worker = std::thread([] {});    // fine: we are src/sched/
        threads.emplace_back([] {});    // fine: we are src/sched/
    }
};
