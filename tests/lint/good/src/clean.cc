// Fixture: idiomatic code that no rule may flag — deterministic
// timing, ordered containers, conforming stat names, RAII ownership,
// and prose/strings that merely mention forbidden constructs.
// LINT-NEGATIVE: nondeterminism, unordered-iter, stat-names, naked-new
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

struct StatGroup
{
    int &scalar(const char *);
    int &mean(const char *);
    int &distribution(const char *);
};

void
registerStats(StatGroup &g)
{
    g.scalar("rc_misses");
    g.mean("rc_entry_lifetime");
    g.distribution("preg_live_time");
}

// Asm listings live in raw strings; "; new front" and "time(" inside
// one must never look like C++ to the linter.
const char *kKernel = R"(
    addi t0, t0, 1        ; new front
    jal  ra, time_loop    ; calls time() per iteration
)";

int64_t
elapsedMs(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now() - t0)
        .count();
}

uint64_t
sum(const std::map<int, uint64_t> &counts)
{
    uint64_t total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    return total;
}

std::unique_ptr<std::vector<int>>
makeBuffer()
{
    return std::make_unique<std::vector<int>>(128);
}
