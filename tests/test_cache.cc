/**
 * @file
 * Unit tests for the generic tag cache.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace ubrc;
using namespace ubrc::mem;

namespace
{

CacheGeometry
smallGeom()
{
    return {4 * 64, 2, 64}; // 4 lines, 2-way, 2 sets
}

} // namespace

TEST(TagCache, MissThenHitAfterInsert)
{
    TagCache c(smallGeom());
    EXPECT_FALSE(c.lookup(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.lookup(0x1000));
    EXPECT_TRUE(c.lookup(0x1030)); // same line
    EXPECT_FALSE(c.lookup(0x1040)); // next line
}

TEST(TagCache, LruEviction)
{
    TagCache c(smallGeom());
    // Lines 0x0000, 0x0080, 0x0100 map to set 0 (2 sets, 64B lines).
    c.insert(0x0000);
    c.insert(0x0080);
    EXPECT_TRUE(c.lookup(0x0000)); // make 0x0080 the LRU
    Addr victim = 0;
    EXPECT_TRUE(c.insert(0x0100, &victim));
    EXPECT_EQ(victim, 0x0080u);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0080));
    EXPECT_TRUE(c.contains(0x0100));
}

TEST(TagCache, InsertExistingRefreshesWithoutEviction)
{
    TagCache c(smallGeom());
    c.insert(0x0000);
    c.insert(0x0080);
    EXPECT_FALSE(c.insert(0x0000)); // refresh, no eviction
    Addr victim = 0;
    c.insert(0x0100, &victim);
    EXPECT_EQ(victim, 0x0080u); // 0x0000 was refreshed
}

TEST(TagCache, Invalidate)
{
    TagCache c(smallGeom());
    c.insert(0x2000);
    EXPECT_TRUE(c.invalidate(0x2000));
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_FALSE(c.invalidate(0x2000));
}

TEST(TagCache, SetsAreIndependent)
{
    TagCache c(smallGeom());
    c.insert(0x0000); // set 0
    c.insert(0x0040); // set 1
    c.insert(0x0080); // set 0
    c.insert(0x00c0); // set 1
    // Set 0 full; inserting into set 1 must not evict set 0.
    c.insert(0x0140);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0080));
}

TEST(TagCache, FullyAssociativeGeometry)
{
    TagCache c({8 * 64, 8, 64}); // one set
    for (Addr a = 0; a < 8; ++a)
        c.insert(a * 64);
    for (Addr a = 0; a < 8; ++a)
        EXPECT_TRUE(c.contains(a * 64));
    c.insert(8 * 64);
    EXPECT_FALSE(c.contains(0)); // LRU went
}

TEST(TagCacheDeathTest, RejectsBadGeometry)
{
    EXPECT_EXIT(TagCache({100, 2, 48}), ::testing::ExitedWithCode(1),
                "power of two");
}
