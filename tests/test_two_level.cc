/**
 * @file
 * Unit tests for the two-level register file model (Section 5.5).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "regfile/two_level.hh"

using namespace ubrc;
using namespace ubrc::regfile;

namespace
{

struct TlFixture : ::testing::Test
{
    TlFixture() : stats("tl")
    {
        params.l1Entries = 4;
        params.freeThreshold = 4; // always transfer when possible
        params.bandwidth = 2;
        params.l2Latency = 2;
    }

    TwoLevelFile
    make()
    {
        return TwoLevelFile(params, 64, stats);
    }

    TwoLevelParams params;
    stats::StatGroup stats;
};

} // namespace

TEST_F(TlFixture, CapacityGatesAllocation)
{
    auto tl = make();
    for (PhysReg p = 0; p < 4; ++p) {
        EXPECT_TRUE(tl.canAllocate());
        tl.allocate(p);
    }
    EXPECT_FALSE(tl.canAllocate());
    tl.onFree(2);
    EXPECT_TRUE(tl.canAllocate());
}

TEST_F(TlFixture, TransferRequiresAllConditions)
{
    auto tl = make();
    tl.allocate(1);
    // Not written, not reassigned: never transfers.
    tl.tick(1);
    EXPECT_TRUE(tl.inL1(1));
    tl.onWrite(1);
    tl.tick(2);
    EXPECT_TRUE(tl.inL1(1)); // still mapped (not reassigned)
    tl.onConsumerRenamed(1);
    tl.onArchReassigned(1);
    tl.tick(3);
    EXPECT_TRUE(tl.inL1(1)); // pending consumer holds it
    tl.onConsumerDone(1);
    tl.tick(4);
    EXPECT_FALSE(tl.inL1(1)); // all conditions met: moved to L2
    EXPECT_EQ(tl.l1Occupancy(), 0u);
}

TEST_F(TlFixture, ThresholdSuppressesTransfers)
{
    params.freeThreshold = 1; // only transfer when L1 nearly full
    auto tl = make();
    tl.allocate(1);
    tl.onWrite(1);
    tl.onArchReassigned(1);
    tl.tick(1);
    EXPECT_TRUE(tl.inL1(1)); // 3 slots free >= threshold: no move
    tl.allocate(2);
    tl.allocate(3);
    tl.allocate(4); // 0 free < 1
    tl.tick(2);
    EXPECT_FALSE(tl.inL1(1));
}

TEST_F(TlFixture, BandwidthLimitsTransfersPerCycle)
{
    auto tl = make();
    for (PhysReg p = 0; p < 4; ++p) {
        tl.allocate(p);
        tl.onWrite(p);
        tl.onArchReassigned(p);
    }
    tl.tick(1);
    EXPECT_EQ(tl.l1Occupancy(), 2u); // bandwidth 2
    tl.tick(2);
    EXPECT_EQ(tl.l1Occupancy(), 0u);
}

TEST_F(TlFixture, ReassignCancelRevokesEligibility)
{
    auto tl = make();
    tl.allocate(1);
    tl.onWrite(1);
    tl.onArchReassigned(1);
    tl.onArchReassignCancelled(1); // the overwriter was squashed
    tl.tick(1);
    EXPECT_TRUE(tl.inL1(1));
}

TEST_F(TlFixture, RecoveryCopiesBackAndTakesTime)
{
    auto tl = make();
    for (PhysReg p = 0; p < 3; ++p) {
        tl.allocate(p);
        tl.onWrite(p);
        tl.onArchReassigned(p);
    }
    tl.tick(1);
    tl.tick(2);
    ASSERT_EQ(tl.l1Occupancy(), 0u);
    // A squash restores all three mappings.
    const Cycle done = tl.recover({0, 1, 2}, 100);
    // l2Latency (2) + ceil(3/2) batches = 2 + 2.
    EXPECT_EQ(done, 104);
    EXPECT_TRUE(tl.inL1(0));
    EXPECT_TRUE(tl.inL1(1));
    EXPECT_TRUE(tl.inL1(2));
    EXPECT_EQ(stats.scalar("tl_transfers_to_l1").value(), 3u);
}

TEST_F(TlFixture, RecoveryWithNothingDisplacedIsFree)
{
    auto tl = make();
    tl.allocate(1);
    EXPECT_EQ(tl.recover({1}, 50), 50);
}

TEST_F(TlFixture, SquashReleasesSlot)
{
    auto tl = make();
    tl.allocate(1);
    EXPECT_EQ(tl.l1Occupancy(), 1u);
    tl.onSquash(1);
    EXPECT_EQ(tl.l1Occupancy(), 0u);
}

TEST_F(TlFixture, DoubleAllocatePanics)
{
    auto tl = make();
    tl.allocate(1);
    EXPECT_DEATH(tl.allocate(1), "double allocation");
}
