/**
 * @file
 * Property test: the generic tag cache agrees with a straightforward
 * reference LRU model over long random access streams, across
 * geometries from direct-mapped to fully associative.
 */

#include <gtest/gtest.h>

#include <list>
#include <vector>

#include "common/rng.hh"
#include "mem/cache.hh"

using namespace ubrc;
using namespace ubrc::mem;

namespace
{

/** Obviously-correct set-associative LRU model. */
class ReferenceLru
{
  public:
    ReferenceLru(const CacheGeometry &g)
        : lineBytes(g.lineBytes), numSets(g.numSets()),
          assoc(g.assoc), sets(numSets)
    {}

    bool
    lookup(Addr addr)
    {
        auto &s = sets[setOf(addr)];
        const uint64_t line = addr / lineBytes;
        for (auto it = s.begin(); it != s.end(); ++it) {
            if (*it == line) {
                s.erase(it);
                s.push_front(line); // MRU at front
                return true;
            }
        }
        return false;
    }

    bool
    insert(Addr addr, Addr *victim)
    {
        auto &s = sets[setOf(addr)];
        const uint64_t line = addr / lineBytes;
        for (auto it = s.begin(); it != s.end(); ++it) {
            if (*it == line) {
                s.erase(it);
                s.push_front(line);
                return false;
            }
        }
        bool evicted = false;
        if (s.size() == assoc) {
            if (victim)
                *victim = s.back() * lineBytes;
            s.pop_back();
            evicted = true;
        }
        s.push_front(line);
        return evicted;
    }

    bool
    invalidate(Addr addr)
    {
        auto &s = sets[setOf(addr)];
        const uint64_t line = addr / lineBytes;
        for (auto it = s.begin(); it != s.end(); ++it) {
            if (*it == line) {
                s.erase(it);
                return true;
            }
        }
        return false;
    }

    bool
    contains(Addr addr) const
    {
        const auto &s = sets[setOf(addr)];
        const uint64_t line = addr / lineBytes;
        for (uint64_t l : s)
            if (l == line)
                return true;
        return false;
    }

  private:
    size_t setOf(Addr addr) const { return (addr / lineBytes) % numSets; }

    unsigned lineBytes;
    uint64_t numSets;
    size_t assoc;
    std::vector<std::list<uint64_t>> sets;
};

} // namespace

class TagCacheProperty
    : public ::testing::TestWithParam<CacheGeometry>
{
};

TEST_P(TagCacheProperty, AgreesWithReferenceLru)
{
    const CacheGeometry g = GetParam();
    TagCache cache(g);
    ReferenceLru ref(g);
    Rng rng(g.sizeBytes + g.assoc);

    // Confine addresses so sets see heavy reuse and conflict.
    const Addr addr_space = g.sizeBytes * 4;

    for (int step = 0; step < 30000; ++step) {
        const Addr addr = rng.below(addr_space);
        const unsigned op = static_cast<unsigned>(rng.below(100));
        if (op < 50) {
            ASSERT_EQ(cache.lookup(addr), ref.lookup(addr))
                << "lookup @" << addr << " step " << step;
        } else if (op < 85) {
            Addr v1 = ~0ULL, v2 = ~0ULL;
            const bool e1 = cache.insert(addr, &v1);
            const bool e2 = ref.insert(addr, &v2);
            ASSERT_EQ(e1, e2) << "insert @" << addr << " step " << step;
            if (e1) {
                ASSERT_EQ(v1, v2) << "victim @" << addr;
            }
        } else if (op < 95) {
            ASSERT_EQ(cache.invalidate(addr), ref.invalidate(addr))
                << "invalidate @" << addr;
        } else {
            ASSERT_EQ(cache.contains(addr), ref.contains(addr))
                << "contains @" << addr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagCacheProperty,
    ::testing::Values(CacheGeometry{4 * 64, 1, 64},   // direct-mapped
                      CacheGeometry{8 * 64, 2, 64},   // 2-way
                      CacheGeometry{16 * 32, 4, 32},  // 4-way small
                      CacheGeometry{8 * 128, 8, 128}, // fully assoc
                      CacheGeometry{32 * 64, 2, 64}));
