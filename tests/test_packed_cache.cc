/**
 * @file
 * Property tests for the packed SoA cache core: every field of the
 * 64-bit entry word must round-trip at boundary values, the use
 * counter must saturate at the configured maxUse, and the decoupled
 * preg->slot index must stay exact across non-power-of-two
 * geometries, overwrites, and clears.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.hh"
#include "regcache/packed_cache.hh"

using namespace ubrc;
using namespace ubrc::regcache;

// ---------------------------------------------------------------- //
// Word-level round trips
// ---------------------------------------------------------------- //

TEST(PackedWord, RoundTripsBoundaryValues)
{
    const PhysReg pregs[] = {
        0, 1, 127, 128, 255, 256,
        std::numeric_limits<PhysReg>::max(),
    };
    const uint32_t uses[] = {0, 1, 7, 8, 127, 128, 254,
                             packed::maxRemUses};
    for (PhysReg p : pregs) {
        for (uint32_t u : uses) {
            for (bool pin : {false, true}) {
                for (bool valid : {false, true}) {
                    const uint64_t w = packed::pack(p, u, pin, valid);
                    EXPECT_EQ(packed::preg(w), p);
                    EXPECT_EQ(packed::remUses(w), u);
                    EXPECT_EQ(packed::pinned(w), pin);
                    EXPECT_EQ(packed::valid(w), valid);
                }
            }
        }
    }
}

TEST(PackedWord, FieldsDoNotOverlap)
{
    // Each field at its maximum must leave the others untouched.
    const uint64_t w = packed::pack(
        std::numeric_limits<PhysReg>::max(), packed::maxRemUses, true,
        true);
    EXPECT_EQ(packed::preg(w), std::numeric_limits<PhysReg>::max());
    EXPECT_EQ(packed::remUses(w), packed::maxRemUses);
    EXPECT_TRUE(packed::pinned(w));
    EXPECT_TRUE(packed::valid(w));
    // Bits above the valid flag stay zero (spare space is reserved).
    EXPECT_EQ(w >> (packed::validShift + 1), 0u);
}

TEST(PackedWord, UseCountTruncatesToFieldWidth)
{
    // pack() masks the counter to its 8-bit field; callers clamp
    // before packing (place() does), so the mask is a last resort.
    const uint64_t w = packed::pack(3, 0x1ff, false, true);
    EXPECT_EQ(packed::remUses(w), 0xffu);
    EXPECT_EQ(packed::preg(w), 3);
}

TEST(PackedWord, InvalidWordIsAllZero)
{
    EXPECT_EQ(packed::pack(0, 0, false, false), 0u);
}

// ---------------------------------------------------------------- //
// Core behavior at boundaries
// ---------------------------------------------------------------- //

TEST(PackedCore, PlaceSaturatesAtConfiguredMaxUse)
{
    PackedCacheCore<false> core;
    core.reset(4, 2, ReplacementPolicy::UseBased, 7);
    core.place(core.victimIn(0), 10, 1000, false, 0);
    const int slot = core.findInSet(10, 0);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(core.remUsesAt(slot), 7u);
}

TEST(PackedCore, PlaceSaturatesAtFieldLimit)
{
    // A maxUse of 255 is the widest the packed field allows; the
    // counter must hold it exactly and decrement from there.
    PackedCacheCore<false> core;
    core.reset(2, 2, ReplacementPolicy::UseBased, packed::maxRemUses);
    core.place(core.victimIn(0), 5, 0xffffffffu, false, 0);
    const int slot = core.findInSet(5, 0);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(core.remUsesAt(slot), packed::maxRemUses);
    core.decrementUses(slot);
    EXPECT_EQ(core.remUsesAt(slot), packed::maxRemUses - 1);
}

TEST(PackedCore, DecrementStopsAtZeroAndSkipsPinned)
{
    PackedCacheCore<false> core;
    core.reset(2, 2, ReplacementPolicy::UseBased, 7);
    core.place(0, 1, 1, false, 0);
    core.place(1, 2, 3, true, 0);
    core.decrementUses(0);
    core.decrementUses(0); // already zero: stays zero
    EXPECT_EQ(core.remUsesAt(0), 0u);
    core.decrementUses(1);
    EXPECT_EQ(core.remUsesAt(1), 3u); // pinned: untouched
}

TEST(PackedCore, CorruptUsesStaysInsideCounterField)
{
    PackedCacheCore<false> core;
    core.reset(2, 2, ReplacementPolicy::UseBased, packed::maxRemUses);
    core.place(0, 9, 0, false, 0);
    for (unsigned bit = 0; bit < 64; ++bit) {
        const uint64_t before = core.word(0);
        core.corruptUses(0, bit);
        const uint64_t after = core.word(0);
        // Only one bit flipped, and only inside [23:16].
        const uint64_t diff = before ^ after;
        EXPECT_EQ(__builtin_popcountll(diff), 1);
        EXPECT_EQ(diff & ~(packed::useMask << packed::useShift), 0u);
        EXPECT_EQ(core.pregAt(0), 9);
        EXPECT_TRUE(core.validAt(0));
        core.corruptUses(0, bit); // flip back
        EXPECT_EQ(core.word(0), before);
    }
}

TEST(PackedCore, NonPowerOfTwoGeometryIndexesExactly)
{
    // 24 sets x 3 ways: nothing in the core may assume pow2 set
    // counts or associativity. Fill every slot with a distinct preg
    // and check both probes find each exactly once.
    PackedCacheCore<false> core;
    core.reset(24, 3, ReplacementPolicy::UseBased, 7);
    ASSERT_EQ(core.numSlots(), 72u);
    PhysReg next = 100;
    for (unsigned set = 0; set < 24; ++set) {
        for (unsigned way = 0; way < 3; ++way) {
            const int victim = core.victimIn(set);
            EXPECT_EQ(core.setOf(victim), set);
            core.place(victim, next++, way + 1, false, 0);
        }
    }
    next = 100;
    for (unsigned set = 0; set < 24; ++set) {
        for (unsigned way = 0; way < 3; ++way, ++next) {
            const int slot = core.findInSet(next, set);
            ASSERT_GE(slot, 0);
            EXPECT_EQ(core.pregAt(slot), next);
            EXPECT_EQ(core.setOf(slot), set);
            EXPECT_EQ(core.findIndexed(next), slot);
            // A probe against the wrong set misses: the index is
            // decoupled from the preg number.
            EXPECT_EQ(core.findInSet(next, (set + 1) % 24), -1);
        }
    }
}

TEST(PackedCore, IndexSurvivesClearAndReplacement)
{
    PackedCacheCore<false> core;
    core.reset(1, 2, ReplacementPolicy::UseBased, 7);
    core.place(0, 10, 1, false, 0);
    core.place(1, 11, 5, false, 0);
    EXPECT_EQ(core.findIndexed(10), 0);
    core.clear(0);
    EXPECT_EQ(core.findIndexed(10), -1);
    EXPECT_EQ(core.findIndexed(11), 1);
    // Reuse the cleared slot for a different preg: old mapping must
    // not resurrect.
    core.place(0, 12, 2, false, 0);
    EXPECT_EQ(core.findIndexed(10), -1);
    EXPECT_EQ(core.findIndexed(12), 0);
}

TEST(PackedCore, AliasedPlacementFallsBackToWayScan)
{
    // The same preg planted in two sets (legal for unit tests and
    // torture harnesses): the indexed probe names the most recent
    // placement, but set-restricted probes must still find both.
    PackedCacheCore<false> core;
    core.reset(4, 2, ReplacementPolicy::UseBased, 7);
    core.place(core.victimIn(0), 42, 3, false, 0);
    core.place(core.victimIn(2), 42, 5, false, 0);
    const int s0 = core.findInSet(42, 0);
    const int s2 = core.findInSet(42, 2);
    ASSERT_GE(s0, 0);
    ASSERT_GE(s2, 0);
    EXPECT_EQ(core.setOf(s0), 0u);
    EXPECT_EQ(core.setOf(s2), 2u);
    EXPECT_EQ(core.remUsesAt(s0), 3u);
    EXPECT_EQ(core.remUsesAt(s2), 5u);
}

TEST(PackedCore, RandomizedWordLaneAgreement)
{
    // Drive a single-set core with random places/clears/decrements
    // and check the packed lanes always agree with a straight-line
    // shadow model of the word fields.
    PackedCacheCore<false> core;
    const unsigned assoc = 5; // non-pow2 on purpose
    core.reset(1, assoc, ReplacementPolicy::UseBased, 200);
    struct Ref
    {
        PhysReg preg = 0;
        uint32_t uses = 0;
        bool pinned = false;
        bool valid = false;
    };
    std::vector<Ref> ref(assoc);
    Rng rng(20260809);
    for (int step = 0; step < 5000; ++step) {
        const int slot = int(rng.below(assoc));
        const unsigned op = unsigned(rng.below(3));
        if (op == 0) {
            const PhysReg p = PhysReg(rng.below(1000));
            const uint32_t u = uint32_t(rng.below(400));
            const bool pin = rng.chance(0.2);
            core.clear(slot);
            core.place(slot, p, u, pin, Cycle(step));
            ref[size_t(slot)] = {p, u < 200 ? u : 200, pin, true};
        } else if (op == 1) {
            core.clear(slot);
            ref[size_t(slot)] = {};
        } else if (ref[size_t(slot)].valid) {
            core.decrementUses(slot);
            auto &r = ref[size_t(slot)];
            if (!r.pinned && r.uses > 0)
                --r.uses;
        }
        for (unsigned w = 0; w < assoc; ++w) {
            const auto &r = ref[w];
            ASSERT_EQ(core.validAt(int(w)), r.valid) << step;
            if (r.valid) {
                ASSERT_EQ(core.pregAt(int(w)), r.preg) << step;
                ASSERT_EQ(core.remUsesAt(int(w)), r.uses) << step;
                ASSERT_EQ(core.pinnedAt(int(w)), r.pinned) << step;
            }
        }
    }
}
