/**
 * @file
 * Unit tests for bit utilities.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

using namespace ubrc;

TEST(BitUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 63));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 63) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(bits(0b1010, 3, 1), 0b101u);
}

TEST(BitUtil, MixHashSpreads)
{
    // Nearby keys should map to very different hashes.
    const uint64_t h1 = mixHash(1);
    const uint64_t h2 = mixHash(2);
    EXPECT_NE(h1, h2);
    int diff_bits = __builtin_popcountll(h1 ^ h2);
    EXPECT_GT(diff_bits, 10);
}
