/**
 * @file
 * Determinism regression tests.
 *
 * The simulator is a pure function of (configuration, workload seed):
 * two runs of the same pair must produce byte-identical statistics,
 * and the parallel suite runner must merge into exactly the result a
 * serial sweep produces — including contained failures.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::sim;

namespace
{

std::string
dumpFor(const SimConfig &base, const std::string &workload,
        uint64_t insts)
{
    SimConfig cfg = base;
    cfg.maxInsts = insts;
    cfg.validate();
    const workload::Workload w = workload::buildWorkload(workload);
    core::Processor proc(cfg, w);
    proc.run();
    return proc.statsDump();
}

void
expectSuitesEqual(const SuiteResult &a, const SuiteResult &b)
{
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i) {
        SCOPED_TRACE(a.runs[i].workload);
        EXPECT_EQ(a.runs[i].workload, b.runs[i].workload);
        EXPECT_EQ(a.runs[i].failed, b.runs[i].failed);
        EXPECT_EQ(static_cast<int>(a.runs[i].errorKind),
                  static_cast<int>(b.runs[i].errorKind));
        EXPECT_EQ(a.runs[i].error, b.runs[i].error);

        const core::SimResult &ra = a.runs[i].result;
        const core::SimResult &rb = b.runs[i].result;
        EXPECT_EQ(ra.cycles, rb.cycles);
        EXPECT_EQ(ra.instsRetired, rb.instsRetired);
        EXPECT_EQ(ra.ipc, rb.ipc); // bit-exact, not approximate
        EXPECT_EQ(ra.opBypass, rb.opBypass);
        EXPECT_EQ(ra.opCache, rb.opCache);
        EXPECT_EQ(ra.opFile, rb.opFile);
        EXPECT_EQ(ra.rcMisses, rb.rcMisses);
        EXPECT_EQ(ra.rcInserts, rb.rcInserts);
        EXPECT_EQ(ra.rcFills, rb.rcFills);
        EXPECT_EQ(ra.writesFiltered, rb.writesFiltered);
        EXPECT_EQ(ra.miniReplays, rb.miniReplays);
        EXPECT_EQ(ra.branchMispredicts, rb.branchMispredicts);
        EXPECT_EQ(ra.douAccuracy, rb.douAccuracy);
    }
    EXPECT_EQ(a.geomeanIpc(), b.geomeanIpc());
    EXPECT_EQ(a.failureSummary(), b.failureSummary());
}

} // namespace

TEST(Determinism, CachedSchemeRepeatsExactly)
{
    const std::string a = dumpFor(SimConfig::useBasedCache(), "gzip",
                                  20000);
    const std::string b = dumpFor(SimConfig::useBasedCache(), "gzip",
                                  20000);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(Determinism, MonolithicSchemeRepeatsExactly)
{
    const std::string a = dumpFor(SimConfig::monolithic(3), "crafty",
                                  20000);
    const std::string b = dumpFor(SimConfig::monolithic(3), "crafty",
                                  20000);
    EXPECT_EQ(a, b);
}

TEST(Determinism, TwoLevelSchemeRepeatsExactly)
{
    const std::string a = dumpFor(SimConfig::twoLevelFile(64), "vpr",
                                  20000);
    const std::string b = dumpFor(SimConfig::twoLevelFile(64), "vpr",
                                  20000);
    EXPECT_EQ(a, b);
}

TEST(Determinism, ParallelSuiteMatchesSerial)
{
    const std::vector<std::string> names = {"gzip", "crafty", "vpr",
                                            "eon"};
    const SimConfig cfg = SimConfig::useBasedCache();
    const SuiteResult serial = runSuite(cfg, names, {}, 15000, 1);
    const SuiteResult par = runSuite(cfg, names, {}, 15000, 4);
    ASSERT_EQ(serial.numFailed(), 0u);
    expectSuitesEqual(serial, par);
}

TEST(Determinism, ParallelSuiteWithMoreJobsThanWork)
{
    const std::vector<std::string> names = {"gzip", "bzip2"};
    const SimConfig cfg = SimConfig::useBasedCache();
    const SuiteResult serial = runSuite(cfg, names, {}, 10000, 1);
    const SuiteResult par = runSuite(cfg, names, {}, 10000, 16);
    expectSuitesEqual(serial, par);
}

TEST(Determinism, ParallelSuiteContainsFailuresIdentically)
{
    // A watchdog shorter than a DRAM round trip trips on the first
    // memory miss that blocks the ROB head, so these runs fail
    // deterministically; containment must merge identically.
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.watchdogCycles = 100;
    const std::vector<std::string> names = {"gzip", "mcf", "twolf"};
    const SuiteResult serial = runSuite(cfg, names, {}, 50000, 1);
    const SuiteResult par = runSuite(cfg, names, {}, 50000, 3);
    EXPECT_GT(serial.numFailed(), 0u);
    expectSuitesEqual(serial, par);
}
