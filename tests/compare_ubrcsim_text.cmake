# Byte-identity check for the default ubrcsim text report.
#
# Runs `ubrcsim --workload gzip --insts 20000 --stats-format text` and
# compares its stdout byte-for-byte against the committed golden
# capture (tests/golden/ubrcsim_gzip_text.txt, recorded before the
# structured-results refactor). Invoked by ctest as:
#
#   cmake -DUBRCSIM=<binary> -DGOLDEN=<golden file> -P this_script

if(NOT UBRCSIM OR NOT GOLDEN)
    message(FATAL_ERROR "need -DUBRCSIM=<binary> -DGOLDEN=<file>")
endif()

execute_process(
    COMMAND ${UBRCSIM} --workload gzip --insts 20000 --stats-format text
    OUTPUT_VARIABLE actual
    ERROR_VARIABLE errout
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ubrcsim exited with ${rc}: ${errout}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
    file(WRITE ${GOLDEN}.actual "${actual}")
    message(FATAL_ERROR
        "ubrcsim text output is no longer byte-identical to "
        "${GOLDEN}; actual output written to ${GOLDEN}.actual")
endif()
