/**
 * @file
 * Tests for the operand-event trace format: wire encode/decode
 * round-trips, the skip-mask decoder, container robustness against
 * corruption (truncation, CRC flips, version skew, bad magic), and a
 * record→write→load round-trip property over every default-suite
 * workload.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace_io.hh"
#include "sim/runner.hh"
#include "sim/sim_error.hh"
#include "trace/trace_format.hh"
#include "trace/trace_replay.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::trace;

namespace
{

/** An event stream exercising every kind and encoding edge. */
std::vector<TraceEvent>
sampleEvents()
{
    std::vector<TraceEvent> ev;
    auto push = [&](Cycle tick, EventKind kind, Cycle arg, uint64_t a,
                    uint64_t b = 0, uint64_t c = 0, uint64_t d = 0) {
        TraceEvent e;
        e.tick = tick;
        e.kind = kind;
        e.arg = arg;
        e.a = a;
        e.b = b;
        e.c = c;
        e.d = d;
        ev.push_back(e);
    };
    // Construction-time events at tick 0.
    push(0, EventKind::InitialValue, 0, 3);
    push(0, EventKind::InitialValue, 0, 511);
    // Same-tick run, multi-byte varint args (pc, ctrl).
    push(5, EventKind::AllocDest, 5, 42, 0x400123456789ull,
         0xfedcba9876543210ull);
    push(5, EventKind::ConsumerRenamed, 5, 42, 3, 0x400123456789ull,
         0xfedcba9876543210ull);
    push(5, EventKind::BypassRead, 5, 42, 1);
    // arg < tick encodes a negative zigzag delta.
    push(9, EventKind::ReadOperand, 7, 42);
    push(9, EventKind::OperandMiss, 7, 42);
    // arg > tick (fill completes later than delivery).
    push(12, EventKind::Fill, 15, 42);
    push(12, EventKind::ConsumerDone, 12, 42);
    push(13, EventKind::ValueProduced, 13, 42);
    push(14, EventKind::InsertDecision, 14, 42);
    push(20, EventKind::ArchReassigned, 20, 42);
    push(20, EventKind::ArchReassignCancelled, 20, 42);
    push(21, EventKind::ProducerRetired, 21, 42);
    push(30, EventKind::ValueFreed, 30, 42, 0x400123456789ull,
         0xfedcba9876543210ull, 4);
    push(31, EventKind::DestSquashed, 31, 99);
    // Register list payload.
    TraceEvent rec;
    rec.tick = 40;
    rec.kind = EventKind::RecoverMappings;
    rec.arg = 41;
    rec.regs = {0, 7, 511, 42};
    ev.push_back(rec);
    push(1000000, EventKind::ReadOperand, 999999, 1);
    return ev;
}

} // namespace

TEST(TraceFormat, EncodeDecodeRoundTrip)
{
    const std::vector<TraceEvent> in = sampleEvents();
    const std::string wire = encodeEvents(in);
    const std::vector<TraceEvent> out = decodeEvents(wire);
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out[i], in[i]) << "event " << i;
    // Re-encoding the decoded stream is byte-identical.
    EXPECT_EQ(encodeEvents(out), wire);
}

TEST(TraceFormat, AppendEventMatchesEncodeEvents)
{
    const std::vector<TraceEvent> in = sampleEvents();
    std::string streamed;
    Cycle prev = 0;
    for (const auto &e : in)
        appendEvent(streamed, e, prev);
    EXPECT_EQ(streamed, encodeEvents(in));
}

TEST(TraceFormat, SkipMaskDropsKindsButKeepsTickChain)
{
    const std::vector<TraceEvent> in = sampleEvents();
    const std::string wire = encodeEvents(in);
    const uint32_t mask =
        (1u << unsigned(EventKind::ConsumerDone)) |
        (1u << unsigned(EventKind::ProducerRetired)) |
        (1u << unsigned(EventKind::RecoverMappings));
    EventDecoder dec(wire);
    dec.setSkipMask(mask);
    std::vector<TraceEvent> out;
    TraceEvent e;
    while (dec.next(e))
        out.push_back(e);
    std::vector<TraceEvent> want;
    for (const auto &ev : in)
        if (!(mask & (1u << unsigned(ev.kind))))
            want.push_back(ev);
    ASSERT_EQ(out.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(out[i], want[i]) << "event " << i;
}

TEST(TraceFormat, DecoderRejectsUnknownKind)
{
    std::string wire;
    traceio::putVarint(wire, 1);  // delta tick
    wire.push_back(char(0x7e)); // kind 126: undefined
    traceio::putZigzag(wire, 0);
    traceio::putVarint(wire, 0);
    EXPECT_THROW(decodeEvents(wire), traceio::FormatError);
}

TEST(TraceFormat, DecoderRejectsTruncation)
{
    const std::string wire = encodeEvents(sampleEvents());
    // Chopping anywhere inside the stream must throw, never crash or
    // loop. (A cut exactly on an event boundary is a legal shorter
    // stream — skip those.)
    const std::vector<TraceEvent> all = decodeEvents(wire);
    size_t boundaries = 0;
    for (size_t cut = 1; cut < wire.size(); ++cut) {
        try {
            const auto partial =
                decodeEvents(wire.substr(0, cut));
            EXPECT_LT(partial.size(), all.size());
            ++boundaries;
        } catch (const traceio::FormatError &) {
            // expected for mid-event cuts
        }
    }
    EXPECT_LT(boundaries, wire.size() - 1);
}

TEST(TraceFormat, DecoderRejectsOverlongVarint)
{
    std::string wire(11, char(0x80)); // varint never terminates
    EXPECT_THROW(decodeEvents(wire), traceio::FormatError);
}

TEST(TraceFormat, DecoderRejectsHugeRecoverCount)
{
    std::string wire;
    traceio::putVarint(wire, 0);
    wire.push_back(char(EventKind::RecoverMappings));
    traceio::putZigzag(wire, 0);
    traceio::putVarint(wire, 1u << 30); // count >> remaining bytes
    EXPECT_THROW(decodeEvents(wire), traceio::FormatError);
    // The skip path must apply the same bound.
    EventDecoder dec(wire);
    dec.setSkipMask(1u << unsigned(EventKind::RecoverMappings));
    TraceEvent e;
    EXPECT_THROW(dec.next(e), traceio::FormatError);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("ubrc_trace_fmt_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
        sim::SimConfig cfg = sim::SimConfig::useBasedCache();
        cfg.traceMode = sim::TraceMode::Record;
        cfg.traceDir = dir.string();
        sim::runOne(cfg, workload::buildWorkload("gzip"), 20000);
        path = traceFilePath(dir.string(), "gzip");
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        bytes = ss.str();
        ASSERT_GT(bytes.size(), 64u);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir);
    }

    std::string
    writeVariant(const std::string &name,
                 const std::string &content) const
    {
        const std::string p = (dir / name).string();
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out << content;
        return p;
    }

    std::filesystem::path dir;
    std::string path;
    std::string bytes;
};

TEST_F(TraceFileTest, LoadsCleanFile)
{
    const RecordedTrace t = loadTrace(path);
    EXPECT_EQ(t.version, traceVersion);
    EXPECT_EQ(t.meta.workload, "gzip");
    EXPECT_FALSE(t.events.empty());
    EXPECT_FALSE(decodeEvents(t.events).empty());
}

TEST_F(TraceFileTest, MissingFile)
{
    EXPECT_THROW(loadTrace((dir / "nope.ubrct").string()),
                 sim::TraceFormatError);
}

TEST_F(TraceFileTest, EmptyFile)
{
    EXPECT_THROW(loadTrace(writeVariant("empty.ubrct", "")),
                 sim::TraceFormatError);
}

TEST_F(TraceFileTest, BadMagic)
{
    std::string b = bytes;
    b[0] = 'X';
    EXPECT_THROW(loadTrace(writeVariant("magic.ubrct", b)),
                 sim::TraceFormatError);
}

TEST_F(TraceFileTest, VersionSkew)
{
    std::string b = bytes;
    b[8] = char(traceVersion + 1); // u32 LE version field
    try {
        loadTrace(writeVariant("skew.ubrct", b));
        FAIL() << "version skew not detected";
    } catch (const sim::TraceFormatError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(TraceFileTest, TruncationDetected)
{
    // Cut the file at several depths; parsing must throw every time
    // (the END terminator is required, so even a clean section
    // boundary cut is detected).
    for (const size_t cut :
         {size_t(4), size_t(16), bytes.size() / 2, bytes.size() - 1}) {
        const std::string p = writeVariant(
            "trunc.ubrct", bytes.substr(0, cut));
        EXPECT_THROW(loadTrace(p), sim::TraceFormatError)
            << "cut at " << cut;
    }
}

TEST_F(TraceFileTest, CrcFlipDetected)
{
    // Flip one payload bit in the middle of the file: some section's
    // CRC must catch it.
    std::string b = bytes;
    b[b.size() / 2] = char(b[b.size() / 2] ^ 0x40);
    EXPECT_THROW(loadTrace(writeVariant("crc.ubrct", b)),
                 sim::TraceFormatError);
}

TEST_F(TraceFileTest, ProbeMatchesLoad)
{
    const TraceMeta probed = probeTraceFile(path);
    const RecordedTrace loaded = loadTrace(path);
    EXPECT_EQ(probed.workload, loaded.meta.workload);
    EXPECT_EQ(probed.identityHash, loaded.meta.identityHash);
    EXPECT_EQ(probed.cycles, loaded.meta.cycles);
}

/**
 * Record→write→load→decode→re-encode round-trip over every default
 * workload: the re-encoded event stream must be byte-identical to the
 * stored payload, proving encode and decode are exact inverses on
 * real traces (not just hand-built samples).
 */
TEST(TraceFormat, RoundTripEveryDefaultWorkload)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("ubrc_trace_rt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    for (const std::string &name : workload::workloadNames()) {
        sim::SimConfig cfg = sim::SimConfig::useBasedCache();
        cfg.traceMode = sim::TraceMode::Record;
        cfg.traceDir = dir.string();
        sim::runOne(cfg, workload::buildWorkload(name), 8000);
        const RecordedTrace t =
            loadTrace(traceFilePath(dir.string(), name));
        EXPECT_EQ(t.meta.workload, name);
        const std::vector<TraceEvent> events = decodeEvents(t.events);
        EXPECT_FALSE(events.empty()) << name;
        EXPECT_EQ(encodeEvents(events), t.events) << name;
    }
    std::filesystem::remove_all(dir);
}
