/**
 * @file
 * Front-end behaviour tests, observed through architectural effects
 * and the fetch/branch statistics.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::core;

namespace
{

workload::Workload
wl(const std::string &src)
{
    workload::Workload w;
    w.name = "fetch-test";
    w.program = isa::assemble(src);
    w.initMemory = [prog = w.program](SparseMemory &m) {
        isa::loadProgramData(prog, m);
    };
    return w;
}

} // namespace

TEST(Fetch, OneTakenBranchEndsTheBlock)
{
    // A tight 2-instruction loop: every iteration needs its own
    // fetch block (the taken branch ends it), so fetch blocks must
    // be at least the iteration count.
    auto w = wl(R"(
        li   r1, 500
loop:   addi r1, r1, -1
        bnez r1, loop
        halt
    )");
    auto cfg = sim::SimConfig::useBasedCache();
    Processor p(cfg, w);
    p.run();
    EXPECT_GE(p.result().fetchBlocks, 500u);
}

TEST(Fetch, StraightLineCodeFetchesWide)
{
    // 64 independent instructions + halt: 8-wide fetch needs only
    // ~9 blocks (plus icache warmup retries).
    std::string src;
    for (int i = 0; i < 64; ++i)
        src += "addi r" + std::to_string(1 + i % 8) + ", r0, 1\n";
    src += "halt\n";
    auto cfg = sim::SimConfig::useBasedCache();
    auto w = wl(src);
    Processor p(cfg, w);
    p.run();
    EXPECT_LE(p.result().fetchBlocks, 16u);
}

TEST(Fetch, NopsAreSkippedForFree)
{
    // Nops never reach rename: retired count excludes them.
    auto w = wl("nop\nnop\nli r1, 1\nnop\nhalt\n");
    auto cfg = sim::SimConfig::useBasedCache();
    Processor p(cfg, w);
    p.run();
    EXPECT_EQ(p.retiredCount(), 2u); // li + halt
}

TEST(Fetch, NotTakenBranchesDoNotEndBlocks)
{
    // Many never-taken branches in straight line: still few blocks.
    std::string src = "li r1, 1\n";
    for (int i = 0; i < 30; ++i)
        src += "beqz r1, off\n";
    src += "halt\noff: halt\n";
    auto cfg = sim::SimConfig::useBasedCache();
    auto w = wl(src);
    Processor p(cfg, w);
    p.run();
    // 32 instructions at 8 wide: ~4-10 blocks once warm (plus a few
    // for predictor warmup squashes).
    EXPECT_LE(p.result().fetchBlocks, 24u);
}

TEST(Fetch, IndirectTargetsLearned)
{
    // An indirect jump alternating between two targets driven by a
    // counter parity: the cascading predictor learns it.
    auto w = wl(R"(
        .data 0x10000
tab:    .word64 even, odd
        .code
        li   s0, 2000
        li   s1, 0            ; parity accumulator (checks path)
loop:   andi t0, s0, 1
        slli t0, t0, 3
        la   t1, tab
        add  t1, t1, t0
        ld   t2, 0(t1)
        jr   t2
even:   addi s1, s1, 1
        j    next
odd:    addi s1, s1, 2
next:   addi s0, s0, -1
        bnez s0, loop
        halt
    )");
    auto cfg = sim::SimConfig::useBasedCache();
    Processor p(cfg, w);
    p.run();
    const auto r = p.result();
    // Alternating targets are path-predictable: well under the 50%
    // a static predictor would score on the jr alone.
    EXPECT_LT(r.branchMispredictRate, 0.25);
}
