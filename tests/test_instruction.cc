/**
 * @file
 * Tests for the decoded-instruction helpers and the program image.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/instruction.hh"

using namespace ubrc;
using namespace ubrc::isa;

TEST(Instruction, SourceOperandOrder)
{
    Program p = assemble("add r1, r2, r3\nsd r4, 8(r5)\n"
                         "ld r6, 0(r7)\nbeq r8, r9, 0x1000\n");
    ArchReg srcs[2];

    EXPECT_EQ(p.code[0].srcRegs(srcs), 2);
    EXPECT_EQ(srcs[0], 2);
    EXPECT_EQ(srcs[1], 3);

    // Stores: base first, data second.
    EXPECT_EQ(p.code[1].srcRegs(srcs), 2);
    EXPECT_EQ(srcs[0], 5);
    EXPECT_EQ(srcs[1], 4);

    EXPECT_EQ(p.code[2].srcRegs(srcs), 1);
    EXPECT_EQ(srcs[0], 7);

    EXPECT_EQ(p.code[3].srcRegs(srcs), 2);
    EXPECT_EQ(srcs[0], 8);
    EXPECT_EQ(srcs[1], 9);
}

TEST(Instruction, WritesToRegisterZeroHaveNoDest)
{
    Program p = assemble("add r0, r1, r2\nadd r3, r1, r2\n");
    EXPECT_FALSE(p.code[0].hasDest());
    EXPECT_TRUE(p.code[1].hasDest());
}

TEST(Instruction, ClassPredicates)
{
    Program p = assemble("ld r1, 0(r2)\nsd r1, 0(r2)\n"
                         "beq r1, r2, 0x1000\nj 0x1000\n"
                         "nop\nhalt\nadd r1, r2, r3\n");
    EXPECT_TRUE(p.code[0].isLoad());
    EXPECT_TRUE(p.code[0].isMem());
    EXPECT_TRUE(p.code[1].isStore());
    EXPECT_TRUE(p.code[2].isCondBranch());
    EXPECT_TRUE(p.code[2].isBranch());
    EXPECT_TRUE(p.code[3].isBranch());
    EXPECT_FALSE(p.code[3].isCondBranch());
    EXPECT_TRUE(p.code[4].isNop());
    EXPECT_TRUE(p.code[5].isHalt());
    EXPECT_FALSE(p.code[6].isMem());
    EXPECT_FALSE(p.code[6].isBranch());
}

TEST(Program, AddressingHelpers)
{
    Program p = assemble("nop\nnop\nhalt\n", 0x2000);
    EXPECT_EQ(p.codeBase, 0x2000u);
    EXPECT_EQ(p.addrOf(2), 0x2008u);
    EXPECT_TRUE(p.contains(0x2000));
    EXPECT_TRUE(p.contains(0x2008));
    EXPECT_FALSE(p.contains(0x200c)); // past the end
    EXPECT_FALSE(p.contains(0x2001)); // misaligned
    EXPECT_FALSE(p.contains(0x1ffc)); // before the start
    EXPECT_TRUE(p.at(0x2008).isHalt());
}

TEST(Program, EndSymbolIsDefined)
{
    Program p = assemble("nop\nhalt\n");
    EXPECT_EQ(p.symbol("__end"), p.codeBase + 2 * instBytes);
}

TEST(ProgramDeathTest, MissingSymbolIsFatal)
{
    Program p = assemble("halt\n");
    EXPECT_EXIT(p.symbol("missing"), ::testing::ExitedWithCode(1),
                "no symbol");
}
