/**
 * @file
 * Tests for the deterministic fault-injection engine: reproducible
 * fault sites under a fixed seed, value corruption surfacing as a
 * contained checker divergence with forensics attribution, and
 * metadata corruption (use counters) perturbing timing only.
 */

#include <gtest/gtest.h>

#include <string>

#include "inject/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/sim_error.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::sim;

namespace
{

SimConfig
injectingConfig(double rate, uint64_t seed, unsigned targets)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.inject.rate = rate;
    cfg.inject.seed = seed;
    cfg.inject.targets = targets;
    return cfg;
}

} // namespace

TEST(FaultInjection, SamplerIsDeterministic)
{
    inject::FaultParams p;
    p.rate = 0.1;
    p.seed = 99;
    inject::FaultInjector a(p), b(p);
    for (int i = 0; i < 1000; ++i) {
        const auto da = a.sample();
        const auto db = b.sample();
        ASSERT_EQ(da.has_value(), db.has_value());
        if (da) {
            EXPECT_EQ(da->target, db->target);
            EXPECT_EQ(da->site, db->site);
            EXPECT_EQ(da->bit, db->bit);
        }
    }
}

TEST(FaultInjection, SameSeedSameFaultSites)
{
    const auto w = workload::buildWorkload("gzip");
    const SimConfig cfg =
        injectingConfig(0.005, 21, inject::TargetRegCacheValue);

    const RunOutcome a = runOneChecked(cfg, w, 50000);
    const RunOutcome b = runOneChecked(cfg, w, 50000);
    ASSERT_FALSE(a.faults.empty());
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (size_t i = 0; i < a.faults.size(); ++i)
        EXPECT_TRUE(a.faults[i] == b.faults[i])
            << a.faults[i].describe() << " vs "
            << b.faults[i].describe();
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.message, b.message);
}

TEST(FaultInjection, DifferentSeedDifferentFaults)
{
    const auto w = workload::buildWorkload("gzip");
    const RunOutcome a = runOneChecked(
        injectingConfig(0.005, 21, inject::TargetRegCacheValue), w,
        50000);
    const RunOutcome b = runOneChecked(
        injectingConfig(0.005, 22, inject::TargetRegCacheValue), w,
        50000);
    ASSERT_FALSE(a.faults.empty());
    ASSERT_FALSE(b.faults.empty());
    const bool differs =
        a.faults.size() != b.faults.size() ||
        !(a.faults[0] == b.faults[0]);
    EXPECT_TRUE(differs);
}

TEST(FaultInjection, ValueCorruptionCaughtAsDivergence)
{
    // Flipping bits of cached values must surface as a contained
    // checker divergence — not a crash — and the dump must attribute
    // the poisoned structure.
    const auto w = workload::buildWorkload("gzip");
    const SimConfig cfg =
        injectingConfig(0.01, 3, inject::TargetRegCacheValue);

    const RunOutcome out = runOneChecked(cfg, w, 50000);
    ASSERT_FALSE(out.ok);
    EXPECT_EQ(out.kind, ErrorKind::CheckerDivergence);
    EXPECT_NE(out.snapshotText.find("register-cache value"),
              std::string::npos);
    EXPECT_NE(out.snapshotText.find("injected faults"),
              std::string::npos);
    for (const auto &f : out.faults)
        EXPECT_EQ(f.target, inject::TargetRegCacheValue);
}

TEST(FaultInjection, UseCounterFaultsAreTimingOnly)
{
    // Use counters steer insertion/replacement but never carry data,
    // so corrupting them must not diverge from the golden model.
    const auto w = workload::buildWorkload("gzip");
    const SimConfig cfg =
        injectingConfig(0.01, 5, inject::TargetRegCacheUse);

    const RunOutcome out = runOneChecked(cfg, w, 20000);
    EXPECT_TRUE(out.ok) << out.message;
    EXPECT_EQ(out.result.instsRetired, 20000u);
}

TEST(FaultInjection, DouCounterFaultsAreTimingOnly)
{
    const auto w = workload::buildWorkload("gzip");
    const SimConfig cfg =
        injectingConfig(0.01, 5, inject::TargetDouCounter);

    const RunOutcome out = runOneChecked(cfg, w, 20000);
    EXPECT_TRUE(out.ok) << out.message;
    EXPECT_EQ(out.result.instsRetired, 20000u);
}

TEST(FaultInjection, DisabledInjectorLeavesRunClean)
{
    const auto w = workload::buildWorkload("gzip");
    SimConfig cfg = SimConfig::useBasedCache(); // rate 0 by default
    const RunOutcome out = runOneChecked(cfg, w, 20000);
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(out.faults.empty());
}

TEST(FaultInjection, RecordsDescribeTheFault)
{
    inject::FaultRecord r;
    r.cycle = 812;
    r.target = inject::TargetRegCacheValue;
    r.site = 87;
    r.detail = 12;
    r.bit = 5;
    const std::string d = r.describe();
    EXPECT_NE(d.find("812"), std::string::npos);
    EXPECT_NE(d.find("register-cache value"), std::string::npos);
    EXPECT_NE(d.find("87"), std::string::npos);
}
