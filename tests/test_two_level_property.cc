/**
 * @file
 * Stress/property test for the two-level register file: a random but
 * legal event stream (allocate, write, consumers, reassign, squash,
 * free, transfers, recoveries) must preserve the structural
 * invariants — L1 occupancy equals the number of L1-resident
 * allocated registers, never exceeding capacity except transiently
 * during recovery, and transfers only move eligible values.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "regfile/two_level.hh"

using namespace ubrc;
using namespace ubrc::regfile;

namespace
{

struct ShadowReg
{
    bool written = false;
    bool reassigned = false;
    int pendingConsumers = 0;
};

} // namespace

TEST(TwoLevelProperty, RandomStreamKeepsInvariants)
{
    TwoLevelParams params;
    params.l1Entries = 24;
    params.freeThreshold = 6;
    params.bandwidth = 2;
    params.l2Latency = 2;
    stats::StatGroup sg("tl");
    TwoLevelFile tl(params, 128, sg);

    Rng rng(2024);
    std::map<PhysReg, ShadowReg> live; // allocated registers
    Cycle now = 0;

    for (int step = 0; step < 50000; ++step) {
        ++now;
        tl.tick(now);
        const unsigned op = static_cast<unsigned>(rng.below(100));

        if (op < 30) {
            // Allocate a fresh register if capacity permits.
            if (tl.canAllocate()) {
                PhysReg p = 0;
                while (live.count(p))
                    ++p;
                tl.allocate(p);
                live[p] = ShadowReg{};
            }
        } else if (op < 45 && !live.empty()) {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            if (!it->second.written) {
                tl.onWrite(it->first);
                it->second.written = true;
            }
        } else if (op < 60 && !live.empty()) {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            // Consumers can only be renamed while the architectural
            // mapping is current (not yet reassigned).
            if (!it->second.reassigned) {
                tl.onConsumerRenamed(it->first);
                ++it->second.pendingConsumers;
            }
        } else if (op < 75 && !live.empty()) {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            if (it->second.pendingConsumers > 0) {
                tl.onConsumerDone(it->first);
                --it->second.pendingConsumers;
            }
        } else if (op < 85 && !live.empty()) {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            if (!it->second.reassigned) {
                tl.onArchReassigned(it->first);
                it->second.reassigned = true;
            }
        } else if (op < 95 && !live.empty()) {
            // Free a reassigned register (retire of the overwriter).
            for (auto it = live.begin(); it != live.end(); ++it) {
                if (it->second.reassigned) {
                    tl.onFree(it->first);
                    live.erase(it);
                    break;
                }
            }
        } else if (!live.empty()) {
            // A recovery restores a random subset of mappings.
            std::vector<PhysReg> mapped;
            for (const auto &[p, s] : live)
                if (rng.chance(0.5))
                    mapped.push_back(p);
            const Cycle done = tl.recover(mapped, now);
            ASSERT_GE(done, now);
            for (PhysReg p : mapped)
                ASSERT_TRUE(tl.inL1(p)); // copied back
        }

        // Invariant: occupancy counts exactly the L1-resident
        // allocated registers.
        unsigned in_l1 = 0;
        for (const auto &[p, s] : live)
            in_l1 += tl.inL1(p);
        ASSERT_EQ(tl.l1Occupancy(), in_l1) << "step " << step;

        // Invariant: a value lacking any eligibility condition stays
        // in L1 (spot check one).
        if (!live.empty()) {
            const auto &[p, s] = *live.begin();
            if (!s.written || !s.reassigned || s.pendingConsumers > 0) {
                // It may only have left L1 via recover bookkeeping,
                // which always restores to L1 - so it must be there.
                ASSERT_TRUE(tl.inL1(p)) << "step " << step;
            }
        }
    }
}

TEST(TwoLevelProperty, TransfersNeverExceedBandwidthPerTick)
{
    TwoLevelParams params;
    params.l1Entries = 16;
    params.freeThreshold = 16; // always transferring
    params.bandwidth = 3;
    stats::StatGroup sg("tl");
    TwoLevelFile tl(params, 64, sg);

    for (PhysReg p = 0; p < 12; ++p) {
        tl.allocate(p);
        tl.onWrite(p);
        tl.onArchReassigned(p);
    }
    uint64_t prev = 0;
    for (Cycle c = 1; c <= 6; ++c) {
        tl.tick(c);
        const uint64_t total = sg.scalar("tl_transfers_to_l2").value();
        EXPECT_LE(total - prev, params.bandwidth);
        prev = total;
    }
    EXPECT_EQ(prev, 12u);
}
