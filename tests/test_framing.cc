/**
 * @file
 * Tests for the NDJSON framing layer (common/framing.hh): frame
 * delivery, EOF handling, oversized-frame resync, and writer
 * atomicity under concurrency.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/framing.hh"

using namespace ubrc;
using framing::LineReader;
using framing::LineWriter;
using framing::ReadStatus;

namespace
{

/** Materialize `content` in a temp file and open it for reading. */
class FileFixture
{
  public:
    explicit FileFixture(const std::string &content)
    {
        char tmpl[] = "/tmp/ubrc_framing_XXXXXX";
        fd_ = ::mkstemp(tmpl);
        EXPECT_GE(fd_, 0);
        path_ = tmpl;
        EXPECT_EQ(::write(fd_, content.data(), content.size()),
                  static_cast<ssize_t>(content.size()));
        EXPECT_EQ(::lseek(fd_, 0, SEEK_SET), 0);
    }

    ~FileFixture()
    {
        ::close(fd_);
        ::unlink(path_.c_str());
    }

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace

TEST(Framing, DeliversFramesInOrder)
{
    FileFixture f("alpha\nbeta\n\ngamma\n");
    LineReader r(f.fd());
    std::string line;

    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "alpha");
    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "beta");
    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, ""); // empty frames are frames
    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "gamma");
    EXPECT_EQ(r.readLine(line), ReadStatus::Eof);
    // Eof is sticky.
    EXPECT_EQ(r.readLine(line), ReadStatus::Eof);
}

TEST(Framing, TrailingUnterminatedLineIsDelivered)
{
    FileFixture f("complete\npartial");
    LineReader r(f.fd());
    std::string line;

    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "complete");
    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "partial");
    EXPECT_EQ(r.readLine(line), ReadStatus::Eof);
}

TEST(Framing, OversizedFrameIsConsumedAndStreamResyncs)
{
    const std::string big(100, 'x');
    FileFixture f("ok1\n" + big + "\nok2\n");
    LineReader r(f.fd(), 16);
    std::string line;

    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "ok1");
    ASSERT_EQ(r.readLine(line), ReadStatus::FrameTooLong);
    EXPECT_EQ(line, std::string(16, 'x')); // diagnostic prefix
    // The stream is usable again at the very next frame.
    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "ok2");
    EXPECT_EQ(r.readLine(line), ReadStatus::Eof);
}

TEST(Framing, OversizedFrameSpanningManyReadsIsBounded)
{
    // Larger than the reader's internal 4 KiB chunk so the discard
    // path streams across several fill() calls.
    const std::string big(64 * 1024, 'y');
    FileFixture f(big + "\nafter\n");
    LineReader r(f.fd(), 32);
    std::string line;

    ASSERT_EQ(r.readLine(line), ReadStatus::FrameTooLong);
    EXPECT_EQ(line, std::string(32, 'y'));
    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "after");
}

TEST(Framing, OversizedFinalFrameWithoutTerminator)
{
    const std::string big(50 * 1024, 'z');
    FileFixture f("first\n" + big); // no trailing newline
    LineReader r(f.fd(), 16);
    std::string line;

    ASSERT_EQ(r.readLine(line), ReadStatus::Ok);
    EXPECT_EQ(line, "first");
    ASSERT_EQ(r.readLine(line), ReadStatus::FrameTooLong);
    EXPECT_EQ(line, std::string(16, 'z'));
    EXPECT_EQ(r.readLine(line), ReadStatus::Eof);
}

TEST(Framing, WriterFramesNeverInterleave)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    constexpr int kThreads = 4;
    constexpr int kLines = 64;
    LineWriter w(fds[1]);

    // A reader drains concurrently so the pipe cannot fill up.
    // These threads ARE the subject under test (concurrent framing),
    // not simulation work. ubrc-lint: allow-file(raw-thread)
    std::vector<std::string> got;
    std::thread reader([&] {
        LineReader r(fds[0]);
        std::string line;
        while (r.readLine(line) == ReadStatus::Ok)
            got.push_back(line);
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&w, t] {
            for (int i = 0; i < kLines; ++i) {
                // Long enough to tempt a partial write.
                const std::string frame =
                    "t" + std::to_string(t) + ":" +
                    std::to_string(i) + ":" + std::string(512, 'a' + t);
                EXPECT_TRUE(w.writeLine(frame));
            }
        });
    }
    for (auto &t : writers)
        t.join();
    ::close(fds[1]);
    reader.join();
    ::close(fds[0]);

    // Every frame arrives exactly once and intact.
    ASSERT_EQ(got.size(), size_t(kThreads * kLines));
    std::set<std::string> unique(got.begin(), got.end());
    EXPECT_EQ(unique.size(), got.size());
    for (const auto &line : got) {
        const size_t c1 = line.find(':');
        const size_t c2 = line.find(':', c1 + 1);
        ASSERT_NE(c2, std::string::npos) << line.substr(0, 40);
        const int t = std::atoi(line.c_str() + 1);
        EXPECT_EQ(line.substr(c2 + 1),
                  std::string(512, 'a' + t));
    }
}
