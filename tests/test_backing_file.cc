/**
 * @file
 * Unit tests for the backing register file port model (Section 2.2).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "regfile/backing_file.hh"

using namespace ubrc;
using namespace ubrc::regfile;

TEST(BackingFile, WriteCompletionTime)
{
    stats::StatGroup sg("rf");
    BackingFile bf(2, sg);
    EXPECT_EQ(bf.noteWrite(100), 102);
}

TEST(BackingFile, ReadLatencyFromFreePort)
{
    stats::StatGroup sg("rf");
    BackingFile bf(2, sg);
    // Value has long been in the file; read takes the full latency.
    EXPECT_EQ(bf.scheduleRead(50, 0), 51); // 50 + 2 - 1
}

TEST(BackingFile, SinglePortSerializesReads)
{
    stats::StatGroup sg("rf");
    BackingFile bf(2, sg);
    const Cycle r1 = bf.scheduleRead(10, 0);
    const Cycle r2 = bf.scheduleRead(10, 0);
    const Cycle r3 = bf.scheduleRead(10, 0);
    EXPECT_EQ(r1, 11);
    EXPECT_EQ(r2, 12); // port busy at 10
    EXPECT_EQ(r3, 13);
}

TEST(BackingFile, ReadWaitsForWriteCompletion)
{
    stats::StatGroup sg("rf");
    BackingFile bf(2, sg);
    const Cycle write_done = bf.noteWrite(100); // 102
    // A read racing the in-flight write returns no earlier than the
    // write completes.
    EXPECT_EQ(bf.scheduleRead(100, write_done), 102);
}

TEST(BackingFile, CountsAccesses)
{
    stats::StatGroup sg("rf");
    BackingFile bf(2, sg);
    bf.noteWrite(1);
    bf.noteWrite(2);
    bf.scheduleRead(5, 0);
    EXPECT_EQ(sg.scalar("backing_writes").value(), 2u);
    EXPECT_EQ(sg.scalar("backing_reads").value(), 1u);
}
