/**
 * @file
 * Consistency tests over the whole opcode table: every opcode's
 * static properties must be mutually coherent, since the rename,
 * issue, and execute stages all key off them.
 */

#include <gtest/gtest.h>

#include "isa/opcodes.hh"

using namespace ubrc::isa;

namespace
{

std::vector<Opcode>
allOpcodes()
{
    std::vector<Opcode> v;
    for (size_t i = 0; i < static_cast<size_t>(Opcode::NUM_OPCODES);
         ++i)
        v.push_back(static_cast<Opcode>(i));
    return v;
}

} // namespace

class OpcodeTable : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(OpcodeTable, PropertiesAreCoherent)
{
    const OpInfo &oi = opInfo(GetParam());

    ASSERT_NE(oi.mnemonic, nullptr);
    EXPECT_GT(std::string(oi.mnemonic).size(), 0u);
    EXPECT_LE(oi.numSrcs, 2u);

    if (oi.isLoad) {
        EXPECT_TRUE(oi.hasDest);
        EXPECT_EQ(oi.numSrcs, 1u); // address base
        EXPECT_GT(oi.memSize, 0u);
        EXPECT_EQ(oi.cls, OpClass::Load);
        EXPECT_FALSE(oi.isStore);
        EXPECT_FALSE(oi.isBranch);
    }
    if (oi.isStore) {
        EXPECT_FALSE(oi.hasDest);
        EXPECT_EQ(oi.numSrcs, 2u); // base + data
        EXPECT_GT(oi.memSize, 0u);
        EXPECT_EQ(oi.cls, OpClass::Store);
        EXPECT_FALSE(oi.isBranch);
    }
    if (oi.isCondBranch) {
        EXPECT_TRUE(oi.isBranch);
        EXPECT_EQ(oi.numSrcs, 2u);
        EXPECT_FALSE(oi.hasDest);
        EXPECT_TRUE(oi.hasImm); // target
    }
    if (oi.isBranch) {
        EXPECT_EQ(oi.cls, OpClass::Branch);
    }
    if (oi.isIndirect) {
        EXPECT_TRUE(oi.isBranch);
        EXPECT_GE(oi.numSrcs, 1u); // target register
    }
    if (oi.memSize > 0) {
        EXPECT_TRUE(oi.isLoad || oi.isStore);
    }
    if (oi.memSigned) {
        EXPECT_TRUE(oi.isLoad);
    }
    if (oi.cls == OpClass::Nop) {
        EXPECT_FALSE(oi.hasDest);
        EXPECT_EQ(oi.numSrcs, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeTable, ::testing::ValuesIn(allOpcodes()),
    [](const auto &param_info) {
        std::string name = opInfo(param_info.param).mnemonic;
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(OpcodeTable, MnemonicsAreUnique)
{
    std::set<std::string> seen;
    for (Opcode op : allOpcodes())
        EXPECT_TRUE(seen.insert(opInfo(op).mnemonic).second)
            << opInfo(op).mnemonic;
}

TEST(OpcodeTable, MemorySizesArePowersOfTwo)
{
    for (Opcode op : allOpcodes()) {
        const OpInfo &oi = opInfo(op);
        if (oi.memSize) {
            EXPECT_TRUE(oi.memSize == 1 || oi.memSize == 4 ||
                        oi.memSize == 8)
                << oi.mnemonic;
        }
    }
}
