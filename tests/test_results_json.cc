/**
 * @file
 * Tests for the versioned results JSON schema (sim/results_json.hh)
 * and for StatGroup's typed visitation/serialization: schema-stable
 * keys, escaping of workload and error strings, distribution buckets,
 * and the all-failed-suite null-aggregate guarantee.
 */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/stats.hh"
#include "sim/results_json.hh"
#include "sim/sim_error.hh"

using namespace ubrc;

namespace
{

core::SimResult
sampleResult(double ipc)
{
    core::SimResult r;
    r.cycles = 1000;
    r.instsRetired = static_cast<uint64_t>(ipc * 1000);
    r.ipc = ipc;
    r.missPerOperand = 0.05;
    r.opBypass = 10;
    r.opCache = 20;
    r.opFile = 5;
    return r;
}

} // namespace

TEST(StatGroupJson, SectionsAndValues)
{
    stats::StatGroup g("core");
    g.scalar("insts") += 42;
    g.mean("occupancy").sample(3.0);
    g.mean("occupancy").sample(5.0);
    auto &d = g.distribution("lifetime", 16);
    d.sample(2);
    d.sample(2);
    d.sample(9);

    const json::Value v = json::parse(g.toJson());
    EXPECT_EQ(v.at("group").string, "core");
    EXPECT_DOUBLE_EQ(v.at("scalars").at("insts").number, 42.0);
    const json::Value &occ = v.at("means").at("occupancy");
    EXPECT_DOUBLE_EQ(occ.at("value").number, 4.0);
    EXPECT_DOUBLE_EQ(occ.at("count").number, 2.0);
    const json::Value &life = v.at("distributions").at("lifetime");
    EXPECT_DOUBLE_EQ(life.at("count").number, 3.0);
    EXPECT_DOUBLE_EQ(life.at("p50").number, 2.0);
    // Buckets are sparse [value, weight] pairs: only 2 and 9 sampled.
    const auto &buckets = life.at("buckets").array;
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_DOUBLE_EQ(buckets[0].array[0].number, 2.0);
    EXPECT_DOUBLE_EQ(buckets[0].array[1].number, 2.0);
    EXPECT_DOUBLE_EQ(buckets[1].array[0].number, 9.0);
    EXPECT_DOUBLE_EQ(buckets[1].array[1].number, 1.0);
}

TEST(StatGroupVisit, CanonicalOrder)
{
    stats::StatGroup g("g");
    g.scalar("b_scalar");
    g.scalar("a_scalar");
    g.mean("m");
    g.distribution("d", 4);

    struct Recorder : stats::StatVisitor
    {
        std::vector<std::string> names;
        void
        visitScalar(const std::string &n, const stats::Scalar &) override
        {
            names.push_back("s:" + n);
        }
        void
        visitMean(const std::string &n, const stats::Mean &) override
        {
            names.push_back("m:" + n);
        }
        void
        visitDistribution(const std::string &n,
                          const stats::Distribution &) override
        {
            names.push_back("d:" + n);
        }
    } rec;
    g.visit(rec);
    // Scalars (name-sorted), then means, then distributions — the
    // same canonical order as the legacy text dump.
    const std::vector<std::string> expected = {"s:a_scalar",
                                               "s:b_scalar", "m:m",
                                               "d:d"};
    EXPECT_EQ(rec.names, expected);
}

TEST(ResultsJson, SimResultSchemaStableKeys)
{
    json::Writer w;
    sim::writeSimResult(w, sampleResult(1.5));
    const json::Value v = json::parse(w.str());

    EXPECT_DOUBLE_EQ(v.at("cycles").number, 1000.0);
    EXPECT_DOUBLE_EQ(v.at("ipc").number, 1.5);
    // Renaming or removing any of these keys is a schema break and
    // must bump resultsSchemaVersion.
    for (const char *section :
         {"operands", "cache", "bandwidth", "predictors", "lifetimes",
          "replay", "frontend", "supplier"})
        EXPECT_TRUE(v.at(section).isObject()) << section;
    EXPECT_DOUBLE_EQ(v.at("operands").at("bypass").number, 10.0);
    EXPECT_DOUBLE_EQ(v.at("cache").at("miss_per_operand").number,
                     0.05);
    EXPECT_TRUE(v.at("supplier").find("file_reads") != nullptr);
    EXPECT_TRUE(v.at("frontend").find("rename_stalls_regs") !=
                nullptr);
}

TEST(ResultsJson, WorkloadRunEscapesStrings)
{
    sim::WorkloadRun run;
    run.workload = "evil\"name\nwith\tescapes";
    run.failed = true;
    run.errorKind = sim::ErrorKind::Deadlock;
    run.error = "stuck at cycle 7: \"IQ\" full\\drained";

    json::Writer w;
    sim::writeWorkloadRun(w, run);
    const json::Value v = json::parse(w.str());
    EXPECT_EQ(v.at("workload").string, run.workload);
    EXPECT_EQ(v.at("error").at("message").string, run.error);
    EXPECT_EQ(v.at("error").at("kind").string,
              sim::toString(sim::ErrorKind::Deadlock));
    EXPECT_TRUE(v.at("ipc").isNull());
}

TEST(ResultsJson, SuiteAggregates)
{
    sim::SuiteResult s;
    sim::WorkloadRun ok;
    ok.workload = "gzip";
    ok.result = sampleResult(2.0);
    sim::WorkloadRun bad;
    bad.workload = "mcf";
    bad.failed = true;
    bad.errorKind = sim::ErrorKind::CheckerDivergence;
    bad.error = "checker mismatch";
    s.runs = {ok, bad};

    json::Writer w;
    sim::writeSuiteResult(w, s);
    const json::Value v = json::parse(w.str());
    EXPECT_DOUBLE_EQ(v.at("num_runs").number, 2.0);
    EXPECT_DOUBLE_EQ(v.at("num_failed").number, 1.0);
    EXPECT_DOUBLE_EQ(v.at("geomean_ipc").number, 2.0);
    EXPECT_DOUBLE_EQ(v.at("mean_ipc").number, 2.0);
    ASSERT_EQ(v.at("failures").array.size(), 1u);
    EXPECT_EQ(v.at("failures").array[0].at("workload").string, "mcf");
    ASSERT_EQ(v.at("runs").array.size(), 2u);
    EXPECT_FALSE(v.at("runs").array[0].at("failed").boolean);
    EXPECT_TRUE(v.at("runs").array[1].at("failed").boolean);
}

/**
 * Guard for the all-failed bugfix: a sweep where every run failed
 * must serialize its aggregates as null, never as a measured 0.0.
 */
TEST(ResultsJson, AllFailedSuiteSerializesNullAggregates)
{
    sim::SuiteResult s;
    for (const char *name : {"gzip", "mcf"}) {
        sim::WorkloadRun run;
        run.workload = name;
        run.failed = true;
        run.errorKind = sim::ErrorKind::Deadlock;
        run.error = "no retirement";
        s.runs.push_back(run);
    }
    ASSERT_EQ(s.numOk(), 0u);
    // The in-memory accessors still return the 0 sentinel...
    EXPECT_EQ(s.geomeanIpc(), 0.0);

    // ...but the document must say null.
    json::Writer w;
    sim::writeSuiteResult(w, s);
    const json::Value v = json::parse(w.str());
    EXPECT_TRUE(v.at("geomean_ipc").isNull());
    EXPECT_TRUE(v.at("mean_ipc").isNull());
    EXPECT_TRUE(v.at("mean_miss_per_operand").isNull());
    EXPECT_DOUBLE_EQ(v.at("num_failed").number, 2.0);
}

TEST(ResultsJson, RunOutcomeWithFaults)
{
    sim::RunOutcome o;
    o.ok = false;
    o.kind = sim::ErrorKind::CheckerDivergence;
    o.message = "r7 mismatch";
    o.snapshotText = "snapshot";
    o.result = sampleResult(0.9);
    inject::FaultRecord f;
    f.cycle = 812;
    f.site = 87;
    f.detail = 12;
    f.bit = 5;
    o.faults.push_back(f);

    json::Writer w;
    sim::writeRunOutcome(w, o);
    const json::Value v = json::parse(w.str());
    EXPECT_FALSE(v.at("ok").boolean);
    EXPECT_EQ(v.at("error").at("kind").string,
              sim::toString(sim::ErrorKind::CheckerDivergence));
    EXPECT_TRUE(v.at("error").at("has_snapshot").boolean);
    ASSERT_EQ(v.at("faults").array.size(), 1u);
    const json::Value &jf = v.at("faults").array[0];
    EXPECT_DOUBLE_EQ(jf.at("cycle").number, 812.0);
    EXPECT_DOUBLE_EQ(jf.at("bit").number, 5.0);
    EXPECT_EQ(jf.at("text").string, f.describe());
    EXPECT_DOUBLE_EQ(v.at("result").at("ipc").number, 0.9);
}
