/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using ubrc::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, BitsLookUniform)
{
    // Every bit position should be set roughly half the time.
    Rng r(23);
    int counts[64] = {};
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        uint64_t v = r.next();
        for (int b = 0; b < 64; ++b)
            counts[b] += (v >> b) & 1;
    }
    for (int b = 0; b < 64; ++b)
        EXPECT_NEAR(counts[b] / double(n), 0.5, 0.05) << "bit " << b;
}
