/**
 * @file
 * Robustness under squeezed machine resources: the processor must
 * stay architecturally correct (golden checker on) when any window
 * is made tiny, and the corresponding stall statistics must appear.
 * Also covers the oracle (perfect branch prediction) front end.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::sim;

namespace
{

core::SimResult
runSqueezed(SimConfig cfg, const char *wl = "gzip",
            uint64_t insts = 20000)
{
    return runOne(cfg, workload::buildWorkload(wl), insts);
}

} // namespace

TEST(ProcessorLimits, TinyRob)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.robEntries = 16;
    const auto r = runSqueezed(cfg);
    EXPECT_EQ(r.instsRetired, 20000u);
    EXPECT_GT(r.ipc, 0.05);
}

TEST(ProcessorLimits, TinyIssueQueue)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.iqEntries = 8;
    const auto r = runSqueezed(cfg);
    EXPECT_EQ(r.instsRetired, 20000u);
}

TEST(ProcessorLimits, TinyLsq)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.lqEntries = 4;
    cfg.sqEntries = 4;
    const auto r = runSqueezed(cfg, "vortex");
    EXPECT_EQ(r.instsRetired, 20000u);
}

TEST(ProcessorLimits, FewPhysicalRegisters)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.numPhysRegs = 48; // barely above the 32 architectural
    const auto r = runSqueezed(cfg);
    EXPECT_EQ(r.instsRetired, 20000u);
}

TEST(ProcessorLimits, NarrowMachine)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.fetchWidth = 2;
    cfg.renameWidth = 2;
    cfg.issueWidth = 2;
    cfg.retireWidth = 2;
    cfg.maxRetireStores = 1;
    const auto r = runSqueezed(cfg);
    EXPECT_EQ(r.instsRetired, 20000u);
    EXPECT_LE(r.ipc, 2.0);
}

TEST(ProcessorLimits, TinyRegisterCache)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.rc.entries = 4;
    cfg.rc.assoc = 2;
    const auto r = runSqueezed(cfg);
    EXPECT_EQ(r.instsRetired, 20000u);
    EXPECT_GT(r.missPerOperand, 0.02); // a 4-entry cache misses a lot
}

TEST(ProcessorLimits, TinyFrontQueue)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.frontQueueLimit = 8;
    const auto r = runSqueezed(cfg);
    EXPECT_EQ(r.instsRetired, 20000u);
}

TEST(ProcessorLimits, PerformanceMonotoneInWindowSize)
{
    auto small = SimConfig::useBasedCache();
    small.robEntries = 32;
    auto large = SimConfig::useBasedCache();
    const auto rs = runSqueezed(small, "mcf");
    const auto rl = runSqueezed(large, "mcf");
    // mcf's memory-level parallelism needs the big window.
    EXPECT_LT(rs.ipc, rl.ipc);
}

TEST(ProcessorOracle, PerfectPredictionEliminatesMispredicts)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.perfectBranchPrediction = true;
    // vpr's accept/reject branch is unpredictable for real
    // predictors.
    const auto real = runSqueezed(SimConfig::useBasedCache(), "vpr");
    const auto oracle = runSqueezed(cfg, "vpr");
    EXPECT_GT(real.branchMispredicts, 50u);
    EXPECT_LT(oracle.branchMispredicts, real.branchMispredicts / 10);
    EXPECT_GT(oracle.ipc, real.ipc);
}

TEST(ProcessorOracle, StillArchitecturallyChecked)
{
    // The checker runs during oracle mode too; finishing means every
    // retired instruction matched the interpreter.
    for (const char *wl : {"gzip", "parser", "twolf"}) {
        auto cfg = SimConfig::useBasedCache();
        cfg.perfectBranchPrediction = true;
        const auto r = runSqueezed(cfg, wl);
        EXPECT_EQ(r.instsRetired, 20000u) << wl;
    }
}

TEST(ProcessorOracle, WorksWithMonolithicFile)
{
    auto cfg = SimConfig::monolithic(3);
    cfg.perfectBranchPrediction = true;
    const auto r = runSqueezed(cfg);
    EXPECT_EQ(r.instsRetired, 20000u);
}
