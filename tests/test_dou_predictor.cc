/**
 * @file
 * Unit tests for the degree-of-use predictor (Section 3.3).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "regcache/dou_predictor.hh"

using namespace ubrc;
using namespace ubrc::regcache;

namespace
{

struct DouFixture : ::testing::Test
{
    DouFixture() : stats("dou"), pred(DouParams{}, stats) {}

    stats::StatGroup stats;
    DegreeOfUsePredictor pred;
};

} // namespace

TEST_F(DouFixture, NoPredictionWhenCold)
{
    EXPECT_FALSE(pred.predict(0x1000, 0).has_value());
}

TEST_F(DouFixture, ConfidenceGatesPrediction)
{
    const Addr pc = 0x1000;
    pred.train(pc, 0, 3); // confidence 1
    EXPECT_FALSE(pred.predict(pc, 0).has_value());
    pred.train(pc, 0, 3); // confidence 2
    EXPECT_FALSE(pred.predict(pc, 0).has_value());
    pred.train(pc, 0, 3); // confidence 3 (threshold)
    auto p = pred.predict(pc, 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 3u);
}

TEST_F(DouFixture, MispredictionLowersConfidence)
{
    const Addr pc = 0x2000;
    for (int i = 0; i < 4; ++i)
        pred.train(pc, 0, 2);
    ASSERT_TRUE(pred.predict(pc, 0).has_value());
    pred.train(pc, 0, 5); // disagree: confidence drops
    EXPECT_FALSE(pred.predict(pc, 0).has_value());
}

TEST_F(DouFixture, RetrainsAfterRepeatedChanges)
{
    const Addr pc = 0x3000;
    for (int i = 0; i < 4; ++i)
        pred.train(pc, 0, 1);
    // Behaviour changes: after confidence decays to zero, the new
    // value is installed and re-confirmed.
    for (int i = 0; i < 8; ++i)
        pred.train(pc, 0, 6);
    auto p = pred.predict(pc, 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 6u);
}

TEST_F(DouFixture, PredictionsClampToFourBits)
{
    const Addr pc = 0x4000;
    for (int i = 0; i < 4; ++i)
        pred.train(pc, 0, 1000);
    auto p = pred.predict(pc, 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 15u); // 4-bit saturation
}

TEST_F(DouFixture, ControlFlowContextSeparatesInstances)
{
    const Addr pc = 0x5000;
    // Same static instruction, different control-flow contexts with
    // different degrees of use.
    for (int i = 0; i < 4; ++i) {
        pred.train(pc, 0x01, 1);
        pred.train(pc, 0x3e, 4);
    }
    auto p1 = pred.predict(pc, 0x01);
    auto p2 = pred.predict(pc, 0x3e);
    ASSERT_TRUE(p1.has_value());
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(*p1, 1u);
    EXPECT_EQ(*p2, 4u);
}

TEST_F(DouFixture, AccuracyTracksConfidentTraining)
{
    const Addr pc = 0x6000;
    for (int i = 0; i < 10; ++i)
        pred.train(pc, 0, 2);
    EXPECT_DOUBLE_EQ(pred.accuracy(), 1.0);
    // One confident disagreement lowers accuracy below 1.
    pred.train(pc, 0, 9);
    EXPECT_LT(pred.accuracy(), 1.0);
    EXPECT_GT(pred.accuracy(), 0.5);
}

TEST_F(DouFixture, StorageBudgetNearNineKB)
{
    // Table 1: ~9 KB predictor.
    const uint64_t bits = pred.storageBits();
    EXPECT_GT(bits, 6 * 1024 * 8u);
    EXPECT_LT(bits, 11 * 1024 * 8u);
}

TEST_F(DouFixture, ManyPcsCoexist)
{
    for (Addr pc = 0x1000; pc < 0x1000 + 64 * 4; pc += 4)
        for (int i = 0; i < 3; ++i)
            pred.train(pc, 0, (pc >> 2) % 7);
    int correct = 0;
    for (Addr pc = 0x1000; pc < 0x1000 + 64 * 4; pc += 4) {
        auto p = pred.predict(pc, 0);
        if (p && *p == (pc >> 2) % 7)
            ++correct;
    }
    EXPECT_GT(correct, 56); // a few may alias; most must survive
}
