/**
 * @file
 * Workload kernel tests: every kernel assembles, runs to completion
 * on the functional core, and reproduces its C++ reference model's
 * checksum exactly.
 */

#include <gtest/gtest.h>

#include "common/sparse_memory.hh"
#include "isa/functional_core.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::workload;

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, FunctionalChecksumMatchesReference)
{
    const Workload w = buildWorkload(GetParam());
    ASSERT_TRUE(w.hasExpectedResult);
    SparseMemory mem;
    w.initMemory(mem);
    isa::FunctionalCore core(w.program, mem);
    const uint64_t executed = core.run(100'000'000ULL);
    ASSERT_TRUE(core.halted()) << "kernel did not halt";
    EXPECT_EQ(mem.read(w.program.symbol("result"), 8),
              w.expectedResult);
    // Dynamic length in the intended band (roughly 0.3M - 4M).
    EXPECT_GT(executed, 300'000u);
    EXPECT_LT(executed, 4'000'000u);
}

TEST_P(WorkloadTest, SeedChangesDataSet)
{
    WorkloadParams p1, p2;
    p1.seed = 1;
    p2.seed = 2;
    const Workload w1 = buildWorkload(GetParam(), p1);
    const Workload w2 = buildWorkload(GetParam(), p2);
    EXPECT_NE(w1.expectedResult, w2.expectedResult);
}

TEST_P(WorkloadTest, DeterministicAcrossBuilds)
{
    const Workload w1 = buildWorkload(GetParam());
    const Workload w2 = buildWorkload(GetParam());
    EXPECT_EQ(w1.expectedResult, w2.expectedResult);
    EXPECT_EQ(w1.program.code.size(), w2.program.code.size());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &param_info) {
                             return param_info.param;
                         });

TEST(WorkloadRegistry, TwelveKernels)
{
    EXPECT_EQ(workloadNames().size(), 12u);
    EXPECT_EQ(buildAllWorkloads().size(), 12u);
}

TEST(WorkloadRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(buildWorkload("no-such-kernel"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(WorkloadRegistry, DescriptionsPresent)
{
    for (const auto &w : buildAllWorkloads()) {
        EXPECT_FALSE(w.description.empty()) << w.name;
        EXPECT_FALSE(w.program.code.empty()) << w.name;
    }
}
