/**
 * @file
 * Unit tests for the memory hierarchy timing model and store buffer.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/hierarchy.hh"

using namespace ubrc;
using namespace ubrc::mem;

namespace
{

struct HierFixture : ::testing::Test
{
    HierFixture() : stats("mem"), hier(MemConfig{}, stats) {}

    stats::StatGroup stats;
    MemoryHierarchy hier;
};

} // namespace

TEST_F(HierFixture, ColdLoadPaysMemoryLatency)
{
    const Cycle lat = hier.loadAccess(0x100000);
    EXPECT_EQ(lat, hier.config().memLatency);
}

TEST_F(HierFixture, SecondAccessHitsL1)
{
    hier.loadAccess(0x100000);
    EXPECT_EQ(hier.loadAccess(0x100008), 0);
}

TEST_F(HierFixture, L2HitAfterL1Eviction)
{
    // Fill one L1 set (2-way, 32 KB, 64 B lines -> 256 sets) with
    // three conflicting lines; the first then hits in L2 (or the
    // victim buffer).
    const Addr stride = 256 * 64;
    hier.loadAccess(0x0);
    hier.loadAccess(stride);
    hier.loadAccess(2 * stride);
    const Cycle lat = hier.loadAccess(0x0);
    EXPECT_GT(lat, 0);
    EXPECT_LE(lat, hier.config().l2Latency + hier.config().victimLatency);
}

TEST_F(HierFixture, StridePrefetcherHidesStreamMisses)
{
    // Walk sequential lines; after the detector warms, lines should
    // be served from the victim/prefetch buffer at low latency.
    Cycle total_late = 0;
    for (int i = 0; i < 32; ++i) {
        const Cycle lat = hier.loadAccess(0x400000 + i * 64);
        if (i >= 4)
            total_late += lat;
    }
    // Without prefetch this would be 28 * 180; with it, far less.
    EXPECT_LT(total_late, 28 * hier.config().memLatency / 4);
    EXPECT_GT(stats.scalar("prefetch_issued").value(), 0u);
}

TEST_F(HierFixture, IfetchUsesSeparateL1)
{
    hier.loadAccess(0x500000);
    // Same line via ifetch still misses L1I (hits L2).
    const Cycle lat = hier.ifetchAccess(0x500000);
    EXPECT_EQ(lat, hier.config().l2Latency);
    EXPECT_EQ(hier.ifetchAccess(0x500000), 0);
}

TEST_F(HierFixture, StatsCountMisses)
{
    hier.loadAccess(0x600000);
    hier.loadAccess(0x600000);
    EXPECT_EQ(stats.scalar("l1d_misses").value(), 1u);
    EXPECT_EQ(stats.scalar("l1d_accesses").value(), 2u);
}

TEST(StoreBuffer, CoalescesSameLine)
{
    stats::StatGroup sg("mem");
    MemoryHierarchy hier(MemConfig{}, sg);
    StoreBuffer sb(4, 1, hier, 64);
    sb.push(0x1000, 0);
    sb.push(0x1008, 0); // same line: coalesces
    EXPECT_EQ(sb.occupancy(), 1u);
    sb.push(0x1040, 0);
    EXPECT_EQ(sb.occupancy(), 2u);
}

TEST(StoreBuffer, BackpressureWhenFull)
{
    stats::StatGroup sg("mem");
    MemoryHierarchy hier(MemConfig{}, sg);
    StoreBuffer sb(2, 1, hier, 64);
    sb.push(0x0, 0);
    sb.push(0x40, 0);
    EXPECT_FALSE(sb.canAccept(0x80));
    EXPECT_TRUE(sb.canAccept(0x0)); // coalescing slot still open
}

TEST(StoreBuffer, DrainsOverTime)
{
    stats::StatGroup sg("mem");
    MemoryHierarchy hier(MemConfig{}, sg);
    // Warm the lines so drains are L1 hits.
    hier.loadAccess(0x0);
    hier.loadAccess(0x40);
    StoreBuffer sb(4, 1, hier, 64);
    sb.push(0x0, 1);
    sb.push(0x40, 1);
    for (Cycle c = 2; c < 10 && !sb.empty(); ++c)
        sb.tick(c);
    EXPECT_TRUE(sb.empty());
}
