/**
 * @file
 * Tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(ubrc::panic("boom %d", 42), "panic: boom 42");
}

TEST(LogDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(ubrc::fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(Log, WarnDoesNotTerminate)
{
    ubrc::warn("just a warning");
    SUCCEED();
}

TEST(Log, InformRespectsVerbosity)
{
    const int saved = ubrc::logVerbosity;
    ubrc::logVerbosity = 0;
    ubrc::inform("should be suppressed");
    ubrc::logVerbosity = saved;
    SUCCEED();
}
