/**
 * @file
 * Disassembler tests: every instruction form renders, and the text
 * reassembles to the same instruction (round trip).
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disasm.hh"

using namespace ubrc::isa;

namespace
{

const char *allFormsSource = R"(
        add  r1, r2, r3
        addi r4, r5, -7
        li   r6, 123456
        mul  r7, r8, r9
        fxdiv r10, r11, r12
        ld   r13, 8(r14)
        sb   r15, -4(r16)
        beq  r17, r18, 0x1000
        j    0x1000
        jal  r1, 0x1000
        jr   r19
        jalr r20, r21
        nop
        halt
)";

} // namespace

TEST(Disasm, EveryFormRoundTrips)
{
    Program p = assemble(allFormsSource);
    for (const Instruction &inst : p.code) {
        const std::string text = disassemble(inst);
        ASSERT_FALSE(text.empty());
        // Reassemble the single line; j/branch targets print as
        // absolute numbers, which the assembler accepts.
        Program p2;
        ASSERT_NO_THROW(p2 = assemble(text + "\n"))
            << "could not reassemble '" << text << "'";
        ASSERT_EQ(p2.code.size(), 1u) << text;
        const Instruction &r = p2.code[0];
        EXPECT_EQ(r.op, inst.op) << text;
        EXPECT_EQ(r.rd, inst.rd) << text;
        EXPECT_EQ(r.rs1, inst.rs1) << text;
        EXPECT_EQ(r.rs2, inst.rs2) << text;
        EXPECT_EQ(r.imm, inst.imm) << text;
    }
}

TEST(Disasm, WholeProgramListing)
{
    Program p = assemble("nop\nhalt\n");
    const std::string out = disassemble(p);
    EXPECT_NE(out.find("nop"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
    EXPECT_NE(out.find("00001000"), std::string::npos);
}

TEST(Disasm, NegativeOffsets)
{
    Program p = assemble("ld r1, -16(r2)\n");
    EXPECT_NE(disassemble(p.code[0]).find("-16"), std::string::npos);
}
