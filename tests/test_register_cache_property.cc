/**
 * @file
 * Property-based tests: the register cache is driven with long random
 * operation streams and checked against an executable reference model
 * of the paper's semantics, across a sweep of geometries and both
 * replacement policies.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "regcache/register_cache.hh"

using namespace ubrc;
using namespace ubrc::regcache;

namespace
{

/** Straight-line reference model of the cache semantics. */
class ReferenceCache
{
  public:
    ReferenceCache(unsigned entries, unsigned assoc,
                   ReplacementPolicy repl, unsigned max_use)
        : numSets(entries / assoc), assocN(assoc), repl(repl),
          maxUse(max_use), sets(numSets)
    {}

    struct Entry
    {
        PhysReg preg;
        unsigned uses;
        bool pinned;
        uint64_t lastTouch;
    };

    void
    insert(PhysReg preg, unsigned set, unsigned uses, bool pinned)
    {
        auto &s = sets[set];
        if (s.size() == assocN)
            s.erase(s.begin() + victimIndex(s));
        s.push_back({preg, std::min(uses, maxUse), pinned, ++clock});
    }

    void
    fill(PhysReg preg, unsigned set)
    {
        if (find(set, preg))
            return;
        insert(preg, set, 0, false);
    }

    bool
    read(PhysReg preg, unsigned set)
    {
        Entry *e = find(set, preg);
        if (!e)
            return false;
        e->lastTouch = ++clock;
        if (!e->pinned && e->uses > 0)
            --e->uses;
        return true;
    }

    void
    bypass(PhysReg preg, unsigned set)
    {
        Entry *e = find(set, preg);
        if (e && !e->pinned && e->uses > 0)
            --e->uses;
    }

    void
    invalidate(PhysReg preg, unsigned set)
    {
        auto &s = sets[set];
        for (size_t i = 0; i < s.size(); ++i) {
            if (s[i].preg == preg) {
                s.erase(s.begin() + i);
                return;
            }
        }
    }

    bool contains(PhysReg preg, unsigned set) { return find(set, preg); }

    int
    remaining(PhysReg preg, unsigned set)
    {
        Entry *e = find(set, preg);
        return e ? static_cast<int>(e->uses) : -1;
    }

    unsigned
    valid() const
    {
        unsigned n = 0;
        for (const auto &s : sets)
            n += s.size();
        return n;
    }

  private:
    Entry *
    find(unsigned set, PhysReg preg)
    {
        for (auto &e : sets[set])
            if (e.preg == preg)
                return &e;
        return nullptr;
    }

    size_t
    victimIndex(std::vector<Entry> &s) const
    {
        size_t v = 0;
        for (size_t i = 1; i < s.size(); ++i) {
            if (repl == ReplacementPolicy::LRU) {
                if (s[i].lastTouch < s[v].lastTouch)
                    v = i;
            } else {
                const uint64_t iu = s[i].pinned ? ~0ULL : s[i].uses;
                const uint64_t vu = s[v].pinned ? ~0ULL : s[v].uses;
                if (iu < vu ||
                    (iu == vu && s[i].lastTouch < s[v].lastTouch))
                    v = i;
            }
        }
        return v;
    }

    unsigned numSets;
    unsigned assocN;
    ReplacementPolicy repl;
    unsigned maxUse;
    std::vector<std::vector<Entry>> sets;
    uint64_t clock = 0;
};

struct PropertyParam
{
    unsigned entries;
    unsigned assoc;
    ReplacementPolicy repl;
};

class RegCacheProperty : public ::testing::TestWithParam<PropertyParam>
{
  protected:
    // Probe-once shims over the EntryRef surface, matching the old
    // per-call semantics (no-ops / sentinels for absent pregs).
    static bool
    readOnce(RegisterCache &rc, PhysReg preg, unsigned set)
    {
        auto e = rc.lookup(preg, set);
        if (!e)
            return false;
        e.read();
        return true;
    }

    static void
    invalidateIfPresent(RegisterCache &rc, PhysReg preg, unsigned set,
                        Cycle now)
    {
        if (auto e = rc.lookup(preg, set))
            e.invalidate(now);
    }

    static int
    remainingOrSentinel(RegisterCache &rc, PhysReg preg, unsigned set)
    {
        auto e = rc.lookup(preg, set);
        return e ? static_cast<int>(e.remainingUses()) : -1;
    }
};

} // namespace

TEST_P(RegCacheProperty, AgreesWithReferenceModel)
{
    const auto &[entries, assoc, repl] = GetParam();
    stats::StatGroup sg("rc");
    RegCacheParams params;
    params.entries = entries;
    params.assoc = assoc;
    params.replacement = repl;
    RegisterCache rc(params, sg);
    ReferenceCache ref(entries, assoc, repl, params.maxUse);

    Rng rng(entries * 131 + assoc * 7 +
            (repl == ReplacementPolicy::LRU ? 1 : 0));
    const unsigned num_sets = entries / assoc;
    const int num_pregs = 128;
    // Track where each preg was mapped so operations are coherent.
    std::map<PhysReg, unsigned> set_of;

    for (int step = 0; step < 20000; ++step) {
        const PhysReg preg = static_cast<PhysReg>(rng.below(num_pregs));
        const unsigned op = static_cast<unsigned>(rng.below(100));
        const Cycle now = step;

        if (op < 30) {
            // Produce a new value: invalidate any prior incarnation,
            // then insert into a fresh random set.
            if (auto it = set_of.find(preg); it != set_of.end()) {
                invalidateIfPresent(rc, preg, it->second, now);
                ref.invalidate(preg, it->second);
            }
            const unsigned set =
                static_cast<unsigned>(rng.below(num_sets));
            const unsigned uses = static_cast<unsigned>(rng.below(10));
            const bool pinned = rng.chance(0.1);
            rc.insert(preg, set, uses, pinned, now);
            ref.insert(preg, set, uses, pinned);
            set_of[preg] = set;
        } else if (op < 70) {
            auto it = set_of.find(preg);
            if (it == set_of.end())
                continue;
            const bool a = readOnce(rc, preg, it->second);
            const bool b = ref.read(preg, it->second);
            ASSERT_EQ(a, b) << "read divergence at step " << step;
            if (!a) { // miss: fill, like the machine does
                rc.fill(preg, it->second, now);
                ref.fill(preg, it->second);
            }
        } else if (op < 80) {
            auto it = set_of.find(preg);
            if (it == set_of.end())
                continue;
            if (auto e = rc.lookup(preg, it->second))
                e.noteBypassUse();
            ref.bypass(preg, it->second);
        } else if (op < 90) {
            auto it = set_of.find(preg);
            if (it == set_of.end())
                continue;
            invalidateIfPresent(rc, preg, it->second, now);
            ref.invalidate(preg, it->second);
            set_of.erase(it);
        } else {
            auto it = set_of.find(preg);
            if (it == set_of.end())
                continue;
            ASSERT_EQ(bool(rc.lookup(preg, it->second)),
                      ref.contains(preg, it->second))
                << "presence divergence at step " << step;
            ASSERT_EQ(remainingOrSentinel(rc, preg, it->second),
                      ref.remaining(preg, it->second))
                << "count divergence at step " << step;
        }

        if (step % 512 == 0) {
            ASSERT_EQ(rc.validCount(), ref.valid())
                << "occupancy divergence at step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RegCacheProperty,
    ::testing::Values(
        PropertyParam{16, 1, ReplacementPolicy::UseBased},
        PropertyParam{16, 2, ReplacementPolicy::UseBased},
        PropertyParam{32, 2, ReplacementPolicy::LRU},
        PropertyParam{64, 2, ReplacementPolicy::UseBased},
        PropertyParam{64, 4, ReplacementPolicy::UseBased},
        PropertyParam{64, 4, ReplacementPolicy::LRU},
        PropertyParam{48, 2, ReplacementPolicy::UseBased}, // non-pow2
        PropertyParam{64, 64, ReplacementPolicy::UseBased},
        PropertyParam{64, 64, ReplacementPolicy::LRU}));
