/**
 * @file
 * Property test: randomly generated instructions of every opcode
 * survive a disassemble -> assemble round trip unchanged.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"

using namespace ubrc;
using namespace ubrc::isa;

namespace
{

/** Build a random but well-formed instance of op. */
Instruction
randomInstance(Opcode op, Rng &rng)
{
    const OpInfo &oi = opInfo(op);
    Instruction inst;
    inst.op = op;
    if (oi.hasDest)
        inst.rd = static_cast<ArchReg>(rng.below(numArchRegs));
    if (oi.numSrcs >= 1)
        inst.rs1 = static_cast<ArchReg>(rng.below(numArchRegs));
    if (oi.numSrcs >= 2)
        inst.rs2 = static_cast<ArchReg>(rng.below(numArchRegs));
    if (oi.hasImm) {
        if (oi.isBranch) {
            // Branch targets are absolute instruction addresses.
            inst.imm = static_cast<int64_t>(0x1000 +
                                            rng.below(1024) * 4);
        } else if (op == Opcode::LI) {
            inst.imm = static_cast<int64_t>(rng.next());
        } else {
            inst.imm = rng.range(-4096, 4096);
        }
    }
    return inst;
}

} // namespace

class DisasmRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(DisasmRoundTrip, RandomInstancesRoundTrip)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 997 + 13);
    for (int trial = 0; trial < 50; ++trial) {
        const Instruction inst = randomInstance(GetParam(), rng);
        const std::string text = disassemble(inst);
        Program p;
        ASSERT_NO_THROW(p = assemble(text + "\n")) << text;
        ASSERT_EQ(p.code.size(), 1u) << text;
        const Instruction &r = p.code[0];
        EXPECT_EQ(r.op, inst.op) << text;
        EXPECT_EQ(r.rd, inst.rd) << text;
        EXPECT_EQ(r.rs1, inst.rs1) << text;
        EXPECT_EQ(r.rs2, inst.rs2) << text;
        EXPECT_EQ(r.imm, inst.imm) << text;
    }
}

namespace
{

std::vector<Opcode>
allOpcodes()
{
    std::vector<Opcode> v;
    for (size_t i = 0; i < static_cast<size_t>(Opcode::NUM_OPCODES);
         ++i)
        v.push_back(static_cast<Opcode>(i));
    return v;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, DisasmRoundTrip, ::testing::ValuesIn(allOpcodes()),
    [](const auto &param_info) {
        std::string name = opInfo(param_info.param).mnemonic;
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
