/**
 * @file
 * Integration: every workload kernel runs on the full timing core
 * with the golden architectural checker enabled. Any divergence
 * between the out-of-order machine and the interpreter (wrong
 * forwarding, broken recovery, stale bypass values...) aborts.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::sim;

class TimingWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TimingWorkload, RunsCheckedOnUseBasedCache)
{
    const auto w = workload::buildWorkload(GetParam());
    const core::SimResult r =
        runOne(SimConfig::useBasedCache(), w, 40000);
    EXPECT_EQ(r.instsRetired, 40000u);
    EXPECT_GT(r.ipc, 0.01);
    EXPECT_GT(r.operandReads(), 10000u);
    EXPECT_GE(r.douAccuracy, 0.5);
}

TEST_P(TimingWorkload, RunsCheckedOnMonolithicFile)
{
    const auto w = workload::buildWorkload(GetParam());
    const core::SimResult r = runOne(SimConfig::monolithic(3), w, 25000);
    EXPECT_EQ(r.instsRetired, 25000u);
    EXPECT_EQ(r.rcMisses, 0u);
}

TEST_P(TimingWorkload, RunsCheckedOnTwoLevelFile)
{
    const auto w = workload::buildWorkload(GetParam());
    const core::SimResult r =
        runOne(SimConfig::twoLevelFile(64), w, 25000);
    EXPECT_EQ(r.instsRetired, 25000u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, TimingWorkload,
                         ::testing::ValuesIn(workload::workloadNames()),
                         [](const auto &param_info) {
                             return param_info.param;
                         });

TEST(TimingWorkload, FullKernelRunToHalt)
{
    // One kernel end to end (no instruction cap): the timing core
    // must produce the exact reference checksum in memory. We use the
    // smallest kernel to keep the test fast.
    const auto w = workload::buildWorkload("gcc");
    auto cfg = SimConfig::useBasedCache();
    core::Processor p(cfg, w);
    p.run();
    EXPECT_TRUE(p.finished());
    // The checker validated every retired instruction, including the
    // final store of the checksum.
    EXPECT_GT(p.retiredCount(), 500000u);
}
