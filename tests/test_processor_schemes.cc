/**
 * @file
 * Property-style sweep: one real workload runs under every register
 * storage scheme and policy combination with the golden checker on,
 * and cross-scheme invariants are asserted. This exercises the whole
 * machine (speculation, replay, cache policies, recovery) under each
 * configuration the paper evaluates.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::core;
using namespace ubrc::sim;

namespace
{

constexpr uint64_t testInsts = 30000;

SimResult
runCfg(const SimConfig &cfg, const std::string &wl = "gzip")
{
    return runOne(cfg, workload::buildWorkload(wl), testInsts);
}

} // namespace

class SchemeSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SchemeSweep, AllSchemesCompleteAndAreSane)
{
    const std::string wl = GetParam();
    const SimResult mono = runCfg(SimConfig::monolithic(3), wl);
    const SimResult ub = runCfg(SimConfig::useBasedCache(), wl);
    const SimResult lru = runCfg(SimConfig::lruCache(), wl);
    const SimResult nb = runCfg(SimConfig::nonBypassCache(), wl);
    const SimResult tl = runCfg(SimConfig::twoLevelFile(64), wl);

    for (const SimResult *r : {&mono, &ub, &lru, &nb, &tl}) {
        EXPECT_EQ(r->instsRetired, testInsts);
        EXPECT_GT(r->ipc, 0.0);
        EXPECT_LE(r->ipc, 8.0);
        EXPECT_GE(r->missPerOperand, 0.0);
        EXPECT_LE(r->missPerOperand, 1.0);
    }
    // No cache, no cache misses.
    EXPECT_EQ(mono.rcMisses, 0u);
    EXPECT_EQ(tl.rcMisses, 0u);
    // Cached schemes: miss categories account for all misses, and
    // file-sourced operands never exceed the misses that requested
    // them (squashed instructions may abandon a fill in flight).
    for (const SimResult *r : {&ub, &lru, &nb}) {
        EXPECT_EQ(r->rcMisses, r->rcMissNoWrite + r->rcMissConflict +
                                   r->rcMissCapacity);
        EXPECT_LE(r->opFile, r->rcMisses);
        EXPECT_GT(r->opFile, r->rcMisses / 2); // most fills consumed
    }
    // LRU writes everything: nothing filtered, and only values whose
    // registers died in the write cycle itself can be "never cached".
    EXPECT_EQ(lru.writesFiltered, 0u);
    EXPECT_LT(lru.valuesNeverCached, lru.valuesProduced / 20);
    // Filtering policies do filter. (Which filters more is workload
    // dependent: use-based also drops predicted-dead values, see the
    // Figure 10 discussion.)
    EXPECT_GT(ub.writesFiltered, 0u);
    EXPECT_GT(nb.writesFiltered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SchemeSweep,
                         ::testing::Values("gzip", "crafty", "parser",
                                           "vpr"),
                         [](const auto &param_info) {
                             return param_info.param;
                         });

TEST(SchemeProperties, UseBasedMissesBelowLru)
{
    // Aggregated over several kernels, use-based management must cut
    // the miss rate versus LRU (the paper's central claim).
    double ub_miss = 0, lru_miss = 0;
    for (const char *wl : {"gzip", "crafty", "vpr", "twolf"}) {
        ub_miss += runCfg(SimConfig::useBasedCache(), wl).missPerOperand;
        lru_miss += runCfg(SimConfig::lruCache(), wl).missPerOperand;
    }
    EXPECT_LT(ub_miss, lru_miss);
}

TEST(SchemeProperties, SmallerCachesMissMore)
{
    auto small = SimConfig::useBasedCache();
    small.rc.entries = 16;
    auto large = SimConfig::useBasedCache();
    large.rc.entries = 128;
    const double m_small = runCfg(small).missPerOperand;
    const double m_large = runCfg(large).missPerOperand;
    EXPECT_GT(m_small, m_large);
}

TEST(SchemeProperties, AssociativityHelps)
{
    auto dm = SimConfig::useBasedCache();
    dm.rc.assoc = 1;
    auto four = SimConfig::useBasedCache();
    four.rc.assoc = 4;
    EXPECT_GT(runCfg(dm).missPerOperand,
              runCfg(four).missPerOperand);
}

TEST(SchemeProperties, SlowerMonolithicFilesAreSlower)
{
    double prev = 1e9;
    for (Cycle lat : {1, 2, 3, 5}) {
        const double ipc = runCfg(SimConfig::monolithic(lat)).ipc;
        EXPECT_LT(ipc, prev + 1e-9) << "latency " << lat;
        prev = ipc;
    }
}

TEST(SchemeProperties, BackingLatencyDegradesCachedPerformance)
{
    auto fast = SimConfig::useBasedCache();
    fast.backingLatency = 1;
    auto slow = SimConfig::useBasedCache();
    slow.backingLatency = 5;
    EXPECT_GT(runCfg(fast).ipc, runCfg(slow).ipc);
}

TEST(SchemeProperties, DecoupledIndexingBeatsPregIndexing)
{
    // Aggregate conflict misses across kernels: filtered round-robin
    // must not exceed standard preg indexing (Section 4's claim).
    uint64_t preg_conf = 0, frr_conf = 0;
    for (const char *wl : {"gzip", "vpr", "twolf", "gap"}) {
        auto preg = SimConfig::useBasedCache();
        preg.rc.indexing = regcache::IndexPolicy::PhysReg;
        auto frr = SimConfig::useBasedCache();
        preg_conf += runCfg(preg, wl).rcMissConflict;
        frr_conf += runCfg(frr, wl).rcMissConflict;
    }
    EXPECT_LT(frr_conf, preg_conf);
}

TEST(SchemeProperties, CheckerCanBeDisabled)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.checker = false;
    const SimResult r = runCfg(cfg);
    EXPECT_EQ(r.instsRetired, testInsts);
}

TEST(SchemeProperties, MissClassificationOptional)
{
    auto cfg = SimConfig::useBasedCache();
    cfg.classifyMisses = false;
    const SimResult r = runCfg(cfg);
    EXPECT_EQ(r.rcMissConflict, 0u); // everything lands in capacity
    EXPECT_EQ(r.rcMisses,
              r.rcMissNoWrite + r.rcMissCapacity);
}

TEST(SchemeProperties, DeterministicRuns)
{
    const SimResult a = runCfg(SimConfig::useBasedCache());
    const SimResult b = runCfg(SimConfig::useBasedCache());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.rcMisses, b.rcMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}
