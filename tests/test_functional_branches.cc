/**
 * @file
 * Parameterized semantics tests for every conditional branch opcode:
 * taken and not-taken cases across signed/unsigned boundary values.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/functional_core.hh"

using namespace ubrc;
using namespace ubrc::isa;

namespace
{

struct BranchCase
{
    const char *mnemonic;
    int64_t a;
    int64_t b;
    bool taken;
};

} // namespace

class CondBranch : public ::testing::TestWithParam<BranchCase>
{
};

TEST_P(CondBranch, DirectionMatchesSemantics)
{
    const BranchCase &c = GetParam();
    // r5 = 1 when the branch was taken, 2 otherwise.
    std::string src = "li r1, " + std::to_string(c.a) + "\n" +
                      "li r2, " + std::to_string(c.b) + "\n" +
                      std::string(c.mnemonic) + " r1, r2, taken\n" +
                      "li r5, 2\nhalt\n" +
                      "taken: li r5, 1\nhalt\n";
    SparseMemory mem;
    Program p = assemble(src);
    FunctionalCore core(p, mem);
    core.run(100);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.reg(5), c.taken ? 1u : 2u)
        << c.mnemonic << " " << c.a << ", " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, CondBranch,
    ::testing::Values(
        BranchCase{"beq", 5, 5, true}, BranchCase{"beq", 5, 6, false},
        BranchCase{"beq", -1, -1, true},
        BranchCase{"bne", 5, 5, false}, BranchCase{"bne", 5, 6, true},
        BranchCase{"blt", 1, 2, true}, BranchCase{"blt", 2, 1, false},
        BranchCase{"blt", 2, 2, false},
        BranchCase{"blt", -3, 1, true},
        BranchCase{"blt", 1, -3, false},
        BranchCase{"bge", 2, 2, true}, BranchCase{"bge", 1, 2, false},
        BranchCase{"bge", -1, -5, true},
        BranchCase{"bltu", 1, 2, true},
        BranchCase{"bltu", -1, 1, false}, // -1 is huge unsigned
        BranchCase{"bltu", 1, -1, true},
        BranchCase{"bgeu", -1, 1, true},
        BranchCase{"bgeu", 1, -1, false},
        BranchCase{"bgeu", 0, 0, true}));

TEST(CondBranchPseudo, SwappedComparisons)
{
    // bgt/ble/bgtu/bleu expand with swapped operands; verify the
    // *semantic* direction end to end.
    struct Case
    {
        const char *mn;
        int64_t a, b;
        bool taken;
    };
    const Case cases[] = {
        {"bgt", 3, 2, true},   {"bgt", 2, 3, false},
        {"bgt", 2, 2, false},  {"ble", 2, 3, true},
        {"ble", 2, 2, true},   {"ble", 3, 2, false},
        {"bgtu", -1, 1, true}, {"bleu", 1, -1, true},
    };
    for (const Case &c : cases) {
        std::string src = "li r1, " + std::to_string(c.a) + "\n" +
                          "li r2, " + std::to_string(c.b) + "\n" +
                          std::string(c.mn) + " r1, r2, taken\n" +
                          "li r5, 2\nhalt\n" +
                          "taken: li r5, 1\nhalt\n";
        SparseMemory mem;
        Program p = assemble(src);
        FunctionalCore core(p, mem);
        core.run(100);
        EXPECT_EQ(core.reg(5), c.taken ? 1u : 2u)
            << c.mn << " " << c.a << ", " << c.b;
    }
}
