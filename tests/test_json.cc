/**
 * @file
 * Unit tests for the header-only JSON writer and parser
 * (common/json.hh): escaping, deterministic number rendering, comma
 * and indent management, and writer -> parser round trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"

using namespace ubrc::json;

TEST(JsonEscape, ControlAndSpecialCharacters)
{
    EXPECT_EQ(escape("plain"), "plain");
    EXPECT_EQ(escape("a\"b"), "a\\\"b");
    EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(escape("tab\tnl\ncr\r"), "tab\\tnl\\ncr\\r");
    EXPECT_EQ(escape(std::string("nul\x01z")), "nul\\u0001z");
    // UTF-8 passes through untouched.
    EXPECT_EQ(escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonNumber, DeterministicRendering)
{
    EXPECT_EQ(formatNumber(0.0), "0");
    EXPECT_EQ(formatNumber(1.5), "1.5");
    EXPECT_EQ(formatNumber(-2.25), "-2.25");
    // Non-finite doubles must never leak NaN/Inf tokens into a doc.
    EXPECT_EQ(formatNumber(std::nan("")), "null");
    EXPECT_EQ(formatNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonWriter, CompactObjectAndArray)
{
    Writer w(false);
    w.beginObject();
    w.field("name", "ubrc");
    w.field("count", uint64_t(3));
    w.field("neg", int64_t(-4));
    w.field("ok", true);
    w.nullField("missing");
    w.key("list").beginArray();
    w.value(1.5);
    w.value("x");
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"ubrc\",\"count\":3,\"neg\":-4,\"ok\":true,"
              "\"missing\":null,\"list\":[1.5,\"x\"]}");
}

TEST(JsonWriter, PrettyIndentation)
{
    Writer w;
    w.beginObject();
    w.field("a", uint64_t(1));
    w.key("b").beginArray().value(uint64_t(2)).endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine)
{
    Writer w;
    w.beginObject();
    w.key("obj").beginObject().endObject();
    w.key("arr").beginArray().endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"obj\": {},\n  \"arr\": []\n}");
}

TEST(JsonWriter, RawSplicesVerbatim)
{
    Writer w(false);
    w.beginObject();
    w.key("stats").raw("{\"x\":1}");
    w.field("after", uint64_t(2));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"stats\":{\"x\":1},\"after\":2}");
}

TEST(JsonParse, ScalarsAndStructure)
{
    const Value v = parse(
        R"({"s": "hi", "n": -1.5, "t": true, "f": false, "z": null,
            "a": [1, 2, 3]})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("s").string, "hi");
    EXPECT_DOUBLE_EQ(v.at("n").number, -1.5);
    EXPECT_TRUE(v.at("t").boolean);
    EXPECT_FALSE(v.at("f").boolean);
    EXPECT_TRUE(v.at("z").isNull());
    ASSERT_TRUE(v.at("a").isArray());
    ASSERT_EQ(v.at("a").array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("a").array[2].number, 3.0);
    EXPECT_EQ(v.find("nope"), nullptr);
    EXPECT_THROW(v.at("nope"), std::out_of_range);
}

TEST(JsonParse, ObjectOrderIsPreserved)
{
    const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(v.object.size(), 3u);
    EXPECT_EQ(v.object[0].first, "z");
    EXPECT_EQ(v.object[1].first, "a");
    EXPECT_EQ(v.object[2].first, "m");
}

TEST(JsonParse, StringEscapes)
{
    const Value v = parse(R"("a\"b\\c\/d\n\tAé")");
    EXPECT_EQ(v.string, "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_THROW(parse(""), ParseError);
    EXPECT_THROW(parse("{"), ParseError);
    EXPECT_THROW(parse("{\"a\":}"), ParseError);
    EXPECT_THROW(parse("[1,]"), ParseError);
    EXPECT_THROW(parse("tru"), ParseError);
    EXPECT_THROW(parse("1 2"), ParseError);
    EXPECT_THROW(parse("\"unterminated"), ParseError);
    EXPECT_THROW(parse("\"bad\\q\""), ParseError);
    // 201 nested arrays exceeds the depth limit.
    std::string deep(201, '[');
    deep += std::string(201, ']');
    EXPECT_THROW(parse(deep), ParseError);
}

TEST(JsonRoundTrip, WriterOutputParsesBack)
{
    Writer w;
    w.beginObject();
    w.field("name", "fig\"09\"\n");
    w.field("pi", 3.14159265358979);
    w.field("big", uint64_t(1) << 53);
    w.key("rows").beginArray();
    for (int i = 0; i < 3; ++i) {
        w.beginArray();
        w.value(i);
        w.value(double(i) / 3.0);
        w.endArray();
    }
    w.endArray();
    w.endObject();

    const Value v = parse(w.str());
    EXPECT_EQ(v.at("name").string, "fig\"09\"\n");
    // Doubles are serialized with %.12g: 12 significant digits, not
    // bit-exact. Integers up to 2^53 round-trip exactly.
    EXPECT_NEAR(v.at("pi").number, 3.14159265358979, 1e-11);
    EXPECT_DOUBLE_EQ(v.at("big").number,
                     static_cast<double>(uint64_t(1) << 53));
    ASSERT_EQ(v.at("rows").array.size(), 3u);
    EXPECT_NEAR(v.at("rows").array[1].array[1].number, 1.0 / 3.0,
                1e-12);
}
