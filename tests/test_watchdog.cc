/**
 * @file
 * Tests for the forward-progress watchdog: a stalled ROB head must
 * raise DeadlockError (with the stalled instruction named in the
 * attached snapshot) instead of spinning forever, and disabling the
 * watchdog must let long-latency code run to completion.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/processor.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "sim/sim_error.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::core;

namespace
{

workload::Workload
makeWorkload(const std::string &src)
{
    workload::Workload w;
    w.name = "test";
    w.program = isa::assemble(src);
    w.initMemory = [prog = w.program](SparseMemory &m) {
        isa::loadProgramData(prog, m);
    };
    return w;
}

/**
 * A program whose ROB head is incomplete for ~fxDivLat cycles: with
 * the divider latency raised above the watchdog threshold, retirement
 * stalls long enough to trip it.
 */
const char *stallProg =
    "li r1, 1000\n"
    "li r2, 7\n"
    "fxdiv r3, r1, r2\n"
    "halt\n";

} // namespace

TEST(Watchdog, FiresOnStalledRetirement)
{
    sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    cfg.fxDivLat = 5000;     // below the 8192-cycle event horizon
    cfg.watchdogCycles = 200; // trips long before the divide finishes
    cfg.validate();

    auto w = makeWorkload(stallProg);
    Processor p(cfg, w);
    try {
        p.run();
        FAIL() << "expected DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_EQ(e.exitCode(), 4);
        EXPECT_NE(std::string(e.what()).find("no retirement"),
                  std::string::npos);

        // The snapshot must name the stalled ROB head.
        ASSERT_TRUE(e.hasSnapshot());
        const sim::PipelineSnapshot &snap = e.snapshot();
        ASSERT_FALSE(snap.robHead.empty());
        EXPECT_NE(snap.robHead[0].disasm.find("fxdiv"),
                  std::string::npos);
        EXPECT_FALSE(snap.robHead[0].completed);
        EXPECT_NE(snap.format().find("fxdiv"), std::string::npos);
    }
}

TEST(Watchdog, MessageCarriesStallDetail)
{
    sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    cfg.fxDivLat = 5000;
    cfg.watchdogCycles = 300;

    auto w = makeWorkload(stallProg);
    Processor p(cfg, w);
    try {
        p.run();
        FAIL() << "expected DeadlockError";
    } catch (const sim::SimError &e) {
        // Catchable as the base class, with the cycle count in text.
        EXPECT_EQ(e.kind(), sim::ErrorKind::Deadlock);
        EXPECT_NE(std::string(e.what()).find("300"), std::string::npos);
    }
}

TEST(Watchdog, DisabledWatchdogLetsSlowCodeFinish)
{
    sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    cfg.fxDivLat = 5000;
    cfg.watchdogCycles = 0; // disabled
    cfg.validate();

    auto w = makeWorkload(stallProg);
    Processor p(cfg, w);
    EXPECT_NO_THROW(p.run());
    EXPECT_TRUE(p.finished());
    EXPECT_EQ(p.retiredCount(), 4u);
    EXPECT_GE(p.cycle(), 5000); // it really did sit out the divide
}

TEST(Watchdog, GenerousWatchdogDoesNotFire)
{
    sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    cfg.fxDivLat = 500;
    cfg.watchdogCycles = 6000;

    auto w = makeWorkload(stallProg);
    Processor p(cfg, w);
    EXPECT_NO_THROW(p.run());
    EXPECT_TRUE(p.finished());
}
