/**
 * @file
 * Tests for SimConfig::validate(): every named configuration must
 * pass, and each class of bad knob must be rejected with a message
 * that names the offending value.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/config.hh"
#include "sim/sim_error.hh"

using namespace ubrc;
using namespace ubrc::sim;

namespace
{

/** Expect validate() to throw a ConfigError mentioning `needle`. */
void
expectRejected(const SimConfig &cfg, const std::string &needle)
{
    try {
        cfg.validate();
        FAIL() << "expected ConfigError containing '" << needle << "'";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual message: " << e.what();
    }
}

} // namespace

TEST(ConfigValidate, NamedConfigurationsAreClean)
{
    EXPECT_NO_THROW(SimConfig::useBasedCache().validate());
    EXPECT_NO_THROW(SimConfig::lruCache().validate());
    EXPECT_NO_THROW(SimConfig::nonBypassCache().validate());
    EXPECT_NO_THROW(SimConfig::monolithic(3).validate());
    EXPECT_NO_THROW(SimConfig::twoLevelFile(64).validate());
}

TEST(ConfigValidate, ZeroPipelineWidth)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.issueWidth = 0;
    expectRejected(cfg, "pipeline widths");
}

TEST(ConfigValidate, ZeroWindow)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.robEntries = 0;
    expectRejected(cfg, "window sizes");
}

TEST(ConfigValidate, TooFewPhysRegs)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.numPhysRegs = 32; // == architectural count, nothing to rename
    expectRejected(cfg, "numPhysRegs");
}

TEST(ConfigValidate, AssocExceedsEntries)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.rc.entries = 16;
    cfg.rc.assoc = 32;
    expectRejected(cfg, "associativity");
}

TEST(ConfigValidate, EntriesNotDivisibleIntoSets)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.rc.entries = 64;
    cfg.rc.assoc = 3;
    expectRejected(cfg, "divisible");
}

TEST(ConfigValidate, MaxUseOutOfCounterRange)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.rc.maxUse = 100; // dou.predBits=4 => max prediction 15
    expectRejected(cfg, "maxUse");
}

TEST(ConfigValidate, ZeroMaxUse)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.rc.maxUse = 0;
    expectRejected(cfg, "maxUse");
}

TEST(ConfigValidate, DefaultsExceedMaxUse)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.rc.unknownDefault = cfg.rc.maxUse + 1;
    expectRejected(cfg, "unknownDefault");
}

TEST(ConfigValidate, LatencyBeyondEventHorizon)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.fxDivLat = 9000; // event ring holds 8192 cycles
    expectRejected(cfg, "event");
}

TEST(ConfigValidate, ZeroLatency)
{
    SimConfig cfg = SimConfig::monolithic(0);
    expectRejected(cfg, "monolithic");
}

TEST(ConfigValidate, WatchdogBelowFloor)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.watchdogCycles = 50;
    expectRejected(cfg, "watchdogCycles");
}

TEST(ConfigValidate, WatchdogZeroDisables)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.watchdogCycles = 0;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, InjectionRateOutOfRange)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.inject.rate = 1.5;
    expectRejected(cfg, "inject.rate");
}

TEST(ConfigValidate, InjectionWithoutTargets)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.inject.rate = 0.1;
    cfg.inject.targets = 0;
    expectRejected(cfg, "target");
}

TEST(ConfigValidate, TwoLevelL1TooSmall)
{
    SimConfig cfg = SimConfig::twoLevelFile(64);
    cfg.twoLevel.l1Entries = 16; // below the 32 architectural regs
    expectRejected(cfg, "architectural");
}

TEST(ConfigValidate, DouConfidenceNeverSupplies)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.dou.confThreshold = cfg.dou.confMax + 1;
    expectRejected(cfg, "confThreshold");
}
