/**
 * @file
 * Unit tests for the text-table renderer.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/table.hh"

using ubrc::TextTable;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAlign)
{
    TextTable t({"a", "b"});
    t.addRow({"xxxx", "1"});
    t.addRow({"y", "2"});
    const std::string out = t.render();
    // 'b' column starts at the same offset in each data line.
    size_t l1 = out.find("xxxx");
    size_t l2 = out.find("y", l1);
    size_t c1 = out.find('1', l1) - l1;
    size_t c2 = out.find('2', l2) - l2;
    EXPECT_EQ(c1, c2);
}

TEST(TextTable, MissingCellsRenderEmpty)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NE(t.render().find("only"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(uint64_t(42)), "42");
    EXPECT_EQ(TextTable::num(0.5, 0), "0");
}
