/**
 * @file
 * Unit tests for decoupled-indexing set assignment (Section 4).
 */

#include <gtest/gtest.h>

#include "regcache/index_allocator.hh"

using namespace ubrc;
using namespace ubrc::regcache;

TEST(IndexAllocator, PhysRegPolicyIsModulo)
{
    IndexAllocator ia(IndexPolicy::PhysReg, 8, 2);
    EXPECT_EQ(ia.assign(0, 1), 0u);
    EXPECT_EQ(ia.assign(9, 1), 1u);
    EXPECT_EQ(ia.assign(17, 1), 1u);
    EXPECT_EQ(ia.assign(23, 1), 7u);
}

TEST(IndexAllocator, RoundRobinCycles)
{
    IndexAllocator ia(IndexPolicy::RoundRobin, 4, 2);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(ia.assign(static_cast<PhysReg>(i), 1), i % 4);
}

TEST(IndexAllocator, MinimumPicksSmallestLoad)
{
    IndexAllocator ia(IndexPolicy::Minimum, 3, 2);
    EXPECT_EQ(ia.assign(1, 5), 0u); // loads: 5 0 0
    EXPECT_EQ(ia.assign(2, 3), 1u); // loads: 5 3 0
    EXPECT_EQ(ia.assign(3, 1), 2u); // loads: 5 3 1
    EXPECT_EQ(ia.assign(4, 1), 2u); // loads: 5 3 2
    EXPECT_EQ(ia.assign(5, 9), 2u); // loads: 5 3 11
    EXPECT_EQ(ia.assign(6, 0), 1u); // ties go to the lowest set? no:
                                    // 5 3 11 -> min is set 1
}

TEST(IndexAllocator, MinimumReleaseRestoresLoad)
{
    IndexAllocator ia(IndexPolicy::Minimum, 2, 2);
    const unsigned s = ia.assign(1, 6);
    EXPECT_EQ(ia.setLoad(s), 6u);
    ia.release(s, 6);
    EXPECT_EQ(ia.setLoad(s), 0u);
    // Release never underflows.
    ia.release(s, 100);
    EXPECT_EQ(ia.setLoad(s), 0u);
}

TEST(IndexAllocator, FilteredSkipsCrowdedSets)
{
    // 2-way: threshold is assoc/2 = 1 high-use value per set.
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 3, 2,
                      /*high_use_threshold=*/5);
    // Crowd set 0 with two high-use values (predicted > 5).
    EXPECT_EQ(ia.assign(1, 7), 0u);
    EXPECT_EQ(ia.assign(2, 7), 1u); // round-robin continues
    EXPECT_EQ(ia.assign(3, 7), 2u);
    // Sets 0..2 each hold one high-use value (at the skip limit).
    EXPECT_EQ(ia.assign(4, 7), 0u); // still allowed (count == limit)
    // Set 0 now exceeds the limit: next round-robin pass skips it.
    EXPECT_EQ(ia.assign(5, 1), 1u);
    EXPECT_EQ(ia.assign(6, 1), 2u);
    EXPECT_EQ(ia.assign(7, 1), 1u); // skipped set 0 again
}

TEST(IndexAllocator, FilteredFallsBackWhenAllCrowded)
{
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 2, 2, 5);
    // Two high-use values per set: every set exceeds the limit.
    ia.assign(1, 9);
    ia.assign(2, 9);
    ia.assign(3, 9);
    ia.assign(4, 9);
    // No eligible set: falls back to plain round-robin.
    const unsigned s = ia.assign(5, 1);
    EXPECT_LT(s, 2u);
}

TEST(IndexAllocator, FilteredReleaseUncrowds)
{
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 2, 2, 5);
    ia.assign(1, 9); // set 0
    ia.assign(2, 9); // set 1
    ia.assign(3, 9); // set 0: now over limit
    EXPECT_EQ(ia.setHighUse(0), 2u);
    ia.release(0, 9);
    EXPECT_EQ(ia.setHighUse(0), 1u);
    // Low-use values do not affect the high-use count.
    ia.release(0, 1);
    EXPECT_EQ(ia.setHighUse(0), 1u);
}

TEST(IndexAllocator, HighUseThresholdIsExclusive)
{
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 4, 2, 5);
    ia.assign(1, 5); // exactly 5: NOT high-use
    EXPECT_EQ(ia.setHighUse(0), 0u);
    ia.assign(2, 6); // 6 > 5: high-use
    EXPECT_EQ(ia.setHighUse(1), 1u);
}

// --- non-power-of-two set counts and wrap-around -------------------
//
// Decoupled indexing frees the set count from the physical register
// width, so odd table sizes are legal configurations; the modulus and
// scan logic must handle them.

TEST(IndexAllocator, PhysRegModuloNonPowerOfTwo)
{
    IndexAllocator ia(IndexPolicy::PhysReg, 6, 2);
    EXPECT_EQ(ia.assign(6, 1), 0u);
    EXPECT_EQ(ia.assign(13, 1), 1u);
    EXPECT_EQ(ia.assign(35, 1), 5u);
}

TEST(IndexAllocator, RoundRobinWrapsAtNonPowerOfTwo)
{
    IndexAllocator ia(IndexPolicy::RoundRobin, 7, 2);
    // Three full laps: the wrap must happen at 7, not at 8.
    for (unsigned i = 0; i < 3 * 7; ++i)
        EXPECT_EQ(ia.assign(static_cast<PhysReg>(i), 1), i % 7);
}

TEST(IndexAllocator, MinimumScansAllSetsOfOddTable)
{
    IndexAllocator ia(IndexPolicy::Minimum, 5, 2);
    // Load sets 0..3, leaving only the final set empty.
    EXPECT_EQ(ia.assign(1, 4), 0u);
    EXPECT_EQ(ia.assign(2, 4), 1u);
    EXPECT_EQ(ia.assign(3, 4), 2u);
    EXPECT_EQ(ia.assign(4, 4), 3u);
    // The scan must reach the last set of an odd-sized table.
    EXPECT_EQ(ia.assign(5, 1), 4u); // loads: 4 4 4 4 1
    EXPECT_EQ(ia.assign(6, 1), 4u); // loads: 4 4 4 4 2
    // Releasing a middle set makes it the minimum again.
    ia.release(2, 4);               // loads: 4 4 0 4 2
    EXPECT_EQ(ia.assign(7, 1), 2u);
}

TEST(IndexAllocator, MinimumTieBreaksToLowestSet)
{
    IndexAllocator ia(IndexPolicy::Minimum, 3, 2);
    EXPECT_EQ(ia.assign(1, 2), 0u); // loads: 2 0 0
    // Sets 1 and 2 tie at zero: the lower index wins.
    EXPECT_EQ(ia.assign(2, 1), 1u);
}

TEST(IndexAllocator, FilteredRoundRobinWrapsPastCrowdedTail)
{
    // 3 sets, 2-way: skip limit is one high-use value per set.
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 3, 2, 5);
    // Two laps of high-use values crowd every set...
    for (PhysReg p = 1; p <= 6; ++p)
        ia.assign(p, 6);
    // ...then uncrowd sets 0 and 1, leaving only the tail set 2
    // over the limit. The round-robin cursor is back at set 0.
    ia.release(0, 6);
    ia.release(0, 6);
    ia.release(1, 6);
    ia.release(1, 6);
    ASSERT_EQ(ia.setHighUse(0), 0u);
    ASSERT_EQ(ia.setHighUse(1), 0u);
    ASSERT_EQ(ia.setHighUse(2), 2u);

    EXPECT_EQ(ia.assign(7, 1), 0u);
    EXPECT_EQ(ia.assign(8, 1), 1u);
    // Cursor now points at the crowded tail: the scan must wrap
    // through the modulus back to set 0 rather than running off the
    // table or sticking at the cursor.
    EXPECT_EQ(ia.assign(9, 1), 0u);
    EXPECT_EQ(ia.assign(10, 1), 1u);
    EXPECT_EQ(ia.assign(11, 1), 0u);
}

TEST(IndexAllocator, FilteredDirectMappedUsesUnitSkipLimit)
{
    // assoc/2 would be zero for a direct-mapped cache; the limit
    // clamps to one so a single high-use value does not poison a set.
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 2, 1, 5);
    EXPECT_EQ(ia.assign(1, 9), 0u); // one high-use value: still ok
    EXPECT_EQ(ia.assign(2, 9), 1u);
    EXPECT_EQ(ia.assign(3, 9), 0u); // now both sets go over...
    EXPECT_EQ(ia.assign(4, 9), 1u);
    // ...and the fallback is plain round-robin.
    EXPECT_EQ(ia.assign(5, 1), 0u);
}

TEST(IndexAllocatorDeathTest, BadReleasePanics)
{
    IndexAllocator ia(IndexPolicy::RoundRobin, 4, 2);
    EXPECT_DEATH(ia.release(99, 1), "bad set");
}
