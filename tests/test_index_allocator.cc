/**
 * @file
 * Unit tests for decoupled-indexing set assignment (Section 4).
 */

#include <gtest/gtest.h>

#include "regcache/index_allocator.hh"

using namespace ubrc;
using namespace ubrc::regcache;

TEST(IndexAllocator, PhysRegPolicyIsModulo)
{
    IndexAllocator ia(IndexPolicy::PhysReg, 8, 2);
    EXPECT_EQ(ia.assign(0, 1), 0u);
    EXPECT_EQ(ia.assign(9, 1), 1u);
    EXPECT_EQ(ia.assign(17, 1), 1u);
    EXPECT_EQ(ia.assign(23, 1), 7u);
}

TEST(IndexAllocator, RoundRobinCycles)
{
    IndexAllocator ia(IndexPolicy::RoundRobin, 4, 2);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(ia.assign(static_cast<PhysReg>(i), 1), i % 4);
}

TEST(IndexAllocator, MinimumPicksSmallestLoad)
{
    IndexAllocator ia(IndexPolicy::Minimum, 3, 2);
    EXPECT_EQ(ia.assign(1, 5), 0u); // loads: 5 0 0
    EXPECT_EQ(ia.assign(2, 3), 1u); // loads: 5 3 0
    EXPECT_EQ(ia.assign(3, 1), 2u); // loads: 5 3 1
    EXPECT_EQ(ia.assign(4, 1), 2u); // loads: 5 3 2
    EXPECT_EQ(ia.assign(5, 9), 2u); // loads: 5 3 11
    EXPECT_EQ(ia.assign(6, 0), 1u); // ties go to the lowest set? no:
                                    // 5 3 11 -> min is set 1
}

TEST(IndexAllocator, MinimumReleaseRestoresLoad)
{
    IndexAllocator ia(IndexPolicy::Minimum, 2, 2);
    const unsigned s = ia.assign(1, 6);
    EXPECT_EQ(ia.setLoad(s), 6u);
    ia.release(s, 6);
    EXPECT_EQ(ia.setLoad(s), 0u);
    // Release never underflows.
    ia.release(s, 100);
    EXPECT_EQ(ia.setLoad(s), 0u);
}

TEST(IndexAllocator, FilteredSkipsCrowdedSets)
{
    // 2-way: threshold is assoc/2 = 1 high-use value per set.
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 3, 2,
                      /*high_use_threshold=*/5);
    // Crowd set 0 with two high-use values (predicted > 5).
    EXPECT_EQ(ia.assign(1, 7), 0u);
    EXPECT_EQ(ia.assign(2, 7), 1u); // round-robin continues
    EXPECT_EQ(ia.assign(3, 7), 2u);
    // Sets 0..2 each hold one high-use value (at the skip limit).
    EXPECT_EQ(ia.assign(4, 7), 0u); // still allowed (count == limit)
    // Set 0 now exceeds the limit: next round-robin pass skips it.
    EXPECT_EQ(ia.assign(5, 1), 1u);
    EXPECT_EQ(ia.assign(6, 1), 2u);
    EXPECT_EQ(ia.assign(7, 1), 1u); // skipped set 0 again
}

TEST(IndexAllocator, FilteredFallsBackWhenAllCrowded)
{
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 2, 2, 5);
    // Two high-use values per set: every set exceeds the limit.
    ia.assign(1, 9);
    ia.assign(2, 9);
    ia.assign(3, 9);
    ia.assign(4, 9);
    // No eligible set: falls back to plain round-robin.
    const unsigned s = ia.assign(5, 1);
    EXPECT_LT(s, 2u);
}

TEST(IndexAllocator, FilteredReleaseUncrowds)
{
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 2, 2, 5);
    ia.assign(1, 9); // set 0
    ia.assign(2, 9); // set 1
    ia.assign(3, 9); // set 0: now over limit
    EXPECT_EQ(ia.setHighUse(0), 2u);
    ia.release(0, 9);
    EXPECT_EQ(ia.setHighUse(0), 1u);
    // Low-use values do not affect the high-use count.
    ia.release(0, 1);
    EXPECT_EQ(ia.setHighUse(0), 1u);
}

TEST(IndexAllocator, HighUseThresholdIsExclusive)
{
    IndexAllocator ia(IndexPolicy::FilteredRoundRobin, 4, 2, 5);
    ia.assign(1, 5); // exactly 5: NOT high-use
    EXPECT_EQ(ia.setHighUse(0), 0u);
    ia.assign(2, 6); // 6 > 5: high-use
    EXPECT_EQ(ia.setHighUse(1), 1u);
}

TEST(IndexAllocatorDeathTest, BadReleasePanics)
{
    IndexAllocator ia(IndexPolicy::RoundRobin, 4, 2);
    EXPECT_DEATH(ia.release(99, 1), "bad set");
}
