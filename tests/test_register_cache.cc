/**
 * @file
 * Unit tests for the register cache: use-based insertion filtering,
 * remaining-use counting, pinning, and victim selection (Section 3),
 * exercised through the probe-once lookup()/EntryRef surface.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "regcache/register_cache.hh"

using namespace ubrc;
using namespace ubrc::regcache;

namespace
{

struct RcFixture : ::testing::Test
{
    RcFixture() : stats("rc") {}

    RegisterCache
    make(unsigned entries, unsigned assoc, ReplacementPolicy repl)
    {
        RegCacheParams p;
        p.entries = entries;
        p.assoc = assoc;
        p.replacement = repl;
        return RegisterCache(p, stats);
    }

    // Probe-once equivalents of the old per-call helpers.
    static bool
    contains(RegisterCache &rc, PhysReg preg, unsigned set)
    {
        return bool(rc.lookup(preg, set));
    }

    static bool
    read(RegisterCache &rc, PhysReg preg, unsigned set)
    {
        auto e = rc.lookup(preg, set);
        if (!e) {
            rc.noteReadMiss();
            return false;
        }
        e.read();
        return true;
    }

    static unsigned
    remaining(RegisterCache &rc, PhysReg preg, unsigned set)
    {
        return rc.lookup(preg, set).remainingUses();
    }

    stats::StatGroup stats;
};

} // namespace

// ---------------------------------------------------------------- //
// Insertion filter (Section 3.1)
// ---------------------------------------------------------------- //

struct InsertCase
{
    InsertionPolicy policy;
    bool pinned;
    unsigned predicted;
    unsigned stage1;
    bool expectInsert;
};

class ShouldInsertTest : public ::testing::TestWithParam<InsertCase>
{
};

TEST_P(ShouldInsertTest, MatchesPolicy)
{
    const auto &c = GetParam();
    EXPECT_EQ(shouldInsert(c.policy, c.pinned, c.predicted, c.stage1),
              c.expectInsert);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ShouldInsertTest,
    ::testing::Values(
        // Always: inserts regardless.
        InsertCase{InsertionPolicy::Always, false, 0, 0, true},
        InsertCase{InsertionPolicy::Always, false, 1, 1, true},
        InsertCase{InsertionPolicy::Always, false, 5, 5, true},
        // Non-bypass: filters on ANY first-stage bypass.
        InsertCase{InsertionPolicy::NonBypass, false, 4, 1, false},
        InsertCase{InsertionPolicy::NonBypass, false, 4, 0, true},
        InsertCase{InsertionPolicy::NonBypass, false, 0, 0, true},
        // Use-based: filters only when ALL predicted uses bypassed.
        InsertCase{InsertionPolicy::UseBased, false, 1, 1, false},
        InsertCase{InsertionPolicy::UseBased, false, 2, 1, true},
        InsertCase{InsertionPolicy::UseBased, false, 0, 0, false},
        InsertCase{InsertionPolicy::UseBased, false, 3, 3, false},
        // Pinned values are always worth caching.
        InsertCase{InsertionPolicy::UseBased, true, 7, 7, true}));

// ---------------------------------------------------------------- //
// Structure: reads, counting, pinning, invalidation
// ---------------------------------------------------------------- //

TEST_F(RcFixture, ReadHitDecrementsRemainingUses)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(10, 0, 3, false, 0);
    EXPECT_EQ(remaining(rc, 10, 0), 3);
    EXPECT_TRUE(read(rc, 10, 0));
    EXPECT_EQ(remaining(rc, 10, 0), 2);
    read(rc, 10, 0);
    read(rc, 10, 0);
    read(rc, 10, 0); // does not underflow
    EXPECT_EQ(remaining(rc, 10, 0), 0);
}

TEST_F(RcFixture, ReadMissReturnsFalse)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    EXPECT_FALSE(read(rc, 10, 0));
    rc.insert(10, 0, 1, false, 0);
    EXPECT_FALSE(read(rc, 10, 1)); // wrong set: decoupled index
}

TEST_F(RcFixture, LookupHandleReflectsEntryState)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    EXPECT_FALSE(rc.lookup(10, 0).valid());
    rc.insert(10, 0, 3, true, 0);
    auto e = rc.lookup(10, 0);
    ASSERT_TRUE(e.valid());
    EXPECT_TRUE(e.pinned());
    EXPECT_EQ(e.remainingUses(), 3u);
}

TEST_F(RcFixture, PinnedEntriesNeverDecrement)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(5, 1, 7, true, 0);
    for (int i = 0; i < 20; ++i)
        read(rc, 5, 1);
    EXPECT_EQ(remaining(rc, 5, 1), 7);
}

TEST_F(RcFixture, BypassUseDecrements)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(6, 0, 4, false, 0);
    rc.lookup(6, 0).noteBypassUse();
    EXPECT_EQ(remaining(rc, 6, 0), 3);
    EXPECT_FALSE(rc.lookup(7, 0)); // absent: invalid handle, no crash
}

TEST_F(RcFixture, InvalidateRemoves)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(8, 0, 2, false, 0);
    rc.lookup(8, 0).invalidate(5);
    EXPECT_FALSE(contains(rc, 8, 0));
    EXPECT_EQ(rc.validCount(), 0u);
}

TEST_F(RcFixture, RemainingUsesClampToMax)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(9, 0, 100, false, 0); // clamped to maxUse (7)
    EXPECT_EQ(remaining(rc, 9, 0), 7);
}

TEST_F(RcFixture, FillUsesFillDefault)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    EXPECT_TRUE(rc.fill(11, 0, 0));
    EXPECT_TRUE(contains(rc, 11, 0));
    EXPECT_EQ(remaining(rc, 11, 0), 0); // fill default
}

TEST_F(RcFixture, DoubleFillIsIdempotent)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    EXPECT_TRUE(rc.fill(11, 0, 0));
    EXPECT_FALSE(rc.fill(11, 0, 1)); // already resident
    EXPECT_EQ(rc.validCount(), 1u);
}

TEST_F(RcFixture, DoubleInsertPanics)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(12, 0, 1, false, 0);
    EXPECT_DEATH(rc.insert(12, 0, 1, false, 1), "double insert");
}

// ---------------------------------------------------------------- //
// Replacement (Section 3.2)
// ---------------------------------------------------------------- //

TEST_F(RcFixture, UseBasedVictimHasFewestUses)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 5, false, 0);
    rc.insert(2, 0, 1, false, 1);
    rc.insert(3, 0, 3, false, 2); // set full: evict preg 2 (1 use)
    EXPECT_TRUE(contains(rc, 1, 0));
    EXPECT_FALSE(contains(rc, 2, 0));
    EXPECT_TRUE(contains(rc, 3, 0));
}

TEST_F(RcFixture, FewestUsesBeatsRecency)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 2, false, 0);
    rc.insert(2, 0, 2, false, 1);
    read(rc, 1, 0); // preg 1: recently used BUT now fewer uses
    rc.insert(3, 0, 2, false, 3);
    EXPECT_FALSE(contains(rc, 1, 0)); // fewest remaining uses loses
    EXPECT_TRUE(contains(rc, 2, 0));
}

TEST_F(RcFixture, UseBasedTieBrokenByLru)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 2, false, 0);
    rc.insert(2, 0, 2, false, 1);
    // Deplete both counters to zero.
    read(rc, 1, 0);
    read(rc, 1, 0);
    read(rc, 2, 0);
    read(rc, 2, 0);
    // Tie at zero uses: touch preg 1 so preg 2 becomes the LRU.
    read(rc, 1, 0);
    rc.insert(3, 0, 1, false, 7);
    EXPECT_TRUE(contains(rc, 1, 0));
    EXPECT_FALSE(contains(rc, 2, 0));
}

TEST_F(RcFixture, PinnedEntriesAreLastChoiceVictims)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 7, true, 0);  // pinned
    rc.insert(2, 0, 6, false, 1); // high uses but unpinned
    rc.insert(3, 0, 0, false, 2); // evicts preg 2, not the pinned 1
    EXPECT_TRUE(contains(rc, 1, 0));
    EXPECT_FALSE(contains(rc, 2, 0));
}

TEST_F(RcFixture, LruReplacementIgnoresUses)
{
    auto rc = make(4, 2, ReplacementPolicy::LRU);
    rc.insert(1, 0, 0, false, 0); // zero uses, but MRU later
    rc.insert(2, 0, 7, false, 1);
    read(rc, 1, 0); // preg 1 is MRU
    rc.insert(3, 0, 3, false, 3);
    EXPECT_TRUE(contains(rc, 1, 0));  // LRU evicted preg 2
    EXPECT_FALSE(contains(rc, 2, 0));
}

TEST_F(RcFixture, InvalidWaysPreferredOverEviction)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 0, false, 0);
    rc.insert(2, 0, 5, false, 1);
    EXPECT_EQ(stats.scalar("rc_evictions").value(), 0u);
}

// ---------------------------------------------------------------- //
// Statistics
// ---------------------------------------------------------------- //

TEST_F(RcFixture, EvictionStatsSplitZeroVsLiveUses)
{
    auto rc = make(2, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 0, false, 0);
    rc.insert(2, 0, 4, false, 0);
    rc.insert(3, 0, 4, false, 0); // evicts preg1 (0 uses)
    rc.insert(4, 0, 4, false, 0); // evicts a live entry
    EXPECT_EQ(stats.scalar("rc_evictions_zero_use").value(), 1u);
    EXPECT_EQ(stats.scalar("rc_evictions_live_use").value(), 1u);
    EXPECT_NEAR(rc.zeroUseVictimFraction(), 0.5, 1e-9);
}

TEST_F(RcFixture, NeverReadAndLifetimeTracked)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 2, false, 10);
    rc.insert(2, 1, 2, false, 10);
    read(rc, 1, 0);
    rc.lookup(1, 0).invalidate(20);
    rc.lookup(2, 1).invalidate(30);
    EXPECT_EQ(stats.scalar("rc_entries_never_read").value(), 1u);
    EXPECT_DOUBLE_EQ(stats.mean("rc_entry_lifetime").value(),
                     (10.0 + 20.0) / 2);
    EXPECT_DOUBLE_EQ(stats.mean("rc_reads_per_entry").value(), 0.5);
}

TEST_F(RcFixture, ReadStatsCountHitsAndMisses)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(1, 0, 2, false, 0);
    read(rc, 1, 0);
    read(rc, 2, 0); // miss
    read(rc, 1, 1); // wrong set: miss
    EXPECT_EQ(stats.scalar("rc_read_hits").value(), 1u);
    EXPECT_EQ(stats.scalar("rc_read_misses").value(), 2u);
}

// ---------------------------------------------------------------- //
// Diagnostics surface
// ---------------------------------------------------------------- //

TEST_F(RcFixture, ValidEntriesReportSetWayOrder)
{
    auto rc = make(4, 2, ReplacementPolicy::UseBased);
    rc.insert(20, 1, 3, true, 0);
    rc.insert(21, 0, 1, false, 0);
    const auto entries = rc.validEntries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].set, 0u);
    EXPECT_EQ(entries[0].preg, 21);
    EXPECT_EQ(entries[0].remUses, 1u);
    EXPECT_FALSE(entries[0].pinned);
    EXPECT_EQ(entries[1].set, 1u);
    EXPECT_EQ(entries[1].preg, 20);
    EXPECT_EQ(entries[1].remUses, 3u);
    EXPECT_TRUE(entries[1].pinned);
}

// ---------------------------------------------------------------- //
// Shadow fully-associative classifier
// ---------------------------------------------------------------- //

TEST(ShadowCache, BasicResidency)
{
    ShadowFullyAssocCache s(2, ReplacementPolicy::UseBased, 7);
    s.insert(1, 3, false, 0);
    s.insert(2, 1, false, 1);
    EXPECT_TRUE(s.contains(1));
    s.insert(3, 2, false, 2); // evicts preg 2 (fewest uses)
    EXPECT_TRUE(s.contains(1));
    EXPECT_FALSE(s.contains(2));
    EXPECT_TRUE(s.contains(3));
}

TEST(ShadowCache, ReadDecrementsAndInvalidates)
{
    ShadowFullyAssocCache s(4, ReplacementPolicy::UseBased, 7);
    s.insert(1, 1, false, 0);
    EXPECT_TRUE(s.read(1));
    s.invalidate(1);
    EXPECT_FALSE(s.read(1));
}
