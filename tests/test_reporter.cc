/**
 * @file
 * Tests for the bench Reporter: the JSON document layout against a
 * committed golden file (volatile wall-clock fields masked, git and
 * timestamp pinned through UBRC_GIT_DESCRIBE / UBRC_REPORT_EPOCH),
 * suite recording against a live simulation, and UBRC_RESULTS_DIR
 * handling.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "bench/reporter.hh"
#include "common/json.hh"

using namespace ubrc;
using namespace ubrc::bench;

namespace
{

void renderValue(json::Writer &w, const json::Value &v);

void
renderMember(json::Writer &w, const std::string &k,
             const json::Value &v)
{
    w.key(k);
    // Wall-clock (and wall-clock-derived throughput) fields are the
    // only nondeterministic part of a pinned-environment document;
    // mask them for comparison.
    if (k == "wall_seconds" || k == "wall_seconds_total" ||
        k == "sim_insts_per_second" ||
        k == "sim_instructions_per_second") {
        w.value(0.0);
        return;
    }
    renderValue(w, v);
}

void
renderValue(json::Writer &w, const json::Value &v)
{
    switch (v.type) {
      case json::Value::Type::Null: w.null(); break;
      case json::Value::Type::Bool: w.value(v.boolean); break;
      case json::Value::Type::Number: w.value(v.number); break;
      case json::Value::Type::String: w.value(v.string); break;
      case json::Value::Type::Array:
        w.beginArray();
        for (const auto &e : v.array)
            renderValue(w, e);
        w.endArray();
        break;
      case json::Value::Type::Object:
        w.beginObject();
        for (const auto &[k, m] : v.object)
            renderMember(w, k, m);
        w.endObject();
        break;
    }
}

/** Re-render a document deterministically with volatile fields
 *  masked, so two equal trees compare as equal strings. */
std::string
normalize(const std::string &doc)
{
    json::Writer w;
    renderValue(w, json::parse(doc));
    return w.str();
}

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

class ReporterTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("ubrc_reporter_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
        setenv("UBRC_RESULTS_DIR", dir.c_str(), 1);
        setenv("UBRC_WORKLOADS", "gzip", 1);
        setenv("UBRC_MAX_INSTS", "2000", 1);
        setenv("UBRC_JOBS", "1", 1);
        setenv("UBRC_GIT_DESCRIBE", "vtest-0-g0000000", 1);
        setenv("UBRC_REPORT_EPOCH", "1700000000", 1);
    }

    void
    TearDown() override
    {
        for (const char *var :
             {"UBRC_RESULTS_DIR", "UBRC_WORKLOADS", "UBRC_MAX_INSTS",
              "UBRC_JOBS", "UBRC_GIT_DESCRIBE", "UBRC_REPORT_EPOCH"})
            unsetenv(var);
        std::filesystem::remove_all(dir);
    }

    std::filesystem::path dir;
};

/**
 * The document for a harness with fixed literal cells is fully
 * deterministic under a pinned environment; any layout or meta-block
 * change must show up as a diff against the committed golden file.
 */
TEST_F(ReporterTest, GoldenDocument)
{
    std::string produced;
    {
        Reporter r("golden");
        r.banner("Golden harness", "Figure 0");
        r.config("16-entry test config");
        auto &t = r.table("cells", {"kind", "value"});
        t.row({"text", "hello \"world\""});
        t.row({"uint", uint64_t(42)});
        t.row({"real", Cell::real(2.0 / 3.0, 4)});
        t.row({"typed", Cell::typed("+1.9%", 0.019)});
        t.row({"null", Cell::null()});
        t.print();
        produced = r.write();
        ASSERT_FALSE(produced.empty());
    }
    const std::filesystem::path golden =
        std::filesystem::path(UBRC_TEST_GOLDEN_DIR) /
        "reporter_golden.json";
    const std::string got = normalize(slurp(produced));
    if (!std::filesystem::exists(golden)) {
        // First run (or intentional regeneration): write the
        // candidate next to where the golden belongs and fail.
        std::ofstream(golden.string() + ".actual") << got << "\n";
        FAIL() << "golden file missing: " << golden
               << " (candidate written to " << golden << ".actual)";
    }
    const std::string want = normalize(slurp(golden));
    if (got != want)
        std::ofstream(golden.string() + ".actual") << got << "\n";
    EXPECT_EQ(got, want) << "reporter document layout changed; "
                         << "compare " << golden << ".actual";
}

TEST_F(ReporterTest, RecordsSuiteRuns)
{
    Reporter r("suite_test");
    const sim::SimConfig cfg = sim::SimConfig::lruCache();
    const sim::SuiteResult res = r.run("lru", cfg);
    ASSERT_EQ(res.runs.size(), 1u);
    EXPECT_EQ(res.runs[0].workload, "gzip");

    const json::Value v = json::parse(r.json());
    EXPECT_DOUBLE_EQ(v.at("schema_version").number, 1.0);
    EXPECT_EQ(v.at("kind").string, "bench");
    const json::Value &meta = v.at("meta");
    EXPECT_EQ(meta.at("harness").string, "suite_test");
    // No banner: title/paper_ref are null, config falls back to the
    // first suite's describe-string.
    EXPECT_TRUE(meta.at("title").isNull());
    EXPECT_EQ(meta.at("config").string, cfg.describe());
    EXPECT_EQ(meta.at("git").string, "vtest-0-g0000000");
    EXPECT_DOUBLE_EQ(meta.at("generated_unix").number, 1700000000.0);
    EXPECT_DOUBLE_EQ(meta.at("max_insts").number, 2000.0);
    ASSERT_EQ(meta.at("workloads").array.size(), 1u);
    EXPECT_EQ(meta.at("workloads").array[0].string, "gzip");

    ASSERT_EQ(v.at("suites").array.size(), 1u);
    const json::Value &s = v.at("suites").array[0];
    EXPECT_EQ(s.at("label").string, "lru");
    EXPECT_EQ(s.at("config").string, cfg.describe());
    EXPECT_DOUBLE_EQ(s.at("suite").at("num_runs").number, 1.0);
    // Serialized at 12 significant digits (%.12g), not bit-exact.
    EXPECT_NEAR(s.at("suite").at("geomean_ipc").number,
                res.geomeanIpc(), 1e-9);
    EXPECT_EQ(s.at("suite")
                  .at("runs")
                  .array[0]
                  .at("workload")
                  .string,
              "gzip");
}

TEST_F(ReporterTest, MonolithicIpcIsCachedPerLatency)
{
    Reporter r("mono_test");
    const double a = r.monolithicIpc(3);
    const double b = r.monolithicIpc(3);
    EXPECT_DOUBLE_EQ(a, b);
    const json::Value v = json::parse(r.json());
    // The second call hits the cache: exactly one recorded suite.
    ASSERT_EQ(v.at("suites").array.size(), 1u);
    EXPECT_EQ(v.at("suites").array[0].at("label").string,
              "monolithic-3c");
}

TEST_F(ReporterTest, WriteHonorsResultsDirAndDisarmsDestructor)
{
    std::string path;
    {
        Reporter r("dir_test");
        r.table("t", {"a"}).row({uint64_t(1)});
        path = r.write();
    }
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(std::filesystem::path(path).parent_path(), dir);
    EXPECT_EQ(std::filesystem::path(path).filename(),
              "BENCH_dir_test.json");
    ASSERT_TRUE(std::filesystem::exists(path));
    // The document on disk parses and carries the schema version.
    const json::Value v = json::parse(slurp(path));
    EXPECT_DOUBLE_EQ(v.at("schema_version").number, 1.0);
}
