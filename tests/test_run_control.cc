/**
 * @file
 * Tests for sim::RunControl: per-run deadlines and cooperative
 * cancellation layered on runOneChecked()/runSuite().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/json.hh"
#include "sim/results_json.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace ubrc;

namespace
{

sim::SimConfig
smallConfig()
{
    sim::SimConfig cfg = sim::SimConfig::useBasedCache();
    return cfg;
}

workload::Workload
kernel()
{
    return workload::buildWorkload("gzip");
}

std::string
renderOutcome(const sim::RunOutcome &o)
{
    json::Writer w(false);
    sim::writeRunOutcome(w, o);
    return w.str();
}

} // namespace

TEST(RunControl, ExpiredDeadlineIsContainedAsDeadlineExceeded)
{
    // A deadline already in the past: the run must abort at its first
    // poll with a contained outcome, not an exception.
    sim::RunControl ctl;
    ctl.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1);
    ctl.hasDeadline = true;
    ctl.pollIntervalCycles = 16;

    const sim::RunOutcome o =
        sim::runOneChecked(smallConfig(), kernel(), 5000000, ctl);
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.kind, sim::ErrorKind::DeadlineExceeded);
    EXPECT_NE(o.message.find("deadline"), std::string::npos);
    EXPECT_FALSE(o.snapshotText.empty());
}

TEST(RunControl, RaisedCancelFlagIsContainedAsCanceled)
{
    std::atomic<bool> cancel{true};
    sim::RunControl ctl;
    ctl.cancel = &cancel;
    ctl.pollIntervalCycles = 16;

    const sim::RunOutcome o =
        sim::runOneChecked(smallConfig(), kernel(), 5000000, ctl);
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.kind, sim::ErrorKind::Canceled);
}

TEST(RunControl, CancelWinsOverExpiredDeadline)
{
    std::atomic<bool> cancel{true};
    sim::RunControl ctl = sim::RunControl::deadlineAfterMs(0);
    ctl.cancel = &cancel;
    ctl.pollIntervalCycles = 16;

    const sim::RunOutcome o =
        sim::runOneChecked(smallConfig(), kernel(), 5000000, ctl);
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.kind, sim::ErrorKind::Canceled);
}

TEST(RunControl, EngagedButUntriggeredControlIsBitIdentical)
{
    // Polling must only observe: a run under a generous deadline is
    // bit-identical to one with no control at all.
    const sim::RunOutcome plain =
        sim::runOneChecked(smallConfig(), kernel(), 20000);
    sim::RunControl ctl = sim::RunControl::deadlineAfterMs(3600000);
    const sim::RunOutcome ruled =
        sim::runOneChecked(smallConfig(), kernel(), 20000, ctl);
    EXPECT_TRUE(plain.ok);
    EXPECT_EQ(renderOutcome(plain), renderOutcome(ruled));
}

TEST(RunControl, CanceledSuiteYieldsOneRowPerWorkload)
{
    std::atomic<bool> cancel{true};
    sim::RunControl ctl;
    ctl.cancel = &cancel;
    ctl.pollIntervalCycles = 16;

    const std::vector<std::string> names = {"gzip", "mcf", "twolf"};
    const sim::SuiteResult sr = sim::runSuite(
        smallConfig(), names, {}, 100000, 1, ctl);
    ASSERT_EQ(sr.runs.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(sr.runs[i].workload, names[i]);
        EXPECT_TRUE(sr.runs[i].failed);
        EXPECT_EQ(sr.runs[i].errorKind, sim::ErrorKind::Canceled);
    }
    EXPECT_EQ(sr.numOk(), 0u);
}

TEST(RunControl, CanceledSuiteParallelStillCoversEveryRow)
{
    std::atomic<bool> cancel{true};
    sim::RunControl ctl;
    ctl.cancel = &cancel;
    ctl.pollIntervalCycles = 16;

    const std::vector<std::string> names = {"gzip", "mcf", "twolf",
                                            "gcc", "vpr"};
    const sim::SuiteResult sr = sim::runSuite(
        smallConfig(), names, {}, 100000, 4, ctl);
    ASSERT_EQ(sr.runs.size(), names.size());
    for (const auto &run : sr.runs) {
        EXPECT_TRUE(run.failed);
        EXPECT_EQ(run.errorKind, sim::ErrorKind::Canceled);
    }
}
