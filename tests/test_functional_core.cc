/**
 * @file
 * Unit and parameterized tests for architectural execution.
 */

#include <gtest/gtest.h>

#include "common/sparse_memory.hh"
#include "isa/assembler.hh"
#include "isa/functional_core.hh"

using namespace ubrc;
using namespace ubrc::isa;

namespace
{

/** Run a program to completion and return (core, memory) state. */
struct RunResult
{
    std::array<uint64_t, numArchRegs> regs;
    uint64_t insts;
};

RunResult
runProgram(const std::string &src, SparseMemory &mem)
{
    Program p = assemble(src);
    FunctionalCore core(p, mem);
    core.run(1'000'000);
    EXPECT_TRUE(core.halted());
    RunResult r;
    for (int i = 0; i < numArchRegs; ++i)
        r.regs[i] = core.reg(i);
    r.insts = core.instsExecuted();
    return r;
}

RunResult
runProgram(const std::string &src)
{
    SparseMemory mem;
    return runProgram(src, mem);
}

} // namespace

TEST(FunctionalCore, RegisterZeroIsHardwired)
{
    auto r = runProgram("li r0, 99\nadd r0, r0, r0\nhalt\n");
    EXPECT_EQ(r.regs[0], 0u);
}

/** (source fragment, destination register, expected value). */
using AluCase = std::tuple<const char *, int, uint64_t>;

class AluOps : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluOps, ComputesExpectedValue)
{
    const auto &[body, rd, expected] = GetParam();
    const std::string src =
        std::string("li r1, 100\nli r2, 7\nli r3, -5\n") + body +
        "\nhalt\n";
    auto r = runProgram(src);
    EXPECT_EQ(r.regs[rd], expected) << body;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluOps,
    ::testing::Values(
        AluCase{"add r4, r1, r2", 4, 107},
        AluCase{"sub r4, r1, r2", 4, 93},
        AluCase{"add r4, r1, r3", 4, 95},
        AluCase{"and r4, r1, r2", 4, 100 & 7},
        AluCase{"or  r4, r1, r2", 4, 100 | 7},
        AluCase{"xor r4, r1, r2", 4, 100 ^ 7},
        AluCase{"sll r4, r2, r2", 4, 7ull << 7},
        AluCase{"srl r4, r1, r2", 4, 100ull >> 7},
        AluCase{"srl r4, r3, r2", 4, uint64_t(-5) >> 7},
        AluCase{"sra r4, r3, r2", 4, uint64_t(-1)},
        AluCase{"slt r4, r3, r2", 4, 1},
        AluCase{"slt r4, r2, r3", 4, 0},
        AluCase{"sltu r4, r3, r2", 4, 0}, // -5 is huge unsigned
        AluCase{"seq r4, r1, r1", 4, 1},
        AluCase{"seq r4, r1, r2", 4, 0},
        AluCase{"mul r4, r1, r2", 4, 700},
        AluCase{"mul r4, r3, r2", 4, uint64_t(-35)},
        AluCase{"div r4, r1, r2", 4, 14},
        AluCase{"div r4, r3, r2", 4, uint64_t(0)}, // -5/7 == 0
        AluCase{"rem r4, r1, r2", 4, 2},
        AluCase{"addi r4, r1, 5", 4, 105},
        AluCase{"andi r4, r1, 6", 4, 100 & 6},
        AluCase{"ori  r4, r1, 3", 4, 100 | 3},
        AluCase{"xori r4, r1, 1", 4, 101},
        AluCase{"slli r4, r2, 4", 4, 7u << 4},
        AluCase{"srli r4, r1, 2", 4, 25},
        AluCase{"srai r4, r3, 1", 4, uint64_t(-3)},
        AluCase{"slti r4, r3, 0", 4, 1}));

TEST(FunctionalCore, MulhUnsignedHighPart)
{
    auto r = runProgram("li r1, 0xffffffffffffffff\n"
                        "li r2, 2\n"
                        "mulh r3, r1, r2\n"
                        "halt\n");
    EXPECT_EQ(r.regs[3], 1u);
}

TEST(FunctionalCore, DivideByZeroIsDefined)
{
    auto r = runProgram("li r1, 5\nli r2, 0\n"
                        "div r3, r1, r2\nrem r4, r1, r2\n"
                        "fxdiv r5, r1, r2\nhalt\n");
    EXPECT_EQ(r.regs[3], ~0ULL);
    EXPECT_EQ(r.regs[4], 5u);
    EXPECT_EQ(r.regs[5], ~0ULL);
}

TEST(FunctionalCore, FixedPointOps)
{
    // 2.0 * 3.0 = 6.0 and 6.0 / 2.0 = 3.0 in Q32.32.
    auto r = runProgram("li r1, 0x200000000\n"
                        "li r2, 0x300000000\n"
                        "fxmul r3, r1, r2\n"
                        "fxdiv r4, r3, r1\n"
                        "fxadd r5, r1, r2\n"
                        "fxsub r6, r2, r1\n"
                        "halt\n");
    EXPECT_EQ(r.regs[3], 0x600000000u);
    EXPECT_EQ(r.regs[4], 0x300000000u);
    EXPECT_EQ(r.regs[5], 0x500000000u);
    EXPECT_EQ(r.regs[6], 0x100000000u);
}

TEST(FunctionalCore, LoadsAndStores)
{
    SparseMemory mem;
    auto r = runProgram(R"(
        li  r1, 0x10000
        li  r2, -2
        sd  r2, 0(r1)
        ld  r3, 0(r1)
        lw  r4, 0(r1)
        lwu r5, 0(r1)
        lb  r6, 0(r1)
        lbu r7, 0(r1)
        sb  r2, 9(r1)
        lbu r8, 9(r1)
        sw  r2, 16(r1)
        ld  r9, 16(r1)
        halt
    )", mem);
    EXPECT_EQ(r.regs[3], uint64_t(-2));
    EXPECT_EQ(r.regs[4], uint64_t(-2)); // lw sign-extends
    EXPECT_EQ(r.regs[5], 0xfffffffeu);  // lwu zero-extends
    EXPECT_EQ(r.regs[6], uint64_t(-2)); // lb sign-extends
    EXPECT_EQ(r.regs[7], 0xfeu);
    EXPECT_EQ(r.regs[8], 0xfeu);
    EXPECT_EQ(r.regs[9], 0xfffffffeu); // sw wrote 4 bytes, rest 0
    EXPECT_EQ(mem.read(0x10000, 8), uint64_t(-2));
}

TEST(FunctionalCore, BranchesAndLoops)
{
    auto r = runProgram(R"(
        li   r1, 0
        li   r2, 10
loop:   addi r1, r1, 1
        blt  r1, r2, loop
        halt
    )");
    EXPECT_EQ(r.regs[1], 10u);
    EXPECT_EQ(r.insts, 2 + 20 + 1u);
}

TEST(FunctionalCore, CallReturnAndLink)
{
    auto r = runProgram(R"(
        li   sp, 0x20000
        li   r5, 3
        call double_it
        call double_it
        halt
double_it:
        add  r5, r5, r5
        ret
    )");
    EXPECT_EQ(r.regs[5], 12u);
}

TEST(FunctionalCore, IndirectJumpTable)
{
    auto r = runProgram(R"(
        .data 0x10000
table:  .word64 case0, case1
        .code
        li   r1, 1
        la   r2, table
        slli r3, r1, 3
        add  r2, r2, r3
        ld   r4, 0(r2)
        jr   r4
case0:  li   r5, 100
        halt
case1:  li   r5, 200
        halt
    )");
    EXPECT_EQ(r.regs[5], 200u);
}

TEST(FunctionalCore, JalrLinksAndJumps)
{
    auto r = runProgram(R"(
        la   r1, target
        jalr r2, r1
        halt
target: li   r3, 7
        jr   r2
    )");
    EXPECT_EQ(r.regs[3], 7u);
}

TEST(FunctionalCore, ResetRestoresInitialState)
{
    SparseMemory mem;
    Program p = assemble(".data 0x10000\nv: .word64 5\n.code\n"
                         "la r1, v\nld r2, 0(r1)\n"
                         "addi r2, r2, 1\nsd r2, 0(r1)\nhalt\n");
    FunctionalCore core(p, mem);
    core.run();
    EXPECT_EQ(mem.read(0x10000, 8), 6u);
    core.reset();
    EXPECT_FALSE(core.halted());
    EXPECT_EQ(core.pc(), p.entry);
    EXPECT_EQ(mem.read(0x10000, 8), 5u); // data reloaded
    core.run();
    EXPECT_EQ(mem.read(0x10000, 8), 6u);
}

TEST(FunctionalCore, RunRespectsInstructionLimit)
{
    SparseMemory mem;
    Program p = assemble("loop: j loop\n");
    FunctionalCore core(p, mem);
    EXPECT_EQ(core.run(100), 100u);
    EXPECT_FALSE(core.halted());
}

TEST(FunctionalCore, StepReportsOutcome)
{
    SparseMemory mem;
    Program p = assemble("li r1, 3\nbeqz r0, over\nnop\nover: halt\n");
    FunctionalCore core(p, mem);
    ExecResult r1 = core.step();
    EXPECT_TRUE(r1.wroteReg);
    EXPECT_EQ(r1.destReg, 1);
    EXPECT_EQ(r1.destValue, 3u);
    ExecResult r2 = core.step();
    EXPECT_TRUE(r2.taken);
    EXPECT_EQ(r2.nextPc, p.symbol("over"));
    ExecResult r3 = core.step();
    EXPECT_TRUE(r3.isHalt);
    EXPECT_TRUE(core.halted());
}
