/**
 * @file
 * Unit tests for the sparse memory image.
 */

#include <gtest/gtest.h>

#include "common/sparse_memory.hh"

using ubrc::SparseMemory;

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(SparseMemory, WriteReadRoundTrip)
{
    SparseMemory m;
    m.write(0x1000, 8, 0x0123456789abcdefULL);
    EXPECT_EQ(m.read(0x1000, 8), 0x0123456789abcdefULL);
    // Little-endian byte order.
    EXPECT_EQ(m.readByte(0x1000), 0xefu);
    EXPECT_EQ(m.readByte(0x1007), 0x01u);
}

TEST(SparseMemory, PartialSizes)
{
    SparseMemory m;
    m.write(0x2000, 4, 0xddccbbaa);
    EXPECT_EQ(m.read(0x2000, 1), 0xaau);
    EXPECT_EQ(m.read(0x2000, 2), 0xbbaau);
    EXPECT_EQ(m.read(0x2000, 4), 0xddccbbaau);
    EXPECT_EQ(m.read(0x2000, 8), 0xddccbbaau); // above bytes zero
}

TEST(SparseMemory, CrossesPageBoundary)
{
    SparseMemory m;
    const ubrc::Addr addr = SparseMemory::pageSize - 4;
    m.write(addr, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(addr, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(SparseMemory, WriteBlock)
{
    SparseMemory m;
    const uint8_t data[] = {1, 2, 3, 4, 5};
    m.writeBlock(0x3000, data, sizeof(data));
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(m.readByte(0x3000 + i), data[i]);
}

TEST(SparseMemory, ClearDropsEverything)
{
    SparseMemory m;
    m.write(0x1000, 8, 42);
    m.clear();
    EXPECT_EQ(m.read(0x1000, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(SparseMemory, OverwriteIsLastWriteWins)
{
    SparseMemory m;
    m.write(0x4000, 8, ~0ULL);
    m.write(0x4002, 2, 0);
    EXPECT_EQ(m.read(0x4000, 8), 0xffffffff0000ffffULL);
}
