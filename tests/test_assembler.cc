/**
 * @file
 * Unit tests for the two-pass assembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

using namespace ubrc;
using namespace ubrc::isa;

namespace
{

Program
asmOk(const std::string &src)
{
    return assemble(src);
}

} // namespace

TEST(Assembler, EmptyProgram)
{
    Program p = asmOk("");
    EXPECT_TRUE(p.code.empty());
    EXPECT_EQ(p.entry, p.codeBase);
}

TEST(Assembler, SimpleInstructions)
{
    Program p = asmOk(R"(
        add r1, r2, r3
        addi r4, r5, -12
        li  r6, 0x1000
        halt
    )");
    ASSERT_EQ(p.code.size(), 4u);
    EXPECT_EQ(p.code[0].op, Opcode::ADD);
    EXPECT_EQ(p.code[0].rd, 1);
    EXPECT_EQ(p.code[0].rs1, 2);
    EXPECT_EQ(p.code[0].rs2, 3);
    EXPECT_EQ(p.code[1].op, Opcode::ADDI);
    EXPECT_EQ(p.code[1].imm, -12);
    EXPECT_EQ(p.code[2].op, Opcode::LI);
    EXPECT_EQ(p.code[2].imm, 0x1000);
    EXPECT_EQ(p.code[3].op, Opcode::HALT);
}

TEST(Assembler, RegisterAliases)
{
    Program p = asmOk("add zero, ra, sp\nadd t0, s0, a0\n");
    EXPECT_EQ(p.code[0].rd, 0);
    EXPECT_EQ(p.code[0].rs1, 1);
    EXPECT_EQ(p.code[0].rs2, 2);
    EXPECT_EQ(p.code[1].rd, 5);
    EXPECT_EQ(p.code[1].rs1, 13);
    EXPECT_EQ(p.code[1].rs2, 23);
}

TEST(Assembler, ParseRegisterHelper)
{
    EXPECT_EQ(parseRegister("r0"), 0);
    EXPECT_EQ(parseRegister("r31"), 31);
    EXPECT_EQ(parseRegister("at"), 31);
    EXPECT_EQ(parseRegister("nonsense"), -1);
    EXPECT_EQ(parseRegister("r32"), -1);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = asmOk(R"(
start:  addi r1, r1, 1
        bne  r1, r2, start
        j    end
        nop
end:    halt
    )");
    EXPECT_EQ(p.code[1].op, Opcode::BNE);
    EXPECT_EQ(p.code[1].imm, static_cast<int64_t>(p.addrOf(0)));
    EXPECT_EQ(p.code[2].imm, static_cast<int64_t>(p.addrOf(4)));
    EXPECT_EQ(p.symbol("start"), p.addrOf(0));
    EXPECT_EQ(p.symbol("end"), p.addrOf(4));
}

TEST(Assembler, ForwardReferences)
{
    Program p = asmOk("j fwd\nnop\nfwd: halt\n");
    EXPECT_EQ(p.code[0].imm, static_cast<int64_t>(p.addrOf(2)));
}

TEST(Assembler, MemoryOperandForms)
{
    Program p = asmOk(R"(
        ld r1, 16(r2)
        ld r3, r4, 32
        sd r5, -8(r6)
        lbu r7, (r8)
    )");
    EXPECT_EQ(p.code[0].imm, 16);
    EXPECT_EQ(p.code[0].rs1, 2);
    EXPECT_EQ(p.code[1].imm, 32);
    EXPECT_EQ(p.code[2].imm, -8);
    EXPECT_EQ(p.code[2].rs2, 5);
    EXPECT_EQ(p.code[3].imm, 0);
    EXPECT_EQ(p.code[3].rs1, 8);
}

TEST(Assembler, PseudoInstructions)
{
    Program p = asmOk(R"(
        .data 0x9000
tab:    .word64 1
        .code
        la   r1, tab
        mv   r2, r3
        not  r4, r5
        neg  r6, r7
        beqz r8, skip
        bnez r9, skip
        bgt  r1, r2, skip
        ble  r1, r2, skip
skip:   call skip
        ret
    )");
    EXPECT_EQ(p.code[0].op, Opcode::LI);
    EXPECT_EQ(p.code[0].imm, 0x9000);
    EXPECT_EQ(p.code[1].op, Opcode::ADDI);
    EXPECT_EQ(p.code[2].op, Opcode::XORI);
    EXPECT_EQ(p.code[2].imm, -1);
    EXPECT_EQ(p.code[3].op, Opcode::SUB);
    EXPECT_EQ(p.code[3].rs1, 0);
    EXPECT_EQ(p.code[4].op, Opcode::BEQ);
    EXPECT_EQ(p.code[4].rs2, 0);
    EXPECT_EQ(p.code[5].op, Opcode::BNE);
    // bgt a,b -> blt b,a
    EXPECT_EQ(p.code[6].op, Opcode::BLT);
    EXPECT_EQ(p.code[6].rs1, 2);
    EXPECT_EQ(p.code[6].rs2, 1);
    EXPECT_EQ(p.code[7].op, Opcode::BGE);
    EXPECT_EQ(p.code[8].op, Opcode::JAL);
    EXPECT_EQ(p.code[8].rd, 1);
    EXPECT_EQ(p.code[9].op, Opcode::JR);
    EXPECT_EQ(p.code[9].rs1, 1);
}

TEST(Assembler, DataDirectives)
{
    Program p = asmOk(R"(
        .data 0x10000
w64:    .word64 0x1122334455667788, 2
w32:    .word32 0xaabbccdd
bytes:  .byte 1, 2, 3
        .align 8
after:  .word64 9
        .space 16
        .code
        halt
    )");
    ASSERT_EQ(p.data.size(), 1u);
    const auto &seg = p.data[0];
    EXPECT_EQ(seg.base, 0x10000u);
    EXPECT_EQ(p.symbol("w64"), 0x10000u);
    EXPECT_EQ(p.symbol("w32"), 0x10010u);
    EXPECT_EQ(p.symbol("bytes"), 0x10014u);
    EXPECT_EQ(p.symbol("after"), 0x10018u); // aligned to 8
    EXPECT_EQ(seg.bytes[0], 0x88);
    EXPECT_EQ(seg.bytes[7], 0x11);
    EXPECT_EQ(seg.bytes.size(), 16u + 4 + 3 + 1 + 8 + 16);
}

TEST(Assembler, CharacterLiterals)
{
    Program p = asmOk("li r1, 'A'\nli r2, ' '\n");
    EXPECT_EQ(p.code[0].imm, 65);
    EXPECT_EQ(p.code[1].imm, 32);
}

TEST(Assembler, LabelArithmetic)
{
    Program p = asmOk(R"(
        .data 0x8000
base:   .space 64
        .code
        la r1, base+16
        la r2, base-8
    )");
    EXPECT_EQ(p.code[0].imm, 0x8010);
    EXPECT_EQ(p.code[1].imm, 0x7ff8);
}

TEST(Assembler, CommentsIgnored)
{
    Program p = asmOk("add r1, r2, r3 ; trailing\n# whole line\nhalt\n");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, EntryDirective)
{
    Program p = asmOk(".entry main\nnop\nmain: halt\n");
    EXPECT_EQ(p.entry, p.addrOf(1));
}

TEST(Assembler, LargeUnsignedConstants)
{
    Program p = asmOk("li r1, 0xffffffffffffffff\n"
                      "li r2, 0x5555555555555555\n");
    EXPECT_EQ(p.code[0].imm, -1);
    EXPECT_EQ(p.code[1].imm, 0x5555555555555555LL);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate r1, r2\n"), AssemblerError);
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_THROW(assemble("add r1, r2, r99\n"), AssemblerError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("add r1, r2\n"), AssemblerError);
    EXPECT_THROW(assemble("halt r1\n"), AssemblerError);
}

TEST(AssemblerErrors, UndefinedLabel)
{
    EXPECT_THROW(assemble("j nowhere\n"), AssemblerError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), AssemblerError);
}

TEST(AssemblerErrors, DataOutsideSection)
{
    EXPECT_THROW(assemble(".word64 5\n"), AssemblerError);
}

TEST(AssemblerErrors, InstructionInDataSection)
{
    EXPECT_THROW(assemble(".data 0x1000\nadd r1, r2, r3\n"),
                 AssemblerError);
}

TEST(AssemblerErrors, BadNumber)
{
    EXPECT_THROW(assemble("li r1, 12zz\n"), AssemblerError);
}

TEST(AssemblerErrors, BadAlignment)
{
    EXPECT_THROW(assemble(".data 0x1000\n.align 3\n"), AssemblerError);
}

TEST(AssemblerErrors, MessageContainsLineNumber)
{
    try {
        assemble("nop\nnop\nbogus\n");
        FAIL() << "expected AssemblerError";
    } catch (const AssemblerError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}
