/**
 * @file
 * Tests for the recoverable-error hierarchy: kind/exit-code mapping,
 * base-class catchability, snapshot attachment, and — the point of
 * the exercise — that a failing run inside a suite no longer takes
 * the whole process down.
 */

#include <gtest/gtest.h>

#include "sim/diagnostics.hh"
#include "sim/runner.hh"
#include "sim/sim_error.hh"
#include "workload/workload.hh"

using namespace ubrc;
using namespace ubrc::sim;

TEST(SimError, KindAndExitCodeMapping)
{
    EXPECT_EQ(ConfigError("x").kind(), ErrorKind::Config);
    EXPECT_EQ(ConfigError("x").exitCode(), 2);
    EXPECT_EQ(CheckerError("x").kind(), ErrorKind::CheckerDivergence);
    EXPECT_EQ(CheckerError("x").exitCode(), 3);
    EXPECT_EQ(DeadlockError("x").kind(), ErrorKind::Deadlock);
    EXPECT_EQ(DeadlockError("x").exitCode(), 4);
    EXPECT_EQ(InvariantError("x").kind(), ErrorKind::Invariant);
    EXPECT_EQ(InvariantError("x").exitCode(), 5);
    EXPECT_EQ(BadRequestError("x").kind(), ErrorKind::BadRequest);
    EXPECT_EQ(BadRequestError("x").exitCode(), 6);
    EXPECT_EQ(DeadlineExceededError("x").kind(),
              ErrorKind::DeadlineExceeded);
    EXPECT_EQ(DeadlineExceededError("x").exitCode(), 7);
    EXPECT_EQ(QueueFullError("x").kind(), ErrorKind::QueueFull);
    EXPECT_EQ(QueueFullError("x").exitCode(), 8);
    EXPECT_EQ(CanceledError("x").kind(), ErrorKind::Canceled);
    EXPECT_EQ(CanceledError("x").exitCode(), 9);
}

TEST(SimError, RetryableKinds)
{
    // Only transient service conditions are retryable: resubmitting
    // an identical request can succeed. A bad request or a deadline
    // blow-out will fail identically on retry.
    EXPECT_TRUE(isRetryable(ErrorKind::QueueFull));
    EXPECT_TRUE(isRetryable(ErrorKind::Canceled));
    EXPECT_FALSE(isRetryable(ErrorKind::Config));
    EXPECT_FALSE(isRetryable(ErrorKind::CheckerDivergence));
    EXPECT_FALSE(isRetryable(ErrorKind::Deadlock));
    EXPECT_FALSE(isRetryable(ErrorKind::Invariant));
    EXPECT_FALSE(isRetryable(ErrorKind::BadRequest));
    EXPECT_FALSE(isRetryable(ErrorKind::DeadlineExceeded));
}

TEST(SimError, KindNames)
{
    EXPECT_STREQ(toString(ErrorKind::Config), "config error");
    EXPECT_STREQ(toString(ErrorKind::CheckerDivergence),
                 "checker divergence");
    EXPECT_STREQ(toString(ErrorKind::Deadlock), "deadlock");
    EXPECT_STREQ(toString(ErrorKind::Invariant),
                 "invariant violation");
    EXPECT_STREQ(toString(ErrorKind::BadRequest), "bad request");
    EXPECT_STREQ(toString(ErrorKind::DeadlineExceeded),
                 "deadline exceeded");
    EXPECT_STREQ(toString(ErrorKind::QueueFull), "queue full");
    EXPECT_STREQ(toString(ErrorKind::Canceled), "canceled");
}

TEST(SimError, CatchableAsBaseClass)
{
    bool caught = false;
    try {
        throw DeadlockError("stuck");
    } catch (const SimError &e) {
        caught = true;
        EXPECT_EQ(e.kind(), ErrorKind::Deadlock);
        EXPECT_STREQ(e.what(), "stuck");
    }
    EXPECT_TRUE(caught);
}

TEST(SimError, SnapshotAttachmentSurvivesCopy)
{
    CheckerError e("diverged");
    EXPECT_FALSE(e.hasSnapshot());
    PipelineSnapshot snap;
    snap.cycle = 42;
    e.attachSnapshot(std::move(snap));
    ASSERT_TRUE(e.hasSnapshot());

    const CheckerError copy = e; // exceptions get copied when thrown
    ASSERT_TRUE(copy.hasSnapshot());
    EXPECT_EQ(copy.snapshot().cycle, 42);
}

TEST(SimError, RunOneCheckedContainsDivergence)
{
    // Corrupting cached values guarantees a wrong result reaches the
    // checker eventually; the outcome must report it, not crash.
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.inject.rate = 0.01;
    cfg.inject.seed = 3;
    cfg.inject.targets = inject::TargetRegCacheValue;

    const auto w = workload::buildWorkload("gzip");
    const RunOutcome out = runOneChecked(cfg, w, 50000);
    ASSERT_FALSE(out.ok);
    EXPECT_EQ(out.kind, ErrorKind::CheckerDivergence);
    EXPECT_NE(out.message.find("checker"), std::string::npos);
    EXPECT_FALSE(out.snapshotText.empty());
    EXPECT_FALSE(out.faults.empty());

    // The same process can keep simulating cleanly afterwards.
    SimConfig clean = SimConfig::useBasedCache();
    const RunOutcome ok = runOneChecked(clean, w, 20000);
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.result.instsRetired, 20000u);
}

TEST(SimError, RunSuiteContinuesPastFailures)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.inject.rate = 0.01;
    cfg.inject.seed = 3;
    cfg.inject.targets = inject::TargetRegCacheValue;

    const SuiteResult r =
        runSuite(cfg, {"gzip", "crafty"}, {}, 50000);
    ASSERT_EQ(r.runs.size(), 2u); // both ran despite failures
    EXPECT_GE(r.numFailed(), 1u);
    EXPECT_NE(r.failureSummary().find("checker"), std::string::npos);

    // Aggregates must skip failed runs rather than average garbage.
    const double g = r.geomeanIpc();
    if (r.numFailed() == r.runs.size())
        EXPECT_EQ(g, 0.0);
    else
        EXPECT_GT(g, 0.0);
}

TEST(SimError, RunOnePropagatesConfigError)
{
    SimConfig cfg = SimConfig::useBasedCache();
    cfg.rc.assoc = 3; // 64 entries not divisible into 3-way sets
    const auto w = workload::buildWorkload("gzip");
    EXPECT_THROW(runOne(cfg, w, 1000), ConfigError);
    EXPECT_THROW(runOneChecked(cfg, w, 1000), ConfigError);
}
