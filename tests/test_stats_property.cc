/**
 * @file
 * Property test: Distribution percentiles agree with a sorted-vector
 * reference over random sample sets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

using namespace ubrc;
using namespace ubrc::stats;

namespace
{

/** Smallest v such that at least ceil(frac * n) samples are <= v. */
uint64_t
refPercentile(std::vector<uint64_t> sorted, double frac)
{
    const size_t n = sorted.size();
    size_t need = static_cast<size_t>(
        std::ceil(frac * static_cast<double>(n)));
    if (need == 0)
        need = 1;
    return sorted[need - 1];
}

} // namespace

TEST(DistributionProperty, PercentilesMatchSortedReference)
{
    Rng rng(314);
    for (int trial = 0; trial < 40; ++trial) {
        Distribution d(512);
        std::vector<uint64_t> samples;
        const int n = 1 + static_cast<int>(rng.below(400));
        for (int i = 0; i < n; ++i) {
            const uint64_t v = rng.below(512);
            d.sample(v);
            samples.push_back(v);
        }
        std::sort(samples.begin(), samples.end());
        for (double frac : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
            ASSERT_EQ(d.percentile(frac),
                      refPercentile(samples, frac))
                << "trial " << trial << " frac " << frac << " n " << n;
        }
        // Mean agrees too.
        double sum = 0;
        for (uint64_t v : samples)
            sum += static_cast<double>(v);
        ASSERT_NEAR(d.mean(), sum / n, 1e-9);
    }
}

TEST(DistributionProperty, WeightedSamplesEquivalent)
{
    Rng rng(99);
    Distribution weighted(256), unweighted(256);
    for (int i = 0; i < 200; ++i) {
        const uint64_t v = rng.below(256);
        const uint64_t w = 1 + rng.below(5);
        weighted.sample(v, w);
        for (uint64_t k = 0; k < w; ++k)
            unweighted.sample(v);
    }
    for (double frac : {0.1, 0.5, 0.9})
        EXPECT_EQ(weighted.percentile(frac),
                  unweighted.percentile(frac));
    EXPECT_DOUBLE_EQ(weighted.mean(), unweighted.mean());
    EXPECT_EQ(weighted.count(), unweighted.count());
}
