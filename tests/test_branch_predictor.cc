/**
 * @file
 * Unit tests for the YAGS predictor, return address stack, and
 * cascading indirect predictor.
 */

#include <gtest/gtest.h>

#include "frontend/branch_predictor.hh"

using namespace ubrc;
using namespace ubrc::frontend;

TEST(Yags, LearnsStronglyBiasedBranch)
{
    YagsPredictor p;
    const Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i)
        p.update(pc, 0, true);
    EXPECT_TRUE(p.predict(pc, 0));
}

TEST(Yags, LearnsNotTakenBias)
{
    YagsPredictor p;
    const Addr pc = 0x2004;
    for (int i = 0; i < 8; ++i)
        p.update(pc, 0, false);
    EXPECT_FALSE(p.predict(pc, 0));
}

TEST(Yags, LearnsHistoryCorrelatedExceptions)
{
    // Branch biased taken, but not-taken under one specific history:
    // the NT exception cache must capture it.
    YagsPredictor p;
    const Addr pc = 0x3000;
    const uint64_t h_taken = 0b1010, h_not = 0b0101;
    for (int i = 0; i < 32; ++i) {
        p.update(pc, h_taken, true);
        p.update(pc, h_not, false);
    }
    EXPECT_TRUE(p.predict(pc, h_taken));
    EXPECT_FALSE(p.predict(pc, h_not));
}

TEST(Yags, AlternatingPatternWithHistory)
{
    YagsPredictor p;
    const Addr pc = 0x4000;
    uint64_t ghr = 0;
    // Warm up on a strict alternation, feeding history like the core.
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        p.update(pc, ghr, taken);
        ghr = (ghr << 1) | taken;
        taken = !taken;
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool pred = p.predict(pc, ghr);
        correct += pred == taken;
        p.update(pc, ghr, taken);
        ghr = (ghr << 1) | taken;
        taken = !taken;
    }
    EXPECT_GT(correct, 95);
}

TEST(Yags, StorageBudgetNearTwelveKB)
{
    YagsPredictor p;
    const uint64_t bits = p.storageBits();
    EXPECT_GT(bits, 10 * 1024 * 8u);
    EXPECT_LT(bits, 14 * 1024 * 8u);
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, CheckpointRestoreRepairsTop)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    const auto cp = ras.save();
    ras.pop();              // speculative pop
    ras.push(0xdead);       // speculative push clobbers
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsAroundDepth)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Deepest entries were overwritten; the newest survive.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
}

TEST(Indirect, LearnsMonomorphicTarget)
{
    CascadingIndirectPredictor p;
    const Addr pc = 0x5000;
    EXPECT_EQ(p.predict(pc, 0), 0u); // no prediction yet
    p.update(pc, 0, 0x9000);
    EXPECT_EQ(p.predict(pc, 123), 0x9000u); // L1: path-independent
}

TEST(Indirect, PolymorphicUsesPathHistory)
{
    CascadingIndirectPredictor p;
    const Addr pc = 0x6000;
    const uint64_t path_a = 0x111, path_b = 0x999;
    for (int i = 0; i < 4; ++i) {
        p.update(pc, path_a, 0xaaa0);
        p.update(pc, path_b, 0xbbb0);
    }
    EXPECT_EQ(p.predict(pc, path_a), 0xaaa0u);
    EXPECT_EQ(p.predict(pc, path_b), 0xbbb0u);
}
