/**
 * @file
 * Unit tests for the named simulator configurations.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace ubrc;
using namespace ubrc::sim;
using namespace ubrc::regcache;

TEST(Config, UseBasedDesignPoint)
{
    const SimConfig c = SimConfig::useBasedCache();
    EXPECT_EQ(c.scheme, RegScheme::Cached);
    EXPECT_EQ(c.rc.entries, 64u);
    EXPECT_EQ(c.rc.assoc, 2u);
    EXPECT_EQ(c.rc.insertion, InsertionPolicy::UseBased);
    EXPECT_EQ(c.rc.replacement, ReplacementPolicy::UseBased);
    EXPECT_EQ(c.rc.indexing, IndexPolicy::FilteredRoundRobin);
    // Tuned parameters from Section 5.3.
    EXPECT_EQ(c.rc.maxUse, 7u);
    EXPECT_EQ(c.rc.unknownDefault, 1u);
    EXPECT_EQ(c.rc.fillDefault, 0u);
    EXPECT_EQ(c.backingLatency, 2);
}

TEST(Config, ReferenceCaches)
{
    const SimConfig lru = SimConfig::lruCache();
    EXPECT_EQ(lru.rc.insertion, InsertionPolicy::Always);
    EXPECT_EQ(lru.rc.replacement, ReplacementPolicy::LRU);
    const SimConfig nb = SimConfig::nonBypassCache();
    EXPECT_EQ(nb.rc.insertion, InsertionPolicy::NonBypass);
    EXPECT_EQ(nb.rc.replacement, ReplacementPolicy::LRU);
}

TEST(Config, MonolithicLatency)
{
    const SimConfig c = SimConfig::monolithic(3);
    EXPECT_EQ(c.scheme, RegScheme::Monolithic);
    EXPECT_EQ(c.rfLatency, 3);
    EXPECT_EQ(c.issueToExec(), 4); // rfLatency + 1
    EXPECT_EQ(SimConfig::monolithic(1).issueToExec(), 2);
}

TEST(Config, CachedIssueToExecIsTwo)
{
    EXPECT_EQ(SimConfig::useBasedCache().issueToExec(), 2);
    EXPECT_EQ(SimConfig::twoLevelFile(64).issueToExec(), 2);
}

TEST(Config, TwoLevelAddsArchRegisters)
{
    const SimConfig c = SimConfig::twoLevelFile(64);
    EXPECT_EQ(c.scheme, RegScheme::TwoLevel);
    EXPECT_EQ(c.twoLevel.l1Entries, 96u); // 64 + 32
}

TEST(Config, Table1Defaults)
{
    const SimConfig c;
    EXPECT_EQ(c.fetchWidth, 8u);
    EXPECT_EQ(c.issueWidth, 8u);
    EXPECT_EQ(c.retireWidth, 8u);
    EXPECT_EQ(c.maxRetireStores, 2u);
    EXPECT_EQ(c.iqEntries, 128u);
    EXPECT_EQ(c.robEntries, 512u);
    EXPECT_EQ(c.numPhysRegs, 512u);
    EXPECT_EQ(c.lqEntries, 128u);
    EXPECT_EQ(c.sqEntries, 128u);
    EXPECT_EQ(c.intAluUnits, 6u);
    EXPECT_EQ(c.branchUnits, 2u);
    EXPECT_EQ(c.fxDivLat, 18);
    EXPECT_EQ(c.loadToUse, 4);
    EXPECT_EQ(c.memory.memLatency, 180);
    EXPECT_EQ(c.memory.l2Latency, 12);
    EXPECT_EQ(c.bypassStages, 2u);
}

TEST(Config, DescribeMentionsScheme)
{
    EXPECT_NE(SimConfig::useBasedCache().describe().find("use-based"),
              std::string::npos);
    EXPECT_NE(SimConfig::monolithic(3).describe().find("monolithic"),
              std::string::npos);
    EXPECT_NE(SimConfig::twoLevelFile(64).describe().find("two-level"),
              std::string::npos);
}
