/**
 * @file
 * Conditional branch direction prediction: a YAGS predictor
 * (Eden & Mudge), sized to the paper's 12 KB budget.
 *
 * YAGS keeps a bimodal choice PHT plus two small tagged caches that
 * record only the exceptions to the bimodal behaviour: the T-cache
 * holds "taken" exceptions for biased-not-taken branches and vice
 * versa. Tags are checked with the low PC bits so aliased history
 * entries do not disturb unrelated branches.
 */

#ifndef UBRC_FRONTEND_BRANCH_PREDICTOR_HH
#define UBRC_FRONTEND_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ubrc::frontend
{

/** Configuration for the YAGS predictor (defaults: ~12 KB). */
struct YagsConfig
{
    unsigned choiceEntries = 16384; ///< bimodal choice PHT (2-bit each)
    unsigned cacheEntries = 4096;   ///< per direction cache
    unsigned tagBits = 6;
    unsigned historyBits = 12;
};

/** A YAGS conditional branch direction predictor. */
class YagsPredictor
{
  public:
    explicit YagsPredictor(const YagsConfig &config = {});

    /** Predict the direction of the branch at pc under history ghist. */
    bool predict(Addr pc, uint64_t ghist) const;

    /**
     * Train with the resolved outcome. Pass the same history the
     * prediction was made with (the core checkpoints it per branch).
     */
    void update(Addr pc, uint64_t ghist, bool taken);

    /** Storage used, in bits (for the Table-1 budget check). */
    uint64_t storageBits() const;

  private:
    struct CacheEntry
    {
        uint8_t tag = 0;
        uint8_t counter = 0; // 2-bit
        bool valid = false;
    };

    unsigned choiceIndex(Addr pc) const;
    unsigned cacheIndex(Addr pc, uint64_t ghist) const;
    uint8_t tagOf(Addr pc) const;

    YagsConfig cfg;
    std::vector<uint8_t> choice;        // 2-bit counters
    std::vector<CacheEntry> takenCache; // exceptions for NT-biased
    std::vector<CacheEntry> ntCache;    // exceptions for T-biased
};

/**
 * A fixed-depth return address stack with the standard
 * checkpoint/repair scheme: the core snapshots {top index, top value}
 * at every branch and restores both on a squash.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 64)
        : stack(depth, 0)
    {}

    /** State to snapshot for recovery. */
    struct Checkpoint
    {
        uint32_t top;
        Addr topValue;
    };

    void
    push(Addr return_addr)
    {
        top = (top + 1) % stack.size();
        stack[top] = return_addr;
    }

    Addr
    pop()
    {
        const Addr v = stack[top];
        top = (top + static_cast<uint32_t>(stack.size()) - 1) %
              stack.size();
        return v;
    }

    Addr peek() const { return stack[top]; }

    Checkpoint save() const { return {top, stack[top]}; }

    void
    restore(const Checkpoint &cp)
    {
        top = cp.top;
        stack[top] = cp.topValue;
    }

  private:
    std::vector<Addr> stack;
    uint32_t top = 0;
};

/**
 * A two-stage cascading indirect branch target predictor (Driesen &
 * Hoelzle style, ~32 KB): a first-stage table indexed by PC and a
 * tagged second-stage table indexed by PC xor target-path history.
 * The second stage captures path-correlated targets; the first stage
 * is the fallback for easy (monomorphic) branches.
 */
class CascadingIndirectPredictor
{
  public:
    struct Config
    {
        unsigned l1Entries = 1024;
        unsigned l2Entries = 2048;
        unsigned tagBits = 8;
    };

    CascadingIndirectPredictor() : CascadingIndirectPredictor(Config{}) {}
    explicit CascadingIndirectPredictor(const Config &config);

    /** Predict the target; 0 if no prediction is available. */
    Addr predict(Addr pc, uint64_t path_hist) const;

    /** Train with the resolved target. */
    void update(Addr pc, uint64_t path_hist, Addr target);

  private:
    struct L2Entry
    {
        Addr target = 0;
        uint16_t tag = 0;
        bool valid = false;
    };

    unsigned l1Index(Addr pc) const;
    unsigned l2Index(Addr pc, uint64_t path_hist) const;
    uint16_t tagOf(Addr pc) const;

    Config cfg;
    std::vector<Addr> l1;
    std::vector<L2Entry> l2;
};

} // namespace ubrc::frontend

#endif // UBRC_FRONTEND_BRANCH_PREDICTOR_HH
