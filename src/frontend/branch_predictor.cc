#include "frontend/branch_predictor.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "isa/instruction.hh"

namespace ubrc::frontend
{

namespace
{

/** Saturating 2-bit counter update. */
uint8_t
updateCounter(uint8_t ctr, bool taken)
{
    if (taken)
        return ctr < 3 ? ctr + 1 : 3;
    return ctr > 0 ? ctr - 1 : 0;
}

} // namespace

YagsPredictor::YagsPredictor(const YagsConfig &config)
    : cfg(config),
      choice(cfg.choiceEntries, 1),
      takenCache(cfg.cacheEntries),
      ntCache(cfg.cacheEntries)
{
    if (!isPowerOfTwo(cfg.choiceEntries) || !isPowerOfTwo(cfg.cacheEntries))
        fatal("YAGS table sizes must be powers of two");
}

unsigned
YagsPredictor::choiceIndex(Addr pc) const
{
    return static_cast<unsigned>((pc / isa::instBytes) &
                                 (cfg.choiceEntries - 1));
}

unsigned
YagsPredictor::cacheIndex(Addr pc, uint64_t ghist) const
{
    const uint64_t hist = ghist & ((1ULL << cfg.historyBits) - 1);
    return static_cast<unsigned>(((pc / isa::instBytes) ^ hist) &
                                 (cfg.cacheEntries - 1));
}

uint8_t
YagsPredictor::tagOf(Addr pc) const
{
    return static_cast<uint8_t>((pc / isa::instBytes) &
                                ((1u << cfg.tagBits) - 1));
}

bool
YagsPredictor::predict(Addr pc, uint64_t ghist) const
{
    const bool choice_taken = choice[choiceIndex(pc)] >= 2;
    const unsigned idx = cacheIndex(pc, ghist);
    const uint8_t tag = tagOf(pc);
    // Consult the cache that stores exceptions to the choice
    // direction.
    const CacheEntry &e = choice_taken ? ntCache[idx] : takenCache[idx];
    if (e.valid && e.tag == tag)
        return e.counter >= 2;
    return choice_taken;
}

void
YagsPredictor::update(Addr pc, uint64_t ghist, bool taken)
{
    const unsigned cidx = choiceIndex(pc);
    const bool choice_taken = choice[cidx] >= 2;
    const unsigned idx = cacheIndex(pc, ghist);
    const uint8_t tag = tagOf(pc);
    CacheEntry &e = choice_taken ? ntCache[idx] : takenCache[idx];

    const bool cache_hit = e.valid && e.tag == tag;
    if (cache_hit) {
        e.counter = updateCounter(e.counter, taken);
    } else if (taken != choice_taken) {
        // Allocate an exception entry only when the choice PHT was
        // wrong -- the cache stores exceptions only.
        e.valid = true;
        e.tag = tag;
        e.counter = taken ? 2 : 1;
    }

    // The choice PHT is not updated when the exception cache hit and
    // predicted correctly while the choice direction disagreed; this
    // preserves the bias entry (standard YAGS rule).
    const bool cache_correct =
        cache_hit && ((e.counter >= 2) == taken);
    if (!(cache_correct && taken != choice_taken))
        choice[cidx] = updateCounter(choice[cidx], taken);
}

uint64_t
YagsPredictor::storageBits() const
{
    const uint64_t choice_bits = uint64_t(cfg.choiceEntries) * 2;
    const uint64_t entry_bits = 2 + cfg.tagBits + 1;
    return choice_bits + 2ULL * cfg.cacheEntries * entry_bits;
}

CascadingIndirectPredictor::CascadingIndirectPredictor(const Config &config)
    : cfg(config), l1(cfg.l1Entries, 0), l2(cfg.l2Entries)
{
    if (!isPowerOfTwo(cfg.l1Entries) || !isPowerOfTwo(cfg.l2Entries))
        fatal("indirect predictor table sizes must be powers of two");
}

unsigned
CascadingIndirectPredictor::l1Index(Addr pc) const
{
    return static_cast<unsigned>((pc / isa::instBytes) &
                                 (cfg.l1Entries - 1));
}

unsigned
CascadingIndirectPredictor::l2Index(Addr pc, uint64_t path_hist) const
{
    return static_cast<unsigned>(
        mixHash((pc / isa::instBytes) ^ (path_hist * 0x9e3779b9u)) &
        (cfg.l2Entries - 1));
}

uint16_t
CascadingIndirectPredictor::tagOf(Addr pc) const
{
    return static_cast<uint16_t>((pc / isa::instBytes) &
                                 ((1u << cfg.tagBits) - 1));
}

Addr
CascadingIndirectPredictor::predict(Addr pc, uint64_t path_hist) const
{
    const L2Entry &e = l2[l2Index(pc, path_hist)];
    if (e.valid && e.tag == tagOf(pc))
        return e.target;
    return l1[l1Index(pc)];
}

void
CascadingIndirectPredictor::update(Addr pc, uint64_t path_hist, Addr target)
{
    Addr &first = l1[l1Index(pc)];
    // Cascade rule: promote to the history-indexed stage when the
    // simple stage proves insufficient (polymorphic target).
    if (first != 0 && first != target) {
        L2Entry &e = l2[l2Index(pc, path_hist)];
        e.valid = true;
        e.tag = tagOf(pc);
        e.target = target;
    }
    first = target;
}

} // namespace ubrc::frontend
