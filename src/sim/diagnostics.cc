#include "sim/diagnostics.hh"

#include <cinttypes>
#include <cstdarg>

#include "common/log.hh"

namespace ubrc::sim
{

namespace
{

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
PipelineSnapshot::format() const
{
    std::string out;
    appendf(out, "=== pipeline snapshot @ cycle %" PRId64 " ===\n",
            cycle);
    appendf(out,
            "retired  : %llu insts, last retirement at cycle %" PRId64
            " (%" PRId64 " cycles ago)\n",
            static_cast<unsigned long long>(instsRetired),
            lastRetireCycle, cycle - lastRetireCycle);
    appendf(out, "fetch pc : 0x%llx\n",
            static_cast<unsigned long long>(fetchPc));
    appendf(out, "rob      : %zu/%zu entries\n", robSize, robCapacity);
    for (size_t i = 0; i < robHead.size(); ++i) {
        const SnapshotRobEntry &e = robHead[i];
        appendf(out,
                "  [head+%zu] seq=%llu pc=0x%llx state=%d completed=%d "
                "executing=%d replays=%u ready=%" PRId64 "  %s\n",
                i, static_cast<unsigned long long>(e.seq),
                static_cast<unsigned long long>(e.pc), e.state,
                int(e.completed), int(e.executing), e.replays,
                e.readyCycle, e.disasm.c_str());
    }
    appendf(out, "iq       : %zu/%zu entries\n", iqSize, iqCapacity);
    appendf(out, "pregs    : %u/%u allocated, free list %zu\n",
            allocatedPregs, numPhysRegs, freeListSize);

    if (cacheSets) {
        appendf(out,
                "register cache (%u sets x %u ways, %zu valid):\n",
                cacheSets, cacheAssoc, cacheEntries.size());
        for (const SnapshotCacheEntry &e : cacheEntries)
            appendf(out, "  set %3u way %u: preg %3d remUses=%u%s\n",
                    e.set, e.way, int(e.preg), e.remUses,
                    e.pinned ? " pinned" : "");
    }

    if (!lastRetired.empty()) {
        appendf(out, "last %zu retired (oldest first):\n",
                lastRetired.size());
        for (const SnapshotRetired &r : lastRetired)
            appendf(out, "  cycle %" PRId64 " seq=%llu pc=0x%llx  %s\n",
                    r.cycle, static_cast<unsigned long long>(r.seq),
                    static_cast<unsigned long long>(r.pc),
                    r.disasm.c_str());
    }

    if (!injectedFaults.empty()) {
        appendf(out, "injected faults (%zu):\n", injectedFaults.size());
        for (const std::string &f : injectedFaults)
            appendf(out, "  %s\n", f.c_str());
    }
    return out;
}

void
dumpSnapshot(const PipelineSnapshot &snap, std::FILE *out)
{
    const std::string text = snap.format();
    std::fwrite(text.data(), 1, text.size(), out);
}

bool
writeSnapshotFile(const PipelineSnapshot &snap, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write snapshot to '%s'", path.c_str());
        return false;
    }
    dumpSnapshot(snap, f);
    std::fclose(f);
    return true;
}

} // namespace ubrc::sim
