/**
 * @file
 * Recoverable simulation errors.
 *
 * Historically every failure — a bad knob, a golden-model divergence,
 * a hung pipeline, a double-freed physical register — funnelled into
 * panic()/fatal() and killed the whole process, aborting entire
 * suite sweeps. The SimError hierarchy contains such failures to the
 * run that raised them: runOneChecked() reports a per-run status,
 * runSuite() finishes the remaining workloads, and drivers map the
 * error kind to a distinct exit code.
 *
 * Division of labour with common/log.hh:
 *  - panic()  — internal bug with no safe containment boundary; still
 *               aborts the process (e.g. a corrupted event ring).
 *  - fatal()  — unrecoverable *process-level* user error (bad
 *               environment variable, bad CLI value); exits fast.
 *  - SimError — anything scoped to one simulation run; thrown, caught
 *               at the run boundary, and carries a PipelineSnapshot
 *               for post-mortem diagnosis.
 */

#ifndef UBRC_SIM_SIM_ERROR_HH
#define UBRC_SIM_SIM_ERROR_HH

#include <memory>
#include <stdexcept>
#include <string>

#include "sim/diagnostics.hh"

namespace ubrc::sim
{

/** Classification of a contained per-run failure. */
enum class ErrorKind
{
    /** Invalid configuration (caught by SimConfig::validate()). */
    Config,
    /** Retired state diverged from the golden architectural model. */
    CheckerDivergence,
    /** Forward-progress watchdog fired (no retirement). */
    Deadlock,
    /** Internal invariant violated at a containable boundary. */
    Invariant,
    /** Malformed or inadmissible service request (ubrcsim-server). */
    BadRequest,
    /** Per-request wall-clock deadline expired mid-run. */
    DeadlineExceeded,
    /** Admission queue full; the request was shed (retryable). */
    QueueFull,
    /** Run canceled before completion (drain or interrupt). */
    Canceled,
    /** Structurally invalid or unreadable operand trace file. */
    TraceFormat,
};

const char *toString(ErrorKind kind);

/**
 * Process exit code for an error kind: 2 = config error, 3 = checker
 * divergence, 4 = deadlock, 5 = internal invariant, 6 = bad request,
 * 7 = deadline exceeded, 8 = queue full, 9 = canceled, 10 = trace
 * format. The authoritative registry lives in DESIGN.md and is
 * cross-checked by ubrc-lint (rule exit-codes).
 */
int exitCodeFor(ErrorKind kind);

/**
 * True when retrying the identical request later can succeed without
 * changing it: the failure was a transient service condition
 * (backpressure shed, drain-time cancellation), not a property of the
 * request or of the simulated machine.
 */
bool isRetryable(ErrorKind kind);

/** Base class of all contained per-run simulation failures. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    ErrorKind kind() const { return kind_; }
    int exitCode() const { return exitCodeFor(kind_); }

    /** Attach the pipeline state captured at the failure point. */
    void
    attachSnapshot(PipelineSnapshot snap)
    {
        snap_ = std::make_shared<const PipelineSnapshot>(
            std::move(snap));
    }

    bool hasSnapshot() const { return snap_ != nullptr; }

    /** @pre hasSnapshot() */
    const PipelineSnapshot &snapshot() const { return *snap_; }

  private:
    ErrorKind kind_;
    /** Shared so exception copies stay cheap and noexcept-friendly. */
    std::shared_ptr<const PipelineSnapshot> snap_;
};

/** Invalid configuration; raised before any cycle is simulated. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &message)
        : SimError(ErrorKind::Config, message)
    {}
};

/** The timing core's retired state diverged from the golden model. */
class CheckerError : public SimError
{
  public:
    explicit CheckerError(const std::string &message)
        : SimError(ErrorKind::CheckerDivergence, message)
    {}
};

/** The forward-progress watchdog detected a hung pipeline. */
class DeadlockError : public SimError
{
  public:
    explicit DeadlockError(const std::string &message)
        : SimError(ErrorKind::Deadlock, message)
    {}
};

/** An internal invariant failed at a per-run containment boundary. */
class InvariantError : public SimError
{
  public:
    explicit InvariantError(const std::string &message)
        : SimError(ErrorKind::Invariant, message)
    {}
};

/**
 * A service request failed admission: malformed frame, unparseable
 * JSON, unknown document kind, unknown workload, or a knob of the
 * wrong type. Raised before any cycle is simulated; never carries a
 * snapshot.
 */
class BadRequestError : public SimError
{
  public:
    explicit BadRequestError(const std::string &message)
        : SimError(ErrorKind::BadRequest, message)
    {}
};

/** A request's wall-clock deadline expired while it was running. */
class DeadlineExceededError : public SimError
{
  public:
    explicit DeadlineExceededError(const std::string &message)
        : SimError(ErrorKind::DeadlineExceeded, message)
    {}
};

/**
 * The admission queue was full and the request was shed. The client
 * contract is retry-with-backoff: the identical request is valid and
 * can be resubmitted verbatim.
 */
class QueueFullError : public SimError
{
  public:
    explicit QueueFullError(const std::string &message)
        : SimError(ErrorKind::QueueFull, message)
    {}
};

/** A run was canceled before completion (drain or interrupt). */
class CanceledError : public SimError
{
  public:
    explicit CanceledError(const std::string &message)
        : SimError(ErrorKind::Canceled, message)
    {}
};

/**
 * An operand trace file was missing, unreadable, or structurally
 * invalid: bad magic, CRC mismatch, truncation, version skew, or
 * malformed metadata/events. Raised before any cycle is replayed;
 * never carries a snapshot.
 */
class TraceFormatError : public SimError
{
  public:
    explicit TraceFormatError(const std::string &message)
        : SimError(ErrorKind::TraceFormat, message)
    {}
};

} // namespace ubrc::sim

#endif // UBRC_SIM_SIM_ERROR_HH
