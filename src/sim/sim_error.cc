#include "sim/sim_error.hh"

namespace ubrc::sim
{

const char *
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return "config error";
      case ErrorKind::CheckerDivergence: return "checker divergence";
      case ErrorKind::Deadlock: return "deadlock";
      case ErrorKind::Invariant: return "invariant violation";
    }
    return "?";
}

int
exitCodeFor(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return 2;
      case ErrorKind::CheckerDivergence: return 3;
      case ErrorKind::Deadlock: return 4;
      case ErrorKind::Invariant: return 5;
    }
    return 1;
}

} // namespace ubrc::sim
