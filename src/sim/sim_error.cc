#include "sim/sim_error.hh"

namespace ubrc::sim
{

const char *
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return "config error";
      case ErrorKind::CheckerDivergence: return "checker divergence";
      case ErrorKind::Deadlock: return "deadlock";
      case ErrorKind::Invariant: return "invariant violation";
      case ErrorKind::BadRequest: return "bad request";
      case ErrorKind::DeadlineExceeded: return "deadline exceeded";
      case ErrorKind::QueueFull: return "queue full";
      case ErrorKind::Canceled: return "canceled";
      case ErrorKind::TraceFormat: return "trace format";
    }
    return "?";
}

int
exitCodeFor(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return 2;
      case ErrorKind::CheckerDivergence: return 3;
      case ErrorKind::Deadlock: return 4;
      case ErrorKind::Invariant: return 5;
      case ErrorKind::BadRequest: return 6;
      case ErrorKind::DeadlineExceeded: return 7;
      case ErrorKind::QueueFull: return 8;
      case ErrorKind::Canceled: return 9;
      case ErrorKind::TraceFormat: return 10;
    }
    return 1;
}

bool
isRetryable(ErrorKind kind)
{
    return kind == ErrorKind::QueueFull || kind == ErrorKind::Canceled;
}

} // namespace ubrc::sim
