#include "sim/results_json.hh"

#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "sim/sim_error.hh"

namespace ubrc::sim
{

std::string
metaGitDescribe()
{
    if (const char *env = std::getenv("UBRC_GIT_DESCRIBE"); env && *env)
        return env;
    std::string out;
    if (FILE *p = popen("git describe --always --dirty 2>/dev/null",
                        "r")) {
        char buf[128];
        while (std::fgets(buf, sizeof(buf), p))
            out += buf;
        pclose(p);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

uint64_t
metaReportEpoch()
{
    if (const char *env = std::getenv("UBRC_REPORT_EPOCH");
        env && *env) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 0);
        if (end != env && *end == '\0')
            return v;
    }
    // Wall clock is allowed here by design: the timestamp only labels
    // the report's meta block and UBRC_REPORT_EPOCH pins it in tests.
    return static_cast<uint64_t>(
        std::time(nullptr)); // ubrc-lint: allow(nondeterminism)
}

void
writeSimResult(json::Writer &w, const core::SimResult &r)
{
    w.beginObject();
    w.field("cycles", r.cycles);
    w.field("insts_retired", r.instsRetired);
    w.field("ipc", r.ipc);

    w.key("operands").beginObject();
    w.field("bypass", r.opBypass);
    w.field("cache", r.opCache);
    w.field("file", r.opFile);
    w.field("bypass_fraction", r.bypassFraction);
    w.endObject();

    w.key("cache").beginObject();
    w.field("misses", r.rcMisses);
    w.field("miss_no_write", r.rcMissNoWrite);
    w.field("miss_conflict", r.rcMissConflict);
    w.field("miss_capacity", r.rcMissCapacity);
    w.field("miss_per_operand", r.missPerOperand);
    w.field("inserts", r.rcInserts);
    w.field("fills", r.rcFills);
    w.field("values_produced", r.valuesProduced);
    w.field("writes_filtered", r.writesFiltered);
    w.field("values_never_cached", r.valuesNeverCached);
    w.field("cached_never_read", r.cachedNeverRead);
    w.field("cached_total", r.cachedTotal);
    w.field("avg_occupancy", r.avgOccupancy);
    w.field("avg_entry_lifetime", r.avgEntryLifetime);
    w.field("reads_per_cached_value", r.readsPerCachedValue);
    w.field("cache_count_per_value", r.cacheCountPerValue);
    w.field("zero_use_victim_fraction", r.zeroUseVictimFraction);
    w.endObject();

    w.key("bandwidth").beginObject();
    w.field("cache_read", r.cacheReadBw);
    w.field("cache_write", r.cacheWriteBw);
    w.field("file_read", r.fileReadBw);
    w.field("file_write", r.fileWriteBw);
    w.endObject();

    w.key("predictors").beginObject();
    w.field("dou_accuracy", r.douAccuracy);
    w.field("branch_mispredict_rate", r.branchMispredictRate);
    w.endObject();

    w.key("lifetimes").beginObject();
    w.field("median_empty", r.medianEmptyTime);
    w.field("median_live", r.medianLiveTime);
    w.field("median_dead", r.medianDeadTime);
    w.field("allocated_p50", r.allocatedP50);
    w.field("allocated_p90", r.allocatedP90);
    w.field("live_p50", r.liveP50);
    w.field("live_p90", r.liveP90);
    w.endObject();

    w.key("replay").beginObject();
    w.field("mini_replays", r.miniReplays);
    w.field("issue_group_squashes", r.issueGroupSquashes);
    w.field("branch_mispredicts", r.branchMispredicts);
    w.field("mem_order_violations", r.memOrderViolations);
    w.endObject();

    w.key("frontend").beginObject();
    w.field("fetch_blocks", r.fetchBlocks);
    w.field("rename_stalls_regs", r.renameStallsRegs);
    w.field("rename_stalls_rob", r.renameStallsRob);
    w.field("rename_stalls_iq", r.renameStallsIq);
    w.endObject();

    // Replay provenance is appended only for trace-driven results so
    // execution-driven documents stay byte-identical to schema
    // version 1 output from before the trace subsystem existed.
    if (r.trace.replayed) {
        w.key("trace").beginObject();
        w.field("replayed", r.trace.replayed);
        w.field("exact", r.trace.exact);
        w.field("trace_version", r.trace.traceVersion);
        w.field("source_hash", r.trace.sourceHash);
        w.endObject();
    }

    w.key("supplier");
    writeSupplierStats(w, r.supplier);

    w.endObject();
}

void
writeSupplierStats(json::Writer &w, const storage::SupplierStats &s)
{
    w.beginObject();
    w.field("has_cache", s.hasCache);
    w.field("misses", s.misses);
    w.field("miss_no_write", s.missNoWrite);
    w.field("miss_conflict", s.missConflict);
    w.field("miss_capacity", s.missCapacity);
    w.field("inserts", s.inserts);
    w.field("fills", s.fills);
    w.field("writes_filtered", s.writesFiltered);
    w.field("values_never_cached", s.valuesNeverCached);
    w.field("entries_never_read", s.entriesNeverRead);
    w.field("file_reads", s.fileReads);
    w.field("file_writes", s.fileWrites);
    w.field("avg_occupancy", s.avgOccupancy);
    w.field("avg_entry_lifetime", s.avgEntryLifetime);
    w.field("reads_per_cached_value", s.readsPerCachedValue);
    w.field("zero_use_victim_fraction", s.zeroUseVictimFraction);
    w.field("dou_accuracy", s.douAccuracy);
    w.endObject();
}

void
writeFaultRecord(json::Writer &w, const inject::FaultRecord &f)
{
    w.beginObject();
    w.field("cycle", uint64_t(f.cycle));
    w.field("target", inject::toString(f.target));
    w.field("site", int64_t(f.site));
    w.field("detail", f.detail);
    w.field("bit", f.bit);
    w.field("text", f.describe());
    w.endObject();
}

void
writeRunOutcome(json::Writer &w, const RunOutcome &o)
{
    w.beginObject();
    w.field("ok", o.ok);
    if (o.ok) {
        w.nullField("error");
    } else {
        w.key("error").beginObject();
        w.field("kind", toString(o.kind));
        w.field("message", o.message);
        w.field("has_snapshot", !o.snapshotText.empty());
        w.endObject();
    }
    w.key("faults").beginArray();
    for (const auto &f : o.faults)
        writeFaultRecord(w, f);
    w.endArray();
    w.key("result");
    writeSimResult(w, o.result);
    w.endObject();
}

void
writeWorkloadRun(json::Writer &w, const WorkloadRun &r)
{
    w.beginObject();
    w.field("workload", r.workload);
    w.field("failed", r.failed);
    if (r.failed) {
        w.key("error").beginObject();
        w.field("kind", toString(r.errorKind));
        w.field("message", r.error);
        w.endObject();
        // A failed run carries stats up to the failure point; its
        // headline metrics are not comparable datapoints.
        w.nullField("ipc");
    } else {
        w.nullField("error");
        w.field("ipc", r.result.ipc);
    }
    w.field("wall_seconds", r.wallSeconds);
    if (!r.failed && r.wallSeconds > 0)
        w.field("sim_insts_per_second",
                static_cast<double>(r.result.instsRetired) /
                    r.wallSeconds);
    else
        w.nullField("sim_insts_per_second");
    w.key("result");
    writeSimResult(w, r.result);
    w.endObject();
}

void
writeSuiteResult(json::Writer &w, const SuiteResult &s)
{
    w.beginObject();
    w.field("num_runs", uint64_t(s.runs.size()));
    w.field("num_failed", uint64_t(s.numFailed()));

    // Aggregates over zero successful runs are null, never 0.0: a
    // fully failed sweep must not look like a measured IPC of 0.
    if (s.numOk()) {
        w.field("geomean_ipc", s.geomeanIpc());
        w.field("mean_ipc",
                s.mean([](const core::SimResult &r) { return r.ipc; }));
        w.field("mean_miss_per_operand",
                s.mean([](const core::SimResult &r) {
                    return r.missPerOperand;
                }));
    } else {
        w.nullField("geomean_ipc");
        w.nullField("mean_ipc");
        w.nullField("mean_miss_per_operand");
    }

    // Simulator throughput across the suite, for the replay-speedup
    // acceptance check and for tracking throughput regressions.
    const uint64_t insts_total = s.total(
        [](const core::SimResult &r) { return r.instsRetired; });
    double wall_total = 0;
    for (const auto &r : s.runs)
        if (!r.failed)
            wall_total += r.wallSeconds;
    w.field("insts_retired_total", insts_total);
    if (s.numOk() && wall_total > 0)
        w.field("sim_instructions_per_second",
                static_cast<double>(insts_total) / wall_total);
    else
        w.nullField("sim_instructions_per_second");

    w.key("failures").beginArray();
    for (const auto &r : s.runs) {
        if (!r.failed)
            continue;
        w.beginObject();
        w.field("workload", r.workload);
        w.field("kind", toString(r.errorKind));
        w.field("message", r.error);
        w.endObject();
    }
    w.endArray();

    w.key("runs").beginArray();
    for (const auto &r : s.runs)
        writeWorkloadRun(w, r);
    w.endArray();
    w.endObject();
}

} // namespace ubrc::sim
