#include "sim/config.hh"

#include <cstdarg>
#include <cstdio>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "isa/opcodes.hh"
#include "sim/sim_error.hh"

namespace ubrc::sim
{

namespace
{

[[noreturn]] void
bad(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

[[noreturn]] void
bad(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    throw ConfigError(buf);
}

} // namespace

const char *
toString(RegScheme s)
{
    switch (s) {
      case RegScheme::Monolithic: return "monolithic";
      case RegScheme::Cached: return "cached";
      case RegScheme::TwoLevel: return "two-level";
    }
    return "?";
}

const char *
toString(TraceMode m)
{
    switch (m) {
      case TraceMode::Off: return "off";
      case TraceMode::Record: return "record";
      case TraceMode::Replay: return "replay";
    }
    return "?";
}

SimConfig
SimConfig::useBasedCache()
{
    SimConfig cfg;
    cfg.scheme = RegScheme::Cached;
    cfg.rc.entries = 64;
    cfg.rc.assoc = 2;
    cfg.rc.insertion = regcache::InsertionPolicy::UseBased;
    cfg.rc.replacement = regcache::ReplacementPolicy::UseBased;
    cfg.rc.indexing = regcache::IndexPolicy::FilteredRoundRobin;
    return cfg;
}

SimConfig
SimConfig::lruCache()
{
    SimConfig cfg = useBasedCache();
    cfg.rc.insertion = regcache::InsertionPolicy::Always;
    cfg.rc.replacement = regcache::ReplacementPolicy::LRU;
    cfg.rc.indexing = regcache::IndexPolicy::RoundRobin;
    return cfg;
}

SimConfig
SimConfig::nonBypassCache()
{
    SimConfig cfg = useBasedCache();
    cfg.rc.insertion = regcache::InsertionPolicy::NonBypass;
    cfg.rc.replacement = regcache::ReplacementPolicy::LRU;
    cfg.rc.indexing = regcache::IndexPolicy::RoundRobin;
    return cfg;
}

SimConfig
SimConfig::monolithic(Cycle latency)
{
    SimConfig cfg;
    cfg.scheme = RegScheme::Monolithic;
    cfg.rfLatency = latency;
    return cfg;
}

SimConfig
SimConfig::twoLevelFile(unsigned cache_entries)
{
    SimConfig cfg;
    cfg.scheme = RegScheme::TwoLevel;
    cfg.twoLevel.l1Entries = cache_entries + 32;
    return cfg;
}

void
SimConfig::validate() const
{
    // --- widths and windows ---
    if (!fetchWidth || !renameWidth || !issueWidth || !retireWidth)
        bad("pipeline widths must be nonzero "
            "(fetch=%u rename=%u issue=%u retire=%u)",
            fetchWidth, renameWidth, issueWidth, retireWidth);
    if (!maxRetireStores)
        bad("maxRetireStores must be nonzero or stores never retire");
    if (!iqEntries || !robEntries || !lqEntries || !sqEntries ||
        !frontQueueLimit)
        bad("window sizes must be nonzero (iq=%u rob=%u lq=%u sq=%u "
            "frontQueue=%u)",
            iqEntries, robEntries, lqEntries, sqEntries,
            frontQueueLimit);
    if (numPhysRegs <= static_cast<unsigned>(isa::numArchRegs))
        bad("numPhysRegs=%u leaves no registers to rename with "
            "(need > %d architectural registers)",
            numPhysRegs, isa::numArchRegs);
    if (numPhysRegs > 32768)
        bad("numPhysRegs=%u exceeds the 15-bit physical register "
            "tag space (max 32768)", numPhysRegs);

    // --- functional units ---
    if (!intAluUnits || !branchUnits || !intMulUnits || !fxAluUnits ||
        !fxMulDivUnits || !loadUnits || !storeUnits)
        bad("every functional-unit class needs at least one unit, or "
            "instructions of that class can never issue");
    const Cycle lats[] = {intAluLat, branchLat,  intMulLat, fxAluLat,
                          fxMulLat,  fxDivLat,   loadToUse};
    for (Cycle l : lats) {
        if (l < 1)
            bad("functional-unit latencies must be >= 1 cycle");
        if (l > 8000)
            bad("functional-unit latency %ld exceeds the event "
                "horizon (8000 cycles)", static_cast<long>(l));
    }

    // --- register storage ---
    switch (scheme) {
      case RegScheme::Monolithic:
        if (rfLatency < 1)
            bad("monolithic register file latency must be >= 1 "
                "(got %ld)", static_cast<long>(rfLatency));
        break;
      case RegScheme::Cached: {
        if (backingLatency < 1)
            bad("backing file latency must be >= 1 (got %ld)",
                static_cast<long>(backingLatency));
        if (!rc.entries)
            bad("register cache needs at least one entry");
        if (!rc.assoc || rc.assoc > rc.entries)
            bad("register cache associativity %u out of range "
                "[1, entries=%u]", rc.assoc, rc.entries);
        if (rc.entries % rc.assoc != 0)
            bad("register cache: %u entries not divisible into "
                "%u-way sets", rc.entries, rc.assoc);
        if (rc.indexing == regcache::IndexPolicy::PhysReg &&
            !isPowerOfTwo(rc.numSets()))
            warn("preg (standard) indexing bit-slices the register "
                 "tag and needs a power-of-two set count in "
                 "hardware; %u sets is simulated with modulo "
                 "indexing — use a decoupled policy (round-robin / "
                 "minimum / filtered-rr) for non-power-of-two "
                 "geometries", rc.numSets());
        if (!rc.maxUse)
            bad("rc.maxUse must be >= 1 (a zero-width use counter "
                "cannot drive use-based management)");
        if (rc.maxUse > dou.maxPrediction())
            bad("rc.maxUse=%u exceeds the degree-of-use predictor's "
                "counter range (predBits=%u => max %u)",
                rc.maxUse, dou.predBits, dou.maxPrediction());
        if (rc.unknownDefault > rc.maxUse)
            bad("rc.unknownDefault=%u exceeds rc.maxUse=%u",
                rc.unknownDefault, rc.maxUse);
        if (rc.fillDefault > rc.maxUse)
            bad("rc.fillDefault=%u exceeds rc.maxUse=%u",
                rc.fillDefault, rc.maxUse);
        break;
      }
      case RegScheme::TwoLevel:
        if (twoLevel.l1Entries <=
            static_cast<unsigned>(isa::numArchRegs))
            bad("two-level L1 with %u entries cannot hold the %d "
                "architectural mappings", twoLevel.l1Entries,
                isa::numArchRegs);
        if (twoLevel.l2Latency < 1)
            bad("two-level L2 latency must be >= 1 (got %ld)",
                static_cast<long>(twoLevel.l2Latency));
        break;
    }

    // --- degree-of-use predictor ---
    if (!dou.entries || !dou.assoc || dou.entries % dou.assoc != 0)
        bad("degree-of-use predictor geometry invalid (%u entries, "
            "%u-way)", dou.entries, dou.assoc);
    if (!dou.predBits || dou.predBits > 8)
        bad("dou.predBits=%u out of range [1, 8]", dou.predBits);
    if (!dou.tagBits || dou.tagBits > 8)
        bad("dou.tagBits=%u out of range [1, 8]", dou.tagBits);
    if (dou.confThreshold > dou.confMax)
        bad("dou.confThreshold=%u exceeds dou.confMax=%u — the "
            "predictor could never supply a prediction",
            dou.confThreshold, dou.confMax);

    // --- run control ---
    if (watchdogCycles && watchdogCycles < 100)
        bad("watchdogCycles=%llu is below the minimum of 100; even "
            "a healthy backing-file miss chain would be declared a "
            "deadlock (use 0 to disable the watchdog)",
            static_cast<unsigned long long>(watchdogCycles));

    // --- fault injection ---
    if (inject.rate < 0.0 || inject.rate > 1.0)
        bad("inject.rate=%g is not a probability in [0, 1]",
            inject.rate);
    if (inject.enabled() && !(inject.targets & inject::TargetAll))
        bad("fault injection enabled (rate=%g) but no valid target "
            "class is selected in inject.targets", inject.rate);

    // --- operand tracing ---
    if (traceMode != TraceMode::Off && traceDir.empty())
        bad("traceMode=%s requires a trace directory",
            toString(traceMode));
    if (traceMode != TraceMode::Off && inject.enabled())
        bad("fault injection cannot be combined with trace %s: "
            "injected faults mutate supplier state outside the "
            "recorded operand stream", toString(traceMode));
}

std::string
SimConfig::describe() const
{
    char buf[256];
    switch (scheme) {
      case RegScheme::Monolithic:
        std::snprintf(buf, sizeof(buf), "monolithic RF, %ld-cycle",
                      static_cast<long>(rfLatency));
        break;
      case RegScheme::Cached:
        std::snprintf(buf, sizeof(buf),
                      "%u-entry %u-way cache [ins=%s repl=%s idx=%s], "
                      "%ld-cycle backing file",
                      rc.entries, rc.assoc, regcache::toString(rc.insertion),
                      regcache::toString(rc.replacement),
                      regcache::toString(rc.indexing),
                      static_cast<long>(backingLatency));
        break;
      case RegScheme::TwoLevel:
        std::snprintf(buf, sizeof(buf),
                      "two-level RF, L1=%u, L2 latency %ld",
                      twoLevel.l1Entries,
                      static_cast<long>(twoLevel.l2Latency));
        break;
    }
    return buf;
}

} // namespace ubrc::sim
