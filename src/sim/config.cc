#include "sim/config.hh"

#include <cstdio>

namespace ubrc::sim
{

const char *
toString(RegScheme s)
{
    switch (s) {
      case RegScheme::Monolithic: return "monolithic";
      case RegScheme::Cached: return "cached";
      case RegScheme::TwoLevel: return "two-level";
    }
    return "?";
}

SimConfig
SimConfig::useBasedCache()
{
    SimConfig cfg;
    cfg.scheme = RegScheme::Cached;
    cfg.rc.entries = 64;
    cfg.rc.assoc = 2;
    cfg.rc.insertion = regcache::InsertionPolicy::UseBased;
    cfg.rc.replacement = regcache::ReplacementPolicy::UseBased;
    cfg.rc.indexing = regcache::IndexPolicy::FilteredRoundRobin;
    return cfg;
}

SimConfig
SimConfig::lruCache()
{
    SimConfig cfg = useBasedCache();
    cfg.rc.insertion = regcache::InsertionPolicy::Always;
    cfg.rc.replacement = regcache::ReplacementPolicy::LRU;
    cfg.rc.indexing = regcache::IndexPolicy::RoundRobin;
    return cfg;
}

SimConfig
SimConfig::nonBypassCache()
{
    SimConfig cfg = useBasedCache();
    cfg.rc.insertion = regcache::InsertionPolicy::NonBypass;
    cfg.rc.replacement = regcache::ReplacementPolicy::LRU;
    cfg.rc.indexing = regcache::IndexPolicy::RoundRobin;
    return cfg;
}

SimConfig
SimConfig::monolithic(Cycle latency)
{
    SimConfig cfg;
    cfg.scheme = RegScheme::Monolithic;
    cfg.rfLatency = latency;
    return cfg;
}

SimConfig
SimConfig::twoLevelFile(unsigned cache_entries)
{
    SimConfig cfg;
    cfg.scheme = RegScheme::TwoLevel;
    cfg.twoLevel.l1Entries = cache_entries + 32;
    return cfg;
}

std::string
SimConfig::describe() const
{
    char buf[256];
    switch (scheme) {
      case RegScheme::Monolithic:
        std::snprintf(buf, sizeof(buf), "monolithic RF, %ld-cycle",
                      static_cast<long>(rfLatency));
        break;
      case RegScheme::Cached:
        std::snprintf(buf, sizeof(buf),
                      "%u-entry %u-way cache [ins=%s repl=%s idx=%s], "
                      "%ld-cycle backing file",
                      rc.entries, rc.assoc, regcache::toString(rc.insertion),
                      regcache::toString(rc.replacement),
                      regcache::toString(rc.indexing),
                      static_cast<long>(backingLatency));
        break;
      case RegScheme::TwoLevel:
        std::snprintf(buf, sizeof(buf),
                      "two-level RF, L1=%u, L2 latency %ld",
                      twoLevel.l1Entries,
                      static_cast<long>(twoLevel.l2Latency));
        break;
    }
    return buf;
}

} // namespace ubrc::sim
