#include "sim/runner.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hh"
#include "sched/scheduler.hh"
#include "trace/trace_recorder.hh"
#include "trace/trace_replay.hh"

namespace ubrc::sim
{

double
SuiteResult::geomeanIpc() const
{
    double log_sum = 0.0;
    size_t n = 0;
    for (const auto &r : runs) {
        if (r.failed)
            continue;
        log_sum += std::log(r.result.ipc > 0 ? r.result.ipc : 1e-9);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

size_t
SuiteResult::numFailed() const
{
    return static_cast<size_t>(
        std::count_if(runs.begin(), runs.end(),
                      [](const WorkloadRun &r) { return r.failed; }));
}

std::string
SuiteResult::failureSummary() const
{
    std::string out;
    for (const auto &r : runs) {
        if (!r.failed)
            continue;
        out += r.workload;
        out += ": [";
        out += toString(r.errorKind);
        out += "] ";
        out += r.error;
        out += '\n';
    }
    return out;
}

core::SimResult
runOne(const SimConfig &config, const workload::Workload &workload,
       uint64_t max_insts)
{
    SimConfig cfg = config;
    if (max_insts)
        cfg.maxInsts = max_insts;
    cfg.validate();

    if (cfg.traceMode == TraceMode::Replay)
        return trace::replayRun(cfg, workload.name);

    if (cfg.traceMode == TraceMode::Record) {
        trace::TraceRecorder rec;
        core::Processor proc(cfg, workload,
                             trace::recordingWrap(rec));
        proc.run();
        trace::writeRecordedTrace(cfg, workload.name, proc, rec,
                                  cfg.traceDir);
        return proc.result();
    }

    core::Processor proc(cfg, workload);
    proc.run();
    return proc.result();
}

namespace
{

/**
 * Build the periodic poll for a RunControl: checks the cancel flag
 * first (a draining caller wins over the deadline), then the
 * wall-clock deadline, and throws the matching SimError with a
 * snapshot from the abort point.
 */
core::Processor::RunPoll
makeRunPoll(const RunControl &ctl)
{
    return [&ctl](const core::Processor &p) {
        if (ctl.cancel &&
            ctl.cancel->load(std::memory_order_relaxed)) {
            CanceledError err(detail::formatString(
                "run canceled at cycle %lld after %llu retired "
                "instructions",
                static_cast<long long>(p.cycle()),
                static_cast<unsigned long long>(p.retiredCount())));
            err.attachSnapshot(p.snapshot());
            throw err;
        }
        if (ctl.hasDeadline &&
            std::chrono::steady_clock::now() >= ctl.deadline) {
            DeadlineExceededError err(detail::formatString(
                "deadline exceeded at cycle %lld after %llu retired "
                "instructions",
                static_cast<long long>(p.cycle()),
                static_cast<unsigned long long>(p.retiredCount())));
            err.attachSnapshot(p.snapshot());
            throw err;
        }
    };
}

/** The replay-loop equivalent of makeRunPoll: no core, no snapshot. */
trace::ReplayPoll
makeReplayPoll(const RunControl &ctl)
{
    return [&ctl](Cycle c) {
        if (ctl.cancel && ctl.cancel->load(std::memory_order_relaxed))
            throw CanceledError(detail::formatString(
                "replay canceled at cycle %lld",
                static_cast<long long>(c)));
        if (ctl.hasDeadline &&
            std::chrono::steady_clock::now() >= ctl.deadline)
            throw DeadlineExceededError(detail::formatString(
                "deadline exceeded at replay cycle %lld",
                static_cast<long long>(c)));
    };
}

} // namespace

RunOutcome
runOneChecked(const SimConfig &config, const workload::Workload &workload,
              uint64_t max_insts, const RunControl &ctl)
{
    SimConfig cfg = config;
    if (max_insts)
        cfg.maxInsts = max_insts;
    cfg.validate();

    RunOutcome out;

    if (cfg.traceMode == TraceMode::Replay) {
        try {
            out.result = trace::replayRun(cfg, workload.name,
                                          ctl.engaged()
                                              ? makeReplayPoll(ctl)
                                              : trace::ReplayPoll{});
        } catch (const ConfigError &) {
            throw; // a bad config is a caller bug, not a run hazard
        } catch (const SimError &err) {
            out.ok = false;
            out.kind = err.kind();
            out.message = err.what();
        }
        return out;
    }

    const bool recording = cfg.traceMode == TraceMode::Record;
    trace::TraceRecorder rec;
    core::Processor proc(cfg, workload,
                         recording ? trace::recordingWrap(rec)
                                   : core::Processor::SupplierWrap{});
    try {
        if (ctl.engaged())
            proc.run(makeRunPoll(ctl), ctl.pollIntervalCycles);
        else
            proc.run();
        out.result = proc.result();
        // Only completed runs leave a trace behind: a partial stream
        // would replay into silently truncated statistics.
        if (recording)
            trace::writeRecordedTrace(cfg, workload.name, proc, rec,
                                      cfg.traceDir);
    } catch (const ConfigError &) {
        throw; // a bad config is a caller bug, not a run hazard
    } catch (const SimError &err) {
        out.ok = false;
        out.kind = err.kind();
        out.message = err.what();
        if (err.hasSnapshot())
            out.snapshotText = err.snapshot().format();
        out.result = proc.result(); // stats up to the failure point
    }
    out.faults = proc.faultLog();
    return out;
}

RunOutcome
runDecodedReplayChecked(const SimConfig &config,
                        const trace::DecodedTrace &decoded,
                        uint64_t max_insts, const RunControl &ctl)
{
    SimConfig cfg = config;
    if (max_insts)
        cfg.maxInsts = max_insts;
    cfg.validate();

    RunOutcome out;
    try {
        out.result = trace::replayDecoded(cfg, decoded,
                                          ctl.engaged()
                                              ? makeReplayPoll(ctl)
                                              : trace::ReplayPoll{});
    } catch (const ConfigError &) {
        throw; // a bad config is a caller bug, not a run hazard
    } catch (const SimError &err) {
        out.ok = false;
        out.kind = err.kind();
        out.message = err.what();
    }
    return out;
}

namespace
{

/** One (name, workload) → WorkloadRun simulation; never throws
 *  SimError (runOneChecked contains it). */
WorkloadRun
runSuiteEntry(const SimConfig &config, const std::string &name,
              const workload::Workload &w, uint64_t max_insts,
              const RunControl &ctl)
{
    const auto t0 = std::chrono::steady_clock::now();
    RunOutcome run = runOneChecked(config, w, max_insts, ctl);
    WorkloadRun wr;
    wr.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    wr.workload = name;
    wr.result = run.result;
    if (!run.ok) {
        wr.failed = true;
        wr.errorKind = run.kind;
        wr.error = run.message;
    }
    return wr;
}

/** Row for a workload the cancel flag kept from ever starting. */
WorkloadRun
canceledRun(const std::string &name)
{
    WorkloadRun wr;
    wr.workload = name;
    wr.failed = true;
    wr.errorKind = ErrorKind::Canceled;
    wr.error = "canceled before start";
    return wr;
}

bool
cancelRaised(const RunControl &ctl)
{
    return ctl.cancel && ctl.cancel->load(std::memory_order_relaxed);
}

} // namespace

std::vector<SuiteResult>
runSuites(const std::vector<SimConfig> &configs,
          const std::vector<std::string> &workload_names,
          const workload::WorkloadParams &params, uint64_t max_insts,
          unsigned jobs, const RunControl &ctl)
{
    const size_t ncfg = configs.size();
    const size_t n = workload_names.size();
    if (ncfg > (1u << 16) || n > (1u << 16))
        fatal("runSuites: grid of %zu config(s) x %zu workload(s) "
              "exceeds the 16-bit task payload fields",
              ncfg, n);

    // Workload construction touches shared generator state; build the
    // whole suite up front on this thread. Each simulation then only
    // reads its own workload.
    std::vector<workload::Workload> workloads;
    workloads.reserve(n);
    for (const auto &name : workload_names)
        workloads.push_back(workload::buildWorkload(name, params));

    std::vector<SuiteResult> out(ncfg);
    for (auto &suite : out)
        suite.runs.resize(n);

    if (jobs <= 1 || ncfg * n <= 1) {
        for (size_t c = 0; c < ncfg; ++c)
            for (size_t i = 0; i < n; ++i)
                out[c].runs[i] =
                    cancelRaised(ctl)
                        ? canceledRun(workload_names[i])
                        : runSuiteEntry(configs[c],
                                        workload_names[i],
                                        workloads[i], max_insts,
                                        ctl);
    } else {
        // Every simulation is self-contained, so grid points can
        // execute (and be stolen) in any order: results are written
        // back by task index, which makes the merged suites identical
        // to a serial run. A task observing a raised cancel flag
        // still runs — it writes the canceled row — so an interrupted
        // sweep yields one row per requested point. An uncontained
        // exception (ConfigError, internal bug) poisons the group:
        // remaining tasks are skipped and wait() rethrows the first.
        sched::Scheduler &sch = sched::Scheduler::global(jobs);
        sched::GroupHandle group =
            sch.createGroup([&](uint32_t payload) {
                const size_t c = sched::pointConfig(payload);
                const size_t i = sched::pointWorkload(payload);
                out[c].runs[i] =
                    cancelRaised(ctl)
                        ? canceledRun(workload_names[i])
                        : runSuiteEntry(configs[c],
                                        workload_names[i],
                                        workloads[i], max_insts,
                                        ctl);
            });
        std::vector<uint32_t> payloads;
        payloads.reserve(ncfg * n);
        for (size_t c = 0; c < ncfg; ++c)
            for (size_t i = 0; i < n; ++i)
                payloads.push_back(sched::packPoint(
                    static_cast<uint16_t>(c),
                    static_cast<uint16_t>(i)));
        sch.submitAll(group, payloads);
        sch.wait(group);
    }

    // Warn after the merge so the output order does not depend on
    // worker scheduling. Cancellations are summarized in one line per
    // suite: per-run warnings would just repeat the interrupt.
    for (const auto &suite : out) {
        size_t canceled = 0;
        for (const auto &wr : suite.runs) {
            if (!wr.failed)
                continue;
            if (wr.errorKind == ErrorKind::Canceled)
                ++canceled;
            else
                warn("workload '%s' failed (%s): %s — continuing "
                     "suite",
                     wr.workload.c_str(), toString(wr.errorKind),
                     wr.error.c_str());
        }
        if (canceled)
            warn("suite canceled: %zu of %zu run(s) did not complete",
                 canceled, suite.runs.size());
    }
    return out;
}

SuiteResult
runSuite(const SimConfig &config,
         const std::vector<std::string> &workload_names,
         const workload::WorkloadParams &params, uint64_t max_insts,
         unsigned jobs, const RunControl &ctl)
{
    std::vector<SimConfig> one{config};
    std::vector<SuiteResult> suites =
        runSuites(one, workload_names, params, max_insts, jobs, ctl);
    return std::move(suites.front());
}

std::vector<std::string>
benchWorkloads(const std::vector<std::string> &defaults)
{
    const char *env = std::getenv("UBRC_WORKLOADS");
    if (!env || !*env || std::strcmp(env, "all") == 0)
        return defaults;

    const auto &known = workload::workloadNames();
    std::vector<std::string> out;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty())
            continue;
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::string valid;
            for (const auto &k : known) {
                if (!valid.empty())
                    valid += ", ";
                valid += k;
            }
            fatal("UBRC_WORKLOADS: unknown workload '%s' (valid: %s)",
                  name.c_str(), valid.c_str());
        }
        out.push_back(name);
    }
    if (out.empty())
        return defaults;
    return out;
}

uint64_t
benchMaxInsts(uint64_t default_max)
{
    const char *env = std::getenv("UBRC_MAX_INSTS");
    if (!env || !*env)
        return default_max;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-') != nullptr)
        fatal("UBRC_MAX_INSTS: cannot parse '%s' as an instruction "
              "count", env);
    return v;
}

unsigned
benchJobs(unsigned default_jobs)
{
    // One global value governs worker counts everywhere: UBRC_JOBS
    // parsing lives with the scheduler it sizes.
    return sched::envJobs(default_jobs);
}

} // namespace ubrc::sim
