#include "sim/runner.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hh"

namespace ubrc::sim
{

namespace
{

/** Successful runs only; failed runs carry partial stats. */
template <typename Fn>
void
forEachOk(const std::vector<WorkloadRun> &runs, Fn &&fn)
{
    for (const auto &r : runs)
        if (!r.failed)
            fn(r);
}

} // namespace

double
SuiteResult::geomeanIpc() const
{
    double log_sum = 0.0;
    size_t n = 0;
    forEachOk(runs, [&](const WorkloadRun &r) {
        log_sum += std::log(r.result.ipc > 0 ? r.result.ipc : 1e-9);
        ++n;
    });
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

double
SuiteResult::mean(double (*metric)(const core::SimResult &)) const
{
    double sum = 0.0;
    size_t n = 0;
    forEachOk(runs, [&](const WorkloadRun &r) {
        sum += metric(r.result);
        ++n;
    });
    return n ? sum / static_cast<double>(n) : 0.0;
}

uint64_t
SuiteResult::total(uint64_t (*metric)(const core::SimResult &)) const
{
    uint64_t sum = 0;
    forEachOk(runs, [&](const WorkloadRun &r) { sum += metric(r.result); });
    return sum;
}

size_t
SuiteResult::numFailed() const
{
    return static_cast<size_t>(
        std::count_if(runs.begin(), runs.end(),
                      [](const WorkloadRun &r) { return r.failed; }));
}

std::string
SuiteResult::failureSummary() const
{
    std::string out;
    for (const auto &r : runs) {
        if (!r.failed)
            continue;
        out += r.workload;
        out += ": [";
        out += toString(r.errorKind);
        out += "] ";
        out += r.error;
        out += '\n';
    }
    return out;
}

core::SimResult
runOne(const SimConfig &config, const workload::Workload &workload,
       uint64_t max_insts)
{
    SimConfig cfg = config;
    if (max_insts)
        cfg.maxInsts = max_insts;
    cfg.validate();
    core::Processor proc(cfg, workload);
    proc.run();
    return proc.result();
}

RunOutcome
runOneChecked(const SimConfig &config, const workload::Workload &workload,
              uint64_t max_insts)
{
    SimConfig cfg = config;
    if (max_insts)
        cfg.maxInsts = max_insts;
    cfg.validate();

    RunOutcome out;
    core::Processor proc(cfg, workload);
    try {
        proc.run();
        out.result = proc.result();
    } catch (const ConfigError &) {
        throw; // a bad config is a caller bug, not a run hazard
    } catch (const SimError &err) {
        out.ok = false;
        out.kind = err.kind();
        out.message = err.what();
        if (err.hasSnapshot())
            out.snapshotText = err.snapshot().format();
        out.result = proc.result(); // stats up to the failure point
    }
    out.faults = proc.faultLog();
    return out;
}

SuiteResult
runSuite(const SimConfig &config,
         const std::vector<std::string> &workload_names,
         const workload::WorkloadParams &params, uint64_t max_insts)
{
    SuiteResult out;
    for (const auto &name : workload_names) {
        const workload::Workload w = workload::buildWorkload(name, params);
        RunOutcome run = runOneChecked(config, w, max_insts);
        WorkloadRun wr;
        wr.workload = name;
        wr.result = run.result;
        if (!run.ok) {
            wr.failed = true;
            wr.errorKind = run.kind;
            wr.error = run.message;
            warn("workload '%s' failed (%s): %s — continuing suite",
                 name.c_str(), toString(run.kind), run.message.c_str());
        }
        out.runs.push_back(std::move(wr));
    }
    return out;
}

std::vector<std::string>
benchWorkloads(const std::vector<std::string> &defaults)
{
    const char *env = std::getenv("UBRC_WORKLOADS");
    if (!env || !*env || std::strcmp(env, "all") == 0)
        return defaults;

    const auto &known = workload::workloadNames();
    std::vector<std::string> out;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty())
            continue;
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::string valid;
            for (const auto &k : known) {
                if (!valid.empty())
                    valid += ", ";
                valid += k;
            }
            fatal("UBRC_WORKLOADS: unknown workload '%s' (valid: %s)",
                  name.c_str(), valid.c_str());
        }
        out.push_back(name);
    }
    if (out.empty())
        return defaults;
    return out;
}

uint64_t
benchMaxInsts(uint64_t default_max)
{
    const char *env = std::getenv("UBRC_MAX_INSTS");
    if (!env || !*env)
        return default_max;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-') != nullptr)
        fatal("UBRC_MAX_INSTS: cannot parse '%s' as an instruction "
              "count", env);
    return v;
}

} // namespace ubrc::sim
