#include "sim/runner.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/log.hh"

namespace ubrc::sim
{

double
SuiteResult::geomeanIpc() const
{
    if (runs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const auto &r : runs)
        log_sum += std::log(r.result.ipc > 0 ? r.result.ipc : 1e-9);
    return std::exp(log_sum / static_cast<double>(runs.size()));
}

double
SuiteResult::mean(double (*metric)(const core::SimResult &)) const
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : runs)
        sum += metric(r.result);
    return sum / static_cast<double>(runs.size());
}

uint64_t
SuiteResult::total(uint64_t (*metric)(const core::SimResult &)) const
{
    uint64_t sum = 0;
    for (const auto &r : runs)
        sum += metric(r.result);
    return sum;
}

core::SimResult
runOne(const SimConfig &config, const workload::Workload &workload,
       uint64_t max_insts)
{
    SimConfig cfg = config;
    if (max_insts)
        cfg.maxInsts = max_insts;
    core::Processor proc(cfg, workload);
    proc.run();
    return proc.result();
}

SuiteResult
runSuite(const SimConfig &config,
         const std::vector<std::string> &workload_names,
         const workload::WorkloadParams &params, uint64_t max_insts)
{
    SuiteResult out;
    for (const auto &name : workload_names) {
        const workload::Workload w = workload::buildWorkload(name, params);
        out.runs.push_back({name, runOne(config, w, max_insts)});
    }
    return out;
}

std::vector<std::string>
benchWorkloads(const std::vector<std::string> &defaults)
{
    const char *env = std::getenv("UBRC_WORKLOADS");
    if (!env || !*env || std::strcmp(env, "all") == 0)
        return defaults;
    std::vector<std::string> out;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ','))
        if (!name.empty())
            out.push_back(name);
    if (out.empty())
        return defaults;
    return out;
}

uint64_t
benchMaxInsts(uint64_t default_max)
{
    const char *env = std::getenv("UBRC_MAX_INSTS");
    if (!env || !*env)
        return default_max;
    return std::strtoull(env, nullptr, 0);
}

} // namespace ubrc::sim
