/**
 * @file
 * Crash-dump forensics: a structured snapshot of the pipeline state,
 * captured whenever a recoverable simulation error (SimError) or the
 * forward-progress watchdog fires. The snapshot is plain data — the
 * processor fills it, the error carries it, and drivers render it to
 * stderr or a dump file — so a failed run in a large sweep leaves
 * enough state behind to diagnose without rerunning.
 */

#ifndef UBRC_SIM_DIAGNOSTICS_HH
#define UBRC_SIM_DIAGNOSTICS_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/cache_entry_view.hh"
#include "common/types.hh"

namespace ubrc::sim
{

/** One ROB entry near the head, as captured at snapshot time. */
struct SnapshotRobEntry
{
    InstSeqNum seq = 0;
    Addr pc = 0;
    std::string disasm;
    int state = 0; ///< core::InstState as an integer
    bool completed = false;
    bool executing = false;
    unsigned replays = 0;
    Cycle readyCycle = 0;
};

/** One valid register cache entry (set contents with use state). */
using SnapshotCacheEntry = CacheEntryView;

/** One recently retired instruction. */
struct SnapshotRetired
{
    InstSeqNum seq = 0;
    Addr pc = 0;
    std::string disasm;
    Cycle cycle = 0;
};

/**
 * Structured pipeline state at the moment of failure. Everything a
 * post-mortem needs: where the machine was, what the ROB head looked
 * like, what the register cache held (with remaining-use counts and
 * pin bits), and what retired last.
 */
struct PipelineSnapshot
{
    /** ROB entries captured from the head. */
    static constexpr size_t robHeadWindow = 8;
    /** Retired instructions kept in the history ring. */
    static constexpr size_t retiredWindow = 16;

    Cycle cycle = 0;
    Addr fetchPc = 0;
    uint64_t instsRetired = 0;
    Cycle lastRetireCycle = 0;

    size_t robSize = 0, robCapacity = 0;
    size_t iqSize = 0, iqCapacity = 0;
    size_t freeListSize = 0;
    unsigned allocatedPregs = 0, numPhysRegs = 0;

    std::vector<SnapshotRobEntry> robHead;

    unsigned cacheSets = 0, cacheAssoc = 0;
    std::vector<SnapshotCacheEntry> cacheEntries;

    /** Oldest-first window of the last retired instructions. */
    std::vector<SnapshotRetired> lastRetired;

    /** Human-readable log of injected faults, oldest first. */
    std::vector<std::string> injectedFaults;

    /** Render the snapshot as a multi-line report. */
    std::string format() const;
};

/** Write a formatted snapshot to a stdio stream (e.g. stderr). */
void dumpSnapshot(const PipelineSnapshot &snap, std::FILE *out);

/**
 * Write a formatted snapshot to a file.
 * @return false (with a warning) if the file cannot be written.
 */
bool writeSnapshotFile(const PipelineSnapshot &snap,
                       const std::string &path);

} // namespace ubrc::sim

#endif // UBRC_SIM_DIAGNOSTICS_HH
