/**
 * @file
 * Top-level simulator configuration. Defaults reproduce Table 1 of
 * the paper; named constructors produce the reference designs used in
 * the evaluation (monolithic register files of various latencies, the
 * LRU and non-bypass register caches, the use-based cache, and the
 * two-level register file).
 */

#ifndef UBRC_SIM_CONFIG_HH
#define UBRC_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "frontend/branch_predictor.hh"
#include "inject/fault_injector.hh"
#include "mem/hierarchy.hh"
#include "regcache/dou_predictor.hh"
#include "regcache/register_cache.hh"
#include "regfile/two_level.hh"

namespace ubrc::sim
{

/** Which register storage organization backs the execution core. */
enum class RegScheme
{
    /** A single multi-cycle register file (no cache). */
    Monolithic,
    /** Register cache + backing file (the paper's framework). */
    Cached,
    /** Two-level (L1/L2) register file (Balasubramonian et al.). */
    TwoLevel,
};

const char *toString(RegScheme s);

/** Operand-trace handling for a run (src/trace). */
enum class TraceMode
{
    /** Plain execution-driven simulation. */
    Off,
    /** Execution-driven, recording the operand-event stream to
     *  `traceDir` for later replay. */
    Record,
    /** Trace-driven: replay a recorded stream from `traceDir`
     *  against this storage configuration; no core is simulated. */
    Replay,
};

const char *toString(TraceMode m);

/** Complete machine configuration. */
struct SimConfig
{
    // --- widths (Table 1) ---
    unsigned fetchWidth = 8;
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned retireWidth = 8;
    unsigned maxRetireStores = 2;

    // --- pipeline depths ---
    /** Fetch (4) + decode (2) stages before rename. */
    unsigned fetchToRename = 6;
    /** Rename (3) + dispatch (2) stages before issue eligibility. */
    unsigned renameToIssue = 5;
    /** Bypass network stages (ALU feedback + cache write-to-read). */
    unsigned bypassStages = 2;

    // --- windows ---
    unsigned iqEntries = 128;
    unsigned robEntries = 512;
    unsigned numPhysRegs = 512;
    unsigned lqEntries = 128;
    unsigned sqEntries = 128;
    unsigned frontQueueLimit = 64;

    // --- functional units (counts and latencies, Table 1) ---
    unsigned intAluUnits = 6;
    unsigned branchUnits = 2;
    unsigned intMulUnits = 2;
    unsigned fxAluUnits = 4;
    unsigned fxMulDivUnits = 2;
    unsigned loadUnits = 4;
    unsigned storeUnits = 2;
    Cycle intAluLat = 1;
    Cycle branchLat = 2;
    Cycle intMulLat = 4;
    Cycle fxAluLat = 3;
    Cycle fxMulLat = 4;
    Cycle fxDivLat = 18;
    Cycle loadToUse = 4; ///< on an L1 hit

    // --- register storage ---
    RegScheme scheme = RegScheme::Cached;
    /** Monolithic register file read (= write) latency. */
    Cycle rfLatency = 3;
    /** Backing file read (= write) latency behind a cache. */
    Cycle backingLatency = 2;
    regcache::RegCacheParams rc;
    regcache::DouParams dou;
    regfile::TwoLevelParams twoLevel;

    // --- memory and predictors ---
    mem::MemConfig memory;
    frontend::YagsConfig yags;
    frontend::CascadingIndirectPredictor::Config indirect;
    unsigned rasDepth = 64;
    unsigned storeBufferEntries = 16;
    unsigned storeDrainPorts = 4;

    // --- run control ---
    uint64_t maxInsts = 0;  ///< 0: run to HALT
    uint64_t maxCycles = 0; ///< 0: unbounded
    /**
     * Forward-progress watchdog: cycles without a retirement before
     * the run is declared deadlocked (DeadlockError carrying a
     * pipeline snapshot). 0 disables the watchdog.
     */
    uint64_t watchdogCycles = 500000;
    /** Seeded fault injection (disabled unless rate > 0). */
    inject::FaultParams inject;
    bool checker = true;    ///< golden-model retirement checking
    bool classifyMisses = true; ///< shadow FA cache for Fig. 8
    bool trackLifetimes = false; ///< Fig. 1 / Fig. 2 instrumentation
    /**
     * Oracle front end: branches resolve to their true outcome at
     * fetch, eliminating wrong-path execution. Used by the
     * speculation ablation to quantify the Section 3.4 wrong-path
     * use-count pollution.
     */
    bool perfectBranchPrediction = false;

    // --- operand tracing (src/trace) ---
    TraceMode traceMode = TraceMode::Off;
    /** Trace directory (one `<workload>.ubrct` file per workload);
     *  required when traceMode != Off. */
    std::string traceDir;

    /** Issue-to-execute distance for this storage scheme. */
    Cycle
    issueToExec() const
    {
        return scheme == RegScheme::Monolithic ? rfLatency + 1 : 2;
    }

    // --- named designs from the evaluation ---

    /** The paper's proposed design point (Section 5.3). */
    static SimConfig useBasedCache();
    /** LRU register cache (Yung & Wilhelm reference design). */
    static SimConfig lruCache();
    /** Non-bypass register cache (Cruz et al. reference design). */
    static SimConfig nonBypassCache();
    /** Monolithic file with the given read/write latency. */
    static SimConfig monolithic(Cycle latency);
    /** Two-level register file with an L1 of cache_entries + 32. */
    static SimConfig twoLevelFile(unsigned cache_entries);

    /** One-line summary for logs. */
    std::string describe() const;

    /**
     * Check every knob for consistency before a run. Throws
     * ConfigError with an actionable message naming the offending
     * knob; called by runOne(), ubrcsim, and the bench drivers so a
     * bad configuration fails fast instead of deep inside a model.
     */
    void validate() const;
};

} // namespace ubrc::sim

#endif // UBRC_SIM_CONFIG_HH
