/**
 * @file
 * Versioned JSON serialization of simulation results.
 *
 * One stable schema covers every layer of the results hierarchy:
 * core::SimResult (per-run derived metrics), storage::SupplierStats
 * (raw storage-layer aggregates), sim::RunOutcome (a contained run
 * with its failure record and fault log), sim::WorkloadRun and
 * sim::SuiteResult (per-workload rows of a sweep). The bench Reporter
 * and ubrcsim --stats-format=json both emit documents built from
 * these writers, so BENCH_*.json files are diffable run-over-run and
 * across commits.
 *
 * Schema stability rules: resultsSchemaVersion is bumped whenever a
 * key is renamed or removed or its meaning changes; adding new keys
 * is backward compatible and does not bump the version. Aggregates
 * over zero successful runs are serialized as null, never as 0.0
 * (see SuiteResult::numOk()). tools/check_results_json.py validates
 * emitted documents against this schema in CI.
 */

#ifndef UBRC_SIM_RESULTS_JSON_HH
#define UBRC_SIM_RESULTS_JSON_HH

#include "common/json.hh"
#include "core/processor.hh"
#include "sim/runner.hh"

namespace ubrc::sim
{

/** Version of the JSON results schema (see file comment). */
inline constexpr unsigned resultsSchemaVersion = 1;

/**
 * Revision string for a document's meta block: UBRC_GIT_DESCRIBE when
 * set (tests pin it for golden files), else `git describe --always
 * --dirty`, else "unknown".
 */
std::string metaGitDescribe();

/**
 * Document timestamp (seconds since the epoch); UBRC_REPORT_EPOCH
 * pins it for golden tests.
 */
uint64_t metaReportEpoch();

/** Serialize one run's derived metrics as a JSON object. */
void writeSimResult(json::Writer &w, const core::SimResult &r);

/** Serialize the raw storage-layer aggregates as a JSON object. */
void writeSupplierStats(json::Writer &w,
                        const storage::SupplierStats &s);

/** Serialize one injected fault as a JSON object. */
void writeFaultRecord(json::Writer &w, const inject::FaultRecord &f);

/**
 * Serialize a contained single-run outcome: the (possibly partial)
 * result, the failure record when !ok, and the injected-fault log.
 */
void writeRunOutcome(json::Writer &w, const RunOutcome &o);

/** Serialize one per-workload row of a suite. */
void writeWorkloadRun(json::Writer &w, const WorkloadRun &r);

/**
 * Serialize a whole suite: per-workload rows, failure records, and
 * the aggregates (null when every run failed).
 */
void writeSuiteResult(json::Writer &w, const SuiteResult &s);

} // namespace ubrc::sim

#endif // UBRC_SIM_RESULTS_JSON_HH
