/**
 * @file
 * Convenience layer for running configurations over workload suites
 * and aggregating results, used by the benchmark harnesses and the
 * examples.
 *
 * Failures are contained per run: runOneChecked() converts a SimError
 * (checker divergence, deadlock, invariant violation) into a
 * RunOutcome instead of letting it terminate the process, and
 * runSuite() keeps going past failed workloads so one poisoned run
 * cannot sink a whole sweep.
 */

#ifndef UBRC_SIM_RUNNER_HH
#define UBRC_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "core/processor.hh"
#include "sim/config.hh"
#include "sim/sim_error.hh"
#include "workload/workload.hh"

namespace ubrc::sim
{

/** Outcome of one contained simulation: a result or a failure. */
struct RunOutcome
{
    core::SimResult result;      ///< valid stats up to the failure point
    bool ok = true;
    ErrorKind kind = ErrorKind::Invariant; ///< valid when !ok
    std::string message;         ///< error text, empty when ok
    std::string snapshotText;    ///< formatted crash dump, empty when ok
    std::vector<inject::FaultRecord> faults; ///< injected-fault log
};

/** Result of one (config, workload) simulation. */
struct WorkloadRun
{
    std::string workload;
    core::SimResult result;
    bool failed = false;
    ErrorKind errorKind = ErrorKind::Invariant; ///< valid when failed
    std::string error;           ///< error text, empty unless failed
};

/** Results of one configuration across a workload suite. */
struct SuiteResult
{
    std::vector<WorkloadRun> runs;

    /** Geometric-mean IPC over the successful runs. */
    double geomeanIpc() const;

    /** Arithmetic mean of a per-run metric over successful runs. */
    double mean(double (*metric)(const core::SimResult &)) const;

    /** Sum of a per-run counter over successful runs. */
    uint64_t total(uint64_t (*metric)(const core::SimResult &)) const;

    /** Number of runs that ended in a contained SimError. */
    size_t numFailed() const;

    /** One line per failed run ("name: message"), empty if none. */
    std::string failureSummary() const;
};

/**
 * Run one workload under one configuration. Validates the config and
 * propagates SimError (divergence, deadlock, ...) to the caller.
 * @param max_insts If nonzero, retire at most this many instructions.
 */
core::SimResult runOne(const SimConfig &config,
                       const workload::Workload &workload,
                       uint64_t max_insts = 0);

/**
 * Run one workload, containing any SimError in the returned outcome
 * instead of throwing. ConfigError still propagates: a bad config is
 * a caller bug, not a per-run hazard.
 */
RunOutcome runOneChecked(const SimConfig &config,
                         const workload::Workload &workload,
                         uint64_t max_insts = 0);

/**
 * Run a configuration over a set of workloads (by name). A run that
 * fails with a SimError is recorded (WorkloadRun::failed) and the
 * remaining workloads still run.
 */
SuiteResult runSuite(const SimConfig &config,
                     const std::vector<std::string> &workload_names,
                     const workload::WorkloadParams &params = {},
                     uint64_t max_insts = 0);

/**
 * Workload subset and run-length controls for benchmark binaries,
 * honouring the UBRC_WORKLOADS (comma-separated names or "all") and
 * UBRC_MAX_INSTS environment variables. Malformed values are fatal:
 * an unparseable UBRC_MAX_INSTS or an unknown workload name aborts
 * with a message naming the offending string rather than being
 * silently ignored.
 */
std::vector<std::string> benchWorkloads(
    const std::vector<std::string> &defaults);
uint64_t benchMaxInsts(uint64_t default_max);

} // namespace ubrc::sim

#endif // UBRC_SIM_RUNNER_HH
