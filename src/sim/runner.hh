/**
 * @file
 * Convenience layer for running configurations over workload suites
 * and aggregating results, used by the benchmark harnesses and the
 * examples.
 */

#ifndef UBRC_SIM_RUNNER_HH
#define UBRC_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "core/processor.hh"
#include "sim/config.hh"
#include "workload/workload.hh"

namespace ubrc::sim
{

/** Result of one (config, workload) simulation. */
struct WorkloadRun
{
    std::string workload;
    core::SimResult result;
};

/** Results of one configuration across a workload suite. */
struct SuiteResult
{
    std::vector<WorkloadRun> runs;

    /** Geometric-mean IPC over the suite. */
    double geomeanIpc() const;

    /** Arithmetic mean of an arbitrary per-run metric. */
    double mean(double (*metric)(const core::SimResult &)) const;

    /** Sum of an arbitrary per-run counter. */
    uint64_t total(uint64_t (*metric)(const core::SimResult &)) const;
};

/**
 * Run one workload under one configuration.
 * @param max_insts If nonzero, retire at most this many instructions.
 */
core::SimResult runOne(const SimConfig &config,
                       const workload::Workload &workload,
                       uint64_t max_insts = 0);

/** Run a configuration over a set of workloads (by name). */
SuiteResult runSuite(const SimConfig &config,
                     const std::vector<std::string> &workload_names,
                     const workload::WorkloadParams &params = {},
                     uint64_t max_insts = 0);

/**
 * Workload subset and run-length controls for benchmark binaries,
 * honouring the UBRC_WORKLOADS (comma-separated names or "all") and
 * UBRC_MAX_INSTS environment variables.
 */
std::vector<std::string> benchWorkloads(
    const std::vector<std::string> &defaults);
uint64_t benchMaxInsts(uint64_t default_max);

} // namespace ubrc::sim

#endif // UBRC_SIM_RUNNER_HH
