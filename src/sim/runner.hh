/**
 * @file
 * Convenience layer for running configurations over workload suites
 * and aggregating results, used by the benchmark harnesses and the
 * examples.
 *
 * Failures are contained per run: runOneChecked() converts a SimError
 * (checker divergence, deadlock, invariant violation) into a
 * RunOutcome instead of letting it terminate the process, and
 * runSuite() keeps going past failed workloads so one poisoned run
 * cannot sink a whole sweep.
 */

#ifndef UBRC_SIM_RUNNER_HH
#define UBRC_SIM_RUNNER_HH

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "core/processor.hh"
#include "sim/config.hh"
#include "sim/sim_error.hh"
#include "workload/workload.hh"

namespace ubrc::trace
{
struct DecodedTrace;
} // namespace ubrc::trace

namespace ubrc::sim
{

/**
 * Optional wall-clock deadline and cooperative cancellation for a
 * run, layered on top of the forward-progress watchdog: the watchdog
 * catches hung pipelines, RunControl bounds well-formed but oversized
 * work and lets a service drain. Both trigger through a periodic poll
 * in Processor::run(); the defaulted instance polls nothing and adds
 * no per-cycle cost.
 */
struct RunControl
{
    /** Absolute deadline; meaningful only when hasDeadline. */
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;

    /**
     * When set and it becomes true, the run aborts with a contained
     * CanceledError at the next poll. The flag is owned by the caller
     * (typically a signal handler or a draining server).
     */
    const std::atomic<bool> *cancel = nullptr;

    /** Cycles between deadline/cancel polls (0: the 4096 default). */
    uint64_t pollIntervalCycles = 0;

    bool engaged() const { return hasDeadline || cancel != nullptr; }

    /** Deadline `ms` milliseconds from now. */
    static RunControl
    deadlineAfterMs(uint64_t ms)
    {
        RunControl ctl;
        ctl.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
        ctl.hasDeadline = true;
        return ctl;
    }
};

/** Outcome of one contained simulation: a result or a failure. */
struct RunOutcome
{
    core::SimResult result;      ///< valid stats up to the failure point
    bool ok = true;
    ErrorKind kind = ErrorKind::Invariant; ///< valid when !ok
    std::string message;         ///< error text, empty when ok
    std::string snapshotText;    ///< formatted crash dump, empty when ok
    std::vector<inject::FaultRecord> faults; ///< injected-fault log
};

/** Result of one (config, workload) simulation. */
struct WorkloadRun
{
    std::string workload;
    core::SimResult result;
    bool failed = false;
    ErrorKind errorKind = ErrorKind::Invariant; ///< valid when failed
    std::string error;           ///< error text, empty unless failed
    /** Wall-clock duration of this run (0 outside runSuite). */
    double wallSeconds = 0;
};

/** Results of one configuration across a workload suite. */
struct SuiteResult
{
    std::vector<WorkloadRun> runs;

    /** Geometric-mean IPC over the successful runs. */
    double geomeanIpc() const;

    /**
     * Arithmetic mean of a per-run metric over successful runs.
     * Accepts any callable of SimResult, capturing lambdas included.
     */
    template <typename MetricFn>
    double
    mean(MetricFn &&metric) const
    {
        double sum = 0.0;
        size_t n = 0;
        for (const auto &r : runs) {
            if (r.failed)
                continue;
            sum += metric(r.result);
            ++n;
        }
        return n ? sum / static_cast<double>(n) : 0.0;
    }

    /** Sum of a per-run counter over successful runs. */
    template <typename MetricFn>
    uint64_t
    total(MetricFn &&metric) const
    {
        uint64_t sum = 0;
        for (const auto &r : runs)
            if (!r.failed)
                sum += metric(r.result);
        return sum;
    }

    /** Number of runs that ended in a contained SimError. */
    size_t numFailed() const;

    /**
     * Number of successful runs. When this is zero, geomeanIpc(),
     * mean(), and total() all return 0 — a sentinel, not a datapoint.
     * JSON serialization (sim/results_json.hh) emits null for every
     * aggregate of an all-failed suite instead of recording the 0.
     */
    size_t numOk() const { return runs.size() - numFailed(); }

    /** One line per failed run ("name: message"), empty if none. */
    std::string failureSummary() const;
};

/**
 * Run one workload under one configuration. Validates the config and
 * propagates SimError (divergence, deadlock, ...) to the caller.
 *
 * config.traceMode selects the engine: Record runs execution-driven
 * and writes `<traceDir>/<workload>.ubrct` on success; Replay skips
 * the core entirely and re-evaluates the storage configuration
 * against the recorded trace (TraceFormatError on a bad trace file).
 *
 * @param max_insts If nonzero, retire at most this many instructions.
 */
core::SimResult runOne(const SimConfig &config,
                       const workload::Workload &workload,
                       uint64_t max_insts = 0);

/**
 * Run one workload, containing any SimError in the returned outcome
 * instead of throwing. ConfigError still propagates: a bad config is
 * a caller bug, not a per-run hazard.
 *
 * @param ctl Optional deadline/cancellation (see RunControl). An
 *            expired deadline or raised cancel flag is contained like
 *            any other SimError: the outcome reports the kind
 *            (DeadlineExceeded / Canceled) with stats and a snapshot
 *            from the abort point.
 */
RunOutcome runOneChecked(const SimConfig &config,
                         const workload::Workload &workload,
                         uint64_t max_insts = 0,
                         const RunControl &ctl = {});

/**
 * Replay a pre-decoded trace with the containment and RunControl
 * semantics of runOneChecked()'s replay path: SimErrors (including
 * DeadlineExceeded/Canceled and TraceFormatError from malformed event
 * bytes) land in the outcome, ConfigError propagates. The caller is
 * responsible for matching the trace to the intended workload; the
 * sweep server uses this with its decoded-trace cache so a hot trace
 * is decoded once, not once per request.
 */
RunOutcome runDecodedReplayChecked(const SimConfig &config,
                                   const trace::DecodedTrace &decoded,
                                   uint64_t max_insts = 0,
                                   const RunControl &ctl = {});

/**
 * Run a configuration over a set of workloads (by name). A run that
 * fails with a SimError is recorded (WorkloadRun::failed) and the
 * remaining workloads still run.
 *
 * @param jobs 1 (the default) runs the suite inline on the calling
 *             thread; N > 1 submits every workload as a task to the
 *             global work-stealing scheduler (sched::Scheduler) and
 *             waits. The pool size is governed by the single global
 *             worker count (setGlobalWorkers / UBRC_JOBS), with
 *             `jobs` acting as the sizing hint for the first parallel
 *             call in the process. Each simulation is fully
 *             independent (its own Processor, memory image, and
 *             statistics) and results are written back by task index,
 *             so the merged SuiteResult is bit-identical to a serial
 *             run whatever stealing occurred: results land at their
 *             workload's position in `workload_names` order and
 *             failure warnings are emitted in that same order after
 *             the suite finishes.
 * @param ctl  Optional deadline/cancellation applied to every run.
 *             When the cancel flag rises, in-flight runs abort at
 *             their next poll and not-yet-started workloads are
 *             recorded as failed with ErrorKind::Canceled, so an
 *             interrupted sweep still yields a complete, flushable
 *             SuiteResult with one row per requested workload.
 */
SuiteResult runSuite(const SimConfig &config,
                     const std::vector<std::string> &workload_names,
                     const workload::WorkloadParams &params = {},
                     uint64_t max_insts = 0, unsigned jobs = 1,
                     const RunControl &ctl = {});

/**
 * Run several configurations over the same workload suite as one
 * scheduler submission: every (config, workload) grid point becomes
 * an independent task, so a heavy-tailed point (a pointer-chasing
 * workload under a slow scheme) no longer serializes the suites
 * behind it — idle workers steal across suite boundaries. Semantics
 * per suite match runSuite() (same containment, cancellation rows,
 * post-merge warning order, bit-identical write-back-by-index merge);
 * with jobs <= 1 the grid runs inline in config-major order. An
 * uncontained ConfigError (or internal bug) from any point propagates
 * after in-flight tasks finish, like runSuite.
 */
std::vector<SuiteResult> runSuites(
    const std::vector<SimConfig> &configs,
    const std::vector<std::string> &workload_names,
    const workload::WorkloadParams &params = {},
    uint64_t max_insts = 0, unsigned jobs = 1,
    const RunControl &ctl = {});

/**
 * Workload subset and run-length controls for benchmark binaries,
 * honouring the UBRC_WORKLOADS (comma-separated names or "all"),
 * UBRC_MAX_INSTS, and UBRC_JOBS environment variables. Malformed
 * values are fatal: an unparseable UBRC_MAX_INSTS, a zero or
 * unparseable UBRC_JOBS, or an unknown workload name aborts with a
 * message naming the offending string rather than being silently
 * ignored. benchJobs() delegates to sched::envJobs(): UBRC_JOBS is
 * the same global value that sizes the work-stealing scheduler, so
 * one knob governs worker counts everywhere.
 */
std::vector<std::string> benchWorkloads(
    const std::vector<std::string> &defaults);
uint64_t benchMaxInsts(uint64_t default_max);
unsigned benchJobs(unsigned default_jobs = 1);

} // namespace ubrc::sim

#endif // UBRC_SIM_RUNNER_HH
