/**
 * @file
 * The operand-supplier abstraction: everything the out-of-order core
 * needs to know about where register values live.
 *
 * The paper's evaluation is a comparison between register-storage
 * organizations (monolithic multi-cycle file, register cache plus
 * backing file, two-level file). The core used to hard-wire all three;
 * OperandSupplier factors the storage contract out so the pipeline
 * only orchestrates and each organization lives in its own class:
 *
 *  - rename:    canAllocateDest / allocateDest / onConsumerRenamed /
 *               onArchReassigned (and the squash-time inverses)
 *  - issue:     issueReadGate (the monolithic issue-restriction gap)
 *  - execute:   onBypassRead / readOperand, then the miss + fill +
 *               replay contract (onOperandMiss / onFill)
 *  - complete:  onValueProduced, optionally followed one cycle later
 *               by onInsertDecision (cache-write filtering must see
 *               that cycle's first-stage bypass readers)
 *  - retire:    onProducerRetired / onValueFreed (+ DoU training)
 *  - recovery:  onDestSquashed / recoverMappings
 *  - forensics: cachedEntries / corruptUseCounter / corruptDouCounter
 *               for fault injection and pipeline-snapshot crash dumps
 *
 * The base class owns the degree-of-use predictor and the per-value
 * use-tracking state shared by every organization, so predictor
 * statistics are reported uniformly across schemes.
 */

#ifndef UBRC_STORAGE_OPERAND_SUPPLIER_HH
#define UBRC_STORAGE_OPERAND_SUPPLIER_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/cache_entry_view.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "regcache/dou_predictor.hh"

namespace ubrc::sim
{
struct SimConfig;
}

namespace ubrc::storage
{

/** Where a non-bypassed operand read was satisfied. */
enum class ReadResult : uint8_t
{
    File,      ///< read from the (backing/monolithic/L1) file
    CacheHit,  ///< register cache hit
    CacheMiss, ///< register cache miss; onOperandMiss() must follow
};

/** Rename-time outcome for a newly allocated destination register. */
struct DestAlloc
{
    uint8_t predUses = 0;  ///< degree-of-use prediction (clamped)
    bool pinned = false;   ///< prediction saturated the counter range
    uint16_t set = 0;      ///< assigned cache set (decoupled indexing)
};

/** What the core must do after a produced value's storage write. */
struct WriteOutcome
{
    /**
     * True: schedule an insertion decision (onInsertDecision) for the
     * next cycle. Cache-write filtering must observe the first-stage
     * bypass readers of the write cycle, so the decision cannot be
     * taken inline.
     */
    bool insertDecisionNextCycle = false;
};

/** One valid cache entry, for snapshots and fault-site selection. */
using CacheEntryView = ubrc::CacheEntryView;

/** Squash-recovery outcome (two-level copy-back). */
struct RecoveryResult
{
    /** Cycle at whose end every restored mapping is readable again. */
    Cycle doneAt = 0;
    /** Restored mappings that were displaced and must be re-timed. */
    std::vector<PhysReg> displaced;
};

/**
 * Aggregate statistics a supplier contributes to the run result.
 * Cache-less suppliers leave the cache fields at zero.
 */
struct SupplierStats
{
    bool hasCache = false; ///< cache-derived metrics below are valid

    uint64_t misses = 0;
    uint64_t missNoWrite = 0, missConflict = 0, missCapacity = 0;
    uint64_t inserts = 0, fills = 0;
    uint64_t writesFiltered = 0, valuesNeverCached = 0;
    uint64_t entriesNeverRead = 0;
    uint64_t fileReads = 0, fileWrites = 0;
    double avgOccupancy = 0;
    double avgEntryLifetime = 0;
    double readsPerCachedValue = 0;
    double zeroUseVictimFraction = 0;
    double douAccuracy = 0;
};

/**
 * Which purely-informational notifications a supplier actually reacts
 * to. The four flagged callbacks are no-ops on the base class; trace
 * replay (src/trace/trace_replay.cc) skips the corresponding event
 * kinds for suppliers that leave a flag false, which is a large share
 * of a trace's event volume.
 *
 * CONTRACT: any supplier that overrides onConsumerDone,
 * onArchReassigned / onArchReassignCancelled, or onProducerRetired
 * MUST set the matching flag in its optionalNotifications() override,
 * or replay will silently starve that handler. The exact-replay
 * fidelity tests catch an untruthful declaration (replayed stats stop
 * matching execution).
 */
struct OptionalNotifications
{
    bool consumerDone = false;    ///< reacts to onConsumerDone
    bool archReassign = false;    ///< onArchReassigned / Cancelled
    bool producerRetired = false; ///< reacts to onProducerRetired
};

/** A register-storage organization behind the execution core. */
class OperandSupplier
{
  public:
    OperandSupplier(const sim::SimConfig &config,
                    stats::StatGroup &stat_group);
    virtual ~OperandSupplier();

    OperandSupplier(const OperandSupplier &) = delete;
    OperandSupplier &operator=(const OperandSupplier &) = delete;

    /** Scheme name for logs and diagnostics. */
    virtual const char *name() const = 0;

    /**
     * Which optional notifications this supplier reacts to (see
     * OptionalNotifications for the replay-skipping contract). The
     * base leaves every flag false, matching its no-op handlers.
     */
    virtual OptionalNotifications optionalNotifications() const
    {
        return {};
    }

    // --- rename -------------------------------------------------------

    /** May rename allocate a destination this cycle (beyond the free
     *  list, which the core owns)? */
    virtual bool canAllocateDest() const { return true; }

    /**
     * A consumer of `src` was renamed. `actual_uses` is the running
     * committed-consumer count including this one. The base class
     * trains the use predictor early once the count saturates its
     * range (the free-time training value is then already known).
     */
    virtual void onConsumerRenamed(PhysReg src, uint32_t actual_uses,
                                   Addr producer_pc,
                                   uint64_t producer_ctrl);

    /**
     * Allocate storage-side state for a newly renamed destination:
     * predict its degree of use, assign a cache set, reserve file
     * space. The returned DestAlloc travels with the instruction for
     * diagnostics.
     */
    virtual DestAlloc allocateDest(PhysReg preg, Addr pc, uint64_t ctrl);

    /** Initialize an architectural register's preg at construction. */
    virtual void onInitialValue(PhysReg preg);

    /** The arch register mapping to `prev` was overwritten. */
    virtual void onArchReassigned(PhysReg prev) { (void)prev; }

    /** The overwrite of `prev`'s arch register was squashed. */
    virtual void onArchReassignCancelled(PhysReg prev) { (void)prev; }

    // --- issue --------------------------------------------------------

    /**
     * Earliest cycle an operand of `producer_done` may be read when
     * the instruction would start executing at `exec_start`. Zero
     * means no restriction. Non-zero models the monolithic file's
     * issue-restriction gap: an operand that fell out of the bypass
     * window is only readable once its file write completes.
     */
    virtual Cycle
    issueReadGate(Cycle exec_start, Cycle producer_done) const
    {
        (void)exec_start;
        (void)producer_done;
        return 0;
    }

    /**
     * Can issueReadGate() ever return non-zero? Constant per supplier;
     * the core caches it at construction and skips the per-source gate
     * query entirely for ungated schemes. Decorators must forward it.
     */
    virtual bool hasIssueReadGate() const { return false; }

    // --- execute ------------------------------------------------------

    /**
     * An operand was satisfied by the bypass network. First-stage
     * readers are visible to the producer's pending cache-write
     * decision; cached suppliers also keep remaining-use counters in
     * step for bypassed consumers.
     */
    virtual void onBypassRead(PhysReg src, bool first_stage);

    /** Non-bypassed operand read at cycle `now`. */
    virtual ReadResult
    readOperand(PhysReg src, Cycle now)
    {
        (void)src;
        (void)now;
        return ReadResult::File;
    }

    /**
     * A readOperand() miss: classify it, arbitrate the backing-file
     * read port, and mark a fill in flight.
     * @return cycle at whose end the data is available to bypass.
     */
    virtual Cycle onOperandMiss(PhysReg src, Cycle exec_start);

    /**
     * The miss-fill for `preg` arrived. @return true if the value was
     * (re)established in the cache. Ignores stale fills (value freed
     * or already re-cached).
     */
    virtual bool
    onFill(PhysReg preg, Cycle now)
    {
        (void)preg;
        (void)now;
        return false;
    }

    /** A renamed consumer of `src` has executed (first time only). */
    virtual void onConsumerDone(PhysReg src) { (void)src; }

    // --- completion ---------------------------------------------------

    /**
     * The producing instruction completed; start the storage write.
     * Sets the value's storage-ready time for later miss reads.
     */
    virtual WriteOutcome onValueProduced(PhysReg preg, Cycle now) = 0;

    /**
     * Deferred cache-write (insertion) decision, one cycle after
     * onValueProduced asked for it.
     */
    virtual void onInsertDecision(PhysReg preg, Cycle now)
    {
        (void)preg;
        (void)now;
    }

    // --- retire / free / squash ---------------------------------------

    /** The producing instruction of `dest` retired. */
    virtual void onProducerRetired(PhysReg dest) { (void)dest; }

    /**
     * The physical register was freed (its overwriter retired).
     * Invalidates any cached copy and trains the use predictor with
     * the committed consumer count. `producer_pc` is zero for values
     * never written by an instruction (initial mappings).
     */
    virtual void onValueFreed(PhysReg preg, Addr producer_pc,
                              uint64_t producer_ctrl,
                              uint32_t actual_uses, Cycle now);

    /** The producing instruction of `dest` was squashed. */
    virtual void
    onDestSquashed(PhysReg dest, Cycle now)
    {
        (void)dest;
        (void)now;
    }

    // --- recovery -----------------------------------------------------

    /** Does this supplier need recoverMappings() after a squash? */
    virtual bool needsRecovery() const { return false; }

    /**
     * A squash restored the map table; `mapped` holds the live
     * mapping of every architectural register. Suppliers that migrate
     * values out of the fast level copy them back here.
     */
    virtual RecoveryResult
    recoverMappings(const std::vector<PhysReg> &mapped, Cycle now)
    {
        (void)mapped;
        (void)now;
        return {};
    }

    // --- per-cycle ----------------------------------------------------

    /** Background engines (transfer queues); called once per cycle. */
    virtual void tick(Cycle now) { (void)now; }

    /** End-of-cycle statistics sampling (cache occupancy). */
    virtual void sampleCycleStats() {}

    // --- forensics and fault injection --------------------------------

    /** Valid cache entries in set/way order; empty when cache-less. */
    virtual std::vector<CacheEntryView> cachedEntries() const
    {
        return {};
    }

    virtual unsigned cacheSets() const { return 0; }
    virtual unsigned cacheAssoc() const { return 0; }

    /**
     * Fault injection: flip one bit of a resident entry's
     * remaining-use counter. @return false if not resident.
     */
    virtual bool
    corruptUseCounter(PhysReg preg, unsigned set, unsigned bit)
    {
        (void)preg;
        (void)set;
        (void)bit;
        return false;
    }

    /**
     * Fault injection: flip one bit of a use-predictor entry. Returns
     * the (table index, bit) actually corrupted, or nullopt if the
     * chosen entry was invalid.
     */
    std::optional<std::pair<size_t, unsigned>>
    corruptDouCounter(uint64_t raw_site, unsigned raw_bit);

    // --- results ------------------------------------------------------

    /** Aggregate contribution to the run result. */
    virtual SupplierStats stats() const;

  protected:
    /**
     * Per-physical-register storage-side state. The core keeps the
     * pipeline bookkeeping (completion times, consumer lists); the
     * supplier keeps everything the storage organization needs.
     */
    struct ValueState
    {
        Cycle storageReadyAt = 0; ///< file write completes
        uint8_t predUses = 0;     ///< degree-of-use prediction
        bool pinned = false;      ///< prediction saturated maxUse
        int32_t remUses = 0;      ///< pre-insertion remaining uses
        uint32_t stage1Bypasses = 0;
        bool everCached = false;
        bool insertedNow = false; ///< currently believed in cache
        uint16_t set = 0;         ///< assigned cache set
        bool fillInFlight = false;
    };

    ValueState &value(PhysReg preg) { return values[size_t(preg)]; }
    const ValueState &
    value(PhysReg preg) const
    {
        return values[size_t(preg)];
    }

    /** Sentinel for "write not yet scheduled". */
    static constexpr Cycle neverReady = INT64_MAX / 4;

    const sim::SimConfig &cfg;
    stats::StatGroup &group;
    regcache::DegreeOfUsePredictor dou;
    std::vector<ValueState> values;
};

} // namespace ubrc::storage

#endif // UBRC_STORAGE_OPERAND_SUPPLIER_HH
