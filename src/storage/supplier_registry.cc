#include "storage/supplier_registry.hh"

#include <array>

#include "common/log.hh"
#include "storage/cached_supplier.hh"
#include "storage/monolithic_supplier.hh"
#include "storage/two_level_supplier.hh"

namespace ubrc::storage
{

namespace
{

template <typename SupplierT>
std::unique_ptr<OperandSupplier>
build(const sim::SimConfig &config, stats::StatGroup &stat_group)
{
    return std::make_unique<SupplierT>(config, stat_group);
}

constexpr size_t numSchemes = 3;

std::array<SupplierFactory, numSchemes> &
factories()
{
    static std::array<SupplierFactory, numSchemes> table = {
        build<MonolithicSupplier>, // RegScheme::Monolithic
        build<CachedSupplier>,     // RegScheme::Cached
        build<TwoLevelSupplier>,   // RegScheme::TwoLevel
    };
    return table;
}

} // namespace

void
registerSupplier(sim::RegScheme scheme, SupplierFactory factory)
{
    const size_t idx = static_cast<size_t>(scheme);
    if (idx >= numSchemes)
        panic("registerSupplier: unknown scheme %zu", idx);
    if (!factory)
        panic("registerSupplier: null factory for scheme '%s'",
              sim::toString(scheme));
    factories()[idx] = factory;
}

std::unique_ptr<OperandSupplier>
makeSupplier(const sim::SimConfig &config, stats::StatGroup &stat_group)
{
    const size_t idx = static_cast<size_t>(config.scheme);
    if (idx >= numSchemes)
        panic("makeSupplier: unknown scheme %zu", idx);
    return factories()[idx](config, stat_group);
}

} // namespace ubrc::storage
