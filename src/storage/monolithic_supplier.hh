/**
 * @file
 * Monolithic multi-cycle register file (the paper's baseline).
 *
 * All operands come from the bypass network or the file itself; the
 * only timing behaviour is the issue-restriction gap: an operand that
 * has fallen out of the bypass window is readable only once its write
 * into the file completes, rfLatency cycles after production.
 */

#ifndef UBRC_STORAGE_MONOLITHIC_SUPPLIER_HH
#define UBRC_STORAGE_MONOLITHIC_SUPPLIER_HH

#include "storage/operand_supplier.hh"

namespace ubrc::storage
{

/** Single multi-cycle register file, no cache. */
class MonolithicSupplier : public OperandSupplier
{
  public:
    MonolithicSupplier(const sim::SimConfig &config,
                       stats::StatGroup &stat_group);

    const char *name() const override { return "monolithic"; }

    Cycle issueReadGate(Cycle exec_start,
                        Cycle producer_done) const override;
    bool hasIssueReadGate() const override { return true; }
    WriteOutcome onValueProduced(PhysReg preg, Cycle now) override;
};

} // namespace ubrc::storage

#endif // UBRC_STORAGE_MONOLITHIC_SUPPLIER_HH
