/**
 * @file
 * Register cache + backing file (the paper's framework, Sections 2-4):
 * a small set-associative register cache with use-based management and
 * decoupled indexing in front of a full-size backing file, plus the
 * optional shadow fully-associative cache that classifies misses for
 * Figure 8.
 */

#ifndef UBRC_STORAGE_CACHED_SUPPLIER_HH
#define UBRC_STORAGE_CACHED_SUPPLIER_HH

#include <memory>

#include "regcache/index_allocator.hh"
#include "regcache/register_cache.hh"
#include "regfile/backing_file.hh"
#include "storage/operand_supplier.hh"

namespace ubrc::storage
{

/** Register cache backed by a full-size file. */
class CachedSupplier : public OperandSupplier
{
  public:
    CachedSupplier(const sim::SimConfig &config,
                   stats::StatGroup &stat_group);

    const char *name() const override { return "cached"; }

    /** Retirement releases the decoupled index reservation. */
    OptionalNotifications optionalNotifications() const override
    {
        return {.producerRetired = true};
    }

    DestAlloc allocateDest(PhysReg preg, Addr pc,
                           uint64_t ctrl) override;
    void onInitialValue(PhysReg preg) override;

    void onBypassRead(PhysReg src, bool first_stage) override;
    ReadResult readOperand(PhysReg src, Cycle now) override;
    Cycle onOperandMiss(PhysReg src, Cycle exec_start) override;
    bool onFill(PhysReg preg, Cycle now) override;

    WriteOutcome onValueProduced(PhysReg preg, Cycle now) override;
    void onInsertDecision(PhysReg preg, Cycle now) override;

    void onProducerRetired(PhysReg dest) override;
    void onValueFreed(PhysReg preg, Addr producer_pc,
                      uint64_t producer_ctrl, uint32_t actual_uses,
                      Cycle now) override;
    void onDestSquashed(PhysReg dest, Cycle now) override;

    void sampleCycleStats() override;

    std::vector<CacheEntryView> cachedEntries() const override;
    unsigned cacheSets() const override;
    unsigned cacheAssoc() const override;
    bool corruptUseCounter(PhysReg preg, unsigned set,
                           unsigned bit) override;

    SupplierStats stats() const override;

  private:
    regcache::RegisterCache rcache;
    std::unique_ptr<regcache::ShadowFullyAssocCache> shadow;
    regcache::IndexAllocator idxAlloc;
    regfile::BackingFile backing;

    struct
    {
        stats::Scalar *misses, *missNoWrite, *missConflict,
            *missCapacity;
        stats::Scalar *writesFiltered, *valuesNeverCached;
        stats::Mean *occupancy;
        // Registered by the cache/file components; cached here so
        // stats() needs no by-name lookups.
        stats::Scalar *inserts, *fills, *entriesNeverRead;
        stats::Scalar *backingReads, *backingWrites;
        stats::Mean *entryLifetime, *readsPerEntry;
    } st;
};

} // namespace ubrc::storage

#endif // UBRC_STORAGE_CACHED_SUPPLIER_HH
