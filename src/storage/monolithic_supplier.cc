#include "storage/monolithic_supplier.hh"

#include "sim/config.hh"

namespace ubrc::storage
{

MonolithicSupplier::MonolithicSupplier(const sim::SimConfig &config,
                                       stats::StatGroup &stat_group)
    : OperandSupplier(config, stat_group)
{
}

Cycle
MonolithicSupplier::issueReadGate(Cycle exec_start,
                                  Cycle producer_done) const
{
    // The operand must come from the file, and the read cannot begin
    // until the producer's write has finished (at the end of
    // producer_done + rfLatency): the issue-restriction gap of a
    // multi-cycle register file with a short bypass network.
    if (exec_start > producer_done + static_cast<Cycle>(cfg.bypassStages))
        return producer_done + cfg.rfLatency;
    return 0;
}

WriteOutcome
MonolithicSupplier::onValueProduced(PhysReg preg, Cycle now)
{
    value(preg).storageReadyAt = now + cfg.rfLatency;
    return {};
}

} // namespace ubrc::storage
