#include "storage/cached_supplier.hh"

#include <algorithm>

#include "sim/config.hh"

namespace ubrc::storage
{

CachedSupplier::CachedSupplier(const sim::SimConfig &config,
                               stats::StatGroup &stat_group)
    : OperandSupplier(config, stat_group),
      rcache(cfg.rc, stat_group),
      idxAlloc(cfg.rc.indexing, cfg.rc.numSets(), cfg.rc.assoc,
               cfg.rc.highUseThreshold),
      backing(cfg.backingLatency, stat_group)
{
    if (cfg.classifyMisses)
        shadow = std::make_unique<regcache::ShadowFullyAssocCache>(
            cfg.rc.entries, cfg.rc.replacement, cfg.rc.maxUse);

    st.misses = &stat_group.scalar("rc_operand_misses");
    st.missNoWrite = &stat_group.scalar("rc_miss_no_write");
    st.missConflict = &stat_group.scalar("rc_miss_conflict");
    st.missCapacity = &stat_group.scalar("rc_miss_capacity");
    st.writesFiltered = &stat_group.scalar("rc_writes_filtered");
    st.valuesNeverCached = &stat_group.scalar("values_never_cached");
    st.occupancy = &stat_group.mean("rc_occupancy");
    st.inserts = &stat_group.scalar("rc_inserts");
    st.fills = &stat_group.scalar("rc_fills");
    st.entriesNeverRead = &stat_group.scalar("rc_entries_never_read");
    st.backingReads = &stat_group.scalar("backing_reads");
    st.backingWrites = &stat_group.scalar("backing_writes");
    st.entryLifetime = &stat_group.mean("rc_entry_lifetime");
    st.readsPerEntry = &stat_group.mean("rc_reads_per_entry");
}

DestAlloc
CachedSupplier::allocateDest(PhysReg preg, Addr pc, uint64_t ctrl)
{
    DestAlloc out = OperandSupplier::allocateDest(preg, pc, ctrl);
    // Decoupled index assignment (Section 4.1).
    ValueState &vs = value(preg);
    vs.set = static_cast<uint16_t>(idxAlloc.assign(preg, vs.predUses));
    out.set = vs.set;
    return out;
}

void
CachedSupplier::onInitialValue(PhysReg preg)
{
    OperandSupplier::onInitialValue(preg);
    value(preg).set =
        static_cast<uint16_t>(idxAlloc.assign(preg, 0));
}

void
CachedSupplier::onBypassRead(PhysReg src, bool first_stage)
{
    OperandSupplier::onBypassRead(src, first_stage);
    // Keep the remaining-use counts in step for values consumed off
    // the bypass network (Section 3.3).
    ValueState &vs = value(src);
    if (vs.insertedNow) {
        if (auto e = rcache.lookup(src, vs.set))
            e.noteBypassUse();
    } else if (!vs.pinned && vs.remUses > 0) {
        --vs.remUses;
    }
    if (shadow)
        shadow->noteBypassUse(src);
}

ReadResult
CachedSupplier::readOperand(PhysReg src, Cycle now)
{
    ValueState &vs = value(src);
    auto e = rcache.lookup(src, vs.set);
    if (!e) {
        rcache.noteReadMiss();
        return ReadResult::CacheMiss;
    }
    e.read();
    if (shadow && !shadow->read(src))
        shadow->fill(src, now); // resync
    return ReadResult::CacheHit;
}

Cycle
CachedSupplier::onOperandMiss(PhysReg src, Cycle exec_start)
{
    ValueState &vs = value(src);
    ++*st.misses;

    // Classify (Figure 8): a miss on a value whose initial write was
    // filtered is a "no-write" miss; otherwise conflict if a
    // same-size fully-associative cache would have hit.
    if (!vs.everCached)
        ++*st.missNoWrite;
    else if (shadow && shadow->contains(src))
        ++*st.missConflict;
    else
        ++*st.missCapacity;
    if (shadow)
        shadow->read(src); // keep shadow LRU/uses in step

    // Schedule the backing-file read through the shared port. The
    // miss was detected in the register-read stage (one cycle before
    // exec_start), so the read can begin at exec_start: for a 2-cycle
    // backing file the value re-bypasses to the missing instruction 2
    // cycles after its nominal execute, matching Figure 3 (I4b: issue
    // 4, miss 5, read 6-7, exec 8).
    const Cycle data_ready =
        backing.scheduleRead(exec_start, vs.storageReadyAt);
    vs.fillInFlight = true;
    return data_ready;
}

bool
CachedSupplier::onFill(PhysReg preg, Cycle now)
{
    ValueState &vs = value(preg);
    if (!vs.fillInFlight)
        return false;
    vs.fillInFlight = false;
    if (rcache.fill(preg, vs.set, now)) {
        vs.everCached = true;
        vs.insertedNow = true;
        if (shadow)
            shadow->fill(preg, now);
    }
    return true;
}

WriteOutcome
CachedSupplier::onValueProduced(PhysReg preg, Cycle now)
{
    value(preg).storageReadyAt = backing.noteWrite(now);
    // The cache write (and the insertion decision, which must observe
    // the first-stage bypass readers of the write cycle) happens next
    // cycle, after that cycle's executes.
    WriteOutcome out;
    out.insertDecisionNextCycle = true;
    return out;
}

void
CachedSupplier::onInsertDecision(PhysReg preg, Cycle now)
{
    ValueState &vs = value(preg);
    const bool insert = regcache::shouldInsert(
        cfg.rc.insertion, vs.pinned, vs.predUses, vs.stage1Bypasses);
    if (!insert) {
        ++*st.writesFiltered;
        return;
    }
    const unsigned count =
        vs.pinned ? cfg.rc.maxUse
                  : static_cast<unsigned>(
                        std::max<int32_t>(vs.remUses, 0));
    rcache.insert(preg, vs.set, count, vs.pinned, now);
    if (shadow)
        shadow->insert(preg, count, vs.pinned, now);
    vs.everCached = true;
    vs.insertedNow = true;
}

void
CachedSupplier::onProducerRetired(PhysReg dest)
{
    const ValueState &vs = value(dest);
    idxAlloc.release(vs.set, vs.predUses);
}

void
CachedSupplier::onValueFreed(PhysReg preg, Addr producer_pc,
                             uint64_t producer_ctrl,
                             uint32_t actual_uses, Cycle now)
{
    ValueState &vs = value(preg);
    if (auto e = rcache.lookup(preg, vs.set))
        e.invalidate(now);
    if (shadow)
        shadow->invalidate(preg);
    OperandSupplier::onValueFreed(preg, producer_pc, producer_ctrl,
                                  actual_uses, now);
    // Figure 10: committed values that never entered the cache. This
    // is judged at free time, when any pending cache-write decision
    // has long resolved.
    if (producer_pc != 0 && !vs.everCached)
        ++*st.valuesNeverCached;
}

void
CachedSupplier::onDestSquashed(PhysReg dest, Cycle now)
{
    ValueState &vs = value(dest);
    idxAlloc.release(vs.set, vs.predUses);
    if (auto e = rcache.lookup(dest, vs.set))
        e.invalidate(now);
    if (shadow)
        shadow->invalidate(dest);
    vs.fillInFlight = false;
}

void
CachedSupplier::sampleCycleStats()
{
    st.occupancy->sample(rcache.validCount());
}

std::vector<CacheEntryView>
CachedSupplier::cachedEntries() const
{
    return rcache.validEntries();
}

unsigned
CachedSupplier::cacheSets() const
{
    return rcache.numSets();
}

unsigned
CachedSupplier::cacheAssoc() const
{
    return cfg.rc.assoc;
}

bool
CachedSupplier::corruptUseCounter(PhysReg preg, unsigned set,
                                  unsigned bit)
{
    auto e = rcache.lookup(preg, set);
    if (!e)
        return false;
    e.corruptUseCounter(bit);
    return true;
}

SupplierStats
CachedSupplier::stats() const
{
    SupplierStats s = OperandSupplier::stats();
    s.hasCache = true;
    s.misses = st.misses->value();
    s.missNoWrite = st.missNoWrite->value();
    s.missConflict = st.missConflict->value();
    s.missCapacity = st.missCapacity->value();
    s.inserts = st.inserts->value();
    s.fills = st.fills->value();
    s.writesFiltered = st.writesFiltered->value();
    s.valuesNeverCached = st.valuesNeverCached->value();
    s.entriesNeverRead = st.entriesNeverRead->value();
    s.fileReads = st.backingReads->value();
    s.fileWrites = st.backingWrites->value();
    s.avgOccupancy = st.occupancy->value();
    s.avgEntryLifetime = st.entryLifetime->value();
    s.readsPerCachedValue = st.readsPerEntry->value();
    s.zeroUseVictimFraction = rcache.zeroUseVictimFraction();
    return s;
}

} // namespace ubrc::storage
