/**
 * @file
 * Two-level (L1/L2) register file after Balasubramonian et al.,
 * wrapped behind the OperandSupplier contract: rename stalls when the
 * L1 is full, values migrate to L2 once dead-looking, and squash
 * recovery copies displaced mappings back before they are readable.
 */

#ifndef UBRC_STORAGE_TWO_LEVEL_SUPPLIER_HH
#define UBRC_STORAGE_TWO_LEVEL_SUPPLIER_HH

#include "regfile/two_level.hh"
#include "storage/operand_supplier.hh"

namespace ubrc::storage
{

/** Two-level register file (no register cache). */
class TwoLevelSupplier : public OperandSupplier
{
  public:
    TwoLevelSupplier(const sim::SimConfig &config,
                     stats::StatGroup &stat_group);

    const char *name() const override { return "two-level"; }

    /** Overwrite tracking and last-use eviction both need these. */
    OptionalNotifications optionalNotifications() const override
    {
        return {.consumerDone = true, .archReassign = true};
    }

    bool canAllocateDest() const override { return file.canAllocate(); }
    void onConsumerRenamed(PhysReg src, uint32_t actual_uses,
                           Addr producer_pc,
                           uint64_t producer_ctrl) override;
    DestAlloc allocateDest(PhysReg preg, Addr pc,
                           uint64_t ctrl) override;
    void onInitialValue(PhysReg preg) override;
    void onArchReassigned(PhysReg prev) override;
    void onArchReassignCancelled(PhysReg prev) override;

    void onConsumerDone(PhysReg src) override;

    WriteOutcome onValueProduced(PhysReg preg, Cycle now) override;

    void onValueFreed(PhysReg preg, Addr producer_pc,
                      uint64_t producer_ctrl, uint32_t actual_uses,
                      Cycle now) override;
    void onDestSquashed(PhysReg dest, Cycle now) override;

    bool needsRecovery() const override { return true; }
    RecoveryResult recoverMappings(const std::vector<PhysReg> &mapped,
                                   Cycle now) override;

    void tick(Cycle now) override;

  private:
    regfile::TwoLevelFile file;
};

} // namespace ubrc::storage

#endif // UBRC_STORAGE_TWO_LEVEL_SUPPLIER_HH
