#include "storage/operand_supplier.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/config.hh"

namespace ubrc::storage
{

OperandSupplier::OperandSupplier(const sim::SimConfig &config,
                                 stats::StatGroup &stat_group)
    : cfg(config),
      group(stat_group),
      dou(cfg.dou, stat_group),
      values(cfg.numPhysRegs)
{
}

OperandSupplier::~OperandSupplier() = default;

void
OperandSupplier::onConsumerRenamed(PhysReg src, uint32_t actual_uses,
                                   Addr producer_pc,
                                   uint64_t producer_ctrl)
{
    (void)src;
    // Early training: once the observed use count saturates the
    // predictor's range, the eventual (free-time) training value is
    // already known -- deliver it now so long-lived, heavily read
    // values get predicted (and pinned) without waiting for the
    // register to die.
    if (actual_uses == cfg.dou.maxPrediction() && producer_pc != 0)
        dou.train(producer_pc, producer_ctrl, actual_uses);
}

DestAlloc
OperandSupplier::allocateDest(PhysReg preg, Addr pc, uint64_t ctrl)
{
    // Degree-of-use prediction (Section 3.3).
    unsigned pred = cfg.rc.unknownDefault;
    if (auto d = dou.predict(pc, ctrl))
        pred = *d;

    ValueState &vs = value(preg);
    vs = ValueState{};
    vs.storageReadyAt = neverReady;
    vs.predUses = static_cast<uint8_t>(pred);
    vs.pinned = pred >= cfg.rc.maxUse;
    vs.remUses =
        static_cast<int32_t>(std::min<unsigned>(pred, cfg.rc.maxUse));

    DestAlloc out;
    out.predUses = vs.predUses;
    out.pinned = vs.pinned;
    out.set = vs.set;
    return out;
}

void
OperandSupplier::onInitialValue(PhysReg preg)
{
    ValueState &vs = value(preg);
    vs = ValueState{};
    // Initial architectural values have been "in the file" forever.
    vs.storageReadyAt = -1000000;
}

void
OperandSupplier::onBypassRead(PhysReg src, bool first_stage)
{
    // First-stage bypass readers are visible to the producer's
    // cache-write (insertion) decision, which happens later in the
    // same cycle (Section 3.1).
    if (first_stage)
        ++value(src).stage1Bypasses;
}

Cycle
OperandSupplier::onOperandMiss(PhysReg src, Cycle exec_start)
{
    (void)exec_start;
    panic("operand miss on cache-less supplier '%s' (preg %d)", name(),
          int(src));
}

void
OperandSupplier::onValueFreed(PhysReg preg, Addr producer_pc,
                              uint64_t producer_ctrl,
                              uint32_t actual_uses, Cycle now)
{
    (void)now;
    // Train the degree-of-use predictor with the committed consumer
    // count (wrong-path consumers were deducted at squash).
    if (producer_pc != 0)
        dou.train(producer_pc, producer_ctrl, actual_uses);
    value(preg).fillInFlight = false;
}

std::optional<std::pair<size_t, unsigned>>
OperandSupplier::corruptDouCounter(uint64_t raw_site, unsigned raw_bit)
{
    const size_t index = raw_site % dou.entryCount();
    const unsigned bit = raw_bit % cfg.dou.predBits;
    if (!dou.corruptPrediction(index, bit))
        return std::nullopt;
    return std::make_pair(index, bit);
}

SupplierStats
OperandSupplier::stats() const
{
    SupplierStats s;
    s.douAccuracy = dou.accuracy();
    return s;
}

} // namespace ubrc::storage
