/**
 * @file
 * Scheme-to-supplier registry. The core asks for "the supplier this
 * configuration selects" and never names a concrete storage class;
 * new organizations plug in by registering a factory for a scheme.
 */

#ifndef UBRC_STORAGE_SUPPLIER_REGISTRY_HH
#define UBRC_STORAGE_SUPPLIER_REGISTRY_HH

#include <memory>

#include "sim/config.hh"
#include "storage/operand_supplier.hh"

namespace ubrc::storage
{

/** Builds a supplier for a validated configuration. */
using SupplierFactory = std::unique_ptr<OperandSupplier> (*)(
    const sim::SimConfig &, stats::StatGroup &);

/**
 * Bind (or rebind) the factory for a scheme. Intended for experiments
 * that prototype a new storage organization without touching the
 * core; the three built-in schemes are pre-registered.
 */
void registerSupplier(sim::RegScheme scheme, SupplierFactory factory);

/**
 * Build the supplier selected by config.scheme. The returned supplier
 * holds a reference to `config`, which must outlive it (the Processor
 * owns both).
 */
std::unique_ptr<OperandSupplier>
makeSupplier(const sim::SimConfig &config, stats::StatGroup &stat_group);

} // namespace ubrc::storage

#endif // UBRC_STORAGE_SUPPLIER_REGISTRY_HH
