#include "storage/two_level_supplier.hh"

#include "sim/config.hh"

namespace ubrc::storage
{

TwoLevelSupplier::TwoLevelSupplier(const sim::SimConfig &config,
                                   stats::StatGroup &stat_group)
    : OperandSupplier(config, stat_group),
      file(cfg.twoLevel, cfg.numPhysRegs, stat_group)
{
}

void
TwoLevelSupplier::onConsumerRenamed(PhysReg src, uint32_t actual_uses,
                                    Addr producer_pc,
                                    uint64_t producer_ctrl)
{
    OperandSupplier::onConsumerRenamed(src, actual_uses, producer_pc,
                                       producer_ctrl);
    file.onConsumerRenamed(src);
}

DestAlloc
TwoLevelSupplier::allocateDest(PhysReg preg, Addr pc, uint64_t ctrl)
{
    DestAlloc out = OperandSupplier::allocateDest(preg, pc, ctrl);
    file.allocate(preg);
    return out;
}

void
TwoLevelSupplier::onInitialValue(PhysReg preg)
{
    OperandSupplier::onInitialValue(preg);
    file.allocate(preg);
    file.onWrite(preg);
}

void
TwoLevelSupplier::onArchReassigned(PhysReg prev)
{
    file.onArchReassigned(prev);
}

void
TwoLevelSupplier::onArchReassignCancelled(PhysReg prev)
{
    file.onArchReassignCancelled(prev);
}

void
TwoLevelSupplier::onConsumerDone(PhysReg src)
{
    file.onConsumerDone(src);
}

WriteOutcome
TwoLevelSupplier::onValueProduced(PhysReg preg, Cycle now)
{
    file.onWrite(preg);
    value(preg).storageReadyAt = now;
    return {};
}

void
TwoLevelSupplier::onValueFreed(PhysReg preg, Addr producer_pc,
                               uint64_t producer_ctrl,
                               uint32_t actual_uses, Cycle now)
{
    file.onFree(preg);
    OperandSupplier::onValueFreed(preg, producer_pc, producer_ctrl,
                                  actual_uses, now);
}

void
TwoLevelSupplier::onDestSquashed(PhysReg dest, Cycle now)
{
    (void)now;
    file.onSquash(dest);
}

RecoveryResult
TwoLevelSupplier::recoverMappings(const std::vector<PhysReg> &mapped,
                                  Cycle now)
{
    // Restored mappings whose values migrated to L2 must be copied
    // back before they are readable again (Section 5.5). Collect the
    // displaced set before recover() re-establishes L1 residency.
    RecoveryResult out;
    for (PhysReg p : mapped)
        if (file.isAllocated(p) && !file.inL1(p))
            out.displaced.push_back(p);
    out.doneAt = file.recover(mapped, now);
    return out;
}

void
TwoLevelSupplier::tick(Cycle now)
{
    file.tick(now);
}

} // namespace ubrc::storage
