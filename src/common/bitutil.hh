/**
 * @file
 * Small bit-manipulation helpers used by caches and predictors.
 */

#ifndef UBRC_COMMON_BITUTIL_HH
#define UBRC_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

namespace ubrc
{

/** True iff v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for v > 0. */
constexpr unsigned
floorLog2(uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)) for v > 0. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Extract bits [lo, hi] (inclusive) of v. */
constexpr uint64_t
bits(uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo == 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1));
}

/** A quick 64-bit integer hash (Stafford mix13 finalizer). */
constexpr uint64_t
mixHash(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace ubrc

#endif // UBRC_COMMON_BITUTIL_HH
