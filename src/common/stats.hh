/**
 * @file
 * Lightweight statistics package.
 *
 * Subsystems declare named statistics (scalars, means, distributions)
 * inside a StatGroup. Groups can be dumped as text and queried
 * programmatically by the benchmark harnesses.
 */

#ifndef UBRC_COMMON_STATS_HH
#define UBRC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ubrc::stats
{

/** A monotonically increasing event count. */
class Scalar
{
  public:
    Scalar &operator++() { ++count; return *this; }
    Scalar &operator+=(uint64_t n) { count += n; return *this; }
    void reset() { count = 0; }
    uint64_t value() const { return count; }

  private:
    uint64_t count = 0;
};

/** Running arithmetic mean over sampled values. */
class Mean
{
  public:
    void
    sample(double v, uint64_t weight = 1)
    {
        total += v * static_cast<double>(weight);
        samples += weight;
    }

    void reset() { total = 0; samples = 0; }
    uint64_t count() const { return samples; }
    double sum() const { return total; }

    double
    value() const
    {
        return samples ? total / static_cast<double>(samples) : 0.0;
    }

  private:
    double total = 0;
    uint64_t samples = 0;
};

/**
 * A bucketed distribution over non-negative integers with exact
 * percentile queries. Values at or beyond the maximum are clamped into
 * the final bucket.
 */
class Distribution
{
  public:
    /** @param max_value Largest distinct value tracked exactly. */
    explicit Distribution(size_t max_value = 1024)
        : buckets(max_value + 1, 0)
    {}

    void
    sample(uint64_t v, uint64_t weight = 1)
    {
        const size_t idx = v < buckets.size() ? v : buckets.size() - 1;
        buckets[idx] += weight;
        total += weight;
        weightedSum += v * weight;
    }

    void reset();

    uint64_t count() const { return total; }
    double mean() const;

    /** Smallest value v such that at least frac of samples are <= v. */
    uint64_t percentile(double frac) const;
    uint64_t median() const { return percentile(0.5); }

    /** Cumulative fraction of samples <= v. */
    double cdfAt(uint64_t v) const;

    const std::vector<uint64_t> &raw() const { return buckets; }

  private:
    std::vector<uint64_t> buckets;
    uint64_t total = 0;
    uint64_t weightedSum = 0;
};

/**
 * Typed visitation over the statistics of a group. Visitors see every
 * statistic in the group's canonical order: all scalars, then all
 * means, then all distributions, each set in name order — the same
 * order dump() has always used, so text renderers built on a visitor
 * are byte-compatible with the legacy dump format.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void visitScalar(const std::string &name,
                             const Scalar &s) = 0;
    virtual void visitMean(const std::string &name, const Mean &m) = 0;
    virtual void visitDistribution(const std::string &name,
                                   const Distribution &d) = 0;
};

/**
 * A named collection of statistics with typed visitation and text /
 * JSON rendering. Statistics register themselves by name; names must
 * be unique within a group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name)
        : name(std::move(group_name))
    {}

    Scalar &scalar(const std::string &stat_name);
    Mean &mean(const std::string &stat_name);
    Distribution &distribution(const std::string &stat_name,
                               size_t max_value = 1024);

    /** Visit every statistic in canonical order (see StatVisitor). */
    void visit(StatVisitor &v) const;

    /** Render all statistics as "group.stat  value" lines. */
    std::string dump() const;

    /**
     * Serialize the group as a JSON object: {"group": name,
     * "scalars": {...}, "means": {...}, "distributions": {...}} with
     * each distribution carrying count/mean/p50/p90 and its non-empty
     * buckets as [value, weight] pairs.
     *
     * @param pretty Indented multi-line output (the default); pass
     *               false for a single-line rendering suitable for
     *               splicing into line-framed documents.
     */
    std::string toJson(bool pretty = true) const;

    void resetAll();

    const std::string &groupName() const { return name; }

  private:
    std::string name;
    std::map<std::string, Scalar> scalars;
    std::map<std::string, Mean> means;
    std::map<std::string, Distribution> distributions;
};

} // namespace ubrc::stats

#endif // UBRC_COMMON_STATS_HH
