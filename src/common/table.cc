#include "common/table.hh"

#include <algorithm>
#include <cstdio>

namespace ubrc
{

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lu", static_cast<unsigned long>(v));
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < headers.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            line += cell;
            if (c + 1 < headers.size())
                line += std::string(widths[c] - cell.size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = emit_row(headers);
    size_t rule_len = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(rule_len, '-') + "\n";
    for (const auto &row : rows)
        out += emit_row(row);
    return out;
}

} // namespace ubrc
