/**
 * @file
 * Clang thread-safety annotations and an annotated mutex.
 *
 * The parallel suite runner guarantees bit-identical merges, which
 * makes every shared mutable word in the worker pool a correctness
 * hazard, not just a perf concern. These macros let the code state
 * its locking discipline (`UBRC_GUARDED_BY(mu)`, `UBRC_REQUIRES(mu)`)
 * so clang's `-Wthread-safety` analysis proves it at compile time;
 * under gcc they expand to nothing and cost nothing.
 *
 * libstdc++'s std::mutex carries no capability attribute, so the
 * analysis cannot see through it. ubrc::Mutex / ubrc::LockGuard are
 * zero-overhead annotated wrappers; use them for any lock that guards
 * annotated state.
 */

#ifndef UBRC_COMMON_THREAD_ANNOTATIONS_HH
#define UBRC_COMMON_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define UBRC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef UBRC_THREAD_ANNOTATION
#define UBRC_THREAD_ANNOTATION(x)
#endif

/** Type is a lockable capability (mutexes). */
#define UBRC_CAPABILITY(x) UBRC_THREAD_ANNOTATION(capability(x))

/** RAII type that acquires in its ctor and releases in its dtor. */
#define UBRC_SCOPED_CAPABILITY UBRC_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be read/written while holding the given lock. */
#define UBRC_GUARDED_BY(x) UBRC_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding the given lock. */
#define UBRC_PT_GUARDED_BY(x) UBRC_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability and does not release it. */
#define UBRC_ACQUIRE(...) \
    UBRC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define UBRC_RELEASE(...) \
    UBRC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function conditionally acquires (returns `ret` on success). */
#define UBRC_TRY_ACQUIRE(ret, ...) \
    UBRC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Caller must hold the capability when calling. */
#define UBRC_REQUIRES(...) \
    UBRC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (the callee locks itself). */
#define UBRC_EXCLUDES(...) \
    UBRC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Escape hatch for code the analysis cannot follow. */
#define UBRC_NO_THREAD_SAFETY_ANALYSIS \
    UBRC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ubrc
{

/** std::mutex with a capability attribute the analysis can track. */
class UBRC_CAPABILITY("mutex") Mutex
{
  public:
    void lock() UBRC_ACQUIRE() { mu.lock(); }
    void unlock() UBRC_RELEASE() { mu.unlock(); }
    bool try_lock() UBRC_TRY_ACQUIRE(true) { return mu.try_lock(); }

  private:
    std::mutex mu;
};

/**
 * Condition variable usable with ubrc::Mutex.
 *
 * std::condition_variable only accepts std::unique_lock<std::mutex>,
 * which the analysis cannot see through; condition_variable_any works
 * with any BasicLockable, so it composes with the annotated Mutex.
 * The wait methods are annotated UBRC_REQUIRES(m): callers must hold
 * the mutex, and the transient unlock/relock happens inside system
 * headers where the analysis is suppressed. Keep predicates reading
 * atomics (or state guarded by `m`) so lambda bodies stay clean under
 * -Wthread-safety.
 */
class CondVar
{
  public:
    template <typename Pred>
    void
    wait(Mutex &m, Pred pred) UBRC_REQUIRES(m)
    {
        cv.wait(m, std::move(pred));
    }

    /** Returns true if the predicate held on wakeup (not timeout). */
    template <typename Rep, typename Period, typename Pred>
    bool
    waitFor(Mutex &m, const std::chrono::duration<Rep, Period> &dur,
            Pred pred) UBRC_REQUIRES(m)
    {
        return cv.wait_for(m, dur, std::move(pred));
    }

    void notifyOne() { cv.notify_one(); }
    void notifyAll() { cv.notify_all(); }

  private:
    std::condition_variable_any cv;
};

/** std::lock_guard over ubrc::Mutex, visible to the analysis. */
class UBRC_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) UBRC_ACQUIRE(m) : mu(m) { mu.lock(); }
    ~LockGuard() UBRC_RELEASE() { mu.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu;
};

} // namespace ubrc

#endif // UBRC_COMMON_THREAD_ANNOTATIONS_HH
