/**
 * @file
 * Minimal logging and error-exit helpers, after the gem5 conventions:
 * panic() for internal invariant violations, fatal() for user/config
 * errors, warn()/inform() for status messages.
 */

#ifndef UBRC_COMMON_LOG_HH
#define UBRC_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ubrc
{

/** Verbosity for inform(); 0 silences everything but warnings. */
extern int logVerbosity;

namespace detail
{
[[noreturn]] void exitWithMessage(const char *kind, const std::string &msg,
                                  bool abort_process);
void emit(const char *kind, const std::string &msg);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * should never happen regardless of configuration or input.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::exitWithMessage("panic",
                            detail::formatString(fmt, args...), true);
}

/**
 * Report an unrecoverable user error (bad configuration, bad input) and
 * exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::exitWithMessage("fatal",
                            detail::formatString(fmt, args...), false);
}

/** Report a suspicious but non-fatal condition. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::emit("warn", detail::formatString(fmt, args...));
}

/** Report normal operating status (suppressed when verbosity is 0). */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if (logVerbosity > 0)
        detail::emit("info", detail::formatString(fmt, args...));
}

} // namespace ubrc

#endif // UBRC_COMMON_LOG_HH
