#include "common/trace_io.hh"

#include <array>
#include <cstring>
#include <fstream>

namespace ubrc::traceio
{

namespace
{

// Slice-by-8 tables: table[0] is the classic bytewise IEEE table,
// tables 1..7 extend it so eight input bytes fold per iteration.
// Identical polynomial and output to the bytewise algorithm.
const std::array<std::array<uint32_t, 256>, 8> &
crcTables()
{
    static const std::array<std::array<uint32_t, 256>, 8> tables =
        [] {
            std::array<std::array<uint32_t, 256>, 8> t{};
            for (uint32_t i = 0; i < 256; ++i) {
                uint32_t c = i;
                for (int k = 0; k < 8; ++k)
                    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
                t[0][i] = c;
            }
            for (uint32_t i = 0; i < 256; ++i)
                for (unsigned s = 1; s < 8; ++s)
                    t[s][i] =
                        t[0][t[s - 1][i] & 0xff] ^ (t[s - 1][i] >> 8);
            return t;
        }();
    return tables;
}

void
put32(std::string &out, uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t
get32(std::string_view in, size_t pos)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(in[pos])) |
           static_cast<uint32_t>(static_cast<uint8_t>(in[pos + 1]))
               << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(in[pos + 2]))
               << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(in[pos + 3]))
               << 24;
}

[[noreturn]] void
bad(const std::string &what)
{
    throw FormatError("trace container: " + what);
}

} // namespace

uint32_t
crc32(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    const auto &t = crcTables();
    uint32_t c = 0xffffffffu;
    while (len >= 8) {
        uint32_t lo;
        uint32_t hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        c ^= lo;
        c = t[7][c & 0xff] ^ t[6][(c >> 8) & 0xff] ^
            t[5][(c >> 16) & 0xff] ^ t[4][c >> 24] ^
            t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
            t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
        p += 8;
        len -= 8;
    }
    while (len--)
        c = t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
putZigzag(std::string &out, int64_t v)
{
    putVarint(out, (static_cast<uint64_t>(v) << 1) ^
                       static_cast<uint64_t>(v >> 63));
}

uint8_t
ByteReader::byte()
{
    if (pos >= in.size())
        bad("unexpected end of payload at offset " +
            std::to_string(pos));
    return static_cast<uint8_t>(in[pos++]);
}

uint64_t
ByteReader::varint()
{
    uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
        if (shift >= 64)
            bad("varint wider than 64 bits at offset " +
                std::to_string(pos));
        const uint8_t b = byte();
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
}

int64_t
ByteReader::zigzag()
{
    const uint64_t u = varint();
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string_view
ByteReader::bytes(size_t len)
{
    if (len > in.size() - pos)
        bad("unexpected end of payload at offset " +
            std::to_string(pos));
    const std::string_view v = in.substr(pos, len);
    pos += len;
    return v;
}

TraceWriter::TraceWriter(uint32_t version)
{
    out.append(traceMagic, sizeof(traceMagic));
    put32(out, version);
}

void
TraceWriter::section(uint8_t id, std::string_view payload)
{
    out.push_back(static_cast<char>(id));
    putVarint(out, payload.size());
    out.append(payload.data(), payload.size());
    put32(out, crc32(payload.data(), payload.size()));
}

std::string
TraceWriter::bytes() const
{
    std::string file = out;
    file.push_back(static_cast<char>(sectionEnd));
    putVarint(file, 0);
    put32(file, crc32(nullptr, 0));
    return file;
}

bool
TraceWriter::writeFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    const std::string file = bytes();
    f.write(file.data(), static_cast<std::streamsize>(file.size()));
    f.close();
    return static_cast<bool>(f);
}

std::string
TraceContainer::payload(uint8_t id) const
{
    std::string out;
    for (const auto &s : sections)
        if (s.id == id)
            out += s.payload;
    return out;
}

bool
TraceContainer::has(uint8_t id) const
{
    for (const auto &s : sections)
        if (s.id == id)
            return true;
    return false;
}

TraceContainer
parseTrace(std::string_view data)
{
    if (data.size() < sizeof(traceMagic) + 4)
        bad("file shorter than the magic + version header (" +
            std::to_string(data.size()) + " bytes)");
    if (std::memcmp(data.data(), traceMagic, sizeof(traceMagic)) != 0)
        bad("bad magic (not a UBRC trace file)");

    TraceContainer c;
    c.version = get32(data, sizeof(traceMagic));

    ByteReader r(data.substr(sizeof(traceMagic) + 4));
    bool terminated = false;
    while (!r.atEnd()) {
        const uint8_t id = r.byte();
        const uint64_t len = r.varint();
        if (len > r.remaining())
            bad("section id " + std::to_string(id) + " truncated: " +
                std::to_string(len) + " payload bytes declared, " +
                std::to_string(r.remaining()) + " available");
        std::string payload(r.bytes(len));
        if (r.remaining() < 4)
            bad("section id " + std::to_string(id) +
                " truncated before its CRC");
        uint32_t stored = 0;
        for (unsigned i = 0; i < 4; ++i)
            stored |= static_cast<uint32_t>(r.byte()) << (8 * i);
        const uint32_t computed =
            crc32(payload.data(), payload.size());
        if (stored != computed)
            bad("section id " + std::to_string(id) +
                " CRC mismatch (stored " + std::to_string(stored) +
                ", computed " + std::to_string(computed) + ")");
        if (id == sectionEnd) {
            if (!payload.empty())
                bad("END section must be empty");
            terminated = true;
            break;
        }
        c.sections.push_back({id, std::move(payload)});
    }
    if (!terminated)
        bad("missing END section (file truncated)");
    if (!r.atEnd())
        bad(std::to_string(r.remaining()) +
            " trailing byte(s) after the END section");
    return c;
}

TraceContainer
readTraceFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        bad("cannot open '" + path + "' for reading");
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    if (size < 0)
        bad("cannot determine size of '" + path + "'");
    f.seekg(0, std::ios::beg);
    std::string data(static_cast<size_t>(size), '\0');
    f.read(data.data(), size);
    if (f.gcount() != size || f.bad())
        bad("read error on '" + path + "'");
    return parseTrace(data);
}

} // namespace ubrc::traceio
