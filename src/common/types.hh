/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 */

#ifndef UBRC_COMMON_TYPES_HH
#define UBRC_COMMON_TYPES_HH

#include <cstdint>

namespace ubrc
{

/** Simulated clock cycle. Signed so "not yet" sentinels can be negative. */
using Cycle = int64_t;

/** Global dynamic instruction sequence number (1-based; 0 = invalid). */
using InstSeqNum = uint64_t;

/** Simulated virtual address. */
using Addr = uint64_t;

/** Architectural register index (0..numArchRegs-1). */
using ArchReg = int16_t;

/** Physical register index (0..numPhysRegs-1). */
using PhysReg = int16_t;

/** Sentinel for "no register". */
constexpr PhysReg invalidPhysReg = -1;
constexpr ArchReg invalidArchReg = -1;

} // namespace ubrc

#endif // UBRC_COMMON_TYPES_HH
