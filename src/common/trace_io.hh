/**
 * @file
 * Low-level binary trace container: a versioned, sectioned, CRC32-
 * protected byte format shared by the trace recorder and the replay
 * driver (src/trace).
 *
 * File layout (all multi-byte integers little-endian):
 *
 *   bytes 0..7   magic "UBRCTRC\0"
 *   bytes 8..11  u32 container version (trace_version)
 *   sections     [u8 id][varint payload_len][payload][u32 crc32]
 *   terminator   the END section (id 0x7F, empty payload)
 *
 * Payload encoding is the producer's business (src/trace encodes the
 * event stream with delta/zigzag varints); this layer only frames,
 * checksums, and detects truncation. Errors raise
 * traceio::FormatError — this library sits below src/sim and cannot
 * depend on the SimError hierarchy; src/trace converts.
 */

#ifndef UBRC_COMMON_TRACE_IO_HH
#define UBRC_COMMON_TRACE_IO_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ubrc::traceio
{

/** A structurally invalid trace: bad magic, CRC mismatch, truncated
 *  section, malformed varint, or an unreadable file. */
class FormatError : public std::runtime_error
{
  public:
    explicit FormatError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** 8-byte file magic ("UBRCTRC" + NUL). */
inline constexpr char traceMagic[8] = {'U', 'B', 'R', 'C',
                                       'T', 'R', 'C', '\0'};

// Section identifiers.
inline constexpr uint8_t sectionMeta = 0x01;   ///< JSON metadata text
inline constexpr uint8_t sectionEvents = 0x02; ///< event-stream chunk
inline constexpr uint8_t sectionEnd = 0x7F;    ///< empty terminator

/** CRC32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range. */
uint32_t crc32(const void *data, size_t len);

/** Append an LEB128-style varint (7 bits per byte, LSB first). */
void putVarint(std::string &out, uint64_t v);

/** Append a zigzag-coded signed varint. */
void putZigzag(std::string &out, int64_t v);

/**
 * Bounds-checked cursor over an in-memory payload. Every read throws
 * FormatError on overrun or on a varint wider than 64 bits, so a
 * corrupt payload can never walk off the buffer.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : in(data) {}

    uint8_t byte();
    uint64_t varint();
    int64_t zigzag();

    /** Consume `len` bytes in one bounds check (no per-byte loop). */
    std::string_view bytes(size_t len);

    size_t remaining() const { return in.size() - pos; }
    bool atEnd() const { return pos == in.size(); }
    size_t offset() const { return pos; }

  private:
    std::string_view in;
    size_t pos = 0;
};

/**
 * Streaming writer: append sections, then write the complete file
 * (magic + version + sections + END terminator) in one pass.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(uint32_t version);

    /** Append one section (payload is framed and CRC-protected). */
    void section(uint8_t id, std::string_view payload);

    /** The complete file image, END terminator included. */
    std::string bytes() const;

    /** Write bytes() to `path`. Returns false on any I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    std::string out;
};

/** One decoded section. */
struct TraceSection
{
    uint8_t id = 0;
    std::string payload;
};

/** A fully parsed and CRC-verified trace container. */
struct TraceContainer
{
    uint32_t version = 0;
    std::vector<TraceSection> sections;

    /** Concatenated payloads of every section with `id`, in file
     *  order (large event streams are chunked). */
    std::string payload(uint8_t id) const;

    /** True if at least one section with `id` is present. */
    bool has(uint8_t id) const;
};

/**
 * Parse a trace container from memory. Verifies the magic, every
 * section CRC, and the END terminator (a missing terminator or bytes
 * after it mean truncation or corruption). Throws FormatError.
 */
TraceContainer parseTrace(std::string_view data);

/** Read and parseTrace() a file. Throws FormatError (unreadable file
 *  included). */
TraceContainer readTraceFile(const std::string &path);

} // namespace ubrc::traceio

#endif // UBRC_COMMON_TRACE_IO_HH
