/**
 * @file
 * Line-delimited framing for the sweep-service wire protocol.
 *
 * One frame is one '\n'-terminated line holding one JSON document
 * (NDJSON). The reader is defensive by design — it is the first
 * thing untrusted input hits in ubrcsim-server:
 *
 *  - frames longer than the configured limit are consumed and
 *    reported as FrameTooLong instead of growing memory without
 *    bound; the stream stays usable at the next line,
 *  - EINTR surfaces as Interrupted so a serving loop can observe a
 *    shutdown flag raised by a signal handler and resume (or drain)
 *    deliberately,
 *  - a trailing unterminated line at EOF is still delivered.
 *
 * The writer serializes whole lines under a mutex so responses from
 * concurrent worker threads never interleave mid-frame. Documents
 * must be compact (json::Writer(false)): embedded newlines in string
 * values are escaped by the JSON layer, so '\n' only ever appears as
 * a frame terminator.
 */

#ifndef UBRC_COMMON_FRAMING_HH
#define UBRC_COMMON_FRAMING_HH

#include <cstddef>
#include <string>
#include <string_view>

#include "common/thread_annotations.hh"

namespace ubrc::framing
{

/** Default per-frame size limit (1 MiB). */
inline constexpr size_t defaultMaxFrameBytes = 1u << 20;

/** Result of LineReader::readLine(). */
enum class ReadStatus
{
    Ok,           ///< a complete frame was delivered
    Eof,          ///< end of stream, no more frames
    FrameTooLong, ///< frame over the limit; consumed, stream resynced
    Interrupted,  ///< read() hit EINTR; caller should check its stop
                  ///< flag and call again
    IoError,      ///< unrecoverable read error (errno-style failure)
};

const char *toString(ReadStatus s);

/**
 * Buffered line reader over a file descriptor. Not thread-safe: one
 * reader thread owns the input side of a connection.
 */
class LineReader
{
  public:
    explicit LineReader(int fd,
                        size_t max_frame_bytes = defaultMaxFrameBytes);

    /**
     * Deliver the next frame (without its terminator) into `out`.
     * On FrameTooLong the oversized frame has been discarded up to
     * and including its terminator; `out` holds a truncated prefix
     * for diagnostics.
     */
    ReadStatus readLine(std::string &out);

    size_t maxFrameBytes() const { return maxBytes; }

  private:
    /** Pull more bytes into buf; Ok, Eof, Interrupted, or IoError. */
    ReadStatus fill();

    int fd;
    size_t maxBytes;
    std::string buf; ///< read-ahead; [pos, buf.size()) is pending
    size_t pos = 0;
    bool sawEof = false;
    /** Mid-discard of an over-limit frame (sticky across EINTR). */
    bool discarding = false;
    std::string overflowPrefix; ///< diagnostic head of that frame
};

/**
 * Mutex-serialized line writer over a file descriptor: each
 * writeLine() emits frame + '\n' as one atomic unit with respect to
 * other writers, handling partial writes and EINTR.
 */
class LineWriter
{
  public:
    explicit LineWriter(int fd) : fd(fd) {}

    /** Append '\n' and write the whole frame; false on I/O error. */
    bool writeLine(std::string_view frame) UBRC_EXCLUDES(mu);

  private:
    Mutex mu;
    int fd;
};

} // namespace ubrc::framing

#endif // UBRC_COMMON_FRAMING_HH
