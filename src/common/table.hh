/**
 * @file
 * Plain-text table rendering for the benchmark harnesses, which print
 * the rows/series of each paper figure and table.
 */

#ifndef UBRC_COMMON_TABLE_HH
#define UBRC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace ubrc
{

/**
 * A simple column-aligned text table. Cells are strings; headers are
 * set once; rows are appended. render() aligns columns by width.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> column_headers)
        : headers(std::move(column_headers))
    {}

    /** Append a row. Missing cells render empty; extras are dropped. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);
    static std::string num(uint64_t v);

    std::string render() const;

    size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace ubrc

#endif // UBRC_COMMON_TABLE_HH
