#include "common/framing.hh"

#include <cerrno>
#include <unistd.h>

namespace ubrc::framing
{

const char *
toString(ReadStatus s)
{
    switch (s) {
      case ReadStatus::Ok: return "ok";
      case ReadStatus::Eof: return "eof";
      case ReadStatus::FrameTooLong: return "frame too long";
      case ReadStatus::Interrupted: return "interrupted";
      case ReadStatus::IoError: return "io error";
    }
    return "?";
}

LineReader::LineReader(int fd, size_t max_frame_bytes)
    : fd(fd), maxBytes(max_frame_bytes)
{}

ReadStatus
LineReader::fill()
{
    // Compact the consumed prefix before growing the buffer so a
    // long-lived connection does not accumulate dead bytes.
    if (pos > 0) {
        buf.erase(0, pos);
        pos = 0;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
        buf.append(chunk, static_cast<size_t>(n));
        return ReadStatus::Ok;
    }
    if (n == 0) {
        sawEof = true;
        return ReadStatus::Eof;
    }
    if (errno == EINTR)
        return ReadStatus::Interrupted;
    return ReadStatus::IoError;
}

ReadStatus
LineReader::readLine(std::string &out)
{
    out.clear();
    while (true) {
        if (discarding) {
            // Consuming the tail of an over-limit frame. The state
            // is sticky across Interrupted returns so a signal
            // cannot make the remainder look like a fresh frame.
            const size_t nl = buf.find('\n', pos);
            if (nl != std::string::npos || sawEof) {
                pos = nl != std::string::npos ? nl + 1 : buf.size();
                discarding = false;
                out = overflowPrefix;
                overflowPrefix.clear();
                return ReadStatus::FrameTooLong;
            }
            buf.clear();
            pos = 0;
            const ReadStatus st = fill();
            if (st == ReadStatus::Interrupted ||
                st == ReadStatus::IoError)
                return st;
            continue;
        }

        const size_t nl = buf.find('\n', pos);
        if (nl != std::string::npos) {
            const size_t len = nl - pos;
            if (len > maxBytes) {
                out.assign(buf, pos, maxBytes);
                pos = nl + 1; // resync past the oversized frame
                return ReadStatus::FrameTooLong;
            }
            out.assign(buf, pos, len);
            pos = nl + 1;
            return ReadStatus::Ok;
        }

        // No terminator in the pending bytes. An over-limit partial
        // frame is discarded as it streams in: keeping only the
        // diagnostic prefix bounds memory no matter how large the
        // frame grows.
        if (buf.size() - pos > maxBytes) {
            overflowPrefix.assign(buf, pos, maxBytes);
            buf.clear();
            pos = 0;
            discarding = true;
            continue;
        }

        if (sawEof) {
            if (pos < buf.size()) {
                // Trailing unterminated line: deliver it.
                out.assign(buf, pos, buf.size() - pos);
                pos = buf.size();
                return ReadStatus::Ok;
            }
            return ReadStatus::Eof;
        }

        const ReadStatus st = fill();
        if (st == ReadStatus::Interrupted || st == ReadStatus::IoError)
            return st;
        // Ok grew the buffer; Eof set sawEof — loop to re-examine.
    }
}

bool
LineWriter::writeLine(std::string_view frame)
{
    std::string line;
    line.reserve(frame.size() + 1);
    line.append(frame);
    line.push_back('\n');

    LockGuard lock(mu);
    size_t done = 0;
    while (done < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + done, line.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

} // namespace ubrc::framing
