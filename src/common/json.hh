/**
 * @file
 * Minimal header-only JSON support for the structured results layer.
 *
 * Writer: an append-only emitter with automatic comma/indent
 * management, used by StatGroup::toJson(), the sim result serializers
 * (sim/results_json.hh), the bench Reporter, and ubrcsim
 * --stats-format=json. Output is deterministic: keys are emitted in
 * call order, doubles use a fixed shortest-ish "%.12g" rendering, and
 * non-finite doubles become null, so two runs of the same simulation
 * produce byte-identical documents that can be diffed.
 *
 * Value/parse: a small recursive-descent reader for the same dialect,
 * used by the round-trip tests and tooling. Objects preserve insertion
 * order. This is not a general-purpose JSON library: numbers are
 * doubles, no \uXXXX surrogate pairs are decoded (kept verbatim), and
 * inputs larger than ~100 MB or nested deeper than 200 levels are
 * rejected.
 */

#ifndef UBRC_COMMON_JSON_HH
#define UBRC_COMMON_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ubrc::json
{

/** Escape a string for inclusion in a JSON document (no quotes). */
inline std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Deterministic double rendering; non-finite values become null. */
inline std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/**
 * Structured JSON emitter. begin/end calls must nest correctly;
 * key() is required before each value inside an object. str() returns
 * the finished document.
 */
class Writer
{
  public:
    /** @param pretty Indent with two spaces and newlines. */
    explicit Writer(bool pretty = true) : prettyPrint(pretty) {}

    Writer &
    beginObject()
    {
        open('{');
        return *this;
    }

    Writer &
    endObject()
    {
        close('}');
        return *this;
    }

    Writer &
    beginArray()
    {
        open('[');
        return *this;
    }

    Writer &
    endArray()
    {
        close(']');
        return *this;
    }

    Writer &
    key(std::string_view k)
    {
        separate();
        out += '"';
        out += escape(k);
        out += prettyPrint ? "\": " : "\":";
        pendingKey = true;
        return *this;
    }

    Writer &
    value(std::string_view v)
    {
        separate();
        out += '"';
        out += escape(v);
        out += '"';
        return *this;
    }

    Writer &value(const char *v) { return value(std::string_view(v)); }
    Writer &value(const std::string &v)
    {
        return value(std::string_view(v));
    }

    Writer &
    value(double v)
    {
        separate();
        out += formatNumber(v);
        return *this;
    }

    Writer &
    value(uint64_t v)
    {
        separate();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        out += buf;
        return *this;
    }

    Writer &
    value(int64_t v)
    {
        separate();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
        return *this;
    }

    Writer &value(unsigned v) { return value(uint64_t(v)); }
    Writer &value(int v) { return value(int64_t(v)); }

    Writer &
    value(bool v)
    {
        separate();
        out += v ? "true" : "false";
        return *this;
    }

    Writer &
    null()
    {
        separate();
        out += "null";
        return *this;
    }

    /** Splice a pre-rendered JSON value verbatim. */
    Writer &
    raw(std::string_view json_text)
    {
        separate();
        out += json_text;
        return *this;
    }

    // key+value shorthands
    template <typename T>
    Writer &
    field(std::string_view k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    Writer &
    nullField(std::string_view k)
    {
        key(k);
        return null();
    }

    const std::string &str() const { return out; }

  private:
    void
    separate()
    {
        if (pendingKey) {
            pendingKey = false;
            return;
        }
        if (!depth.empty()) {
            if (depth.back().count++)
                out += ',';
            newlineIndent();
        }
    }

    void
    open(char c)
    {
        separate();
        out += c;
        depth.push_back({});
    }

    void
    close(char c)
    {
        const bool empty = depth.back().count == 0;
        depth.pop_back();
        if (!empty)
            newlineIndent();
        out += c;
    }

    void
    newlineIndent()
    {
        if (!prettyPrint)
            return;
        out += '\n';
        out.append(2 * depth.size(), ' ');
    }

    struct Level
    {
        unsigned count = 0;
    };

    std::string out;
    std::vector<Level> depth;
    bool prettyPrint;
    bool pendingKey = false;
};

/** Thrown by parse() on malformed input, with a byte offset. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &what, size_t at)
        : std::runtime_error(what + " at offset " +
                             std::to_string(at)),
          offset(at)
    {}

    size_t offset;
};

/** A parsed JSON value (tree). Object member order is preserved. */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(std::string_view k) const
    {
        if (type != Type::Object)
            return nullptr;
        for (const auto &[name, v] : object)
            if (name == k)
                return &v;
        return nullptr;
    }

    /** find() that throws on a missing member. */
    const Value &
    at(std::string_view k) const
    {
        const Value *v = find(k);
        if (!v)
            throw std::out_of_range("json: no member '" +
                                    std::string(k) + "'");
        return *v;
    }
};

namespace detail
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : in(text) {}

    Value
    run()
    {
        Value v = parseValue();
        skipWs();
        if (pos != in.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *msg) const
    {
        throw ParseError(msg, pos);
    }

    void
    skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= in.size())
            fail("unexpected end of input");
        return in[pos];
    }

    void
    expect(char c)
    {
        if (pos >= in.size() || in[pos] != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (in.substr(pos, lit.size()) != lit)
            return false;
        pos += lit.size();
        return true;
    }

    Value
    parseValue()
    {
        if (++nesting > 200)
            fail("nesting too deep");
        skipWs();
        Value v;
        switch (peek()) {
          case '{': v = parseObject(); break;
          case '[': v = parseArray(); break;
          case '"':
            v.type = Value::Type::String;
            v.string = parseString();
            break;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            v.type = Value::Type::Bool;
            v.boolean = true;
            break;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            v.type = Value::Type::Bool;
            v.boolean = false;
            break;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            v.type = Value::Type::Null;
            break;
          default: v = parseNumber(); break;
        }
        --nesting;
        return v;
    }

    Value
    parseObject()
    {
        Value v;
        v.type = Value::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWs();
            std::string k = parseString();
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(k), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.type = Value::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = peek();
            ++pos;
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char e = peek();
            ++pos;
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos + 4 > in.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = in[pos + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                pos += 4;
                // ASCII range only; anything else is re-encoded as
                // UTF-8 without surrogate-pair handling.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    Value
    parseNumber()
    {
        const size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < in.size() &&
               ((in[pos] >= '0' && in[pos] <= '9') || in[pos] == '.' ||
                in[pos] == 'e' || in[pos] == 'E' || in[pos] == '+' ||
                in[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("expected a value");
        const std::string text(in.substr(start, pos - start));
        char *end = nullptr;
        const double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size())
            fail("bad number");
        Value v;
        v.type = Value::Type::Number;
        v.number = d;
        return v;
    }

    std::string_view in;
    size_t pos = 0;
    unsigned nesting = 0;
};

} // namespace detail

/** Parse a complete JSON document. Throws ParseError on bad input. */
inline Value
parse(std::string_view text)
{
    if (text.size() > 100u * 1024 * 1024)
        throw ParseError("document too large", 0);
    return detail::Parser(text).run();
}

/**
 * Exact structural equality of two parsed documents: same types,
 * bit-equal numbers, and — because every Writer in this project
 * emits keys in deterministic call order — object members must match
 * in order as well as by name. Used by the bit-identity checks
 * (serial reference run vs. server response) where any drift is a
 * bug, so nothing is normalized.
 */
inline bool
equal(const Value &a, const Value &b)
{
    if (a.type != b.type)
        return false;
    switch (a.type) {
      case Value::Type::Null: return true;
      case Value::Type::Bool: return a.boolean == b.boolean;
      case Value::Type::Number: return a.number == b.number;
      case Value::Type::String: return a.string == b.string;
      case Value::Type::Array:
        if (a.array.size() != b.array.size())
            return false;
        for (size_t i = 0; i < a.array.size(); ++i)
            if (!equal(a.array[i], b.array[i]))
                return false;
        return true;
      case Value::Type::Object:
        if (a.object.size() != b.object.size())
            return false;
        for (size_t i = 0; i < a.object.size(); ++i) {
            if (a.object[i].first != b.object[i].first)
                return false;
            if (!equal(a.object[i].second, b.object[i].second))
                return false;
        }
        return true;
    }
    return false;
}

} // namespace ubrc::json

#endif // UBRC_COMMON_JSON_HH
