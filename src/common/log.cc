#include "common/log.hh"

#include <cstdarg>

namespace ubrc
{

int logVerbosity = 1;

namespace detail
{

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(len > 0 ? len : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

void
emit(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

void
exitWithMessage(const char *kind, const std::string &msg, bool abort_process)
{
    emit(kind, msg);
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace ubrc
