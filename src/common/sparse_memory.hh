/**
 * @file
 * Sparse, page-granular simulated memory image.
 *
 * Both the functional core and the timing memory hierarchy operate on
 * this structure. Untouched memory reads as zero. Accesses may span
 * page boundaries.
 */

#ifndef UBRC_COMMON_SPARSE_MEMORY_HH
#define UBRC_COMMON_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace ubrc
{

/** Byte-addressable sparse memory backed by 4 KB pages. */
class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr(1) << pageShift;

    /** Read size bytes (1..8) at addr, little-endian, zero-extended. */
    uint64_t
    read(Addr addr, unsigned size) const
    {
        uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
        return v;
    }

    /** Write the low size bytes (1..8) of value at addr. */
    void
    write(Addr addr, unsigned size, uint64_t value)
    {
        for (unsigned i = 0; i < size; ++i)
            writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
    }

    uint8_t
    readByte(Addr addr) const
    {
        auto it = pages.find(addr >> pageShift);
        if (it == pages.end())
            return 0;
        return (*it->second)[addr & (pageSize - 1)];
    }

    void
    writeByte(Addr addr, uint8_t value)
    {
        (*pageFor(addr))[addr & (pageSize - 1)] = value;
    }

    /** Bulk copy into memory. */
    void
    writeBlock(Addr addr, const uint8_t *src, size_t len)
    {
        for (size_t i = 0; i < len; ++i)
            writeByte(addr + i, src[i]);
    }

    /** Number of pages currently instantiated. */
    size_t pageCount() const { return pages.size(); }

    void clear() { pages.clear(); }

  private:
    using Page = std::array<uint8_t, pageSize>;

    Page *
    pageFor(Addr addr)
    {
        auto &slot = pages[addr >> pageShift];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return slot.get();
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace ubrc

#endif // UBRC_COMMON_SPARSE_MEMORY_HH
