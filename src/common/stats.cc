#include "common/stats.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace ubrc::stats
{

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    weightedSum = 0;
}

double
Distribution::mean() const
{
    return total ? static_cast<double>(weightedSum) /
                       static_cast<double>(total)
                 : 0.0;
}

uint64_t
Distribution::percentile(double frac) const
{
    if (total == 0)
        return 0;
    frac = std::clamp(frac, 0.0, 1.0);
    // frac == 0 conventionally returns the minimum sampled value.
    const double target =
        std::max(1.0, frac * static_cast<double>(total));
    uint64_t running = 0;
    for (size_t v = 0; v < buckets.size(); ++v) {
        running += buckets[v];
        if (static_cast<double>(running) >= target)
            return v;
    }
    return buckets.size() - 1;
}

double
Distribution::cdfAt(uint64_t v) const
{
    if (total == 0)
        return 0.0;
    uint64_t running = 0;
    const size_t limit = std::min<size_t>(v + 1, buckets.size());
    for (size_t i = 0; i < limit; ++i)
        running += buckets[i];
    return static_cast<double>(running) / static_cast<double>(total);
}

Scalar &
StatGroup::scalar(const std::string &stat_name)
{
    return scalars[stat_name];
}

Mean &
StatGroup::mean(const std::string &stat_name)
{
    return means[stat_name];
}

uint64_t
StatGroup::scalarValue(const std::string &stat_name) const
{
    auto it = scalars.find(stat_name);
    return it == scalars.end() ? 0 : it->second.value();
}

Distribution &
StatGroup::distribution(const std::string &stat_name, size_t max_value)
{
    auto it = distributions.find(stat_name);
    if (it == distributions.end()) {
        it = distributions
                 .emplace(stat_name, Distribution(max_value))
                 .first;
    }
    return it->second;
}

std::string
StatGroup::dump() const
{
    std::string out;
    char line[256];
    for (const auto &[stat_name, s] : scalars) {
        std::snprintf(line, sizeof(line), "%s.%s %lu\n", name.c_str(),
                      stat_name.c_str(),
                      static_cast<unsigned long>(s.value()));
        out += line;
    }
    for (const auto &[stat_name, m] : means) {
        std::snprintf(line, sizeof(line), "%s.%s %.6f\n", name.c_str(),
                      stat_name.c_str(), m.value());
        out += line;
    }
    for (const auto &[stat_name, d] : distributions) {
        std::snprintf(line, sizeof(line),
                      "%s.%s mean=%.3f median=%lu p90=%lu n=%lu\n",
                      name.c_str(), stat_name.c_str(), d.mean(),
                      static_cast<unsigned long>(d.median()),
                      static_cast<unsigned long>(d.percentile(0.9)),
                      static_cast<unsigned long>(d.count()));
        out += line;
    }
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &[stat_name, s] : scalars)
        s.reset();
    for (auto &[stat_name, m] : means)
        m.reset();
    for (auto &[stat_name, d] : distributions)
        d.reset();
}

} // namespace ubrc::stats
