#include "common/stats.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"

namespace ubrc::stats
{

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    weightedSum = 0;
}

double
Distribution::mean() const
{
    return total ? static_cast<double>(weightedSum) /
                       static_cast<double>(total)
                 : 0.0;
}

uint64_t
Distribution::percentile(double frac) const
{
    if (total == 0)
        return 0;
    frac = std::clamp(frac, 0.0, 1.0);
    // frac == 0 conventionally returns the minimum sampled value.
    const double target =
        std::max(1.0, frac * static_cast<double>(total));
    uint64_t running = 0;
    for (size_t v = 0; v < buckets.size(); ++v) {
        running += buckets[v];
        if (static_cast<double>(running) >= target)
            return v;
    }
    return buckets.size() - 1;
}

double
Distribution::cdfAt(uint64_t v) const
{
    if (total == 0)
        return 0.0;
    uint64_t running = 0;
    const size_t limit = std::min<size_t>(v + 1, buckets.size());
    for (size_t i = 0; i < limit; ++i)
        running += buckets[i];
    return static_cast<double>(running) / static_cast<double>(total);
}

Scalar &
StatGroup::scalar(const std::string &stat_name)
{
    return scalars[stat_name];
}

Mean &
StatGroup::mean(const std::string &stat_name)
{
    return means[stat_name];
}

Distribution &
StatGroup::distribution(const std::string &stat_name, size_t max_value)
{
    auto it = distributions.find(stat_name);
    if (it == distributions.end()) {
        it = distributions
                 .emplace(stat_name, Distribution(max_value))
                 .first;
    }
    return it->second;
}

void
StatGroup::visit(StatVisitor &v) const
{
    for (const auto &[stat_name, s] : scalars)
        v.visitScalar(stat_name, s);
    for (const auto &[stat_name, m] : means)
        v.visitMean(stat_name, m);
    for (const auto &[stat_name, d] : distributions)
        v.visitDistribution(stat_name, d);
}

namespace
{

/** Renders the historical "group.stat value" line format. */
class TextDumpVisitor : public StatVisitor
{
  public:
    explicit TextDumpVisitor(const std::string &group_name)
        : group(group_name)
    {}

    void
    visitScalar(const std::string &stat_name, const Scalar &s) override
    {
        char line[256];
        std::snprintf(line, sizeof(line), "%s.%s %lu\n", group.c_str(),
                      stat_name.c_str(),
                      static_cast<unsigned long>(s.value()));
        out += line;
    }

    void
    visitMean(const std::string &stat_name, const Mean &m) override
    {
        char line[256];
        std::snprintf(line, sizeof(line), "%s.%s %.6f\n", group.c_str(),
                      stat_name.c_str(), m.value());
        out += line;
    }

    void
    visitDistribution(const std::string &stat_name,
                      const Distribution &d) override
    {
        char line[256];
        std::snprintf(line, sizeof(line),
                      "%s.%s mean=%.3f median=%lu p90=%lu n=%lu\n",
                      group.c_str(), stat_name.c_str(), d.mean(),
                      static_cast<unsigned long>(d.median()),
                      static_cast<unsigned long>(d.percentile(0.9)),
                      static_cast<unsigned long>(d.count()));
        out += line;
    }

    std::string out;

  private:
    const std::string &group;
};

/** Serializes the group into an open json::Writer object. */
class JsonVisitor : public StatVisitor
{
  public:
    explicit JsonVisitor(json::Writer &writer) : w(writer) {}

    void
    visitScalar(const std::string &stat_name, const Scalar &s) override
    {
        section("scalars");
        w.field(stat_name, s.value());
    }

    void
    visitMean(const std::string &stat_name, const Mean &m) override
    {
        section("means");
        w.key(stat_name).beginObject();
        w.field("value", m.value());
        w.field("sum", m.sum());
        w.field("count", m.count());
        w.endObject();
    }

    void
    visitDistribution(const std::string &stat_name,
                      const Distribution &d) override
    {
        section("distributions");
        w.key(stat_name).beginObject();
        w.field("count", d.count());
        w.field("mean", d.mean());
        w.field("p50", d.median());
        w.field("p90", d.percentile(0.9));
        // Sparse [value, weight] pairs keep documents small.
        w.key("buckets").beginArray();
        const auto &raw = d.raw();
        for (size_t v = 0; v < raw.size(); ++v) {
            if (!raw[v])
                continue;
            w.beginArray();
            w.value(uint64_t(v)).value(raw[v]);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }

    /** Close any section still open. */
    void
    finish()
    {
        if (!current.empty())
            w.endObject();
        current.clear();
    }

  private:
    void
    section(const char *which)
    {
        if (current == which)
            return;
        finish();
        current = which;
        w.key(which).beginObject();
    }

    json::Writer &w;
    std::string current;
};

} // namespace

std::string
StatGroup::dump() const
{
    TextDumpVisitor v(name);
    visit(v);
    return std::move(v.out);
}

std::string
StatGroup::toJson(bool pretty) const
{
    json::Writer w(pretty);
    w.beginObject();
    w.field("group", name);
    JsonVisitor v(w);
    visit(v);
    v.finish();
    w.endObject();
    return w.str();
}

void
StatGroup::resetAll()
{
    for (auto &[stat_name, s] : scalars)
        s.reset();
    for (auto &[stat_name, m] : means)
        m.reset();
    for (auto &[stat_name, d] : distributions)
        d.reset();
}

} // namespace ubrc::stats
