/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator and the workload data-set
 * generators draws from this PRNG so that runs are exactly reproducible
 * given a seed. The generator is xoshiro256** (public domain algorithm by
 * Blackman and Vigna), which is fast and has no observable statistical
 * defects at the scales we use.
 */

#ifndef UBRC_COMMON_RNG_HH
#define UBRC_COMMON_RNG_HH

#include <cassert>
#include <cstdint>

namespace ubrc
{

/**
 * A small, fast, seedable PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct with a seed; any value (including 0) is acceptable. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to expand the seed into four state words.
        for (auto &word : state) {
            seed += 0x9e3779b97f4a7c15ULL;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible
        // for simulation purposes.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        assert(lo <= hi);
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace ubrc

#endif // UBRC_COMMON_RNG_HH
