/**
 * @file
 * The one shared view of a valid register-cache entry.
 *
 * Crash-dump snapshots (sim/diagnostics), fault-site selection
 * (core/processor_debug), and the supplier forensics surface
 * (storage::OperandSupplier::cachedEntries) all consume the same
 * five fields; this struct is their single definition. The regcache,
 * storage, and sim layers re-export it under their historical names.
 */

#ifndef UBRC_COMMON_CACHE_ENTRY_VIEW_HH
#define UBRC_COMMON_CACHE_ENTRY_VIEW_HH

#include <cstdint>

#include "common/types.hh"

namespace ubrc
{

/** One valid cache entry, as exposed for diagnostics and injection. */
struct CacheEntryView
{
    unsigned set = 0;
    unsigned way = 0;
    PhysReg preg = invalidPhysReg;
    uint32_t remUses = 0;
    bool pinned = false;
};

} // namespace ubrc

#endif // UBRC_COMMON_CACHE_ENTRY_VIEW_HH
