/**
 * @file
 * Trace capture: a recording decorator around any OperandSupplier.
 *
 * RecordingSupplier wraps the supplier the Processor would have used
 * and appends one TraceEvent per state-mutating call — a verbatim
 * capture of the rename/issue/execute/retire operand stream, so a
 * replay (src/trace/trace_replay.hh) can re-drive a fresh supplier
 * through the identical call sequence. Const queries
 * (canAllocateDest, issueReadGate) are forwarded but not recorded:
 * they carry no state and replay never needs them.
 *
 * The decorator is installed through the Processor's SupplierWrap
 * constructor hook so the core keeps zero knowledge of tracing.
 * needsRecovery() is forced on while recording so traces carry the
 * post-squash architectural mappings every scheme might want — for
 * suppliers whose recoverMappings() is a no-op this is free (the core
 * only acts on a non-empty displaced list).
 *
 * writeRecordedTrace() packages the event stream plus a JSON metadata
 * section (workload identity, storage-config identity hash, and the
 * core-side counters replay cannot re-derive) into the CRC-protected
 * container of common/trace_io.hh.
 */

#ifndef UBRC_TRACE_TRACE_RECORDER_HH
#define UBRC_TRACE_TRACE_RECORDER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/processor.hh"
#include "storage/operand_supplier.hh"
#include "trace/trace_format.hh"

namespace ubrc::trace
{

/**
 * The per-run trace metadata (META section, JSON). Carries the trace
 * identity plus every core-side SimResult input that a replay cannot
 * re-derive from the supplier alone.
 */
struct TraceMeta
{
    std::string workload;
    uint64_t maxInsts = 0;
    std::string scheme;         ///< recorded supplier scheme
    std::string configDescribe; ///< recorded SimConfig::describe()
    std::string identity;       ///< canonical storage identity string
    std::string identityHash;   ///< FNV-1a-64 of identity, hex
    uint64_t numPhysRegs = 0;

    uint64_t cycles = 0;
    uint64_t instsRetired = 0;
    /** Backing-file reads on the miss-fill path (not supplier calls):
     *  execution opFile minus recorded File read results. */
    uint64_t opFileFillReads = 0;
    uint64_t valuesProduced = 0;
    uint64_t branchesRetired = 0;
    uint64_t branchMispredicts = 0;
    uint64_t miniReplays = 0;
    uint64_t issueGroupSquashes = 0;
    uint64_t memOrderViolations = 0;
    uint64_t fetchBlocks = 0;
    uint64_t renameStallsRegs = 0;
    uint64_t renameStallsRob = 0;
    uint64_t renameStallsIq = 0;
    uint64_t medianEmptyTime = 0, medianLiveTime = 0,
             medianDeadTime = 0;
    uint64_t allocatedP50 = 0, allocatedP90 = 0;
    uint64_t liveP50 = 0, liveP90 = 0;
};

/**
 * Canonical description of everything about a SimConfig the storage
 * layer can observe. Two configs with equal storage identities drive
 * a supplier identically, so replaying a trace against an
 * identical-identity config is exact (bit-identical stats).
 */
std::string storageIdentity(const sim::SimConfig &cfg);

/** FNV-1a 64-bit hash of `s`, as 16 lowercase hex digits. */
std::string fnv1aHex(const std::string &s);

/** Trace file path for one workload: `<dir>/<workload>.ubrct`. */
std::string traceFilePath(const std::string &dir,
                          const std::string &workload);

/** Serialize / parse the META section (compact JSON). parseMeta
 *  throws traceio::FormatError on malformed metadata. */
std::string encodeMeta(const TraceMeta &meta);
TraceMeta parseMeta(const std::string &json_text);

/**
 * Capture sink shared by the decorator and the trace writer. Events
 * are wire-encoded as they arrive — a multi-million-event run costs
 * one growing byte string, never a TraceEvent vector.
 */
class TraceRecorder
{
  public:
    /** The EVENTS-section payload encoded so far. */
    std::string wire;
    /** Number of events encoded into `wire`. */
    uint64_t eventCount = 0;
    /** readOperand() calls that were satisfied by the file. */
    uint64_t fileReadResults = 0;
    /** The supplier's most recent tick() cycle. */
    Cycle lastTick = 0;

    void
    push(EventKind kind, Cycle arg, uint64_t a = 0, uint64_t b = 0,
         uint64_t c = 0, uint64_t d = 0)
    {
        scratch.tick = lastTick;
        scratch.arg = arg;
        scratch.kind = kind;
        scratch.a = a;
        scratch.b = b;
        scratch.c = c;
        scratch.d = d;
        appendEvent(wire, scratch, prevTick);
        ++eventCount;
    }

    /** RecoverMappings: the only kind carrying a register list. */
    void
    pushRegs(EventKind kind, Cycle arg,
             const std::vector<PhysReg> &regs)
    {
        scratch.regs = regs;
        push(kind, arg);
        scratch.regs.clear();
    }

  private:
    TraceEvent scratch;
    Cycle prevTick = 0;
};

/** The recording decorator (see file comment). */
class RecordingSupplier : public storage::OperandSupplier
{
  public:
    RecordingSupplier(std::unique_ptr<storage::OperandSupplier> wrapped,
                      TraceRecorder &recorder,
                      const sim::SimConfig &config,
                      stats::StatGroup &stat_group);

    const char *name() const override;

    /** Recording forwards everything; report the wrapped interest. */
    storage::OptionalNotifications optionalNotifications() const override
    {
        return inner->optionalNotifications();
    }

    bool canAllocateDest() const override;
    void onConsumerRenamed(PhysReg src, uint32_t actual_uses,
                           Addr producer_pc,
                           uint64_t producer_ctrl) override;
    storage::DestAlloc allocateDest(PhysReg preg, Addr pc,
                                    uint64_t ctrl) override;
    void onInitialValue(PhysReg preg) override;
    void onArchReassigned(PhysReg prev) override;
    void onArchReassignCancelled(PhysReg prev) override;
    Cycle issueReadGate(Cycle exec_start,
                        Cycle producer_done) const override;
    bool hasIssueReadGate() const override;
    void onBypassRead(PhysReg src, bool first_stage) override;
    storage::ReadResult readOperand(PhysReg src, Cycle now) override;
    Cycle onOperandMiss(PhysReg src, Cycle exec_start) override;
    bool onFill(PhysReg preg, Cycle now) override;
    void onConsumerDone(PhysReg src) override;
    storage::WriteOutcome onValueProduced(PhysReg preg,
                                          Cycle now) override;
    void onInsertDecision(PhysReg preg, Cycle now) override;
    void onProducerRetired(PhysReg dest) override;
    void onValueFreed(PhysReg preg, Addr producer_pc,
                      uint64_t producer_ctrl, uint32_t actual_uses,
                      Cycle now) override;
    void onDestSquashed(PhysReg dest, Cycle now) override;
    bool needsRecovery() const override;
    storage::RecoveryResult
    recoverMappings(const std::vector<PhysReg> &mapped,
                    Cycle now) override;
    void tick(Cycle now) override;
    void sampleCycleStats() override;
    std::vector<storage::CacheEntryView> cachedEntries() const override;
    unsigned cacheSets() const override;
    unsigned cacheAssoc() const override;
    bool corruptUseCounter(PhysReg preg, unsigned set,
                           unsigned bit) override;
    storage::SupplierStats stats() const override;

  private:
    std::unique_ptr<storage::OperandSupplier> inner;
    TraceRecorder &rec;
};

/**
 * A Processor::SupplierWrap that decorates the constructed supplier
 * with a RecordingSupplier feeding `recorder`. The recorder must
 * outlive the Processor.
 */
core::Processor::SupplierWrap recordingWrap(TraceRecorder &recorder);

/**
 * Assemble the META block for a finished recorded run (proc must have
 * simulated `workload_name` under `cfg` with a recording supplier).
 */
TraceMeta buildTraceMeta(const sim::SimConfig &cfg,
                         const std::string &workload_name,
                         const core::Processor &proc,
                         const TraceRecorder &recorder);

/**
 * Write the trace file for one recorded run into `dir` (created if
 * missing). Throws sim::TraceFormatError if the file cannot be
 * written. Returns the trace file path.
 */
std::string writeRecordedTrace(const sim::SimConfig &cfg,
                               const std::string &workload_name,
                               const core::Processor &proc,
                               const TraceRecorder &recorder,
                               const std::string &dir);

} // namespace ubrc::trace

#endif // UBRC_TRACE_TRACE_RECORDER_HH
