/**
 * @file
 * The versioned operand-event trace format.
 *
 * A trace is the exact sequence of state-mutating OperandSupplier
 * calls one execution-driven run made — producer PCs, destination
 * registers, consumer events, degree-of-use counts, inter-use timing,
 * and squash markers — plus a JSON metadata block with the core-side
 * counters replay cannot re-derive. Replaying the stream against a
 * fresh supplier (src/trace/trace_replay.hh) reproduces the
 * cache-affecting statistics of the recorded run bit-for-bit without
 * re-simulating fetch, branch prediction, memory, or scheduling.
 *
 * Wire encoding of one event (inside a traceio EVENTS section):
 *
 *   varint  delta_tick   (tick - previous event's tick; >= 0)
 *   u8      kind         (EventKind)
 *   zigzag  arg - tick   (cycle argument of cycle-bearing calls;
 *                         equals tick for the rest, encoding to one
 *                         zero byte)
 *   varint* args         (kind-specific, see the table in DESIGN.md)
 *
 * `traceVersion` MUST be bumped whenever the serialized event struct
 * or the per-kind argument list changes; ubrc-lint (rule
 * trace-version) cross-checks this header against the DESIGN.md
 * format table the same way the exit-code registry is checked.
 */

#ifndef UBRC_TRACE_TRACE_FORMAT_HH
#define UBRC_TRACE_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/trace_io.hh"
#include "common/types.hh"

namespace ubrc::trace
{

/** Serialized trace format version (see DESIGN.md for the registry). */
inline constexpr uint32_t traceVersion = 1;

/** File extension for trace files (<dir>/<workload>.ubrct). */
inline constexpr const char *traceFileExtension = ".ubrct";

/**
 * One recorded supplier interaction. Codes are wire format: never
 * renumber, only append (and bump traceVersion).
 */
enum class EventKind : uint8_t
{
    InitialValue = 0,         ///< onInitialValue(a)
    ConsumerRenamed = 1,      ///< onConsumerRenamed(a, b, c, d)
    AllocDest = 2,            ///< allocateDest(a, b, c)
    ArchReassigned = 3,       ///< onArchReassigned(a)
    ArchReassignCancelled = 4, ///< onArchReassignCancelled(a)
    BypassRead = 5,           ///< onBypassRead(a, b != 0)
    ReadOperand = 6,          ///< readOperand(a, arg)
    OperandMiss = 7,          ///< onOperandMiss(a, arg)
    Fill = 8,                 ///< onFill(a, arg)
    ConsumerDone = 9,         ///< onConsumerDone(a)
    ValueProduced = 10,       ///< onValueProduced(a, arg)
    InsertDecision = 11,      ///< onInsertDecision(a, arg)
    ProducerRetired = 12,     ///< onProducerRetired(a)
    ValueFreed = 13,          ///< onValueFreed(a, b, c, d, arg)
    DestSquashed = 14,        ///< onDestSquashed(a, arg)
    RecoverMappings = 15,     ///< recoverMappings(regs, arg)
};

/** Number of defined event kinds (decode validation bound). */
inline constexpr unsigned numEventKinds = 16;

const char *toString(EventKind kind);

/**
 * One decoded trace event. `tick` is the simulation cycle the event
 * must be delivered in (the supplier's last tick() cycle at record
 * time; non-decreasing across the stream). `arg` is the cycle
 * argument of cycle-bearing calls — usually equal to tick, but e.g.
 * onOperandMiss receives the instruction's exec-start cycle.
 */
struct TraceEvent
{
    Cycle tick = 0;
    Cycle arg = 0;
    EventKind kind = EventKind::InitialValue;
    uint64_t a = 0, b = 0, c = 0, d = 0;
    /** RecoverMappings only: the live architectural mappings. */
    std::vector<PhysReg> regs;

    bool operator==(const TraceEvent &o) const = default;
};

/** Number of generic varint arguments (a..d) carried by a kind. */
unsigned argCountOf(EventKind kind);

/**
 * Append one event's wire bytes to `out`. `prev_tick` carries the
 * tick delta-encoding state between calls — initialize it to 0 at
 * stream start and never reset mid-stream. The recorder encodes with
 * this directly, so a multi-million-event run never materializes a
 * TraceEvent vector.
 */
void appendEvent(std::string &out, const TraceEvent &e,
                 Cycle &prev_tick);

/**
 * Streaming decoder over EVENTS-section payload bytes. next() refills
 * the caller's event in place, so decoding a whole trace reuses one
 * TraceEvent (and its regs buffer) instead of allocating millions.
 * Decoding is pointer-based: events with at least 64 payload bytes of
 * slack take an unchecked fast path (a varint self-limits to 10
 * bytes, and the longest fixed-arg event is 61), the tail falls back
 * to per-byte bounds checks. Throws traceio::FormatError on a
 * malformed stream (unknown kind, tick overflow, truncation). The
 * payload must outlive the decoder.
 */
class EventDecoder
{
  public:
    explicit EventDecoder(std::string_view payload)
        : p(reinterpret_cast<const uint8_t *>(payload.data())),
          end(p + payload.size()), base(p)
    {}

    /**
     * Skip events whose kind bit (1 << kind) is set in `mask`: they
     * are parsed past (the tick delta chain stays in sync) but never
     * surfaced through next(). Replay uses this to drop notification
     * kinds the replayed supplier declared it ignores
     * (storage::OptionalNotifications).
     */
    void setSkipMask(uint32_t mask) { skipMask = mask; }

    /** Decode the next surfaced event into `e`; false at stream end. */
    bool next(TraceEvent &e);

  private:
    template <bool Checked> bool decodeOne(TraceEvent &e);

    const uint8_t *p;
    const uint8_t *end;
    const uint8_t *base;
    Cycle prev = 0;
    uint32_t skipMask = 0;
};

/** Encode an event stream into EVENTS-section payload bytes. */
std::string encodeEvents(const std::vector<TraceEvent> &events);

/**
 * Decode an EVENTS-section payload. Throws traceio::FormatError on a
 * malformed stream (unknown kind, decreasing ticks, truncation).
 * Convenience wrapper over EventDecoder for tests and small traces;
 * replay streams instead of calling this.
 */
std::vector<TraceEvent> decodeEvents(const std::string &payload);

} // namespace ubrc::trace

#endif // UBRC_TRACE_TRACE_FORMAT_HH
