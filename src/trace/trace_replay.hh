/**
 * @file
 * Trace replay: re-evaluate any registered OperandSupplier against a
 * recorded operand-event trace, without re-simulating the core.
 *
 * Two replay regimes, chosen automatically:
 *
 *  - **Exact** (the replay config's storageIdentity() equals the
 *    recorded one): every recorded event is re-issued verbatim, so a
 *    deterministic supplier walks through the identical call sequence
 *    and its statistics are bit-identical to the execution-driven
 *    run's.
 *
 *  - **Adaptive** (any other storage config, e.g. a different cache
 *    size or indexing policy): the reactive events that depended on
 *    the recorded supplier's internal state (OperandMiss, Fill,
 *    InsertDecision) are skipped and re-derived from the replayed
 *    supplier's own miss/insert outcomes. Timing feedback into the
 *    core (a different miss changing the schedule) is out of scope —
 *    the event stream's cycle placement stays the recorded one — so
 *    adaptive results are a storage-layer approximation, the standard
 *    trace-driven trade-off.
 *
 * The returned SimResult carries the recorded core-side counters
 * (cycles, instructions, branch counts, lifetime medians) from the
 * trace META block, combined with the freshly replayed supplier's
 * statistics, through the same derivation formulas as
 * Processor::result(); SimResult::trace marks it as replayed.
 */

#ifndef UBRC_TRACE_TRACE_REPLAY_HH
#define UBRC_TRACE_TRACE_REPLAY_HH

#include <functional>
#include <string>
#include <vector>

#include "core/processor.hh"
#include "trace/trace_format.hh"
#include "trace/trace_recorder.hh"

namespace ubrc::trace
{

/**
 * A loaded trace file. The event stream stays wire-encoded; replay
 * decodes it in a streaming pass (EventDecoder), so a trace of tens
 * of millions of events costs its file size in memory, not a
 * TraceEvent vector. Load once, replay against many configs.
 */
struct RecordedTrace
{
    uint32_t version = 0;
    TraceMeta meta;
    /** EVENTS-section payload (wire bytes, CRC-verified). */
    std::string events;
};

/**
 * Load and validate a trace file. Throws sim::TraceFormatError on a
 * missing/unreadable file, bad magic, CRC mismatch, truncation,
 * version skew, or malformed metadata. The event payload is CRC-
 * verified here but decoded lazily — malformed event bytes surface
 * as sim::TraceFormatError during replay.
 */
RecordedTrace loadTrace(const std::string &path);

/**
 * Cheap admission check: parse the container, version, and META block
 * without decoding the event stream. Used by the sweep server to
 * reject bad replay requests before queueing. Throws
 * sim::TraceFormatError like loadTrace().
 */
TraceMeta probeTraceFile(const std::string &path);

/**
 * Periodic replay callback (every 65536 replayed cycles), for
 * deadline/cancel checks; may throw a SimError to abort.
 */
using ReplayPoll = std::function<void(Cycle)>;

/**
 * Replay `trace` against the storage configuration of `config`,
 * returning the derived SimResult. In adaptive mode the replayed
 * supplier is sized to the recorded numPhysRegs (trace events index
 * physical registers of the recorded machine).
 */
core::SimResult replayTrace(const sim::SimConfig &config,
                            const RecordedTrace &trace,
                            const ReplayPoll &poll = {});

/**
 * A trace decoded into an in-memory event vector, for sweeps that
 * replay the same trace against many configurations: wire decoding is
 * the dominant cost of a single replay, and decodeTrace() pays it
 * once instead of once per configuration. Costs roughly 80 bytes per
 * retained event, so decode one workload at a time when sweeping a
 * whole suite.
 */
struct DecodedTrace
{
    uint32_t version = 0;
    TraceMeta meta;
    /** Event kinds (1 << kind) dropped at decode time. */
    uint32_t skipMask = 0;
    std::vector<TraceEvent> events;
};

/**
 * The event-kind skip mask replayTrace() would use for `config`:
 * optional notification kinds (storage::OptionalNotifications) the
 * configured supplier declares it ignores. Pass to decodeTrace() so
 * the decoded vector drops them up front. Throws like
 * storage::makeSupplier on an invalid config.
 */
uint32_t replaySkipMask(const sim::SimConfig &config);

/**
 * Decode `trace` once, dropping event kinds in `skip_mask`. Throws
 * sim::TraceFormatError on malformed event bytes.
 */
DecodedTrace decodeTrace(const RecordedTrace &trace,
                         uint32_t skip_mask = 0);

/**
 * Replay a pre-decoded trace; identical results to replayTrace() on
 * the same source. Throws sim::TraceFormatError if `trace` was
 * decoded with a skip mask dropping event kinds the configured
 * supplier reacts to (use replaySkipMask(config), or a subset).
 */
core::SimResult replayDecoded(const sim::SimConfig &config,
                              const DecodedTrace &trace,
                              const ReplayPoll &poll = {});

/**
 * Convenience: load `<config.traceDir>/<workload_name>.ubrct` and
 * replay it. The trace's recorded workload name must match.
 */
core::SimResult replayRun(const sim::SimConfig &config,
                          const std::string &workload_name,
                          const ReplayPoll &poll = {});

} // namespace ubrc::trace

#endif // UBRC_TRACE_TRACE_REPLAY_HH
