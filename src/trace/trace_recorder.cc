#include "trace/trace_recorder.hh"

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include "common/json.hh"
#include "common/trace_io.hh"
#include "regcache/policies.hh"
#include "sim/config.hh"
#include "sim/sim_error.hh"

namespace ubrc::trace
{

namespace
{

/** Extract one named scalar from a stat group (0 when absent). */
struct ScalarFinder : stats::StatVisitor
{
    explicit ScalarFinder(std::string stat_name)
        : want(std::move(stat_name))
    {}

    void
    visitScalar(const std::string &name, const stats::Scalar &s) override
    {
        if (name == want)
            found = s.value();
    }

    void visitMean(const std::string &, const stats::Mean &) override {}
    void visitDistribution(const std::string &,
                           const stats::Distribution &) override
    {}

    std::string want;
    uint64_t found = 0;
};

uint64_t
metaU64(const json::Value &doc, const char *key)
{
    const json::Value *v = doc.find(key);
    if (!v || !v->isNumber() || v->number < 0)
        throw traceio::FormatError(
            std::string("trace meta: missing or invalid field '") +
            key + "'");
    return static_cast<uint64_t>(v->number);
}

std::string
metaStr(const json::Value &doc, const char *key)
{
    const json::Value *v = doc.find(key);
    if (!v || !v->isString())
        throw traceio::FormatError(
            std::string("trace meta: missing or invalid field '") +
            key + "'");
    return v->string;
}

} // namespace

std::string
storageIdentity(const sim::SimConfig &cfg)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "scheme=%s rf_latency=%lld backing_latency=%lld "
        "num_phys_regs=%u "
        "rc={entries=%u assoc=%u insertion=%s replacement=%s "
        "indexing=%s max_use=%u unknown_default=%u fill_default=%u "
        "high_use_threshold=%u} "
        "dou={entries=%u assoc=%u tag_bits=%u pred_bits=%u conf_max=%u "
        "conf_threshold=%u ctrl_bits=%u} "
        "two_level={l1_entries=%u free_threshold=%u bandwidth=%u "
        "l2_latency=%lld} "
        "classify_misses=%d",
        sim::toString(cfg.scheme),
        static_cast<long long>(cfg.rfLatency),
        static_cast<long long>(cfg.backingLatency), cfg.numPhysRegs,
        cfg.rc.entries, cfg.rc.assoc,
        regcache::toString(cfg.rc.insertion),
        regcache::toString(cfg.rc.replacement),
        regcache::toString(cfg.rc.indexing), cfg.rc.maxUse,
        cfg.rc.unknownDefault, cfg.rc.fillDefault,
        cfg.rc.highUseThreshold, cfg.dou.entries, cfg.dou.assoc,
        cfg.dou.tagBits, cfg.dou.predBits, cfg.dou.confMax,
        cfg.dou.confThreshold, cfg.dou.ctrlBits,
        cfg.twoLevel.l1Entries, cfg.twoLevel.freeThreshold,
        cfg.twoLevel.bandwidth,
        static_cast<long long>(cfg.twoLevel.l2Latency),
        cfg.classifyMisses ? 1 : 0);
    return buf;
}

std::string
fnv1aHex(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
traceFilePath(const std::string &dir, const std::string &workload)
{
    return dir + "/" + workload + traceFileExtension;
}

std::string
encodeMeta(const TraceMeta &m)
{
    json::Writer w(false);
    w.beginObject();
    w.field("workload", m.workload);
    w.field("max_insts", m.maxInsts);
    w.field("scheme", m.scheme);
    w.field("config", m.configDescribe);
    w.field("identity", m.identity);
    w.field("identity_hash", m.identityHash);
    w.field("num_phys_regs", m.numPhysRegs);
    w.field("cycles", m.cycles);
    w.field("insts_retired", m.instsRetired);
    w.field("op_file_fill_reads", m.opFileFillReads);
    w.field("values_produced", m.valuesProduced);
    w.field("branches_retired", m.branchesRetired);
    w.field("branch_mispredicts", m.branchMispredicts);
    w.field("mini_replays", m.miniReplays);
    w.field("issue_group_squashes", m.issueGroupSquashes);
    w.field("mem_order_violations", m.memOrderViolations);
    w.field("fetch_blocks", m.fetchBlocks);
    w.field("rename_stalls_regs", m.renameStallsRegs);
    w.field("rename_stalls_rob", m.renameStallsRob);
    w.field("rename_stalls_iq", m.renameStallsIq);
    w.field("median_empty_time", m.medianEmptyTime);
    w.field("median_live_time", m.medianLiveTime);
    w.field("median_dead_time", m.medianDeadTime);
    w.field("allocated_p50", m.allocatedP50);
    w.field("allocated_p90", m.allocatedP90);
    w.field("live_p50", m.liveP50);
    w.field("live_p90", m.liveP90);
    w.endObject();
    return w.str();
}

TraceMeta
parseMeta(const std::string &json_text)
{
    json::Value doc;
    try {
        doc = json::parse(json_text);
    } catch (const json::ParseError &e) {
        throw traceio::FormatError(
            std::string("trace meta: invalid JSON: ") + e.what());
    }
    if (!doc.isObject())
        throw traceio::FormatError(
            "trace meta: top level is not an object");

    TraceMeta m;
    m.workload = metaStr(doc, "workload");
    m.maxInsts = metaU64(doc, "max_insts");
    m.scheme = metaStr(doc, "scheme");
    m.configDescribe = metaStr(doc, "config");
    m.identity = metaStr(doc, "identity");
    m.identityHash = metaStr(doc, "identity_hash");
    m.numPhysRegs = metaU64(doc, "num_phys_regs");
    m.cycles = metaU64(doc, "cycles");
    m.instsRetired = metaU64(doc, "insts_retired");
    m.opFileFillReads = metaU64(doc, "op_file_fill_reads");
    m.valuesProduced = metaU64(doc, "values_produced");
    m.branchesRetired = metaU64(doc, "branches_retired");
    m.branchMispredicts = metaU64(doc, "branch_mispredicts");
    m.miniReplays = metaU64(doc, "mini_replays");
    m.issueGroupSquashes = metaU64(doc, "issue_group_squashes");
    m.memOrderViolations = metaU64(doc, "mem_order_violations");
    m.fetchBlocks = metaU64(doc, "fetch_blocks");
    m.renameStallsRegs = metaU64(doc, "rename_stalls_regs");
    m.renameStallsRob = metaU64(doc, "rename_stalls_rob");
    m.renameStallsIq = metaU64(doc, "rename_stalls_iq");
    m.medianEmptyTime = metaU64(doc, "median_empty_time");
    m.medianLiveTime = metaU64(doc, "median_live_time");
    m.medianDeadTime = metaU64(doc, "median_dead_time");
    m.allocatedP50 = metaU64(doc, "allocated_p50");
    m.allocatedP90 = metaU64(doc, "allocated_p90");
    m.liveP50 = metaU64(doc, "live_p50");
    m.liveP90 = metaU64(doc, "live_p90");
    return m;
}

RecordingSupplier::RecordingSupplier(
    std::unique_ptr<storage::OperandSupplier> wrapped,
    TraceRecorder &recorder, const sim::SimConfig &config,
    stats::StatGroup &stat_group)
    : OperandSupplier(config, stat_group), inner(std::move(wrapped)),
      rec(recorder)
{}

const char *
RecordingSupplier::name() const
{
    return inner->name();
}

bool
RecordingSupplier::canAllocateDest() const
{
    return inner->canAllocateDest();
}

void
RecordingSupplier::onConsumerRenamed(PhysReg src, uint32_t actual_uses,
                                     Addr producer_pc,
                                     uint64_t producer_ctrl)
{
    rec.push(EventKind::ConsumerRenamed, rec.lastTick,
             static_cast<uint64_t>(src), actual_uses, producer_pc,
             producer_ctrl);
    inner->onConsumerRenamed(src, actual_uses, producer_pc,
                             producer_ctrl);
}

storage::DestAlloc
RecordingSupplier::allocateDest(PhysReg preg, Addr pc, uint64_t ctrl)
{
    rec.push(EventKind::AllocDest, rec.lastTick,
             static_cast<uint64_t>(preg), pc, ctrl);
    return inner->allocateDest(preg, pc, ctrl);
}

void
RecordingSupplier::onInitialValue(PhysReg preg)
{
    rec.push(EventKind::InitialValue, rec.lastTick,
             static_cast<uint64_t>(preg));
    inner->onInitialValue(preg);
}

void
RecordingSupplier::onArchReassigned(PhysReg prev)
{
    rec.push(EventKind::ArchReassigned, rec.lastTick,
             static_cast<uint64_t>(prev));
    inner->onArchReassigned(prev);
}

void
RecordingSupplier::onArchReassignCancelled(PhysReg prev)
{
    rec.push(EventKind::ArchReassignCancelled, rec.lastTick,
             static_cast<uint64_t>(prev));
    inner->onArchReassignCancelled(prev);
}

Cycle
RecordingSupplier::issueReadGate(Cycle exec_start,
                                 Cycle producer_done) const
{
    return inner->issueReadGate(exec_start, producer_done);
}

bool
RecordingSupplier::hasIssueReadGate() const
{
    return inner->hasIssueReadGate();
}

void
RecordingSupplier::onBypassRead(PhysReg src, bool first_stage)
{
    rec.push(EventKind::BypassRead, rec.lastTick,
             static_cast<uint64_t>(src), first_stage ? 1 : 0);
    inner->onBypassRead(src, first_stage);
}

storage::ReadResult
RecordingSupplier::readOperand(PhysReg src, Cycle now)
{
    rec.push(EventKind::ReadOperand, now, static_cast<uint64_t>(src));
    const storage::ReadResult r = inner->readOperand(src, now);
    if (r == storage::ReadResult::File)
        ++rec.fileReadResults;
    return r;
}

Cycle
RecordingSupplier::onOperandMiss(PhysReg src, Cycle exec_start)
{
    rec.push(EventKind::OperandMiss, exec_start,
             static_cast<uint64_t>(src));
    return inner->onOperandMiss(src, exec_start);
}

bool
RecordingSupplier::onFill(PhysReg preg, Cycle now)
{
    rec.push(EventKind::Fill, now, static_cast<uint64_t>(preg));
    return inner->onFill(preg, now);
}

void
RecordingSupplier::onConsumerDone(PhysReg src)
{
    rec.push(EventKind::ConsumerDone, rec.lastTick,
             static_cast<uint64_t>(src));
    inner->onConsumerDone(src);
}

storage::WriteOutcome
RecordingSupplier::onValueProduced(PhysReg preg, Cycle now)
{
    rec.push(EventKind::ValueProduced, now,
             static_cast<uint64_t>(preg));
    return inner->onValueProduced(preg, now);
}

void
RecordingSupplier::onInsertDecision(PhysReg preg, Cycle now)
{
    rec.push(EventKind::InsertDecision, now,
             static_cast<uint64_t>(preg));
    inner->onInsertDecision(preg, now);
}

void
RecordingSupplier::onProducerRetired(PhysReg dest)
{
    rec.push(EventKind::ProducerRetired, rec.lastTick,
             static_cast<uint64_t>(dest));
    inner->onProducerRetired(dest);
}

void
RecordingSupplier::onValueFreed(PhysReg preg, Addr producer_pc,
                                uint64_t producer_ctrl,
                                uint32_t actual_uses, Cycle now)
{
    rec.push(EventKind::ValueFreed, now, static_cast<uint64_t>(preg),
             producer_pc, producer_ctrl, actual_uses);
    inner->onValueFreed(preg, producer_pc, producer_ctrl, actual_uses,
                        now);
}

void
RecordingSupplier::onDestSquashed(PhysReg dest, Cycle now)
{
    rec.push(EventKind::DestSquashed, now,
             static_cast<uint64_t>(dest));
    inner->onDestSquashed(dest, now);
}

bool
RecordingSupplier::needsRecovery() const
{
    // Always capture post-squash mappings: schemes with a no-op
    // recoverMappings() return an empty displaced list, which the core
    // ignores, so recording them is execution-neutral.
    return true;
}

storage::RecoveryResult
RecordingSupplier::recoverMappings(const std::vector<PhysReg> &mapped,
                                   Cycle now)
{
    rec.pushRegs(EventKind::RecoverMappings, now, mapped);
    return inner->recoverMappings(mapped, now);
}

void
RecordingSupplier::tick(Cycle now)
{
    rec.lastTick = now;
    inner->tick(now);
}

void
RecordingSupplier::sampleCycleStats()
{
    inner->sampleCycleStats();
}

std::vector<storage::CacheEntryView>
RecordingSupplier::cachedEntries() const
{
    return inner->cachedEntries();
}

unsigned
RecordingSupplier::cacheSets() const
{
    return inner->cacheSets();
}

unsigned
RecordingSupplier::cacheAssoc() const
{
    return inner->cacheAssoc();
}

bool
RecordingSupplier::corruptUseCounter(PhysReg preg, unsigned set,
                                     unsigned bit)
{
    return inner->corruptUseCounter(preg, set, bit);
}

storage::SupplierStats
RecordingSupplier::stats() const
{
    return inner->stats();
}

core::Processor::SupplierWrap
recordingWrap(TraceRecorder &recorder)
{
    return [&recorder](std::unique_ptr<storage::OperandSupplier> inner,
                       const sim::SimConfig &config,
                       stats::StatGroup &stat_group) {
        return std::make_unique<RecordingSupplier>(
            std::move(inner), recorder, config, stat_group);
    };
}

TraceMeta
buildTraceMeta(const sim::SimConfig &cfg,
               const std::string &workload_name,
               const core::Processor &proc,
               const TraceRecorder &recorder)
{
    const core::SimResult r = proc.result();

    TraceMeta m;
    m.workload = workload_name;
    m.maxInsts = cfg.maxInsts;
    m.scheme = sim::toString(cfg.scheme);
    m.configDescribe = cfg.describe();
    m.identity = storageIdentity(cfg);
    m.identityHash = fnv1aHex(m.identity);
    m.numPhysRegs = cfg.numPhysRegs;

    m.cycles = r.cycles;
    m.instsRetired = r.instsRetired;
    m.opFileFillReads = r.opFile >= recorder.fileReadResults
                            ? r.opFile - recorder.fileReadResults
                            : 0;
    m.valuesProduced = r.valuesProduced;
    m.branchMispredicts = r.branchMispredicts;
    m.miniReplays = r.miniReplays;
    m.issueGroupSquashes = r.issueGroupSquashes;
    m.memOrderViolations = r.memOrderViolations;
    m.fetchBlocks = r.fetchBlocks;
    m.renameStallsRegs = r.renameStallsRegs;
    m.renameStallsRob = r.renameStallsRob;
    m.renameStallsIq = r.renameStallsIq;
    m.medianEmptyTime = r.medianEmptyTime;
    m.medianLiveTime = r.medianLiveTime;
    m.medianDeadTime = r.medianDeadTime;
    m.allocatedP50 = r.allocatedP50;
    m.allocatedP90 = r.allocatedP90;
    m.liveP50 = r.liveP50;
    m.liveP90 = r.liveP90;

    ScalarFinder branches("branches_retired");
    proc.statsGroup().visit(branches);
    m.branchesRetired = branches.found;
    return m;
}

std::string
writeRecordedTrace(const sim::SimConfig &cfg,
                   const std::string &workload_name,
                   const core::Processor &proc,
                   const TraceRecorder &recorder,
                   const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    traceio::TraceWriter w(traceVersion);
    w.section(traceio::sectionMeta,
              encodeMeta(buildTraceMeta(cfg, workload_name, proc,
                                        recorder)));

    // Chunk the event stream so no single section balloons; the
    // reader concatenates EVENTS payloads back together. The recorder
    // already holds wire bytes, so this is pure framing.
    static constexpr size_t chunkBytes = 1u << 20;
    const std::string &events = recorder.wire;
    if (events.empty()) {
        w.section(traceio::sectionEvents, events);
    } else {
        for (size_t off = 0; off < events.size(); off += chunkBytes)
            w.section(traceio::sectionEvents,
                      std::string_view(events).substr(off, chunkBytes));
    }

    const std::string path = traceFilePath(dir, workload_name);
    if (!w.writeFile(path))
        throw sim::TraceFormatError("cannot write trace file '" +
                                    path + "'");
    return path;
}

} // namespace ubrc::trace
