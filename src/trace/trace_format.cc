#include "trace/trace_format.hh"

#include <string>

#include "common/trace_io.hh"

namespace ubrc::trace
{

namespace
{

[[noreturn]] void
bad(const std::string &what)
{
    throw traceio::FormatError("trace events: " + what);
}

/** Fast-path slack: the longest fixed-arg event is 61 bytes (a
 *  10-byte delta varint, the kind byte, a 10-byte zigzag, four
 *  10-byte args), and every varint self-limits to 10 bytes. */
constexpr ptrdiff_t fastSlackBytes = 64;

[[noreturn]] void
overrun(const uint8_t *p, const uint8_t *base)
{
    bad("unexpected end of payload at offset " +
        std::to_string(p - base));
}

template <bool Checked>
inline uint64_t
readVarint(const uint8_t *&p, const uint8_t *end,
           const uint8_t *base)
{
    if (Checked && p == end)
        overrun(p, base);
    uint64_t v = *p++;
    if (!(v & 0x80))
        return v;
    v &= 0x7f;
    unsigned shift = 7;
    while (true) {
        if (Checked && p == end)
            overrun(p, base);
        const uint64_t b = *p++;
        v |= (b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            bad("varint wider than 64 bits at offset " +
                std::to_string(p - base));
    }
}

template <bool Checked>
inline int64_t
readZigzag(const uint8_t *&p, const uint8_t *end,
           const uint8_t *base)
{
    const uint64_t u = readVarint<Checked>(p, end, base);
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

} // namespace

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::InitialValue:
        return "initial_value";
      case EventKind::ConsumerRenamed:
        return "consumer_renamed";
      case EventKind::AllocDest:
        return "alloc_dest";
      case EventKind::ArchReassigned:
        return "arch_reassigned";
      case EventKind::ArchReassignCancelled:
        return "arch_reassign_cancelled";
      case EventKind::BypassRead:
        return "bypass_read";
      case EventKind::ReadOperand:
        return "read_operand";
      case EventKind::OperandMiss:
        return "operand_miss";
      case EventKind::Fill:
        return "fill";
      case EventKind::ConsumerDone:
        return "consumer_done";
      case EventKind::ValueProduced:
        return "value_produced";
      case EventKind::InsertDecision:
        return "insert_decision";
      case EventKind::ProducerRetired:
        return "producer_retired";
      case EventKind::ValueFreed:
        return "value_freed";
      case EventKind::DestSquashed:
        return "dest_squashed";
      case EventKind::RecoverMappings:
        return "recover_mappings";
    }
    return "unknown";
}

unsigned
argCountOf(EventKind kind)
{
    switch (kind) {
      case EventKind::ConsumerRenamed:
      case EventKind::ValueFreed:
        return 4;
      case EventKind::AllocDest:
        return 3;
      case EventKind::BypassRead:
        return 2;
      case EventKind::RecoverMappings:
        return 0;
      default:
        return 1;
    }
}

void
appendEvent(std::string &out, const TraceEvent &e, Cycle &prev_tick)
{
    traceio::putVarint(out,
                       static_cast<uint64_t>(e.tick - prev_tick));
    out.push_back(static_cast<char>(e.kind));
    traceio::putZigzag(out, e.arg - e.tick);
    const uint64_t args[4] = {e.a, e.b, e.c, e.d};
    for (unsigned i = 0; i < argCountOf(e.kind); ++i)
        traceio::putVarint(out, args[i]);
    if (e.kind == EventKind::RecoverMappings) {
        traceio::putVarint(out, e.regs.size());
        for (PhysReg p : e.regs)
            traceio::putVarint(out, static_cast<uint64_t>(p));
    }
    prev_tick = e.tick;
}

template <bool Checked>
bool
EventDecoder::decodeOne(TraceEvent &e)
{
    const Cycle tick =
        prev + static_cast<Cycle>(readVarint<Checked>(p, end, base));
    if (tick < prev)
        bad("tick overflow at offset " + std::to_string(p - base));
    prev = tick;
    if (Checked && p == end)
        overrun(p, base);
    const uint8_t kind = *p++;
    if (kind >= numEventKinds)
        bad("unknown event kind " + std::to_string(kind) +
            " at offset " + std::to_string(p - base));

    // The register list (RecoverMappings) is unbounded, so it is
    // always decoded with per-byte checks; the count varint alone can
    // also exceed the fixed-arg slack.
    auto readRegs = [&](std::vector<PhysReg> *out) {
        const uint64_t n = readVarint<true>(p, end, base);
        if (n > static_cast<uint64_t>(end - p))
            bad("recover_mappings register count " +
                std::to_string(n) + " exceeds payload size");
        if (out) {
            out->reserve(n);
            for (uint64_t i = 0; i < n; ++i)
                out->push_back(static_cast<PhysReg>(
                    readVarint<true>(p, end, base)));
        } else {
            for (uint64_t i = 0; i < n; ++i)
                readVarint<true>(p, end, base);
        }
    };

    if (skipMask & (1u << kind)) {
        readVarint<Checked>(p, end, base); // zigzag arg
        const unsigned n = argCountOf(static_cast<EventKind>(kind));
        for (unsigned i = 0; i < n; ++i)
            readVarint<Checked>(p, end, base);
        if (kind == static_cast<uint8_t>(EventKind::RecoverMappings))
            readRegs(nullptr);
        return false;
    }

    e.tick = tick;
    e.kind = static_cast<EventKind>(kind);
    e.arg = tick + readZigzag<Checked>(p, end, base);
    uint64_t args[4] = {0, 0, 0, 0};
    const unsigned n = argCountOf(e.kind);
    for (unsigned i = 0; i < n; ++i)
        args[i] = readVarint<Checked>(p, end, base);
    e.a = args[0];
    e.b = args[1];
    e.c = args[2];
    e.d = args[3];
    e.regs.clear();
    if (e.kind == EventKind::RecoverMappings)
        readRegs(&e.regs);
    return true;
}

bool
EventDecoder::next(TraceEvent &e)
{
    while (p != end) {
        const bool surfaced = end - p >= fastSlackBytes
                                  ? decodeOne<false>(e)
                                  : decodeOne<true>(e);
        if (surfaced)
            return true;
    }
    return false;
}

std::string
encodeEvents(const std::vector<TraceEvent> &events)
{
    std::string out;
    Cycle prev = 0;
    for (const auto &e : events)
        appendEvent(out, e, prev);
    return out;
}

std::vector<TraceEvent>
decodeEvents(const std::string &payload)
{
    std::vector<TraceEvent> events;
    EventDecoder dec(payload);
    TraceEvent e;
    while (dec.next(e))
        events.push_back(e);
    return events;
}

} // namespace ubrc::trace
