#include "trace/trace_replay.hh"

#include <algorithm>
#include <queue>
#include <tuple>
#include <utility>

#include "common/trace_io.hh"
#include "sim/config.hh"
#include "sim/sim_error.hh"
#include "storage/supplier_registry.hh"

namespace ubrc::trace
{

namespace
{

[[noreturn]] void
bad(const std::string &what)
{
    throw sim::TraceFormatError(what);
}

/** Container + version + META checks shared by load and probe. */
traceio::TraceContainer
openTrace(const std::string &path)
{
    traceio::TraceContainer c;
    try {
        c = traceio::readTraceFile(path);
    } catch (const traceio::FormatError &e) {
        std::string msg = e.what();
        if (msg.find(path) == std::string::npos)
            msg += " (file '" + path + "')";
        bad(msg);
    }
    if (c.version != traceVersion)
        bad("trace version skew: file '" + path + "' has version " +
            std::to_string(c.version) + ", this build reads version " +
            std::to_string(traceVersion));
    if (!c.has(traceio::sectionMeta))
        bad("trace file '" + path + "' has no META section");
    if (!c.has(traceio::sectionEvents))
        bad("trace file '" + path + "' has no EVENTS section");
    return c;
}

TraceMeta
metaOf(const traceio::TraceContainer &c)
{
    try {
        return parseMeta(c.payload(traceio::sectionMeta));
    } catch (const traceio::FormatError &e) {
        bad(e.what());
    }
}

/** An adaptive-mode deferred supplier callback (fill or insert). */
struct PendingDelivery
{
    Cycle due;
    uint64_t seq; ///< schedule order; ties resolve deterministically
    enum class Type : uint8_t { Fill, Insert } type;
    PhysReg preg;
    uint64_t gen; ///< value generation the callback belongs to
};

struct PendingLater
{
    bool
    operator()(const PendingDelivery &a, const PendingDelivery &b) const
    {
        return std::tie(a.due, a.seq) > std::tie(b.due, b.seq);
    }
};

} // namespace

RecordedTrace
loadTrace(const std::string &path)
{
    const traceio::TraceContainer c = openTrace(path);
    RecordedTrace t;
    t.version = c.version;
    t.meta = metaOf(c);
    t.events = c.payload(traceio::sectionEvents);
    return t;
}

TraceMeta
probeTraceFile(const std::string &path)
{
    return metaOf(openTrace(path));
}

namespace
{

/**
 * Event kinds (1 << kind) the supplier declared it ignores
 * (storage::OptionalNotifications). Replay skips them — parsed past
 * without being surfaced — which removes a third or more of a typical
 * trace's delivery volume. Only kinds whose base handlers are no-ops
 * are eligible; the exact-fidelity tests would catch an untruthful
 * declaration.
 */
uint32_t
supplierSkipMask(const storage::OperandSupplier &s)
{
    const storage::OptionalNotifications ni = s.optionalNotifications();
    uint32_t skip = 0;
    if (!ni.consumerDone)
        skip |= 1u << unsigned(EventKind::ConsumerDone);
    if (!ni.archReassign)
        skip |= (1u << unsigned(EventKind::ArchReassigned)) |
                (1u << unsigned(EventKind::ArchReassignCancelled));
    if (!ni.producerRetired)
        skip |= 1u << unsigned(EventKind::ProducerRetired);
    return skip;
}

/**
 * The replay loop shared by the wire-streaming and pre-decoded entry
 * points. `nextEvent()` yields the next (already skip-filtered) event
 * or nullptr at stream end; the pointed-to event must stay valid
 * until the following call. `cfg` must already be prepared (trace
 * mode off, numPhysRegs forced to the recorded machine's).
 */
template <class NextEvent>
core::SimResult
replayCore(const sim::SimConfig &cfg, bool exact, uint32_t version,
           const TraceMeta &meta, storage::OperandSupplier *supplier,
           NextEvent &&nextEvent, const ReplayPoll &poll)
{
    uint64_t opBypass = 0, opCache = 0, opFileReads = 0;
    uint64_t derivedMisses = 0;

    // Adaptive mode: per-preg liveness generation so a deferred fill
    // or insert never lands on a since-freed (or re-allocated) value.
    struct ValueGen
    {
        bool alive = false;
        uint64_t gen = 0;
    };
    std::vector<ValueGen> live(cfg.numPhysRegs);
    std::priority_queue<PendingDelivery, std::vector<PendingDelivery>,
                        PendingLater>
        pending;
    uint64_t pendingSeq = 0;

    auto checkPreg = [&](uint64_t p) -> PhysReg {
        if (p >= live.size())
            bad("trace event references physical register " +
                std::to_string(p) + " outside the recorded file of " +
                std::to_string(live.size()));
        return static_cast<PhysReg>(p);
    };

    auto deliver = [&](const TraceEvent &e, Cycle c) {
        switch (e.kind) {
          case EventKind::InitialValue: {
            const PhysReg p = checkPreg(e.a);
            live[size_t(p)] = {true, live[size_t(p)].gen + 1};
            supplier->onInitialValue(p);
            break;
          }
          case EventKind::ConsumerRenamed:
            supplier->onConsumerRenamed(checkPreg(e.a),
                                        static_cast<uint32_t>(e.b),
                                        e.c, e.d);
            break;
          case EventKind::AllocDest: {
            const PhysReg p = checkPreg(e.a);
            live[size_t(p)] = {true, live[size_t(p)].gen + 1};
            supplier->allocateDest(p, e.b, e.c);
            break;
          }
          case EventKind::ArchReassigned:
            supplier->onArchReassigned(checkPreg(e.a));
            break;
          case EventKind::ArchReassignCancelled:
            supplier->onArchReassignCancelled(checkPreg(e.a));
            break;
          case EventKind::BypassRead:
            ++opBypass;
            supplier->onBypassRead(checkPreg(e.a), e.b != 0);
            break;
          case EventKind::ReadOperand: {
            const PhysReg p = checkPreg(e.a);
            switch (supplier->readOperand(p, e.arg)) {
              case storage::ReadResult::File:
                ++opFileReads;
                break;
              case storage::ReadResult::CacheHit:
                ++opCache;
                break;
              case storage::ReadResult::CacheMiss:
                if (!exact) {
                    // Derive the miss the recorded stream cannot
                    // know about: classify it now, fill it when the
                    // backing read completes.
                    ++derivedMisses;
                    const Cycle done = supplier->onOperandMiss(p, e.arg);
                    pending.push({std::max(done, c + 1), pendingSeq++,
                                  PendingDelivery::Type::Fill, p,
                                  live[size_t(p)].gen});
                }
                // Exact mode: the recorded OperandMiss/Fill events
                // that followed this miss are re-issued verbatim.
                break;
            }
            break;
          }
          case EventKind::OperandMiss:
            if (exact)
                supplier->onOperandMiss(checkPreg(e.a), e.arg);
            break;
          case EventKind::Fill:
            if (exact)
                supplier->onFill(checkPreg(e.a), e.arg);
            break;
          case EventKind::ConsumerDone:
            supplier->onConsumerDone(checkPreg(e.a));
            break;
          case EventKind::ValueProduced: {
            const PhysReg p = checkPreg(e.a);
            const storage::WriteOutcome out =
                supplier->onValueProduced(p, e.arg);
            if (!exact && out.insertDecisionNextCycle)
                pending.push({c + 1, pendingSeq++,
                              PendingDelivery::Type::Insert, p,
                              live[size_t(p)].gen});
            break;
          }
          case EventKind::InsertDecision:
            if (exact)
                supplier->onInsertDecision(checkPreg(e.a), e.arg);
            break;
          case EventKind::ProducerRetired:
            supplier->onProducerRetired(checkPreg(e.a));
            break;
          case EventKind::ValueFreed: {
            const PhysReg p = checkPreg(e.a);
            live[size_t(p)].alive = false;
            supplier->onValueFreed(p, e.b, e.c,
                                   static_cast<uint32_t>(e.d), e.arg);
            break;
          }
          case EventKind::DestSquashed: {
            const PhysReg p = checkPreg(e.a);
            live[size_t(p)].alive = false;
            supplier->onDestSquashed(p, e.arg);
            break;
          }
          case EventKind::RecoverMappings:
            // Execution only routes this to suppliers that ask.
            if (supplier->needsRecovery()) {
                for (const PhysReg p : e.regs)
                    checkPreg(static_cast<uint64_t>(p));
                supplier->recoverMappings(e.regs, e.arg);
            }
            break;
        }
    };

    const TraceEvent *ev = nextEvent();

    // Construction-time events precede the first tick.
    while (ev && ev->tick == 0) {
        deliver(*ev, 0);
        ev = nextEvent();
    }

    const Cycle cycles = static_cast<Cycle>(meta.cycles);
    for (Cycle c = 1; c <= cycles; ++c) {
        supplier->tick(c);
        while (!pending.empty() && pending.top().due <= c) {
            const PendingDelivery p = pending.top();
            pending.pop();
            const ValueGen &vg = live[size_t(p.preg)];
            if (!vg.alive || vg.gen != p.gen)
                continue; // value freed/squashed before delivery
            if (p.type == PendingDelivery::Type::Fill)
                supplier->onFill(p.preg, c);
            else
                supplier->onInsertDecision(p.preg, c);
        }
        while (ev && ev->tick == c) {
            deliver(*ev, c);
            ev = nextEvent();
        }
        supplier->sampleCycleStats();
        if (poll && (c & 0xffff) == 0)
            poll(c);
    }

    if (ev)
        bad("trace has event(s) beyond the recorded cycle count of " +
            std::to_string(meta.cycles));

    // Derive the result exactly as Processor::result() does, feeding
    // the recorded core-side counters where replay has no core.
    core::SimResult r;
    r.cycles = meta.cycles;
    r.instsRetired = meta.instsRetired;
    r.ipc = r.cycles ? static_cast<double>(r.instsRetired) /
                           static_cast<double>(r.cycles)
                     : 0.0;

    r.opBypass = opBypass;
    r.opCache = opCache;
    r.opFile =
        opFileReads + (exact ? meta.opFileFillReads : derivedMisses);
    const uint64_t ops = r.operandReads();
    r.bypassFraction =
        ops ? static_cast<double>(r.opBypass) / static_cast<double>(ops)
            : 0.0;

    const storage::SupplierStats ss = supplier->stats();
    r.supplier = ss;
    r.rcMisses = ss.misses;
    r.rcMissNoWrite = ss.missNoWrite;
    r.rcMissConflict = ss.missConflict;
    r.rcMissCapacity = ss.missCapacity;
    r.missPerOperand =
        ops ? static_cast<double>(r.rcMisses) / static_cast<double>(ops)
            : 0.0;

    r.valuesProduced = meta.valuesProduced;
    r.writesFiltered = ss.writesFiltered;
    r.valuesNeverCached = ss.valuesNeverCached;
    r.miniReplays = meta.miniReplays;
    r.issueGroupSquashes = meta.issueGroupSquashes;
    r.branchMispredicts = meta.branchMispredicts;
    r.memOrderViolations = meta.memOrderViolations;

    r.branchMispredictRate =
        meta.branchesRetired
            ? static_cast<double>(r.branchMispredicts) /
                  static_cast<double>(meta.branchesRetired)
            : 0.0;
    r.douAccuracy = ss.douAccuracy;

    if (ss.hasCache) {
        r.rcInserts = ss.inserts;
        r.rcFills = ss.fills;
        r.avgOccupancy = ss.avgOccupancy;
        r.avgEntryLifetime = ss.avgEntryLifetime;
        r.readsPerCachedValue = ss.readsPerCachedValue;
        r.cachedTotal = r.rcInserts + r.rcFills;
        r.cachedNeverRead = ss.entriesNeverRead;
        r.cacheCountPerValue =
            r.valuesProduced
                ? static_cast<double>(r.cachedTotal) /
                      static_cast<double>(r.valuesProduced)
                : 0.0;
        r.zeroUseVictimFraction = ss.zeroUseVictimFraction;

        r.cacheReadBw = r.cycles ? static_cast<double>(ops) /
                                       static_cast<double>(r.cycles)
                                 : 0.0;
        r.cacheWriteBw =
            r.cycles ? static_cast<double>(r.cachedTotal) /
                           static_cast<double>(r.cycles)
                     : 0.0;
        r.fileReadBw = r.cycles
                           ? static_cast<double>(ss.fileReads) /
                                 static_cast<double>(r.cycles)
                           : 0.0;
        r.fileWriteBw = r.cycles
                            ? static_cast<double>(ss.fileWrites) /
                                  static_cast<double>(r.cycles)
                            : 0.0;
    }

    r.fetchBlocks = meta.fetchBlocks;
    r.renameStallsRegs = meta.renameStallsRegs;
    r.renameStallsRob = meta.renameStallsRob;
    r.renameStallsIq = meta.renameStallsIq;

    r.medianEmptyTime = meta.medianEmptyTime;
    r.medianLiveTime = meta.medianLiveTime;
    r.medianDeadTime = meta.medianDeadTime;
    r.allocatedP50 = meta.allocatedP50;
    r.allocatedP90 = meta.allocatedP90;
    r.liveP50 = meta.liveP50;
    r.liveP90 = meta.liveP90;

    r.trace.replayed = true;
    r.trace.exact = exact;
    r.trace.traceVersion = version;
    r.trace.sourceHash = meta.identityHash;
    return r;
}

/**
 * Prepare the driver-owned config copy every replay entry point
 * needs: trace mode off (the supplier holds a reference to this
 * config), physical register count forced to the recorded machine's
 * (trace events index its registers). Returns whether the replay is
 * exact (same storage identity as the recording).
 */
bool
prepareReplayConfig(sim::SimConfig &cfg, const TraceMeta &meta)
{
    cfg.traceMode = sim::TraceMode::Off;
    cfg.traceDir.clear();
    const bool exact = storageIdentity(cfg) == meta.identity;
    cfg.numPhysRegs = static_cast<unsigned>(meta.numPhysRegs);
    return exact;
}

} // namespace

core::SimResult
replayTrace(const sim::SimConfig &config, const RecordedTrace &trace,
            const ReplayPoll &poll)
{
    sim::SimConfig cfg = config;
    const bool exact = prepareReplayConfig(cfg, trace.meta);

    stats::StatGroup group("sim");
    auto supplier = storage::makeSupplier(cfg, group);

    // Stream the wire-encoded events: one reused TraceEvent, one
    // decoder pass, no materialized vector. Decoder errors are trace
    // format errors; SimErrors thrown by `poll` propagate untouched.
    EventDecoder dec(trace.events);
    dec.setSkipMask(supplierSkipMask(*supplier));
    TraceEvent ev;
    auto next = [&]() -> const TraceEvent * {
        try {
            return dec.next(ev) ? &ev : nullptr;
        } catch (const traceio::FormatError &e) {
            bad(e.what());
        }
    };
    return replayCore(cfg, exact, trace.version, trace.meta,
                      supplier.get(), next, poll);
}

uint32_t
replaySkipMask(const sim::SimConfig &config)
{
    sim::SimConfig cfg = config;
    cfg.traceMode = sim::TraceMode::Off;
    cfg.traceDir.clear();
    stats::StatGroup group("sim");
    return supplierSkipMask(*storage::makeSupplier(cfg, group));
}

DecodedTrace
decodeTrace(const RecordedTrace &trace, uint32_t skip_mask)
{
    DecodedTrace d;
    d.version = trace.version;
    d.meta = trace.meta;
    d.skipMask = skip_mask;
    EventDecoder dec(trace.events);
    dec.setSkipMask(skip_mask);
    TraceEvent e;
    try {
        while (dec.next(e))
            d.events.push_back(e);
    } catch (const traceio::FormatError &ex) {
        bad(ex.what());
    }
    return d;
}

core::SimResult
replayDecoded(const sim::SimConfig &config, const DecodedTrace &trace,
              const ReplayPoll &poll)
{
    sim::SimConfig cfg = config;
    const bool exact = prepareReplayConfig(cfg, trace.meta);

    stats::StatGroup group("sim");
    auto supplier = storage::makeSupplier(cfg, group);

    const uint32_t skip = supplierSkipMask(*supplier);
    if (trace.skipMask & ~skip)
        bad("decoded trace dropped event kind(s) the '" +
            std::string(supplier->name()) +
            "' supplier reacts to; re-decode with a skip mask from "
            "replaySkipMask() for this config");

    const TraceEvent *it = trace.events.data();
    const TraceEvent *const end = it + trace.events.size();
    auto next = [&]() -> const TraceEvent * {
        while (it != end) {
            const TraceEvent *e = it++;
            if (!(skip & (1u << unsigned(e->kind))))
                return e;
        }
        return nullptr;
    };
    return replayCore(cfg, exact, trace.version, trace.meta,
                      supplier.get(), next, poll);
}

core::SimResult
replayRun(const sim::SimConfig &config,
          const std::string &workload_name, const ReplayPoll &poll)
{
    const std::string path =
        traceFilePath(config.traceDir, workload_name);
    const RecordedTrace trace = loadTrace(path);
    if (trace.meta.workload != workload_name)
        bad("trace file '" + path + "' records workload '" +
            trace.meta.workload + "', not '" + workload_name + "'");
    return replayTrace(config, trace, poll);
}

} // namespace ubrc::trace
