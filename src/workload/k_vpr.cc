/**
 * @file
 * `vpr`-like kernel: simulated-annealing placement moves.
 *
 * VPR's placer repeatedly picks random cell pairs, computes a
 * fixed-point cost delta from their coordinates, and conditionally
 * swaps them. The accept/reject branch is data-dependent and poorly
 * predictable; fixed-point ops run on the long-latency "FP-class"
 * units. The in-register LCG reproduces VPR's random move generation.
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

constexpr uint64_t lcgMul = 6364136223846793005ULL;
constexpr uint64_t lcgAdd = 1442695040888963407ULL;

const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 {SEED}        ; LCG state
        .word64 0             ; accumulated cost
        .word64 0             ; accepted moves

        .code
start:  li   sp, {STACKTOP}
        li   s9, {NCALLS}
main:   call body
        addi s9, s9, -1
        bnez s9, main
        la   a7, state
        ld   s7, 8(a7)
        ld   s8, 16(a7)
        slli t0, s8, 40       ; fold accept count into checksum
        add  s7, s7, t0
        la   t1, result
        sd   s7, 0(t1)
        halt

body:   li   s0, {XBASE}
        li   s1, {YBASE}
        li   s2, {CHUNK}
        li   s4, {LCGMUL}     ; high-use constants, reloaded per call
        li   s5, {LCGADD}
        li   s6, {CELLMASK}
        la   a7, state
        ld   s3, 0(a7)        ; LCG state
        ld   s7, 8(a7)        ; accumulated cost
        ld   s8, 16(a7)       ; accepted moves
loop:   mul  s3, s3, s4       ; LCG step -> cell i
        add  s3, s3, s5
        srli t0, s3, 33
        and  t0, t0, s6
        mul  s3, s3, s4       ; LCG step -> cell j
        add  s3, s3, s5
        srli t1, s3, 33
        and  t1, t1, s6
        slli t2, t0, 3
        add  t2, t2, s0
        ld   t3, 0(t2)        ; x[i]
        slli t4, t1, 3
        add  t4, t4, s0
        ld   t5, 0(t4)        ; x[j]
        fxsub t6, t3, t5      ; dx
        srai t7, t6, 63       ; |dx| via sign trick
        xor  t6, t6, t7
        sub  t6, t6, t7
        slli a0, t0, 3
        add  a0, a0, s1
        ld   a1, 0(a0)        ; y[i]
        slli a2, t1, 3
        add  a2, a2, s1
        ld   a3, 0(a2)        ; y[j]
        fxsub a4, a1, a3      ; dy
        srai a5, a4, 63
        xor  a4, a4, a5
        sub  a4, a4, a5
        fxadd a6, t6, a4      ; cost = |dx| + |dy|
        add  s7, s7, a6
        andi a7, a6, {ACCEPTMASK} ; pseudo-random accept test
        bnez a7, reject
        sd   t5, 0(t2)        ; accept: swap x[i] <-> x[j]
        sd   t3, 0(t4)
        sd   a3, 0(a0)        ; and y[i] <-> y[j]
        sd   a1, 0(a2)
        addi s8, s8, 1
reject: addi s2, s2, -1
        bnez s2, loop
        la   a7, state        ; a7 was clobbered by the accept test
        sd   s3, 0(a7)
        sd   s7, 8(a7)
        sd   s8, 16(a7)
        ret
)";

constexpr uint64_t moveChunk = 256;

} // namespace

Workload
buildVpr(const WorkloadParams &p)
{
    const uint64_t n_cells = 4096;
    const uint64_t n_calls = 176 * p.scale;
    const uint64_t n_iter = n_calls * moveChunk;
    const uint64_t seed0 = p.seed * 0x1357u + 0x2468u;
    const Addr x_base = layout::dataBase;
    const Addr y_base = layout::dataBase2;
    constexpr uint64_t accept_mask = 7; // accept ~1/8 of moves

    Rng rng(p.seed * 0x3d99u + 31);
    std::vector<uint64_t> xs(n_cells), ys(n_cells);
    for (auto &v : xs)
        v = rng.below(1ULL << 40); // Q32.32 coordinates
    for (auto &v : ys)
        v = rng.below(1ULL << 40);

    // Reference model (exactly replays the in-register LCG).
    uint64_t cost = 0, accepted = 0;
    {
        std::vector<uint64_t> x = xs, y = ys;
        uint64_t s = seed0;
        for (uint64_t it = 0; it < n_iter; ++it) {
            s = s * lcgMul + lcgAdd;
            const uint64_t i = (s >> 33) & (n_cells - 1);
            s = s * lcgMul + lcgAdd;
            const uint64_t j = (s >> 33) & (n_cells - 1);
            auto abs64 = [](uint64_t v) {
                const int64_t sv = static_cast<int64_t>(v);
                return static_cast<uint64_t>(sv < 0 ? -sv : sv);
            };
            const uint64_t dx = abs64(x[i] - x[j]);
            const uint64_t dy = abs64(y[i] - y[j]);
            const uint64_t c = dx + dy;
            cost += c;
            if ((c & accept_mask) == 0) {
                std::swap(x[i], x[j]);
                std::swap(y[i], y[j]);
                ++accepted;
            }
        }
        cost += accepted << 40;
    }

    Workload w;
    w.name = "vpr";
    w.description = "annealing placement moves: random swaps with "
                    "fixed-point cost and unpredictable accepts";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"XBASE", numStr(x_base)},
        {"YBASE", numStr(y_base)},
        {"NCALLS", numStr(n_calls)},
        {"CHUNK", numStr(moveChunk)},
        {"SEED", numStr(seed0)},
        {"LCGMUL", numStr(lcgMul)},
        {"LCGADD", numStr(lcgAdd)},
        {"CELLMASK", numStr(n_cells - 1)},
        {"ACCEPTMASK", numStr(accept_mask)},
        {"STACKTOP", numStr(layout::stackTop)},
    }));
    w.expectedResult = cost;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, xs, ys, x_base,
                    y_base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < xs.size(); ++i)
            mem.write(x_base + i * 8, 8, xs[i]);
        for (uint64_t i = 0; i < ys.size(); ++i)
            mem.write(y_base + i * 8, 8, ys[i]);
    };
    return w;
}

} // namespace ubrc::workload::kernels
