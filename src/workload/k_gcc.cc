/**
 * @file
 * `gcc`-like kernel: expression-tree walking with indirect dispatch.
 *
 * Compilers traverse IR trees dispatching on node kinds. This kernel
 * recursively evaluates random binary expression trees, dispatching on
 * the operator through a jump table (indirect jumps for the cascading
 * indirect predictor) with recursive calls (return-address stack).
 *
 * Node layout: op(8) value(8) left(8) right(8) = 32 bytes.
 * op 0 = leaf; ops 1..4 = add, sub, mul, xor.
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
jumptable:
        .word64 0, op_add, op_sub, op_mul, op_xor

state:  .word64 0             ; root index
        .word64 0             ; checksum

        .code
start:  li   sp, {STACKTOP}
main:   call chunkfn
        bnez a1, main
        la   t0, state
        ld   t1, 8(t0)
        la   t2, result
        sd   t1, 0(t2)
        halt

        ; evaluate a chunk of roots; returns nonzero while work remains
chunkfn: addi sp, sp, -8
        sd   ra, 0(sp)
        li   s0, {ROOTS}      ; array of root pointers
        li   s1, {NROOTS}
        la   a7, state        ; eval does not touch a7 or s-registers
        ld   s2, 0(a7)        ; root index
        ld   s3, 8(a7)        ; checksum
        li   s5, {CHUNK}
cloop:  bge  s2, s1, cout
        slli t0, s2, 3
        add  t0, t0, s0
        ld   a0, 0(t0)        ; root node
        call eval
        slli t1, s3, 5        ; checksum = checksum*31 + value
        sub  t1, t1, s3
        add  s3, t1, a1
        addi s2, s2, 1
        addi s5, s5, -1
        bnez s5, cloop
cout:   sd   s2, 0(a7)
        sd   s3, 8(a7)
        slt  a1, s2, s1
        ld   ra, 0(sp)
        addi sp, sp, 8
        ret

eval:   ld   t0, 0(a0)        ; node op
        bnez t0, internal
        ld   a1, 8(a0)        ; leaf: return its value
        ret
internal:
        addi sp, sp, -24
        sd   ra, 0(sp)
        sd   a0, 8(sp)
        ld   a0, 16(a0)       ; left child
        call eval
        sd   a1, 16(sp)       ; left result
        ld   a0, 8(sp)
        ld   a0, 24(a0)       ; right child
        call eval
        ld   t1, 16(sp)       ; left result
        ld   a0, 8(sp)
        ld   t0, 0(a0)        ; op again
        la   t2, jumptable    ; dispatch through the jump table
        slli t3, t0, 3
        add  t2, t2, t3
        ld   t2, 0(t2)
        jr   t2
op_add: add  a1, t1, a1
        j    evdone
op_sub: sub  a1, t1, a1
        j    evdone
op_mul: mul  a1, t1, a1
        j    evdone
op_xor: xor  a1, t1, a1
evdone: ld   ra, 0(sp)
        addi sp, sp, 24
        ret
)";

struct Node
{
    uint64_t op; // 0 leaf, 1..4 ops
    uint64_t value;
    uint32_t left;  // node index
    uint32_t right;
};

/** Recursively build a random tree; returns its node index. */
uint32_t
genTree(Rng &rng, int depth, std::vector<Node> &nodes)
{
    const uint32_t idx = static_cast<uint32_t>(nodes.size());
    nodes.push_back({});
    // Mostly depth-determined shape (predictable leaf/internal
    // branches, as real IR trees are) with some randomness, plus a
    // global size cap to bound the footprint.
    const bool leaf = depth >= 4 ? !rng.chance(0.03)
                                 : rng.chance(0.04);
    if (depth >= 8 || nodes.size() > 150000 || leaf) {
        nodes[idx] = {0, rng.below(1ULL << 32), 0, 0};
        return idx;
    }
    // Skewed operator mix, like real IR opcode frequencies; the
    // dominant opcode keeps the indirect dispatch predictable.
    const uint64_t opr = rng.below(100);
    const uint64_t op = opr < 55 ? 1 : opr < 80 ? 2 : opr < 95 ? 3 : 4;
    const uint32_t l = genTree(rng, depth + 1, nodes);
    const uint32_t r = genTree(rng, depth + 1, nodes);
    nodes[idx] = {op, 0, l, r};
    return idx;
}

uint64_t
evalTree(const std::vector<Node> &nodes, uint32_t idx)
{
    const Node &n = nodes[idx];
    if (n.op == 0)
        return n.value;
    const uint64_t l = evalTree(nodes, n.left);
    const uint64_t r = evalTree(nodes, n.right);
    switch (n.op) {
      case 1: return l + r;
      case 2: return l - r;
      case 3: return l * r;
      default: return l ^ r;
    }
}

} // namespace

Workload
buildGcc(const WorkloadParams &p)
{
    const uint64_t n_roots = 2400 * p.scale;
    const Addr nodes_base = layout::dataBase;
    const Addr roots_base = layout::dataBase2;
    constexpr uint64_t node_size = 32;

    Rng rng(p.seed * 0x6b8du + 83);
    std::vector<Node> nodes;
    // Node index 0 is a dummy so "index 0" is never a real child.
    nodes.push_back({0, 0, 0, 0});
    std::vector<uint32_t> roots(n_roots);
    for (auto &r : roots)
        r = genTree(rng, 0, nodes);

    // Reference model.
    uint64_t checksum = 0;
    for (uint32_t r : roots)
        checksum = checksum * 31 + evalTree(nodes, r);

    Workload w;
    w.name = "gcc";
    w.description = "recursive expression-tree evaluation with "
                    "jump-table indirect dispatch";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"STACKTOP", numStr(layout::stackTop)},
        {"ROOTS", numStr(roots_base)},
        {"NROOTS", numStr(n_roots)},
        {"CHUNK", numStr(128)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, nodes, roots, nodes_base,
                    roots_base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < nodes.size(); ++i) {
            const Addr a = nodes_base + i * node_size;
            mem.write(a, 8, nodes[i].op);
            mem.write(a + 8, 8, nodes[i].value);
            mem.write(a + 16, 8, nodes_base + nodes[i].left * node_size);
            mem.write(a + 24, 8,
                      nodes_base + nodes[i].right * node_size);
        }
        for (uint64_t i = 0; i < roots.size(); ++i)
            mem.write(roots_base + i * 8, 8,
                      nodes_base + roots[i] * node_size);
    };
    return w;
}

} // namespace ubrc::workload::kernels
