/**
 * @file
 * `crafty`-like kernel: bitboard manipulation.
 *
 * Chess engines live on 64-bit bitboard arithmetic: SWAR popcounts,
 * shifts, masks, and xor-folds, with high instruction-level
 * parallelism. The SWAR constants are loaded into registers once and
 * read on every iteration, producing a handful of extremely high
 * degree-of-use values — exactly the "pinned" case the paper's
 * saturating use counter is designed for.
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// Both passes are chunked functions that rematerialize the SWAR
// constants at entry (as a compiled chess engine does per call).
// Within a chunk the constants are read ~128 times, so after one
// training pass the degree-of-use predictor pins them in the cache.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 0             ; board index (pass 1)
        .word64 0             ; popcount total
        .word64 0             ; attack-mask xor fold
        .word64 0             ; pair index (pass 2)
        .word64 0             ; pair intersection total

        .code
start:  li   sp, {STACKTOP}
m1:     call body1
        bnez a1, m1
m2:     call body2
        bnez a1, m2
        la   a7, state
        ld   t1, 8(a7)        ; popcount total
        ld   t2, 32(a7)       ; pair total
        ld   t3, 16(a7)       ; fold
        slli t0, t1, 20
        add  t0, t0, t2
        xor  t0, t0, t3
        la   t4, result
        sd   t0, 0(t4)
        halt

body1:  li   s0, 0x5555555555555555  ; SWAR masks (high-use values)
        li   s1, 0x3333333333333333
        li   s2, 0x0f0f0f0f0f0f0f0f
        li   s3, 0x0101010101010101
        li   s4, {BOARDS}
        li   s5, {NBOARDS}
        la   a7, state
        ld   s7, 0(a7)        ; board index
        ld   s6, 8(a7)        ; popcount total
        ld   s8, 16(a7)       ; fold
        li   a6, {CHUNK}
loop1:  bge  s7, s5, out1
        slli t0, s7, 3
        add  t0, t0, s4
        ld   t1, 0(t0)                ; board
        srli t2, t1, 1                ; SWAR popcount
        and  t2, t2, s0
        sub  t1, t1, t2
        and  t3, t1, s1
        srli t4, t1, 2
        and  t4, t4, s1
        add  t1, t3, t4
        srli t5, t1, 4
        add  t1, t1, t5
        and  t1, t1, s2
        mul  t1, t1, s3
        srli t1, t1, 56
        add  s6, s6, t1
        ld   t6, 0(t0)                ; regenerate attack spread
        slli t7, t6, 8                ;   north one rank
        srli a0, t6, 8                ;   south one rank
        or   t7, t7, a0
        slli a1, t6, 1                ;   east/west files (approximate)
        srli a2, t6, 1
        or   a1, a1, a2
        or   t7, t7, a1
        xor  s8, s8, t7
        addi s7, s7, 1
        addi a6, a6, -1
        bnez a6, loop1
out1:   sd   s7, 0(a7)
        sd   s6, 8(a7)
        sd   s8, 16(a7)
        slt  a1, s7, s5       ; more boards left?
        ret

body2:  li   s0, 0x5555555555555555
        li   s1, 0x3333333333333333
        li   s2, 0x0f0f0f0f0f0f0f0f
        li   s3, 0x0101010101010101
        li   s4, {BOARDS}
        li   s5, {NBOARDS}
        la   a7, state
        ld   s7, 24(a7)       ; pair index
        ld   s9, 32(a7)       ; pair total
        li   a6, {CHUNK}
loop2:  bge  s7, s5, out2
        slli t0, s7, 3
        add  t0, t0, s4
        ld   t1, 0(t0)
        ld   t2, 8(t0)
        and  t3, t1, t2
        srli t4, t3, 1                ; popcount of the intersection
        and  t4, t4, s0
        sub  t3, t3, t4
        and  t5, t3, s1
        srli t6, t3, 2
        and  t6, t6, s1
        add  t3, t5, t6
        srli t7, t3, 4
        add  t3, t3, t7
        and  t3, t3, s2
        mul  t3, t3, s3
        srli t3, t3, 56
        add  s9, s9, t3
        addi s7, s7, 2
        addi a6, a6, -1
        bnez a6, loop2
out2:   sd   s7, 24(a7)
        sd   s9, 32(a7)
        slt  a1, s7, s5
        ret
)";

uint64_t
popcount64(uint64_t v)
{
    return static_cast<uint64_t>(__builtin_popcountll(v));
}

} // namespace

Workload
buildCrafty(const WorkloadParams &p)
{
    const uint64_t n_boards = 40 * 1000 * p.scale;
    const Addr base = layout::dataBase;

    Rng rng(p.seed * 0x51c3u + 7);
    std::vector<uint64_t> boards(n_boards);
    for (auto &b : boards) {
        // Sparse-ish boards, like piece placements.
        b = rng.next() & rng.next();
        if (rng.chance(0.25))
            b &= rng.next();
    }

    // Reference model.
    uint64_t pop_total = 0, fold = 0, pair_total = 0;
    for (uint64_t i = 0; i < n_boards; ++i) {
        const uint64_t b = boards[i];
        pop_total += popcount64(b);
        uint64_t spread = ((b << 8) | (b >> 8)) | ((b << 1) | (b >> 1));
        fold ^= spread;
    }
    for (uint64_t i = 0; i + 1 < n_boards; i += 2)
        pair_total += popcount64(boards[i] & boards[i + 1]);
    const uint64_t checksum = ((pop_total << 20) + pair_total) ^ fold;

    Workload w;
    w.name = "crafty";
    w.description = "bitboard SWAR popcounts and mask generation "
                    "(high ILP, pinned high-use constants)";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"BOARDS", numStr(base)},
        {"NBOARDS", numStr(n_boards)},
        {"STACKTOP", numStr(layout::stackTop)},
        {"CHUNK", numStr(128)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, boards, base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < boards.size(); ++i)
            mem.write(base + i * 8, 8, boards[i]);
    };
    return w;
}

} // namespace ubrc::workload::kernels
