/**
 * @file
 * Internal declarations of the individual kernel builders. Each lives
 * in its own k_<name>.cc translation unit; registry.cc dispatches.
 */

#ifndef UBRC_WORKLOAD_KERNELS_HH
#define UBRC_WORKLOAD_KERNELS_HH

#include "isa/functional_core.hh"
#include "workload/workload.hh"

namespace ubrc::workload::kernels
{

Workload buildGzip(const WorkloadParams &p);
Workload buildVpr(const WorkloadParams &p);
Workload buildGcc(const WorkloadParams &p);
Workload buildMcf(const WorkloadParams &p);
Workload buildCrafty(const WorkloadParams &p);
Workload buildParser(const WorkloadParams &p);
Workload buildEon(const WorkloadParams &p);
Workload buildPerlbmk(const WorkloadParams &p);
Workload buildGap(const WorkloadParams &p);
Workload buildVortex(const WorkloadParams &p);
Workload buildBzip2(const WorkloadParams &p);
Workload buildTwolf(const WorkloadParams &p);

} // namespace ubrc::workload::kernels

#endif // UBRC_WORKLOAD_KERNELS_HH
