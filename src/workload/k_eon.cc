/**
 * @file
 * `eon`-like kernel: fixed-point vector mathematics.
 *
 * eon is the one SPECint 2000 benchmark with meaningful floating-point
 * content (a C++ ray tracer). This kernel runs Q32.32 dot products and
 * periodic normalization divides over vector arrays, keeping the
 * FxAlu (3-cycle) and FxMulDiv (4/18-cycle) units busy the way eon's
 * shading math keeps FP units busy.
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// Vectors are 4 x Q32.32 components. For each pair (a[i], b[i]):
//   dot = sum_k fxmul(a_k, b_k); every 16th pair, dot = fxdiv(dot, norm).
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 0             ; vector index
        .word64 0             ; checksum

        .code
start:  li   sp, {STACKTOP}
main:   call body
        bnez a1, main
        la   t0, state
        ld   t1, 8(t0)
        la   t2, result
        sd   t1, 0(t2)
        halt

body:   li   s0, {ABASE}
        li   s1, {BBASE}
        li   s2, {NVECS}
        li   s5, {NORM}       ; normalization constant (high-use)
        la   a7, state
        ld   s3, 0(a7)        ; vector index
        ld   s4, 8(a7)        ; checksum
        li   a6, {CHUNK}
loop:   bge  s3, s2, out
        slli t0, s3, 5        ; 32 bytes per vector
        add  t1, t0, s0
        add  t2, t0, s1
        ld   t3, 0(t1)        ; a components
        ld   t4, 8(t1)
        ld   t5, 16(t1)
        ld   t6, 24(t1)
        ld   a0, 0(t2)        ; b components
        ld   a1, 8(t2)
        ld   a2, 16(t2)
        ld   a3, 24(t2)
        fxmul t3, t3, a0      ; elementwise products
        fxmul t4, t4, a1
        fxmul t5, t5, a2
        fxmul t6, t6, a3
        fxadd t3, t3, t4      ; reduce
        fxadd t5, t5, t6
        fxadd t3, t3, t5      ; dot product
        andi t7, s3, 15       ; every 16th: normalize
        bnez t7, accum
        fxdiv t3, t3, s5
accum:  xor  s4, s4, t3
        slli s4, s4, 1
        srli t7, s4, 63       ; keep it a rotate so bits survive
        or   s4, s4, t7
        addi s3, s3, 1
        addi a6, a6, -1
        bnez a6, loop
out:    sd   s3, 0(a7)
        sd   s4, 8(a7)
        slt  a1, s3, s2
        ret
)";

int64_t
fxmulRef(int64_t a, int64_t b)
{
    return static_cast<int64_t>(
        (static_cast<__int128>(a) * static_cast<__int128>(b)) >> 32);
}

int64_t
fxdivRef(int64_t a, uint64_t b)
{
    if (b == 0)
        return -1;
    return static_cast<int64_t>((static_cast<__int128>(a) << 32) /
                                static_cast<int64_t>(b));
}

} // namespace

Workload
buildEon(const WorkloadParams &p)
{
    const uint64_t n_vecs = 40 * 1000 * p.scale;
    const Addr a_base = layout::dataBase;
    const Addr b_base = layout::dataBase2;
    const uint64_t norm = (3ULL << 32) + 0x8000; // ~3.0 in Q32.32

    Rng rng(p.seed * 0x5e0du + 41);
    std::vector<uint64_t> a(n_vecs * 4), b(n_vecs * 4);
    for (auto &v : a)
        v = rng.below(1ULL << 34); // small positive fixed-point values
    for (auto &v : b)
        v = rng.below(1ULL << 34);

    // Reference model.
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < n_vecs; ++i) {
        int64_t dot = 0;
        int64_t partial[4];
        for (int k = 0; k < 4; ++k)
            partial[k] = fxmulRef(static_cast<int64_t>(a[i * 4 + k]),
                                  static_cast<int64_t>(b[i * 4 + k]));
        dot = (partial[0] + partial[1]) + (partial[2] + partial[3]);
        if ((i & 15) == 0)
            dot = fxdivRef(dot, norm);
        // Matches the kernel's shift-then-or sequence exactly (the
        // or-ed bit is read from the already shifted value).
        checksum ^= static_cast<uint64_t>(dot);
        checksum <<= 1;
        checksum |= checksum >> 63;
    }

    Workload w;
    w.name = "eon";
    w.description = "fixed-point dot products and normalization "
                    "(long-latency unit pressure)";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"ABASE", numStr(a_base)},
        {"BBASE", numStr(b_base)},
        {"NVECS", numStr(n_vecs)},
        {"NORM", numStr(norm)},
        {"STACKTOP", numStr(layout::stackTop)},
        {"CHUNK", numStr(256)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, a, b, a_base,
                    b_base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < a.size(); ++i)
            mem.write(a_base + i * 8, 8, a[i]);
        for (uint64_t i = 0; i < b.size(); ++i)
            mem.write(b_base + i * 8, 8, b[i]);
    };
    return w;
}

} // namespace ubrc::workload::kernels
