#include "workload/kernel_util.hh"

#include "common/log.hh"

namespace ubrc::workload
{

std::string
substitute(const std::string &asm_template,
           const std::map<std::string, std::string> &values)
{
    std::string out;
    out.reserve(asm_template.size());
    size_t i = 0;
    while (i < asm_template.size()) {
        char c = asm_template[i];
        if (c == '{') {
            size_t close = asm_template.find('}', i);
            if (close == std::string::npos)
                fatal("kernel template: unmatched '{' at offset %zu", i);
            std::string key = asm_template.substr(i + 1, close - i - 1);
            auto it = values.find(key);
            if (it == values.end())
                fatal("kernel template: unknown placeholder '{%s}'",
                      key.c_str());
            out += it->second;
            i = close + 1;
        } else {
            out += c;
            ++i;
        }
    }
    return out;
}

} // namespace ubrc::workload
