/**
 * @file
 * `parser`-like kernel: tokenizing recursive-descent expression parser.
 *
 * The SPEC link-grammar parser is call-heavy, branchy byte processing.
 * This kernel parses a stream of arithmetic expressions
 * (digits, + - *, parentheses) by recursive descent: deep call/return
 * chains exercise the return-address stack, and the token-dispatch
 * compare chains mimic the parser's branch profile.
 *
 * Grammar: expr := term (('+'|'-') term)* ; term := factor ('*' factor)*
 *          factor := number | '(' expr ')'
 * Expressions are separated by ';' and the stream ends with '$'.
 * All arithmetic is modulo 2^64.
 */

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// Cursor lives in s0 across all calls. Results return in a1.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0

        .code
start:  li   sp, {STACKTOP}
        li   s0, {TEXT}       ; cursor
        li   s1, 0            ; checksum
top:    lbu  t0, 0(s0)
        li   t7, 36           ; '$' (rematerialized per expression)
        beq  t0, t7, finish
        call parse_expr
        slli t1, s1, 3        ; checksum = checksum*9 + value
        add  s1, t1, s1
        add  s1, s1, a1
        lbu  t0, 0(s0)        ; skip the ';'
        addi s0, s0, 1
        j    top
finish: la   t0, result
        sd   s1, 0(t0)
        halt

parse_expr:
        addi sp, sp, -16
        sd   ra, 0(sp)
        call parse_term
        sd   a1, 8(sp)        ; accumulator
pe_loop:
        lbu  t0, 0(s0)
        li   t1, '+'
        beq  t0, t1, pe_add
        li   t1, '-'
        beq  t0, t1, pe_sub
        ld   a1, 8(sp)
        ld   ra, 0(sp)
        addi sp, sp, 16
        ret
pe_add: addi s0, s0, 1
        call parse_term
        ld   t2, 8(sp)
        add  t2, t2, a1
        sd   t2, 8(sp)
        j    pe_loop
pe_sub: addi s0, s0, 1
        call parse_term
        ld   t2, 8(sp)
        sub  t2, t2, a1
        sd   t2, 8(sp)
        j    pe_loop

parse_term:
        addi sp, sp, -16
        sd   ra, 0(sp)
        call parse_factor
        sd   a1, 8(sp)
pt_loop:
        lbu  t0, 0(s0)
        li   t1, '*'
        bne  t0, t1, pt_done
        addi s0, s0, 1
        call parse_factor
        ld   t2, 8(sp)
        mul  t2, t2, a1
        sd   t2, 8(sp)
        j    pt_loop
pt_done:
        ld   a1, 8(sp)
        ld   ra, 0(sp)
        addi sp, sp, 16
        ret

parse_factor:
        lbu  t0, 0(s0)
        li   t1, '('
        beq  t0, t1, pf_paren
        li   a1, 0            ; parse a number
pf_num: lbu  t0, 0(s0)
        li   t1, '0'
        blt  t0, t1, pf_ret
        li   t1, '9'
        bgt  t0, t1, pf_ret
        slli t2, a1, 3        ; a1 = a1*10 + digit
        slli t3, a1, 1
        add  a1, t2, t3
        addi t0, t0, -48
        add  a1, a1, t0
        addi s0, s0, 1
        j    pf_num
pf_ret: ret
pf_paren:
        addi sp, sp, -8
        sd   ra, 0(sp)
        addi s0, s0, 1        ; consume '('
        call parse_expr
        addi s0, s0, 1        ; consume ')'
        ld   ra, 0(sp)
        addi sp, sp, 8
        ret
)";

/** Reference recursive-descent parser matching the kernel. */
class RefParser
{
  public:
    explicit RefParser(const std::string &text) : s(text) {}

    uint64_t
    checksumAll()
    {
        uint64_t checksum = 0;
        while (s[pos] != '$') {
            const uint64_t v = expr();
            checksum = checksum * 9 + v;
            ++pos; // ';'
        }
        return checksum;
    }

  private:
    uint64_t
    expr()
    {
        uint64_t acc = term();
        while (s[pos] == '+' || s[pos] == '-') {
            const char op = s[pos++];
            const uint64_t rhs = term();
            acc = op == '+' ? acc + rhs : acc - rhs;
        }
        return acc;
    }

    uint64_t
    term()
    {
        uint64_t acc = factor();
        while (s[pos] == '*') {
            ++pos;
            acc *= factor();
        }
        return acc;
    }

    uint64_t
    factor()
    {
        if (s[pos] == '(') {
            ++pos;
            const uint64_t v = expr();
            ++pos; // ')'
            return v;
        }
        uint64_t v = 0;
        while (s[pos] >= '0' && s[pos] <= '9')
            v = v * 10 + (s[pos++] - '0');
        return v;
    }

    const std::string &s;
    size_t pos = 0;
};

/** Generate a random expression into out. */
void
genExpr(Rng &rng, int depth, std::string &out)
{
    auto gen_factor = [&](auto &&self_expr) {
        if (depth < 6 && rng.chance(0.22)) {
            out += '(';
            self_expr();
            out += ')';
        } else {
            out += std::to_string(rng.below(1000));
        }
    };
    auto gen_term = [&](auto &&self_expr) {
        gen_factor(self_expr);
        while (rng.chance(0.3)) {
            out += '*';
            gen_factor(self_expr);
        }
    };
    // A lambda that can recurse through genExpr.
    auto self_expr = [&] { genExpr(rng, depth + 1, out); };
    gen_term(self_expr);
    while (rng.chance(0.4)) {
        out += rng.chance(0.5) ? '+' : '-';
        gen_term(self_expr);
    }
}

} // namespace

Workload
buildParser(const WorkloadParams &p)
{
    const uint64_t n_exprs = 7000 * p.scale;
    const Addr text_base = layout::dataBase;

    Rng rng(p.seed * 0x2f61u + 71);
    std::string text;
    for (uint64_t i = 0; i < n_exprs; ++i) {
        genExpr(rng, 0, text);
        text += ';';
    }
    text += '$';

    RefParser ref(text);
    const uint64_t checksum = ref.checksumAll();

    Workload w;
    w.name = "parser";
    w.description = "recursive-descent expression parsing (deep "
                    "call/return chains, compare-chain dispatch)";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"STACKTOP", numStr(layout::stackTop)},
        {"TEXT", numStr(text_base)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, text, text_base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        mem.writeBlock(text_base,
                       reinterpret_cast<const uint8_t *>(text.data()),
                       text.size());
    };
    return w;
}

} // namespace ubrc::workload::kernels
