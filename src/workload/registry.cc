#include "workload/workload.hh"

#include <map>

#include "common/log.hh"
#include "workload/kernels.hh"

namespace ubrc::workload
{

namespace
{

using Builder = Workload (*)(const WorkloadParams &);

const std::map<std::string, Builder> &
builders()
{
    static const std::map<std::string, Builder> table = {
        {"gzip", kernels::buildGzip},
        {"vpr", kernels::buildVpr},
        {"gcc", kernels::buildGcc},
        {"mcf", kernels::buildMcf},
        {"crafty", kernels::buildCrafty},
        {"parser", kernels::buildParser},
        {"eon", kernels::buildEon},
        {"perlbmk", kernels::buildPerlbmk},
        {"gap", kernels::buildGap},
        {"vortex", kernels::buildVortex},
        {"bzip2", kernels::buildBzip2},
        {"twolf", kernels::buildTwolf},
    };
    return table;
}

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "gzip", "vpr", "gcc", "mcf", "crafty", "parser",
        "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
    };
    return names;
}

Workload
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    auto it = builders().find(name);
    if (it == builders().end())
        fatal("unknown workload '%s'", name.c_str());
    return it->second(params);
}

std::vector<Workload>
buildAllWorkloads(const WorkloadParams &params)
{
    std::vector<Workload> out;
    for (const auto &name : workloadNames())
        out.push_back(buildWorkload(name, params));
    return out;
}

} // namespace ubrc::workload
