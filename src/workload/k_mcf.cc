/**
 * @file
 * `mcf`-like kernel: pointer chasing over a large linked structure.
 *
 * mcf's network-simplex traversals are dominated by serial dependent
 * loads over a working set far exceeding the L1. This kernel walks a
 * randomly permuted circular linked list of nodes (footprint larger
 * than L1, comparable to L2) accumulating node fields and updating a
 * per-node accumulator on a data-dependent condition. ILP is minimal:
 * each iteration depends on the previous node's `next` pointer.
 */

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// Node layout: next(8) value(8) acc(8) pad(8) = 32 bytes. Like the
// real network simplex, the kernel alternates two phases: a serial
// pointer chase along the permuted node ring, and an arc-style random
// gather over the node array whose independent loads expose high
// memory-level parallelism. Both phases are chunked functions with
// their running state spilled to statics between calls.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 {NODE0}       ; current node (chase)
        .word64 0             ; chase sum
        .word64 {GSEED}       ; gather LCG state
        .word64 0             ; gather sum

        .code
start:  li   sp, {STACKTOP}
        li   s9, {NCALLS}
main:   call body
        call gather
        addi s9, s9, -1
        bnez s9, main
        la   t0, state
        ld   t1, 8(t0)        ; chase sum
        ld   t2, 24(t0)       ; gather sum
        slli t3, t2, 20
        srli t4, t2, 44
        or   t3, t3, t4       ; rotate gather sum left 20
        add  t1, t1, t3
        la   t5, result
        sd   t1, 0(t5)
        halt

body:   la   a7, state
        ld   s0, 0(a7)
        ld   s2, 8(a7)
        li   s1, {CHUNK}
loop:   ld   t0, 0(s0)        ; next pointer (serial dependence)
        ld   t1, 8(s0)        ; value
        add  s2, s2, t1
        andi t2, t1, 7        ; update acc on value % 8 == 0
        bnez t2, skip
        ld   t3, 16(s0)
        add  t3, t3, s2
        sd   t3, 16(s0)
skip:   mv   s0, t0
        addi s1, s1, -1
        bnez s1, loop
        sd   s0, 0(a7)
        sd   s2, 8(a7)
        ret

gather: li   s0, {NODES}
        li   s7, {LCGMUL}
        li   s8, {LCGADD}
        li   s6, {NODEMASK}
        la   a7, state
        ld   s3, 16(a7)       ; LCG state
        ld   s2, 24(a7)       ; gather sum
        li   s1, {CHUNK}
gloop:  mul  s3, s3, s7       ; independent random node index
        add  s3, s3, s8
        srli t0, s3, 30
        and  t0, t0, s6
        slli t0, t0, 5        ; *32 bytes per node
        add  t0, t0, s0
        ld   t1, 8(t0)        ; node value (high MLP: no serial dep)
        add  s2, s2, t1
        addi s1, s1, -1
        bnez s1, gloop
        sd   s3, 16(a7)
        sd   s2, 24(a7)
        ret
)";

constexpr uint64_t chaseChunk = 256;
constexpr uint64_t lcgMul = 6364136223846793005ULL;
constexpr uint64_t lcgAdd = 1442695040888963407ULL;

} // namespace

Workload
buildMcf(const WorkloadParams &p)
{
    // Power-of-two node count for gather masking; 1 MB footprint
    // straddles the L2 so both phases see real memory behaviour.
    const uint64_t n_nodes = 32 * 1024 * p.scale;
    const uint64_t n_calls = 352 * p.scale;
    const uint64_t n_iter = n_calls * chaseChunk;
    const uint64_t gather_seed = p.seed * 0x5851u + 0x9e37u;
    const Addr base = layout::dataBase;
    constexpr uint64_t node_size = 32;

    // Random cyclic permutation so the chase defeats the prefetcher.
    Rng rng(p.seed * 0x9d2cu + 5);
    std::vector<uint32_t> order(n_nodes);
    for (uint64_t i = 0; i < n_nodes; ++i)
        order[i] = static_cast<uint32_t>(i);
    for (uint64_t i = n_nodes - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);

    std::vector<uint64_t> next(n_nodes), value(n_nodes);
    for (uint64_t i = 0; i < n_nodes; ++i) {
        const uint64_t cur = order[i];
        const uint64_t nxt = order[(i + 1) % n_nodes];
        next[cur] = base + nxt * node_size;
        value[cur] = rng.below(1 << 20);
    }

    // Reference model: chase sum plus rotated gather sum.
    uint64_t sum = 0;
    {
        uint64_t chase_sum = 0;
        uint64_t node = order[0];
        for (uint64_t it = 0; it < n_iter; ++it) {
            chase_sum += value[node];
            // The acc update does not affect the checksum.
            node = (next[node] - base) / node_size;
        }
        uint64_t gather_sum = 0;
        uint64_t s = gather_seed;
        for (uint64_t it = 0; it < n_iter; ++it) {
            s = s * lcgMul + lcgAdd;
            gather_sum += value[(s >> 30) & (n_nodes - 1)];
        }
        sum = chase_sum +
              ((gather_sum << 20) | (gather_sum >> 44));
    }

    Workload w;
    w.name = "mcf";
    w.description = "serial pointer chasing over a 1.5 MB linked list";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"NODE0", numStr(base + order[0] * node_size)},
        {"NODES", numStr(base)},
        {"NCALLS", numStr(n_calls)},
        {"CHUNK", numStr(chaseChunk)},
        {"GSEED", numStr(gather_seed)},
        {"LCGMUL", numStr(lcgMul)},
        {"LCGADD", numStr(lcgAdd)},
        {"NODEMASK", numStr(n_nodes - 1)},
        {"STACKTOP", numStr(layout::stackTop)},
    }));
    w.expectedResult = sum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, next, value, base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < next.size(); ++i) {
            mem.write(base + i * node_size, 8, next[i]);
            mem.write(base + i * node_size + 8, 8, value[i]);
            // acc and pad start zero.
        }
    };
    return w;
}

} // namespace ubrc::workload::kernels
