/**
 * @file
 * `gap`-like kernel: multi-precision integer arithmetic.
 *
 * GAP's computer-algebra workload is dominated by big-number loops:
 * limb-wise adds with carry propagation (serial dependence through the
 * carry) and schoolbook multiplication (mul/mulh pairs with medium
 * fan-out partial products).
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// Numbers are LIMBS x 64-bit little-endian limbs, packed contiguously.
// The kernel sums products A[i] * B[i] (mod 2^(64*LIMBS)) into ACC for
// all pairs, then folds ACC into a checksum.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0

        .code
start:  li   sp, {STACKTOP}
        li   s4, 0            ; pair index
mloop:  mv   a0, s4
        call pairmul
        addi s4, s4, 1
        li   t0, {NPAIRS}
        blt  s4, t0, mloop
        call foldacc
        la   t0, result
        sd   a1, 0(t0)
        halt

        ; multiply pair a0, accumulating into ACC
pairmul: li  s0, {ABASE}
        li   s1, {BBASE}
        li   s2, {ACC}
        slli t0, a0, {LOGBYTES}
        add  s5, s0, t0       ; a = &A[pair]
        add  s6, s1, t0       ; b = &B[pair]
        ; --- multiply a (LIMBS limbs) by b, accumulate into ACC ---
        li   s7, 0            ; i
iloop:  slli t1, s7, 3
        add  t2, s5, t1
        ld   s8, 0(t2)        ; a_i
        li   s9, 0            ; j
        li   a0, 0            ; carry
jloop:  add  t3, s7, s9       ; k = i + j
        li   t4, {LIMBS}
        bge  t3, t4, jdone    ; drop limbs beyond the modulus
        slli t5, s9, 3
        add  t6, s6, t5
        ld   t6, 0(t6)        ; b_j
        mul  t7, s8, t6       ; low partial product
        mulh a1, s8, t6       ; high partial product
        slli a2, t3, 3
        add  a2, a2, s2       ; &ACC[k]
        ld   a3, 0(a2)
        add  a4, a3, t7       ; acc += lo
        sltu a5, a4, a3       ; carry out of low add
        add  a4, a4, a0       ; plus incoming carry
        sltu a6, a4, a0
        add  a5, a5, a6
        sd   a4, 0(a2)
        add  a0, a1, a5       ; next carry = hi + carries
        addi s9, s9, 1
        li   t4, {LIMBS}
        blt  s9, t4, jloop
jdone:  addi s7, s7, 1
        li   t4, {LIMBS}
        blt  s7, t4, iloop
        ret

        ; fold ACC into a checksum, returned in a1
foldacc: li  s2, {ACC}
        li   s7, 0
        li   a7, 0
fold1:  slli t0, s7, 3
        add  t0, t0, s2
        ld   t1, 0(t0)
        slli t2, a7, 7
        srli t3, a7, 57
        or   t2, t2, t3       ; rotate left 7
        xor  a7, t2, t1
        addi s7, s7, 1
        li   t4, {LIMBS}
        blt  s7, t4, fold1
        mv   a1, a7
        ret
)";

} // namespace

Workload
buildGap(const WorkloadParams &p)
{
    constexpr uint64_t limbs = 8;
    const uint64_t n_pairs = 2200 * p.scale;
    const Addr a_base = layout::dataBase;
    const Addr b_base = layout::dataBase2;
    const Addr acc = layout::resultArea + 0x100;

    Rng rng(p.seed * 0x77f1u + 3);
    std::vector<uint64_t> a(n_pairs * limbs), b(n_pairs * limbs);
    for (auto &v : a)
        v = rng.next();
    for (auto &v : b)
        v = rng.next();

    // Reference model.
    std::vector<uint64_t> ref_acc(limbs, 0);
    for (uint64_t pair = 0; pair < n_pairs; ++pair) {
        const uint64_t *pa = &a[pair * limbs];
        const uint64_t *pb = &b[pair * limbs];
        for (uint64_t i = 0; i < limbs; ++i) {
            uint64_t carry = 0;
            for (uint64_t j = 0; i + j < limbs; ++j) {
                const uint64_t k = i + j;
                const __uint128_t prod =
                    static_cast<__uint128_t>(pa[i]) * pb[j];
                const uint64_t lo = static_cast<uint64_t>(prod);
                const uint64_t hi = static_cast<uint64_t>(prod >> 64);
                uint64_t sum = ref_acc[k] + lo;
                uint64_t c = sum < ref_acc[k];
                sum += carry;
                c += sum < carry;
                ref_acc[k] = sum;
                carry = hi + c;
            }
        }
    }
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < limbs; ++i)
        checksum = ((checksum << 7) | (checksum >> 57)) ^ ref_acc[i];

    Workload w;
    w.name = "gap";
    w.description = "multi-precision schoolbook multiply-accumulate "
                    "with carry chains";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"ABASE", numStr(a_base)},
        {"BBASE", numStr(b_base)},
        {"ACC", numStr(acc)},
        {"NPAIRS", numStr(n_pairs)},
        {"LIMBS", numStr(limbs)},
        {"LOGBYTES", numStr(6)}, // limbs * 8 bytes = 64
        {"STACKTOP", numStr(layout::stackTop)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, a, b, a_base, b_base,
                    acc](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < a.size(); ++i)
            mem.write(a_base + i * 8, 8, a[i]);
        for (uint64_t i = 0; i < b.size(); ++i)
            mem.write(b_base + i * 8, 8, b[i]);
        for (uint64_t i = 0; i < limbs; ++i)
            mem.write(acc + i * 8, 8, 0);
    };
    return w;
}

} // namespace ubrc::workload::kernels
