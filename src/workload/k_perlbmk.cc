/**
 * @file
 * `perlbmk`-like kernel: hashing and associative-array operations.
 *
 * Perl scripts hammer hash tables: compute a string hash, probe an
 * open-addressed table, and insert or bump a value. Probe loops have
 * data-dependent trip counts and the hit/miss branch is unpredictable.
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// Keys are 8-byte values, 0 meaning "empty slot". The table stores
// key(8) value(8) pairs. Hash is a multiplicative mix.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 0             ; key index
        .word64 0             ; checksum

        .code
start:  li   sp, {STACKTOP}
main:   call body
        bnez a1, main
        la   t0, state
        ld   t1, 8(t0)
        la   t2, result
        sd   t1, 0(t2)
        halt

body:   li   s0, {KEYS}
        li   s1, {TABLE}
        li   s2, {NKEYS}
        li   s5, {HASHMUL}    ; high-use hash constant
        li   s6, {SLOTMASK}
        la   a7, state
        ld   s3, 0(a7)        ; key index
        ld   s4, 8(a7)        ; checksum
        li   a6, {CHUNK}
loop:   bge  s3, s2, out
        slli t0, s3, 3
        add  t0, t0, s0
        ld   t1, 0(t0)        ; key (never zero by construction)
        mul  t2, t1, s5       ; hash: multiply, fold, shift
        srli t3, t2, 29
        xor  t2, t2, t3
        and  t2, t2, s6       ; initial slot
probe:  slli t4, t2, 4        ; 16 bytes per slot
        add  t4, t4, s1
        ld   t5, 0(t4)        ; slot key
        beqz t5, insert       ; empty: insert here
        beq  t5, t1, hit      ; found
        addi t2, t2, 1        ; linear probe
        and  t2, t2, s6
        j    probe
insert: sd   t1, 0(t4)
        li   t6, 1
        sd   t6, 8(t4)
        addi s4, s4, 3        ; checksum: inserts count 3
        j    nextk
hit:    ld   t7, 8(t4)        ; bump the value
        addi t7, t7, 1
        sd   t7, 8(t4)
        add  s4, s4, t7       ; checksum: running multiplicity
nextk:  addi s3, s3, 1
        addi a6, a6, -1
        bnez a6, loop
out:    sd   s3, 0(a7)
        sd   s4, 8(a7)
        slt  a1, s3, s2
        ret
)";

constexpr uint64_t hashMul = 0x9e3779b97f4a7c15ULL;

} // namespace

Workload
buildPerlbmk(const WorkloadParams &p)
{
    const uint64_t n_slots = 32768; // power of two
    const uint64_t n_keys = 90 * 1000 * p.scale;
    const uint64_t n_distinct = 18 * 1000;
    const Addr keys_base = layout::dataBase;
    const Addr table = layout::dataBase2;

    Rng rng(p.seed * 0x7c01u + 61);
    // A universe of distinct nonzero keys; the key stream repeats
    // them with a skewed distribution (hot keys), like interpreter
    // symbol tables.
    std::vector<uint64_t> universe(n_distinct);
    for (auto &k : universe)
        k = rng.next() | 1;
    std::vector<uint64_t> keys(n_keys);
    for (auto &k : keys) {
        const uint64_t r = rng.below(100);
        if (r < 50)
            k = universe[rng.below(64)]; // hot set
        else if (r < 80)
            k = universe[rng.below(1024)];
        else
            k = universe[rng.below(n_distinct)];
    }

    // Reference model.
    uint64_t checksum = 0;
    {
        std::vector<uint64_t> tab_key(n_slots, 0), tab_val(n_slots, 0);
        for (uint64_t key : keys) {
            uint64_t h = key * hashMul;
            h ^= h >> 29;
            uint64_t slot = h & (n_slots - 1);
            while (true) {
                if (tab_key[slot] == 0) {
                    tab_key[slot] = key;
                    tab_val[slot] = 1;
                    checksum += 3;
                    break;
                }
                if (tab_key[slot] == key) {
                    checksum += ++tab_val[slot];
                    break;
                }
                slot = (slot + 1) & (n_slots - 1);
            }
        }
    }

    Workload w;
    w.name = "perlbmk";
    w.description = "open-addressed hash table probing with skewed "
                    "key reuse";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"KEYS", numStr(keys_base)},
        {"TABLE", numStr(table)},
        {"NKEYS", numStr(n_keys)},
        {"HASHMUL", numStr(hashMul)},
        {"SLOTMASK", numStr(n_slots - 1)},
        {"STACKTOP", numStr(layout::stackTop)},
        {"CHUNK", numStr(256)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, keys, keys_base, table,
                    n_slots](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < keys.size(); ++i)
            mem.write(keys_base + i * 8, 8, keys[i]);
        for (uint64_t i = 0; i < n_slots * 2; ++i)
            mem.write(table + i * 8, 8, 0);
    };
    return w;
}

} // namespace ubrc::workload::kernels
