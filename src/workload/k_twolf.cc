/**
 * @file
 * `twolf`-like kernel: linked-list surgery under annealing moves.
 *
 * twolf's placement/routing loops spend their time unlinking and
 * re-inserting elements of doubly-linked lists at pseudo-random
 * positions and evaluating cost deltas. The kernel keeps next/prev/val
 * arrays, picks victims with an in-register LCG, and performs the
 * unlink/insert pointer updates — dependent loads and stores with
 * unpredictable addresses.
 */

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

constexpr uint64_t lcgMul = 6364136223846793005ULL;
constexpr uint64_t lcgAdd = 1442695040888963407ULL;

// next[], prev[] hold element indices (8 bytes each); val[] holds
// costs. Element 0 is a sentinel that is never moved.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 {SEED}        ; LCG state
        .word64 0             ; cost accumulator

        .code
start:  li   sp, {STACKTOP}
        li   s9, {NCALLS}
main:   call body
        addi s9, s9, -1
        bnez s9, main
        call walkfn           ; 1024-link walk checksum in a1
        slli a1, a1, 20
        la   t0, state
        ld   t1, 8(t0)
        add  t1, t1, a1
        la   t2, result
        sd   t1, 0(t2)
        halt

body:   li   s0, {NEXT}
        li   s1, {PREV}
        li   s2, {VAL}
        li   s4, {LCGMUL}
        li   s5, {LCGADD}
        li   s6, {MASK}
        li   s7, {CHUNK}
        la   t0, state
        ld   s3, 0(t0)        ; LCG state
        ld   s8, 8(t0)        ; cost accumulator
loop:   mul  s3, s3, s4       ; pick victim a (nonzero)
        add  s3, s3, s5
        srli t0, s3, 33
        and  t0, t0, s6
        ori  t0, t0, 1        ; avoid the sentinel
        mul  s3, s3, s4       ; pick insertion point b
        add  s3, s3, s5
        srli t1, s3, 33
        and  t1, t1, s6
        beq  t0, t1, skip     ; cannot insert after self
        slli t2, t0, 3
        add  t3, t2, s0
        ld   t4, 0(t3)        ; n = next[a]
        add  t5, t2, s1
        ld   t6, 0(t5)        ; p = prev[a]
        beq  t6, t1, skip     ; already after b? leave it
        slli t7, t4, 3        ; unlink: prev[n] = p
        add  t7, t7, s1
        sd   t6, 0(t7)
        slli a0, t6, 3        ; next[p] = n
        add  a0, a0, s0
        sd   t4, 0(a0)
        slli a1, t1, 3        ; m = next[b]
        add  a2, a1, s0
        ld   a3, 0(a2)
        sd   t0, 0(a2)        ; next[b] = a
        slli a4, a3, 3        ; prev[m] = a
        add  a4, a4, s1
        sd   t0, 0(a4)
        sd   t1, 0(t5)        ; prev[a] = b
        sd   a3, 0(t3)        ; next[a] = m
        slli a5, t0, 3        ; cost += |val[a] - val[b]|
        add  a5, a5, s2
        ld   a6, 0(a5)
        slli a7, t1, 3
        add  a7, a7, s2
        ld   a7, 0(a7)
        sub  a6, a6, a7
        srai a7, a6, 63
        xor  a6, a6, a7
        sub  a6, a6, a7
        add  s8, s8, a6
skip:   addi s7, s7, -1
        bnez s7, loop
        la   t0, state
        sd   s3, 0(t0)
        sd   s8, 8(t0)
        ret

walkfn: li   s0, {NEXT}       ; walk 1024 links from the sentinel
        li   s2, {VAL}
        li   t0, 0
        li   t1, 1024
        li   t2, 0
walk:   slli t3, t0, 3
        add  t3, t3, s0
        ld   t0, 0(t3)
        slli t4, t0, 3
        add  t4, t4, s2
        ld   t5, 0(t4)
        add  t2, t2, t5
        addi t1, t1, -1
        bnez t1, walk
        mv   a1, t2
        ret
)";

constexpr uint64_t moveChunk = 256;

} // namespace

Workload
buildTwolf(const WorkloadParams &p)
{
    const uint64_t n_elems = 8192; // power of two for masking
    const uint64_t n_calls = 196 * p.scale;
    const uint64_t n_iter = n_calls * moveChunk;
    const uint64_t seed0 = p.seed * 0x8d2bu + 0x111u;
    const Addr next_base = layout::dataBase;
    const Addr prev_base = layout::dataBase + n_elems * 8;
    const Addr val_base = layout::dataBase + 2 * n_elems * 8;

    Rng rng(p.seed * 0x44afu + 53);
    std::vector<uint64_t> val(n_elems);
    for (auto &v : val)
        v = rng.below(1 << 16);

    // Initial circular list in index order.
    std::vector<uint64_t> next(n_elems), prev(n_elems);
    for (uint64_t i = 0; i < n_elems; ++i) {
        next[i] = (i + 1) % n_elems;
        prev[i] = (i + n_elems - 1) % n_elems;
    }

    // Reference model replaying the kernel exactly.
    uint64_t cost = 0;
    {
        std::vector<uint64_t> nx = next, pv = prev;
        uint64_t s = seed0;
        for (uint64_t it = 0; it < n_iter; ++it) {
            s = s * lcgMul + lcgAdd;
            const uint64_t a = ((s >> 33) & (n_elems - 1)) | 1;
            s = s * lcgMul + lcgAdd;
            const uint64_t b = (s >> 33) & (n_elems - 1);
            if (a == b)
                continue;
            const uint64_t n = nx[a];
            const uint64_t pr = pv[a];
            if (pr == b)
                continue;
            pv[n] = pr;
            nx[pr] = n;
            const uint64_t m = nx[b];
            nx[b] = a;
            pv[m] = a;
            pv[a] = b;
            nx[a] = m;
            const int64_t d = static_cast<int64_t>(val[a]) -
                              static_cast<int64_t>(val[b]);
            cost += static_cast<uint64_t>(d < 0 ? -d : d);
        }
        uint64_t walk_sum = 0;
        uint64_t node = 0;
        for (int i = 0; i < 1024; ++i) {
            node = nx[node];
            walk_sum += val[node];
        }
        cost += walk_sum << 20;
    }

    Workload w;
    w.name = "twolf";
    w.description = "doubly-linked-list unlink/insert churn with "
                    "unpredictable victims";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"NEXT", numStr(next_base)},
        {"PREV", numStr(prev_base)},
        {"VAL", numStr(val_base)},
        {"SEED", numStr(seed0)},
        {"LCGMUL", numStr(lcgMul)},
        {"LCGADD", numStr(lcgAdd)},
        {"MASK", numStr(n_elems - 1)},
        {"NCALLS", numStr(n_calls)},
        {"CHUNK", numStr(moveChunk)},
        {"STACKTOP", numStr(layout::stackTop)},
    }));
    w.expectedResult = cost;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, next, prev, val, next_base,
                    prev_base, val_base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < next.size(); ++i) {
            mem.write(next_base + i * 8, 8, next[i]);
            mem.write(prev_base + i * 8, 8, prev[i]);
            mem.write(val_base + i * 8, 8, val[i]);
        }
    };
    return w;
}

} // namespace ubrc::workload::kernels
