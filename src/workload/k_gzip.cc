/**
 * @file
 * `gzip`-like kernel: run-length compression of a byte buffer.
 *
 * Mirrors the inner character of LZ-family compressors: byte loads,
 * data-dependent short match loops, and branchy control flow with
 * moderately predictable exits. The input is generated with runs of
 * random length so match loops have realistic (short, skewed) trip
 * counts.
 */

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// The compressor body is a function called per ~512-byte chunk, with
// cursors and the running checksum spilled to a statics area between
// calls -- the register-lifetime structure of real compiled code.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 {INBUF}       ; input cursor
        .word64 {INLEN}       ; bytes remaining
        .word64 {OUTBUF}      ; output cursor
        .word64 0             ; checksum

        .code
start:  li   sp, {STACKTOP}
main:   call body
        bnez a1, main
        la   t0, state
        ld   t1, 24(t0)
        la   t2, result
        sd   t1, 0(t2)
        halt

body:   la   a7, state
        ld   s0, 0(a7)        ; input cursor
        ld   s1, 8(a7)        ; bytes remaining
        ld   s2, 16(a7)       ; output cursor
        ld   s3, 24(a7)       ; checksum
        li   a6, {CHUNK}      ; byte budget for this call
outer:  beqz s1, done
        lbu  t0, 0(s0)        ; run byte
        li   t1, 1            ; run length
run:    bge  t1, s1, runend   ; stop at end of input
        add  t2, s0, t1
        lbu  t3, 0(t2)
        bne  t3, t0, runend
        addi t1, t1, 1
        li   t4, 255
        blt  t1, t4, run
runend: sb   t0, 0(s2)        ; emit (byte, length)
        sb   t1, 1(s2)
        addi s2, s2, 2
        slli t5, s3, 5        ; checksum = checksum*33 + byte + len
        add  s3, t5, s3
        add  s3, s3, t0
        add  s3, s3, t1
        add  s0, s0, t1
        sub  s1, s1, t1
        sub  a6, a6, t1
        blt  zero, a6, outer
done:   sd   s0, 0(a7)
        sd   s1, 8(a7)
        sd   s2, 16(a7)
        sd   s3, 24(a7)
        mv   a1, s1           ; remaining work indicator
        ret
)";

} // namespace

Workload
buildGzip(const WorkloadParams &p)
{
    const uint64_t in_len = 96 * 1024 * p.scale;
    const Addr in_buf = layout::dataBase;
    const Addr out_buf = layout::outputBase;

    // Generate the input: runs of a random byte, geometric-ish length.
    Rng rng(p.seed * 0x67a3u + 11);
    std::vector<uint8_t> input(in_len);
    size_t pos = 0;
    while (pos < in_len) {
        const uint8_t byte = static_cast<uint8_t>(rng.below(64));
        uint64_t run = 1 + rng.below(4);
        if (rng.chance(0.15))
            run += rng.below(24); // occasional long runs
        for (uint64_t i = 0; i < run && pos < in_len; ++i)
            input[pos++] = byte;
    }

    // C++ reference model of the kernel's RLE + checksum.
    uint64_t checksum = 0;
    {
        uint64_t i = 0;
        while (i < in_len) {
            const uint8_t byte = input[i];
            uint64_t len = 1;
            while (len < 255 && i + len < in_len &&
                   input[i + len] == byte)
                ++len;
            checksum = checksum * 33 + byte + len;
            i += len;
        }
    }

    Workload w;
    w.name = "gzip";
    w.description = "run-length compression over a byte stream "
                    "(LZ-style match loops)";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"INBUF", numStr(in_buf)},
        {"INLEN", numStr(in_len)},
        {"OUTBUF", numStr(out_buf)},
        {"STACKTOP", numStr(layout::stackTop)},
        {"CHUNK", numStr(512)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, input, in_buf](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        mem.writeBlock(in_buf, input.data(), input.size());
    };
    return w;
}

} // namespace ubrc::workload::kernels
