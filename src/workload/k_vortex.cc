/**
 * @file
 * `vortex`-like kernel: object-store record management.
 *
 * Vortex manipulates an object database: indexed lookups, record
 * copies, and index maintenance. This kernel looks records up through
 * an index table, copies them in 8-byte chunks to a staging area
 * (store-heavy straight-line code), mutates a field, and writes the
 * record back, rotating the index as it goes.
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

// Records are 64 bytes (8 words). idx[] holds record numbers.
const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 0             ; iteration
        .word64 0             ; checksum

        .code
start:  li   sp, {STACKTOP}
main:   call body
        bnez a1, main
        la   t0, state
        ld   t1, 8(t0)
        la   t2, result
        sd   t1, 0(t2)
        halt

body:   li   s0, {RECBASE}
        li   s1, {IDXBASE}
        li   s2, {STAGE}
        li   s3, {NITER}
        li   s6, {IDXMASK}
        la   a7, state
        ld   s4, 0(a7)        ; iteration
        ld   s5, 8(a7)        ; checksum
        li   a6, {CHUNK}
loop:   bge  s4, s3, out
        and  t0, s4, s6       ; index slot
        slli t0, t0, 3
        add  t0, t0, s1
        ld   t1, 0(t0)        ; record number
        slli t2, t1, 6        ; *64
        add  t2, t2, s0       ; record address
        ld   t3, 0(t2)        ; copy 8 words to staging
        sd   t3, 0(s2)
        ld   t4, 8(t2)
        sd   t4, 8(s2)
        ld   t5, 16(t2)
        sd   t5, 16(s2)
        ld   t6, 24(t2)
        sd   t6, 24(s2)
        ld   t7, 32(t2)
        sd   t7, 32(s2)
        ld   a0, 40(t2)
        sd   a0, 40(s2)
        ld   a1, 48(t2)
        sd   a1, 48(s2)
        ld   a2, 56(t2)
        sd   a2, 56(s2)
        add  s5, s5, t3       ; checksum from header word
        xor  s5, s5, a2
        addi t3, t3, 1        ; mutate header, write back
        sd   t3, 0(t2)
        ld   a3, 0(t0)        ; rotate index: idx[slot] += 1 (mod NREC)
        addi a3, a3, 1
        li   a4, {NREC}
        blt  a3, a4, nowrap
        li   a3, 0
nowrap: sd   a3, 0(t0)
        addi s4, s4, 1
        addi a6, a6, -1
        bnez a6, loop
out:    sd   s4, 0(a7)
        sd   s5, 8(a7)
        slt  a1, s4, s3
        ret
)";

} // namespace

Workload
buildVortex(const WorkloadParams &p)
{
    const uint64_t n_rec = 8192 * p.scale; // 512 KB of records
    const uint64_t idx_entries = 1024;
    const uint64_t n_iter = 60 * 1000 * p.scale;
    const Addr rec_base = layout::dataBase;
    const Addr idx_base = layout::dataBase2;
    const Addr stage = layout::resultArea + 0x200;

    Rng rng(p.seed * 0xab1fu + 17);
    std::vector<uint64_t> records(n_rec * 8);
    for (auto &v : records)
        v = rng.below(1ULL << 40);
    std::vector<uint64_t> index(idx_entries);
    for (auto &v : index)
        v = rng.below(n_rec);

    // Reference model.
    uint64_t checksum = 0;
    {
        std::vector<uint64_t> recs = records;
        std::vector<uint64_t> idx = index;
        for (uint64_t it = 0; it < n_iter; ++it) {
            const uint64_t slot = it & (idx_entries - 1);
            const uint64_t r = idx[slot];
            checksum += recs[r * 8 + 0];
            checksum ^= recs[r * 8 + 7];
            recs[r * 8 + 0] += 1;
            idx[slot] = (idx[slot] + 1) % n_rec;
        }
    }

    Workload w;
    w.name = "vortex";
    w.description = "object-store record copy and index maintenance "
                    "(store-heavy)";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"RECBASE", numStr(rec_base)},
        {"IDXBASE", numStr(idx_base)},
        {"STAGE", numStr(stage)},
        {"NITER", numStr(n_iter)},
        {"IDXMASK", numStr(idx_entries - 1)},
        {"NREC", numStr(n_rec)},
        {"STACKTOP", numStr(layout::stackTop)},
        {"CHUNK", numStr(128)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, records, index, rec_base,
                    idx_base](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        for (uint64_t i = 0; i < records.size(); ++i)
            mem.write(rec_base + i * 8, 8, records[i]);
        for (uint64_t i = 0; i < index.size(); ++i)
            mem.write(idx_base + i * 8, 8, index[i]);
    };
    return w;
}

} // namespace ubrc::workload::kernels
