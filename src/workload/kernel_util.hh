/**
 * @file
 * Helpers shared by the kernel builders: assembly-template parameter
 * substitution and the common simulated memory map.
 */

#ifndef UBRC_WORKLOAD_KERNEL_UTIL_HH
#define UBRC_WORKLOAD_KERNEL_UTIL_HH

#include <map>
#include <string>

#include "common/types.hh"

namespace ubrc::workload
{

/** Common memory map used by all kernels. */
namespace layout
{
constexpr Addr resultArea = 0x100000; ///< `result` and small statics
constexpr Addr dataBase = 0x200000;   ///< generated data sets
constexpr Addr dataBase2 = 0x800000;  ///< second data region
constexpr Addr outputBase = 0x4000000; ///< kernel output buffers
constexpr Addr stackTop = 0x40000000;  ///< stacks grow down from here
} // namespace layout

/**
 * Replace every "{KEY}" in an assembly template with its value.
 * Unknown placeholders are a fatal error; this catches typos in the
 * kernel sources at construction time.
 */
std::string substitute(const std::string &asm_template,
                       const std::map<std::string, std::string> &values);

/** Convenience: decimal string for any integer. */
inline std::string
numStr(uint64_t v)
{
    return std::to_string(v);
}

} // namespace ubrc::workload

#endif // UBRC_WORKLOAD_KERNEL_UTIL_HH
