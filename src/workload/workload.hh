/**
 * @file
 * Workload kernels: SPECint-2000-inspired programs for the mini ISA.
 *
 * Each kernel is a real program (assembled from source in this
 * library) plus a deterministic data-set generator. The twelve kernels
 * are named after the SPECint 2000 benchmarks whose dynamic character
 * they imitate; see DESIGN.md for the substitution rationale.
 *
 * Every kernel writes a 64-bit checksum to the symbol `result` before
 * halting; the generators also provide a C++ reference model so tests
 * can validate functional execution exactly.
 */

#ifndef UBRC_WORKLOAD_WORKLOAD_HH
#define UBRC_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sparse_memory.hh"
#include "isa/instruction.hh"

namespace ubrc::workload
{

/** Knobs common to all kernels. */
struct WorkloadParams
{
    /**
     * Work-amount multiplier. 1 yields roughly 0.5-2 million dynamic
     * instructions per kernel; the footprint and iteration counts of
     * each kernel scale with it.
     */
    uint64_t scale = 1;

    /** Seed for the data-set generator. */
    uint64_t seed = 1;
};

/** A ready-to-run workload. */
struct Workload
{
    std::string name;
    std::string description;
    isa::Program program;

    /**
     * Populate memory with the program's initialized data and the
     * generated data set. Must be called before execution (the
     * timing and functional cores share one memory image).
     */
    std::function<void(SparseMemory &)> initMemory;

    /**
     * Expected value of the `result` symbol after a complete run, as
     * computed by the kernel's C++ reference model. Zero when the
     * kernel has no closed-form reference (none currently).
     */
    uint64_t expectedResult = 0;

    /** True if expectedResult is meaningful. */
    bool hasExpectedResult = false;
};

/** Names of all available kernels, in canonical order. */
const std::vector<std::string> &workloadNames();

/** Build a kernel by name. Fatal on unknown names. */
Workload buildWorkload(const std::string &name,
                       const WorkloadParams &params = {});

/** Build every kernel. */
std::vector<Workload> buildAllWorkloads(const WorkloadParams &params = {});

} // namespace ubrc::workload

#endif // UBRC_WORKLOAD_WORKLOAD_HH
