/**
 * @file
 * `bzip2`-like kernel: move-to-front transform plus histogram.
 *
 * bzip2's BWT stage is approximated by its move-to-front coder: for
 * each input byte, scan a 256-entry recency table for its position
 * (data-dependent trip count), emit the position, and shift the table
 * down by one — byte loads and stores with serial dependences. A
 * counting-sort histogram pass follows.
 */

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/kernel_util.hh"
#include "workload/kernels.hh"

namespace ubrc::workload::kernels
{

namespace
{

const char *kernelAsm = R"(
        .data 0x100000
result: .word64 0
state:  .word64 {INBUF}       ; input cursor
        .word64 {INLEN}       ; remaining
        .word64 0             ; checksum accumulator

        .code
start:  li   sp, {STACKTOP}
        li   s0, {MTFTAB}     ; recency table (256 bytes)
        li   t0, 0            ; init table[i] = i
init:   sb   t0, 0(s0)        ; note: s0 advances during init
        addi s0, s0, 1
        addi t0, t0, 1
        li   t1, 256
        blt  t0, t1, init
main:   call body
        bnez a1, main
        call hfold            ; weighted histogram fold in a1
        slli a1, a1, 16
        la   t0, state
        ld   t1, 16(t0)
        add  t1, t1, a1
        la   t2, result
        sd   t1, 0(t2)
        halt

body:   li   s0, {MTFTAB}
        li   s4, {HIST}       ; histogram base (64-bit counters)
        la   a7, state
        ld   s1, 0(a7)        ; input cursor
        ld   s2, 8(a7)        ; remaining
        ld   s3, 16(a7)       ; checksum accumulator
        li   a6, {CHUNK}
outer:  beqz s2, out
        lbu  t0, 0(s1)        ; next input byte
        li   t1, 0            ; scan for its position
scan:   add  t2, s0, t1
        lbu  t3, 0(t2)
        beq  t3, t0, found
        addi t1, t1, 1
        j    scan
found:  add  s3, s3, t1       ; emit position
        slli t4, t1, 3        ; histogram[position]++
        add  t4, t4, s4
        ld   t5, 0(t4)
        addi t5, t5, 1
        sd   t5, 0(t4)
        beqz t1, advance      ; already at front?
shift:  addi t6, t1, -1       ; shift table[0..pos-1] down
        add  t7, s0, t6
        lbu  a0, 0(t7)
        add  a1, s0, t1
        sb   a0, 0(a1)
        mv   t1, t6
        bnez t1, shift
        sb   t0, 0(s0)        ; new front
advance: addi s1, s1, 1
        addi s2, s2, -1
        addi a6, a6, -1
        bnez a6, outer
out:    sd   s1, 0(a7)
        sd   s2, 8(a7)
        sd   s3, 16(a7)
        mv   a1, s2
        ret

hfold:  li   s4, {HIST}
        li   t0, 0            ; fold histogram into checksum
        li   t1, 0
hloop:  slli t2, t1, 3
        add  t2, t2, s4
        ld   t3, 0(t2)
        mul  t4, t3, t1       ; weight by symbol
        add  t0, t0, t4
        addi t1, t1, 1
        li   t5, 256
        blt  t1, t5, hloop
        mv   a1, t0
        ret
)";

} // namespace

Workload
buildBzip2(const WorkloadParams &p)
{
    const uint64_t in_len = 6 * 1024 * p.scale;
    const Addr in_buf = layout::dataBase;
    const Addr mtf_tab = layout::resultArea + 0x400;
    const Addr hist = layout::resultArea + 0x1000;

    // Skewed byte distribution with locality, as post-BWT data shows.
    Rng rng(p.seed * 0xcd11u + 23);
    std::vector<uint8_t> input(in_len);
    uint8_t recent[4] = {5, 9, 17, 33};
    for (auto &b : input) {
        if (rng.chance(0.6)) {
            b = recent[rng.below(4)]; // repeat a recent symbol
        } else {
            b = static_cast<uint8_t>(rng.below(96));
            recent[rng.below(4)] = b;
        }
    }

    // Reference model.
    uint64_t checksum = 0;
    {
        uint8_t table[256];
        for (int i = 0; i < 256; ++i)
            table[i] = static_cast<uint8_t>(i);
        uint64_t histo[256] = {};
        for (uint8_t b : input) {
            uint64_t pos = 0;
            while (table[pos] != b)
                ++pos;
            checksum += pos;
            ++histo[pos];
            for (uint64_t i = pos; i > 0; --i)
                table[i] = table[i - 1];
            table[0] = b;
        }
        uint64_t fold = 0;
        for (uint64_t sym = 0; sym < 256; ++sym)
            fold += histo[sym] * sym;
        checksum += fold << 16;
    }

    Workload w;
    w.name = "bzip2";
    w.description = "move-to-front transform with data-dependent scan "
                    "and shift loops";
    w.program = isa::assemble(substitute(kernelAsm, {
        {"MTFTAB", numStr(mtf_tab)},
        {"INBUF", numStr(in_buf)},
        {"INLEN", numStr(in_len)},
        {"HIST", numStr(hist)},
        {"STACKTOP", numStr(layout::stackTop)},
        {"CHUNK", numStr(512)},
    }));
    w.expectedResult = checksum;
    w.hasExpectedResult = true;
    w.initMemory = [prog = w.program, input, in_buf, hist](SparseMemory &mem) {
        isa::loadProgramData(prog, mem);
        mem.writeBlock(in_buf, input.data(), input.size());
        for (uint64_t i = 0; i < 256; ++i)
            mem.write(hist + i * 8, 8, 0);
    };
    return w;
}

} // namespace ubrc::workload::kernels
