/**
 * @file
 * Deterministic, seeded fault-injection engine.
 *
 * Models register-storage soft errors: at a configured per-cycle rate
 * the engine draws a fault site class and raw randomness from its own
 * PRNG; the processor maps the draw onto a live structure (a value
 * held in the register cache, a remaining-use counter, a degree-of-use
 * prediction counter, or a backing-file value) and flips one bit.
 *
 * Everything is driven by one xoshiro256** stream seeded from
 * FaultParams::seed, so the same seed over the same deterministic
 * simulation produces the same fault sites — a corruption can be
 * reproduced, attributed, and bisected. Every applied fault is logged
 * in a FaultRecord so diagnostics can name the poisoned structure.
 */

#ifndef UBRC_INJECT_FAULT_INJECTOR_HH
#define UBRC_INJECT_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace ubrc::inject
{

/** Fault site classes, usable as a bitmask in FaultParams::targets. */
enum Target : unsigned
{
    /** Flip a data bit of a value currently held in the cache. */
    TargetRegCacheValue = 1u << 0,
    /** Flip a bit of a register cache remaining-use counter. */
    TargetRegCacheUse = 1u << 1,
    /** Flip a bit of a degree-of-use prediction counter. */
    TargetDouCounter = 1u << 2,
    /** Flip a data bit of any allocated physical register. */
    TargetBackingValue = 1u << 3,

    TargetAll = (1u << 4) - 1,
};

const char *toString(Target t);

/** Injection configuration (part of SimConfig). */
struct FaultParams
{
    /** Per-cycle Bernoulli probability of attempting one fault. */
    double rate = 0.0;
    /** PRNG seed; same seed => identical fault sites. */
    uint64_t seed = 1;
    /** Bitmask of Target classes eligible for injection. */
    unsigned targets = TargetAll;

    bool enabled() const { return rate > 0.0; }
};

/** One applied fault, as logged for diagnostics and tests. */
struct FaultRecord
{
    Cycle cycle = 0;
    Target target = TargetRegCacheValue;
    /** Poisoned physical register, or DoU table index. */
    int32_t site = 0;
    /** Register cache set for cache targets; 0 otherwise. */
    unsigned detail = 0;
    /** Bit position that was flipped. */
    unsigned bit = 0;

    /** e.g. "cycle 812: register-cache value preg 87 set 12 bit 5". */
    std::string describe() const;

    bool
    operator==(const FaultRecord &o) const
    {
        return cycle == o.cycle && target == o.target &&
               site == o.site && detail == o.detail && bit == o.bit;
    }
};

/** A raw fault draw; the processor maps it onto a live structure. */
struct FaultDraw
{
    Target target;
    /** Raw randomness for site selection (reduce modulo live sites). */
    uint64_t site;
    /** Raw bit index in [0, 64); reduce to the field's width. */
    unsigned bit;
};

/** The seeded engine: one draw stream plus the applied-fault log. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultParams &params);

    /**
     * Per-cycle Bernoulli draw. Returns a fault draw on the (rare)
     * injecting cycles, nullopt otherwise. Always consumes the same
     * amount of randomness for a given outcome, keeping the stream
     * aligned across identical runs.
     */
    std::optional<FaultDraw> sample();

    /** Log a fault that was actually applied. */
    void record(const FaultRecord &rec) { records.push_back(rec); }

    const std::vector<FaultRecord> &log() const { return records; }
    const FaultParams &params() const { return cfg; }

  private:
    FaultParams cfg;
    Rng rng;
    std::vector<Target> eligible;
    std::vector<FaultRecord> records;
};

} // namespace ubrc::inject

#endif // UBRC_INJECT_FAULT_INJECTOR_HH
