#include "inject/fault_injector.hh"

#include <cinttypes>
#include <cstdio>

namespace ubrc::inject
{

const char *
toString(Target t)
{
    switch (t) {
      case TargetRegCacheValue: return "register-cache value";
      case TargetRegCacheUse: return "register-cache use counter";
      case TargetDouCounter: return "dou prediction counter";
      case TargetBackingValue: return "backing-file value";
      default: return "?";
    }
}

std::string
FaultRecord::describe() const
{
    char buf[160];
    switch (target) {
      case TargetRegCacheValue:
      case TargetRegCacheUse:
        std::snprintf(buf, sizeof(buf),
                      "cycle %" PRId64 ": %s preg %d set %u bit %u",
                      cycle, toString(target), site, detail, bit);
        break;
      case TargetDouCounter:
        std::snprintf(buf, sizeof(buf),
                      "cycle %" PRId64 ": %s entry %d bit %u", cycle,
                      toString(target), site, bit);
        break;
      case TargetBackingValue:
      default:
        std::snprintf(buf, sizeof(buf),
                      "cycle %" PRId64 ": %s preg %d bit %u", cycle,
                      toString(target), site, bit);
        break;
    }
    return buf;
}

FaultInjector::FaultInjector(const FaultParams &params)
    : cfg(params), rng(params.seed)
{
    for (unsigned b = 0; b < 4; ++b) {
        const Target t = static_cast<Target>(1u << b);
        if (cfg.targets & t)
            eligible.push_back(t);
    }
}

std::optional<FaultDraw>
FaultInjector::sample()
{
    if (eligible.empty() || !rng.chance(cfg.rate))
        return std::nullopt;
    FaultDraw draw;
    draw.target = eligible[rng.below(eligible.size())];
    draw.site = rng.next();
    draw.bit = static_cast<unsigned>(rng.below(64));
    return draw;
}

} // namespace ubrc::inject
