#include "regfile/two_level.hh"

#include <algorithm>

#include "common/log.hh"

namespace ubrc::regfile
{

TwoLevelFile::TwoLevelFile(const TwoLevelParams &params,
                           unsigned num_phys_regs,
                           stats::StatGroup &stat_group)
    : cfg(params), regs(num_phys_regs)
{
    st.transfersDown = &stat_group.scalar("tl_transfers_to_l2");
    st.transfersUp = &stat_group.scalar("tl_transfers_to_l1");
    st.recoveries = &stat_group.scalar("tl_recoveries");
}

void
TwoLevelFile::allocate(PhysReg preg)
{
    RegState &r = regs[preg];
    if (r.allocated)
        panic("two-level: double allocation of preg %d", int(preg));
    r = RegState{};
    r.allocated = true;
    r.inL1 = true;
    ++l1Used;
}

bool
TwoLevelFile::eligible(const RegState &r) const
{
    return r.allocated && r.inL1 && r.written && r.reassigned &&
           r.pendingConsumers == 0;
}

void
TwoLevelFile::maybeQueue(PhysReg preg)
{
    RegState &r = regs[preg];
    if (eligible(r) && !r.queuedForTransfer) {
        r.queuedForTransfer = true;
        transferQueue.push_back(preg);
    }
}

void
TwoLevelFile::onWrite(PhysReg preg)
{
    regs[preg].written = true;
    maybeQueue(preg);
}

void
TwoLevelFile::onConsumerRenamed(PhysReg preg)
{
    ++regs[preg].pendingConsumers;
}

void
TwoLevelFile::onConsumerDone(PhysReg preg)
{
    RegState &r = regs[preg];
    if (r.pendingConsumers > 0)
        --r.pendingConsumers;
    maybeQueue(preg);
}

void
TwoLevelFile::onArchReassigned(PhysReg preg)
{
    regs[preg].reassigned = true;
    maybeQueue(preg);
}

void
TwoLevelFile::onArchReassignCancelled(PhysReg preg)
{
    regs[preg].reassigned = false;
}

void
TwoLevelFile::onFree(PhysReg preg)
{
    RegState &r = regs[preg];
    if (r.inL1) {
        if (l1Used == 0)
            panic("two-level: L1 occupancy underflow");
        --l1Used;
    }
    r = RegState{};
}

void
TwoLevelFile::onSquash(PhysReg preg)
{
    onFree(preg);
}

void
TwoLevelFile::tick(Cycle now)
{
    (void)now;
    if (cfg.l1Entries - l1Used >= cfg.freeThreshold)
        return;
    unsigned moved = 0;
    while (moved < cfg.bandwidth && !transferQueue.empty()) {
        const PhysReg preg = transferQueue.back();
        transferQueue.pop_back();
        RegState &r = regs[preg];
        r.queuedForTransfer = false;
        if (!eligible(r))
            continue; // stale queue entry
        r.inL1 = false;
        --l1Used;
        ++moved;
        ++*st.transfersDown;
    }
}

Cycle
TwoLevelFile::recover(const std::vector<PhysReg> &pregs, Cycle now)
{
    unsigned to_copy = 0;
    for (PhysReg preg : pregs) {
        RegState &r = regs[preg];
        if (r.allocated && !r.inL1) {
            r.inL1 = true;
            ++l1Used; // may transiently exceed capacity, see header
            ++to_copy;
            ++*st.transfersUp;
        }
    }
    if (to_copy == 0)
        return now;
    ++*st.recoveries;
    const Cycle batches =
        static_cast<Cycle>((to_copy + cfg.bandwidth - 1) / cfg.bandwidth);
    return now + cfg.l2Latency + batches;
}

} // namespace ubrc::regfile
