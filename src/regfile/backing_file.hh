/**
 * @file
 * Timing model of the backing register file behind a register cache
 * (Section 2.2). The backing file receives every produced value
 * (write bandwidth is full) but serves reads only on register cache
 * misses, so a single read port — shared with one of the write ports —
 * suffices. This class arbitrates that port and accounts for the
 * producer's write completing before the value can be read back.
 */

#ifndef UBRC_REGFILE_BACKING_FILE_HH
#define UBRC_REGFILE_BACKING_FILE_HH

#include <algorithm>

#include "common/stats.hh"
#include "common/types.hh"

namespace ubrc::regfile
{

/** Read-port arbiter and latency model for the backing file. */
class BackingFile
{
  public:
    BackingFile(Cycle latency, stats::StatGroup &stat_group)
        : lat(latency),
          reads(&stat_group.scalar("backing_reads")),
          writes(&stat_group.scalar("backing_writes"))
    {}

    Cycle latency() const { return lat; }

    /**
     * Record a produced value's write. The write pipeline starts the
     * cycle after execution completes and takes the file latency.
     * @return cycle at whose end the value is present in the file.
     */
    Cycle
    noteWrite(Cycle producer_done)
    {
        ++*writes;
        return producer_done + lat;
    }

    /**
     * Schedule a miss-fill read through the single shared read port
     * (new read accepted at most once per cycle; latency pipelined).
     *
     * @param request_cycle Earliest cycle the read may begin.
     * @param value_in_file_at Cycle the producer's write completes
     *        (from noteWrite); the read cannot return data earlier.
     * @return cycle at whose end the data is available to bypass.
     */
    Cycle
    scheduleRead(Cycle request_cycle, Cycle value_in_file_at)
    {
        const Cycle start = std::max(request_cycle, portFreeAt);
        portFreeAt = start + 1;
        ++*reads;
        return std::max(start + lat - 1, value_in_file_at);
    }

  private:
    Cycle lat;
    Cycle portFreeAt = 0;
    stats::Scalar *reads;
    stats::Scalar *writes;
};

} // namespace ubrc::regfile

#endif // UBRC_REGFILE_BACKING_FILE_HH
