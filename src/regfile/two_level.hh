/**
 * @file
 * Two-level register file after Balasubramonian et al. (MICRO 2001),
 * with the paper's four optimistic modifications (Section 5.5):
 * 4-registers/cycle L1-L2 bandwidth, explicit recovery transfers, an
 * infinite L2, and a unified integer/FP file (we charge the 32-entry
 * L1 capacity penalty by construction: callers size the L1 as
 * cacheEntries + 32).
 *
 * Semantics modelled:
 *  - Every result is written to the L1 file; rename requires a free
 *    L1 slot or it stalls.
 *  - A value becomes *eligible* for transfer to L2 once it has been
 *    written, has no renamed-but-unexecuted consumers, and its
 *    architectural register has been reassigned.
 *  - When free L1 slots drop below a threshold, up to `bandwidth`
 *    eligible values per cycle move to L2, freeing their L1 slots.
 *  - On a control mis-speculation, restored mappings whose values
 *    live in L2 must be copied back before they can be read; the
 *    copy-back proceeds at `bandwidth`/cycle after `l2Latency` and
 *    overlaps the front-end refill, stalling rename if incomplete.
 */

#ifndef UBRC_REGFILE_TWO_LEVEL_HH
#define UBRC_REGFILE_TWO_LEVEL_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ubrc::regfile
{

/** Two-level register file parameters. */
struct TwoLevelParams
{
    unsigned l1Entries = 96;   ///< cache entries + 32 in comparisons
    unsigned freeThreshold = 8; ///< transfer when free slots < this
    unsigned bandwidth = 4;    ///< L1<->L2 registers per cycle
    Cycle l2Latency = 2;
};

/** State machine for the two-level register file. */
class TwoLevelFile
{
  public:
    TwoLevelFile(const TwoLevelParams &params, unsigned num_phys_regs,
                 stats::StatGroup &stat_group);

    /** True if rename can allocate an L1 slot this cycle. */
    bool canAllocate() const { return l1Used < cfg.l1Entries; }

    /** Allocate an L1 slot for a newly renamed value. */
    void allocate(PhysReg preg);

    /** The value was produced (written into its L1 slot). */
    void onWrite(PhysReg preg);

    /** A consumer of preg was renamed / has executed. */
    void onConsumerRenamed(PhysReg preg);
    void onConsumerDone(PhysReg preg);

    /** The architectural register mapping to preg was overwritten. */
    void onArchReassigned(PhysReg preg);

    /** The overwrite of preg's arch register was squashed. */
    void onArchReassignCancelled(PhysReg preg);

    /** The physical register was freed (retire of overwriter). */
    void onFree(PhysReg preg);

    /** The producing instruction of preg was squashed. */
    void onSquash(PhysReg preg);

    /** Background transfer engine; call once per cycle. */
    void tick(Cycle now);

    /**
     * Recovery: `pregs` are again architecturally mapped after a
     * squash. Any of them resident in L2 are copied back.
     * @return cycle at whose end all values are in L1 again.
     */
    Cycle recover(const std::vector<PhysReg> &pregs, Cycle now);

    /** Is the value currently in the L1 file? */
    bool inL1(PhysReg preg) const { return regs[preg].inL1; }

    /** Is the physical register live in either level? */
    bool isAllocated(PhysReg preg) const { return regs[preg].allocated; }

    unsigned l1Occupancy() const { return l1Used; }

  private:
    struct RegState
    {
        bool allocated = false;
        bool inL1 = false;      ///< occupies an L1 slot
        bool written = false;
        bool reassigned = false;
        uint32_t pendingConsumers = 0;
        bool queuedForTransfer = false;
    };

    bool eligible(const RegState &r) const;
    void maybeQueue(PhysReg preg);

    TwoLevelParams cfg;
    std::vector<RegState> regs;
    std::vector<PhysReg> transferQueue;
    unsigned l1Used = 0;

    struct
    {
        stats::Scalar *transfersDown, *transfersUp, *recoveries;
    } st;
};

} // namespace ubrc::regfile

#endif // UBRC_REGFILE_TWO_LEVEL_HH
