/**
 * @file
 * Chase–Lev work-stealing deque over 64-bit task words.
 *
 * The owning worker pushes and pops at the bottom (LIFO, cache-warm);
 * thieves steal from the top (FIFO, oldest first — which for the
 * replay surface means a thief takes the span furthest from the
 * owner's hot decoded trace). The memory-order discipline follows the
 * C11 formalization of the algorithm (Lê, Pop, Cohen, Zappa Nardelli,
 * "Correct and Efficient Work-Stealing for Weak Memory Models",
 * PPoPP 2013): the owner's pop and the thieves' steal race on `top`
 * with a seq_cst CAS, so a task word is delivered exactly once.
 *
 * Buffer cells are std::atomic<TaskWord>: a cell may be read by a
 * thief while the owner overwrites it after a grow, and atomics make
 * that race benign (the CAS on `top` decides whose value counts) and
 * keep the structure clean under TSan. Retired buffers from grows are
 * kept alive until the deque dies because a slow thief may still be
 * reading through the old buffer pointer.
 *
 * Single-owner discipline: pushBottom/popBottom/grow are owner-only,
 * steal is any-thread. The class itself carries no mutex — the only
 * blocking in the scheduler lives in the injector, not the deques.
 */

#ifndef UBRC_SCHED_DEQUE_HH
#define UBRC_SCHED_DEQUE_HH

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sched/task.hh"

namespace ubrc::sched
{

class WorkDeque
{
  public:
    explicit WorkDeque(size_t initial_capacity = 64)
        : buffer(std::make_unique<Ring>(initial_capacity))
    {
        bufferPtr.store(buffer.get(), std::memory_order_release);
    }

    WorkDeque(const WorkDeque &) = delete;
    WorkDeque &operator=(const WorkDeque &) = delete;

    /** Owner only: append a task at the bottom. */
    void
    pushBottom(TaskWord w)
    {
        const int64_t b = bottom.load(std::memory_order_relaxed);
        const int64_t t = top.load(std::memory_order_acquire);
        Ring *ring = buffer.get();
        if (b - t >= static_cast<int64_t>(ring->capacity()) - 1)
            ring = grow(t, b);
        ring->put(b, w);
        std::atomic_thread_fence(std::memory_order_release);
        bottom.store(b + 1, std::memory_order_relaxed);
    }

    /** Owner only: take the most recently pushed task. */
    bool
    popBottom(TaskWord &out)
    {
        const int64_t b = bottom.load(std::memory_order_relaxed) - 1;
        Ring *ring = buffer.get();
        bottom.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t t = top.load(std::memory_order_relaxed);
        if (t > b) {
            // Deque was empty; restore the canonical state.
            bottom.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = ring->get(b);
        if (t < b)
            return true; // more than one task left, no race possible
        // Single task left: race the thieves for it via `top`.
        const bool won = top.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst,
            std::memory_order_relaxed);
        bottom.store(b + 1, std::memory_order_relaxed);
        return won;
    }

    /** Any thread: try to take the oldest task. False on empty or a
     *  lost race — callers treat both as "try elsewhere". */
    bool
    steal(TaskWord &out)
    {
        int64_t t = top.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const int64_t b = bottom.load(std::memory_order_acquire);
        if (t >= b)
            return false;
        // Read through the current buffer pointer: if the owner grows
        // concurrently, the old ring stays alive (retired list) and
        // holds the same word at this index.
        Ring *ring = bufferPtr.load(std::memory_order_acquire);
        const TaskWord w = ring->get(t);
        if (!top.compare_exchange_strong(t, t + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed))
            return false;
        out = w;
        return true;
    }

    /** Approximate size (racy; for stats and idle heuristics only). */
    size_t
    sizeApprox() const
    {
        const int64_t b = bottom.load(std::memory_order_relaxed);
        const int64_t t = top.load(std::memory_order_relaxed);
        return b > t ? static_cast<size_t>(b - t) : 0;
    }

  private:
    /** Fixed-size power-of-two ring of atomic task words. */
    class Ring
    {
      public:
        explicit Ring(size_t capacity)
            : mask(capacity - 1), cells(capacity)
        {
            assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
        }

        size_t capacity() const { return mask + 1; }

        void
        put(int64_t index, TaskWord w)
        {
            cells[static_cast<size_t>(index) & mask].store(
                w, std::memory_order_relaxed);
        }

        TaskWord
        get(int64_t index) const
        {
            return cells[static_cast<size_t>(index) & mask].load(
                std::memory_order_relaxed);
        }

      private:
        size_t mask;
        std::vector<std::atomic<TaskWord>> cells;
    };

    /** Owner only: double the ring, keeping the old one alive for
     *  in-flight thieves. */
    Ring *
    grow(int64_t t, int64_t b)
    {
        Ring *old = buffer.get();
        auto bigger = std::make_unique<Ring>(old->capacity() * 2);
        for (int64_t i = t; i < b; ++i)
            bigger->put(i, old->get(i));
        retired.push_back(std::move(buffer));
        buffer = std::move(bigger);
        bufferPtr.store(buffer.get(), std::memory_order_release);
        return buffer.get();
    }

    // `buffer` is the owner's view; `bufferPtr` is the same pointer
    // published for thieves. Keeping both lets the owner skip an
    // atomic load on its hot path.
    std::unique_ptr<Ring> buffer;
    std::atomic<Ring *> bufferPtr{nullptr};
    std::vector<std::unique_ptr<Ring>> retired; // owner only

    std::atomic<int64_t> top{0};
    std::atomic<int64_t> bottom{0};
};

} // namespace ubrc::sched

#endif // UBRC_SCHED_DEQUE_HH
