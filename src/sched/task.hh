/**
 * @file
 * Packed 64-bit task words for the work-stealing scheduler.
 *
 * Every unit of work that flows through the scheduler — a (config,
 * workload) grid point of a sweep, a server request slot, a replay
 * surface cell — is a single 64-bit word:
 *
 *     63..48  generation   guards group-slot reuse: a word whose
 *                          generation does not match its slot is
 *                          stale and is dropped, never executed
 *     47..32  group id     index into the scheduler's group table
 *                          (the "suite id" of a submitted batch)
 *     31..16  config index high half of the payload
 *     15..0   workload idx low half of the payload
 *
 * Words are plain integers, so deque cells can be lock-free atomics
 * and a steal moves a task with one 64-bit CAS-guarded read. The
 * payload halves are a convention, not a requirement: callers that
 * index a flat array (the sweep server's request slots) treat bits
 * 31..0 as one 32-bit payload via taskPayload()/packTask().
 */

#ifndef UBRC_SCHED_TASK_HH
#define UBRC_SCHED_TASK_HH

#include <cstdint>

namespace ubrc::sched
{

using TaskWord = uint64_t;

constexpr unsigned taskGenBits = 16;
constexpr unsigned taskGroupBits = 16;
constexpr unsigned taskPayloadBits = 32;

/** Largest payload a task word can carry. */
constexpr uint32_t taskPayloadMax = 0xffffffffu;

constexpr TaskWord
packTask(uint16_t generation, uint16_t group, uint32_t payload)
{
    return (static_cast<TaskWord>(generation) << 48) |
           (static_cast<TaskWord>(group) << 32) |
           static_cast<TaskWord>(payload);
}

constexpr uint16_t
taskGeneration(TaskWord w)
{
    return static_cast<uint16_t>(w >> 48);
}

constexpr uint16_t
taskGroup(TaskWord w)
{
    return static_cast<uint16_t>((w >> 32) & 0xffffu);
}

constexpr uint32_t
taskPayload(TaskWord w)
{
    return static_cast<uint32_t>(w & 0xffffffffu);
}

/** Payload convention for sweep grids: (config index, workload index). */
constexpr uint32_t
packPoint(uint16_t config_index, uint16_t workload_index)
{
    return (static_cast<uint32_t>(config_index) << 16) |
           static_cast<uint32_t>(workload_index);
}

constexpr uint16_t
pointConfig(uint32_t payload)
{
    return static_cast<uint16_t>(payload >> 16);
}

constexpr uint16_t
pointWorkload(uint32_t payload)
{
    return static_cast<uint16_t>(payload & 0xffffu);
}

} // namespace ubrc::sched

#endif // UBRC_SCHED_TASK_HH
