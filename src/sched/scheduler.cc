#include "sched/scheduler.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace ubrc::sched
{

namespace
{

/** Set inside workerMain; guards against wait()-from-worker deadlock. */
thread_local bool t_schedWorker = false;

/** Explicit setGlobalWorkers() value; 0 means "use UBRC_JOBS / 1". */
std::atomic<unsigned> g_configuredWorkers{0};

/** Worker count the global scheduler was actually built with (0 =
 *  not built yet). */
std::atomic<unsigned> g_globalBuiltWorkers{0};

} // namespace

stats::StatGroup
SchedStats::toStatGroup() const
{
    stats::StatGroup g("sched");
    g.scalar("workers") += workers;
    g.scalar("submitted") += submitted;
    g.scalar("tasks_run") += tasksRun;
    g.scalar("steals") += steals;
    g.scalar("steal_failures") += stealFailures;
    g.scalar("stale_drops") += staleDrops;
    for (size_t i = 0; i < perWorker.size(); ++i) {
        const std::string suffix = "_w" + std::to_string(i);
        g.scalar("tasks_run" + suffix) += perWorker[i].tasksRun;
        g.scalar("steals" + suffix) += perWorker[i].steals;
        g.scalar("busy_us" + suffix) += perWorker[i].busyMicros;
    }
    return g;
}

Scheduler::Scheduler(const SchedConfig &config)
    : numWorkers(config.workers ? config.workers : 1),
      stealSeed(config.stealSeed)
{
    perWorker.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        perWorker.push_back(std::make_unique<WorkerState>());
    threads.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        threads.emplace_back([this, i] { workerMain(i); });
}

Scheduler::~Scheduler()
{
    stopFlag.store(true, std::memory_order_relaxed);
    workCv.notifyAll();
    for (auto &t : threads)
        t.join();
}

GroupHandle
Scheduler::createGroup(TaskGroup::Fn fn)
{
    // make_shared cannot reach the private constructor; the pointer
    // goes straight into the shared_ptr. ubrc-lint: allow(naked-new)
    GroupHandle g(new TaskGroup(std::move(fn)));
    LockGuard lock(injMu);
    uint16_t slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
    } else {
        if (groupSlots.size() >= (1u << taskGroupBits))
            fatal("scheduler: more than %u live task groups",
                  1u << taskGroupBits);
        slot = static_cast<uint16_t>(groupSlots.size());
        groupSlots.emplace_back();
    }
    g->slot = slot;
    g->generation = groupSlots[slot].generation;
    groupSlots[slot].group = g;
    return g;
}

void
Scheduler::submit(const GroupHandle &g, uint32_t payload)
{
    const TaskWord w = packTask(g->generation, g->slot, payload);
    g->pending.fetch_add(1, std::memory_order_relaxed);
    {
        LockGuard lock(injMu);
        injector.push_back(w);
    }
    submittedCount.fetch_add(1, std::memory_order_relaxed);
    available.fetch_add(1, std::memory_order_release);
    workCv.notifyOne();
}

void
Scheduler::submitAll(const GroupHandle &g,
                     const std::vector<uint32_t> &payloads)
{
    if (payloads.empty())
        return;
    g->pending.fetch_add(payloads.size(), std::memory_order_relaxed);
    {
        LockGuard lock(injMu);
        for (const uint32_t p : payloads)
            injector.push_back(packTask(g->generation, g->slot, p));
    }
    submittedCount.fetch_add(payloads.size(),
                             std::memory_order_relaxed);
    available.fetch_add(payloads.size(), std::memory_order_release);
    workCv.notifyAll();
}

void
Scheduler::wait(const GroupHandle &g)
{
    if (t_schedWorker)
        fatal("scheduler: wait() called from a worker thread "
              "(nested waits would deadlock the pool)");
    {
        LockGuard lock(g->mu);
        g->doneCv.wait(g->mu, [&] {
            return g->pending.load(std::memory_order_acquire) == 0;
        });
    }
    releaseSlot(g);
    std::exception_ptr err;
    {
        LockGuard lock(g->mu);
        err = g->firstError;
    }
    if (err)
        std::rethrow_exception(err);
}

void
Scheduler::releaseSlot(const GroupHandle &g)
{
    LockGuard lock(injMu);
    GroupSlot &slot = groupSlots[g->slot];
    if (slot.group.get() != g.get())
        return; // already released (double wait)
    ++slot.generation;
    slot.group.reset();
    freeSlots.push_back(g->slot);
}

GroupHandle
Scheduler::resolve(TaskWord w)
{
    LockGuard lock(injMu);
    const uint16_t slot = taskGroup(w);
    if (slot >= groupSlots.size())
        return nullptr;
    if (groupSlots[slot].generation != taskGeneration(w))
        return nullptr;
    return groupSlots[slot].group;
}

bool
Scheduler::refillFromInjector(unsigned id, TaskWord &out)
{
    // Grab a contiguous chunk: one to run now, the rest into our own
    // deque. Chunking is what gives submission order its locality —
    // consecutive payloads (one trace's grid points, one suite's
    // workloads) land on one worker unless a thief rebalances.
    std::vector<TaskWord> chunk;
    {
        LockGuard lock(injMu);
        if (injector.empty())
            return false;
        size_t take =
            (injector.size() + numWorkers - 1) / numWorkers;
        if (take > injector.size())
            take = injector.size();
        chunk.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            chunk.push_back(injector.front());
            injector.pop_front();
        }
    }
    out = chunk.front();
    available.fetch_sub(1, std::memory_order_relaxed);
    // Push the remainder in reverse so the owner's LIFO pops walk the
    // chunk in submission order.
    WorkerState &me = *perWorker[id];
    for (size_t i = chunk.size(); i > 1; --i)
        me.deque.pushBottom(chunk[i - 1]);
    return true;
}

void
Scheduler::execute(unsigned id, TaskWord w)
{
    WorkerState &me = *perWorker[id];
    GroupHandle g = resolve(w);
    if (!g) {
        // Generation mismatch: the group was released while this word
        // was in flight. Cannot happen while wait() gates release on
        // pending == 0; counted so the invariant is observable.
        staleDropCount.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (g->poisoned.load(std::memory_order_relaxed)) {
        staleDropCount.fetch_add(1, std::memory_order_relaxed);
    } else {
        const auto t0 = std::chrono::steady_clock::now();
        try {
            g->fn(taskPayload(w));
        } catch (...) {
            g->recordError(std::current_exception());
        }
        me.busyMicros.fetch_add(
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
        me.tasksRun.fetch_add(1, std::memory_order_relaxed);
    }
    if (g->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task: wake the waiter. Taking the group mutex orders
        // this notify after the waiter's predicate check, so the
        // wakeup cannot be lost.
        LockGuard lock(g->mu);
        g->doneCv.notifyAll();
    }
}

void
Scheduler::workerMain(unsigned id)
{
    t_schedWorker = true;
    WorkerState &me = *perWorker[id];
    StealPolicy policy(stealSeed, id, numWorkers);
    unsigned idleRounds = 0;

    while (true) {
        TaskWord w = 0;
        bool got = me.deque.popBottom(w);
        if (got)
            available.fetch_sub(1, std::memory_order_relaxed);
        if (!got)
            got = refillFromInjector(id, w);
        if (!got && numWorkers > 1) {
            for (unsigned attempt = 0;
                 attempt + 1 < numWorkers && !got; ++attempt) {
                const unsigned victim = policy.next();
                if (perWorker[victim]->deque.steal(w)) {
                    got = true;
                    available.fetch_sub(1,
                                        std::memory_order_relaxed);
                    me.steals.fetch_add(1,
                                        std::memory_order_relaxed);
                }
            }
            if (!got)
                stealFailRounds.fetch_add(1,
                                          std::memory_order_relaxed);
        }
        if (got) {
            idleRounds = 0;
            execute(id, w);
            continue;
        }
        if (stopFlag.load(std::memory_order_relaxed))
            return;
        // Bounded backoff: a few yield rounds catch work that is one
        // race away; after that, a timed sleep caps both idle spin
        // and the latency of a wakeup racing the wait.
        if (++idleRounds < 4) {
            std::this_thread::yield();
            continue;
        }
        LockGuard lock(injMu);
        workCv.waitFor(injMu, std::chrono::microseconds(500), [&] {
            return stopFlag.load(std::memory_order_relaxed) ||
                   available.load(std::memory_order_acquire) > 0;
        });
    }
}

SchedStats
Scheduler::stats() const
{
    SchedStats s;
    s.workers = numWorkers;
    s.submitted = submittedCount.load(std::memory_order_relaxed);
    s.stealFailures =
        stealFailRounds.load(std::memory_order_relaxed);
    s.staleDrops = staleDropCount.load(std::memory_order_relaxed);
    s.perWorker.reserve(numWorkers);
    for (const auto &w : perWorker) {
        SchedStats::Worker ws;
        ws.tasksRun = w->tasksRun.load(std::memory_order_relaxed);
        ws.steals = w->steals.load(std::memory_order_relaxed);
        ws.busyMicros = w->busyMicros.load(std::memory_order_relaxed);
        s.tasksRun += ws.tasksRun;
        s.steals += ws.steals;
        s.perWorker.push_back(ws);
    }
    return s;
}

namespace
{

SchedConfig
globalConfig(unsigned size_hint)
{
    SchedConfig cfg;
    const unsigned configured =
        g_configuredWorkers.load(std::memory_order_relaxed);
    cfg.workers = configured
                      ? configured
                      : envJobs(size_hint ? size_hint : 1);
    g_globalBuiltWorkers.store(cfg.workers,
                               std::memory_order_relaxed);
    return cfg;
}

} // namespace

Scheduler &
Scheduler::global(unsigned size_hint)
{
    static Scheduler instance{globalConfig(size_hint)};
    return instance;
}

unsigned
globalWorkers()
{
    const unsigned configured =
        g_configuredWorkers.load(std::memory_order_relaxed);
    if (configured)
        return configured;
    return envJobs(1);
}

void
setGlobalWorkers(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    g_configuredWorkers.store(workers, std::memory_order_relaxed);
    const unsigned built =
        g_globalBuiltWorkers.load(std::memory_order_relaxed);
    if (built && built != workers)
        warn("scheduler: global pool already running with %u "
             "worker(s); requested %u ignored",
             built, workers);
}

unsigned
envJobs(unsigned default_jobs)
{
    const char *env = std::getenv("UBRC_JOBS");
    if (!env || !*env)
        return default_jobs;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        std::strchr(env, '-') != nullptr)
        fatal("UBRC_JOBS: cannot parse '%s' as a worker count", env);
    if (v == 0)
        fatal("UBRC_JOBS: worker count must be at least 1, got '%s'",
              env);
    if (v > 1024)
        fatal("UBRC_JOBS: worker count '%s' is out of range", env);
    return static_cast<unsigned>(v);
}

} // namespace ubrc::sched
