/**
 * @file
 * Global work-stealing task scheduler.
 *
 * One scheduler executes every parallel workload in the system: suite
 * sweeps (sim::runSuite / runSuites), sweep-server requests, and
 * bench replay surfaces all submit packed 64-bit task words
 * (sched/task.hh) and wait. Execution layers above this one no longer
 * construct threads (an ubrc-lint rule enforces it).
 *
 * Architecture:
 *  - Submissions land in a mutex-guarded injector queue.
 *  - Each worker owns a Chase–Lev deque (sched/deque.hh). An idle
 *    worker first pops its own deque, then refills from the injector
 *    in chunks of ceil(pending / workers) — pushing the remainder of
 *    the chunk to its own deque, which is what keeps consecutive
 *    grid points (and therefore a decoded trace) on one worker —
 *    and finally steals from victims chosen by a seeded,
 *    deterministic per-worker policy (StealPolicy).
 *  - Backoff is bounded: failed steal rounds escalate spin → yield →
 *    timed CondVar wait, so an idle scheduler burns no CPU and a
 *    submission wakes workers within the wait quantum.
 *
 * Determinism: the scheduler makes no ordering promises, and no caller
 * needs one — every task writes its result to a caller-owned slot
 * indexed by the task payload, so the merged output of a group is
 * identical whatever interleaving or stealing occurred. The regression
 * tests assert bit-identity of stolen-path suites against serial runs
 * while requiring steals > 0.
 *
 * Failure semantics mirror the old suite pool: a task that throws
 * poisons its group (remaining tasks are skipped, not run), the first
 * exception is kept, and wait() rethrows it. SimErrors never reach
 * this layer — runOneChecked and the server contain them per run.
 */

#ifndef UBRC_SCHED_SCHEDULER_HH
#define UBRC_SCHED_SCHEDULER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_annotations.hh"
#include "sched/deque.hh"
#include "sched/task.hh"

namespace ubrc::sched
{

/**
 * Seeded-deterministic victim selection: worker `self` visits the
 * other workers in an order derived only from (seed, self), so a
 * given build walks the same victim sequence every run. The sequence
 * never yields `self`.
 */
class StealPolicy
{
  public:
    StealPolicy(uint64_t seed, unsigned self, unsigned workers)
        : rng(seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))),
          selfId(self), numWorkers(workers)
    {}

    /** Next victim id in [0, workers) \ {self}. @pre workers >= 2. */
    unsigned
    next()
    {
        const unsigned v = static_cast<unsigned>(
            rng.below(numWorkers - 1));
        return v < selfId ? v : v + 1;
    }

  private:
    Rng rng;
    unsigned selfId;
    unsigned numWorkers;
};

struct SchedConfig
{
    /** Worker thread count; clamped to at least 1. */
    unsigned workers = 1;
    /** Seed for the deterministic steal policy. */
    uint64_t stealSeed = 0x5eedc0ffeeULL;
};

/** Point-in-time snapshot of scheduler counters. */
struct SchedStats
{
    struct Worker
    {
        uint64_t tasksRun = 0;
        uint64_t steals = 0;
        uint64_t busyMicros = 0;
    };

    unsigned workers = 0;
    uint64_t submitted = 0;
    uint64_t tasksRun = 0;
    uint64_t steals = 0;        ///< successful steals
    uint64_t stealFailures = 0; ///< failed whole-victim-scan rounds
    uint64_t staleDrops = 0;    ///< generation-mismatched or poisoned
    std::vector<Worker> perWorker;

    /**
     * Export through the common stats pipeline: a "sched" group with
     * lower_snake_case scalars (tasks_run, steals, steal_failures,
     * stale_drops, workers, submitted, busy_us_w<i>, tasks_run_w<i>)
     * so StatGroup::toJson() / dump() render it like any simulator
     * stat block.
     */
    stats::StatGroup toStatGroup() const;
};

class Scheduler;

/**
 * A batch of tasks sharing one execution function. Handles are
 * shared_ptrs: the scheduler's group table holds one reference until
 * the group is released in wait().
 */
class TaskGroup
{
  public:
    using Fn = std::function<void(uint32_t payload)>;

  private:
    friend class Scheduler;

    explicit TaskGroup(Fn f) : fn(std::move(f)) {}

    void
    recordError(std::exception_ptr err)
    {
        poisoned.store(true, std::memory_order_relaxed);
        LockGuard lock(mu);
        if (!firstError)
            firstError = std::move(err);
    }

    Fn fn;
    uint16_t slot = 0;
    uint16_t generation = 0;
    std::atomic<uint64_t> pending{0};
    std::atomic<bool> poisoned{false};

    Mutex mu;
    std::exception_ptr firstError UBRC_GUARDED_BY(mu);
    CondVar doneCv; // notified under mu when pending reaches 0
};

using GroupHandle = std::shared_ptr<TaskGroup>;

class Scheduler
{
  public:
    explicit Scheduler(const SchedConfig &config = {});

    /** Stops the workers; any still-queued tasks are discarded. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    unsigned workers() const { return numWorkers; }

    /**
     * Register a batch. `fn` runs once per submitted payload, on a
     * worker thread; it must confine its writes to payload-indexed
     * slots (or its own synchronized state).
     */
    GroupHandle createGroup(TaskGroup::Fn fn) UBRC_EXCLUDES(injMu);

    /** Enqueue one task. */
    void submit(const GroupHandle &g, uint32_t payload)
        UBRC_EXCLUDES(injMu);

    /** Enqueue a batch in order (order is where chunked refill gets
     *  its locality from; execution order is unspecified). */
    void submitAll(const GroupHandle &g,
                   const std::vector<uint32_t> &payloads)
        UBRC_EXCLUDES(injMu);

    /**
     * Block until every task submitted to `g` has finished, then
     * release the group's slot. Rethrows the first uncontained
     * exception if the group was poisoned. Terminal: submitting to a
     * waited group is a caller bug. Must not be called from a worker
     * thread (it would deadlock the pool).
     */
    void wait(const GroupHandle &g) UBRC_EXCLUDES(injMu);

    /** Snapshot the counters (cheap; safe while workers run). */
    SchedStats stats() const;

    /**
     * The process-wide scheduler, created on first use and alive
     * until process exit. Pool size, in priority order: an explicit
     * setGlobalWorkers() value, then strict-parsed UBRC_JOBS, then
     * `size_hint` from the first caller (e.g. a runSuite jobs
     * argument), then 1. Later hints do not resize the pool — one
     * global value governs every execution layer.
     */
    static Scheduler &global(unsigned size_hint = 0);

  private:
    struct GroupSlot
    {
        uint16_t generation = 0;
        GroupHandle group; // null when free
    };

    /** Per-worker state; cache-line padded so hot counters and the
     *  deque head do not false-share across workers. */
    struct alignas(64) WorkerState
    {
        WorkDeque deque;
        std::atomic<uint64_t> tasksRun{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> busyMicros{0};
    };

    void workerMain(unsigned id);
    bool refillFromInjector(unsigned id, TaskWord &out)
        UBRC_EXCLUDES(injMu);
    void execute(unsigned id, TaskWord w) UBRC_EXCLUDES(injMu);
    GroupHandle resolve(TaskWord w) UBRC_EXCLUDES(injMu);
    void releaseSlot(const GroupHandle &g) UBRC_EXCLUDES(injMu);

    const unsigned numWorkers;
    const uint64_t stealSeed;

    // The injector holds externally submitted words; the group table
    // maps word group-ids back to their TaskGroup. One mutex guards
    // both: submissions and group bookkeeping are cold paths next to
    // deque traffic.
    mutable Mutex injMu;
    std::deque<TaskWord> injector UBRC_GUARDED_BY(injMu);
    std::vector<GroupSlot> groupSlots UBRC_GUARDED_BY(injMu);
    std::vector<uint16_t> freeSlots UBRC_GUARDED_BY(injMu);
    CondVar workCv; // workers sleep here when nothing is runnable

    // Words available for pickup (injector + deques, excluding tasks
    // being executed). Sleep predicate for idle workers; incremented
    // by submit, decremented when a worker acquires a word.
    std::atomic<uint64_t> available{0};
    std::atomic<bool> stopFlag{false};

    std::atomic<uint64_t> submittedCount{0};
    std::atomic<uint64_t> stealFailRounds{0};
    std::atomic<uint64_t> staleDropCount{0};

    std::vector<std::unique_ptr<WorkerState>> perWorker;
    std::vector<std::thread> threads;
};

/**
 * Worker count for Scheduler::global(): an explicit
 * setGlobalWorkers() value wins, else strict-parsed UBRC_JOBS, else 1.
 */
unsigned globalWorkers();

/**
 * Configure the global scheduler's worker count (e.g. from a --jobs
 * or --workers flag). Must be called before the first Scheduler::
 * global() use to take effect; afterwards the pool size is fixed and
 * a differing value only logs a warning.
 */
void setGlobalWorkers(unsigned workers);

/**
 * Strict UBRC_JOBS parsing: returns `default_jobs` when unset, and
 * fails fast (log fatal) on garbage, 0, or values above 1024 — a
 * typo'd job count should never silently serialize a sweep.
 */
unsigned envJobs(unsigned default_jobs);

} // namespace ubrc::sched

#endif // UBRC_SCHED_SCHEDULER_HH
