/**
 * @file
 * Wire-level sweep requests for ubrcsim-server.
 *
 * One request frame is one line-delimited JSON document (see
 * common/framing.hh) asking for one (config, workload, budget)
 * simulation:
 *
 *   {"schema_version": 1, "kind": "sweep-request", "id": "r-17",
 *    "workload": "gzip", "seed": 1, "scale": 1,
 *    "max_insts": 20000, "deadline_ms": 2000,
 *    "config": {"scheme": "cached", "entries": 64, "assoc": 2,
 *               "insertion": "use-based", "replacement": "use-based",
 *               "indexing": "filtered-rr", "rf_latency": 3,
 *               "backing_latency": 2, "max_use": 7,
 *               "inject_rate": 0.0, "inject_seed": 1}}
 *
 * Every field except "kind" is optional and defaults to the paper's
 * design point, mirroring the ubrcsim CLI. An optional
 * "trace_replay": "<dir>" switches the run to trace replay against
 * <dir>/<workload>.ubrct on the server's filesystem (see src/trace);
 * admission probes the trace file so a missing or corrupt trace is
 * rejected with kind "trace format" before a worker is occupied.
 * Parsing is strict: an unknown key, a wrong type, or an unknown
 * policy name raises BadRequestError naming the offending key — a
 * typo must never silently simulate the wrong machine. Admission
 * limits (budget and scale caps) are enforced here too, so everything
 * that can reject a request happens before a worker is occupied.
 */

#ifndef UBRC_SERVER_REQUEST_HH
#define UBRC_SERVER_REQUEST_HH

#include <cstdint>
#include <string>

#include "common/json.hh"
#include "sim/config.hh"
#include "workload/workload.hh"

namespace ubrc::server
{

/** Version of the request/response wire protocol. */
inline constexpr unsigned protocolVersion = 1;

/** Admission limits applied while parsing (see ServerOptions). */
struct AdmissionLimits
{
    /** Largest admissible per-request instruction budget. */
    uint64_t maxInsts = 50000000;
    /** Largest admissible workload scale factor. */
    uint64_t maxScale = 256;
};

/** A parsed, admitted sweep request, ready to hand to a worker. */
struct SweepRequest
{
    /** Client-chosen request id, echoed verbatim in the response. */
    std::string id;
    std::string workloadName;
    workload::WorkloadParams params;
    uint64_t maxInsts = 500000;
    /** Per-request execution deadline; 0 defers to the server. */
    uint64_t deadlineMs = 0;
    sim::SimConfig config;
};

/** Document kinds a client may send. */
enum class RequestKind
{
    Sweep,    ///< "sweep-request": run one simulation
    Shutdown, ///< "shutdown": drain the queue and exit
};

/**
 * Classify a client frame by its "kind" member. Throws
 * BadRequestError for a missing or unknown kind.
 */
RequestKind classifyRequest(const json::Value &doc);

/**
 * Parse and admit a sweep-request document. Throws BadRequestError
 * (malformed, unknown key/workload/policy, over-limit budget) — the
 * caller still gets the config checked by SimConfig::validate(),
 * which throws ConfigError for semantically inconsistent knobs.
 */
SweepRequest parseSweepRequest(const json::Value &doc,
                               const AdmissionLimits &limits = {});

/**
 * Best-effort extraction of the request id from an arbitrary frame,
 * for error documents about requests that failed to parse. Returns
 * "" when absent or not a string.
 */
std::string requestIdOf(const json::Value &doc);

} // namespace ubrc::server

#endif // UBRC_SERVER_REQUEST_HH
