#include "server/server.hh"

#include <chrono>
#include <exception>
#include <utility>

#include "sim/results_json.hh"
#include "sim/runner.hh"
#include "trace/trace_replay.hh"
#include "workload/workload.hh"

namespace ubrc::server
{

namespace
{

/** {"kind": "...", "exit_code": N, "retryable": b, "message": ...} */
void
writeErrorObject(json::Writer &w, sim::ErrorKind kind,
                 const std::string &message)
{
    w.beginObject();
    w.field("kind", sim::toString(kind));
    w.field("exit_code", sim::exitCodeFor(kind));
    w.field("retryable", sim::isRetryable(kind));
    w.field("message", message);
    w.endObject();
}

std::string
helloDoc(const ServerOptions &opts)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "server-hello");
    w.field("protocol", protocolVersion);
    w.field("workers", opts.workers);
    w.field("queue_capacity", uint64_t(opts.queueCapacity));
    w.field("max_frame_bytes", uint64_t(opts.maxFrameBytes));
    w.field("default_deadline_ms", opts.defaultDeadlineMs);
    w.field("max_insts_cap", opts.limits.maxInsts);
    w.key("workloads").beginArray();
    for (const auto &name : workload::workloadNames())
        w.value(name);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
rejectDoc(const std::string &id, sim::ErrorKind kind,
          const std::string &message)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "sweep-reject");
    w.field("id", id);
    w.key("error");
    writeErrorObject(w, kind, message);
    w.endObject();
    return w.str();
}

std::string
responseDoc(const std::string &id, const sim::RunOutcome &outcome,
            double wall_ms)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "sweep-response");
    w.field("id", id);
    w.field("ok", outcome.ok);
    if (outcome.ok) {
        w.nullField("error");
    } else {
        w.key("error");
        writeErrorObject(w, outcome.kind, outcome.message);
    }
    w.field("wall_ms", wall_ms);
    w.key("outcome");
    sim::writeRunOutcome(w, outcome);
    w.endObject();
    return w.str();
}

std::string
drainDoc(DrainReason reason, const ServerCounters &c)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "server-drain");
    w.field("reason", toString(reason));
    w.key("counters").beginObject();
    w.field("received", c.received);
    w.field("admitted", c.admitted);
    w.field("ok", c.ok);
    w.field("failed", c.failed);
    w.field("rejected", c.rejected);
    w.field("shed", c.shed);
    w.field("canceled", c.canceled);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace

const char *
toString(DrainReason r)
{
    switch (r) {
      case DrainReason::Eof: return "eof";
      case DrainReason::Signal: return "signal";
      case DrainReason::ShutdownRequest: return "shutdown-request";
      case DrainReason::IoError: return "io-error";
    }
    return "?";
}

SweepServer::SweepServer(int in_fd, int out_fd,
                         const ServerOptions &opts)
    : opts(opts), reader(in_fd, opts.maxFrameBytes), writer(out_fd)
{}

SweepServer::~SweepServer()
{
    // serve() joins the pool; this only matters if serve() was never
    // called or threw, in which case the workers must not outlive us.
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
    }
    cv.notify_all();
    for (auto &t : pool)
        if (t.joinable())
            t.join();
}

void
SweepServer::requestStop()
{
    // First call: drain. Second call: abort in-flight runs too.
    if (stopFlag.exchange(true))
        hardCancel.store(true);
}

ServerCounters
SweepServer::counters() const
{
    ServerCounters c;
    c.received = nReceived.load();
    c.admitted = nAdmitted.load();
    c.ok = nOk.load();
    c.failed = nFailed.load();
    c.rejected = nRejected.load();
    c.shed = nShed.load();
    c.canceled = nCanceled.load();
    return c;
}

void
SweepServer::sendReject(const std::string &id, sim::ErrorKind kind,
                        const std::string &message)
{
    writer.writeLine(rejectDoc(id, kind, message));
}

bool
SweepServer::handleFrame(const std::string &line)
{
    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const json::ParseError &e) {
        ++nRejected;
        sendReject("", sim::ErrorKind::BadRequest,
                   std::string("bad json: ") + e.what());
        return true;
    }

    const std::string id = requestIdOf(doc);
    try {
        if (classifyRequest(doc) == RequestKind::Shutdown)
            return false;

        SweepRequest req = parseSweepRequest(doc, opts.limits);
        req.config.validate(); // ConfigError on inconsistent knobs
        // Replay admission: a missing or corrupt trace file is the
        // client's problem, rejected (kind "trace format") before a
        // worker is occupied.
        if (req.config.traceMode == sim::TraceMode::Replay)
            trace::probeTraceFile(trace::traceFilePath(
                req.config.traceDir, req.workloadName));
        if (req.deadlineMs == 0)
            req.deadlineMs = opts.defaultDeadlineMs;

        {
            std::lock_guard<std::mutex> lock(mu);
            if (queue.size() >= opts.queueCapacity)
                throw sim::QueueFullError(
                    "queue full (capacity " +
                    std::to_string(opts.queueCapacity) +
                    "); retry after backoff");
            queue.push_back(std::move(req));
        }
        cv.notify_one();
        ++nAdmitted;
    } catch (const sim::SimError &e) {
        if (e.kind() == sim::ErrorKind::QueueFull)
            ++nShed;
        else
            ++nRejected;
        sendReject(id, e.kind(), e.what());
    }
    return true;
}

void
SweepServer::runJob(const SweepRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    try {
        const workload::Workload w =
            workload::buildWorkload(req.workloadName, req.params);

        sim::RunControl ctl;
        if (req.deadlineMs)
            ctl = sim::RunControl::deadlineAfterMs(req.deadlineMs);
        ctl.cancel = &hardCancel;

        const sim::RunOutcome outcome =
            sim::runOneChecked(req.config, w, req.maxInsts, ctl);

        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (outcome.ok)
            ++nOk;
        else
            ++nFailed;
        writer.writeLine(responseDoc(req.id, outcome, wall_ms));
    } catch (const std::exception &e) {
        // Nothing above is expected to throw — the config was
        // validated at admission and runOneChecked() contains every
        // SimError — but an exception escaping a worker thread would
        // terminate the process, so this boundary is absolute.
        ++nFailed;
        sendReject(req.id, sim::ErrorKind::Invariant, e.what());
    }
}

void
SweepServer::workerMain()
{
    while (true) {
        SweepRequest req;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [this] { return closed || !queue.empty(); });
            if (queue.empty())
                return; // closed and drained
            req = std::move(queue.front());
            queue.pop_front();
        }
        runJob(req);
    }
}

int
SweepServer::serve()
{
    if (opts.emitHello)
        writer.writeLine(helloDoc(opts));

    pool.reserve(opts.workers);
    for (unsigned i = 0; i < opts.workers; ++i)
        pool.emplace_back(&SweepServer::workerMain, this);

    DrainReason reason = DrainReason::Eof;
    std::string line;
    bool reading = true;
    while (reading) {
        if (stopFlag.load()) {
            reason = DrainReason::Signal;
            break;
        }
        switch (reader.readLine(line)) {
          case framing::ReadStatus::Ok:
            ++nReceived;
            if (!handleFrame(line)) {
                reason = DrainReason::ShutdownRequest;
                reading = false;
            }
            break;
          case framing::ReadStatus::FrameTooLong:
            ++nReceived;
            ++nRejected;
            sendReject("", sim::ErrorKind::BadRequest,
                       "frame exceeds " +
                           std::to_string(opts.maxFrameBytes) +
                           " bytes");
            break;
          case framing::ReadStatus::Interrupted:
            break; // loop re-checks stopFlag
          case framing::ReadStatus::Eof:
            // A stop raised while we were blocked in read() still
            // drains as a signal stop (queued work is canceled).
            reason = stopFlag.load() ? DrainReason::Signal
                                     : DrainReason::Eof;
            reading = false;
            break;
          case framing::ReadStatus::IoError:
            reason = DrainReason::IoError;
            reading = false;
            break;
        }
    }

    // Drain. EOF and shutdown-request finish everything queued; a
    // signal stop (and a dead input stream) cancels queued requests
    // but lets in-flight runs finish — their deadlines still bound
    // them, and a second requestStop() aborts them at the next poll.
    const bool cancelQueued = reason == DrainReason::Signal ||
                              reason == DrainReason::IoError;
    std::deque<SweepRequest> dropped;
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
        if (cancelQueued)
            dropped.swap(queue);
    }
    cv.notify_all();
    for (const auto &req : dropped) {
        ++nCanceled;
        sendReject(req.id, sim::ErrorKind::Canceled,
                   "canceled: server draining before execution; "
                   "safe to resubmit");
    }
    for (auto &t : pool)
        t.join();
    pool.clear();

    writer.writeLine(drainDoc(reason, counters()));
    return reason == DrainReason::IoError ? 1 : 0;
}

} // namespace ubrc::server
