#include "server/server.hh"

#include <chrono>
#include <exception>
#include <utility>

#include "sim/results_json.hh"
#include "sim/runner.hh"
#include "trace/trace_recorder.hh"
#include "trace/trace_replay.hh"
#include "workload/workload.hh"

namespace ubrc::server
{

namespace
{

/** {"kind": "...", "exit_code": N, "retryable": b, "message": ...} */
void
writeErrorObject(json::Writer &w, sim::ErrorKind kind,
                 const std::string &message)
{
    w.beginObject();
    w.field("kind", sim::toString(kind));
    w.field("exit_code", sim::exitCodeFor(kind));
    w.field("retryable", sim::isRetryable(kind));
    w.field("message", message);
    w.endObject();
}

std::string
helloDoc(const ServerOptions &opts, unsigned effective_workers)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "server-hello");
    w.field("protocol", protocolVersion);
    w.field("workers", effective_workers);
    w.field("queue_capacity", uint64_t(opts.queueCapacity));
    w.field("max_frame_bytes", uint64_t(opts.maxFrameBytes));
    w.field("default_deadline_ms", opts.defaultDeadlineMs);
    w.field("max_insts_cap", opts.limits.maxInsts);
    w.key("workloads").beginArray();
    for (const auto &name : workload::workloadNames())
        w.value(name);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
rejectDoc(const std::string &id, sim::ErrorKind kind,
          const std::string &message)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "sweep-reject");
    w.field("id", id);
    w.key("error");
    writeErrorObject(w, kind, message);
    w.endObject();
    return w.str();
}

std::string
responseDoc(const std::string &id, const sim::RunOutcome &outcome,
            double wall_ms)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "sweep-response");
    w.field("id", id);
    w.field("ok", outcome.ok);
    if (outcome.ok) {
        w.nullField("error");
    } else {
        w.key("error");
        writeErrorObject(w, outcome.kind, outcome.message);
    }
    w.field("wall_ms", wall_ms);
    w.key("outcome");
    sim::writeRunOutcome(w, outcome);
    w.endObject();
    return w.str();
}

std::string
drainDoc(DrainReason reason, const ServerCounters &c,
         const sched::SchedStats &sched_stats)
{
    json::Writer w(false);
    w.beginObject();
    w.field("schema_version", sim::resultsSchemaVersion);
    w.field("kind", "server-drain");
    w.field("reason", toString(reason));
    w.key("counters").beginObject();
    w.field("received", c.received);
    w.field("admitted", c.admitted);
    w.field("ok", c.ok);
    w.field("failed", c.failed);
    w.field("rejected", c.rejected);
    w.field("shed", c.shed);
    w.field("canceled", c.canceled);
    w.field("trace_cache_hits", c.traceCacheHits);
    w.field("trace_cache_misses", c.traceCacheMisses);
    w.endObject();
    w.key("sched").raw(sched_stats.toStatGroup().toJson(false));
    w.endObject();
    return w.str();
}

} // namespace

const char *
toString(DrainReason r)
{
    switch (r) {
      case DrainReason::Eof: return "eof";
      case DrainReason::Signal: return "signal";
      case DrainReason::ShutdownRequest: return "shutdown-request";
      case DrainReason::IoError: return "io-error";
    }
    return "?";
}

SweepServer::SweepServer(int in_fd, int out_fd,
                         const ServerOptions &opts)
    : opts(opts), reader(in_fd, opts.maxFrameBytes), writer(out_fd),
      traceCache(opts.traceCacheCapacity)
{
    if (opts.workers > 0) {
        sched::SchedConfig cfg;
        cfg.workers = opts.workers;
        ownedSched = std::make_unique<sched::Scheduler>(cfg);
        sch = ownedSched.get();
    } else {
        sch = &sched::Scheduler::global();
    }
}

SweepServer::~SweepServer()
{
    // serve() waits out its group; this only matters if serve() was
    // never called or threw, in which case no task referencing this
    // server may outlive it.
    if (group) {
        cancelQueued.store(true);
        hardCancel.store(true);
        try {
            sch->wait(group);
        } catch (...) {
            // Destruction outranks a poisoned group's first error.
        }
        group.reset();
    }
}

void
SweepServer::requestStop()
{
    // First call: drain. Second call: abort in-flight runs too.
    if (stopFlag.exchange(true))
        hardCancel.store(true);
}

ServerCounters
SweepServer::counters() const
{
    ServerCounters c;
    c.received = nReceived.load();
    c.admitted = nAdmitted.load();
    c.ok = nOk.load();
    c.failed = nFailed.load();
    c.rejected = nRejected.load();
    c.shed = nShed.load();
    c.canceled = nCanceled.load();
    c.traceCacheHits = traceCache.hits();
    c.traceCacheMisses = traceCache.misses();
    return c;
}

void
SweepServer::sendReject(const std::string &id, sim::ErrorKind kind,
                        const std::string &message)
{
    writer.writeLine(rejectDoc(id, kind, message));
}

uint32_t
SweepServer::storeRequest(SweepRequest req)
{
    LockGuard lock(slotMu);
    uint32_t slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
        slots[slot] =
            std::make_unique<SweepRequest>(std::move(req));
    } else {
        slot = static_cast<uint32_t>(slots.size());
        slots.push_back(
            std::make_unique<SweepRequest>(std::move(req)));
    }
    return slot;
}

SweepRequest
SweepServer::takeRequest(uint32_t slot)
{
    LockGuard lock(slotMu);
    SweepRequest req = std::move(*slots[slot]);
    slots[slot].reset();
    freeSlots.push_back(slot);
    return req;
}

bool
SweepServer::handleFrame(const std::string &line)
{
    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const json::ParseError &e) {
        ++nRejected;
        sendReject("", sim::ErrorKind::BadRequest,
                   std::string("bad json: ") + e.what());
        return true;
    }

    const std::string id = requestIdOf(doc);
    try {
        if (classifyRequest(doc) == RequestKind::Shutdown)
            return false;

        SweepRequest req = parseSweepRequest(doc, opts.limits);
        req.config.validate(); // ConfigError on inconsistent knobs
        // Replay admission: a missing or corrupt trace file is the
        // client's problem, rejected (kind "trace format") before a
        // worker is occupied.
        if (req.config.traceMode == sim::TraceMode::Replay)
            trace::probeTraceFile(trace::traceFilePath(
                req.config.traceDir, req.workloadName));
        if (req.deadlineMs == 0)
            req.deadlineMs = opts.defaultDeadlineMs;

        // The reader is the only admitter, so the waiting count
        // cannot race upward between check and increment.
        if (queued.load(std::memory_order_acquire) >=
            opts.queueCapacity)
            throw sim::QueueFullError(
                "queue full (capacity " +
                std::to_string(opts.queueCapacity) +
                "); retry after backoff");
        const uint32_t slot = storeRequest(std::move(req));
        queued.fetch_add(1, std::memory_order_release);
        sch->submit(group, slot);
        ++nAdmitted;
    } catch (const sim::SimError &e) {
        if (e.kind() == sim::ErrorKind::QueueFull)
            ++nShed;
        else
            ++nRejected;
        sendReject(id, e.kind(), e.what());
    }
    return true;
}

sim::RunOutcome
SweepServer::runReplay(const SweepRequest &req,
                       const sim::RunControl &ctl)
{
    sim::RunOutcome out;
    try {
        const std::string path = trace::traceFilePath(
            req.config.traceDir, req.workloadName);
        const auto decoded = traceCache.acquire(path);
        if (decoded->meta.workload != req.workloadName)
            throw sim::TraceFormatError(
                "trace file '" + path + "' records workload '" +
                decoded->meta.workload + "', not '" +
                req.workloadName + "'");
        return sim::runDecodedReplayChecked(req.config, *decoded,
                                            req.maxInsts, ctl);
    } catch (const sim::ConfigError &) {
        throw; // a bad config is a caller bug, not a run hazard
    } catch (const sim::SimError &err) {
        // Containment identical to runOneChecked()'s replay path:
        // a trace gone bad between admission and execution is a
        // per-run failure, not a server hazard.
        out.ok = false;
        out.kind = err.kind();
        out.message = err.what();
    }
    return out;
}

void
SweepServer::runJob(const SweepRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    try {
        sim::RunControl ctl;
        if (req.deadlineMs)
            ctl = sim::RunControl::deadlineAfterMs(req.deadlineMs);
        ctl.cancel = &hardCancel;

        sim::RunOutcome outcome;
        if (req.config.traceMode == sim::TraceMode::Replay) {
            // The cached path: decode once per trace, replay per
            // request. No workload build — replay never touches it.
            outcome = runReplay(req, ctl);
        } else {
            const workload::Workload w = workload::buildWorkload(
                req.workloadName, req.params);
            outcome =
                sim::runOneChecked(req.config, w, req.maxInsts, ctl);
        }

        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (outcome.ok)
            ++nOk;
        else
            ++nFailed;
        writer.writeLine(responseDoc(req.id, outcome, wall_ms));
    } catch (const std::exception &e) {
        // Nothing above is expected to throw — the config was
        // validated at admission and runOneChecked() contains every
        // SimError — but an exception escaping a scheduler task would
        // poison the group and surface at drain, so this boundary is
        // absolute.
        ++nFailed;
        sendReject(req.id, sim::ErrorKind::Invariant, e.what());
    }
}

void
SweepServer::executeRequest(uint32_t slot)
{
    SweepRequest req;
    try {
        req = takeRequest(slot);
        queued.fetch_sub(1, std::memory_order_release);
        if (cancelQueued.load(std::memory_order_acquire)) {
            ++nCanceled;
            sendReject(req.id, sim::ErrorKind::Canceled,
                       "canceled: server draining before execution; "
                       "safe to resubmit");
            return;
        }
    } catch (const std::exception &e) {
        ++nFailed;
        sendReject(req.id, sim::ErrorKind::Invariant, e.what());
        return;
    }
    runJob(req);
}

int
SweepServer::serve()
{
    if (opts.emitHello)
        writer.writeLine(helloDoc(opts, effectiveWorkers()));

    group = sch->createGroup(
        [this](uint32_t slot) { executeRequest(slot); });

    DrainReason reason = DrainReason::Eof;
    std::string line;
    bool reading = true;
    while (reading) {
        if (stopFlag.load()) {
            reason = DrainReason::Signal;
            break;
        }
        switch (reader.readLine(line)) {
          case framing::ReadStatus::Ok:
            ++nReceived;
            if (!handleFrame(line)) {
                reason = DrainReason::ShutdownRequest;
                reading = false;
            }
            break;
          case framing::ReadStatus::FrameTooLong:
            ++nReceived;
            ++nRejected;
            sendReject("", sim::ErrorKind::BadRequest,
                       "frame exceeds " +
                           std::to_string(opts.maxFrameBytes) +
                           " bytes");
            break;
          case framing::ReadStatus::Interrupted:
            break; // loop re-checks stopFlag
          case framing::ReadStatus::Eof:
            // A stop raised while we were blocked in read() still
            // drains as a signal stop (queued work is canceled).
            reason = stopFlag.load() ? DrainReason::Signal
                                     : DrainReason::Eof;
            reading = false;
            break;
          case framing::ReadStatus::IoError:
            reason = DrainReason::IoError;
            reading = false;
            break;
        }
    }

    // Drain. EOF and shutdown-request finish everything queued; a
    // signal stop (and a dead input stream) answers queued requests
    // with retryable canceled rejections — the workers emit those as
    // they claim the tasks — but lets in-flight runs finish: their
    // deadlines still bound them, and a second requestStop() aborts
    // them at the next poll.
    if (reason == DrainReason::Signal ||
        reason == DrainReason::IoError)
        cancelQueued.store(true, std::memory_order_release);
    sch->wait(group);
    group.reset();

    writer.writeLine(drainDoc(reason, counters(), sch->stats()));
    return reason == DrainReason::IoError ? 1 : 0;
}

} // namespace ubrc::server
