#include "server/request.hh"

#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "sim/sim_error.hh"

namespace ubrc::server
{

namespace
{

[[noreturn]] void
reject(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[256];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    throw sim::BadRequestError(buf);
}

std::string
requireString(const json::Value &v, const char *key)
{
    if (!v.isString())
        reject("'%s' must be a string", key);
    return v.string;
}

/**
 * Extract an exact unsigned integer. JSON numbers are doubles, so
 * anything beyond 2^53 has already lost bits — reject it rather than
 * simulate a budget the client did not ask for.
 */
uint64_t
requireU64(const json::Value &v, const char *key)
{
    if (!v.isNumber())
        reject("'%s' must be a number", key);
    const double d = v.number;
    if (d < 0 || d != std::floor(d) || d > 9007199254740992.0)
        reject("'%s' must be a non-negative integer "
               "(got %g)", key, d);
    return static_cast<uint64_t>(d);
}

unsigned
requireUnsigned(const json::Value &v, const char *key)
{
    const uint64_t u = requireU64(v, key);
    if (u > 0xffffffffull)
        reject("'%s' must fit in 32 bits (got %llu)", key,
               static_cast<unsigned long long>(u));
    return static_cast<unsigned>(u);
}

double
requireF64(const json::Value &v, const char *key)
{
    if (!v.isNumber())
        reject("'%s' must be a number", key);
    return v.number;
}

bool
requireBool(const json::Value &v, const char *key)
{
    if (v.type != json::Value::Type::Bool)
        reject("'%s' must be a boolean", key);
    return v.boolean;
}

sim::RegScheme
parseScheme(const std::string &s)
{
    if (s == "cached")
        return sim::RegScheme::Cached;
    if (s == "monolithic")
        return sim::RegScheme::Monolithic;
    if (s == "two-level")
        return sim::RegScheme::TwoLevel;
    reject("unknown scheme '%s' (expected cached, monolithic, or "
           "two-level)", s.c_str());
}

regcache::InsertionPolicy
parseInsertion(const std::string &s)
{
    if (s == "always")
        return regcache::InsertionPolicy::Always;
    if (s == "non-bypass")
        return regcache::InsertionPolicy::NonBypass;
    if (s == "use-based")
        return regcache::InsertionPolicy::UseBased;
    reject("unknown insertion policy '%s' (expected always, "
           "non-bypass, or use-based)", s.c_str());
}

regcache::ReplacementPolicy
parseReplacement(const std::string &s)
{
    if (s == "lru")
        return regcache::ReplacementPolicy::LRU;
    if (s == "use-based")
        return regcache::ReplacementPolicy::UseBased;
    reject("unknown replacement policy '%s' (expected lru or "
           "use-based)", s.c_str());
}

regcache::IndexPolicy
parseIndexing(const std::string &s)
{
    if (s == "preg")
        return regcache::IndexPolicy::PhysReg;
    if (s == "round-robin")
        return regcache::IndexPolicy::RoundRobin;
    if (s == "minimum")
        return regcache::IndexPolicy::Minimum;
    if (s == "filtered-rr")
        return regcache::IndexPolicy::FilteredRoundRobin;
    reject("unknown indexing policy '%s' (expected preg, "
           "round-robin, minimum, or filtered-rr)", s.c_str());
}

/**
 * Apply the "config" object onto cfg. Strict: every key must be
 * recognized. The geometry convention matches the ubrcsim CLI
 * (assoc 0 = fully associative, two-level L1 = entries + 32).
 */
void
applyConfig(const json::Value &obj, sim::SimConfig &cfg)
{
    if (!obj.isObject())
        reject("'config' must be an object");

    unsigned entries = cfg.rc.entries;
    unsigned assoc = cfg.rc.assoc;

    for (const auto &[key, v] : obj.object) {
        if (key == "scheme") {
            cfg.scheme = parseScheme(requireString(v, "scheme"));
        } else if (key == "entries") {
            entries = requireUnsigned(v, "entries");
        } else if (key == "assoc") {
            assoc = requireUnsigned(v, "assoc");
        } else if (key == "insertion") {
            cfg.rc.insertion =
                parseInsertion(requireString(v, "insertion"));
        } else if (key == "replacement") {
            cfg.rc.replacement =
                parseReplacement(requireString(v, "replacement"));
        } else if (key == "indexing") {
            cfg.rc.indexing =
                parseIndexing(requireString(v, "indexing"));
        } else if (key == "rf_latency") {
            cfg.rfLatency = requireUnsigned(v, "rf_latency");
        } else if (key == "backing_latency") {
            cfg.backingLatency =
                requireUnsigned(v, "backing_latency");
        } else if (key == "max_use") {
            cfg.rc.maxUse = requireUnsigned(v, "max_use");
        } else if (key == "unknown_default") {
            cfg.rc.unknownDefault =
                requireUnsigned(v, "unknown_default");
        } else if (key == "fill_default") {
            cfg.rc.fillDefault =
                requireUnsigned(v, "fill_default");
        } else if (key == "high_use_threshold") {
            cfg.rc.highUseThreshold =
                requireUnsigned(v, "high_use_threshold");
        } else if (key == "dou_entries") {
            cfg.dou.entries = requireUnsigned(v, "dou_entries");
        } else if (key == "dou_assoc") {
            cfg.dou.assoc = requireUnsigned(v, "dou_assoc");
        } else if (key == "dou_conf_threshold") {
            cfg.dou.confThreshold =
                requireUnsigned(v, "dou_conf_threshold");
        } else if (key == "watchdog") {
            cfg.watchdogCycles = requireU64(v, "watchdog");
        } else if (key == "inject_rate") {
            const double r = requireF64(v, "inject_rate");
            if (r < 0.0 || r > 1.0)
                reject("'inject_rate' must be in [0, 1] (got %g)",
                       r);
            cfg.inject.rate = r;
        } else if (key == "inject_seed") {
            cfg.inject.seed = requireU64(v, "inject_seed");
        } else if (key == "checker") {
            cfg.checker = requireBool(v, "checker");
        } else if (key == "perfect_branch_prediction") {
            cfg.perfectBranchPrediction =
                requireBool(v, "perfect_branch_prediction");
        } else {
            reject("unknown config key '%s'", key.c_str());
        }
    }

    if (entries == 0)
        reject("'entries' must be positive");
    if (assoc == 0)
        assoc = entries; // fully associative, like the CLI
    cfg.rc.entries = entries;
    cfg.rc.assoc = assoc;
    cfg.twoLevel.l1Entries = entries + 32;
}

bool
knownWorkload(const std::string &name)
{
    for (const auto &n : workload::workloadNames())
        if (n == name)
            return true;
    return false;
}

} // namespace

RequestKind
classifyRequest(const json::Value &doc)
{
    if (!doc.isObject())
        reject("request frame must be a JSON object");
    const json::Value *kind = doc.find("kind");
    if (!kind)
        reject("request frame has no 'kind'");
    const std::string k = requireString(*kind, "kind");
    if (k == "sweep-request")
        return RequestKind::Sweep;
    if (k == "shutdown")
        return RequestKind::Shutdown;
    reject("unknown request kind '%s'", k.c_str());
}

SweepRequest
parseSweepRequest(const json::Value &doc, const AdmissionLimits &limits)
{
    SweepRequest req;
    req.config = sim::SimConfig::useBasedCache();
    bool sawMaxInsts = false;

    for (const auto &[key, v] : doc.object) {
        if (key == "schema_version") {
            if (requireU64(v, "schema_version") != 1)
                reject("unsupported schema_version %g (expected 1)",
                       v.number);
        } else if (key == "kind") {
            // Already classified by the caller.
        } else if (key == "id") {
            req.id = requireString(v, "id");
        } else if (key == "workload") {
            req.workloadName = requireString(v, "workload");
        } else if (key == "seed") {
            req.params.seed = requireU64(v, "seed");
        } else if (key == "scale") {
            req.params.scale = requireU64(v, "scale");
        } else if (key == "max_insts") {
            req.maxInsts = requireU64(v, "max_insts");
            sawMaxInsts = true;
        } else if (key == "deadline_ms") {
            req.deadlineMs = requireU64(v, "deadline_ms");
        } else if (key == "config") {
            applyConfig(v, req.config);
        } else if (key == "trace_replay") {
            req.config.traceMode = sim::TraceMode::Replay;
            req.config.traceDir = requireString(v, "trace_replay");
            if (req.config.traceDir.empty())
                reject("'trace_replay' must name a non-empty trace "
                       "directory");
        } else {
            reject("unknown request key '%s'", key.c_str());
        }
    }

    if (req.workloadName.empty())
        reject("request names no 'workload'");
    if (!knownWorkload(req.workloadName))
        reject("unknown workload '%s' (try ubrcsim --list)",
               req.workloadName.c_str());
    if (req.params.scale == 0 || req.params.scale > limits.maxScale)
        reject("'scale' must be in 1..%llu (got %llu)",
               static_cast<unsigned long long>(limits.maxScale),
               static_cast<unsigned long long>(req.params.scale));
    if (sawMaxInsts && req.maxInsts == 0)
        reject("'max_insts' 0 (run to completion) is not admitted "
               "by the server; state a budget");
    if (req.maxInsts > limits.maxInsts)
        reject("'max_insts' %llu exceeds the admission cap %llu",
               static_cast<unsigned long long>(req.maxInsts),
               static_cast<unsigned long long>(limits.maxInsts));

    return req;
}

std::string
requestIdOf(const json::Value &doc)
{
    const json::Value *id = doc.find("id");
    return id && id->isString() ? id->string : std::string();
}

} // namespace ubrc::server
