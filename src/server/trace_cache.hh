/**
 * @file
 * Decoded-trace cache for the sweep server.
 *
 * A trace_replay sweep replays one recorded trace against many
 * configurations, and wire-decoding the event stream dominates the
 * cost of a single replay — so re-reading and re-decoding the .ubrct
 * file per request throws away exactly the work the replay subsystem
 * was built to amortize. This cache keys decoded traces by (path,
 * mtime, content hash): an unchanged mtime is a hit without touching
 * the file; a changed mtime re-reads the (CRC-checked) container and
 * compares the FNV-1a hash of the event payload, reusing the decode
 * when only the timestamp moved. Capacity is bounded with LRU
 * eviction; hit/miss counters surface in the server-drain document.
 *
 * Entries are decoded with skip mask 0 (every event retained), so one
 * cached decode serves any requested configuration — a per-config
 * skip mask would fragment the cache for a memory saving the server's
 * capacity bound already provides.
 */

#ifndef UBRC_SERVER_TRACE_CACHE_HH
#define UBRC_SERVER_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "trace/trace_replay.hh"

namespace ubrc::server
{

class TraceCache
{
  public:
    /** @param capacity Decoded traces retained; 0 disables caching
     *                  (every acquire loads and decodes afresh). */
    explicit TraceCache(size_t capacity) : cap(capacity) {}

    /**
     * Return the decoded trace for `path`, from cache when valid.
     * Throws sim::TraceFormatError exactly like trace::loadTrace /
     * decodeTrace on a missing, corrupt, or truncated file. Thread-
     * safe; the returned trace is immutable and shared, so callers
     * can replay it concurrently.
     */
    std::shared_ptr<const trace::DecodedTrace>
    acquire(const std::string &path) UBRC_EXCLUDES(mu);

    uint64_t hits() const { return nHits.load(); }
    uint64_t misses() const { return nMisses.load(); }

  private:
    struct Entry
    {
        std::string path;
        std::filesystem::file_time_type mtime;
        std::string eventsHash; ///< FNV-1a-64 of the event payload
        uint64_t lastUse = 0;
        std::shared_ptr<const trace::DecodedTrace> decoded;
    };

    const size_t cap;

    mutable Mutex mu;
    std::vector<Entry> entries UBRC_GUARDED_BY(mu);
    uint64_t useClock UBRC_GUARDED_BY(mu) = 0;

    std::atomic<uint64_t> nHits{0};
    std::atomic<uint64_t> nMisses{0};
};

} // namespace ubrc::server

#endif // UBRC_SERVER_TRACE_CACHE_HH
