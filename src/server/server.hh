/**
 * @file
 * SweepServer: a persistent, fault-tolerant sweep service.
 *
 * The server reads sweep-request frames (server/request.hh) from a
 * file descriptor, runs each admitted request on a worker pool via
 * sim::runOneChecked(), and writes one response frame per request —
 * every request is answered exactly once, in completion order.
 *
 * Robustness model:
 *  - Per-request isolation. Any SimError — checker divergence,
 *    deadlock, injected-fault fallout, invariant violation — is
 *    contained by runOneChecked() and reported as a structured error
 *    document. A poisoned request can never take the server down.
 *  - Per-request deadlines. deadline_ms (or the server default)
 *    bounds execution wall time through sim::RunControl, layered on
 *    the forward-progress watchdog: the watchdog catches hung
 *    pipelines, the deadline bounds well-formed but oversized work.
 *    The deadline clock starts when a worker dequeues the request.
 *  - Bounded admission. The queue holds at most queueCapacity
 *    requests; beyond that, requests are shed with a retryable
 *    queue-full rejection (clients back off and resubmit).
 *  - Graceful drain. EOF or a "shutdown" frame finishes everything
 *    queued. requestStop() — async-signal-safe, called from SIGINT/
 *    SIGTERM handlers — finishes in-flight runs but answers queued
 *    requests with retryable canceled rejections; a second
 *    requestStop() also aborts in-flight runs at their next poll.
 *    Either way the server ends with a server-drain summary document.
 */

#ifndef UBRC_SERVER_SERVER_HH
#define UBRC_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/framing.hh"
#include "server/request.hh"
#include "sim/sim_error.hh"

namespace ubrc::server
{

/** Service-level tunables. */
struct ServerOptions
{
    /** Worker threads executing simulations. */
    unsigned workers = 2;
    /** Admitted requests waiting for a worker before shedding. */
    size_t queueCapacity = 16;
    /** Per-frame size limit for the reader. */
    size_t maxFrameBytes = framing::defaultMaxFrameBytes;
    /** Deadline applied when a request states none; 0 = unbounded. */
    uint64_t defaultDeadlineMs = 0;
    /** Budget/scale admission caps (request.hh). */
    AdmissionLimits limits;
    /** Emit the server-hello document on startup. */
    bool emitHello = true;
};

/** Monotonic service counters, reported in the drain document. */
struct ServerCounters
{
    uint64_t received = 0;  ///< complete frames read
    uint64_t admitted = 0;  ///< requests enqueued for execution
    uint64_t ok = 0;        ///< responses with ok == true
    uint64_t failed = 0;    ///< executed, contained failure
    uint64_t rejected = 0;  ///< bad request / config rejections
    uint64_t shed = 0;      ///< queue-full rejections
    uint64_t canceled = 0;  ///< queued requests canceled at drain
};

/** Why the serve loop ended (reported in the drain document). */
enum class DrainReason
{
    Eof,             ///< input stream ended
    Signal,          ///< requestStop() (typically SIGINT/SIGTERM)
    ShutdownRequest, ///< client sent a "shutdown" frame
    IoError,         ///< unrecoverable read error on the input fd
};

const char *toString(DrainReason r);

/** One server instance over an (input fd, output fd) pair. */
class SweepServer
{
  public:
    SweepServer(int in_fd, int out_fd, const ServerOptions &opts = {});
    ~SweepServer();

    /**
     * Serve until EOF, a shutdown frame, or requestStop(); drain;
     * write the server-drain summary. Returns the process exit code
     * (0 for every clean drain, including signal drains).
     */
    int serve();

    /**
     * Begin a graceful drain: only touches atomics, safe to call from
     * a signal handler. The first call stops admission and cancels
     * queued requests; a second call additionally aborts in-flight
     * runs at their next RunControl poll.
     */
    void requestStop();

    /** Counter snapshot (stable once serve() has returned). */
    ServerCounters counters() const;

  private:
    /** Returns false when the frame asks the server to shut down. */
    bool handleFrame(const std::string &line);
    void workerMain();
    void runJob(const SweepRequest &req);
    void sendReject(const std::string &id, sim::ErrorKind kind,
                    const std::string &message);

    ServerOptions opts;
    framing::LineReader reader;
    framing::LineWriter writer;

    // Admission queue. Plain std::mutex: the condition variable's
    // wait() releases the lock in a way the clang thread-safety
    // analysis cannot follow, so this one stays unannotated.
    std::mutex mu;
    std::condition_variable cv;
    std::deque<SweepRequest> queue;
    bool closed = false; ///< no more pushes; workers drain then exit

    std::atomic<bool> stopFlag{false};
    std::atomic<bool> hardCancel{false};
    std::vector<std::thread> pool;

    std::atomic<uint64_t> nReceived{0}, nAdmitted{0}, nOk{0},
        nFailed{0}, nRejected{0}, nShed{0}, nCanceled{0};
};

} // namespace ubrc::server

#endif // UBRC_SERVER_SERVER_HH
