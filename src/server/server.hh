/**
 * @file
 * SweepServer: a persistent, fault-tolerant sweep service.
 *
 * The server reads sweep-request frames (server/request.hh) from a
 * file descriptor, runs each admitted request as a task on the
 * work-stealing scheduler (sched/scheduler.hh), and writes one
 * response frame per request — every request is answered exactly
 * once, in completion order.
 *
 * Robustness model:
 *  - Per-request isolation. Any SimError — checker divergence,
 *    deadlock, injected-fault fallout, invariant violation — is
 *    contained by runOneChecked() and reported as a structured error
 *    document. A poisoned request can never take the server down.
 *  - Per-request deadlines. deadline_ms (or the server default)
 *    bounds execution wall time through sim::RunControl, layered on
 *    the forward-progress watchdog: the watchdog catches hung
 *    pipelines, the deadline bounds well-formed but oversized work.
 *    The deadline clock starts when a worker picks the request up.
 *  - Bounded admission. At most queueCapacity admitted requests may
 *    be waiting for a worker; beyond that, requests are shed with a
 *    retryable queue-full rejection (clients back off and resubmit).
 *  - Graceful drain. EOF or a "shutdown" frame finishes everything
 *    queued. requestStop() — async-signal-safe, called from SIGINT/
 *    SIGTERM handlers — finishes in-flight runs but answers queued
 *    requests with retryable canceled rejections; a second
 *    requestStop() also aborts in-flight runs at their next poll.
 *    Either way the server ends with a server-drain summary document
 *    carrying the service counters, trace-cache hit/miss counts, and
 *    the scheduler's stats block.
 *
 * Execution: requests ride the same scheduler as suite sweeps and
 * bench surfaces. `ServerOptions::workers > 0` gives the server a
 * private pool of that size (in-process tests pin shed/drain
 * behaviour to exact worker counts); `workers == 0` submits to
 * Scheduler::global(), whose size is the one global worker value
 * (sched::setGlobalWorkers / UBRC_JOBS) — ubrcsim-server maps its
 * --workers flag onto that. Replayed traces are decoded once and
 * shared across requests via TraceCache.
 */

#ifndef UBRC_SERVER_SERVER_HH
#define UBRC_SERVER_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/framing.hh"
#include "common/thread_annotations.hh"
#include "sched/scheduler.hh"
#include "server/request.hh"
#include "server/trace_cache.hh"
#include "sim/runner.hh"
#include "sim/sim_error.hh"

namespace ubrc::server
{

/** Service-level tunables. */
struct ServerOptions
{
    /** Worker threads executing simulations: > 0 runs a private
     *  scheduler of that size; 0 uses the global scheduler. */
    unsigned workers = 2;
    /** Admitted requests waiting for a worker before shedding. */
    size_t queueCapacity = 16;
    /** Per-frame size limit for the reader. */
    size_t maxFrameBytes = framing::defaultMaxFrameBytes;
    /** Deadline applied when a request states none; 0 = unbounded. */
    uint64_t defaultDeadlineMs = 0;
    /** Budget/scale admission caps (request.hh). */
    AdmissionLimits limits;
    /** Emit the server-hello document on startup. */
    bool emitHello = true;
    /** Decoded traces retained for trace_replay requests (0: off). */
    size_t traceCacheCapacity = 8;
};

/** Monotonic service counters, reported in the drain document. */
struct ServerCounters
{
    uint64_t received = 0;  ///< complete frames read
    uint64_t admitted = 0;  ///< requests enqueued for execution
    uint64_t ok = 0;        ///< responses with ok == true
    uint64_t failed = 0;    ///< executed, contained failure
    uint64_t rejected = 0;  ///< bad request / config rejections
    uint64_t shed = 0;      ///< queue-full rejections
    uint64_t canceled = 0;  ///< queued requests canceled at drain
    uint64_t traceCacheHits = 0;   ///< decoded-trace cache hits
    uint64_t traceCacheMisses = 0; ///< decoded-trace cache misses
};

/** Why the serve loop ended (reported in the drain document). */
enum class DrainReason
{
    Eof,             ///< input stream ended
    Signal,          ///< requestStop() (typically SIGINT/SIGTERM)
    ShutdownRequest, ///< client sent a "shutdown" frame
    IoError,         ///< unrecoverable read error on the input fd
};

const char *toString(DrainReason r);

/** One server instance over an (input fd, output fd) pair. */
class SweepServer
{
  public:
    SweepServer(int in_fd, int out_fd, const ServerOptions &opts = {});
    ~SweepServer();

    /**
     * Serve until EOF, a shutdown frame, or requestStop(); drain;
     * write the server-drain summary. Returns the process exit code
     * (0 for every clean drain, including signal drains).
     */
    int serve();

    /**
     * Begin a graceful drain: only touches atomics, safe to call from
     * a signal handler. The first call stops admission and cancels
     * queued requests; a second call additionally aborts in-flight
     * runs at their next RunControl poll.
     */
    void requestStop();

    /** Counter snapshot (stable once serve() has returned). */
    ServerCounters counters() const;

    /** Worker threads actually executing this server's requests. */
    unsigned effectiveWorkers() const { return sch->workers(); }

  private:
    /** Returns false when the frame asks the server to shut down. */
    bool handleFrame(const std::string &line);
    /** Task body: claim the request slot, run or cancel-reject it. */
    void executeRequest(uint32_t slot);
    void runJob(const SweepRequest &req);
    sim::RunOutcome runReplay(const SweepRequest &req,
                              const sim::RunControl &ctl);
    void sendReject(const std::string &id, sim::ErrorKind kind,
                    const std::string &message);

    uint32_t storeRequest(SweepRequest req) UBRC_EXCLUDES(slotMu);
    SweepRequest takeRequest(uint32_t slot) UBRC_EXCLUDES(slotMu);

    ServerOptions opts;
    framing::LineReader reader;
    framing::LineWriter writer;

    // The execution engine: a private pool when opts.workers > 0,
    // else the process-global scheduler.
    std::unique_ptr<sched::Scheduler> ownedSched;
    sched::Scheduler *sch;
    sched::GroupHandle group;

    // Admitted requests waiting for a worker live in payload-indexed
    // slots; the task word carries the slot index. `queued` is the
    // waiting count that backs the queue-capacity shed decision
    // (incremented at admission, decremented when a worker claims
    // the slot).
    Mutex slotMu;
    std::vector<std::unique_ptr<SweepRequest>> slots
        UBRC_GUARDED_BY(slotMu);
    std::vector<uint32_t> freeSlots UBRC_GUARDED_BY(slotMu);
    std::atomic<size_t> queued{0};

    std::atomic<bool> stopFlag{false};
    std::atomic<bool> hardCancel{false};
    /** Raised at drain time: claimed-but-unstarted requests answer
     *  with a retryable canceled rejection instead of running. */
    std::atomic<bool> cancelQueued{false};

    TraceCache traceCache;

    std::atomic<uint64_t> nReceived{0}, nAdmitted{0}, nOk{0},
        nFailed{0}, nRejected{0}, nShed{0}, nCanceled{0};
};

} // namespace ubrc::server

#endif // UBRC_SERVER_SERVER_HH
