#include "server/trace_cache.hh"

#include <utility>

#include "trace/trace_recorder.hh"

namespace ubrc::server
{

std::shared_ptr<const trace::DecodedTrace>
TraceCache::acquire(const std::string &path)
{
    namespace fs = std::filesystem;

    // A stat failure falls through to loadTrace(), which reports the
    // missing/unreadable file as a proper TraceFormatError.
    std::error_code ec;
    const fs::file_time_type mtime = fs::last_write_time(path, ec);

    if (cap != 0 && !ec) {
        LockGuard lock(mu);
        for (auto &e : entries) {
            if (e.path != path)
                continue;
            if (e.mtime == mtime) {
                e.lastUse = ++useClock;
                nHits.fetch_add(1, std::memory_order_relaxed);
                return e.decoded;
            }
            break; // mtime moved: revalidate by content below
        }
    }

    // Load (cheap: read + CRC) outside the lock; hash the event
    // payload to detect a touch-without-change before paying for the
    // decode, which is the expensive part being cached.
    trace::RecordedTrace loaded = trace::loadTrace(path);
    std::string events_hash = trace::fnv1aHex(loaded.events);

    if (cap != 0 && !ec) {
        LockGuard lock(mu);
        for (auto &e : entries) {
            if (e.path != path)
                continue;
            if (e.eventsHash == events_hash) {
                e.mtime = mtime;
                e.lastUse = ++useClock;
                nHits.fetch_add(1, std::memory_order_relaxed);
                return e.decoded;
            }
            break;
        }
    }

    auto decoded = std::make_shared<const trace::DecodedTrace>(
        trace::decodeTrace(loaded, 0));
    nMisses.fetch_add(1, std::memory_order_relaxed);
    if (cap == 0 || ec)
        return decoded;

    LockGuard lock(mu);
    for (auto &e : entries) {
        if (e.path != path)
            continue;
        // Lost a decode race or replaced stale content; either way
        // the freshest decode wins.
        e.mtime = mtime;
        e.eventsHash = events_hash;
        e.lastUse = ++useClock;
        e.decoded = decoded;
        return decoded;
    }
    if (entries.size() >= cap) {
        size_t victim = 0;
        for (size_t i = 1; i < entries.size(); ++i)
            if (entries[i].lastUse < entries[victim].lastUse)
                victim = i;
        entries.erase(entries.begin() +
                      static_cast<ptrdiff_t>(victim));
    }
    Entry e;
    e.path = path;
    e.mtime = mtime;
    e.eventsHash = std::move(events_hash);
    e.lastUse = ++useClock;
    e.decoded = decoded;
    entries.push_back(std::move(e));
    return decoded;
}

} // namespace ubrc::server
