#include "regcache/register_cache.hh"

#include "common/log.hh"

namespace ubrc::regcache
{

const char *
toString(InsertionPolicy p)
{
    switch (p) {
      case InsertionPolicy::Always: return "always";
      case InsertionPolicy::NonBypass: return "non-bypass";
      case InsertionPolicy::UseBased: return "use-based";
    }
    return "?";
}

const char *
toString(ReplacementPolicy p)
{
    switch (p) {
      case ReplacementPolicy::LRU: return "lru";
      case ReplacementPolicy::UseBased: return "use-based";
    }
    return "?";
}

const char *
toString(IndexPolicy p)
{
    switch (p) {
      case IndexPolicy::PhysReg: return "preg";
      case IndexPolicy::RoundRobin: return "round-robin";
      case IndexPolicy::Minimum: return "minimum";
      case IndexPolicy::FilteredRoundRobin: return "filtered-rr";
    }
    return "?";
}

bool
shouldInsert(InsertionPolicy policy, bool pinned, unsigned predicted_uses,
             unsigned stage1_bypasses)
{
    switch (policy) {
      case InsertionPolicy::Always:
        return true;
      case InsertionPolicy::NonBypass:
        // Filter if the value bypassed to anyone before the write.
        return stage1_bypasses == 0;
      case InsertionPolicy::UseBased:
        // Filter only if every predicted use was already satisfied.
        return pinned || stage1_bypasses < predicted_uses;
    }
    return true;
}

RegisterCache::RegisterCache(const RegCacheParams &params,
                             stats::StatGroup &stat_group)
    : cfg(params)
{
    if (cfg.assoc == 0 || cfg.entries == 0 ||
        cfg.entries % cfg.assoc != 0)
        fatal("register cache: %u entries not divisible into %u ways",
              cfg.entries, cfg.assoc);
    if (cfg.maxUse > packed::maxRemUses)
        fatal("register cache: maxUse %u exceeds the packed "
              "use-counter field (max %u)",
              cfg.maxUse, packed::maxRemUses);
    core.reset(cfg.numSets(), cfg.assoc, cfg.replacement, cfg.maxUse);
    st.inserts = &stat_group.scalar("rc_inserts");
    st.fills = &stat_group.scalar("rc_fills");
    st.readHits = &stat_group.scalar("rc_read_hits");
    st.readMisses = &stat_group.scalar("rc_read_misses");
    st.evictions = &stat_group.scalar("rc_evictions");
    st.evictionsZeroUse = &stat_group.scalar("rc_evictions_zero_use");
    st.evictionsLiveUse = &stat_group.scalar("rc_evictions_live_use");
    st.invalidations = &stat_group.scalar("rc_invalidations");
    st.entriesNeverRead = &stat_group.scalar("rc_entries_never_read");
    st.entryLifetime = &stat_group.mean("rc_entry_lifetime");
    st.readsPerEntry = &stat_group.mean("rc_reads_per_entry");
}

void
RegisterCache::retireSlot(int slot, Cycle now, bool evicted)
{
    if (!core.validAt(slot))
        return;
    if (evicted) {
        ++*st.evictions;
        if (!core.pinnedAt(slot) && core.remUsesAt(slot) == 0)
            ++*st.evictionsZeroUse;
        else
            ++*st.evictionsLiveUse;
    } else {
        ++*st.invalidations;
    }
    if (core.readsAt(slot) == 0)
        ++*st.entriesNeverRead;
    st.entryLifetime->sample(
        static_cast<double>(now - core.insertedAtOf(slot)));
    st.readsPerEntry->sample(static_cast<double>(core.readsAt(slot)));
    core.clear(slot);
    --numValid;
}

void
RegisterCache::insert(PhysReg preg, unsigned set,
                      unsigned remaining_uses, bool pinned, Cycle now)
{
    if (core.findInSet(preg, set) >= 0)
        panic("register cache: double insert of preg %d (set %u)",
              int(preg), set);
    const int slot = core.victimIn(set);
    retireSlot(slot, now, true);
    core.place(slot, preg, remaining_uses, pinned, now);
    ++numValid;
    ++*st.inserts;
}

bool
RegisterCache::fill(PhysReg preg, unsigned set, Cycle now)
{
    if (core.findInSet(preg, set) >= 0)
        return false; // a racing fill already brought it in
    const int slot = core.victimIn(set);
    retireSlot(slot, now, true);
    core.place(slot, preg, cfg.fillDefault, false, now);
    ++numValid;
    ++*st.fills;
    return true;
}

std::vector<CacheEntryView>
RegisterCache::validEntries() const
{
    std::vector<CacheEntryView> out;
    out.reserve(numValid);
    for (size_t slot = 0; slot < core.numSlots(); ++slot) {
        if (!core.validAt(int(slot)))
            continue;
        out.push_back({core.setOf(int(slot)), core.wayOf(int(slot)),
                       core.pregAt(int(slot)),
                       core.remUsesAt(int(slot)),
                       core.pinnedAt(int(slot))});
    }
    return out;
}

double
RegisterCache::zeroUseVictimFraction() const
{
    const uint64_t total = st.evictions->value();
    return total ? static_cast<double>(st.evictionsZeroUse->value()) /
                       static_cast<double>(total)
                 : 0.0;
}

ShadowFullyAssocCache::ShadowFullyAssocCache(unsigned num_entries,
                                             ReplacementPolicy replacement,
                                             unsigned max_use)
{
    if (max_use > packed::maxRemUses)
        fatal("shadow cache: maxUse %u exceeds the packed "
              "use-counter field (max %u)",
              max_use, packed::maxRemUses);
    core.reset(1, num_entries, replacement, max_use);
}

void
ShadowFullyAssocCache::insert(PhysReg preg, unsigned remaining_uses,
                              bool pinned, Cycle now)
{
    if (core.findIndexed(preg) >= 0)
        return;
    const int slot = core.victimIn(0);
    core.clear(slot);
    core.place(slot, preg, remaining_uses, pinned, now);
}

void
ShadowFullyAssocCache::fill(PhysReg preg, Cycle now)
{
    insert(preg, 0, false, now);
}

bool
ShadowFullyAssocCache::read(PhysReg preg)
{
    const int slot = core.findIndexed(preg);
    if (slot < 0)
        return false;
    core.touchRead(slot);
    return true;
}

void
ShadowFullyAssocCache::noteBypassUse(PhysReg preg)
{
    const int slot = core.findIndexed(preg);
    if (slot >= 0)
        core.decrementUses(slot);
}

void
ShadowFullyAssocCache::invalidate(PhysReg preg)
{
    const int slot = core.findIndexed(preg);
    if (slot >= 0)
        core.clear(slot);
}

bool
ShadowFullyAssocCache::contains(PhysReg preg) const
{
    return core.findIndexed(preg) >= 0;
}

} // namespace ubrc::regcache
