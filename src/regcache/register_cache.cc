#include "regcache/register_cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace ubrc::regcache
{

const char *
toString(InsertionPolicy p)
{
    switch (p) {
      case InsertionPolicy::Always: return "always";
      case InsertionPolicy::NonBypass: return "non-bypass";
      case InsertionPolicy::UseBased: return "use-based";
    }
    return "?";
}

const char *
toString(ReplacementPolicy p)
{
    switch (p) {
      case ReplacementPolicy::LRU: return "lru";
      case ReplacementPolicy::UseBased: return "use-based";
    }
    return "?";
}

const char *
toString(IndexPolicy p)
{
    switch (p) {
      case IndexPolicy::PhysReg: return "preg";
      case IndexPolicy::RoundRobin: return "round-robin";
      case IndexPolicy::Minimum: return "minimum";
      case IndexPolicy::FilteredRoundRobin: return "filtered-rr";
    }
    return "?";
}

bool
shouldInsert(InsertionPolicy policy, bool pinned, unsigned predicted_uses,
             unsigned stage1_bypasses)
{
    switch (policy) {
      case InsertionPolicy::Always:
        return true;
      case InsertionPolicy::NonBypass:
        // Filter if the value bypassed to anyone before the write.
        return stage1_bypasses == 0;
      case InsertionPolicy::UseBased:
        // Filter only if every predicted use was already satisfied.
        return pinned || stage1_bypasses < predicted_uses;
    }
    return true;
}

RegisterCache::RegisterCache(const RegCacheParams &params,
                             stats::StatGroup &stat_group)
    : cfg(params)
{
    if (cfg.assoc == 0 || cfg.entries == 0 ||
        cfg.entries % cfg.assoc != 0)
        fatal("register cache: %u entries not divisible into %u ways",
              cfg.entries, cfg.assoc);
    entries_.resize(cfg.entries);
    st.inserts = &stat_group.scalar("rc_inserts");
    st.fills = &stat_group.scalar("rc_fills");
    st.readHits = &stat_group.scalar("rc_read_hits");
    st.readMisses = &stat_group.scalar("rc_read_misses");
    st.evictions = &stat_group.scalar("rc_evictions");
    st.evictionsZeroUse = &stat_group.scalar("rc_evictions_zero_use");
    st.evictionsLiveUse = &stat_group.scalar("rc_evictions_live_use");
    st.invalidations = &stat_group.scalar("rc_invalidations");
    st.entriesNeverRead = &stat_group.scalar("rc_entries_never_read");
    st.entryLifetime = &stat_group.mean("rc_entry_lifetime");
    st.readsPerEntry = &stat_group.mean("rc_reads_per_entry");
}

RegisterCache::Entry *
RegisterCache::find(PhysReg preg, unsigned set)
{
    Entry *base = &entries_[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].preg == preg)
            return &base[w];
    return nullptr;
}

const RegisterCache::Entry *
RegisterCache::find(PhysReg preg, unsigned set) const
{
    const Entry *base = &entries_[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].preg == preg)
            return &base[w];
    return nullptr;
}

RegisterCache::Entry &
RegisterCache::victimIn(unsigned set)
{
    Entry *base = &entries_[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w)
        if (!base[w].valid)
            return base[w];

    Entry *victim = &base[0];
    for (unsigned w = 1; w < cfg.assoc; ++w) {
        Entry &cand = base[w];
        if (cfg.replacement == ReplacementPolicy::LRU) {
            if (cand.lastUse < victim->lastUse)
                victim = &cand;
        } else {
            // Use-based: fewest remaining uses wins; pinned entries
            // count as infinite. Ties fall back to LRU.
            const uint64_t v_uses =
                victim->pinned ? ~0ULL : victim->remUses;
            const uint64_t c_uses = cand.pinned ? ~0ULL : cand.remUses;
            if (c_uses < v_uses ||
                (c_uses == v_uses && cand.lastUse < victim->lastUse))
                victim = &cand;
        }
    }
    return *victim;
}

void
RegisterCache::retireEntry(Entry &e, Cycle now, bool evicted)
{
    if (!e.valid)
        return;
    if (evicted) {
        ++*st.evictions;
        if (!e.pinned && e.remUses == 0)
            ++*st.evictionsZeroUse;
        else
            ++*st.evictionsLiveUse;
    } else {
        ++*st.invalidations;
    }
    if (e.reads == 0)
        ++*st.entriesNeverRead;
    st.entryLifetime->sample(static_cast<double>(now - e.insertedAt));
    st.readsPerEntry->sample(static_cast<double>(e.reads));
    e.valid = false;
    --numValid;
}

void
RegisterCache::place(Entry &slot, PhysReg preg, unsigned rem_uses,
                     bool pinned, Cycle now)
{
    slot.valid = true;
    slot.preg = preg;
    slot.remUses = std::min<uint32_t>(rem_uses, cfg.maxUse);
    slot.pinned = pinned;
    slot.lastUse = ++useClock;
    slot.insertedAt = now;
    slot.reads = 0;
    ++numValid;
}

void
RegisterCache::insert(PhysReg preg, unsigned set, unsigned remaining_uses,
                      bool pinned, Cycle now)
{
    if (Entry *e = find(preg, set))
        panic("register cache: double insert of preg %d (set %u)",
              int(e->preg), set);
    Entry &slot = victimIn(set);
    retireEntry(slot, now, true);
    place(slot, preg, remaining_uses, pinned, now);
    ++*st.inserts;
}

void
RegisterCache::fill(PhysReg preg, unsigned set, Cycle now)
{
    if (find(preg, set))
        return; // a racing fill already brought it in
    Entry &slot = victimIn(set);
    retireEntry(slot, now, true);
    place(slot, preg, cfg.fillDefault, false, now);
    ++*st.fills;
}

bool
RegisterCache::read(PhysReg preg, unsigned set, Cycle now)
{
    (void)now;
    Entry *e = find(preg, set);
    if (!e) {
        ++*st.readMisses;
        return false;
    }
    ++*st.readHits;
    ++e->reads;
    e->lastUse = ++useClock;
    if (!e->pinned && e->remUses > 0)
        --e->remUses;
    return true;
}

void
RegisterCache::noteBypassUse(PhysReg preg, unsigned set)
{
    Entry *e = find(preg, set);
    if (e && !e->pinned && e->remUses > 0)
        --e->remUses;
}

void
RegisterCache::invalidate(PhysReg preg, unsigned set, Cycle now)
{
    if (Entry *e = find(preg, set))
        retireEntry(*e, now, false);
}

bool
RegisterCache::contains(PhysReg preg, unsigned set) const
{
    return find(preg, set) != nullptr;
}

int
RegisterCache::remainingUses(PhysReg preg, unsigned set) const
{
    const Entry *e = find(preg, set);
    return e ? static_cast<int>(e->remUses) : -1;
}

std::vector<RegisterCache::EntryView>
RegisterCache::validEntries() const
{
    std::vector<EntryView> out;
    out.reserve(numValid);
    for (unsigned set = 0; set < cfg.numSets(); ++set) {
        const Entry *base = &entries_[set * cfg.assoc];
        for (unsigned w = 0; w < cfg.assoc; ++w)
            if (base[w].valid)
                out.push_back({set, w, base[w].preg, base[w].remUses,
                               base[w].pinned});
    }
    return out;
}

bool
RegisterCache::corruptUseCounter(PhysReg preg, unsigned set,
                                 unsigned bit)
{
    Entry *e = find(preg, set);
    if (!e)
        return false;
    e->remUses ^= 1u << bit;
    return true;
}

double
RegisterCache::zeroUseVictimFraction() const
{
    const uint64_t total = st.evictions->value();
    return total ? static_cast<double>(st.evictionsZeroUse->value()) /
                       static_cast<double>(total)
                 : 0.0;
}

ShadowFullyAssocCache::ShadowFullyAssocCache(unsigned num_entries,
                                             ReplacementPolicy replacement,
                                             unsigned max_use)
    : capacity(num_entries), repl(replacement), maxUse(max_use)
{
    entries_.resize(capacity);
}

ShadowFullyAssocCache::Entry *
ShadowFullyAssocCache::find(PhysReg preg)
{
    for (auto &e : entries_)
        if (e.valid && e.preg == preg)
            return &e;
    return nullptr;
}

ShadowFullyAssocCache::Entry &
ShadowFullyAssocCache::victim()
{
    for (auto &e : entries_)
        if (!e.valid)
            return e;
    Entry *victim = &entries_[0];
    for (auto &cand : entries_) {
        if (repl == ReplacementPolicy::LRU) {
            if (cand.lastUse < victim->lastUse)
                victim = &cand;
        } else {
            const uint64_t v_uses =
                victim->pinned ? ~0ULL : victim->remUses;
            const uint64_t c_uses = cand.pinned ? ~0ULL : cand.remUses;
            if (c_uses < v_uses ||
                (c_uses == v_uses && cand.lastUse < victim->lastUse))
                victim = &cand;
        }
    }
    return *victim;
}

void
ShadowFullyAssocCache::insert(PhysReg preg, unsigned remaining_uses,
                              bool pinned, Cycle now)
{
    (void)now;
    if (find(preg))
        return;
    Entry &slot = victim();
    slot.valid = true;
    slot.preg = preg;
    slot.remUses = std::min<uint32_t>(remaining_uses, maxUse);
    slot.pinned = pinned;
    slot.lastUse = ++useClock;
}

void
ShadowFullyAssocCache::fill(PhysReg preg, Cycle now)
{
    insert(preg, 0, false, now);
}

bool
ShadowFullyAssocCache::read(PhysReg preg)
{
    Entry *e = find(preg);
    if (!e)
        return false;
    e->lastUse = ++useClock;
    if (!e->pinned && e->remUses > 0)
        --e->remUses;
    return true;
}

void
ShadowFullyAssocCache::noteBypassUse(PhysReg preg)
{
    Entry *e = find(preg);
    if (e && !e->pinned && e->remUses > 0)
        --e->remUses;
}

void
ShadowFullyAssocCache::invalidate(PhysReg preg)
{
    if (Entry *e = find(preg))
        e->valid = false;
}

bool
ShadowFullyAssocCache::contains(PhysReg preg) const
{
    for (const auto &e : entries_)
        if (e.valid && e.preg == preg)
            return true;
    return false;
}

} // namespace ubrc::regcache
