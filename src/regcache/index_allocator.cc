#include "regcache/index_allocator.hh"

#include "common/log.hh"

namespace ubrc::regcache
{

IndexAllocator::IndexAllocator(IndexPolicy policy, unsigned num_sets,
                               unsigned associativity,
                               unsigned high_use_threshold)
    : pol(policy),
      nSets(num_sets),
      assoc(associativity),
      highThreshold(high_use_threshold),
      skipLimit(associativity / 2 ? associativity / 2 : 1),
      loads(num_sets, 0),
      highUse(num_sets, 0)
{
    if (nSets == 0)
        fatal("index allocator needs at least one set");
}

unsigned
IndexAllocator::assign(PhysReg preg, unsigned predicted_uses)
{
    unsigned set = 0;
    switch (pol) {
      case IndexPolicy::PhysReg:
        set = static_cast<unsigned>(preg) % nSets;
        break;
      case IndexPolicy::RoundRobin:
        set = rrNext;
        rrNext = (rrNext + 1) % nSets;
        break;
      case IndexPolicy::Minimum: {
        set = 0;
        for (unsigned s = 1; s < nSets; ++s)
            if (loads[s] < loads[set])
                set = s;
        break;
      }
      case IndexPolicy::FilteredRoundRobin: {
        // Skip sets crowded with high-use values; if every set is
        // crowded, fall back to the plain round-robin choice.
        set = rrNext;
        for (unsigned tries = 0; tries < nSets; ++tries) {
            const unsigned cand = (rrNext + tries) % nSets;
            if (highUse[cand] <= skipLimit) {
                set = cand;
                break;
            }
        }
        rrNext = (set + 1) % nSets;
        break;
      }
    }
    loads[set] += predicted_uses;
    if (predicted_uses > highThreshold)
        ++highUse[set];
    return set;
}

void
IndexAllocator::release(unsigned set, unsigned predicted_uses)
{
    if (set >= nSets)
        panic("index allocator: release of bad set %u", set);
    loads[set] -= predicted_uses <= loads[set] ? predicted_uses
                                               : loads[set];
    if (predicted_uses > highThreshold && highUse[set] > 0)
        --highUse[set];
}

} // namespace ubrc::regcache
