/**
 * @file
 * Degree-of-use predictor (Butts & Sohi, MICRO 2002), as configured in
 * Table 1: a 4K-entry, 4-way set-associative table with 6-bit tags,
 * 4-bit predictions, and 2-bit confidence counters, indexed by the
 * producing instruction's address hashed with a 6-bit future
 * control-flow signature (we use the speculative global branch
 * history at rename, which encodes the same upcoming-path context).
 *
 * A prediction is supplied only at full confidence; otherwise the
 * consumer falls back to its "unknown default". Training happens when
 * the physical register is freed, at which point the true consumer
 * count (wrong-path readers excluded) is known.
 *
 * Storage is a packed structure-of-arrays: one 32-bit word per entry
 * (tag [7:0], prediction [15:8], confidence [23:16], valid [24]) plus
 * a separate recency lane, so the per-rename probe walks four words of
 * one cache line. Power-of-two geometries (the Table-1 default) take
 * mask/shift fast paths in the index and tag computations.
 */

#ifndef UBRC_REGCACHE_DOU_PREDICTOR_HH
#define UBRC_REGCACHE_DOU_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ubrc::regcache
{

/** Predictor geometry (defaults: ~9 KB as in Table 1). */
struct DouParams
{
    unsigned entries = 4096;
    unsigned assoc = 4;
    unsigned tagBits = 6;
    unsigned predBits = 4;     ///< predictions saturate at 2^4 - 1
    unsigned confMax = 3;      ///< 2-bit confidence
    unsigned confThreshold = 3; ///< required to supply a prediction
    unsigned ctrlBits = 6;     ///< future control-flow hash width

    unsigned maxPrediction() const { return (1u << predBits) - 1; }
    unsigned numSets() const { return entries / assoc; }
};

/** History-based degree-of-use predictor. */
class DegreeOfUsePredictor
{
  public:
    DegreeOfUsePredictor(const DouParams &params,
                         stats::StatGroup &stat_group);

    /**
     * Predict the number of uses of the value produced at pc under
     * control-flow context ctrl (e.g. the speculative global branch
     * history). Returns nullopt when no confident prediction exists.
     */
    std::optional<unsigned> predict(Addr pc, uint64_t ctrl) const;

    /** Train with the actual (committed) use count of the value. */
    void train(Addr pc, uint64_t ctrl, unsigned actual_uses);

    /** Observed accuracy: correct confident predictions / supplied. */
    double accuracy() const;

    /** Storage used, in bits (for the Table-1 budget check). */
    uint64_t storageBits() const;

    /** Table capacity in entries (for fault-site selection). */
    size_t entryCount() const { return words.size(); }

    /**
     * Fault injection: flip one bit of a valid entry's prediction
     * counter. @return false if the chosen entry is invalid.
     */
    bool corruptPrediction(size_t index, unsigned bit);

  private:
    // Packed entry word (low to high): tag [7:0], prediction [15:8],
    // confidence [23:16], valid [24]. Invalid entries are all-zero.
    static constexpr unsigned predShift = 8;
    static constexpr unsigned confShift = 16;
    static constexpr uint32_t validBit = 1u << 24;

    static uint32_t tagOfWord(uint32_t w) { return w & 0xffu; }
    static uint32_t predOfWord(uint32_t w) { return (w >> predShift) & 0xffu; }
    static uint32_t confOfWord(uint32_t w) { return (w >> confShift) & 0xffu; }
    static bool validWord(uint32_t w) { return (w & validBit) != 0; }

    unsigned indexOf(Addr pc, uint64_t ctrl) const;
    uint8_t tagOf(Addr pc) const;
    unsigned clamp(unsigned uses) const;

    DouParams cfg;
    std::vector<uint32_t> words;    ///< packed tag|pred|conf|valid
    std::vector<uint64_t> lastUse;  ///< recency lane (train-time LRU)
    unsigned setMask = 0;           ///< numSets - 1 when power of two
    unsigned tagShift = 0;          ///< log2(instBytes * numSets)
    bool pow2Sets = false;
    bool pow2TagDiv = false;
    mutable uint64_t useClock = 0;

    struct
    {
        stats::Scalar *supplied, *unavailable;
        stats::Scalar *trainCorrect, *trainWrong;
    } st;
};

} // namespace ubrc::regcache

#endif // UBRC_REGCACHE_DOU_PREDICTOR_HH
