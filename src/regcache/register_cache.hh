/**
 * @file
 * The register cache proper (Section 3 of the paper).
 *
 * A small set-associative structure indexed by an externally assigned
 * set index (decoupled indexing) and tagged with the full physical
 * register identifier. Each entry carries a remaining-use counter;
 * use-based replacement victimizes the entry with the fewest remaining
 * uses. Entries whose producing value saturated the use predictor are
 * pinned (their counter is never decremented) until invalidated.
 *
 * Entries live in the packed structure-of-arrays core
 * (regcache/packed_cache.hh): one 64-bit tag|uses|pinned|valid word
 * per entry plus separate recency and lifetime lanes, with a
 * decoupled preg->slot index for O(1) probes.
 *
 * The call surface is probe-once: lookup(preg, set) resolves the tag
 * search a single time and returns an EntryRef handle; reads, bypass
 * bookkeeping, and invalidation act on the handle without re-probing.
 *
 * The class is purely structural: the insertion *decision* (filtering)
 * is made by the caller via shouldInsert(), because it depends on
 * bypass-network information only the core has.
 */

#ifndef UBRC_REGCACHE_REGISTER_CACHE_HH
#define UBRC_REGCACHE_REGISTER_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/cache_entry_view.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "regcache/packed_cache.hh"
#include "regcache/policies.hh"

namespace ubrc::regcache
{

/** Register cache structural and policy parameters. */
struct RegCacheParams
{
    unsigned entries = 64;
    unsigned assoc = 2;
    InsertionPolicy insertion = InsertionPolicy::UseBased;
    ReplacementPolicy replacement = ReplacementPolicy::UseBased;
    IndexPolicy indexing = IndexPolicy::FilteredRoundRobin;

    /**
     * Saturation value of the remaining-use counters (3 bits -> 7 in
     * the paper's chosen design). Predictions at or above this pin
     * the entry.
     */
    unsigned maxUse = 7;
    /** Remaining uses assumed when the predictor has no prediction. */
    unsigned unknownDefault = 1;
    /** Remaining uses assumed for values filled after a miss. */
    unsigned fillDefault = 0;
    /** Predicted uses above this count as "high use" for filtering. */
    unsigned highUseThreshold = 5;

    unsigned numSets() const { return entries / assoc; }
};

/**
 * Decide whether a completed value should be written into the cache.
 *
 * @param policy Insertion policy in force.
 * @param pinned Producer's prediction saturated at maxUse.
 * @param predicted_uses Predicted remaining uses at rename.
 * @param stage1_bypasses Consumers satisfied by the first bypass
 *        stage before the cache write would occur.
 */
bool shouldInsert(InsertionPolicy policy, bool pinned,
                  unsigned predicted_uses, unsigned stage1_bypasses);

/** The register cache. */
class RegisterCache
{
  public:
    RegisterCache(const RegCacheParams &params,
                  stats::StatGroup &stat_group);

    unsigned numSets() const { return cfg.numSets(); }

    /**
     * A probe-once handle to a (possibly absent) entry. Obtained from
     * lookup(); valid() says whether the probe hit. All mutating
     * operations act on the already-resolved slot — no re-probe.
     *
     * A handle is transient: it is invalidated by any subsequent
     * insert/fill/invalidate that touches its slot, so resolve,
     * operate, and discard within one operand event.
     */
    class EntryRef
    {
      public:
        EntryRef() = default;

        bool valid() const { return slot >= 0; }
        explicit operator bool() const { return valid(); }

        unsigned
        remainingUses() const
        {
            return rc->core.remUsesAt(slot);
        }

        bool pinned() const { return rc->core.pinnedAt(slot); }

        /**
         * Operand read hit: count it, refresh LRU, decrement the
         * remaining-use counter (unless pinned).
         */
        void
        read()
        {
            ++*rc->st.readHits;
            rc->core.touchRead(slot);
        }

        /**
         * A bypassed consumer was satisfied while the value is
         * cached; keep the counter in step (Section 3.3).
         */
        void noteBypassUse() { rc->core.decrementUses(slot); }

        /** Invalidate (physical register freed or squashed). */
        void
        invalidate(Cycle now)
        {
            rc->retireSlot(slot, now, false);
        }

        /** Fault injection: flip one bit of the use counter. */
        void corruptUseCounter(unsigned bit)
        {
            rc->core.corruptUses(slot, bit);
        }

      private:
        friend class RegisterCache;
        EntryRef(RegisterCache *cache, int s) : rc(cache), slot(s) {}

        RegisterCache *rc = nullptr;
        int slot = -1;
    };

    /**
     * The one tag probe: resolve `preg` in `set`. The returned handle
     * is invalid on a miss (callers count a read miss explicitly via
     * noteReadMiss() when the probe was an operand read).
     */
    EntryRef
    lookup(PhysReg preg, unsigned set)
    {
        return EntryRef(this, core.findInSet(preg, set));
    }

    /** An operand read probed and missed (Figure 9 accounting). */
    void noteReadMiss() { ++*st.readMisses; }

    /**
     * Write a produced value into set `set`. A victim is chosen by
     * the replacement policy if the set is full.
     *
     * @param remaining_uses Initial remaining-use counter value.
     * @param pinned Never decrement this entry's counter.
     */
    void insert(PhysReg preg, unsigned set, unsigned remaining_uses,
                bool pinned, Cycle now);

    /**
     * Fill after a miss: the use count was lost, so the counter is
     * set to fillDefault and the entry is not pinned (Section 3.3).
     * @return false if a racing fill already brought the value in.
     */
    bool fill(PhysReg preg, unsigned set, Cycle now);

    /** Currently valid entries (for occupancy stats). */
    unsigned validCount() const { return numValid; }

    const RegCacheParams &params() const { return cfg; }

    /** Fraction of evictions whose victim had zero remaining uses. */
    double zeroUseVictimFraction() const;

    /** All valid entries in set/way order (diagnostics, injection). */
    std::vector<CacheEntryView> validEntries() const;

  private:
    friend class EntryRef;

    void retireSlot(int slot, Cycle now, bool evicted);

    RegCacheParams cfg;
    PackedCacheCore<true> core;
    unsigned numValid = 0;

    struct
    {
        stats::Scalar *inserts, *fills, *readHits, *readMisses;
        stats::Scalar *evictions, *evictionsZeroUse, *evictionsLiveUse;
        stats::Scalar *invalidations, *entriesNeverRead;
        stats::Mean *entryLifetime, *readsPerEntry;
    } st;
};

/**
 * Shadow fully-associative reference cache used to classify misses as
 * conflict (hit here, missed in the set-associative cache) versus
 * capacity (missed in both), mirroring the real cache's insertion
 * decisions and replacement flavour (Figure 8). Shares the packed
 * SoA core (one set, `entries` ways, no lifetime lanes); the probe
 * index turns its former full linear scans into O(1) lookups.
 */
class ShadowFullyAssocCache
{
  public:
    ShadowFullyAssocCache(unsigned entries, ReplacementPolicy repl,
                          unsigned max_use);

    void insert(PhysReg preg, unsigned remaining_uses, bool pinned,
                Cycle now);
    void fill(PhysReg preg, Cycle now);
    bool read(PhysReg preg); // decrements like the real cache
    void noteBypassUse(PhysReg preg);
    void invalidate(PhysReg preg);
    bool contains(PhysReg preg) const;

  private:
    PackedCacheCore<false> core;
};

} // namespace ubrc::regcache

#endif // UBRC_REGCACHE_REGISTER_CACHE_HH
