/**
 * @file
 * The register cache proper (Section 3 of the paper).
 *
 * A small set-associative structure indexed by an externally assigned
 * set index (decoupled indexing) and tagged with the full physical
 * register identifier. Each entry carries a remaining-use counter;
 * use-based replacement victimizes the entry with the fewest remaining
 * uses. Entries whose producing value saturated the use predictor are
 * pinned (their counter is never decremented) until invalidated.
 *
 * The class is purely structural: the insertion *decision* (filtering)
 * is made by the caller via shouldInsert(), because it depends on
 * bypass-network information only the core has.
 */

#ifndef UBRC_REGCACHE_REGISTER_CACHE_HH
#define UBRC_REGCACHE_REGISTER_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "regcache/policies.hh"

namespace ubrc::regcache
{

/** Register cache structural and policy parameters. */
struct RegCacheParams
{
    unsigned entries = 64;
    unsigned assoc = 2;
    InsertionPolicy insertion = InsertionPolicy::UseBased;
    ReplacementPolicy replacement = ReplacementPolicy::UseBased;
    IndexPolicy indexing = IndexPolicy::FilteredRoundRobin;

    /**
     * Saturation value of the remaining-use counters (3 bits -> 7 in
     * the paper's chosen design). Predictions at or above this pin
     * the entry.
     */
    unsigned maxUse = 7;
    /** Remaining uses assumed when the predictor has no prediction. */
    unsigned unknownDefault = 1;
    /** Remaining uses assumed for values filled after a miss. */
    unsigned fillDefault = 0;
    /** Predicted uses above this count as "high use" for filtering. */
    unsigned highUseThreshold = 5;

    unsigned numSets() const { return entries / assoc; }
};

/**
 * Decide whether a completed value should be written into the cache.
 *
 * @param policy Insertion policy in force.
 * @param pinned Producer's prediction saturated at maxUse.
 * @param predicted_uses Predicted remaining uses at rename.
 * @param stage1_bypasses Consumers satisfied by the first bypass
 *        stage before the cache write would occur.
 */
bool shouldInsert(InsertionPolicy policy, bool pinned,
                  unsigned predicted_uses, unsigned stage1_bypasses);

/** The register cache. */
class RegisterCache
{
  public:
    RegisterCache(const RegCacheParams &params,
                  stats::StatGroup &stat_group);

    unsigned numSets() const { return cfg.numSets(); }

    /**
     * Write a produced value into set `set`. A victim is chosen by
     * the replacement policy if the set is full.
     *
     * @param remaining_uses Initial remaining-use counter value.
     * @param pinned Never decrement this entry's counter.
     */
    void insert(PhysReg preg, unsigned set, unsigned remaining_uses,
                bool pinned, Cycle now);

    /**
     * Fill after a miss: the use count was lost, so the counter is
     * set to fillDefault and the entry is not pinned (Section 3.3).
     */
    void fill(PhysReg preg, unsigned set, Cycle now);

    /**
     * Operand read. On a hit, decrements the remaining-use counter
     * (unless pinned) and refreshes LRU.
     * @return true on hit.
     */
    bool read(PhysReg preg, unsigned set, Cycle now);

    /**
     * A bypassed consumer was satisfied while the value is cached;
     * keep the counter in step (Section 3.3).
     */
    void noteBypassUse(PhysReg preg, unsigned set);

    /** Invalidate on physical register free. */
    void invalidate(PhysReg preg, unsigned set, Cycle now);

    /** Presence check without side effects. */
    bool contains(PhysReg preg, unsigned set) const;

    /** Remaining uses recorded for a cached value; -1 if absent. */
    int remainingUses(PhysReg preg, unsigned set) const;

    /** Currently valid entries (for occupancy stats). */
    unsigned validCount() const { return numValid; }

    const RegCacheParams &params() const { return cfg; }

    /** Fraction of evictions whose victim had zero remaining uses. */
    double zeroUseVictimFraction() const;

    /** One valid entry, as exposed for diagnostics and injection. */
    struct EntryView
    {
        unsigned set;
        unsigned way;
        PhysReg preg;
        uint32_t remUses;
        bool pinned;
    };

    /** All valid entries in set/way order (diagnostics, injection). */
    std::vector<EntryView> validEntries() const;

    /**
     * Fault injection: flip one bit of an entry's remaining-use
     * counter. @return false if the entry is not resident.
     */
    bool corruptUseCounter(PhysReg preg, unsigned set, unsigned bit);

  private:
    struct Entry
    {
        PhysReg preg = invalidPhysReg;
        uint32_t remUses = 0;
        uint64_t lastUse = 0;
        Cycle insertedAt = 0;
        uint32_t reads = 0;
        bool pinned = false;
        bool valid = false;
    };

    Entry *find(PhysReg preg, unsigned set);
    const Entry *find(PhysReg preg, unsigned set) const;
    Entry &victimIn(unsigned set);
    void retireEntry(Entry &e, Cycle now, bool evicted);
    void place(Entry &slot, PhysReg preg, unsigned rem_uses, bool pinned,
               Cycle now);

    RegCacheParams cfg;
    std::vector<Entry> entries_; // numSets x assoc
    uint64_t useClock = 0;
    unsigned numValid = 0;

    struct
    {
        stats::Scalar *inserts, *fills, *readHits, *readMisses;
        stats::Scalar *evictions, *evictionsZeroUse, *evictionsLiveUse;
        stats::Scalar *invalidations, *entriesNeverRead;
        stats::Mean *entryLifetime, *readsPerEntry;
    } st;
};

/**
 * Shadow fully-associative reference cache used to classify misses as
 * conflict (hit here, missed in the set-associative cache) versus
 * capacity (missed in both), mirroring the real cache's insertion
 * decisions and replacement flavour (Figure 8).
 */
class ShadowFullyAssocCache
{
  public:
    ShadowFullyAssocCache(unsigned entries, ReplacementPolicy repl,
                          unsigned max_use);

    void insert(PhysReg preg, unsigned remaining_uses, bool pinned,
                Cycle now);
    void fill(PhysReg preg, Cycle now);
    bool read(PhysReg preg); // decrements like the real cache
    void noteBypassUse(PhysReg preg);
    void invalidate(PhysReg preg);
    bool contains(PhysReg preg) const;

  private:
    struct Entry
    {
        PhysReg preg = invalidPhysReg;
        uint32_t remUses = 0;
        uint64_t lastUse = 0;
        bool pinned = false;
        bool valid = false;
    };

    Entry *find(PhysReg preg);
    Entry &victim();

    unsigned capacity;
    ReplacementPolicy repl;
    unsigned maxUse;
    std::vector<Entry> entries_;
    uint64_t useClock = 0;
};

} // namespace ubrc::regcache

#endif // UBRC_REGCACHE_REGISTER_CACHE_HH
