#include "regcache/dou_predictor.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "isa/instruction.hh"

namespace ubrc::regcache
{

DegreeOfUsePredictor::DegreeOfUsePredictor(const DouParams &params,
                                           stats::StatGroup &stat_group)
    : cfg(params)
{
    if (cfg.entries == 0 || cfg.entries % cfg.assoc != 0)
        fatal("degree-of-use predictor: bad geometry");
    table.resize(cfg.entries);
    st.supplied = &stat_group.scalar("dou_supplied");
    st.unavailable = &stat_group.scalar("dou_unavailable");
    st.trainCorrect = &stat_group.scalar("dou_train_correct");
    st.trainWrong = &stat_group.scalar("dou_train_wrong");
}

unsigned
DegreeOfUsePredictor::indexOf(Addr pc, uint64_t ctrl) const
{
    const uint64_t ctrl_sig = ctrl & ((1ULL << cfg.ctrlBits) - 1);
    return static_cast<unsigned>(
        mixHash((pc / isa::instBytes) ^ (ctrl_sig << 17)) %
        cfg.numSets());
}

uint8_t
DegreeOfUsePredictor::tagOf(Addr pc) const
{
    return static_cast<uint8_t>((pc / (isa::instBytes * cfg.numSets())) &
                                ((1u << cfg.tagBits) - 1));
}

unsigned
DegreeOfUsePredictor::clamp(unsigned uses) const
{
    return std::min(uses, cfg.maxPrediction());
}

std::optional<unsigned>
DegreeOfUsePredictor::predict(Addr pc, uint64_t ctrl) const
{
    const Entry *base = &table[indexOf(pc, ctrl) * cfg.assoc];
    const uint8_t tag = tagOf(pc);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Entry &e = base[w];
        if (e.valid && e.tag == tag) {
            // LRU state is touched at train time only; prediction
            // lookups are side-effect free.
            if (e.confidence >= cfg.confThreshold) {
                ++*st.supplied;
                return e.prediction;
            }
            break;
        }
    }
    ++*st.unavailable;
    return std::nullopt;
}

void
DegreeOfUsePredictor::train(Addr pc, uint64_t ctrl, unsigned actual_uses)
{
    Entry *base = &table[indexOf(pc, ctrl) * cfg.assoc];
    const uint8_t tag = tagOf(pc);
    const uint8_t actual = static_cast<uint8_t>(clamp(actual_uses));

    Entry *hit = nullptr;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            hit = &base[w];
            break;
        }
    }

    if (hit) {
        const bool was_confident = hit->confidence >= cfg.confThreshold;
        if (hit->prediction == actual) {
            if (was_confident)
                ++*st.trainCorrect;
            hit->confidence = std::min<unsigned>(hit->confidence + 1,
                                                 cfg.confMax);
        } else {
            if (was_confident)
                ++*st.trainWrong;
            if (hit->confidence == 0)
                hit->prediction = actual;
            else
                --hit->confidence;
        }
        hit->lastUse = ++useClock;
        return;
    }

    // Allocate, replacing the LRU way.
    Entry *victim = &base[0];
    for (unsigned w = 1; w < cfg.assoc; ++w)
        if (!base[w].valid ||
            (victim->valid && base[w].lastUse < victim->lastUse))
            victim = &base[w];
    victim->valid = true;
    victim->tag = tag;
    victim->prediction = actual;
    victim->confidence = 1;
    victim->lastUse = ++useClock;
}

double
DegreeOfUsePredictor::accuracy() const
{
    const uint64_t total =
        st.trainCorrect->value() + st.trainWrong->value();
    return total ? static_cast<double>(st.trainCorrect->value()) /
                       static_cast<double>(total)
                 : 0.0;
}

bool
DegreeOfUsePredictor::corruptPrediction(size_t index, unsigned bit)
{
    Entry &e = table[index % table.size()];
    if (!e.valid)
        return false;
    e.prediction = static_cast<uint8_t>(
        (e.prediction ^ (1u << bit)) &
        ((1u << cfg.predBits) - 1));
    return true;
}

uint64_t
DegreeOfUsePredictor::storageBits() const
{
    return uint64_t(cfg.entries) *
           (cfg.tagBits + cfg.predBits + 2 /*confidence*/ + 1 /*valid*/);
}

} // namespace ubrc::regcache
