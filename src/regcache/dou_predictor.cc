#include "regcache/dou_predictor.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "isa/instruction.hh"

namespace ubrc::regcache
{

DegreeOfUsePredictor::DegreeOfUsePredictor(const DouParams &params,
                                           stats::StatGroup &stat_group)
    : cfg(params)
{
    if (cfg.entries == 0 || cfg.entries % cfg.assoc != 0)
        fatal("degree-of-use predictor: bad geometry");
    if (cfg.tagBits > 8 || cfg.predBits > 8)
        fatal("degree-of-use predictor: tag/prediction fields exceed "
              "the packed 8-bit lanes");
    words.assign(cfg.entries, 0);
    lastUse.assign(cfg.entries, 0);
    pow2Sets = isPowerOfTwo(cfg.numSets());
    if (pow2Sets)
        setMask = cfg.numSets() - 1;
    const uint64_t tag_div = uint64_t(isa::instBytes) * cfg.numSets();
    pow2TagDiv = isPowerOfTwo(tag_div);
    if (pow2TagDiv)
        tagShift = floorLog2(tag_div);
    st.supplied = &stat_group.scalar("dou_supplied");
    st.unavailable = &stat_group.scalar("dou_unavailable");
    st.trainCorrect = &stat_group.scalar("dou_train_correct");
    st.trainWrong = &stat_group.scalar("dou_train_wrong");
}

unsigned
DegreeOfUsePredictor::indexOf(Addr pc, uint64_t ctrl) const
{
    const uint64_t ctrl_sig = ctrl & ((1ULL << cfg.ctrlBits) - 1);
    const uint64_t h = mixHash((pc / isa::instBytes) ^ (ctrl_sig << 17));
    if (pow2Sets)
        return static_cast<unsigned>(h & setMask);
    return static_cast<unsigned>(h % cfg.numSets());
}

uint8_t
DegreeOfUsePredictor::tagOf(Addr pc) const
{
    const uint64_t quot =
        pow2TagDiv ? (pc >> tagShift)
                   : (pc / (isa::instBytes * cfg.numSets()));
    return static_cast<uint8_t>(quot & ((1u << cfg.tagBits) - 1));
}

unsigned
DegreeOfUsePredictor::clamp(unsigned uses) const
{
    return std::min(uses, cfg.maxPrediction());
}

std::optional<unsigned>
DegreeOfUsePredictor::predict(Addr pc, uint64_t ctrl) const
{
    const size_t base = size_t(indexOf(pc, ctrl)) * cfg.assoc;
    const uint32_t tag = tagOf(pc);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const uint32_t e = words[base + w];
        if (validWord(e) && tagOfWord(e) == tag) {
            // LRU state is touched at train time only; prediction
            // lookups are side-effect free.
            if (confOfWord(e) >= cfg.confThreshold) {
                ++*st.supplied;
                return predOfWord(e);
            }
            break;
        }
    }
    ++*st.unavailable;
    return std::nullopt;
}

void
DegreeOfUsePredictor::train(Addr pc, uint64_t ctrl, unsigned actual_uses)
{
    const size_t base = size_t(indexOf(pc, ctrl)) * cfg.assoc;
    const uint32_t tag = tagOf(pc);
    const uint32_t actual = clamp(actual_uses);

    size_t hit = base;
    bool found = false;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const uint32_t e = words[base + w];
        if (validWord(e) && tagOfWord(e) == tag) {
            hit = base + w;
            found = true;
            break;
        }
    }

    if (found) {
        const uint32_t e = words[hit];
        const uint32_t conf = confOfWord(e);
        const bool was_confident = conf >= cfg.confThreshold;
        if (predOfWord(e) == actual) {
            if (was_confident)
                ++*st.trainCorrect;
            const uint32_t next =
                std::min<uint32_t>(conf + 1, cfg.confMax);
            words[hit] = (e & ~(0xffu << confShift)) |
                         (next << confShift);
        } else {
            if (was_confident)
                ++*st.trainWrong;
            if (conf == 0)
                words[hit] = (e & ~(0xffu << predShift)) |
                             (actual << predShift);
            else
                words[hit] = (e & ~(0xffu << confShift)) |
                             ((conf - 1) << confShift);
        }
        lastUse[hit] = ++useClock;
        return;
    }

    // Allocate, replacing the LRU way (an invalid way wins outright,
    // matching the old entry-object scan: the last invalid way, else
    // the least recently trained valid one).
    size_t victim = base;
    for (unsigned w = 1; w < cfg.assoc; ++w) {
        const size_t cand = base + w;
        if (!validWord(words[cand]) ||
            (validWord(words[victim]) &&
             lastUse[cand] < lastUse[victim]))
            victim = cand;
    }
    words[victim] = tag | (actual << predShift) | (1u << confShift) |
                    validBit;
    lastUse[victim] = ++useClock;
}

double
DegreeOfUsePredictor::accuracy() const
{
    const uint64_t total =
        st.trainCorrect->value() + st.trainWrong->value();
    return total ? static_cast<double>(st.trainCorrect->value()) /
                       static_cast<double>(total)
                 : 0.0;
}

bool
DegreeOfUsePredictor::corruptPrediction(size_t index, unsigned bit)
{
    const size_t slot = index % words.size();
    const uint32_t e = words[slot];
    if (!validWord(e))
        return false;
    const uint32_t pred = (predOfWord(e) ^ (1u << bit)) &
                          ((1u << cfg.predBits) - 1);
    words[slot] = (e & ~(0xffu << predShift)) | (pred << predShift);
    return true;
}

uint64_t
DegreeOfUsePredictor::storageBits() const
{
    return uint64_t(cfg.entries) *
           (cfg.tagBits + cfg.predBits + 2 /*confidence*/ + 1 /*valid*/);
}

} // namespace ubrc::regcache
