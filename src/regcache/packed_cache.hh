/**
 * @file
 * Dense structure-of-arrays storage shared by the register cache and
 * its shadow fully-associative classifier.
 *
 * Each entry is one bit-packed 64-bit word holding tag, remaining-use
 * count, pin bit, and valid bit (layout below and in DESIGN.md);
 * recency (LRU clocks) and lifetime instrumentation live in separate
 * per-lane arrays so the replacement scan touches only the words it
 * compares. A decoupled preg->slot probe index makes presence checks
 * O(1) instead of a tag scan per call; the set-restricted probe keeps
 * an exact way-scan fallback so even aliased placements (the same
 * preg planted in two sets by a test) resolve exactly as the old
 * per-entry-object scan did.
 *
 * Word layout (low to high):
 *   [15:0]  preg tag (uint16 image of the PhysReg)
 *   [23:16] remaining-use counter (saturates at the cache's maxUse)
 *   [24]    pinned (counter never decremented)
 *   [25]    valid
 *   [63:26] zero
 *
 * Invariants:
 *  - an invalid slot's word is all-zero;
 *  - remUses <= maxUse <= 255 at all times (construction enforces);
 *  - slotOf[preg] names the most recent placement of preg, and is
 *    reset when that exact slot is cleared or overwritten.
 */

#ifndef UBRC_REGCACHE_PACKED_CACHE_HH
#define UBRC_REGCACHE_PACKED_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "regcache/policies.hh"

namespace ubrc::regcache
{

namespace packed
{

constexpr unsigned pregBits = 16;
constexpr unsigned useBits = 8;
constexpr unsigned useShift = pregBits;              // 16
constexpr unsigned pinnedShift = useShift + useBits; // 24
constexpr unsigned validShift = pinnedShift + 1;     // 25

constexpr uint64_t pregMask = (1ULL << pregBits) - 1;
constexpr uint64_t useMask = (1ULL << useBits) - 1;
constexpr uint64_t pinnedBit = 1ULL << pinnedShift;
constexpr uint64_t validBit = 1ULL << validShift;

/** Largest remaining-use count the packed field can hold. */
constexpr unsigned maxRemUses = static_cast<unsigned>(useMask);

inline uint64_t
pack(PhysReg preg, uint32_t rem_uses, bool pinned, bool valid)
{
    return static_cast<uint64_t>(static_cast<uint16_t>(preg)) |
           ((static_cast<uint64_t>(rem_uses) & useMask) << useShift) |
           (pinned ? pinnedBit : 0) | (valid ? validBit : 0);
}

inline PhysReg
preg(uint64_t word)
{
    return static_cast<PhysReg>(
        static_cast<uint16_t>(word & pregMask));
}

inline uint32_t
remUses(uint64_t word)
{
    return static_cast<uint32_t>((word >> useShift) & useMask);
}

inline bool pinned(uint64_t word) { return (word & pinnedBit) != 0; }
inline bool valid(uint64_t word) { return (word & validBit) != 0; }

} // namespace packed

/**
 * The packed SoA core. TrackLifetime adds the insertion-cycle and
 * read-count lanes the real register cache samples at retirement;
 * the shadow classifier instantiates without them.
 *
 * The core is purely structural: policy decisions (when to insert,
 * what to count) stay with its owners.
 */
template <bool TrackLifetime>
class PackedCacheCore
{
  public:
    void
    reset(unsigned num_sets, unsigned ways,
          ReplacementPolicy replacement, unsigned max_use)
    {
        // Reconfiguration happens once per simulated scheme, outside
        // the per-operand path; these allocations never run per-op.
        // ubrc-lint: allow-fn(hot-path-alloc)
        sets_ = num_sets;
        assoc_ = ways;
        repl_ = replacement;
        maxUse_ = max_use;
        words_.assign(size_t(num_sets) * ways, 0);
        lastUse_.assign(words_.size(), 0);
        if constexpr (TrackLifetime) {
            insertedAt_.assign(words_.size(), 0);
            reads_.assign(words_.size(), 0);
        }
        slotOf_.clear();
        useClock_ = 0;
    }

    unsigned sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }
    unsigned maxUse() const { return maxUse_; }
    size_t numSlots() const { return words_.size(); }

    unsigned setOf(int slot) const { return unsigned(slot) / assoc_; }
    unsigned wayOf(int slot) const { return unsigned(slot) % assoc_; }

    uint64_t word(int slot) const { return words_[size_t(slot)]; }
    bool validAt(int slot) const { return packed::valid(word(slot)); }
    PhysReg pregAt(int slot) const { return packed::preg(word(slot)); }
    bool pinnedAt(int slot) const { return packed::pinned(word(slot)); }

    uint32_t
    remUsesAt(int slot) const
    {
        return packed::remUses(word(slot));
    }

    uint64_t lastUseAt(int slot) const { return lastUse_[size_t(slot)]; }

    Cycle
    insertedAtOf(int slot) const
    {
        static_assert(TrackLifetime, "no insertion-cycle lane");
        return insertedAt_[size_t(slot)];
    }

    uint32_t
    readsAt(int slot) const
    {
        static_assert(TrackLifetime, "no read-count lane");
        return reads_[size_t(slot)];
    }

    /**
     * O(1) probe through the decoupled index: the slot currently
     * holding `preg`, or -1. Exact whenever each preg has at most one
     * live placement (always true for the fully-associative shadow
     * and for suppliers, which assign one set per allocation).
     */
    int
    findIndexed(PhysReg preg) const
    {
        const size_t p = size_t(static_cast<uint16_t>(preg));
        if (p >= slotOf_.size())
            return -1;
        const int slot = slotOf_[p];
        if (slot < 0)
            return -1;
        const uint64_t w = words_[size_t(slot)];
        return (packed::valid(w) && packed::preg(w) == preg) ? slot
                                                             : -1;
    }

    /**
     * Probe restricted to one set: the indexed fast path, then an
     * exact way scan of the set (covers aliased placements).
     */
    int
    findInSet(PhysReg preg, unsigned set) const
    {
        const int slot = findIndexed(preg);
        if (slot >= 0 && setOf(slot) == set)
            return slot;
        const size_t base = size_t(set) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w) {
            const uint64_t cand = words_[base + w];
            if (packed::valid(cand) && packed::preg(cand) == preg)
                return int(base + w);
        }
        return -1;
    }

    /**
     * Replacement choice in `set`: the first invalid way, else the
     * policy victim — LRU, or fewest remaining uses with pinned
     * counting as infinite and LRU breaking ties.
     */
    int
    victimIn(unsigned set) const
    {
        const size_t base = size_t(set) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w)
            if (!packed::valid(words_[base + w]))
                return int(base + w);

        size_t victim = base;
        if (repl_ == ReplacementPolicy::LRU) {
            for (unsigned w = 1; w < assoc_; ++w)
                if (lastUse_[base + w] < lastUse_[victim])
                    victim = base + w;
            return int(victim);
        }
        uint64_t v_uses = packed::pinned(words_[victim])
                              ? ~0ULL
                              : packed::remUses(words_[victim]);
        for (unsigned w = 1; w < assoc_; ++w) {
            const size_t cand = base + w;
            const uint64_t cw = words_[cand];
            const uint64_t c_uses =
                packed::pinned(cw) ? ~0ULL : packed::remUses(cw);
            if (c_uses < v_uses ||
                (c_uses == v_uses &&
                 lastUse_[cand] < lastUse_[victim])) {
                victim = cand;
                v_uses = c_uses;
            }
        }
        return int(victim);
    }

    /**
     * Write a new entry into `slot` (cleared or victim-retired by the
     * caller first) and index it. The use counter saturates at the
     * configured maxUse.
     */
    void
    place(int slot, PhysReg preg, uint32_t rem_uses, bool pinned,
          Cycle now)
    {
        const uint32_t rem = rem_uses < maxUse_ ? rem_uses : maxUse_;
        words_[size_t(slot)] = packed::pack(preg, rem, pinned, true);
        lastUse_[size_t(slot)] = ++useClock_;
        if constexpr (TrackLifetime) {
            insertedAt_[size_t(slot)] = now;
            reads_[size_t(slot)] = 0;
        }
        (void)now;
        const size_t p = size_t(static_cast<uint16_t>(preg));
        if (p >= slotOf_.size())
            // Amortised: grows monotonically to the physical register
            // count, then never again for the rest of the run.
            // ubrc-lint: allow(hot-path-alloc)
            slotOf_.resize(p + 1, -1);
        slotOf_[p] = slot;
    }

    /** Invalidate `slot` and drop its index mapping. */
    void
    clear(int slot)
    {
        const uint64_t w = words_[size_t(slot)];
        words_[size_t(slot)] = 0;
        if (!packed::valid(w))
            return;
        const size_t p =
            size_t(static_cast<uint16_t>(packed::preg(w)));
        if (p < slotOf_.size() && slotOf_[p] == slot)
            slotOf_[p] = -1;
    }

    /** Read hit: refresh recency, bump the read lane, decrement. */
    void
    touchRead(int slot)
    {
        lastUse_[size_t(slot)] = ++useClock_;
        if constexpr (TrackLifetime)
            ++reads_[size_t(slot)];
        decrementUses(slot);
    }

    /** Decrement the use counter unless pinned or already zero. */
    void
    decrementUses(int slot)
    {
        const uint64_t w = words_[size_t(slot)];
        if (!packed::pinned(w) && packed::remUses(w) > 0)
            words_[size_t(slot)] = w - (1ULL << packed::useShift);
    }

    /** Fault injection: XOR a bit of the packed use-counter field. */
    void
    corruptUses(int slot, unsigned bit)
    {
        words_[size_t(slot)] ^=
            1ULL << (packed::useShift + (bit % packed::useBits));
    }

  private:
    unsigned sets_ = 0;
    unsigned assoc_ = 0;
    ReplacementPolicy repl_ = ReplacementPolicy::UseBased;
    unsigned maxUse_ = 0;

    std::vector<uint64_t> words_;   ///< packed tag|uses|pinned|valid
    std::vector<uint64_t> lastUse_; ///< recency clocks (LRU lane)
    std::vector<Cycle> insertedAt_; ///< lifetime lane (TrackLifetime)
    std::vector<uint32_t> reads_;   ///< lifetime lane (TrackLifetime)
    std::vector<int32_t> slotOf_;   ///< decoupled preg->slot index
    uint64_t useClock_ = 0;
};

} // namespace ubrc::regcache

#endif // UBRC_REGCACHE_PACKED_CACHE_HH
