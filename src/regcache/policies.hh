/**
 * @file
 * Policy enumerations for register cache management and indexing
 * (Sections 3 and 4 of the paper).
 */

#ifndef UBRC_REGCACHE_POLICIES_HH
#define UBRC_REGCACHE_POLICIES_HH

namespace ubrc::regcache
{

/** What gets written into the register cache at writeback. */
enum class InsertionPolicy
{
    /** Write every produced value (Yung & Wilhelm style LRU cache). */
    Always,
    /**
     * Skip the write if the value bypassed to *any* consumer before
     * the write (Cruz et al. heuristic).
     */
    NonBypass,
    /**
     * Skip the write only if first-stage bypasses satisfied *all*
     * predicted uses (this paper, Section 3.1).
     */
    UseBased,
};

/** Victim selection within a set. */
enum class ReplacementPolicy
{
    /** Least-recently-used entry. */
    LRU,
    /**
     * Entry with the fewest remaining uses; ties broken by LRU
     * (this paper, Section 3.2). Pinned entries are never preferred.
     */
    UseBased,
};

/** How register cache set indices are assigned (Section 4). */
enum class IndexPolicy
{
    /** Standard indexing: low-order physical register tag bits. */
    PhysReg,
    /** Decoupled: sequential set assignment in rename order. */
    RoundRobin,
    /** Decoupled: set with the minimum sum of predicted uses. */
    Minimum,
    /**
     * Decoupled: round-robin, skipping sets that hold more than
     * associativity/2 high-use (predicted uses > 5) values.
     */
    FilteredRoundRobin,
};

const char *toString(InsertionPolicy p);
const char *toString(ReplacementPolicy p);
const char *toString(IndexPolicy p);

} // namespace ubrc::regcache

#endif // UBRC_REGCACHE_POLICIES_HH
