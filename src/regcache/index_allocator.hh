/**
 * @file
 * Decoupled-indexing set assignment (Section 4 of the paper).
 *
 * At rename, each produced value is assigned a register cache set
 * index that travels with the physical register tag through the map
 * table. The assignment policy aims to minimize future conflicts:
 *
 *  - PhysReg: standard indexing (low-order physical register bits);
 *    the degenerate, coupled baseline.
 *  - RoundRobin: sequential assignment in rename order.
 *  - Minimum: the set with the smallest sum of predicted uses among
 *    values currently assigned to it.
 *  - FilteredRoundRobin: round-robin, skipping sets holding more than
 *    assoc/2 high-use values (predicted uses > highUseThreshold).
 */

#ifndef UBRC_REGCACHE_INDEX_ALLOCATOR_HH
#define UBRC_REGCACHE_INDEX_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "regcache/policies.hh"

namespace ubrc::regcache
{

/** Assigns and releases register cache set indices. */
class IndexAllocator
{
  public:
    IndexAllocator(IndexPolicy policy, unsigned num_sets, unsigned assoc,
                   unsigned high_use_threshold = 5);

    /**
     * Assign a set for a newly renamed value.
     * @param preg The allocated physical register.
     * @param predicted_uses Degree-of-use prediction for the value.
     */
    unsigned assign(PhysReg preg, unsigned predicted_uses);

    /**
     * Release the bookkeeping for a value, at producer retirement or
     * squash. Pass the same set and prediction given to/by assign().
     */
    void release(unsigned set, unsigned predicted_uses);

    IndexPolicy policy() const { return pol; }
    unsigned numSets() const { return nSets; }

    /** Bookkeeping inspection for tests. */
    uint64_t setLoad(unsigned set) const { return loads[set]; }
    uint32_t setHighUse(unsigned set) const { return highUse[set]; }

  private:
    IndexPolicy pol;
    unsigned nSets;
    unsigned assoc;
    unsigned highThreshold;
    unsigned skipLimit; ///< assoc/2: filtered-RR occupancy bound
    unsigned rrNext = 0;
    std::vector<uint64_t> loads;   ///< minimum: sum of predicted uses
    std::vector<uint32_t> highUse; ///< filtered: high-use value count
};

} // namespace ubrc::regcache

#endif // UBRC_REGCACHE_INDEX_ALLOCATOR_HH
