#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace ubrc::mem
{

TagCache::TagCache(const CacheGeometry &geometry) : geom(geometry)
{
    if (geom.lineBytes == 0 || !isPowerOfTwo(geom.lineBytes))
        fatal("cache line size must be a power of two");
    if (geom.assoc == 0 || geom.numLines() % geom.assoc != 0)
        fatal("cache associativity must divide the line count");
    if (geom.numSets() == 0)
        fatal("cache must have at least one set");
    ways.resize(geom.numLines());
}

TagCache::Way *
TagCache::findWay(uint64_t line)
{
    Way *base = &ways[setOf(line) * geom.assoc];
    for (unsigned w = 0; w < geom.assoc; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const TagCache::Way *
TagCache::findWay(uint64_t line) const
{
    const Way *base = &ways[setOf(line) * geom.assoc];
    for (unsigned w = 0; w < geom.assoc; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

bool
TagCache::lookup(Addr addr)
{
    Way *w = findWay(lineOf(addr));
    if (!w)
        return false;
    w->lastUse = ++useClock;
    return true;
}

bool
TagCache::insert(Addr addr, Addr *victim_out)
{
    const uint64_t line = lineOf(addr);
    if (Way *w = findWay(line)) {
        w->lastUse = ++useClock; // already present; refresh
        return false;
    }
    Way *base = &ways[setOf(line) * geom.assoc];
    Way *victim = &base[0];
    for (unsigned w = 0; w < geom.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    const bool evicted = victim->valid;
    if (evicted && victim_out)
        *victim_out = victim->line * geom.lineBytes;
    victim->valid = true;
    victim->line = line;
    victim->lastUse = ++useClock;
    return evicted;
}

bool
TagCache::invalidate(Addr addr)
{
    if (Way *w = findWay(lineOf(addr))) {
        w->valid = false;
        return true;
    }
    return false;
}

bool
TagCache::contains(Addr addr) const
{
    return findWay(lineOf(addr)) != nullptr;
}

} // namespace ubrc::mem
