/**
 * @file
 * Generic set-associative tag store with LRU replacement, used for the
 * instruction, data, and unified caches and the victim/prefetch
 * buffers (which are just fully-associative instances).
 */

#ifndef UBRC_MEM_CACHE_HH
#define UBRC_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ubrc::mem
{

/** Geometry of a cache. */
struct CacheGeometry
{
    uint64_t sizeBytes;
    unsigned assoc;
    unsigned lineBytes;

    uint64_t numLines() const { return sizeBytes / lineBytes; }
    uint64_t numSets() const { return numLines() / assoc; }
};

/**
 * A tag-only set-associative cache model with true-LRU replacement.
 * No data is stored; the simulator's memory image is functional and
 * shared, so caches only decide hit/miss and track residency.
 */
class TagCache
{
  public:
    explicit TagCache(const CacheGeometry &geometry);

    /**
     * Look up addr; on hit, update LRU. Does not allocate.
     * @return true on hit.
     */
    bool lookup(Addr addr);

    /**
     * Insert the line containing addr.
     * @param victim_out Receives the evicted line address, if any.
     * @return true if a valid line was evicted.
     */
    bool insert(Addr addr, Addr *victim_out = nullptr);

    /** Remove the line containing addr if present. */
    bool invalidate(Addr addr);

    /** True if the line is present (no LRU update). */
    bool contains(Addr addr) const;

    const CacheGeometry &geometry() const { return geom; }

    uint64_t lineOf(Addr addr) const { return addr / geom.lineBytes; }

  private:
    struct Way
    {
        uint64_t line = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    uint64_t setOf(uint64_t line) const { return line % geom.numSets(); }
    Way *findWay(uint64_t line);
    const Way *findWay(uint64_t line) const;

    CacheGeometry geom;
    std::vector<Way> ways; // numSets x assoc, row-major
    uint64_t useClock = 0;
};

} // namespace ubrc::mem

#endif // UBRC_MEM_CACHE_HH
