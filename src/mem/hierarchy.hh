/**
 * @file
 * Timing model of the cache/memory hierarchy described in Table 1:
 * split 32 KB 2-way L1 I/D caches (64 B lines), a 1 MB 4-way unified
 * L2 (128 B lines, 12-cycle latency), 180-cycle memory, a 64-entry
 * unified victim/prefetch buffer beside each of L1D and L2, a
 * unit-stride prefetcher, and a 16-entry coalescing store buffer.
 *
 * Data is functional and lives in the shared SparseMemory image; the
 * hierarchy only computes access latencies and maintains residency.
 * Misses are non-blocking (latency is charged to the requesting
 * instruction; up to four store-buffer drains overlap), which stands
 * in for MSHR behaviour at this level of detail.
 */

#ifndef UBRC_MEM_HIERARCHY_HH
#define UBRC_MEM_HIERARCHY_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"

namespace ubrc::mem
{

/** Hierarchy parameters (defaults match Table 1). */
struct MemConfig
{
    CacheGeometry l1i{32 * 1024, 2, 64};
    CacheGeometry l1d{32 * 1024, 2, 64};
    CacheGeometry l2{1024 * 1024, 4, 128};
    unsigned victimEntries = 64;   ///< per victim/prefetch buffer
    Cycle l1Latency = 0;           ///< extra cycles beyond the pipe
    Cycle victimLatency = 2;
    Cycle l2Latency = 12;
    Cycle memLatency = 180;
    unsigned prefetchDepth = 2;    ///< lines fetched ahead on a stream
    bool prefetchEnable = true;
};

/**
 * The cache hierarchy. All access methods return the *extra* latency
 * beyond the pipelined L1-hit path (0 for an L1 hit).
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const MemConfig &config, stats::StatGroup &stat_group);

    /** Data-side read (demand load). */
    Cycle loadAccess(Addr addr);

    /** Data-side write (store-buffer drain). Allocates on miss. */
    Cycle storeAccess(Addr addr);

    /** Instruction fetch. */
    Cycle ifetchAccess(Addr addr);

    const MemConfig &config() const { return cfg; }

  private:
    /** Shared L2-and-beyond path for both L1s. */
    Cycle l2Access(Addr addr);

    /** Data-side common path. */
    Cycle dataAccess(Addr addr, bool is_store);

    /** Unit-stride prefetch on a demand miss. */
    void maybePrefetch(Addr miss_addr);

    MemConfig cfg;
    TagCache l1i;
    TagCache l1d;
    TagCache l2;
    TagCache l1Victim;  ///< unified victim/prefetch buffer beside L1D
    TagCache l2Victim;  ///< ... and beside L2

    Addr lastMissLine = 0;
    int streamRun = 0;

    struct
    {
        stats::Scalar *l1iMisses, *l1dMisses, *l2Misses;
        stats::Scalar *l1iAccesses, *l1dAccesses;
        stats::Scalar *victimHits, *prefetchIssued;
    } st;
};

/**
 * The 16-entry coalescing store buffer. Retired stores enter here (at
 * most two per cycle, enforced by the retire stage); entries drain to
 * the data cache in the background. A full buffer back-pressures
 * retirement.
 */
class StoreBuffer
{
  public:
    StoreBuffer(unsigned entries, unsigned drain_ports,
                MemoryHierarchy &hierarchy, unsigned line_bytes);

    /** True if a store to addr can be accepted this cycle. */
    bool canAccept(Addr addr) const;

    /** Insert (or coalesce) a retired store. @pre canAccept(addr). */
    void push(Addr addr, Cycle now);

    /** Advance the drain engine; call once per cycle. */
    void tick(Cycle now);

    bool empty() const { return entries.empty(); }
    size_t occupancy() const { return entries.size(); }

  private:
    struct Entry
    {
        uint64_t line;
        Cycle readyAt; ///< entered the buffer; drains in FIFO order
    };

    uint64_t lineOf(Addr addr) const { return addr / lineBytes; }

    unsigned capacity;
    MemoryHierarchy &mem;
    unsigned lineBytes;
    std::vector<Entry> entries; // FIFO, front drains first
    std::vector<Cycle> drainBusyUntil;
};

} // namespace ubrc::mem

#endif // UBRC_MEM_HIERARCHY_HH
