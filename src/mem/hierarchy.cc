#include "mem/hierarchy.hh"

#include <algorithm>

namespace ubrc::mem
{

MemoryHierarchy::MemoryHierarchy(const MemConfig &config,
                                 stats::StatGroup &stat_group)
    : cfg(config),
      l1i(cfg.l1i),
      l1d(cfg.l1d),
      l2(cfg.l2),
      l1Victim({uint64_t(cfg.victimEntries) * cfg.l1d.lineBytes,
                cfg.victimEntries, cfg.l1d.lineBytes}),
      l2Victim({uint64_t(cfg.victimEntries) * cfg.l2.lineBytes,
                cfg.victimEntries, cfg.l2.lineBytes})
{
    st.l1iMisses = &stat_group.scalar("l1i_misses");
    st.l1dMisses = &stat_group.scalar("l1d_misses");
    st.l2Misses = &stat_group.scalar("l2_misses");
    st.l1iAccesses = &stat_group.scalar("l1i_accesses");
    st.l1dAccesses = &stat_group.scalar("l1d_accesses");
    st.victimHits = &stat_group.scalar("victim_hits");
    st.prefetchIssued = &stat_group.scalar("prefetch_issued");
}

Cycle
MemoryHierarchy::l2Access(Addr addr)
{
    if (l2.lookup(addr))
        return cfg.l2Latency;
    if (l2Victim.lookup(addr)) {
        ++*st.victimHits;
        l2Victim.invalidate(addr);
        l2.insert(addr);
        return cfg.l2Latency + cfg.victimLatency;
    }
    ++*st.l2Misses;
    Addr victim = 0;
    if (l2.insert(addr, &victim))
        l2Victim.insert(victim);
    return cfg.memLatency;
}

void
MemoryHierarchy::maybePrefetch(Addr miss_addr)
{
    if (!cfg.prefetchEnable)
        return;
    const Addr line = miss_addr / cfg.l1d.lineBytes;
    if (line == lastMissLine + 1)
        ++streamRun;
    else if (line != lastMissLine)
        streamRun = 0;
    lastMissLine = line;
    if (streamRun >= 2) {
        // Opportunistic: bring the next lines into the L1-side
        // victim/prefetch buffer.
        for (unsigned i = 1; i <= cfg.prefetchDepth; ++i) {
            const Addr pf = (line + i) * cfg.l1d.lineBytes;
            if (!l1d.contains(pf) && !l1Victim.contains(pf)) {
                l1Victim.insert(pf);
                l2.insert(pf);
                ++*st.prefetchIssued;
            }
        }
    }
}

Cycle
MemoryHierarchy::dataAccess(Addr addr, bool is_store)
{
    ++*st.l1dAccesses;
    if (l1d.lookup(addr))
        return cfg.l1Latency;
    if (l1Victim.lookup(addr)) {
        ++*st.victimHits;
        l1Victim.invalidate(addr);
        Addr victim = 0;
        if (l1d.insert(addr, &victim))
            l1Victim.insert(victim);
        return cfg.l1Latency + cfg.victimLatency;
    }
    ++*st.l1dMisses;
    if (!is_store)
        maybePrefetch(addr);
    const Cycle below = l2Access(addr);
    Addr victim = 0;
    if (l1d.insert(addr, &victim))
        l1Victim.insert(victim);
    return cfg.l1Latency + below;
}

Cycle
MemoryHierarchy::loadAccess(Addr addr)
{
    return dataAccess(addr, false);
}

Cycle
MemoryHierarchy::storeAccess(Addr addr)
{
    return dataAccess(addr, true);
}

Cycle
MemoryHierarchy::ifetchAccess(Addr addr)
{
    ++*st.l1iAccesses;
    if (l1i.lookup(addr))
        return cfg.l1Latency;
    ++*st.l1iMisses;
    const Cycle below = l2Access(addr);
    l1i.insert(addr);
    if (cfg.prefetchEnable) {
        // Sequential next-line instruction prefetch: straight-line
        // code misses at most once per stream, not once per line.
        for (unsigned i = 1; i <= cfg.prefetchDepth; ++i) {
            const Addr pf = addr + i * cfg.l1i.lineBytes;
            if (!l1i.contains(pf)) {
                l2.insert(pf);
                l1i.insert(pf);
                ++*st.prefetchIssued;
            }
        }
    }
    return cfg.l1Latency + below;
}

StoreBuffer::StoreBuffer(unsigned num_entries, unsigned drain_ports,
                         MemoryHierarchy &hierarchy, unsigned line_bytes)
    : capacity(num_entries),
      mem(hierarchy),
      lineBytes(line_bytes),
      drainBusyUntil(drain_ports, 0)
{
}

bool
StoreBuffer::canAccept(Addr addr) const
{
    if (entries.size() < capacity)
        return true;
    // Full, but a coalescing hit needs no new entry.
    const uint64_t line = lineOf(addr);
    for (const auto &e : entries)
        if (e.line == line)
            return true;
    return false;
}

void
StoreBuffer::push(Addr addr, Cycle now)
{
    const uint64_t line = lineOf(addr);
    for (auto &e : entries) {
        if (e.line == line)
            return; // coalesced
    }
    entries.push_back({line, now});
}

void
StoreBuffer::tick(Cycle now)
{
    // Each free drain port retires the oldest pending entry; the
    // port stays busy for the access duration (1 cycle on an L1
    // hit).
    for (auto &busy_until : drainBusyUntil) {
        if (busy_until > now || entries.empty())
            continue;
        const Entry e = entries.front();
        if (e.readyAt > now)
            break;
        entries.erase(entries.begin());
        const Cycle extra = mem.storeAccess(e.line * lineBytes);
        busy_until = now + 1 + extra;
    }
}

} // namespace ubrc::mem
