/**
 * @file
 * Processor diagnostics: fault injection, the golden-model checker,
 * lifetime instrumentation, crash-dump snapshots, and result
 * derivation. Split from processor.cc so the pipeline file holds only
 * the timing model.
 */

#include <algorithm>
#include <cinttypes>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "core/processor.hh"
#include "isa/disasm.hh"

namespace ubrc::core
{

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

void
Processor::applyInjection()
{
    if (!injector)
        return;
    const auto draw = injector->sample();
    if (!draw)
        return;

    switch (draw->target) {
      case inject::TargetRegCacheValue: {
        const auto entries = supplier->cachedEntries();
        if (entries.empty())
            return;
        const auto &e = entries[draw->site % entries.size()];
        pregs[e.preg].value ^= 1ULL << draw->bit;
        injector->record({now, draw->target, e.preg, e.set,
                          draw->bit});
        break;
      }
      case inject::TargetRegCacheUse: {
        const auto entries = supplier->cachedEntries();
        if (entries.empty())
            return;
        const auto &e = entries[draw->site % entries.size()];
        // Remaining-use counters are just wide enough for maxUse.
        const unsigned width =
            std::max(1u, ceilLog2(uint64_t(cfg.rc.maxUse) + 1));
        const unsigned bit = draw->bit % width;
        if (supplier->corruptUseCounter(e.preg, e.set, bit))
            injector->record({now, draw->target, e.preg, e.set,
                              bit});
        break;
      }
      case inject::TargetDouCounter: {
        if (const auto hit =
                supplier->corruptDouCounter(draw->site, draw->bit))
            injector->record({now, draw->target,
                              static_cast<int32_t>(hit->first), 0,
                              hit->second});
        break;
      }
      case inject::TargetBackingValue: {
        // Any allocated physical register other than the constant
        // zero register is a fault site.
        std::vector<PhysReg> live;
        live.reserve(allocatedPregs);
        for (unsigned p = 1; p < cfg.numPhysRegs; ++p)
            if (pregs[p].allocated)
                live.push_back(static_cast<PhysReg>(p));
        if (live.empty())
            return;
        const PhysReg p = live[draw->site % live.size()];
        pregs[p].value ^= 1ULL << draw->bit;
        injector->record({now, draw->target, p, 0, draw->bit});
        break;
      }
      default:
        break;
    }
}

// ---------------------------------------------------------------------
// Watchdog forensics
// ---------------------------------------------------------------------

std::string
Processor::describeStuckHead() const
{
    if (rob.empty())
        return "(empty ROB)";
    const DynInst &h = rob.front();
    unsigned pending = 0;
    for (const auto &slot_events : eventRing)
        for (const auto &e : slot_events)
            if (e.seq == h.seq)
                ++pending;
    bool in_iq = false;
    for (const DynInst *i : issueQueue)
        if (i->seq == h.seq)
            in_iq = true;
    return detail::formatString(
        "stuck head seq=%llu pc=0x%llx '%s' state=%d "
        "exec=%d ready=%" PRId64 " wait=%u done=%d "
        "waitStore=%llu iq=%zu issueCyc=%" PRId64
        " gen=%u replays=%u pendingEvents=%u inIQ=%d",
        static_cast<unsigned long long>(h.seq),
        static_cast<unsigned long long>(h.pc),
        isa::disassemble(h.si).c_str(),
        static_cast<int>(h.state), int(h.executing),
        h.readyCycle, unsigned(h.waitCount),
        int(h.completed),
        static_cast<unsigned long long>(h.waitingOnStore),
        issueQueue.size(), h.issueCycle,
        unsigned(h.issueGen), unsigned(h.replays),
        pending, int(in_iq));
}

// ---------------------------------------------------------------------
// Golden-model checker
// ---------------------------------------------------------------------

void
Processor::checkRetired(const DynInst &inst)
{
    if (!golden)
        return;
    // The timing core never renames nops (fetch skips them), so the
    // golden interpreter steps over them silently.
    while (!golden->halted() && prog.contains(golden->pc()) &&
           prog.at(golden->pc()).isNop())
        golden->step();
    const isa::ExecResult g = golden->step();
    if (g.pc != inst.pc)
        raise(sim::CheckerError(detail::formatString(
            "checker: retired pc 0x%llx but golden pc 0x%llx "
            "(seq %llu, %s)",
            static_cast<unsigned long long>(inst.pc),
            static_cast<unsigned long long>(g.pc),
            static_cast<unsigned long long>(inst.seq),
            isa::disassemble(inst.si).c_str())));
    if (inst.hasDest && g.wroteReg && g.destValue != inst.result)
        raise(sim::CheckerError(detail::formatString(
            "checker: %s @0x%llx produced %llx, golden %llx",
            isa::disassemble(inst.si).c_str(),
            static_cast<unsigned long long>(inst.pc),
            static_cast<unsigned long long>(inst.result),
            static_cast<unsigned long long>(g.destValue))));
    if (inst.si.isMem() && g.effAddr != inst.effAddr)
        raise(sim::CheckerError(detail::formatString(
            "checker: %s @0x%llx addr %llx, golden %llx",
            isa::disassemble(inst.si).c_str(),
            static_cast<unsigned long long>(inst.pc),
            static_cast<unsigned long long>(inst.effAddr),
            static_cast<unsigned long long>(g.effAddr))));
    if (inst.isBranch() && g.nextPc != inst.actualNextPc)
        raise(sim::CheckerError(detail::formatString(
            "checker: branch @0x%llx next %llx, golden %llx",
            static_cast<unsigned long long>(inst.pc),
            static_cast<unsigned long long>(inst.actualNextPc),
            static_cast<unsigned long long>(g.nextPc))));
}

// ---------------------------------------------------------------------
// Lifetime instrumentation
// ---------------------------------------------------------------------

void
Processor::recordLifetimeOnFree(const PregState &p)
{
    if (p.writeAt < 0)
        return; // never written (initial mapping)
    const Cycle empty = p.writeAt - p.allocAt;
    const Cycle live =
        p.lastReadAt > p.writeAt ? p.lastReadAt - p.writeAt : 0;
    const Cycle last_activity = std::max(p.writeAt, p.lastReadAt);
    const Cycle dead = now - last_activity;
    st.emptyTime->sample(static_cast<uint64_t>(std::max<Cycle>(empty, 0)));
    st.liveTime->sample(static_cast<uint64_t>(live));
    st.deadTime->sample(static_cast<uint64_t>(std::max<Cycle>(dead, 0)));

    if (cfg.trackLifetimes && live > 0) {
        const size_t need = static_cast<size_t>(p.lastReadAt) + 2;
        if (liveDelta.size() < need)
            liveDelta.resize(need + 1024, 0);
        ++liveDelta[p.writeAt];
        --liveDelta[p.lastReadAt + 1];
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

const stats::Distribution &
Processor::allocatedDistribution() const
{
    return allocatedDist;
}

const stats::Distribution &
Processor::liveDistribution() const
{
    if (!liveDistBuilt) {
        // Fold in pregs still allocated at the end of simulation.
        int64_t running = 0;
        for (size_t c = 0; c < liveDelta.size(); ++c) {
            running += liveDelta[c];
            if (running < 0)
                running = 0;
            liveDist.sample(static_cast<uint64_t>(running));
        }
        liveDistBuilt = true;
    }
    return liveDist;
}

sim::PipelineSnapshot
Processor::snapshot() const
{
    sim::PipelineSnapshot snap;
    snap.cycle = now;
    snap.fetchPc = fetchPc;
    snap.instsRetired = numRetired;
    snap.lastRetireCycle = lastRetireCycle;

    snap.robSize = rob.size();
    snap.robCapacity = cfg.robEntries;
    snap.iqSize = issueQueue.size();
    snap.iqCapacity = cfg.iqEntries;
    snap.freeListSize = freeList.size();
    snap.allocatedPregs = allocatedPregs;
    snap.numPhysRegs = cfg.numPhysRegs;

    const size_t n =
        std::min(rob.size(), sim::PipelineSnapshot::robHeadWindow);
    snap.robHead.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const DynInst &d = rob[i];
        sim::SnapshotRobEntry e;
        e.seq = d.seq;
        e.pc = d.pc;
        e.disasm = isa::disassemble(d.si);
        e.state = static_cast<int>(d.state);
        e.completed = d.completed;
        e.executing = d.executing;
        e.replays = d.replays;
        e.readyCycle = d.readyCycle;
        snap.robHead.push_back(std::move(e));
    }

    snap.cacheSets = supplier->cacheSets();
    snap.cacheAssoc = supplier->cacheAssoc();
    snap.cacheEntries = supplier->cachedEntries();

    snap.lastRetired.reserve(retiredRingCount);
    for (size_t i = 0; i < retiredRingCount; ++i) {
        // Oldest-first: the ring's next-write slot is also the oldest
        // record once the ring has wrapped.
        const size_t idx = (retiredRingHead + retiredRing.size() -
                            retiredRingCount + i) %
                           retiredRing.size();
        const RetiredRecord &r = retiredRing[idx];
        snap.lastRetired.push_back(
            {r.seq, r.pc, isa::disassemble(r.si), r.cycle});
    }

    if (injector)
        for (const inject::FaultRecord &f : injector->log())
            snap.injectedFaults.push_back(f.describe());

    return snap;
}

const std::vector<inject::FaultRecord> &
Processor::faultLog() const
{
    static const std::vector<inject::FaultRecord> empty;
    return injector ? injector->log() : empty;
}

SimResult
Processor::result() const
{
    SimResult r;
    r.cycles = st.cyclesStat->value();
    r.instsRetired = st.retired->value();
    r.ipc = r.cycles ? static_cast<double>(r.instsRetired) /
                           static_cast<double>(r.cycles)
                     : 0.0;

    r.opBypass = st.opBypass->value();
    r.opCache = st.opCache->value();
    r.opFile = st.opFile->value();
    const uint64_t ops = r.operandReads();
    r.bypassFraction =
        ops ? static_cast<double>(r.opBypass) / static_cast<double>(ops)
            : 0.0;

    const storage::SupplierStats ss = supplier->stats();
    r.supplier = ss;
    r.rcMisses = ss.misses;
    r.rcMissNoWrite = ss.missNoWrite;
    r.rcMissConflict = ss.missConflict;
    r.rcMissCapacity = ss.missCapacity;
    r.missPerOperand =
        ops ? static_cast<double>(r.rcMisses) / static_cast<double>(ops)
            : 0.0;

    r.valuesProduced = st.valuesProduced->value();
    r.writesFiltered = ss.writesFiltered;
    r.valuesNeverCached = ss.valuesNeverCached;
    r.miniReplays = st.miniReplays->value();
    r.issueGroupSquashes = st.groupSquashes->value();
    r.branchMispredicts = st.branchMispredicts->value();
    r.memOrderViolations = st.memViolations->value();

    const uint64_t branches = st.branches->value();
    r.branchMispredictRate =
        branches ? static_cast<double>(r.branchMispredicts) /
                       static_cast<double>(branches)
                 : 0.0;
    r.douAccuracy = ss.douAccuracy;

    if (ss.hasCache) {
        r.rcInserts = ss.inserts;
        r.rcFills = ss.fills;
        r.avgOccupancy = ss.avgOccupancy;
        r.avgEntryLifetime = ss.avgEntryLifetime;
        r.readsPerCachedValue = ss.readsPerCachedValue;
        r.cachedTotal = r.rcInserts + r.rcFills;
        r.cachedNeverRead = ss.entriesNeverRead;
        r.cacheCountPerValue =
            r.valuesProduced
                ? static_cast<double>(r.cachedTotal) /
                      static_cast<double>(r.valuesProduced)
                : 0.0;
        r.zeroUseVictimFraction = ss.zeroUseVictimFraction;

        r.cacheReadBw = r.cycles ? static_cast<double>(ops) /
                                       static_cast<double>(r.cycles)
                                 : 0.0;
        r.cacheWriteBw =
            r.cycles ? static_cast<double>(r.cachedTotal) /
                           static_cast<double>(r.cycles)
                     : 0.0;
        r.fileReadBw = r.cycles
                           ? static_cast<double>(ss.fileReads) /
                                 static_cast<double>(r.cycles)
                           : 0.0;
        r.fileWriteBw = r.cycles
                            ? static_cast<double>(ss.fileWrites) /
                                  static_cast<double>(r.cycles)
                            : 0.0;
    }

    r.fetchBlocks = st.fetchBlocks->value();
    r.renameStallsRegs = st.renameStallsRegs->value();
    r.renameStallsRob = st.renameStallsRob->value();
    r.renameStallsIq = st.renameStallsIq->value();

    r.medianEmptyTime = st.emptyTime->median();
    r.medianLiveTime = st.liveTime->median();
    r.medianDeadTime = st.deadTime->median();

    if (cfg.trackLifetimes) {
        r.allocatedP50 = allocatedDist.percentile(0.5);
        r.allocatedP90 = allocatedDist.percentile(0.9);
        const auto &live = liveDistribution();
        r.liveP50 = live.percentile(0.5);
        r.liveP90 = live.percentile(0.9);
    }
    return r;
}

} // namespace ubrc::core
